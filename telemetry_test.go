package scalesim

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func tracedRun(t *testing.T, warmup bool) *SimResult {
	t.Helper()
	opts := tinyOptions()
	opts.Trace = true
	opts.TraceWarmup = warmup
	res, err := Simulate(MachineSpec{Cores: 2}, []string{"mcf", "gcc"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("Trace: true produced an empty trace")
	}
	return res
}

func TestSimulateTrace(t *testing.T) {
	res := tracedRun(t, false)
	for i, e := range res.Trace {
		if e.Phase != PhaseMeasure {
			t.Fatalf("epoch %d: phase %q without TraceWarmup", i, e.Phase)
		}
		if len(e.Cores) != 2 {
			t.Fatalf("epoch %d: %d core records", i, len(e.Cores))
		}
	}
	if b := res.Trace[0].Cores[1].Benchmark; b != "gcc" {
		t.Fatalf("core 1 benchmark %q, want gcc", b)
	}
	// Untraced runs carry no trace.
	plain, err := Simulate(MachineSpec{Cores: 2}, []string{"mcf", "gcc"}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced run has a trace")
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	res := tracedRun(t, true)
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Trace, back) {
		t.Fatalf("round trip lost data: %d epochs in, %d out", len(res.Trace), len(back))
	}
	// Serialisation is deterministic: two writes of the same trace are
	// byte-identical.
	var a, b bytes.Buffer
	if err := WriteTraceJSONL(&a, res.Trace); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSONL(&b, res.Trace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialisation not deterministic")
	}
	if _, err := ReadTraceJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestTraceSchemaHeader(t *testing.T) {
	res := tracedRun(t, false)
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	first, _, ok := strings.Cut(buf.String(), "\n")
	if !ok || first != `{"schema":"`+TraceSchema+`"}` {
		t.Fatalf("first trace line = %q, want schema header for %s", first, TraceSchema)
	}

	// Headerless v0 traces (e.g. from a streaming sink) still read.
	_, body, _ := strings.Cut(buf.String(), "\n")
	v0, err := ReadTraceJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("headerless v0 trace rejected: %v", err)
	}
	if !reflect.DeepEqual(v0, res.Trace) {
		t.Fatalf("headerless read lost data: %d epochs, want %d", len(v0), len(res.Trace))
	}

	// An unknown schema tag fails loudly instead of misreading.
	future := `{"schema":"scalesim/trace/v99"}` + "\n" + body
	if _, err := ReadTraceJSONL(strings.NewReader(future)); !errors.Is(err, ErrUnknownSchema) {
		t.Fatalf("future trace schema: err = %v, want wrapping ErrUnknownSchema", err)
	}

	// A header-only trace is empty, not an error.
	empty, err := ReadTraceJSONL(strings.NewReader(`{"schema":"` + TraceSchema + `"}` + "\n"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("header-only trace = (%d epochs, %v)", len(empty), err)
	}
}

func TestSummarizeTrace(t *testing.T) {
	res := tracedRun(t, true)
	s := SummarizeTrace(res.Trace)
	if s.Epochs == 0 || s.WarmupEpochs == 0 {
		t.Fatalf("summary epochs %d/%d, want both measured and warmup", s.Epochs, s.WarmupEpochs)
	}
	if s.Epochs+s.WarmupEpochs != len(res.Trace) {
		t.Fatalf("summary covers %d epochs, trace has %d", s.Epochs+s.WarmupEpochs, len(res.Trace))
	}
	if len(s.Cores) != 2 {
		t.Fatalf("%d core summaries", len(s.Cores))
	}
	for _, c := range s.Cores {
		if c.IPC <= 0 || c.IPC > 4 {
			t.Fatalf("core %d IPC %v out of range", c.Core, c.IPC)
		}
		shares := c.BaseShare + c.BranchShare + c.MemoryShare + c.FrontendShare
		if shares < 0.999 || shares > 1.001 {
			t.Fatalf("core %d CPI-stack shares sum to %v", c.Core, shares)
		}
	}
	// Summary IPC must agree with the simulator's own result (the trace
	// accounts for every measured instruction and cycle).
	for i, c := range s.Cores {
		want := res.Cores[i].IPC
		if rel := (c.IPC - want) / want; rel > 0.01 || rel < -0.01 {
			t.Fatalf("core %d summary IPC %v, simulator reports %v", i, c.IPC, want)
		}
	}
	out := s.String()
	for _, want := range []string{"mcf", "gcc", "noc:", "dram:", "warmup epochs skipped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary rendering lacks %q:\n%s", want, out)
		}
	}
}
