package scalesim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// campaignJobs builds a campaign with duplicated design points: 4 unique
// (benchmark, seed) points, each submitted twice.
func campaignJobs() []CampaignJob {
	var jobs []CampaignJob
	for _, seed := range []uint64{3, 11} {
		for _, bench := range []string{"gcc", "lbm"} {
			opts := tinyOptions()
			opts.Seed = seed
			job := CampaignJob{
				Machine:    MachineSpec{Cores: 1, Policy: PolicyPRS},
				Benchmarks: []string{bench},
				Options:    opts,
			}
			jobs = append(jobs, job, job) // duplicate design point
		}
	}
	return jobs
}

// stripWallClock zeroes the only non-deterministic field so outcomes can be
// compared bit-for-bit.
func stripWallClock(r *CampaignResult) {
	for i := range r.Outcomes {
		if res := r.Outcomes[i].Result; res != nil {
			res.WallClockSec = 0
		}
	}
}

func TestCampaignMemoizesAndPreservesOrder(t *testing.T) {
	jobs := campaignJobs()
	if len(jobs) < 8 {
		t.Fatalf("campaign too small: %d jobs", len(jobs))
	}
	res, err := RunCampaignContext(context.Background(), Campaign{Jobs: jobs, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(jobs) {
		t.Fatalf("%d outcomes for %d jobs", len(res.Outcomes), len(jobs))
	}
	for i, o := range res.Outcomes {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Job != i {
			t.Fatalf("outcome %d labelled job %d", i, o.Job)
		}
		if got := o.Result.Cores[0].Benchmark; got != jobs[i].Benchmarks[0] {
			t.Fatalf("job %d ran %q, want %q (submission order broken)", i, got, jobs[i].Benchmarks[0])
		}
	}
	s := res.Stats
	if s.Jobs != 8 || s.UniqueRuns != 4 || s.CacheHits+s.CoalescedHits != 4 || s.Failures != 0 {
		t.Fatalf("each unique design point must simulate exactly once: %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
	// Duplicates carry bit-identical results.
	for i := 0; i+1 < len(res.Outcomes); i += 2 {
		a, b := *res.Outcomes[i].Result, *res.Outcomes[i+1].Result
		a.WallClockSec, b.WallClockSec = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("jobs %d and %d describe the same point but differ", i, i+1)
		}
	}
}

func TestCampaignParallelBitIdenticalToSequential(t *testing.T) {
	jobs := campaignJobs()
	seq, err := RunCampaignContext(context.Background(), Campaign{Jobs: jobs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCampaignContext(context.Background(), Campaign{Jobs: jobs, Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	stripWallClock(seq)
	stripWallClock(par)
	// CacheHit attribution may differ between schedules (any of the
	// duplicates can be the one that simulates); compare results only.
	for i := range seq.Outcomes {
		if !reflect.DeepEqual(seq.Outcomes[i].Result, par.Outcomes[i].Result) {
			t.Fatalf("job %d: parallel result differs from sequential", i)
		}
	}
	if seq.Stats.UniqueRuns != par.Stats.UniqueRuns {
		t.Fatalf("unique runs differ: %d vs %d", seq.Stats.UniqueRuns, par.Stats.UniqueRuns)
	}
}

func TestCampaignSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup, have %d", runtime.NumCPU())
	}
	// 8 distinct design points (seeds) so there is real parallel work.
	var jobs []CampaignJob
	for seed := uint64(1); seed <= 8; seed++ {
		opts := tinyOptions()
		opts.Seed = seed
		jobs = append(jobs, CampaignJob{
			Machine:    MachineSpec{Cores: 2, Policy: PolicyPRS},
			Benchmarks: []string{"lbm", "mcf"},
			Options:    opts,
		})
	}
	t0 := time.Now()
	if _, err := RunCampaignContext(context.Background(), Campaign{Jobs: jobs, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	seq := time.Since(t0)
	t0 = time.Now()
	if _, err := RunCampaignContext(context.Background(), Campaign{Jobs: jobs, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	par := time.Since(t0)
	if speedup := seq.Seconds() / par.Seconds(); speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx, want > 1.5x (seq %v, par %v)", speedup, seq, par)
	}
}

func TestCampaignInvalidJobIsolated(t *testing.T) {
	jobs := []CampaignJob{
		{Machine: MachineSpec{Cores: 1}, Benchmarks: []string{"gcc"}, Options: tinyOptions()},
		{Machine: MachineSpec{Cores: 1, Policy: "bogus"}, Benchmarks: []string{"gcc"}, Options: tinyOptions()},
		{Machine: MachineSpec{Cores: 1}, Benchmarks: []string{"nothere"}, Options: tinyOptions()},
	}
	var progress []CampaignProgress
	res, err := RunCampaignContext(context.Background(), Campaign{
		Jobs:       jobs,
		Workers:    2,
		OnProgress: func(p CampaignProgress) { progress = append(progress, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[0].Err != nil || res.Outcomes[0].Result == nil {
		t.Fatalf("valid job failed: %+v", res.Outcomes[0])
	}
	if !errors.Is(res.Outcomes[1].Err, ErrUnknownPolicy) {
		t.Fatalf("job 1 err %v, want ErrUnknownPolicy", res.Outcomes[1].Err)
	}
	if !errors.Is(res.Outcomes[2].Err, ErrUnknownBenchmark) {
		t.Fatalf("job 2 err %v, want ErrUnknownBenchmark", res.Outcomes[2].Err)
	}
	if got := len(res.Errs()); got != 2 {
		t.Fatalf("%d failed outcomes, want 2", got)
	}
	if res.Stats.Failures != 2 || res.Stats.Jobs != 3 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if len(progress) != 1 {
		t.Fatalf("%d progress events, want 1 (only the valid job executes)", len(progress))
	}
	if progress[0].Completed != 3 || progress[0].Total != 3 {
		t.Fatalf("progress %+v must account for invalid jobs", progress[0])
	}
}

func TestSimulateContextCancellation(t *testing.T) {
	// A big budget so the run would take far longer than the cancel delay.
	opts := tinyOptions()
	opts.Instructions = 50_000_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := SimulateContext(ctx, MachineSpec{Cores: 1}, []string{"lbm"}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestSimulateParallelContextCancellation(t *testing.T) {
	opts := tinyOptions()
	opts.Instructions = 50_000_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := SimulateParallelContext(ctx, MachineSpec{Cores: 2}, "par.stencil", opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}

func TestTypedEnumsValidate(t *testing.T) {
	for _, p := range []Policy{"", PolicyTarget, PolicyNRS, PolicyPRS, PolicyPRSLLC, PolicyPRSDRAM} {
		if err := p.Validate(); err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
		}
	}
	if err := Policy("bogus").Validate(); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("bogus policy: %v", err)
	}
	for _, b := range []Bandwidth{"", BandwidthMCFirst, BandwidthMBFirst} {
		if err := b.Validate(); err != nil {
			t.Errorf("bandwidth %q rejected: %v", b, err)
		}
	}
	if err := Bandwidth("bogus").Validate(); !errors.Is(err, ErrUnknownBandwidth) {
		t.Errorf("bogus bandwidth: %v", err)
	}
	for _, p := range []Pattern{PatternSeq, PatternRand, PatternZipf, PatternChase} {
		if err := p.Validate(); err != nil {
			t.Errorf("pattern %q rejected: %v", p, err)
		}
	}
	if err := Pattern("wat").Validate(); !errors.Is(err, ErrUnknownPattern) {
		t.Errorf("bogus pattern: %v", err)
	}
	if err := (MachineSpec{Policy: "bogus"}).Validate(); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("spec validate: %v", err)
	}
	if err := (MachineSpec{Bandwidth: "bogus"}).Validate(); !errors.Is(err, ErrUnknownBandwidth) {
		t.Errorf("spec validate: %v", err)
	}
}

func TestSentinelErrorsSurfaceFromAPI(t *testing.T) {
	if _, err := Simulate(MachineSpec{Cores: 1, Policy: "bogus"}, []string{"gcc"}, tinyOptions()); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("Simulate policy err: %v", err)
	}
	if _, err := Simulate(MachineSpec{Cores: 1, Bandwidth: "bogus"}, []string{"gcc"}, tinyOptions()); !errors.Is(err, ErrUnknownBandwidth) {
		t.Errorf("Simulate bandwidth err: %v", err)
	}
	if _, err := Simulate(MachineSpec{Cores: 1}, []string{"nope"}, tinyOptions()); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("Simulate benchmark err: %v", err)
	}
	if _, err := TableI("bogus"); !errors.Is(err, ErrUnknownBandwidth) {
		t.Errorf("TableI err: %v", err)
	}
	if _, err := SimulateParallel(MachineSpec{Cores: 2}, "nope", tinyOptions()); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("SimulateParallel err: %v", err)
	}
	bad := Profile{Name: "x", BaseCPI: 1, MLP: 1, Regions: []Region{{SizeBytes: 1 << 20, Frac: 1, Pattern: "wat"}}}
	if _, err := Simulate(MachineSpec{Cores: 1}, []string{"x"}, tinyOptions(), bad); !errors.Is(err, ErrUnknownPattern) {
		t.Errorf("custom pattern err: %v", err)
	}
}

func TestTableIRowNumericFields(t *testing.T) {
	rows, err := TableI(BandwidthMCFirst)
	if err != nil {
		t.Fatal(err)
	}
	full := rows[0]
	if full.Cores != 32 || full.LLCBytes != 32<<20 || full.LLCSlices != 32 {
		t.Fatalf("target row %+v", full)
	}
	if full.DRAMGBps != 128 || full.MCs*int(full.PerMCGBps) != int(full.DRAMGBps) {
		t.Fatalf("target DRAM %+v", full)
	}
	for _, r := range rows {
		if r.LLCBytes <= 0 || r.NoCGBps <= 0 || r.DRAMGBps <= 0 || r.CSLs <= 0 || r.MCs <= 0 {
			t.Fatalf("non-positive construction parameters: %+v", r)
		}
		// Numeric fields are per-row consistent with the render strings.
		if int64(r.LLCSlices) == 0 || r.PerCSLGBps <= 0 || r.PerMCGBps <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
	// PRS: per-core proportionality of the 16-core model vs the target.
	if rows[1].Cores != 16 || rows[1].DRAMGBps*2 != full.DRAMGBps {
		t.Fatalf("16-core row not proportional: %+v", rows[1])
	}
}

func TestExperimentsParallelMatchesSequential(t *testing.T) {
	names := []string{"exchange2", "gcc", "lbm"}
	seq, err := NewExperimentsSubset(tinyOptions(), names...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewExperimentsSubset(tinyOptions(), names...)
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(runtime.NumCPU())
	figSeq, err := seq.Fig3Construction()
	if err != nil {
		t.Fatal(err)
	}
	figPar, err := par.Fig3Construction()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(figSeq, figPar) {
		t.Fatalf("parallel figure differs from sequential:\n%s\nvs\n%s", figSeq, figPar)
	}
	if par.Runs() != seq.Runs() {
		t.Fatalf("parallel ran %d sims, sequential %d", par.Runs(), seq.Runs())
	}
}
