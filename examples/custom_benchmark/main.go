// Custom benchmark: push your own workload through the scale-model
// pipeline.
//
// The synthetic suite is convenient, but the library accepts arbitrary
// workload models: define a Profile (instruction mix, working-set regions,
// branch behaviour), then measure it on a ladder of scale models and
// extrapolate its 32-core performance with the same logarithmic fit the
// paper's regression method uses — all through the public API.
//
// Run with:
//
//	go run ./examples/custom_benchmark
package main

import (
	"fmt"
	"log"
	"math"

	"scalesim"
)

func main() {
	log.SetFlags(0)

	// A hypothetical in-memory analytics kernel: mostly hot hash tables,
	// plus a scan phase streaming a 96 MB column and a pointer-heavy index
	// walk over 24 MB.
	kernel := scalesim.Profile{
		Name:           "analytics",
		BaseCPI:        0.55,
		LoadsPerKI:     310,
		StoresPerKI:    110,
		BranchesPerKI:  120,
		MLP:            4,
		StaticBranches: 512,
		HardBranchFrac: 0.15,
		CodeBytes:      512 << 10,
		Regions: []scalesim.Region{
			{SizeBytes: 16 << 10, Frac: 0.80, Pattern: scalesim.PatternZipf, ZipfS: 1.1},
			{SizeBytes: 256 << 10, Frac: 0.13, Pattern: scalesim.PatternZipf, ZipfS: 1.0},
			{SizeBytes: 96 << 20, Frac: 0.05, Pattern: scalesim.PatternSeq, ElemSize: 8},
			{SizeBytes: 24 << 20, Frac: 0.02, Pattern: scalesim.PatternChase},
		},
	}

	opts := scalesim.FastOptions()

	// Measure per-core IPC on the ladder of proportional scale models.
	fmt.Println("measuring the custom kernel on the scale-model ladder:")
	var lnCores, ipcs []float64
	for _, cores := range []int{1, 2, 4, 8, 16} {
		wl := make([]string, cores)
		for i := range wl {
			wl[i] = kernel.Name
		}
		res, err := scalesim.Simulate(scalesim.MachineSpec{Cores: cores}, wl, opts, kernel)
		if err != nil {
			log.Fatal(err)
		}
		ipc := res.AverageIPC()
		fmt.Printf("  %2d-core scale model: per-core IPC %.3f (LLC MPKI %.1f, DRAM util %.2f)\n",
			cores, ipc, res.Cores[0].LLCMPKI, res.DRAMUtilization)
		if cores >= 2 {
			lnCores = append(lnCores, math.Log(float64(cores)))
			ipcs = append(ipcs, ipc)
		}
	}

	// Logarithmic least squares over the multi-core points (the paper's
	// best-performing regression family), extrapolated to 32 cores.
	a, b := leastSquares(lnCores, ipcs)
	pred := a*math.Log(32) + b
	fmt.Printf("\nlog fit: IPC(n) = %.4f*ln(n) + %.4f\n", a, b)
	fmt.Printf("extrapolated per-core IPC at 32 cores: %.3f\n", pred)

	// Ground truth.
	wl := make([]string, 32)
	for i := range wl {
		wl[i] = kernel.Name
	}
	tgt, err := scalesim.Simulate(scalesim.MachineSpec{Cores: 32, Policy: scalesim.PolicyTarget}, wl, opts, kernel)
	if err != nil {
		log.Fatal(err)
	}
	actual := tgt.AverageIPC()
	fmt.Printf("simulated 32-core target: %.3f  ->  extrapolation error %.1f%%\n",
		actual, 100*math.Abs(pred-actual)/actual)
}

// leastSquares fits y = a*x + b.
func leastSquares(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	a = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	b = (sy - a*sx) / n
	return a, b
}
