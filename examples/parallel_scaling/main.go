// Parallel scaling: the paper's future-work extension (§V-E6) in action —
// applying scale-model simulation to data-parallel multi-threaded
// workloads, with speedup stacks identifying the scaling bottleneck.
//
// For each parallel kernel the program measures aggregate throughput on the
// scale-model ladder (1-16 threads), extrapolates 32-thread throughput with
// a logarithmic fit, validates against a 32-core target simulation, and
// prints each configuration's speedup stack (where thread time goes: useful
// work, memory contention, barrier imbalance, ...).
//
// Run with:
//
//	go run ./examples/parallel_scaling
package main

import (
	"fmt"
	"log"
	"math"

	"scalesim"
)

func main() {
	log.SetFlags(0)
	opts := scalesim.FastOptions()

	for _, workload := range scalesim.ParallelBenchmarkNames() {
		fmt.Printf("%s\n", workload)
		var lnCores, tputs []float64
		for _, cores := range []int{1, 2, 4, 8, 16} {
			spec := scalesim.MachineSpec{Cores: cores}
			res, err := scalesim.SimulateParallel(spec, workload, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %2d threads: throughput %5.2f IPC   [%s]\n",
				cores, res.AggregateIPC, res.Stack)
			if cores >= 2 {
				lnCores = append(lnCores, math.Log(float64(cores)))
				// Per-thread throughput is the saturating quantity the
				// paper's logarithmic regression models.
				tputs = append(tputs, res.AggregateIPC/float64(cores))
			}
		}
		a, b := leastSquares(lnCores, tputs)
		pred := 32 * (a*math.Log(32) + b)

		tgt, err := scalesim.SimulateParallel(
			scalesim.MachineSpec{Cores: 32, Policy: scalesim.PolicyTarget}, workload, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  32 threads: predicted %5.2f vs simulated %5.2f (err %.1f%%)   [%s]\n\n",
			pred, tgt.AggregateIPC, 100*math.Abs(pred-tgt.AggregateIPC)/tgt.AggregateIPC, tgt.Stack)
	}
	fmt.Println("Bandwidth-bound kernels flatten early (memory share grows); skewed kernels")
	fmt.Println("accumulate barrier share. Both are visible on scale models long before 32 cores.")
}

// leastSquares fits y = a*x + b.
func leastSquares(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	a = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	b = (sy - a*sx) / n
	return a, b
}
