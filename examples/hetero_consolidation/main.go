// Heterogeneous consolidation: how much does a latency-sensitive
// application suffer from noisy neighbours on a big multicore — and can a
// scale model tell us without simulating the big machine?
//
// The program co-runs a cache-sensitive application (xalancbmk) against
// three co-runner mixes of increasing aggressiveness on small PRS scale
// models (2 and 4 cores), and shows that the *per-core-share* contention on
// the scale model tracks the slowdown measured on the 32-core target with
// the same per-core pressure.
//
// Run with:
//
//	go run ./examples/hetero_consolidation
package main

import (
	"fmt"
	"log"
	"strings"

	"scalesim"
)

const victim = "xalancbmk"

// mixes are co-runner classes of increasing memory aggressiveness.
var mixes = []struct {
	label    string
	coRunner string
}{
	{"quiet neighbours (compute-bound)", "exchange2"},
	{"moderate neighbours (cache-sensitive)", "gcc"},
	{"aggressive neighbours (streaming)", "lbm"},
}

func main() {
	log.SetFlags(0)
	opts := scalesim.FastOptions()

	// Baseline: the victim alone on the 1-core scale model (its fair share
	// of the target's resources, no interference beyond its own).
	alone, err := scalesim.Simulate(scalesim.MachineSpec{Cores: 1}, []string{victim}, opts)
	if err != nil {
		log.Fatal(err)
	}
	baseIPC := alone.Cores[0].IPC
	fmt.Printf("%s alone on its fair share: IPC %.3f\n\n", victim, baseIPC)
	fmt.Printf("%-40s %16s %16s\n", "co-runner mix", "4-core model", "32-core target")

	for _, m := range mixes {
		// Scale model: victim + 3 co-runners on a 4-core PRS model.
		smWl := []string{victim, m.coRunner, m.coRunner, m.coRunner}
		sm, err := scalesim.Simulate(scalesim.MachineSpec{Cores: 4}, smWl, opts)
		if err != nil {
			log.Fatal(err)
		}
		// Target: same 1:3 ratio scaled to 32 cores (8 victims, 24
		// co-runners).
		var tgtWl []string
		for i := 0; i < 8; i++ {
			tgtWl = append(tgtWl, victim)
		}
		for i := 0; i < 24; i++ {
			tgtWl = append(tgtWl, m.coRunner)
		}
		tgt, err := scalesim.Simulate(scalesim.MachineSpec{Cores: 32, Policy: scalesim.PolicyTarget}, tgtWl, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %15.1f%% %15.1f%%\n", m.label,
			100*victimSlowdown(sm, baseIPC), 100*victimSlowdown(tgt, baseIPC))
	}

	fmt.Println("\nslowdown = 1 - IPC(co-run)/IPC(alone), averaged over the victim's instances.")
	fmt.Println("The 4-core scale model ranks and roughly sizes the interference without")
	fmt.Println("ever simulating the 32-core machine.")
}

// victimSlowdown averages the victim's IPC loss relative to running alone.
func victimSlowdown(res *scalesim.SimResult, baseIPC float64) float64 {
	var sum float64
	n := 0
	for _, c := range res.Cores {
		if strings.EqualFold(c.Benchmark, victim) {
			sum += c.IPC
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return 1 - (sum / float64(n) / baseIPC)
}
