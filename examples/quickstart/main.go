// Quickstart: the 60-second tour of scale-model simulation.
//
// It (1) prints the scale-model construction table, (2) simulates one
// benchmark on a single-core scale model, and (3) predicts the benchmark's
// per-core performance on the 32-core target from that single-core run —
// then checks the prediction against an actual target simulation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scalesim"
)

func main() {
	log.SetFlags(0)

	// 1. How the scale models are built (the paper's Table I): shrinking
	// core count together with every shared resource.
	fmt.Println("Proportional Resource Scaling (Table I):")
	rows, err := scalesim.TableI(scalesim.BandwidthMCFirst)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %2d cores | %-18s | %s\n", r.Cores, r.LLC, r.DRAM)
	}

	// 2. Simulate one memory-intensive benchmark on the single-core PRS
	// scale model: 1 MB of LLC and 4 GB/s of memory bandwidth — the
	// per-core share of the 32-core target.
	opts := scalesim.FastOptions()
	const bench = "mcf"
	res, err := scalesim.Simulate(scalesim.MachineSpec{Cores: 1, Policy: scalesim.PolicyPRS},
		[]string{bench}, opts)
	if err != nil {
		log.Fatal(err)
	}
	c := res.Cores[0]
	fmt.Printf("\n%s on the 1-core scale model: IPC %.3f, LLC MPKI %.1f, %.2f B/cycle DRAM traffic\n",
		bench, c.IPC, c.LLCMPKI, c.BWBytesPerCycle)

	// 3. Predict the 32-core target's per-core IPC with SVM-log regression
	// — the paper's practical configuration: training needs only scale
	// models (2-16 cores), never the target system.
	ex, err := scalesim.NewExperiments(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntraining the extrapolation model (simulating scale models)...")
	pred, err := ex.PredictTargetIPC(bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted per-core IPC of %s on the 32-core target: %.3f\n", bench, pred)

	// Validate against the ground truth (in real use the target may be too
	// big to simulate — that is the point of the methodology).
	actual, err := ex.ActualTargetIPC(bench)
	if err != nil {
		log.Fatal(err)
	}
	errPct := 100 * abs(pred-actual) / actual
	fmt.Printf("simulated target IPC: %.3f  ->  prediction error %.1f%%\n", actual, errPct)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
