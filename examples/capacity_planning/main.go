// Capacity planning: the procurement use case from the paper's conclusion
// (§VII) — "scale-model simulation could be used to provide performance
// predictions for next-generation processors to steer purchasing
// decisions".
//
// A team runs a known application portfolio and is offered a 32-core part.
// Nobody can benchmark the part (it may not exist yet), but its datasheet
// pins down the shared-resource budget per core. This program:
//
//  1. characterises each portfolio application on a cheap single-core
//     scale model of the candidate part,
//  2. predicts each application's per-core performance on the full part
//     with SVM-log regression (no target simulations needed),
//  3. aggregates the predictions into system throughput (STP) and compares
//     against a ground-truth simulation of the part to show how close the
//     procurement estimate would have been.
//
// Run with:
//
//	go run ./examples/capacity_planning
package main

import (
	"fmt"
	"log"

	"scalesim"
)

// portfolio is the customer's application mix: a latency-sensitive
// database-ish workload, two scientific kernels, a code-heavy service and a
// compute-bound encoder.
var portfolio = []string{"mcf", "bwaves", "roms", "xalancbmk", "x264"}

func main() {
	log.SetFlags(0)
	opts := scalesim.FastOptions()

	ex, err := scalesim.NewExperiments(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("candidate part: 32 cores, 32 MB LLC, 128 GB/s DRAM (Table II)")
	fmt.Println("characterising the portfolio on a 1-core scale model and extrapolating...")
	fmt.Println()
	fmt.Printf("%-12s %14s %14s %9s\n", "application", "predicted IPC", "actual IPC", "error")

	var predSum, actualSum float64
	for _, app := range portfolio {
		pred, err := ex.PredictTargetIPC(app)
		if err != nil {
			log.Fatal(err)
		}
		actual, err := ex.ActualTargetIPC(app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14.3f %14.3f %8.1f%%\n", app, pred, actual, 100*abs(pred-actual)/actual)
		predSum += pred
		actualSum += actual
	}

	// A procurement decision hinges on aggregate throughput, and aggregate
	// predictions are even more reliable than per-application ones: over-
	// and under-estimates offset (the paper's Fig. 6 observation).
	fmt.Printf("\nportfolio throughput estimate (sum of per-core IPC):\n")
	fmt.Printf("  predicted %.3f vs simulated %.3f  ->  error %.1f%%\n",
		predSum, actualSum, 100*abs(predSum-actualSum)/actualSum)
	fmt.Println("\n(the prediction never simulated the 32-core part; only 1-16-core scale models)")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
