// Package dram models the main-memory subsystem: multiple memory
// controllers with address-interleaved line mapping, each an independent
// bandwidth-limited queue. Access latency is the unloaded DRAM latency plus
// an M/D/1-style queuing delay driven by the controller's measured
// utilization, updated at epoch boundaries by the simulator.
//
// The split between "number of controllers" and "bandwidth per controller"
// matters: the paper's MC-first vs MB-first scaling study (Fig. 8) works
// precisely because a 16 GB/s controller drains a 64-byte line four times
// faster than a 4 GB/s controller at equal total bandwidth, giving different
// queuing delay at the same utilization.
package dram

import (
	"fmt"

	"scalesim/internal/config"
	"scalesim/internal/units"
)

// Memory is the DRAM subsystem state for one simulated machine.
type Memory struct {
	mcs         int
	bytesPerCyc units.BytesPerCycle // per-controller capacity
	baseLatency units.Cycles

	epochBytes []units.Bytes // demand accumulated this epoch, per controller
	util       []float64     // smoothed utilization, per controller

	// Row-buffer efficiency: interleaved request streams from many cores
	// destroy per-controller row locality, reducing the usable fraction of
	// peak bandwidth. epochStreams tracks which cores touched each
	// controller this epoch (bitmask, core id mod 64); eff is the smoothed
	// efficiency per controller.
	epochStreams []uint64
	eff          []float64

	// Cumulative statistics.
	perCoreBytes []units.Bytes
	TotalReads   uint64
	TotalWrites  uint64
	TotalBytes   units.Bytes
}

// lineBytes is the transfer granularity: every access moves one 64-byte
// line, and the M/D/1 service time is that of one line.
const lineBytes = units.Bytes(64)

// New builds the DRAM model from cfg for a machine clocked at freqGHz with
// cores cores (for per-core bandwidth attribution).
func New(cfg config.DRAMConfig, freqGHz float64, cores int) (*Memory, error) {
	if cfg.Controllers < 1 {
		return nil, fmt.Errorf("dram: %d controllers", cfg.Controllers)
	}
	if cfg.PerControllerGBps <= 0 {
		return nil, fmt.Errorf("dram: non-positive bandwidth %v", cfg.PerControllerGBps)
	}
	if freqGHz <= 0 {
		return nil, fmt.Errorf("dram: invalid frequency %v GHz", freqGHz)
	}
	m := &Memory{
		mcs:          cfg.Controllers,
		bytesPerCyc:  units.FromGBps(float64(cfg.PerControllerGBps), freqGHz),
		baseLatency:  units.Cycles(cfg.BaseLatency),
		epochBytes:   make([]units.Bytes, cfg.Controllers),
		util:         make([]float64, cfg.Controllers),
		epochStreams: make([]uint64, cfg.Controllers),
		eff:          make([]float64, cfg.Controllers),
		perCoreBytes: make([]units.Bytes, cores),
	}
	for i := range m.eff {
		m.eff[i] = 1
	}
	return m, nil
}

// Controllers returns the number of memory controllers.
func (m *Memory) Controllers() int { return m.mcs }

// MCOf returns the controller serving addr: line-interleaved via a mixing
// hash, so any access pattern spreads across controllers.
func (m *Memory) MCOf(addr uint64) int {
	line := addr >> 6
	line *= 0xd6e8feb86659fd93
	return int((line >> 32) % uint64(m.mcs))
}

// Access records a read (write=false) or write of one line at addr by core
// and returns its latency in cycles under the current load estimate.
func (m *Memory) Access(core int, addr uint64, bytes units.Bytes, write bool) units.Cycles {
	mc := m.MCOf(addr)
	m.epochBytes[mc] += bytes
	m.epochStreams[mc] |= 1 << (uint(core) % 64)
	m.perCoreBytes[core] += bytes
	m.TotalBytes += bytes
	if write {
		m.TotalWrites++
		// Writes are posted: they consume bandwidth but do not stall the
		// requester, so no latency is returned.
		return 0
	}
	m.TotalReads++
	return m.baseLatency + m.queueDelay(mc)
}

// Acc accumulates one core's DRAM traffic during an epoch of parallel
// execution. Latencies read only the utilization and efficiency estimates
// frozen at the last epoch boundary, so accounting demand thread-locally and
// merging it at the barrier (in canonical core order) is exact: the Memory
// sees the same per-controller sums it would have accumulated serially.
type Acc struct {
	epochBytes   []units.Bytes
	epochStreams []uint64
	coreBytes    units.Bytes
	reads        uint64
	writes       uint64
}

// NewAcc returns an accumulator shaped for this memory's controller count.
func (m *Memory) NewAcc() *Acc {
	return &Acc{
		epochBytes:   make([]units.Bytes, m.mcs),
		epochStreams: make([]uint64, m.mcs),
	}
}

// AccessInto is Access with the demand accounted into a instead of the
// shared Memory state; the returned latency is identical. The Memory itself
// is only read, so concurrent callers with distinct accumulators are safe.
func (m *Memory) AccessInto(a *Acc, core int, addr uint64, bytes units.Bytes, write bool) units.Cycles {
	mc := m.MCOf(addr)
	a.epochBytes[mc] += bytes
	a.epochStreams[mc] |= 1 << (uint(core) % 64)
	a.coreBytes += bytes
	if write {
		a.writes++
		return 0
	}
	a.reads++
	return m.baseLatency + m.queueDelay(mc)
}

// Merge folds a drained accumulator into the shared epoch and cumulative
// counters, attributing its traffic to core, exactly as if it had been
// accounted via Access.
func (m *Memory) Merge(core int, a *Acc) {
	for mc := range a.epochBytes {
		m.epochBytes[mc] += a.epochBytes[mc]
		m.epochStreams[mc] |= a.epochStreams[mc]
		a.epochBytes[mc] = 0
		a.epochStreams[mc] = 0
	}
	m.perCoreBytes[core] += a.coreBytes
	m.TotalBytes += a.coreBytes
	m.TotalReads += a.reads
	m.TotalWrites += a.writes
	a.coreBytes = 0
	a.reads = 0
	a.writes = 0
}

// queueDelay returns the M/D/1 waiting time at controller mc: the service
// time of one 64-byte line scaled by rho/(2(1-rho)), with utilization capped
// just below saturation. The CPI feedback loop (higher latency -> lower
// request rate) provides the real throttling; the cap only bounds the
// transient.
func (m *Memory) queueDelay(mc int) units.Cycles {
	rho := m.util[mc]
	if rho > 0.98 {
		rho = 0.98
	}
	if rho <= 0 {
		return 0
	}
	service := m.bytesPerCyc.Scale(m.eff[mc]).Transfer(lineBytes)
	return service.Scale(rho / (2 * (1 - rho)))
}

// rowEfficiency returns the usable fraction of peak bandwidth when streams
// distinct request streams interleave at one controller: a single stream
// keeps near-perfect row-buffer locality; many co-running programs degrade
// it towards a 3/4 floor. This is a first-order stand-in for DRAM page
// policy effects, and it is precisely the kind of target-system behaviour a
// proportionally scaled-down model cannot reproduce (motivating the paper's
// ML extrapolation step).
func rowEfficiency(streams int) float64 {
	if streams < 1 {
		streams = 1
	}
	return 0.75 + 0.25/float64(streams)
}

// EndEpoch folds the demand accounted since the last call into each
// controller's utilization estimate, given the epoch length in cycles.
func (m *Memory) EndEpoch(cycles units.Cycles) {
	if cycles <= 0 {
		return
	}
	for mc := range m.epochBytes {
		streams := popcount(m.epochStreams[mc])
		if m.epochBytes[mc] > 0 {
			m.eff[mc] = 0.5*m.eff[mc] + 0.5*rowEfficiency(streams)
		}
		capacity := m.bytesPerCyc.Scale(m.eff[mc]).Capacity(cycles)
		inst := float64(m.epochBytes[mc]) / float64(capacity)
		if inst > 1.5 {
			inst = 1.5
		}
		m.util[mc] = 0.5*m.util[mc] + 0.5*inst
		m.epochBytes[mc] = 0
		m.epochStreams[mc] = 0
	}
}

// Utilization returns the mean smoothed utilization across controllers.
func (m *Memory) Utilization() float64 {
	sum := 0.0
	for _, u := range m.util {
		sum += u
	}
	return sum / float64(len(m.util))
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// QueueDelay returns the mean M/D/1 waiting time across controllers under
// the current utilization and efficiency estimates — the queuing penalty a
// read issued now would expect on an average controller.
func (m *Memory) QueueDelay() units.Cycles {
	sum := units.Cycles(0)
	for mc := range m.util {
		sum += m.queueDelay(mc)
	}
	return sum.Scale(1 / float64(len(m.util)))
}

// Efficiency returns the mean smoothed row-buffer efficiency across
// controllers.
func (m *Memory) Efficiency() float64 {
	sum := 0.0
	for _, e := range m.eff {
		sum += e
	}
	return sum / float64(len(m.eff))
}

// CoreBytes returns the cumulative DRAM traffic attributed to core.
func (m *Memory) CoreBytes(core int) units.Bytes { return m.perCoreBytes[core] }

// BaseLatency returns the unloaded access latency.
func (m *Memory) BaseLatency() units.Cycles { return m.baseLatency }

// PerControllerBytesPerCycle returns one controller's capacity in bytes per
// core cycle.
func (m *Memory) PerControllerBytesPerCycle() units.BytesPerCycle { return m.bytesPerCyc }
