package dram

import (
	"math"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/units"
	"scalesim/internal/xrand"
)

func newMem(t *testing.T, mcs int, perMC config.GBps) *Memory {
	t.Helper()
	m, err := New(config.DRAMConfig{Controllers: mcs, PerControllerGBps: perMC, BaseLatency: 240}, 4.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewErrors(t *testing.T) {
	if _, err := New(config.DRAMConfig{Controllers: 0, PerControllerGBps: 16}, 4.0, 1); err == nil {
		t.Error("zero controllers accepted")
	}
	if _, err := New(config.DRAMConfig{Controllers: 1, PerControllerGBps: 0}, 4.0, 1); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(config.DRAMConfig{Controllers: 1, PerControllerGBps: 16}, 0, 1); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestUnloadedLatencyIsBase(t *testing.T) {
	m := newMem(t, 8, 16)
	if l := m.Access(0, 0x1000, 64, false); l != 240 {
		t.Fatalf("unloaded read latency %v, want 240", l)
	}
}

func TestWritesArePostedButConsumeBandwidth(t *testing.T) {
	m := newMem(t, 1, 4)
	if l := m.Access(0, 0x40, 64, true); l != 0 {
		t.Fatalf("write latency %v, want 0 (posted)", l)
	}
	if m.TotalWrites != 1 || m.TotalBytes != 64 {
		t.Fatalf("stats writes=%d bytes=%v, want 1/64", m.TotalWrites, m.TotalBytes)
	}
	// The write's bytes still drive utilization.
	m.EndEpoch(64) // demand 64B over capacity 1 B/cyc * 64 cyc => inst rho 1.0
	if u := m.Utilization(); u < 0.4 {
		t.Fatalf("utilization %v after saturating writes, want >= 0.4 (smoothed)", u)
	}
}

func TestMCInterleaving(t *testing.T) {
	m := newMem(t, 8, 16)
	counts := make([]int, 8)
	for i := uint64(0); i < 80000; i++ {
		counts[m.MCOf(i*64)]++
	}
	for mc, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("MC %d received %d/80000 sequential lines; interleaving unbalanced", mc, c)
		}
	}
}

func TestMCOfStable(t *testing.T) {
	m := newMem(t, 4, 16)
	for i := uint64(0); i < 1000; i++ {
		a := i * 4096
		if m.MCOf(a) != m.MCOf(a) || m.MCOf(a) != m.MCOf(a+63) {
			t.Fatal("controller mapping unstable or not line-granular")
		}
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	m := newMem(t, 1, 4) // 1 B/cycle
	rng := xrand.New(3)
	// Saturate: 10000 lines in a 100k-cycle epoch = 640k bytes vs 100k capacity.
	for e := 0; e < 10; e++ {
		for i := 0; i < 10000; i++ {
			m.Access(0, rng.Uint64()&^63, 64, false)
		}
		m.EndEpoch(100000)
	}
	loaded := m.Access(0, 0x123440, 64, false)
	if loaded <= 240+50 {
		t.Fatalf("loaded latency %v, want well above base 240", loaded)
	}
	if math.IsNaN(float64(loaded)) || math.IsInf(float64(loaded), 0) || loaded > 1e6 {
		t.Fatalf("loaded latency %v unbounded", loaded)
	}
}

func TestFatControllerHasLowerQueueDelay(t *testing.T) {
	// Same total bandwidth and same utilization: 1 MC @ 16 GB/s drains lines
	// 4x faster than 4 MCs @ 4 GB/s, so its queue delay is lower. This
	// asymmetry is what makes MC-first vs MB-first scaling (Fig. 8) differ.
	run := func(mcs int, per config.GBps) units.Cycles {
		m := newMem(t, mcs, per)
		rng := xrand.New(9)
		for e := 0; e < 10; e++ {
			for i := 0; i < 8000; i++ {
				m.Access(0, rng.Uint64()&^63, 64, false)
			}
			m.EndEpoch(100000)
		}
		return m.Access(0, 0x5540, 64, false)
	}
	fat := run(1, 16)
	thin := run(4, 4)
	if fat >= thin {
		t.Fatalf("1x16GB/s latency %v >= 4x4GB/s latency %v; service-time asymmetry missing", fat, thin)
	}
}

func TestPerCoreAttribution(t *testing.T) {
	m := newMem(t, 2, 16)
	m.Access(0, 0x40, 64, false)
	m.Access(0, 0x80, 64, false)
	m.Access(3, 0xc0, 64, true)
	if m.CoreBytes(0) != 128 {
		t.Fatalf("core 0 bytes %v, want 128", m.CoreBytes(0))
	}
	if m.CoreBytes(3) != 64 {
		t.Fatalf("core 3 bytes %v, want 64", m.CoreBytes(3))
	}
	if m.CoreBytes(1) != 0 {
		t.Fatalf("core 1 bytes %v, want 0", m.CoreBytes(1))
	}
}

func TestUtilizationDecay(t *testing.T) {
	m := newMem(t, 1, 4)
	for i := 0; i < 10000; i++ {
		m.Access(0, uint64(i)*64, 64, false)
	}
	m.EndEpoch(1000)
	u1 := m.Utilization()
	for e := 0; e < 30; e++ {
		m.EndEpoch(1000)
	}
	if u := m.Utilization(); u > u1/100 {
		t.Fatalf("utilization %v did not decay from %v over idle epochs", u, u1)
	}
}

func TestEndEpochZeroCyclesIsNoop(t *testing.T) {
	m := newMem(t, 1, 4)
	m.Access(0, 0, 64, false)
	m.EndEpoch(0)
	if u := m.Utilization(); u != 0 {
		t.Fatalf("EndEpoch(0) changed utilization to %v", u)
	}
}

func TestBytesPerCycleConversion(t *testing.T) {
	m := newMem(t, 8, 16)
	// 16 GB/s at 4 GHz = 4 bytes/cycle.
	if got := m.PerControllerBytesPerCycle(); got != 4 {
		t.Fatalf("bytes/cycle = %v, want 4", got)
	}
	if m.BaseLatency() != 240 {
		t.Fatalf("base latency %v, want 240", m.BaseLatency())
	}
	if m.Controllers() != 8 {
		t.Fatalf("controllers %d, want 8", m.Controllers())
	}
}
