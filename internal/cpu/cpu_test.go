package cpu

import (
	"testing"

	"scalesim/internal/branch"
	"scalesim/internal/config"
	"scalesim/internal/trace"
	"scalesim/internal/units"
)

// fakeMem serves every load at a fixed level/latency.
type fakeMem struct {
	level   MemLevel
	latency units.Cycles
	loads   int
	stores  int
	ifetch  int
}

func (f *fakeMem) Load(core int, addr uint64) MemResult {
	f.loads++
	return MemResult{Latency: f.latency, Level: f.level}
}

func (f *fakeMem) Store(core int, addr uint64) MemResult {
	f.stores++
	return MemResult{Latency: f.latency, Level: f.level}
}

func (f *fakeMem) IFetch(core int, addr uint64, jump bool) units.Cycles {
	f.ifetch++
	return 0
}

func coreConfig() config.CoreConfig {
	return config.Target().Core
}

func newCore(t *testing.T, profName string, mem MemSystem) *Core {
	t.Helper()
	gen, err := trace.NewGenerator(trace.ByName(profName), trace.GenOptions{Seed: 42, CapacityScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(0, coreConfig(), gen, branch.NewTournament(), mem)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	gen, _ := trace.NewGenerator(trace.ByName("gcc"), trace.GenOptions{Seed: 1})
	if _, err := New(0, coreConfig(), nil, branch.NewTournament(), &fakeMem{}); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := New(0, coreConfig(), gen, nil, &fakeMem{}); err == nil {
		t.Error("nil predictor accepted")
	}
	bad := coreConfig()
	bad.IssueWidth = 0
	if _, err := New(0, bad, gen, branch.NewTournament(), &fakeMem{}); err == nil {
		t.Error("invalid core config accepted")
	}
}

func TestAllL1HitsApproachesBaseCPI(t *testing.T) {
	mem := &fakeMem{level: LevelL1, latency: 4}
	c := newCore(t, "exchange2", mem)
	c.Run(1e9, 200000)
	ipc := c.Stats.IPC()
	prof := trace.ByName("exchange2")
	// With all L1 hits the CPI is base CPI plus branch mispredict cycles.
	maxIPC := 1 / prof.BaseCPI
	if ipc > maxIPC {
		t.Fatalf("IPC %.3f exceeds ILP limit %.3f", ipc, maxIPC)
	}
	if ipc < 0.5*maxIPC {
		t.Fatalf("IPC %.3f far below ILP limit %.3f with a perfect cache", ipc, maxIPC)
	}
}

func TestMemoryLatencySlowsCore(t *testing.T) {
	fast := newCore(t, "lbm", &fakeMem{level: LevelL1, latency: 4})
	slow := newCore(t, "lbm", &fakeMem{level: LevelDRAM, latency: 300})
	fast.Run(1e9, 100000)
	slow.Run(1e9, 100000)
	if slow.Stats.IPC() >= fast.Stats.IPC()/2 {
		t.Fatalf("DRAM-bound IPC %.3f not well below L1-bound IPC %.3f",
			slow.Stats.IPC(), fast.Stats.IPC())
	}
}

func TestShortLatenciesHiddenByROB(t *testing.T) {
	// L2-hit latency (12 cycles) is below the ROB hide capacity
	// (128/2/4 = 16 cycles): the core should lose (almost) nothing.
	l1 := newCore(t, "imagick", &fakeMem{level: LevelL1, latency: 4})
	l2 := newCore(t, "imagick", &fakeMem{level: LevelL2, latency: 12})
	l1.Run(1e9, 100000)
	l2.Run(1e9, 100000)
	ratio := l2.Stats.IPC() / l1.Stats.IPC()
	if ratio < 0.95 {
		t.Fatalf("L2-hit IPC ratio %.3f; short latencies must be hidden by the OoO window", ratio)
	}
}

func TestMLPAmortisesIndependentMisses(t *testing.T) {
	// Same DRAM latency: the high-MLP streaming benchmark (lbm, MLP 9)
	// must lose far less than the dependent pointer chaser (mcf).
	hi := newCore(t, "lbm", &fakeMem{level: LevelDRAM, latency: 300})
	hi.Run(1e9, 100000)
	lo := newCore(t, "mcf", &fakeMem{level: LevelDRAM, latency: 300})
	lo.Run(1e9, 100000)
	// Compare memory stall per load rather than raw IPC (different mixes).
	hiStall := float64(hi.Stats.MemoryCycles) / float64(hi.Stats.Loads)
	loStall := float64(lo.Stats.MemoryCycles) / float64(lo.Stats.Loads)
	if hiStall >= loStall {
		t.Fatalf("high-MLP stall/load %.1f >= low-MLP stall/load %.1f", hiStall, loStall)
	}
}

func TestDependentLoadsPayFullLatency(t *testing.T) {
	// mcf's chase loads are Dependent: stall per dependent load should be
	// ~ latency - hide, not divided by MLP.
	mem := &fakeMem{level: LevelDRAM, latency: 300}
	c := newCore(t, "mcf", mem)
	c.Run(1e9, 200000)
	hide := float64(coreConfig().ROBSize) / 2 / float64(coreConfig().IssueWidth)
	full := 300 - hide
	// mcf profile: 5.5% of region accesses are chases; dependent loads pay
	// `full`, independent ones pay full/MLP. Average must sit between.
	avg := float64(c.Stats.MemoryCycles) / float64(c.Stats.Loads+c.Stats.Stores)
	if avg <= full/10 || avg >= full {
		t.Fatalf("avg stall %.1f outside (%.1f, %.1f)", avg, full/10, full)
	}
}

func TestBranchMispredictsCharged(t *testing.T) {
	mem := &fakeMem{level: LevelL1, latency: 4}
	c := newCore(t, "deepsjeng", mem) // branchy, hard branches
	c.Run(1e9, 300000)
	if c.Stats.Branch.Branches == 0 {
		t.Fatal("no branches recorded")
	}
	if c.Stats.Branch.Mispredicts == 0 {
		t.Fatal("no mispredictions on a hard-branch benchmark")
	}
	if c.Stats.BranchCycles == 0 {
		t.Fatal("no branch penalty cycles charged")
	}
	wantPenalty := float64(c.Stats.Branch.Mispredicts) * float64(coreConfig().MispredictCost)
	if float64(c.Stats.BranchCycles) != wantPenalty {
		t.Fatalf("branch cycles %.0f, want mispredicts x cost = %.0f", float64(c.Stats.BranchCycles), wantPenalty)
	}
}

func TestRunRespectsBudgets(t *testing.T) {
	mem := &fakeMem{level: LevelL1, latency: 4}
	c := newCore(t, "gcc", mem)
	used := c.Run(1000, 1<<62)
	if used < 1000 {
		t.Fatalf("Run stopped at %.0f cycles with budget 1000 and unlimited instructions", used)
	}
	if used > 1400 {
		t.Fatalf("Run overshot the cycle budget: %.0f", used)
	}
	c2 := newCore(t, "gcc", mem)
	c2.Run(1e12, 5000)
	if c2.Stats.Instructions != 5000 {
		t.Fatalf("instruction budget: retired %d, want exactly 5000", c2.Stats.Instructions)
	}
	if !c2.Done(5000) {
		t.Fatal("Done(5000) false after retiring 5000")
	}
}

func TestRunResumable(t *testing.T) {
	mem := &fakeMem{level: LevelL1, latency: 4}
	whole := newCore(t, "gcc", mem)
	whole.Run(1e12, 50000)

	parts := newCore(t, "gcc", &fakeMem{level: LevelL1, latency: 4})
	for parts.Stats.Instructions < 50000 {
		parts.Run(500, 50000)
	}
	if whole.Stats.Instructions != parts.Stats.Instructions {
		t.Fatalf("instructions differ: %d vs %d", whole.Stats.Instructions, parts.Stats.Instructions)
	}
	// Identical streams and memory behaviour: cycle counts must match.
	if diff := whole.Stats.Cycles - parts.Stats.Cycles; diff > 1 || diff < -1 {
		t.Fatalf("epoch-split execution diverged: %.1f vs %.1f cycles", whole.Stats.Cycles, parts.Stats.Cycles)
	}
}

func TestResetStatsPreservesPosition(t *testing.T) {
	mem := &fakeMem{level: LevelL1, latency: 4}
	c := newCore(t, "gcc", mem)
	c.Run(1e12, 10000)
	pos := c.Generator().Retired()
	c.ResetStats()
	if c.Stats.Instructions != 0 || c.Stats.Cycles != 0 {
		t.Fatal("stats not zeroed")
	}
	if c.Generator().Retired() != pos {
		t.Fatal("generator position moved by ResetStats")
	}
}

func TestIFetchStallsCharged(t *testing.T) {
	mem := &fakeMem{level: LevelL1, latency: 4}
	c := newCore(t, "gcc", mem)
	c.Run(1e12, 64000)
	// One I-fetch per 16 instructions.
	want := 64000 / 16
	if mem.ifetch < want-1 || mem.ifetch > want+1 {
		t.Fatalf("ifetches %d, want ~%d", mem.ifetch, want)
	}
}

func TestStatsLevelAttribution(t *testing.T) {
	mem := &fakeMem{level: LevelLLC, latency: 60}
	c := newCore(t, "gcc", mem)
	c.Run(1e12, 50000)
	if c.Stats.LoadsAt[LevelLLC] != c.Stats.Loads {
		t.Fatalf("LLC loads %d != total loads %d", c.Stats.LoadsAt[LevelLLC], c.Stats.Loads)
	}
	if c.Stats.IPC() <= 0 {
		t.Fatal("non-positive IPC")
	}
}

func BenchmarkCoreStep(b *testing.B) {
	gen, _ := trace.NewGenerator(trace.ByName("gcc"), trace.GenOptions{Seed: 1, CapacityScale: 8})
	c, _ := New(0, config.Target().Core, gen, branch.NewTournament(), &fakeMem{level: LevelL1, latency: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.step()
	}
}
