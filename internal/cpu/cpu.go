// Package cpu implements the out-of-order core timing model. It follows the
// mechanistic interval-model tradition (Karkhanis & Smith; Genbrugge,
// Eyerman & Eeckhout's interval simulation; Carlson et al.'s Sniper core
// models): in the absence of miss events a balanced superscalar core
// sustains its ILP-limited throughput, and miss events insert penalties —
// fully exposed for branch mispredictions and front-end misses, partially
// hidden and MLP-amortised for long-latency loads.
//
// The core consumes a trace.Generator's instruction stream, drives a real
// branch predictor, and resolves memory operations through a MemSystem
// (implemented by internal/sim on top of the cache/NoC/DRAM substrates).
package cpu

import (
	"fmt"

	"scalesim/internal/branch"
	"scalesim/internal/config"
	"scalesim/internal/trace"
	"scalesim/internal/units"
)

// MemLevel identifies where a memory access was served.
type MemLevel uint8

// Memory hierarchy levels.
const (
	LevelL1 MemLevel = iota + 1
	LevelL2
	LevelLLC
	LevelDRAM
)

func (l MemLevel) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("MemLevel(%d)", uint8(l))
	}
}

// MemResult describes a resolved data access.
type MemResult struct {
	// Latency is the full load-to-use latency, including NoC and DRAM
	// queuing components.
	Latency units.Cycles
	// Level is the hierarchy level that served the access.
	Level MemLevel
}

// MemSystem resolves a core's memory traffic against the shared memory
// hierarchy. Implementations account bandwidth and contention.
type MemSystem interface {
	// Load resolves a data read by core at addr.
	Load(core int, addr uint64) MemResult
	// Store resolves a data write by core at addr. Stores are posted (the
	// result is used only for store-buffer pressure modelling).
	Store(core int, addr uint64) MemResult
	// IFetch resolves an instruction fetch of the line at addr, returning
	// the front-end stall. Sequential fetches (jump=false) are
	// next-line-prefetchable: they warm the caches but never stall.
	IFetch(core int, addr uint64, jump bool) units.Cycles
}

// Stats aggregates a core's execution counters.
type Stats struct {
	Instructions uint64
	Cycles       units.Cycles
	Loads        uint64
	Stores       uint64
	LoadsAt      [5]uint64 // indexed by MemLevel
	Branch       branch.Stats
	// Stall cycle decomposition (approximate, for reporting).
	BaseCycles     units.Cycles
	BranchCycles   units.Cycles
	MemoryCycles   units.Cycles
	FrontendCycles units.Cycles
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Core is one out-of-order core executing one benchmark instance.
type Core struct {
	id   int
	cfg  config.CoreConfig
	gen  *trace.Generator
	pred branch.Predictor
	mem  MemSystem

	// Derived timing parameters.
	baseCPI    units.Cycles // max(profile ILP limit, dispatch width limit)
	hideCycles units.Cycles // latency the OoO window hides per isolated miss
	effMLP     float64      // overlap factor for independent misses

	// Fetch pacing: one I-fetch per fetchGroup instructions.
	fetchGroup  int
	sinceIFetch int

	Stats Stats
}

// instrBytes is the nominal x86 instruction footprint used to pace I-side
// line fetches (64-byte line / 4 bytes per instruction = 16 instructions).
const instrBytes = 4

// New builds a core with the given id executing gen on mem with predictor
// pred under the machine's core configuration.
func New(id int, cfg config.CoreConfig, gen *trace.Generator, pred branch.Predictor, mem MemSystem) (*Core, error) {
	if gen == nil || pred == nil || mem == nil {
		return nil, fmt.Errorf("cpu: nil generator, predictor or memory system")
	}
	if cfg.IssueWidth < 1 || cfg.ROBSize < cfg.IssueWidth {
		return nil, fmt.Errorf("cpu: invalid core config %+v", cfg)
	}
	prof := gen.Profile()
	baseCPI := prof.BaseCPI
	if min := 1 / float64(cfg.IssueWidth); baseCPI < min {
		baseCPI = min
	}
	// The reorder window hides roughly the time to drain half the ROB at
	// the base dispatch rate: shorter-latency events (L2 hits and part of an
	// LLC hit) disappear under out-of-order execution.
	hide := float64(cfg.ROBSize) / 2 / float64(cfg.IssueWidth)
	// Independent misses overlap up to the profile's inherent MLP, bounded
	// by the L1-D MSHRs.
	mlp := prof.MLP
	if m := float64(cfg.MaxL1DMisses); mlp > m {
		mlp = m
	}
	if mlp < 1 {
		mlp = 1
	}
	lineInstr := 64 / instrBytes
	return &Core{
		id:         id,
		cfg:        cfg,
		gen:        gen,
		pred:       pred,
		mem:        mem,
		baseCPI:    units.Cycles(baseCPI),
		hideCycles: units.Cycles(hide),
		effMLP:     mlp,
		fetchGroup: lineInstr,
	}, nil
}

// ID returns the core's id.
func (c *Core) ID() int { return c.id }

// Generator returns the trace generator driving this core.
func (c *Core) Generator() *trace.Generator { return c.gen }

// Run executes until cycleBudget cycles are consumed or instrBudget total
// retired instructions are reached, returning the cycles actually consumed
// in this call. Run can be invoked repeatedly (epoch by epoch).
func (c *Core) Run(cycleBudget units.Cycles, instrBudget uint64) units.Cycles {
	start := c.Stats.Cycles
	for c.Stats.Cycles-start < cycleBudget && c.Stats.Instructions < instrBudget {
		c.step()
	}
	return c.Stats.Cycles - start
}

// step retires one instruction and charges its cycles.
func (c *Core) step() {
	// Front-end: fetch a new instruction line every fetchGroup instructions.
	c.sinceIFetch++
	if c.sinceIFetch >= c.fetchGroup {
		c.sinceIFetch = 0
		addr, jump := c.gen.NextIFetch()
		stall := c.mem.IFetch(c.id, addr, jump)
		if stall > 0 {
			c.Stats.Cycles += stall
			c.Stats.FrontendCycles += stall
		}
	}

	op := c.gen.Next()
	c.Stats.Instructions++
	c.Stats.Cycles += c.baseCPI
	c.Stats.BaseCycles += c.baseCPI

	switch op.Kind {
	case trace.OpBranch:
		if c.Stats.Branch.Record(c.pred, op.BranchPC, op.Taken) {
			cost := units.Cycles(c.cfg.MispredictCost)
			c.Stats.Cycles += cost
			c.Stats.BranchCycles += cost
		}
	case trace.OpLoad:
		c.Stats.Loads++
		res := c.mem.Load(c.id, op.Addr)
		c.Stats.LoadsAt[res.Level]++
		if res.Level == LevelL1 {
			return // L1 hits are part of the base CPI
		}
		visible := res.Latency - c.hideCycles
		if visible <= 0 {
			return
		}
		if !op.Dependent {
			visible = visible.Scale(1 / c.effMLP)
		}
		c.Stats.Cycles += visible
		c.Stats.MemoryCycles += visible
	case trace.OpStore:
		c.Stats.Stores++
		res := c.mem.Store(c.id, op.Addr)
		if res.Level == LevelL1 {
			return
		}
		// Stores are posted through the store buffer; they only throttle
		// the core when deep misses back up. Charge a small, buffered
		// fraction of the visible latency.
		visible := res.Latency - c.hideCycles
		if visible <= 0 {
			return
		}
		visible = visible.Scale(1 / (2 * c.effMLP))
		c.Stats.Cycles += visible
		c.Stats.MemoryCycles += visible
	}
}

// Done reports whether the core has retired at least budget instructions.
func (c *Core) Done(budget uint64) bool { return c.Stats.Instructions >= budget }

// ResetStats zeroes the statistics (used at the warmup/measurement
// boundary) while preserving all microarchitectural state: caches stay
// warm, predictors stay trained, the generator keeps its position.
func (c *Core) ResetStats() {
	c.Stats = Stats{}
}
