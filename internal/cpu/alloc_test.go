package cpu

import (
	"testing"

	"scalesim/internal/branch"
	"scalesim/internal/config"
	"scalesim/internal/trace"
)

// TestCoreStepAllocFree enforces the per-cycle stepper's 0 allocs/op
// invariant dynamically (simlint's hotpath rule proves it statically from
// the Core.Run root). Runs under -short, so `make check` gates it.
func TestCoreStepAllocFree(t *testing.T) {
	gen, err := trace.NewGenerator(trace.ByName("gcc"), trace.GenOptions{Seed: 1, CapacityScale: 8})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	c, err := New(0, config.Target().Core, gen, branch.NewTournament(), &fakeMem{level: LevelL1, latency: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.step()
	}); n != 0 {
		t.Errorf("Core.step: %.1f allocs/op, want 0", n)
	}
}
