package trace

import (
	"testing"
	"testing/quick"

	"scalesim/internal/config"
)

func TestSuiteHas29ValidProfiles(t *testing.T) {
	suite := Suite()
	if len(suite) != 29 {
		t.Fatalf("suite has %d profiles, want 29 (paper: N=29 for SPEC CPU2017)", len(suite))
	}
	seen := map[string]bool{}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, name := range []string{"milc", "lbm", "mcf", "exchange2"} {
		if !seen[name] {
			t.Errorf("suite missing paper-referenced benchmark %q", name)
		}
	}
}

func TestByName(t *testing.T) {
	if p := ByName("lbm"); p == nil || p.Name != "lbm" {
		t.Fatalf("ByName(lbm) = %v", p)
	}
	if p := ByName("no-such-benchmark"); p != nil {
		t.Fatalf("ByName(no-such-benchmark) = %v, want nil", p)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := ByName("gcc")
	mk := func() *Generator {
		g, err := NewGenerator(p, GenOptions{Instance: 3, CapacityScale: 8, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 50000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at instruction %d", i)
		}
	}
}

func TestInstancesDecorrelated(t *testing.T) {
	p := ByName("lbm")
	g0, _ := NewGenerator(p, GenOptions{Instance: 0, Seed: 1})
	g1, _ := NewGenerator(p, GenOptions{Instance: 1, Seed: 1})
	sameAddr := 0
	memOps := 0
	for i := 0; i < 20000; i++ {
		a, b := g0.Next(), g1.Next()
		if a.Kind == OpLoad && b.Kind == OpLoad {
			memOps++
			if a.Addr == b.Addr {
				sameAddr++
			}
		}
	}
	if sameAddr > 0 {
		t.Fatalf("%d/%d identical addresses across instances; address spaces must be disjoint", sameAddr, memOps)
	}
}

func TestInstructionMixExact(t *testing.T) {
	// The Bresenham scheduler must deliver the per-KI rates exactly over
	// whole kilo-instruction multiples.
	for _, p := range Suite() {
		g, err := NewGenerator(p, GenOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		const n = 100000
		counts := map[OpKind]int{}
		for i := 0; i < n; i++ {
			counts[g.Next().Kind]++
		}
		wantLoads := n / 1000 * p.LoadsPerKI
		wantStores := n / 1000 * p.StoresPerKI
		wantBranches := n / 1000 * p.BranchesPerKI
		if counts[OpLoad] != wantLoads {
			t.Errorf("%s: %d loads, want %d", p.Name, counts[OpLoad], wantLoads)
		}
		if counts[OpStore] != wantStores {
			t.Errorf("%s: %d stores, want %d", p.Name, counts[OpStore], wantStores)
		}
		if counts[OpBranch] != wantBranches {
			t.Errorf("%s: %d branches, want %d", p.Name, counts[OpBranch], wantBranches)
		}
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	for _, p := range Suite() {
		g, err := NewGenerator(p, GenOptions{Instance: 2, CapacityScale: 8, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		lo := uint64(3) * addressSpaceStride
		hi := uint64(4) * addressSpaceStride
		for i := 0; i < 30000; i++ {
			op := g.Next()
			if op.Kind == OpLoad || op.Kind == OpStore {
				if op.Addr < lo || op.Addr >= hi {
					t.Fatalf("%s: address %#x outside instance 2 space [%#x,%#x)", p.Name, op.Addr, lo, hi)
				}
			}
		}
	}
}

func TestChaseOpsAreDependentLoads(t *testing.T) {
	p := ByName("mcf")
	g, _ := NewGenerator(p, GenOptions{Seed: 11})
	dep, loads := 0, 0
	for i := 0; i < 200000; i++ {
		op := g.Next()
		if op.Kind == OpLoad {
			loads++
			if op.Dependent {
				dep++
			}
		}
		if op.Kind == OpStore && op.Dependent {
			t.Fatal("store marked dependent")
		}
	}
	if dep == 0 {
		t.Fatal("mcf produced no dependent (pointer-chase) loads")
	}
	frac := float64(dep) / float64(loads)
	if frac < 0.02 || frac > 0.25 {
		t.Fatalf("dependent load fraction %.3f outside plausible range for mcf", frac)
	}
}

func TestBranchOutcomesVaryByProfile(t *testing.T) {
	// A branchy, hard-to-predict profile must produce more outcome entropy
	// than a regular loop-dominated one. Proxy: rate of outcome flips per
	// static branch.
	flipRate := func(name string) float64 {
		g, _ := NewGenerator(ByName(name), GenOptions{Seed: 3})
		last := map[uint64]bool{}
		flips, branches := 0, 0
		for i := 0; i < 400000; i++ {
			op := g.Next()
			if op.Kind != OpBranch {
				continue
			}
			branches++
			if prev, ok := last[op.BranchPC]; ok && prev != op.Taken {
				flips++
			}
			last[op.BranchPC] = op.Taken
		}
		return float64(flips) / float64(branches)
	}
	hard := flipRate("deepsjeng") // HardFrac 0.35
	easy := flipRate("lbm")       // HardFrac 0.02
	if hard <= easy {
		t.Fatalf("deepsjeng flip rate %.3f <= lbm flip rate %.3f; hard branches not modelled", hard, easy)
	}
}

func TestCapacityScaleShrinksFootprint(t *testing.T) {
	p := ByName("bwaves")
	g1, _ := NewGenerator(p, GenOptions{CapacityScale: 1, Seed: 1})
	g8, _ := NewGenerator(p, GenOptions{CapacityScale: 8, Seed: 1})
	if g8.Footprint() >= g1.Footprint() {
		t.Fatalf("scale 8 footprint %d >= scale 1 footprint %d", g8.Footprint(), g1.Footprint())
	}
	ratio := float64(g1.Footprint()) / float64(g8.Footprint())
	if ratio < 7.5 || ratio > 8.5 {
		t.Fatalf("footprint ratio %.2f, want ~8", ratio)
	}
}

func TestSeqPatternHasSpatialLocality(t *testing.T) {
	p := &Profile{
		Name: "seqtest", BaseCPI: 0.5, LoadsPerKI: 500, StoresPerKI: 0,
		BranchesPerKI: 0, MLP: 4, StaticBranches: 1,
		Regions:    []Region{{Size: 8 * config.MB, Frac: 1, Pattern: Seq, ElemSize: 8}},
		IFootprint: 64 * config.KB,
	}
	g, err := NewGenerator(p, GenOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lastLine uint64
	newLines, accesses := 0, 0
	for i := 0; i < 80000; i++ {
		op := g.Next()
		if op.Kind != OpLoad {
			continue
		}
		accesses++
		line := op.Addr >> 6
		if line != lastLine {
			newLines++
			lastLine = line
		}
	}
	// 8-byte elements on 64-byte lines: one new line per 8 accesses.
	frac := float64(newLines) / float64(accesses)
	if frac < 0.1 || frac > 0.15 {
		t.Fatalf("new-line fraction %.3f, want ~0.125", frac)
	}
}

func TestZipfPatternSkewsAccesses(t *testing.T) {
	p := &Profile{
		Name: "zipftest", BaseCPI: 0.5, LoadsPerKI: 500, StoresPerKI: 0,
		BranchesPerKI: 0, MLP: 4, StaticBranches: 1,
		Regions:    []Region{{Size: 16 * config.MB, Frac: 1, Pattern: Zipf, ZipfS: 1.0}},
		IFootprint: 64 * config.KB,
	}
	g, _ := NewGenerator(p, GenOptions{Seed: 1})
	pages := map[uint64]int{}
	for i := 0; i < 200000; i++ {
		op := g.Next()
		if op.Kind == OpLoad {
			pages[op.Addr>>12]++
		}
	}
	// Top page should receive far more than the uniform share.
	max := 0
	for _, c := range pages {
		if c > max {
			max = c
		}
	}
	uniform := 100000 / (16 * 1024 * 1024 / 4096)
	if max < 10*uniform {
		t.Fatalf("hottest page got %d accesses, uniform share is %d; zipf skew missing", max, uniform)
	}
}

func TestNextIFetchStaysInCode(t *testing.T) {
	g, _ := NewGenerator(ByName("perlbench"), GenOptions{Instance: 1, CapacityScale: 8, Seed: 2})
	for i := 0; i < 10000; i++ {
		a, _ := g.NextIFetch()
		if a < uint64(2)*addressSpaceStride || a >= uint64(3)*addressSpaceStride {
			t.Fatalf("ifetch %#x outside instance space", a)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := func() *Profile {
		return &Profile{
			Name: "x", BaseCPI: 0.5, LoadsPerKI: 200, StoresPerKI: 100,
			BranchesPerKI: 100, MLP: 2, StaticBranches: 16,
			Regions:    []Region{{Size: config.MB, Frac: 1, Pattern: Rand}},
			IFootprint: 64 * config.KB,
		}
	}
	breakers := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.BaseCPI = 0.1 },
		func(p *Profile) { p.LoadsPerKI = 0; p.StoresPerKI = 0 },
		func(p *Profile) { p.LoadsPerKI = 900; p.BranchesPerKI = 200 },
		func(p *Profile) { p.MLP = 0.5 },
		func(p *Profile) { p.Regions = nil },
		func(p *Profile) { p.Regions[0].Frac = 0.5 },
		func(p *Profile) { p.Regions[0].Size = 0 },
		func(p *Profile) { p.StaticBranches = 0 },
	}
	for i, b := range breakers {
		p := good()
		b(p)
		if err := p.Validate(); err == nil {
			t.Errorf("breaker %d: Validate accepted broken profile", i)
		}
	}
}

func TestGeneratorPropertyAddressAlignment(t *testing.T) {
	// Loads/stores are at least 8-byte aligned for every profile and seed.
	check := func(seed uint64, inst uint8) bool {
		g, err := NewGenerator(ByName("milc"), GenOptions{Instance: int(inst % 32), Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			op := g.Next()
			if (op.Kind == OpLoad || op.Kind == OpStore) && op.Addr%8 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSortByName(t *testing.T) {
	s := SortByName(Suite())
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Fatalf("not sorted at %d: %s >= %s", i, s[i-1].Name, s[i].Name)
		}
	}
	if len(s) != len(Suite()) {
		t.Fatal("SortByName changed length")
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g, _ := NewGenerator(ByName("gcc"), GenOptions{CapacityScale: 8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
