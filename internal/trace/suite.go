package trace

import "scalesim/internal/config"

// Suite returns the 29-benchmark workload suite used by every experiment,
// mirroring the paper's SPEC CPU2017 setup (N=29, §IV-2). Profiles span the
// same behavioural spectrum as Fig. 3's x-axis: from compute-bound
// (exchange2, leela) through LLC-capacity-sensitive, up to
// bandwidth-saturating streaming (lbm) and latency-bound pointer chasing
// (mcf, omnetpp). The most memory-intensive profile is named milc, matching
// the paper's reported worst case for PRS without extrapolation.
//
// Each profile is built from a common recipe relative to the Table II
// machine (256 KB L2, 1 MB fair LLC share per core, 32 MB full LLC):
//
//   - hot data split across an L1-resident (16 KB), an L2-resident (128 KB)
//     and an LLC-share-resident (512 KB) region — these produce the hit
//     traffic at each level;
//   - a "capacity" region (2-24 MB, uniform random): it fits in the full
//     32 MB LLC but not in a 1 MB share, so its miss rate depends on the
//     *available* LLC capacity — the mechanism behind the NRS-vs-PRS gap of
//     Fig. 3 and behind heterogeneous LLC stealing;
//   - a "stream" region (sequential, far larger than any LLC): pure
//     bandwidth demand, one compulsory miss per line;
//   - a "chase" region (dependent pointer walk): latency-bound misses with
//     MLP 1.
//
// The miss-generator fractions are dosed so that LLC MPKI on a 1 MB-share
// machine covers ~0 to ~25 across the suite, with per-benchmark bandwidth
// demand up to ~2x the 4 GB/s per-core budget — the regime in which the
// paper's contention effects (and extrapolation benefits) appear.
func Suite() []*Profile {
	const kb, mb = config.KB, config.MB

	type missGen struct {
		capMB   int     // capacity-region size in MB (0 = none)
		capFrac float64 // fraction of accesses to the capacity region
		strFrac float64 // fraction to the stream region
		strMB   int     // stream region size in MB
		strElem int     // stream element size (default 8)
		chsFrac float64 // fraction to the chase region
		chsMB   int     // chase region size in MB
		rndFrac float64 // fraction to a very large uniform region (always missing)
		rndMB   int
	}

	build := func(name string, baseCPI float64, loads, stores, branches int,
		mlp, hardFrac float64, code config.Bytes, g missGen) *Profile {
		rest := 1.0 - g.capFrac - g.strFrac - g.chsFrac - g.rndFrac
		// Hit-traffic split: the bulk of accesses are L1-resident; a few
		// percent spill to the L2 and LLC. (Real workloads have single-digit
		// L2 MPKI; an overweight LLC-resident share would saturate the NoC
		// for every benchmark.)
		regions := []Region{
			{Size: 16 * kb, Frac: rest * 0.90, Pattern: Zipf, ZipfS: 1.1},
			{Size: 96 * kb, Frac: rest * 0.08, Pattern: Zipf, ZipfS: 1.0},
			{Size: 384 * kb, Frac: rest * 0.02, Pattern: Zipf, ZipfS: 0.9},
		}
		if g.capFrac > 0 {
			regions = append(regions, Region{
				Size: config.Bytes(g.capMB) * mb, Frac: g.capFrac, Pattern: Rand,
			})
		}
		if g.strFrac > 0 {
			elem := g.strElem
			if elem == 0 {
				elem = 8
			}
			regions = append(regions, Region{
				Size: config.Bytes(g.strMB) * mb, Frac: g.strFrac, Pattern: Seq, ElemSize: elem,
			})
		}
		if g.chsFrac > 0 {
			regions = append(regions, Region{
				Size: config.Bytes(g.chsMB) * mb, Frac: g.chsFrac, Pattern: Chase,
			})
		}
		if g.rndFrac > 0 {
			regions = append(regions, Region{
				Size: config.Bytes(g.rndMB) * mb, Frac: g.rndFrac, Pattern: Rand,
			})
		}
		return &Profile{
			Name:           name,
			BaseCPI:        baseCPI,
			LoadsPerKI:     loads,
			StoresPerKI:    stores,
			BranchesPerKI:  branches,
			MLP:            mlp,
			StaticBranches: 512,
			HardFrac:       hardFrac,
			Regions:        regions,
			IFootprint:     code,
		}
	}

	return []*Profile{
		// --- compute-bound ---
		build("exchange2", 0.35, 180, 90, 180, 2.0, 0.08, 64*kb, missGen{}),
		build("leela", 0.45, 210, 60, 140, 2.0, 0.30, 128*kb, missGen{}),
		build("povray", 0.40, 250, 80, 120, 2.5, 0.12, 256*kb,
			missGen{strFrac: 0.0006, strMB: 64}),
		build("imagick", 0.35, 260, 110, 60, 3.0, 0.05, 128*kb,
			missGen{strFrac: 0.004, strMB: 64}),
		build("namd", 0.40, 280, 90, 50, 3.0, 0.05, 192*kb,
			missGen{capMB: 2, capFrac: 0.002}),

		// --- mildly cache-sensitive ---
		build("x264", 0.45, 290, 120, 80, 3.5, 0.10, 256*kb,
			missGen{capMB: 2, capFrac: 0.002, strFrac: 0.006, strMB: 64}),
		build("deepsjeng", 0.50, 230, 90, 160, 2.0, 0.30, 384*kb,
			missGen{capMB: 3, capFrac: 0.003}),
		build("perlbench", 0.55, 270, 140, 180, 1.8, 0.15, 1*mb,
			missGen{capMB: 4, capFrac: 0.003}),
		build("nab", 0.45, 270, 80, 70, 3.0, 0.08, 192*kb,
			missGen{capMB: 2, capFrac: 0.004, strFrac: 0.004, strMB: 64}),
		build("gcc", 0.60, 250, 120, 200, 1.8, 0.18, 2*mb,
			missGen{capMB: 6, capFrac: 0.005}),
		build("blender", 0.45, 280, 100, 90, 3.0, 0.10, 512*kb,
			missGen{capMB: 8, capFrac: 0.005, strFrac: 0.004, strMB: 64}),

		// --- LLC-capacity-sensitive: footprints between the 1 MB fair share
		// --- and the 32 MB full LLC; NRS is maximally wrong here ---
		build("xalancbmk", 0.55, 300, 130, 170, 1.6, 0.15, 1536*kb,
			missGen{capMB: 10, capFrac: 0.006, chsFrac: 0.003, chsMB: 2}),
		build("parest", 0.50, 300, 90, 80, 4.0, 0.05, 384*kb,
			missGen{capMB: 12, capFrac: 0.008}),
		build("wrf", 0.50, 310, 110, 70, 4.0, 0.05, 768*kb,
			missGen{capMB: 16, capFrac: 0.006, strFrac: 0.020, strMB: 64}),
		build("cam4", 0.55, 300, 110, 100, 3.5, 0.08, 1*mb,
			missGen{capMB: 20, capFrac: 0.008, strFrac: 0.024, strMB: 64}),
		build("xz", 0.60, 280, 130, 140, 1.8, 0.25, 256*kb,
			missGen{capMB: 24, capFrac: 0.009}),
		build("sphinx3", 0.50, 320, 60, 110, 3.0, 0.12, 512*kb,
			missGen{capMB: 24, capFrac: 0.010, strFrac: 0.020, strMB: 64}),
		build("omnetpp", 0.65, 290, 140, 160, 1.4, 0.20, 1536*kb,
			missGen{capMB: 8, capFrac: 0.006, chsFrac: 0.009, chsMB: 40}),

		// --- bandwidth-sensitive streaming ---
		build("cactuBSSN", 0.50, 330, 140, 40, 6.0, 0.03, 1*mb,
			missGen{capMB: 8, capFrac: 0.004, strFrac: 0.072, strMB: 96}),
		build("pop2", 0.55, 310, 120, 80, 5.0, 0.08, 1536*kb,
			missGen{capMB: 8, capFrac: 0.005, strFrac: 0.100, strMB: 96}),
		build("bwaves", 0.50, 340, 110, 50, 8.0, 0.02, 384*kb,
			missGen{capMB: 4, capFrac: 0.003, strFrac: 0.140, strMB: 128}),
		build("roms", 0.50, 330, 120, 60, 7.0, 0.04, 512*kb,
			missGen{capMB: 8, capFrac: 0.004, strFrac: 0.150, strMB: 128}),
		build("fotonik3d", 0.50, 330, 100, 40, 8.0, 0.02, 384*kb,
			missGen{capMB: 4, capFrac: 0.003, strFrac: 0.180, strMB: 128}),
		build("gemsfdtd", 0.55, 340, 110, 40, 6.0, 0.03, 512*kb,
			missGen{capMB: 16, capFrac: 0.005, strFrac: 0.190, strMB: 192}),

		// --- latency- and bandwidth-bound irregular ---
		build("soplex", 0.60, 320, 110, 130, 2.5, 0.15, 768*kb,
			missGen{capMB: 16, capFrac: 0.010, strFrac: 0.060, strMB: 64,
				rndFrac: 0.020, rndMB: 64}),
		build("libquantum", 0.45, 300, 150, 120, 10.0, 0.02, 128*kb,
			missGen{strFrac: 0.130, strMB: 128, strElem: 16}),
		build("mcf", 0.70, 330, 100, 190, 1.3, 0.20, 256*kb,
			missGen{capMB: 24, capFrac: 0.010, chsFrac: 0.026, chsMB: 160}),
		build("lbm", 0.45, 340, 170, 30, 9.0, 0.02, 128*kb,
			missGen{strFrac: 0.270, strMB: 256}),
		build("milc", 0.50, 340, 140, 50, 5.0, 0.03, 256*kb,
			missGen{strFrac: 0.210, strMB: 192, rndFrac: 0.026, rndMB: 96}),
	}
}

// ByName returns the suite profile with the given name, or nil.
func ByName(name string) *Profile {
	for _, p := range Suite() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Names returns the suite benchmark names in suite order.
func Names() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, p := range suite {
		names[i] = p.Name
	}
	return names
}
