// Package trace provides synthetic workload models standing in for the SPEC
// CPU2017 1B-instruction SimPoints used by the paper.
//
// Each benchmark is described by a statistical Profile: instruction mix,
// base (ILP-limited) CPI, a mixture of memory regions with distinct sizes
// and access patterns, memory-level parallelism, and a static branch
// population with per-branch outcome bias. A Generator turns a profile into
// a deterministic instruction/memory/branch stream that the simulator
// executes against real cache, NoC and DRAM structures — so miss rates and
// bandwidth demand are emergent, not scripted.
//
// Profiles are named after well-known SPEC benchmarks purely as mnemonic
// anchors for their behaviour class (e.g. "lbm" streams, "mcf" pointer-
// chases, "exchange2" is compute-bound); see DESIGN.md for the substitution
// rationale.
package trace

import (
	"fmt"
	"sort"

	"scalesim/internal/config"
	"scalesim/internal/xrand"
)

// OpKind classifies one instruction of the synthetic stream.
type OpKind uint8

// Instruction kinds produced by a Generator.
const (
	OpALU OpKind = iota
	OpLoad
	OpStore
	OpBranch
)

func (k OpKind) String() string {
	switch k {
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one instruction of the stream. For loads and stores, Addr is a byte
// address in the program's private address space and Dependent marks an
// access that is serially dependent on the previous miss (pointer chasing),
// which suppresses miss overlap in the core model. For branches, BranchPC
// identifies the static branch and Taken is the actual outcome.
type Op struct {
	Kind      OpKind
	Addr      uint64
	Dependent bool
	BranchPC  uint64
	Taken     bool
}

// Pattern selects the address pattern of a memory region.
type Pattern uint8

// Supported region access patterns.
const (
	// Seq walks the region sequentially, ElemSize bytes per access, wrapping
	// at the end (streaming; high spatial locality when ElemSize < line).
	Seq Pattern = iota
	// Rand accesses uniformly distributed elements of the region.
	Rand
	// Zipf accesses region elements with a Zipf popularity skew, modelling
	// hot data structures with high temporal locality.
	Zipf
	// Chase performs a pseudo-random dependent walk (linked-list traversal):
	// every access is marked Dependent, which limits MLP to 1 on this region.
	Chase
)

func (p Pattern) String() string {
	switch p {
	case Seq:
		return "seq"
	case Rand:
		return "rand"
	case Zipf:
		return "zipf"
	case Chase:
		return "chase"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Region is one component of a benchmark's data working set.
type Region struct {
	Size     config.Bytes // nominal footprint (before capacity scaling)
	Frac     float64      // fraction of data accesses that hit this region
	Pattern  Pattern
	ElemSize int     // bytes per element for Seq (spatial locality); 0 = 8
	ZipfS    float64 // skew for Zipf (0 = 0.8)
}

// Profile is the statistical model of one benchmark.
type Profile struct {
	Name string
	// BaseCPI is the ILP-limited CPI in the absence of miss events. It can
	// be below 1/width only for trivially parallel code; typical values are
	// 0.3-0.9 for a 4-wide core.
	BaseCPI float64
	// Instruction mix, per kilo-instruction.
	LoadsPerKI    int
	StoresPerKI   int
	BranchesPerKI int
	// MLP is the typical number of overlapping outstanding misses for
	// independent (non-Dependent) accesses.
	MLP float64
	// Branch population: StaticBranches branches whose taken-bias is drawn
	// from a mixture; HardFrac of them are near-50/50 data-dependent
	// branches, the rest are heavily biased loop/guard branches.
	StaticBranches int
	HardFrac       float64
	// Data regions. Fracs must sum to ~1.
	Regions []Region
	// IFootprint is the instruction-side working set (code size).
	IFootprint config.Bytes
}

// Validate reports the first inconsistency in the profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile with empty name")
	}
	if p.BaseCPI < 0.25 {
		return fmt.Errorf("trace: %s: BaseCPI %.2f below 4-wide dispatch floor 0.25", p.Name, p.BaseCPI)
	}
	mem := p.LoadsPerKI + p.StoresPerKI
	if mem <= 0 || mem+p.BranchesPerKI > 1000 {
		return fmt.Errorf("trace: %s: instruction mix loads+stores=%d branches=%d invalid", p.Name, mem, p.BranchesPerKI)
	}
	if p.MLP < 1 {
		return fmt.Errorf("trace: %s: MLP %.2f < 1", p.Name, p.MLP)
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("trace: %s: no memory regions", p.Name)
	}
	sum := 0.0
	for i, r := range p.Regions {
		if r.Size <= 0 {
			return fmt.Errorf("trace: %s: region %d has size %v", p.Name, i, r.Size)
		}
		if r.Frac < 0 {
			return fmt.Errorf("trace: %s: region %d has negative frac", p.Name, i)
		}
		sum += r.Frac
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("trace: %s: region fracs sum to %.3f, want 1", p.Name, sum)
	}
	if p.StaticBranches <= 0 && p.BranchesPerKI > 0 {
		return fmt.Errorf("trace: %s: branches in mix but no static branches", p.Name)
	}
	return nil
}

// Generator produces the deterministic op stream of one benchmark instance.
// Distinct instances of the same profile (different Instance values) produce
// decorrelated streams in disjoint address spaces, modelling the paper's
// "co-running instances starting at slightly different offsets".
type Generator struct {
	prof *Profile

	rng *xrand.RNG

	// kinds is a repeating 1000-slot schedule realising the per-KI
	// instruction mix exactly, with loads/stores/branches spread evenly.
	kinds [1000]OpKind

	regions []regionState
	regAcc  []float64 // region interleaving accumulators

	branches []branchState
	brZipf   *xrand.Zipf

	// instruction-side state
	ibase   uint64
	isize   uint64
	icursor uint64
	// codeZipf picks jump targets: real code time is concentrated in hot
	// functions, so jump targets follow a Zipf popularity over 256-byte
	// code chunks rather than a uniform sweep of the footprint.
	codeZipf *xrand.Zipf

	retired uint64
}

type regionState struct {
	base     uint64
	size     uint64 // scaled size in bytes
	elem     uint64
	pattern  Pattern
	zipf     *xrand.Zipf
	zipfGran uint64 // bytes per zipf bucket
	cursor   uint64
	chaseLCG uint64
}

type branchState struct {
	pc   uint64
	bias float64 // probability taken
}

// GenOptions configures generator instantiation.
type GenOptions struct {
	// Instance distinguishes co-running copies of the same benchmark: it
	// offsets seeds, start cursors and the address space.
	Instance int
	// CapacityScale divides all region footprints (and code footprint), the
	// same global miniaturisation applied to the simulated machine. 0 = 1.
	CapacityScale int
	// Seed is the experiment-level base seed. 0 is a valid seed.
	Seed uint64
}

// addressSpaceStride separates instances' address spaces. 1 TB apart.
const addressSpaceStride = 1 << 40

// NewGenerator instantiates a deterministic stream for prof.
func NewGenerator(prof *Profile, opts GenOptions) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	scale := opts.CapacityScale
	if scale <= 0 {
		scale = 1
	}
	seed := opts.Seed ^ hashName(prof.Name) ^ (uint64(opts.Instance+1) * 0x9e3779b97f4a7c15)
	rng := xrand.New(seed)

	g := &Generator{
		prof: prof,
		rng:  rng,
	}
	g.buildKindSchedule()

	base := uint64(opts.Instance+1) * addressSpaceStride
	// Data regions are laid out from 1 GB within the instance's space.
	next := base + (1 << 30)
	for _, r := range prof.Regions {
		size := uint64(int64(r.Size)) / uint64(scale)
		if size < 256 {
			size = 256
		}
		elem := uint64(r.ElemSize)
		if elem == 0 {
			elem = 8
		}
		rs := regionState{
			base:    next,
			size:    size,
			elem:    elem,
			pattern: r.Pattern,
			// Each instance starts its walk at a different offset.
			cursor:   (uint64(opts.Instance) * 8191 * elem) % size,
			chaseLCG: rng.Uint64() | 1,
		}
		if r.Pattern == Zipf {
			s := r.ZipfS
			if s == 0 {
				s = 0.8
			}
			// Bucketise the region at 4 KB granularity (pages) to keep the
			// sampler table small; intra-bucket offsets are uniform.
			buckets := int(size / 4096)
			if buckets < 8 {
				buckets = 8
			}
			if buckets > 65536 {
				buckets = 65536
			}
			rs.zipf = xrand.NewZipf(rng.Split(), buckets, s)
			rs.zipfGran = size / uint64(buckets)
		}
		g.regions = append(g.regions, rs)
		next += size + (1 << 24) // 16 MB guard gap
	}
	g.regAcc = make([]float64, len(prof.Regions))

	// Static branch population.
	if prof.BranchesPerKI > 0 {
		g.branches = make([]branchState, prof.StaticBranches)
		for i := range g.branches {
			// The minority-direction rate bounds the achievable prediction
			// accuracy on i.i.d. outcomes: easy loop/guard branches flip
			// 0.5-2% of the time, hard data-dependent ones 10-35%.
			bias := 0.005 + 0.015*rng.Float64()
			if rng.Bool(prof.HardFrac) {
				bias = 0.10 + 0.25*rng.Float64()
			}
			if rng.Bool(0.5) {
				bias = 1 - bias
			}
			g.branches[i] = branchState{
				pc:   base + uint64(i)*16,
				bias: bias,
			}
		}
		// Branch execution frequency is itself skewed: a few hot branches
		// dominate, as in real programs.
		g.brZipf = xrand.NewZipf(rng.Split(), prof.StaticBranches, 1.1)
	}

	// The code footprint scales with the data miniaturisation, but the
	// simulator keeps the L1-I at native size: together this keeps
	// instruction-side misses a second-order effect (significant only for
	// the large-code benchmarks such as gcc and perlbench), matching real
	// machines, where the I-side rarely leaves the private hierarchy.
	g.ibase = base + (1 << 20)
	g.isize = uint64(int64(prof.IFootprint)) / uint64(scale)
	if g.isize < 4096 {
		g.isize = 4096
	}
	g.icursor = (uint64(opts.Instance) * 997 * 64) % g.isize
	chunks := int(g.isize / 256)
	if chunks < 8 {
		chunks = 8
	}
	g.codeZipf = xrand.NewZipf(rng.Split(), chunks, 1.2)
	return g, nil
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Profile returns the profile this generator was built from.
func (g *Generator) Profile() *Profile { return g.prof }

// Retired returns the number of instructions generated so far.
func (g *Generator) Retired() uint64 { return g.retired }

// NextIFetch returns the instruction-side line address for the current
// fetch group and whether it is a non-sequential fetch (taken jump or call
// target). The code footprint is walked pseudo-sequentially with occasional
// jumps, producing realistic L1-I behaviour for large-footprint benchmarks;
// sequential fetches are next-line-prefetchable and should not stall the
// front end even when they miss.
func (g *Generator) NextIFetch() (addr uint64, jump bool) {
	if g.rng.Bool(0.02) { // function call / long jump to a (hot) target
		g.icursor = uint64(g.codeZipf.Next()) * 256 % g.isize
		return g.ibase + g.icursor, true
	}
	g.icursor += 64
	if g.icursor >= g.isize {
		g.icursor = 0
	}
	return g.ibase + g.icursor, false
}

// buildKindSchedule fills g.kinds with a 1000-slot repeating pattern that
// realises the per-KI mix exactly. Each kind's occurrences are spread evenly
// across the window (Bresenham placement); collisions shift to the next free
// slot, preserving exact counts.
func (g *Generator) buildKindSchedule() {
	place := func(kind OpKind, count int) {
		if count <= 0 {
			return
		}
		for i := 0; i < count; i++ {
			slot := i * 1000 / count
			for g.kinds[slot] != OpALU {
				slot = (slot + 1) % 1000
			}
			g.kinds[slot] = kind
		}
	}
	place(OpLoad, g.prof.LoadsPerKI)
	place(OpStore, g.prof.StoresPerKI)
	place(OpBranch, g.prof.BranchesPerKI)
}

// Next produces the next instruction. The kind schedule is exact; addresses
// and branch outcomes are drawn from the profile's distributions.
func (g *Generator) Next() Op {
	kind := g.kinds[g.retired%1000]
	g.retired++
	switch kind {
	case OpLoad:
		return g.memOp(false)
	case OpStore:
		return g.memOp(true)
	case OpBranch:
		return g.branchOp()
	default:
		return Op{Kind: OpALU}
	}
}

func (g *Generator) memOp(isStore bool) Op {
	// Pick the region whose accumulated deficit is largest (exact-fraction
	// interleaving, deterministic).
	best, bestV := 0, -1.0
	for i := range g.regAcc {
		g.regAcc[i] += g.prof.Regions[i].Frac
		if g.regAcc[i] > bestV {
			bestV = g.regAcc[i]
			best = i
		}
	}
	g.regAcc[best] -= 1
	rs := &g.regions[best]

	var off uint64
	dep := false
	switch rs.pattern {
	case Seq:
		rs.cursor += rs.elem
		if rs.cursor >= rs.size {
			rs.cursor = 0
		}
		off = rs.cursor
	case Rand:
		off = g.rng.Uint64() % rs.size
		off &^= 7
	case Zipf:
		b := uint64(rs.zipf.Next())
		off = b*rs.zipfGran + g.rng.Uint64()%rs.zipfGran
		off &^= 7
	case Chase:
		// Deterministic pseudo-random dependent walk: an LCG over the region
		// visits lines in an unpredictable order; each access depends on the
		// previous one.
		rs.chaseLCG = rs.chaseLCG*6364136223846793005 + 1442695040888963407
		off = (rs.chaseLCG >> 11) % rs.size
		off &^= 63 // line-granular nodes
		dep = true
	}
	kind := OpLoad
	if isStore {
		kind = OpStore
		dep = false // stores retire without stalling the dependence chain
	}
	return Op{Kind: kind, Addr: rs.base + off, Dependent: dep}
}

func (g *Generator) branchOp() Op {
	if len(g.branches) == 0 {
		return Op{Kind: OpALU}
	}
	b := &g.branches[g.brZipf.Next()]
	return Op{Kind: OpBranch, BranchPC: b.pc, Taken: g.rng.Bool(b.bias)}
}

// Footprint returns the total scaled data footprint in bytes.
func (g *Generator) Footprint() uint64 {
	var total uint64
	for _, r := range g.regions {
		total += r.size
	}
	return total
}

// SortByName returns profiles sorted by name (stable experiment ordering).
func SortByName(ps []*Profile) []*Profile {
	out := make([]*Profile, len(ps))
	copy(out, ps)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
