package trace

import (
	"testing"

	"scalesim/internal/config"
)

func TestParallelProfileValidate(t *testing.T) {
	good := ParallelByName("par.stream")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Skew = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("skew > 1 accepted")
	}
	bad = *good
	bad.PrivateRegions = []bool{true}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched private flags accepted")
	}
	bad = *good
	bad.Serial.BaseCPI = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid serial profile accepted")
	}
}

func TestThreadBudgetSkew(t *testing.T) {
	p := &ParallelProfile{
		Serial:          *ByName("gcc"),
		BarrierInterval: 100_000,
		Skew:            0.4,
	}
	b0 := p.ThreadBudget(0, 4)
	b3 := p.ThreadBudget(3, 4)
	if b0 >= b3 {
		t.Fatalf("thread 0 budget %d >= thread 3 budget %d with positive skew", b0, b3)
	}
	// Mean across threads stays near the interval.
	var sum uint64
	for t := 0; t < 4; t++ {
		sum += p.ThreadBudget(t, 4)
	}
	mean := sum / 4
	if mean < 95_000 || mean > 105_000 {
		t.Fatalf("mean thread budget %d, want ~100k", mean)
	}
	// No skew / single thread: exactly the interval.
	p.Skew = 0
	if p.ThreadBudget(2, 4) != 100_000 {
		t.Fatal("unskewed budget != interval")
	}
	if p.ThreadBudget(0, 1) != 100_000 {
		t.Fatal("single-thread budget != interval")
	}
	p.BarrierInterval = 0
	if p.ThreadBudget(0, 4) != 0 {
		t.Fatal("budget without barriers != 0")
	}
}

func TestThreadGeneratorSharedSeqPartitionSizes(t *testing.T) {
	pp := &ParallelProfile{
		Serial: Profile{
			Name: "partest", BaseCPI: 0.5, LoadsPerKI: 400, StoresPerKI: 0,
			BranchesPerKI: 0, MLP: 4, StaticBranches: 1,
			Regions:    []Region{{Size: 64 * config.MB, Frac: 1, Pattern: Seq, ElemSize: 8}},
			IFootprint: 64 * config.KB,
		},
		BarrierInterval: 10_000,
	}
	// Each of 4 threads must stay within its quarter of the region.
	for th := 0; th < 4; th++ {
		g, err := NewThreadGenerator(pp, th, 4, GenOptions{Seed: 3, CapacityScale: 8})
		if err != nil {
			t.Fatal(err)
		}
		var lo, hi uint64
		first := true
		for i := 0; i < 100000; i++ {
			op := g.Next()
			if op.Kind != OpLoad {
				continue
			}
			if first || op.Addr < lo {
				lo = op.Addr
			}
			if first || op.Addr > hi {
				hi = op.Addr
			}
			first = false
		}
		span := hi - lo
		part := uint64(64*config.MB) / 8 / 4 // scaled region / threads
		if span > part {
			t.Fatalf("thread %d spans %d bytes, partition is %d", th, span, part)
		}
	}
}

func TestThreadGeneratorsDeterministic(t *testing.T) {
	pp := ParallelByName("par.graph")
	mk := func() *Generator {
		g, err := NewThreadGenerator(pp, 2, 8, GenOptions{Seed: 9, CapacityScale: 16})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 30000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("thread streams diverged at %d", i)
		}
	}
}

func TestParallelSuiteNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range ParallelSuite() {
		if seen[p.Serial.Name] {
			t.Fatalf("duplicate parallel workload %q", p.Serial.Name)
		}
		seen[p.Serial.Name] = true
	}
}
