package trace

import (
	"fmt"

	"scalesim/internal/config"
)

// ParallelProfile describes a data-parallel multi-threaded workload: every
// thread executes the same code on a partition of shared data, with barrier
// synchronisation between parallel iterations. This implements the paper's
// §V-E6 outlook ("scale-model simulation might be easily applied to
// data-parallel multi-threaded workloads in which all threads execute the
// same code and there is very little or no communication between threads").
//
// Shared Seq regions are partitioned: thread t streams the t-th contiguous
// slice. Shared Zipf/Rand/Chase regions are accessed by all threads over
// the full range (read-mostly shared data: constructive LLC sharing).
// Private regions (stack, per-thread scratch) are replicated at per-thread
// offsets.
type ParallelProfile struct {
	// Serial is the per-thread behaviour (instruction mix, regions, ...).
	Serial Profile
	// PrivateRegions marks which Serial.Regions indices are thread-private
	// (replicated per thread) rather than shared.
	PrivateRegions []bool
	// BarrierInterval is the number of instructions each thread retires
	// between barriers (one "parallel iteration"). 0 disables barriers.
	BarrierInterval uint64
	// Skew is the per-thread work imbalance: thread t's barrier interval
	// is scaled by 1 + Skew*(t/(N-1) - 0.5), modelling data skew. 0 means
	// perfectly balanced.
	Skew float64
}

// Validate reports the first inconsistency.
func (p *ParallelProfile) Validate() error {
	if err := p.Serial.Validate(); err != nil {
		return err
	}
	if p.PrivateRegions != nil && len(p.PrivateRegions) != len(p.Serial.Regions) {
		return fmt.Errorf("trace: %s: %d private flags for %d regions",
			p.Serial.Name, len(p.PrivateRegions), len(p.Serial.Regions))
	}
	if p.Skew < 0 || p.Skew > 1 {
		return fmt.Errorf("trace: %s: skew %.2f outside [0, 1]", p.Serial.Name, p.Skew)
	}
	return nil
}

// NewThreadGenerator builds the instruction stream of one thread of a
// parallel workload with `threads` threads in a shared address space.
func NewThreadGenerator(pp *ParallelProfile, thread, threads int, opts GenOptions) (*Generator, error) {
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	if thread < 0 || thread >= threads || threads < 1 {
		return nil, fmt.Errorf("trace: thread %d of %d", thread, threads)
	}
	// All threads share the instance-0 address space; thread identity
	// enters through seeds, cursor offsets and partitioning below.
	base := GenOptions{
		Instance:      0,
		CapacityScale: opts.CapacityScale,
		Seed:          opts.Seed ^ (uint64(thread+1) * 0x9e3779b97f4a7c15),
	}
	g, err := NewGenerator(&pp.Serial, base)
	if err != nil {
		return nil, err
	}
	for i := range g.regions {
		rs := &g.regions[i]
		private := pp.PrivateRegions != nil && pp.PrivateRegions[i]
		switch {
		case private:
			// Replicate at a per-thread offset past the shared copy; the
			// guard gaps in the layout keep siblings apart for small
			// regions, and the address-space stride keeps threads apart
			// even for large ones.
			rs.base += uint64(thread+1) * (rs.size + (1 << 21))
		case rs.pattern == Seq:
			// Partition the stream: thread t walks slice [t*size/N, (t+1)*size/N).
			part := rs.size / uint64(threads)
			if part < rs.elem {
				part = rs.elem
			}
			rs.base += uint64(thread) * part
			rs.size = part
			rs.cursor = 0
		default:
			// Shared random/zipf/chase region: full range, thread-specific
			// RNG stream (already seeded above).
		}
	}
	// Spread thread start positions in the shared code.
	g.icursor = (uint64(thread) * 4096) % g.isize
	return g, nil
}

// ThreadBudget returns thread t's instruction count per barrier interval
// under the profile's skew.
func (p *ParallelProfile) ThreadBudget(thread, threads int) uint64 {
	if p.BarrierInterval == 0 {
		return 0
	}
	if threads <= 1 || p.Skew == 0 {
		return p.BarrierInterval
	}
	frac := float64(thread) / float64(threads-1)
	scaled := float64(p.BarrierInterval) * (1 + p.Skew*(frac-0.5))
	if scaled < 1 {
		scaled = 1
	}
	return uint64(scaled)
}

// ParallelSuite returns the data-parallel workloads used by the
// multi-threaded extension experiment. They span the same spectrum as the
// sequential suite: a bandwidth-bound stream, a cache-friendly stencil, an
// LLC-sharing-friendly table scan, and an irregular graph kernel.
func ParallelSuite() []*ParallelProfile {
	const kb, mb = config.KB, config.MB
	return []*ParallelProfile{
		{
			// STREAM-like triad over a large partitioned array.
			Serial: Profile{
				Name: "par.stream", BaseCPI: 0.45, LoadsPerKI: 340, StoresPerKI: 170,
				BranchesPerKI: 30, MLP: 9, StaticBranches: 128, HardFrac: 0.02,
				Regions: []Region{
					{Size: 16 * kb, Frac: 0.66, Pattern: Zipf, ZipfS: 1.1},
					{Size: 256 * mb, Frac: 0.34, Pattern: Seq, ElemSize: 8},
				},
				IFootprint: 64 * kb,
			},
			PrivateRegions:  []bool{true, false},
			BarrierInterval: 100_000,
		},
		{
			// Stencil: streaming with strong temporal reuse of a private tile.
			Serial: Profile{
				Name: "par.stencil", BaseCPI: 0.50, LoadsPerKI: 330, StoresPerKI: 120,
				BranchesPerKI: 60, MLP: 6, StaticBranches: 256, HardFrac: 0.05,
				Regions: []Region{
					{Size: 16 * kb, Frac: 0.72, Pattern: Zipf, ZipfS: 1.1},
					{Size: 192 * kb, Frac: 0.16, Pattern: Zipf, ZipfS: 1.0},
					{Size: 96 * mb, Frac: 0.12, Pattern: Seq, ElemSize: 8},
				},
				IFootprint: 128 * kb,
			},
			PrivateRegions:  []bool{true, true, false},
			BarrierInterval: 80_000,
		},
		{
			// Shared-table scan: all threads hit one hot shared structure
			// (constructive LLC sharing) plus partitioned input.
			Serial: Profile{
				Name: "par.tablescan", BaseCPI: 0.55, LoadsPerKI: 310, StoresPerKI: 90,
				BranchesPerKI: 140, MLP: 4, StaticBranches: 512, HardFrac: 0.15,
				Regions: []Region{
					{Size: 16 * kb, Frac: 0.70, Pattern: Zipf, ZipfS: 1.1},
					{Size: 8 * mb, Frac: 0.22, Pattern: Zipf, ZipfS: 0.9},
					{Size: 128 * mb, Frac: 0.08, Pattern: Seq, ElemSize: 8},
				},
				IFootprint: 256 * kb,
			},
			PrivateRegions:  []bool{true, false, false},
			BarrierInterval: 60_000,
			Skew:            0.15,
		},
		{
			// Irregular graph kernel: shared pointer chasing, low MLP,
			// skewed per-thread work.
			Serial: Profile{
				Name: "par.graph", BaseCPI: 0.65, LoadsPerKI: 320, StoresPerKI: 80,
				BranchesPerKI: 160, MLP: 1.6, StaticBranches: 512, HardFrac: 0.25,
				Regions: []Region{
					{Size: 16 * kb, Frac: 0.80, Pattern: Zipf, ZipfS: 1.1},
					{Size: 12 * mb, Frac: 0.17, Pattern: Zipf, ZipfS: 0.7},
					{Size: 96 * mb, Frac: 0.03, Pattern: Chase},
				},
				IFootprint: 256 * kb,
			},
			PrivateRegions:  []bool{true, false, false},
			BarrierInterval: 50_000,
			Skew:            0.30,
		},
	}
}

// ParallelByName returns the parallel-suite profile with the given name.
func ParallelByName(name string) *ParallelProfile {
	for _, p := range ParallelSuite() {
		if p.Serial.Name == name {
			return p
		}
	}
	return nil
}
