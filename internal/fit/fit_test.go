package fit

import (
	"math"
	"testing"
	"testing/quick"

	"scalesim/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1.25
	}
	c, err := Fit(Linear, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.A, 2.5, 1e-9) || !almostEq(c.B, -1.25, 1e-9) {
		t.Fatalf("linear fit (%v, %v), want (2.5, -1.25)", c.A, c.B)
	}
	if !almostEq(c.Eval(32), 2.5*32-1.25, 1e-9) {
		t.Fatalf("Eval(32) = %v", c.Eval(32))
	}
	if r2 := c.R2(xs, ys); !almostEq(r2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", r2)
	}
}

func TestLogarithmicExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.3*math.Log(x) + 0.9
	}
	c, err := Fit(Logarithmic, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.A, 0.3, 1e-9) || !almostEq(c.B, 0.9, 1e-9) {
		t.Fatalf("log fit (%v, %v), want (0.3, 0.9)", c.A, c.B)
	}
	if !almostEq(c.Eval(32), 0.3*math.Log(32)+0.9, 1e-9) {
		t.Fatalf("Eval(32) = %v", c.Eval(32))
	}
}

func TestPowerExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1.7 * math.Pow(x, -0.4)
	}
	c, err := Fit(Power, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.A, 1.7, 1e-9) || !almostEq(c.B, -0.4, 1e-9) {
		t.Fatalf("power fit (%v, %v), want (1.7, -0.4)", c.A, c.B)
	}
}

func TestLogBeatsLinearOnSaturatingCurve(t *testing.T) {
	// IPC-vs-cores curves saturate; the paper finds logarithmic regression
	// most accurate (Fig. 9). Check the analogous property here.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - 0.3/math.Sqrt(x) // saturating, not exactly log
	}
	lin, err := Fit(Linear, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := Fit(Logarithmic, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if lg.R2(xs, ys) <= lin.R2(xs, ys) {
		t.Fatalf("log R2 %.4f <= linear R2 %.4f on a saturating curve",
			lg.R2(xs, ys), lin.R2(xs, ys))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(Linear, []float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Fit(Linear, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Fit(Linear, []float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, err := Fit(Logarithmic, []float64{0, 2}, []float64{1, 2}); err == nil {
		t.Error("log model with x=0 accepted")
	}
	if _, err := Fit(Power, []float64{1, 2}, []float64{-1, 2}); err == nil {
		t.Error("power model with negative y accepted")
	}
	if _, err := Fit(Linear, []float64{math.NaN(), 1}, []float64{1, 2}); err == nil {
		t.Error("NaN point accepted")
	}
	if _, err := Fit(Model(42), []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestResidualOrthogonalityProperty(t *testing.T) {
	// Least squares property: residuals of a linear fit sum to ~0.
	rng := xrand.New(5)
	check := func(seed uint16) bool {
		xs := []float64{1, 2, 4, 8, 16}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = 0.5*xs[i] + 3 + rng.NormFloat64()
		}
		c, err := Fit(Linear, xs, ys)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := range xs {
			sum += ys[i] - c.Eval(xs[i])
		}
		return math.Abs(sum) < 1e-8
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestR2Degenerate(t *testing.T) {
	c := Curve{Model: Linear, A: 0, B: 5}
	if r2 := c.R2([]float64{1, 2}, []float64{5, 5}); r2 != 1 {
		t.Fatalf("perfect fit of constant data: R2 = %v, want 1", r2)
	}
	if r2 := c.R2([]float64{1, 2}, []float64{4, 4}); r2 != 0 {
		t.Fatalf("wrong constant fit: R2 = %v, want 0", r2)
	}
	if !math.IsNaN(c.R2(nil, nil)) {
		t.Fatal("R2 of empty data should be NaN")
	}
}

func TestModelString(t *testing.T) {
	if Linear.String() != "linear" || Power.String() != "power" || Logarithmic.String() != "log" {
		t.Fatal("model names wrong")
	}
}

func TestEvalUnknownModel(t *testing.T) {
	c := Curve{Model: Model(9)}
	if !math.IsNaN(c.Eval(1)) {
		t.Fatal("unknown model Eval should be NaN")
	}
}
