// Package fit implements the least-squares curve fits used by the paper's
// ML-based regression step (§III-B2 and §V-E2): given per-application
// performance predicted at several scale-model core counts, extrapolate to
// the target core count with a linear (y = a*x + b), power (y = a*x^b) or
// logarithmic (y = a*ln(x) + b) model of performance versus core count.
package fit

import (
	"fmt"
	"math"
)

// Model selects the functional form of the fitted curve.
type Model int

// Supported curve families.
const (
	Linear Model = iota
	Power
	Logarithmic
)

func (m Model) String() string {
	switch m {
	case Linear:
		return "linear"
	case Power:
		return "power"
	case Logarithmic:
		return "log"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Curve is a fitted two-parameter model.
type Curve struct {
	Model Model
	A, B  float64
}

// leastSquares fits y = a*x + b, returning a and b.
func leastSquares(xs, ys []float64) (a, b float64, err error) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, 0, fmt.Errorf("fit: degenerate x values (all equal?)")
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	return a, b, nil
}

// Fit performs least-squares fitting of the chosen model to points
// (xs[i], ys[i]). Power and logarithmic models require positive x; the
// power model also requires positive y. At least two points are needed.
func Fit(model Model, xs, ys []float64) (Curve, error) {
	if len(xs) != len(ys) {
		return Curve{}, fmt.Errorf("fit: %d x values but %d y values", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Curve{}, fmt.Errorf("fit: need at least 2 points, got %d", len(xs))
	}
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) || math.IsInf(xs[i], 0) || math.IsInf(ys[i], 0) {
			return Curve{}, fmt.Errorf("fit: non-finite point (%v, %v)", xs[i], ys[i])
		}
	}
	switch model {
	case Linear:
		a, b, err := leastSquares(xs, ys)
		if err != nil {
			return Curve{}, err
		}
		return Curve{Model: Linear, A: a, B: b}, nil
	case Logarithmic:
		lx := make([]float64, len(xs))
		for i, x := range xs {
			if x <= 0 {
				return Curve{}, fmt.Errorf("fit: logarithmic model requires x > 0, got %v", x)
			}
			lx[i] = math.Log(x)
		}
		a, b, err := leastSquares(lx, ys)
		if err != nil {
			return Curve{}, err
		}
		return Curve{Model: Logarithmic, A: a, B: b}, nil
	case Power:
		lx := make([]float64, len(xs))
		ly := make([]float64, len(ys))
		for i := range xs {
			if xs[i] <= 0 || ys[i] <= 0 {
				return Curve{}, fmt.Errorf("fit: power model requires positive points, got (%v, %v)", xs[i], ys[i])
			}
			lx[i] = math.Log(xs[i])
			ly[i] = math.Log(ys[i])
		}
		// ln y = ln a + b*ln x.
		b, lna, err := leastSquares(lx, ly)
		if err != nil {
			return Curve{}, err
		}
		return Curve{Model: Power, A: math.Exp(lna), B: b}, nil
	default:
		return Curve{}, fmt.Errorf("fit: unknown model %v", model)
	}
}

// Eval returns the fitted curve's value at x.
func (c Curve) Eval(x float64) float64 {
	switch c.Model {
	case Linear:
		return c.A*x + c.B
	case Logarithmic:
		return c.A*math.Log(x) + c.B
	case Power:
		return c.A * math.Pow(x, c.B)
	default:
		return math.NaN()
	}
}

// R2 returns the coefficient of determination of the curve on the points.
func (c Curve) R2(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(ys) == 0 {
		return math.NaN()
	}
	meanY := 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range xs {
		d := ys[i] - c.Eval(xs[i])
		ssRes += d * d
		t := ys[i] - meanY
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
