package server

import (
	"errors"
	"fmt"
	"sync"
)

// Admission errors. Both surface on the wire: ErrQueueFull as HTTP 429
// with a Retry-After header, ErrDraining as HTTP 503 once shutdown began.
// Wrapped errors carry detail; match with errors.Is.
var (
	ErrQueueFull = errors.New("admission queue full")
	ErrDraining  = errors.New("server draining")
)

// task is one admitted unit of work: a prepared design point plus the
// flight its completion resolves.
type task struct {
	prep Prepared
	fl   *flight
}

// clientFIFO is one client's pending jobs, in admission order.
type clientFIFO struct {
	id    string
	items []*task
}

// admitQueue is the bounded, client-fair admission queue. Depth is capped
// across all clients — admission beyond the cap is shed, never blocked —
// and dequeue round-robins across the clients that currently hold queued
// jobs, one job per turn, so a client that dumps a large batch cannot
// starve a client submitting single jobs. Within one client, jobs leave
// in FIFO order.
//
// Fairness state is an explicit ring of active clients (map iteration
// order is never consulted), so scheduling is deterministic given the
// admission order.
type admitQueue struct {
	mu   sync.Mutex
	wake *sync.Cond

	capacity int
	n        int // queued tasks across all clients
	closed   bool
	shed     int // admissions rejected because the queue was full

	clients map[string]*clientFIFO // client id -> pending jobs
	ring    []*clientFIFO          // round-robin order of clients with pending jobs
	next    int                    // ring cursor
}

func newAdmitQueue(capacity int) *admitQueue {
	q := &admitQueue{capacity: capacity, clients: make(map[string]*clientFIFO)}
	q.wake = sync.NewCond(&q.mu)
	return q
}

// enqueue admits one task under the client's identity. It never blocks: a
// full queue sheds the task with ErrQueueFull, a closed queue rejects it
// with ErrDraining.
func (q *admitQueue) enqueue(client string, t *task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("server: %w", ErrDraining)
	}
	if q.n >= q.capacity {
		q.shed++
		return fmt.Errorf("server: %w: %d jobs queued (capacity %d)", ErrQueueFull, q.n, q.capacity)
	}
	cq := q.clients[client]
	if cq == nil {
		cq = &clientFIFO{id: client}
		q.clients[client] = cq
	}
	if len(cq.items) == 0 {
		q.ring = append(q.ring, cq)
	}
	cq.items = append(cq.items, t)
	q.n++
	q.wake.Signal()
	return nil
}

// dequeue blocks until a task is available and returns it, or returns
// false once the queue is closed and fully drained. The pick is the next
// client in the ring, advancing one client per dequeue.
func (q *admitQueue) dequeue() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.n > 0 {
			if q.next >= len(q.ring) {
				q.next = 0
			}
			cq := q.ring[q.next]
			t := cq.items[0]
			cq.items = cq.items[1:]
			q.n--
			if len(cq.items) == 0 {
				// Client exhausted: drop it from the ring (the cursor now
				// points at its successor) and the index.
				q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
				delete(q.clients, cq.id)
			} else {
				q.next++
			}
			return t, true
		}
		if q.closed {
			return nil, false
		}
		q.wake.Wait()
	}
}

// close stops admission. Already-queued tasks still drain through
// dequeue; once they are gone, dequeue returns false. Idempotent.
func (q *admitQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake.Broadcast()
}

// queueStats is a consistent snapshot of the queue's state.
type queueStats struct {
	depth    int // tasks currently queued
	capacity int
	clients  int // distinct client identities holding queued tasks
	shed     int // admissions rejected since construction
	closed   bool
}

func (q *admitQueue) snapshot() queueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return queueStats{
		depth:    q.n,
		capacity: q.capacity,
		clients:  len(q.clients),
		shed:     q.shed,
		closed:   q.closed,
	}
}
