package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"scalesim"
	apiv1 "scalesim/api/v1"
)

// fakePrepared keys a job by its seed, so distinct seeds are distinct
// design points.
type fakePrepared struct{ key string }

func (p fakePrepared) Key() string { return p.key }

// fakeBackend is a gated Backend: when gated, every Run announces itself
// on entered and blocks until release is closed. It has no memo tiers —
// every Run is a compute — so the number of Run calls measures exactly
// how many requests reached execution.
type fakeBackend struct {
	entered chan string   // nil: don't announce
	release chan struct{} // nil: don't block

	mu    sync.Mutex
	runs  int
	stats scalesim.CampaignStats
}

func (b *fakeBackend) Prepare(job scalesim.CampaignJob) (Prepared, error) {
	if len(job.Benchmarks) > 0 && job.Benchmarks[0] == "bad" {
		return nil, fmt.Errorf("%w %q", scalesim.ErrUnknownBenchmark, "bad")
	}
	return fakePrepared{key: fmt.Sprintf("%s/%d", job.Benchmarks[0], job.Options.Seed)}, nil
}

func (b *fakeBackend) Run(ctx context.Context, p Prepared) scalesim.JobOutcome {
	b.mu.Lock()
	b.runs++
	b.stats.Jobs++
	b.stats.UniqueRuns++
	b.mu.Unlock()
	if b.entered != nil {
		b.entered <- p.Key()
	}
	if b.release != nil {
		select {
		case <-b.release:
		case <-ctx.Done():
			return scalesim.JobOutcome{Err: ctx.Err()}
		}
	}
	return scalesim.JobOutcome{
		Source: scalesim.SourceCompute,
		Result: &scalesim.SimResult{Machine: p.Key()},
	}
}

func (b *fakeBackend) Stats() scalesim.CampaignStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

func (b *fakeBackend) runCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs
}

// job builds a single-job batch whose design point is determined by seed.
func job(seed uint64) scalesim.CampaignJob {
	opts := scalesim.FastOptions()
	opts.Seed = seed
	return scalesim.CampaignJob{
		Machine:    scalesim.MachineSpec{Cores: 1},
		Benchmarks: []string{"mcf"},
		Options:    opts,
	}
}

// waitUntil polls cond until it holds, failing the test after a few
// seconds. Used only to sequence test phases, never to assert outcomes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// postJobs submits a batch and returns the raw response.
func postJobs(t *testing.T, base, client string, jobs []scalesim.CampaignJob) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := apiv1.Encode(&buf, apiv1.NewJobRequest(client, jobs)); err != nil {
		t.Fatalf("encode request: %v", err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", &buf)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

// decodeOK asserts a 200 and returns the decoded batch response.
func decodeOK(t *testing.T, resp *http.Response) *apiv1.JobResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out, err := apiv1.DecodeJobResponse(resp.Body)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return out
}

func TestQueueRoundRobinFairness(t *testing.T) {
	q := newAdmitQueue(16)
	mk := func(key string) *task { return &task{prep: fakePrepared{key: key}} }
	// Client A dumps a batch; B and C submit less. Admission order is
	// a1 a2 a3, b1, c1 c2.
	for _, it := range []struct{ client, key string }{
		{"a", "a1"}, {"a", "a2"}, {"a", "a3"}, {"b", "b1"}, {"c", "c1"}, {"c", "c2"},
	} {
		if err := q.enqueue(it.client, mk(it.key)); err != nil {
			t.Fatalf("enqueue %s: %v", it.key, err)
		}
	}
	want := []string{"a1", "b1", "c1", "a2", "c2", "a3"}
	for i, w := range want {
		tk, ok := q.dequeue()
		if !ok {
			t.Fatalf("dequeue %d: queue reported drained", i)
		}
		if got := tk.prep.Key(); got != w {
			t.Errorf("dequeue %d = %s, want %s (round-robin across clients)", i, got, w)
		}
	}
	if s := q.snapshot(); s.depth != 0 || s.clients != 0 {
		t.Errorf("drained queue snapshot = %+v, want empty", s)
	}
}

func TestQueueShedsAndCloses(t *testing.T) {
	q := newAdmitQueue(2)
	mk := func(key string) *task { return &task{prep: fakePrepared{key: key}} }
	if err := q.enqueue("a", mk("a1")); err != nil {
		t.Fatal(err)
	}
	if err := q.enqueue("b", mk("b1")); err != nil {
		t.Fatal(err)
	}
	if err := q.enqueue("c", mk("c1")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity enqueue error = %v, want ErrQueueFull", err)
	}
	if s := q.snapshot(); s.shed != 1 || s.depth != 2 {
		t.Errorf("snapshot after shed = %+v, want shed=1 depth=2", s)
	}
	q.close()
	if err := q.enqueue("a", mk("a2")); !errors.Is(err, ErrDraining) {
		t.Fatalf("closed enqueue error = %v, want ErrDraining", err)
	}
	// Queued tasks still drain after close; then dequeue reports done.
	for i := 0; i < 2; i++ {
		if _, ok := q.dequeue(); !ok {
			t.Fatalf("dequeue %d after close: queue reported drained early", i)
		}
	}
	if _, ok := q.dequeue(); ok {
		t.Fatal("dequeue on drained closed queue returned a task")
	}
}

// TestCoalescingComputesOnce is the tentpole property over real HTTP: N
// identical concurrent requests cost one simulation; every other request
// reports SourceCoalesced.
func TestCoalescingComputesOnce(t *testing.T) {
	fake := &fakeBackend{entered: make(chan string, 8), release: make(chan struct{})}
	s := New(fake, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Drain() }()

	const followers = 7
	results := make(chan *apiv1.JobResponse, followers+1)
	post := func(client string) {
		go func() {
			results <- decodeOK(t, postJobs(t, ts.URL, client, []scalesim.CampaignJob{job(1)}))
		}()
	}

	post("leader")
	<-fake.entered // the leader's job is now running (and gated)
	for i := 0; i < followers; i++ {
		post(fmt.Sprintf("tenant-%d", i))
	}
	// Every follower must be attached to the leader's flight before the
	// gate opens, or it would race completion and recompute.
	waitUntil(t, "followers to coalesce", func() bool {
		return s.Stats().CoalescedHits == followers
	})
	close(fake.release)

	bySource := map[string]int{}
	for i := 0; i < followers+1; i++ {
		resp := <-results
		if len(resp.Outcomes) != 1 {
			t.Fatalf("response has %d outcomes, want 1", len(resp.Outcomes))
		}
		oc := resp.Outcomes[0]
		if oc.Error != "" {
			t.Fatalf("job failed: %s", oc.Error)
		}
		if oc.Result == nil || oc.Result.Machine != "mcf/1" {
			t.Errorf("outcome result = %+v, want the computed result", oc.Result)
		}
		if oc.Source == string(scalesim.SourceCoalesced) && !oc.CacheHit {
			t.Errorf("coalesced outcome not marked as cache hit")
		}
		bySource[oc.Source]++
	}
	if bySource[string(scalesim.SourceCompute)] != 1 || bySource[string(scalesim.SourceCoalesced)] != followers {
		t.Errorf("sources = %v, want 1 compute and %d coalesced", bySource, followers)
	}
	if n := fake.runCount(); n != 1 {
		t.Errorf("backend ran %d times for %d identical requests, want exactly 1", n, followers+1)
	}
	st := s.Stats()
	if st.Jobs != followers+1 || st.UniqueRuns != 1 || st.CoalescedHits != followers {
		t.Errorf("server stats = %+v, want %d jobs, 1 unique, %d coalesced", st, followers+1, followers)
	}
}

// TestBatchCoalescesIntraRequest: duplicates inside one batch coalesce
// exactly like concurrent requests do.
func TestBatchCoalescesIntraRequest(t *testing.T) {
	fake := &fakeBackend{entered: make(chan string, 8), release: make(chan struct{})}
	s := New(fake, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Drain() }()

	results := make(chan *apiv1.JobResponse, 1)
	go func() {
		results <- decodeOK(t, postJobs(t, ts.URL, "dup", []scalesim.CampaignJob{job(5), job(5)}))
	}()
	<-fake.entered // one of the two is the leader and is gated
	waitUntil(t, "the duplicate to coalesce", func() bool {
		return s.Stats().CoalescedHits == 1
	})
	close(fake.release)

	resp := <-results
	if len(resp.Outcomes) != 2 {
		t.Fatalf("batch returned %d outcomes, want 2", len(resp.Outcomes))
	}
	sources := map[string]int{}
	for _, oc := range resp.Outcomes {
		sources[oc.Source]++
	}
	if sources[string(scalesim.SourceCompute)] != 1 || sources[string(scalesim.SourceCoalesced)] != 1 {
		t.Errorf("batch sources = %v, want one compute and one coalesced", sources)
	}
	if n := fake.runCount(); n != 1 {
		t.Errorf("backend ran %d times for a duplicated batch, want 1", n)
	}
	if resp.Stats.CoalescedHits != 1 {
		t.Errorf("reported stats = %+v, want CoalescedHits=1", resp.Stats)
	}
}

// TestQueueFullReturns429: with the worker busy and the queue at
// capacity, a distinct job is shed with 429 and a Retry-After hint.
func TestQueueFullReturns429(t *testing.T) {
	fake := &fakeBackend{entered: make(chan string, 8), release: make(chan struct{})}
	s := New(fake, Config{Workers: 1, QueueDepth: 1, RetryAfterSec: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Drain() }()

	done := make(chan *apiv1.JobResponse, 2)
	go func() { done <- decodeOK(t, postJobs(t, ts.URL, "a", []scalesim.CampaignJob{job(1)})) }()
	<-fake.entered // job 1 occupies the only worker
	go func() { done <- decodeOK(t, postJobs(t, ts.URL, "b", []scalesim.CampaignJob{job(2)})) }()
	waitUntil(t, "job 2 to queue", func() bool { return s.queue.snapshot().depth == 1 })

	// Queue full: job 3 must be shed, not buffered.
	resp := postJobs(t, ts.URL, "c", []scalesim.CampaignJob{job(3)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	apiErr, err := apiv1.DecodeErrorResponse(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode 429 body: %v", err)
	}
	if apiErr.RetryAfterSec != 2 || apiErr.Error == "" {
		t.Errorf("429 body = %+v, want retry_after_sec=2 and an error", apiErr)
	}

	close(fake.release)
	for i := 0; i < 2; i++ {
		if resp := <-done; resp.Outcomes[0].Error != "" {
			t.Errorf("admitted job failed: %s", resp.Outcomes[0].Error)
		}
	}
	if n := fake.runCount(); n != 2 {
		t.Errorf("backend ran %d jobs, want 2 (the shed job never ran)", n)
	}

	// The shed shows up in /statsz.
	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	stats, err := apiv1.DecodeStatsResponse(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	if stats.Shed != 1 || stats.QueueCapacity != 1 {
		t.Errorf("statsz = %+v, want shed=1 capacity=1", stats)
	}
}

// TestDrainCompletesInFlight: draining refuses new work but finishes both
// the running job and the queued one before returning.
func TestDrainCompletesInFlight(t *testing.T) {
	fake := &fakeBackend{entered: make(chan string, 8), release: make(chan struct{})}
	s := New(fake, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	type result struct {
		oc  scalesim.JobOutcome
		err error
	}
	done := make(chan result, 2)
	submit := func(seed uint64) {
		go func() {
			oc, err := s.Submit(context.Background(), "a", job(seed))
			done <- result{oc, err}
		}()
	}
	submit(1)
	<-fake.entered // job 1 running
	submit(2)      // job 2 queued behind the only worker
	waitUntil(t, "job 2 to queue", func() bool { return s.queue.snapshot().depth == 1 })

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	waitUntil(t, "drain to begin", s.Draining)

	if _, err := s.Submit(context.Background(), "b", job(3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain error = %v, want ErrDraining", err)
	}

	close(fake.release)
	<-drained
	for i := 0; i < 2; i++ {
		r := <-done
		if r.err != nil || r.oc.Err != nil {
			t.Errorf("in-flight job did not survive the drain: %v / %v", r.err, r.oc.Err)
		}
		if r.oc.Source != scalesim.SourceCompute {
			t.Errorf("drained job source = %q, want compute", r.oc.Source)
		}
	}
	if n := fake.runCount(); n != 2 {
		t.Errorf("backend ran %d jobs through the drain, want 2", n)
	}
}

// TestGracefulShutdownOverHTTP drives the full lifecycle: cancel the serve
// context mid-request, verify new connections are refused while the
// in-flight request still completes, and the server exits cleanly.
func TestGracefulShutdownOverHTTP(t *testing.T) {
	fake := &fakeBackend{entered: make(chan string, 8), release: make(chan struct{})}
	addrs := make(chan string, 1)
	cfg := Config{Workers: 1, OnListen: func(a net.Addr) { addrs <- a.String() }}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	served := make(chan error, 1)
	go func() { served <- ListenAndServeContext(ctx, "127.0.0.1:0", fake, cfg) }()
	base := "http://" + <-addrs

	// Healthy while serving.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	health, err := apiv1.DecodeHealthResponse(hresp.Body)
	hresp.Body.Close()
	if err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if hresp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", hresp.StatusCode, health.Status)
	}

	results := make(chan *apiv1.JobResponse, 1)
	go func() {
		results <- decodeOK(t, postJobs(t, base, "a", []scalesim.CampaignJob{job(1)}))
	}()
	<-fake.entered // the request is mid-simulation

	cancel() // SIGINT equivalent: begin the graceful drain
	waitUntil(t, "listener to close", func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return true
		}
		resp.Body.Close()
		return false
	})

	close(fake.release)
	resp := <-results
	if oc := resp.Outcomes[0]; oc.Error != "" || oc.Source != string(scalesim.SourceCompute) {
		t.Errorf("in-flight request outcome = %+v, want a completed compute", oc)
	}
	if err := <-served; err != nil {
		t.Errorf("ListenAndServeContext returned %v after graceful drain, want nil", err)
	}
}

// TestBadRequestsRejected covers the strict wire boundary over HTTP.
func TestBadRequestsRejected(t *testing.T) {
	fake := &fakeBackend{}
	s := New(fake, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Drain() }()

	for name, body := range map[string]string{
		"garbage":        `{"jobs": 12`,
		"unknown schema": `{"schema":"scalesim/api/v99","jobs":[{"machine":{"Cores":1},"benchmarks":["mcf"],"options":{}}]}`,
		"empty batch":    `{"schema":"` + apiv1.Schema + `","jobs":[]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		apiErr, err := apiv1.DecodeErrorResponse(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Errorf("%s: 400 body does not decode: %v", name, err)
		} else if apiErr.Error == "" {
			t.Errorf("%s: 400 body carries no error", name)
		}
	}

	// A spec that passes wire validation but fails Prepare is a job-level
	// failure inside a 200, exactly like batch campaigns report it.
	resp := decodeOK(t, postJobs(t, ts.URL, "a", []scalesim.CampaignJob{
		{Machine: scalesim.MachineSpec{Cores: 1}, Benchmarks: []string{"bad"}, Options: scalesim.FastOptions()},
	}))
	if oc := resp.Outcomes[0]; oc.Error == "" || oc.Source != "" {
		t.Errorf("invalid-spec outcome = %+v, want a job-level error with no source", oc)
	}
	if fake.runCount() != 0 {
		t.Error("invalid spec reached the backend")
	}
}
