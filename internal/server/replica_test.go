package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"scalesim"
	apiv1 "scalesim/api/v1"
)

// replicaJob is a real, tiny design point — small enough to simulate in
// milliseconds, real enough to exercise the full store round trip.
func replicaJob() scalesim.CampaignJob {
	opts := scalesim.FastOptions()
	opts.Instructions = 60_000
	opts.Warmup = 20_000
	opts.Seed = 11
	return scalesim.CampaignJob{
		Machine:    scalesim.MachineSpec{Cores: 2, Bandwidth: scalesim.BandwidthMCFirst},
		Benchmarks: scalesim.BenchmarkNames()[:2],
		Options:    opts,
	}
}

// startReplica builds a real-service server over the shared store dir.
func startReplica(t *testing.T, storeDir string) (*httptest.Server, func()) {
	t.Helper()
	svc, err := scalesim.NewService(scalesim.ServiceConfig{Store: storeDir})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	s := New(NewServiceBackend(svc), Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	stop := func() {
		ts.Close()
		s.Drain()
		cancel()
		if err := svc.Close(); err != nil {
			t.Errorf("closing service: %v", err)
		}
	}
	return ts, stop
}

// TestReplicasShareStore is the N-replica contract: a second server
// instance pointed at the first one's store directory serves the same
// design point from disk, bit-identically, without simulating.
func TestReplicasShareStore(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")

	tsA, stopA := startReplica(t, storeDir)
	first := decodeOK(t, postJobs(t, tsA.URL, "a", []scalesim.CampaignJob{replicaJob()}))
	stopA()
	if oc := first.Outcomes[0]; oc.Error != "" || oc.Source != string(scalesim.SourceCompute) {
		t.Fatalf("replica A outcome = %+v, want a fresh compute", oc)
	}

	tsB, stopB := startReplica(t, storeDir)
	defer stopB()
	second := decodeOK(t, postJobs(t, tsB.URL, "b", []scalesim.CampaignJob{replicaJob()}))
	oc := second.Outcomes[0]
	if oc.Error != "" || oc.Source != string(scalesim.SourceDisk) || !oc.CacheHit {
		t.Fatalf("replica B outcome source = %q (cache hit %v), want a disk hit", oc.Source, oc.CacheHit)
	}
	if !reflect.DeepEqual(first.Outcomes[0].Result, oc.Result) {
		t.Errorf("replica B result differs from replica A:\n A: %+v\n B: %+v",
			first.Outcomes[0].Result, oc.Result)
	}
	if second.Stats.UniqueRuns != 0 || second.Stats.DiskHits != 1 {
		t.Errorf("replica B stats = %+v, want zero computes and one disk hit", second.Stats)
	}

	// /statsz agrees.
	resp, err := http.Get(tsB.URL + "/statsz")
	if err != nil {
		t.Fatalf("GET /statsz: %v", err)
	}
	stats, err := apiv1.DecodeStatsResponse(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	if stats.Stats.DiskHits != 1 || stats.Draining {
		t.Errorf("statsz = %+v, want one disk hit on a live server", stats)
	}
}
