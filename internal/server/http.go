package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"

	"scalesim"
	apiv1 "scalesim/api/v1"
)

// Handler returns the service's HTTP surface:
//
//	POST /v1/jobs  — run an apiv1.JobRequest batch, respond apiv1.JobResponse
//	GET  /healthz  — liveness; 200 "ok" serving, 503 "draining" during drain
//	GET  /statsz   — apiv1.StatsResponse: campaign counters + queue state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statsz", s.handleStats)
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	req, err := apiv1.DecodeJobRequest(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	outcomes := s.submitBatch(r.Context(), req.Client, req.CampaignJobs())

	// Admission failures decide the status: a drain refusal is
	// server-wide (503), and a batch shed in its entirety is pure
	// backpressure (429 + Retry-After). A partially shed batch still
	// returns its completed outcomes; the shed jobs carry queue-full
	// errors.
	shed, ok := 0, 0
	for _, oc := range outcomes {
		switch {
		case errors.Is(oc.admissionErr, ErrDraining):
			s.writeError(w, http.StatusServiceUnavailable, oc.admissionErr)
			return
		case errors.Is(oc.admissionErr, ErrQueueFull):
			shed++
		default:
			ok++
		}
	}
	if shed > 0 && ok == 0 {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSec))
		s.writeError(w, http.StatusTooManyRequests, outcomes[0].admissionErr)
		return
	}

	resp := &apiv1.JobResponse{Schema: apiv1.Schema, Stats: s.Stats()}
	for _, oc := range outcomes {
		resp.Outcomes = append(resp.Outcomes, oc.wire)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// batchOutcome pairs a job's wire outcome with its admission error, which
// shapes the HTTP status rather than the payload.
type batchOutcome struct {
	wire         apiv1.JobOutcome
	admissionErr error
}

// submitBatch runs every job of a request concurrently, so identical
// design points inside one batch coalesce exactly like concurrent
// requests do. Outcomes return in submission order.
func (s *Server) submitBatch(ctx context.Context, client string, jobs []scalesim.CampaignJob) []batchOutcome {
	out := make([]batchOutcome, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			oc, err := s.Submit(ctx, client, jobs[i])
			out[i] = batchOutcome{wire: wireOutcome(i, oc), admissionErr: err}
		}()
	}
	wg.Wait()
	return out
}

// wireOutcome converts a public JobOutcome to its apiv1 form.
func wireOutcome(i int, oc scalesim.JobOutcome) apiv1.JobOutcome {
	out := apiv1.JobOutcome{
		Job:         i,
		Source:      string(oc.Source),
		CacheHit:    oc.CacheHit,
		Approximate: oc.Approximate,
		Retries:     oc.Retries,
		Result:      oc.Result,
	}
	if oc.Err != nil {
		out.Error = oc.Err.Error()
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := &apiv1.HealthResponse{Schema: apiv1.Schema, Status: "ok"}
	status := http.StatusOK
	if s.Draining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	q := s.queue.snapshot()
	s.writeJSON(w, http.StatusOK, &apiv1.StatsResponse{
		Schema:        apiv1.Schema,
		Stats:         s.Stats(),
		QueueDepth:    q.depth,
		QueueCapacity: q.capacity,
		Shed:          q.shed,
		Clients:       q.clients,
		Draining:      s.Draining(),
	})
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	resp := &apiv1.ErrorResponse{Schema: apiv1.Schema, Error: err.Error()}
	if status == http.StatusTooManyRequests {
		resp.RetryAfterSec = s.retryAfterSec
	}
	s.writeJSON(w, status, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here means the client went away; there is nothing
	// left to report to.
	_ = apiv1.Encode(w, v)
}
