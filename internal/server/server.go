// Package server is the campaign service behind `scalesim serve`: a
// long-lived HTTP/JSON daemon that runs simulate/campaign requests
// through the shared memoization hierarchy (in-memory memo cache,
// optional durable store).
//
// Three properties define the service:
//
//   - Coalescing. Admission is singleflight on the content-addressed job
//     key: when a request arrives for a design point that is already
//     queued or running, it attaches to that flight instead of consuming
//     a queue slot, and its outcome reports SourceCoalesced. N identical
//     concurrent requests cost one simulation.
//
//   - Fair, bounded admission. Distinct jobs enter a bounded queue that
//     round-robins across client identities — one client's bulk batch
//     cannot starve another's single job. A full queue sheds load
//     immediately (HTTP 429 with Retry-After) rather than buffering
//     unboundedly.
//
//   - Graceful drain. Shutdown stops admission (503), lets queued and
//     in-flight jobs finish, then joins every worker; results computed
//     during the drain still land in the durable store.
//
// The package is deliberately clock-free: nothing in the serving path
// reads wall-clock time, so its behavior is a pure function of the
// request arrival order.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"scalesim"
)

// Prepared is a validated, compiled design point with a content-addressed
// identity. *scalesim.PreparedJob implements it.
type Prepared interface {
	// Key returns the job's content-addressed identity; equal keys mean
	// bit-identical results, which is what makes coalescing sound.
	Key() string
}

// Backend executes prepared jobs for the server. The production backend
// wraps *scalesim.Service (NewServiceBackend); tests substitute fakes to
// control timing.
type Backend interface {
	// Prepare validates and compiles one job without simulating.
	Prepare(job scalesim.CampaignJob) (Prepared, error)
	// Run executes a job this backend prepared, through whatever
	// memoization tiers it has.
	Run(ctx context.Context, p Prepared) scalesim.JobOutcome
	// Stats snapshots the backend's campaign counters.
	Stats() scalesim.CampaignStats
}

// serviceBackend adapts *scalesim.Service to the Backend interface.
type serviceBackend struct {
	svc *scalesim.Service
}

// NewServiceBackend wraps a scalesim Service as the server's backend.
func NewServiceBackend(svc *scalesim.Service) Backend {
	return serviceBackend{svc: svc}
}

func (b serviceBackend) Prepare(job scalesim.CampaignJob) (Prepared, error) {
	return b.svc.Prepare(job)
}

func (b serviceBackend) Run(ctx context.Context, p Prepared) scalesim.JobOutcome {
	// The assertion cannot fail: Run only receives values this backend's
	// Prepare returned.
	return b.svc.RunJobContext(ctx, p.(*scalesim.PreparedJob))
}

func (b serviceBackend) Stats() scalesim.CampaignStats {
	return b.svc.Stats()
}

// DefaultQueueDepth bounds the admission queue when Config.QueueDepth is
// zero.
const DefaultQueueDepth = 64

// Config configures a Server.
type Config struct {
	// Workers bounds concurrent simulations (<= 0 selects 1). Each worker
	// runs one queued job at a time.
	Workers int
	// QueueDepth caps queued (admitted, not yet running) jobs across all
	// clients (<= 0 selects DefaultQueueDepth). Coalesced requests do not
	// consume depth.
	QueueDepth int
	// RetryAfterSec is the Retry-After hint sent with 429 responses
	// (<= 0 selects 1). A constant, not a measurement: the service never
	// consults the wall clock.
	RetryAfterSec int
	// DrainTimeout bounds the graceful drain in ListenAndServeContext.
	// Zero waits indefinitely for in-flight jobs; past the deadline,
	// remaining jobs are cancelled.
	DrainTimeout time.Duration
	// OnListen, when non-nil, is invoked with the bound address before
	// serving begins — how `scalesim serve` publishes an ephemeral port.
	OnListen func(net.Addr)
}

// flight is one in-flight design point. Requests for the same key wait on
// done; the worker that runs the job publishes the outcome and closes it.
type flight struct {
	done chan struct{}
	oc   scalesim.JobOutcome
}

// Server coalesces, queues, and executes jobs. Construct with New, start
// workers with Start, and stop with Drain. HTTP transport is layered on
// top via Handler / ListenAndServeContext.
type Server struct {
	backend       Backend
	queue         *admitQueue
	workers       int
	retryAfterSec int

	mu        sync.Mutex
	inflight  map[string]*flight // job key -> flight queued or running
	coalesced int                // requests served by attaching to a flight
	draining  bool

	wg sync.WaitGroup
}

// New assembles a Server over backend. Start must be called before any
// Submit can complete.
func New(backend Backend, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	return &Server{
		backend:       backend,
		queue:         newAdmitQueue(cfg.QueueDepth),
		workers:       cfg.Workers,
		retryAfterSec: cfg.RetryAfterSec,
		inflight:      make(map[string]*flight),
	}
}

// Start launches the worker pool. Workers run jobs under ctx — it should
// span the server's lifetime, not any single request, so a disconnecting
// requester never cancels a computation other requests coalesced onto.
func (s *Server) Start(ctx context.Context) {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.work(ctx)
		}()
	}
}

// work drains the admission queue until it is closed and empty.
func (s *Server) work(ctx context.Context) {
	for {
		t, ok := s.queue.dequeue()
		if !ok {
			return
		}
		oc := s.backend.Run(ctx, t.prep)
		// Unregister before resolving so a request arriving after this
		// point runs through the backend (memory tier) rather than
		// attaching to a completed flight.
		s.mu.Lock()
		delete(s.inflight, t.prep.Key())
		s.mu.Unlock()
		t.fl.oc = oc
		close(t.fl.done)
	}
}

// Submit runs one job to completion on the caller's behalf: coalesce onto
// an identical in-flight job, or admit it under the client's identity and
// wait. The returned error is an admission failure (ErrQueueFull,
// ErrDraining, ctx cancellation); job-level failures — an invalid spec, a
// simulation error — are reported inside the outcome, like batch
// campaigns do.
func (s *Server) Submit(ctx context.Context, client string, job scalesim.CampaignJob) (scalesim.JobOutcome, error) {
	prep, err := s.backend.Prepare(job)
	if err != nil {
		return scalesim.JobOutcome{Err: err}, nil
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return scalesim.JobOutcome{}, fmt.Errorf("server: %w", ErrDraining)
	}
	if fl, ok := s.inflight[prep.Key()]; ok {
		// Coalesce: attach to the flight instead of consuming queue
		// depth. Counted at attach time, so stats reflect waiters the
		// moment they join.
		s.coalesced++
		s.mu.Unlock()
		return s.await(ctx, fl, true)
	}
	fl := &flight{done: make(chan struct{})}
	if err := s.queue.enqueue(client, &task{prep: prep, fl: fl}); err != nil {
		s.mu.Unlock()
		return scalesim.JobOutcome{}, err
	}
	// Register only after successful admission, inside the same critical
	// section: a follower can never attach to a flight that was shed.
	s.inflight[prep.Key()] = fl
	s.mu.Unlock()
	return s.await(ctx, fl, false)
}

// await blocks until the flight resolves or ctx is cancelled. Coalesced
// waiters re-label the outcome: the result came from someone else's run.
func (s *Server) await(ctx context.Context, fl *flight, coalesced bool) (scalesim.JobOutcome, error) {
	select {
	case <-fl.done:
	case <-ctx.Done():
		// The flight itself keeps running: other requests may be waiting
		// on it, and its result still lands in the memo tiers.
		return scalesim.JobOutcome{Err: ctx.Err()}, ctx.Err()
	}
	oc := fl.oc
	if coalesced {
		oc.Source = scalesim.SourceCoalesced
		oc.CacheHit = true
	}
	return oc, nil
}

// Drain stops admission and blocks until every queued and in-flight job
// has finished and every worker has exited. Safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.close()
	s.wg.Wait()
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats merges the backend's counters with admission-level coalescing:
// requests served by attaching to an in-flight job never reach the
// backend, so the server accounts for them here. The result reads like
// batch CampaignStats — Jobs counts every request served.
func (s *Server) Stats() scalesim.CampaignStats {
	st := s.backend.Stats()
	s.mu.Lock()
	st.Jobs += s.coalesced
	st.CoalescedHits += s.coalesced
	s.mu.Unlock()
	return st
}

// ListenAndServeContext builds a Server over backend, binds addr, and
// serves until ctx is cancelled, then drains gracefully: admission stops
// (healthz reports draining, new jobs get 503), queued and in-flight jobs
// finish — bounded by cfg.DrainTimeout — and their results persist to the
// backend's store before the function returns.
func ListenAndServeContext(ctx context.Context, addr string, backend Backend, cfg Config) error {
	s := New(backend, cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr())
	}

	// Workers outlive ctx: cancelling ctx triggers the drain, and the
	// drain must be able to finish in-flight jobs. hardStop is the
	// post-timeout abort path.
	workCtx, hardStop := context.WithCancel(context.WithoutCancel(ctx))
	defer hardStop()
	s.Start(workCtx)

	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		errc <- hs.Serve(ln)
	}()

	select {
	case err = <-errc:
		// The listener failed outright; abort workers and fall through to
		// the drain so every flight still resolves.
		hardStop()
	case <-ctx.Done():
		// Graceful drain: refuse new jobs, wait for connections whose
		// requests are riding in-flight flights, bounded by DrainTimeout.
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		shutCtx := context.WithoutCancel(ctx)
		if cfg.DrainTimeout > 0 {
			var cancel context.CancelFunc
			shutCtx, cancel = context.WithTimeout(shutCtx, cfg.DrainTimeout)
			defer cancel()
		}
		if serr := hs.Shutdown(shutCtx); serr != nil {
			// Deadline passed: cut remaining connections and cancel
			// whatever is still simulating.
			hs.Close()
			hardStop()
			err = fmt.Errorf("server: drain incomplete: %w", serr)
		}
	}
	s.Drain()
	wg.Wait()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe is ListenAndServeContext without cancellation: it serves
// until the listener fails.
func ListenAndServe(addr string, backend Backend, cfg Config) error {
	return ListenAndServeContext(context.Background(), addr, backend, cfg)
}
