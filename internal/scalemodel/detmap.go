package scalemodel

import (
	"cmp"
	"slices"
)

// sortedKeys returns m's keys in ascending order. Map iteration order is
// randomised per process, so any loop whose effect depends on visit order
// (appending to a slice, returning the first error, training estimators)
// must iterate a sorted key slice instead — simlint's maporder rule
// enforces this throughout the deterministic packages.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//simlint:ignore maporder keys are sorted before any order-dependent use
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
