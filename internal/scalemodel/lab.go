package scalemodel

import (
	"context"
	"time"

	"scalesim/internal/config"
	"scalesim/internal/runner"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
	"scalesim/internal/units"
)

// Lab runs and memoises simulations for the experiment protocols. Many of
// the paper's figures share the same underlying runs (e.g. every
// homogeneous study needs the 29 single-core scale-model runs), so the Lab
// routes every run through a shared campaign engine (internal/runner) whose
// content-addressed cache is keyed by the full (configuration, workload,
// options, seed) tuple; experiments then cost only their unique
// simulations, and batch collections fan out across the engine's worker
// pool.
type Lab struct {
	// Target is the system being predicted (default: config.Target()).
	Target *config.SystemConfig
	// Opts are the simulation options shared by every run.
	Opts sim.Options
	// Policy is the scale-model construction policy (default PRSFull).
	Policy config.ScalingPolicy
	// Bandwidth is the DRAM scaling order (default MCFirst).
	Bandwidth config.BandwidthScaling

	// ctx bounds every simulation issued by this Lab (nil = Background).
	ctx context.Context

	// engine is shared by every Lab variant (WithPolicy, WithBandwidth,
	// ...), so e.g. the Fig. 3 policy sweep reuses one set of target runs.
	engine *runner.Engine
}

// NewLab returns a Lab predicting the Table II target with the given
// simulation options. The campaign engine starts sequential (one worker);
// use SetWorkers to enable parallel batch collection.
func NewLab(opts sim.Options) *Lab {
	return &Lab{
		Target:    config.Target(),
		Opts:      opts,
		Policy:    config.PRSFull,
		Bandwidth: config.MCFirst,
		engine:    runner.New(1),
	}
}

// SetWorkers resizes the engine's worker pool (<= 0 selects GOMAXPROCS).
// Results are bit-identical for any worker count; only wall-clock changes.
func (l *Lab) SetWorkers(n int) { l.engine.SetWorkers(n) }

// SetStore attaches a durable result store as the engine's second
// memoization tier (nil detaches). Results are bit-identical with or
// without a store; only recomputation cost changes.
func (l *Lab) SetStore(s runner.ResultStore) { l.engine.SetStore(s) }

// SetRetry replaces the engine's transient-failure retry policy.
func (l *Lab) SetRetry(p runner.RetryPolicy) { l.engine.SetRetry(p) }

// WithContext returns a Lab variant whose simulations are bounded by ctx:
// cancellation propagates into the simulator's epoch loop.
func (l *Lab) WithContext(ctx context.Context) *Lab {
	v := *l
	v.ctx = ctx
	return &v
}

// WithPolicy returns a Lab variant using the given scale-model construction
// policy. The variant shares the run cache (and counters) with l.
func (l *Lab) WithPolicy(p config.ScalingPolicy) *Lab {
	v := *l
	v.Policy = p
	return &v
}

// WithBandwidth returns a Lab variant using the given DRAM bandwidth
// scaling order, sharing the run cache with l.
func (l *Lab) WithBandwidth(b config.BandwidthScaling) *Lab {
	v := *l
	v.Bandwidth = b
	return &v
}

// WithSimOptions returns a Lab variant with different simulation options,
// sharing the run cache (cache keys include the options, so variants never
// collide).
func (l *Lab) WithSimOptions(opts sim.Options) *Lab {
	v := *l
	v.Opts = opts
	return &v
}

// Runs reports how many distinct simulations have actually been executed.
func (l *Lab) Runs() int { return l.engine.Stats().UniqueRuns }

// CacheHits reports how many runs were served from the memo cache.
func (l *Lab) CacheHits() int { return l.engine.Stats().CacheHits }

// DiskHits reports how many runs were served from the durable store.
func (l *Lab) DiskHits() int { return l.engine.Stats().DiskHits }

// SimTime reports accumulated simulator wall-clock per configuration name.
func (l *Lab) SimTime() map[string]time.Duration { return l.engine.SimTime() }

// Report returns the engine's campaign execution report: job counters plus
// the per-configuration simulation-time breakdown.
func (l *Lab) Report() runner.Report { return l.engine.Report() }

// context returns the Lab's bounding context.
func (l *Lab) context() context.Context {
	if l.ctx != nil {
		return l.ctx
	}
	return context.Background()
}

// ScaleModelConfig derives the Lab's scale model with the given core count
// (the target configuration itself when cores equals the target's).
func (l *Lab) ScaleModelConfig(cores int) (*config.SystemConfig, error) {
	return config.ScaleModel(l.Target, cores, config.ScaleModelOptions{
		Policy:    l.Policy,
		Bandwidth: l.Bandwidth,
	})
}

// Run simulates wl on cfg through the shared engine, returning a cached
// result when the same run was already performed.
func (l *Lab) Run(cfg *config.SystemConfig, wl sim.Workload) (*sim.Result, error) {
	oc := l.engine.Run(l.context(), runner.Job{Config: cfg, Workload: wl, Options: l.Opts})
	return oc.Result, oc.Err
}

// Prewarm fans the given jobs out across the engine's worker pool, filling
// the memo cache so subsequent sequential Run calls are hits. Job errors
// are deferred: the sequential replay re-encounters (and reports) them in
// protocol order, keeping error behaviour identical to a sequential run.
// Only context errors abort the prewarm.
func (l *Lab) Prewarm(jobs []runner.Job) error {
	if len(jobs) < 2 || l.engine.Workers() < 2 {
		return nil // nothing to gain
	}
	_, err := l.engine.RunBatch(l.context(), jobs, nil)
	return err
}

// HomogeneousJob builds (without running) the job for `cores` copies of
// prof on the matching scale model.
func (l *Lab) HomogeneousJob(cores int, prof *trace.Profile) (runner.Job, error) {
	cfg := l.Target
	if cores != l.Target.Cores {
		var err error
		cfg, err = l.ScaleModelConfig(cores)
		if err != nil {
			return runner.Job{}, err
		}
	}
	return runner.Job{Config: cfg, Workload: sim.Homogeneous(prof, cores), Options: l.Opts}, nil
}

// HomogeneousRun simulates `cores` copies of prof on the matching scale
// model (or the target when cores equals the target core count).
func (l *Lab) HomogeneousRun(cores int, prof *trace.Profile) (*sim.Result, error) {
	job, err := l.HomogeneousJob(cores, prof)
	if err != nil {
		return nil, err
	}
	return l.Run(job.Config, job.Workload)
}

// MixRun simulates a heterogeneous mix on the machine with exactly
// len(profiles) cores.
func (l *Lab) MixRun(profiles []*trace.Profile) (*sim.Result, error) {
	cores := len(profiles)
	cfg := l.Target
	if cores != l.Target.Cores {
		var err error
		cfg, err = l.ScaleModelConfig(cores)
		if err != nil {
			return nil, err
		}
	}
	return l.Run(cfg, sim.Workload{Profiles: profiles})
}

// fairShareBW converts a core result's DRAM traffic into the dimensionless
// bandwidth utilization used throughout the methodology: bytes per cycle
// relative to the machine's per-core fair share (4 GB/s per core under
// PRS). The same application saturating its share reads ~1.0 on the
// single-core scale model and on the target alike.
func fairShareBW(cfg *config.SystemConfig, cr sim.CoreResult) float64 {
	totalBpc := units.FromGBps(float64(cfg.DRAM.TotalGBps()), cfg.Core.FrequencyGHz)
	perCore := float64(totalBpc) / float64(cfg.Cores)
	if perCore <= 0 {
		return 0
	}
	return float64(cr.BWBytesPerCycle) / perCore
}

// Measurement is one application's single-core scale-model reading.
type Measurement struct {
	Bench string
	IPC   float64
	BW    float64 // fair-share bandwidth utilization
	MPKI  float64 // LLC misses per kilo-instruction (Fig. 3's sort key)
}

// MeasureSingleCore runs prof alone on the single-core scale model and
// returns its measurement (cached like any other run).
func (l *Lab) MeasureSingleCore(prof *trace.Profile) (Measurement, error) {
	cfg, err := l.ScaleModelConfig(1)
	if err != nil {
		return Measurement{}, err
	}
	res, err := l.Run(cfg, sim.Homogeneous(prof, 1))
	if err != nil {
		return Measurement{}, err
	}
	cr := res.Cores[0]
	return Measurement{
		Bench: prof.Name,
		IPC:   cr.IPC,
		BW:    fairShareBW(cfg, cr),
		MPKI:  cr.LLCMPKI,
	}, nil
}

// metricValue extracts the dependent variable from one core result.
func metricValue(m Metric, cfg *config.SystemConfig, cr sim.CoreResult) float64 {
	if m == MetricBW {
		return fairShareBW(cfg, cr)
	}
	return cr.IPC
}

// perBenchAverage averages the metric per benchmark name across a run's
// cores (homogeneous runs have one benchmark; mixes may repeat one).
func perBenchAverage(m Metric, cfg *config.SystemConfig, res *sim.Result) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, cr := range res.Cores {
		sums[cr.Benchmark] += metricValue(m, cfg, cr)
		counts[cr.Benchmark]++
	}
	out := make(map[string]float64, len(sums))
	//simlint:ignore maporder writes into a map under the same keys; order cannot leak
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out
}
