package scalemodel

import (
	"fmt"
	"strings"
	"time"

	"scalesim/internal/config"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
)

// Lab runs and memoises simulations for the experiment protocols. Many of
// the paper's figures share the same underlying runs (e.g. every
// homogeneous study needs the 29 single-core scale-model runs), so the Lab
// caches results keyed by (configuration, workload, options); experiments
// then cost only their unique simulations.
type Lab struct {
	// Target is the system being predicted (default: config.Target()).
	Target *config.SystemConfig
	// Opts are the simulation options shared by every run.
	Opts sim.Options
	// Policy is the scale-model construction policy (default PRSFull).
	Policy config.ScalingPolicy
	// Bandwidth is the DRAM scaling order (default MCFirst).
	Bandwidth config.BandwidthScaling

	// runner is injectable for tests; defaults to sim.Run.
	runner func(*config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error)

	shared *labShared
}

// labShared is the state Lab variants (WithPolicy, WithBandwidth) share, so
// that e.g. the Fig. 3 policy sweep reuses one set of target-system runs.
type labShared struct {
	cache map[string]*sim.Result
	// runs counts cache misses (actual simulator invocations).
	runs int
	// simTime accumulates wall-clock spent in actual simulator runs, per
	// configuration name (used by the Fig. 7 speedup study).
	simTime map[string]time.Duration
}

// NewLab returns a Lab predicting the Table II target with the given
// simulation options.
func NewLab(opts sim.Options) *Lab {
	return &Lab{
		Target:    config.Target(),
		Opts:      opts,
		Policy:    config.PRSFull,
		Bandwidth: config.MCFirst,
		runner:    sim.Run,
		shared: &labShared{
			cache:   make(map[string]*sim.Result),
			simTime: make(map[string]time.Duration),
		},
	}
}

// WithPolicy returns a Lab variant using the given scale-model construction
// policy. The variant shares the run cache (and counters) with l.
func (l *Lab) WithPolicy(p config.ScalingPolicy) *Lab {
	v := *l
	v.Policy = p
	return &v
}

// WithBandwidth returns a Lab variant using the given DRAM bandwidth
// scaling order, sharing the run cache with l.
func (l *Lab) WithBandwidth(b config.BandwidthScaling) *Lab {
	v := *l
	v.Bandwidth = b
	return &v
}

// WithSimOptions returns a Lab variant with different simulation options,
// sharing the run cache (cache keys include the options, so variants never
// collide).
func (l *Lab) WithSimOptions(opts sim.Options) *Lab {
	v := *l
	v.Opts = opts
	return &v
}

// Runs reports how many distinct simulations have actually been executed.
func (l *Lab) Runs() int { return l.shared.runs }

// SimTime reports accumulated simulator wall-clock per configuration name.
func (l *Lab) SimTime() map[string]time.Duration { return l.shared.simTime }

// ScaleModelConfig derives the Lab's scale model with the given core count
// (the target configuration itself when cores equals the target's).
func (l *Lab) ScaleModelConfig(cores int) (*config.SystemConfig, error) {
	return config.ScaleModel(l.Target, cores, config.ScaleModelOptions{
		Policy:    l.Policy,
		Bandwidth: l.Bandwidth,
	})
}

func workloadKey(wl sim.Workload) string {
	names := make([]string, len(wl.Profiles))
	for i, p := range wl.Profiles {
		names[i] = p.Name
	}
	return strings.Join(names, ",")
}

// Run simulates wl on cfg, returning a cached result when the same run was
// already performed.
func (l *Lab) Run(cfg *config.SystemConfig, wl sim.Workload) (*sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%+v", cfg.Name, workloadKey(wl), l.Opts)
	if res, ok := l.shared.cache[key]; ok {
		return res, nil
	}
	res, err := l.runner(cfg, wl, l.Opts)
	if err != nil {
		return nil, err
	}
	l.shared.cache[key] = res
	l.shared.runs++
	l.shared.simTime[cfg.Name] += res.WallClock
	return res, nil
}

// HomogeneousRun simulates `cores` copies of prof on the matching scale
// model (or the target when cores equals the target core count).
func (l *Lab) HomogeneousRun(cores int, prof *trace.Profile) (*sim.Result, error) {
	cfg := l.Target
	if cores != l.Target.Cores {
		var err error
		cfg, err = l.ScaleModelConfig(cores)
		if err != nil {
			return nil, err
		}
	}
	return l.Run(cfg, sim.Homogeneous(prof, cores))
}

// MixRun simulates a heterogeneous mix on the machine with exactly
// len(profiles) cores.
func (l *Lab) MixRun(profiles []*trace.Profile) (*sim.Result, error) {
	cores := len(profiles)
	cfg := l.Target
	if cores != l.Target.Cores {
		var err error
		cfg, err = l.ScaleModelConfig(cores)
		if err != nil {
			return nil, err
		}
	}
	return l.Run(cfg, sim.Workload{Profiles: profiles})
}

// fairShareBW converts a core result's DRAM traffic into the dimensionless
// bandwidth utilization used throughout the methodology: bytes per cycle
// relative to the machine's per-core fair share (4 GB/s per core under
// PRS). The same application saturating its share reads ~1.0 on the
// single-core scale model and on the target alike.
func fairShareBW(cfg *config.SystemConfig, cr sim.CoreResult) float64 {
	totalBpc := float64(cfg.DRAM.TotalGBps()) / cfg.Core.FrequencyGHz
	perCore := totalBpc / float64(cfg.Cores)
	if perCore <= 0 {
		return 0
	}
	return cr.BWBytesPerCycle / perCore
}

// Measurement is one application's single-core scale-model reading.
type Measurement struct {
	Bench string
	IPC   float64
	BW    float64 // fair-share bandwidth utilization
	MPKI  float64 // LLC misses per kilo-instruction (Fig. 3's sort key)
}

// MeasureSingleCore runs prof alone on the single-core scale model and
// returns its measurement (cached like any other run).
func (l *Lab) MeasureSingleCore(prof *trace.Profile) (Measurement, error) {
	cfg, err := l.ScaleModelConfig(1)
	if err != nil {
		return Measurement{}, err
	}
	res, err := l.Run(cfg, sim.Homogeneous(prof, 1))
	if err != nil {
		return Measurement{}, err
	}
	cr := res.Cores[0]
	return Measurement{
		Bench: prof.Name,
		IPC:   cr.IPC,
		BW:    fairShareBW(cfg, cr),
		MPKI:  cr.LLCMPKI,
	}, nil
}

// metricValue extracts the dependent variable from one core result.
func metricValue(m Metric, cfg *config.SystemConfig, cr sim.CoreResult) float64 {
	if m == MetricBW {
		return fairShareBW(cfg, cr)
	}
	return cr.IPC
}

// perBenchAverage averages the metric per benchmark name across a run's
// cores (homogeneous runs have one benchmark; mixes may repeat one).
func perBenchAverage(m Metric, cfg *config.SystemConfig, res *sim.Result) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, cr := range res.Cores {
		sums[cr.Benchmark] += metricValue(m, cfg, cr)
		counts[cr.Benchmark]++
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out
}
