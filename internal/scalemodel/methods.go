package scalemodel

import (
	"fmt"
	"sort"

	"scalesim/internal/fit"
	"scalesim/internal/ml"
)

// Predictor is the ML-based Prediction method (Fig. 1): a single model
// trained on (features -> value measured on machine M), where M is the
// target system in the paper's Prediction method and a multi-core scale
// model inside the Regression method.
//
// Internally the estimator learns the *contention ratio* — the measured
// value divided by the single-core scale-model baseline (IPC^ss or BW^ss)
// that is already among its input features — and the prediction multiplies
// the ratio back. This is mathematically equivalent to predicting the
// absolute value, but it removes the estimator's boundary-extrapolation
// error for applications whose scale-model reading lies outside the
// training range: their contention ratio is still well inside it. (With
// absolute targets, leave-one-out errors on the most compute-bound
// benchmarks exceed 80% for every estimator; with ratio targets the whole
// lineup lands in the paper's reported range.)
type Predictor struct {
	Kind   EstimatorKind
	Inputs Inputs
	Metric Metric
	model  ml.Regressor
}

// baseline returns the no-extrapolation reading the ratio is taken
// against: IPC^ss for performance, BW^ss for bandwidth. The bare ratio is
// the right transform for bandwidth too — every workload has some DRAM
// traffic, and both floor and offset variants distort the low-bandwidth end
// where the error metric is most sensitive (validated by the full-fidelity
// sweep in TestFig12Tune). The guard only prevents division by an exact
// zero.
func baseline(m Metric, f Features) float64 {
	if m == MetricBW {
		if f.BW < 1e-6 {
			return 1e-6
		}
		return f.BW
	}
	return f.IPC
}

// TrainPredictor fits a fresh estimator of the given kind on the samples.
func TrainPredictor(kind EstimatorKind, in Inputs, metric Metric, samples []Sample, seed uint64) (*Predictor, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("scalemodel: no training samples")
	}
	est, err := newEstimator(kind, seed)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = s.F.Vector(in)
		b := baseline(metric, s.F)
		if b <= 0 {
			return nil, fmt.Errorf("scalemodel: sample %s has non-positive baseline", s.Bench)
		}
		y[i] = s.Y / b
	}
	if err := est.Fit(X, y); err != nil {
		return nil, fmt.Errorf("scalemodel: training %v predictor: %w", kind, err)
	}
	return &Predictor{Kind: kind, Inputs: in, Metric: metric, model: est}, nil
}

// Predict returns the model's estimate for one application's features.
func (p *Predictor) Predict(f Features) float64 {
	return p.model.Predict(f.Vector(p.Inputs)) * baseline(p.Metric, f)
}

// RegressionModel is the ML-based Regression method (Fig. 2): one trained
// predictor per multi-core scale model, whose per-application predictions
// are extrapolated to the target core count with a least-squares curve fit
// of performance versus core count.
type RegressionModel struct {
	Kind   EstimatorKind
	Form   fit.Model
	Inputs Inputs
	Metric Metric

	cores      []int // ascending multi-core scale-model sizes
	predictors map[int]*Predictor
}

// TrainRegression fits one predictor per scale-model core count. The map
// key is the scale model's core count; its samples carry values measured on
// that scale model.
func TrainRegression(kind EstimatorKind, form fit.Model, in Inputs, metric Metric, perScaleModel map[int][]Sample, seed uint64) (*RegressionModel, error) {
	if len(perScaleModel) < 2 {
		return nil, fmt.Errorf("scalemodel: regression needs >= 2 multi-core scale models, got %d", len(perScaleModel))
	}
	r := &RegressionModel{
		Kind:       kind,
		Form:       form,
		Inputs:     in,
		Metric:     metric,
		predictors: make(map[int]*Predictor, len(perScaleModel)),
	}
	for _, cores := range sortedKeys(perScaleModel) {
		samples := perScaleModel[cores]
		if cores < 2 {
			return nil, fmt.Errorf("scalemodel: regression scale model with %d cores (need multi-core)", cores)
		}
		p, err := TrainPredictor(kind, in, metric, samples, seed^uint64(cores))
		if err != nil {
			return nil, fmt.Errorf("scalemodel: %d-core scale model: %w", cores, err)
		}
		r.predictors[cores] = p
		r.cores = append(r.cores, cores)
	}
	sort.Ints(r.cores)
	return r, nil
}

// ScaleModelCores returns the multi-core scale-model sizes in ascending
// order.
func (r *RegressionModel) ScaleModelCores() []int {
	return append([]int(nil), r.cores...)
}

// queryFor projects the application's features into the X-core scale
// model's feature space: that model was trained on X-program mixes, whose
// co-runner pressure sums over X-1 applications, so the workload of
// interest's CoBW (a sum over targetCores-1 co-runners) is rescaled
// proportionally. Without this projection the query lies far outside the
// small scale models' training distribution and kernel methods collapse to
// their bias. (The paper leaves this step implicit; trees mask the problem
// by clamping, an RBF SVM does not.)
func queryFor(f Features, scaleCores, targetCores int) Features {
	if targetCores <= 1 {
		return f
	}
	g := f
	g.CoBW = f.CoBW * float64(scaleCores-1) / float64(targetCores-1)
	return g
}

// PredictScaleModels returns the per-scale-model predictions for one
// application (step 2 of Fig. 2), for a workload of interest sized for
// targetCores programs.
func (r *RegressionModel) PredictScaleModels(f Features, targetCores int) map[int]float64 {
	out := make(map[int]float64, len(r.cores))
	for _, c := range r.cores {
		out[c] = r.predictors[c].Predict(queryFor(f, c, targetCores))
	}
	return out
}

// Predict extrapolates the application's value to targetCores: it predicts
// the value on every multi-core scale model and fits the chosen curve to
// (cores, value) points (step 3 of Fig. 2).
func (r *RegressionModel) Predict(f Features, targetCores int) (float64, error) {
	xs := make([]float64, 0, len(r.cores))
	ys := make([]float64, 0, len(r.cores))
	for _, c := range r.cores {
		xs = append(xs, float64(c))
		y := r.predictors[c].Predict(queryFor(f, c, targetCores))
		if r.Form == fit.Power && y <= 0 {
			// Power fits need positive values; clamp pathological model
			// outputs to a tiny positive IPC.
			y = 1e-6
		}
		ys = append(ys, y)
	}
	curve, err := fit.Fit(r.Form, xs, ys)
	if err != nil {
		return 0, fmt.Errorf("scalemodel: regression fit: %w", err)
	}
	return curve.Eval(float64(targetCores)), nil
}

// NoExtrapolation implements the baseline method of §III-A: the single-core
// scale-model reading itself is the target prediction.
func NoExtrapolation(f Features) float64 { return f.IPC }
