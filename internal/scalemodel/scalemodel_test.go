package scalemodel

import (
	"fmt"
	"math"
	"testing"
	"time"

	"scalesim/internal/config"
	"scalesim/internal/fit"
	"scalesim/internal/metrics"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
	"scalesim/internal/units"
)

// fakeWorld is an analytic stand-in for the simulator: each benchmark has
// an intrinsic isolated IPC and bandwidth demand derived from its profile;
// co-running programs contend for the machine's total bandwidth through a
// smooth throttling law. This gives the pipeline a ground truth that is
// cheap, deterministic and learnable.
type fakeWorld struct{}

func (fakeWorld) intrinsics(p *trace.Profile) (ipc0, bw0 float64) {
	// Derive stable per-benchmark characteristics from the profile itself.
	memFrac := float64(p.LoadsPerKI+p.StoresPerKI) / 1000
	intensity := 0.0
	for _, r := range p.Regions {
		if r.Size > 2*config.MB {
			intensity += r.Frac
		}
	}
	ipc0 = 1/p.BaseCPI - 2*intensity
	if ipc0 < 0.2 {
		ipc0 = 0.2
	}
	bw0 = 8 * intensity * memFrac // fair-share units
	return ipc0, bw0
}

// run produces a synthetic result: per-core IPC reduced by total bandwidth
// pressure relative to the machine's aggregate capacity.
func (w fakeWorld) run(cfg *config.SystemConfig, wl sim.Workload, opts sim.Options) (*sim.Result, error) {
	totalDemand := 0.0
	for _, p := range wl.Profiles {
		_, bw0 := w.intrinsics(p)
		totalDemand += bw0
	}
	capacity := float64(cfg.Cores) // fair-share units
	pressure := totalDemand / capacity
	res := &sim.Result{ConfigName: cfg.Name, ElapsedCycles: 1000}
	perCoreShare := (float64(cfg.DRAM.TotalGBps()) / cfg.Core.FrequencyGHz) / float64(cfg.Cores)
	for i, p := range wl.Profiles {
		ipc0, bw0 := w.intrinsics(p)
		// Smooth saturating contention: more pressure, lower IPC; larger
		// machines add a mild NoC penalty the 1-core model cannot see.
		ipc := ipc0 / (1 + 0.4*bw0*pressure) * (1 - 0.02*math.Log2(float64(cfg.Cores)+1))
		eff := ipc / ipc0
		res.Cores = append(res.Cores, sim.CoreResult{
			Core:            i,
			Benchmark:       p.Name,
			Instructions:    100000,
			Cycles:          units.Cycles(100000 / ipc),
			IPC:             ipc,
			BWBytesPerCycle: units.BytesPerCycle(bw0 * eff * perCoreShare),
			LLCMPKI:         bw0 * 10,
		})
	}
	res.WallClock = time.Duration(cfg.Cores) * time.Millisecond
	return res, nil
}

func fakeLab() *Lab {
	l := NewLab(sim.Options{Instructions: 1000, Warmup: 100, EpochCycles: 100, CapacityScale: 16, Seed: 1})
	l.SetRunnerForTest(fakeWorld{}.run)
	return l
}

func someBenchmarks(n int) []*trace.Profile {
	return trace.Suite()[:n]
}

func TestFeatureVector(t *testing.T) {
	f := Features{IPC: 1.5, BW: 0.4, CoBW: 2.1}
	v := f.Vector(InputsIPCAndBW)
	if len(v) != 3 || v[0] != 1.5 || v[1] != 0.4 || v[2] != 2.1 {
		t.Fatalf("full vector %v", v)
	}
	v = f.Vector(InputsIPCOnly)
	if len(v) != 1 || v[0] != 1.5 {
		t.Fatalf("ipc-only vector %v", v)
	}
}

func TestMethodSpecNames(t *testing.T) {
	cases := map[string]MethodSpec{
		"No Extrapolation": {Method: MethodNoExtrapolation},
		"SVM":              {Method: MethodPrediction, Estimator: SVM},
		"DT":               {Method: MethodPrediction, Estimator: DT},
		"SVM-log":          {Method: MethodRegression, Estimator: SVM, Form: fit.Logarithmic},
		"RF-linear":        {Method: MethodRegression, Estimator: RF, Form: fit.Linear},
	}
	for want, spec := range cases {
		if got := spec.Name(); got != want {
			t.Errorf("spec name %q, want %q", got, want)
		}
	}
}

func TestCollectHomogeneousShapes(t *testing.T) {
	l := fakeLab()
	benches := someBenchmarks(6)
	d, err := l.CollectHomogeneous(benches, []int{2, 4, 8, 16}, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Benchmarks) != 6 {
		t.Fatalf("%d benchmarks, want 6", len(d.Benchmarks))
	}
	for _, b := range d.Benchmarks {
		if d.Feat[b].IPC <= 0 {
			t.Errorf("%s: non-positive feature IPC", b)
		}
		if d.Target[b] <= 0 {
			t.Errorf("%s: non-positive target label", b)
		}
		// CoBW must be (T-1) * BW for homogeneous mixes.
		want := 31 * d.Feat[b].BW
		if math.Abs(d.Feat[b].CoBW-want) > 1e-9 {
			t.Errorf("%s: CoBW %v, want %v", b, d.Feat[b].CoBW, want)
		}
	}
	for _, c := range []int{2, 4, 8, 16} {
		if len(d.Scale[c]) != 6 {
			t.Errorf("scale model %d: %d labels, want 6", c, len(d.Scale[c]))
		}
	}
}

func TestLabCaching(t *testing.T) {
	l := fakeLab()
	benches := someBenchmarks(4)
	if _, err := l.CollectHomogeneous(benches, []int{2, 4}, MetricIPC); err != nil {
		t.Fatal(err)
	}
	runs := l.Runs()
	// Re-collecting must hit the cache entirely.
	if _, err := l.CollectHomogeneous(benches, []int{2, 4}, MetricIPC); err != nil {
		t.Fatal(err)
	}
	if l.Runs() != runs {
		t.Fatalf("recollection ran %d extra simulations", l.Runs()-runs)
	}
	// 4 benches x (1-core + target + 2 scale models) = 16 runs.
	if runs != 16 {
		t.Fatalf("ran %d simulations, want 16", runs)
	}
}

func TestEvaluateLOOAllMethods(t *testing.T) {
	l := fakeLab()
	d, err := l.CollectHomogeneous(someBenchmarks(10), []int{2, 4, 8, 16}, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	specs := []MethodSpec{
		{Method: MethodNoExtrapolation},
		{Method: MethodPrediction, Estimator: DT},
		{Method: MethodPrediction, Estimator: RF},
		{Method: MethodPrediction, Estimator: SVM},
		{Method: MethodRegression, Estimator: SVM, Form: fit.Logarithmic},
		{Method: MethodRegression, Estimator: DT, Form: fit.Linear},
		{Method: MethodRegression, Estimator: RF, Form: fit.Power},
	}
	for _, spec := range specs {
		errs, err := d.EvaluateLOO(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if len(errs) != 10 {
			t.Fatalf("%s: %d errors, want 10", spec.Name(), len(errs))
		}
		for _, e := range errs {
			if math.IsNaN(e.Error) || e.Error < 0 {
				t.Errorf("%s/%s: bad error %v", spec.Name(), e.Name, e.Error)
			}
		}
		// Errors must be sorted by MPKI key.
		for i := 1; i < len(errs); i++ {
			if errs[i-1].Key > errs[i].Key {
				t.Errorf("%s: errors not sorted by MPKI", spec.Name())
			}
		}
	}
}

func TestPredictionBeatsNoExtrapolationOnFakeWorld(t *testing.T) {
	// The fake world has a learnable contention law, so ML prediction must
	// reduce the mean error substantially.
	l := fakeLab()
	d, err := l.CollectHomogeneous(trace.Suite(), []int{2, 4, 8, 16}, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	noneErrs, err := d.EvaluateLOO(MethodSpec{Method: MethodNoExtrapolation})
	if err != nil {
		t.Fatal(err)
	}
	svmErrs, err := d.EvaluateLOO(MethodSpec{Method: MethodPrediction, Estimator: SVM})
	if err != nil {
		t.Fatal(err)
	}
	collect := func(es []metrics.NamedError) []float64 {
		out := make([]float64, len(es))
		for i, e := range es {
			out[i] = e.Error
		}
		return out
	}
	none := metrics.Summarize(collect(noneErrs))
	svm := metrics.Summarize(collect(svmErrs))
	if svm.Mean >= none.Mean {
		t.Fatalf("SVM mean error %.3f not below No Extrapolation %.3f", svm.Mean, none.Mean)
	}
}

func TestRegressionWithScaleModelSubset(t *testing.T) {
	l := fakeLab()
	d, err := l.CollectHomogeneous(someBenchmarks(8), []int{2, 4, 8, 16}, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	spec := MethodSpec{Method: MethodRegression, Estimator: SVM, Form: fit.Logarithmic, ScaleModels: []int{2, 4}}
	if _, err := d.EvaluateLOO(spec); err != nil {
		t.Fatal(err)
	}
	spec.ScaleModels = []int{2, 64}
	if _, err := d.EvaluateLOO(spec); err == nil {
		t.Fatal("uncollected scale model accepted")
	}
}

func TestCollectHeterogeneous(t *testing.T) {
	l := fakeLab()
	opts := HeteroOptions{
		EvalBenchmarks: 4,
		TrainResults:   128,
		EvalMixes:      3,
		STPMixes:       5,
		ScaleModels:    []int{2, 4},
		Metric:         MetricIPC,
		Seed:           7,
	}
	d, err := l.CollectHeterogeneous(trace.Suite()[:12], opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.EvalBenchmarks) != 4 || len(d.TrainBenchmarks) != 8 {
		t.Fatalf("split %d/%d, want 4/8", len(d.EvalBenchmarks), len(d.TrainBenchmarks))
	}
	// Train and eval sets must be disjoint.
	evalSet := map[string]bool{}
	for _, b := range d.EvalBenchmarks {
		evalSet[b] = true
	}
	for _, b := range d.TrainBenchmarks {
		if evalSet[b] {
			t.Fatalf("benchmark %s in both sets", b)
		}
	}
	// Training samples must come from training benchmarks only.
	if len(d.PredSamples) != 128/32*32 {
		t.Fatalf("%d prediction samples, want 128", len(d.PredSamples))
	}
	for _, s := range d.PredSamples {
		if evalSet[s.Bench] {
			t.Fatalf("eval benchmark %s leaked into training", s.Bench)
		}
	}
	for X, samples := range d.RegSamples {
		if len(samples) != 128/X*X {
			t.Errorf("scale model %d: %d samples, want %d", X, len(samples), 128)
		}
	}
	if len(d.EvalMixes) != 3 || len(d.STPMixes) != 5 {
		t.Fatalf("mix counts %d/%d, want 3/5", len(d.EvalMixes), len(d.STPMixes))
	}
	// Balanced eval mixes contain every eval benchmark.
	for _, mix := range d.EvalMixes {
		seen := map[string]bool{}
		for _, s := range mix.Slots {
			seen[s] = true
			if evalSet[s] == false {
				t.Fatalf("training benchmark %s in eval mix", s)
			}
		}
		if len(seen) != 4 {
			t.Fatalf("eval mix covers %d benchmarks, want 4", len(seen))
		}
	}
}

func TestHeterogeneousEvaluation(t *testing.T) {
	l := fakeLab()
	opts := HeteroOptions{
		EvalBenchmarks: 4, TrainResults: 160, EvalMixes: 3, STPMixes: 6,
		ScaleModels: []int{2, 4, 8, 16}, Metric: MetricIPC, Seed: 9,
	}
	d, err := l.CollectHeterogeneous(trace.Suite()[:16], opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []MethodSpec{
		{Method: MethodNoExtrapolation},
		{Method: MethodPrediction, Estimator: SVM},
		{Method: MethodRegression, Estimator: SVM, Form: fit.Logarithmic},
	} {
		perApp, err := d.EvaluatePerApp(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if len(perApp) != 4 {
			t.Fatalf("%s: %d per-app errors, want 4", spec.Name(), len(perApp))
		}
		stp, err := d.EvaluateSTP(spec)
		if err != nil {
			t.Fatalf("%s STP: %v", spec.Name(), err)
		}
		if len(stp) != 6 {
			t.Fatalf("%s: %d STP errors, want 6", spec.Name(), len(stp))
		}
		for _, e := range stp {
			if math.IsNaN(e) || e < 0 {
				t.Fatalf("%s: bad STP error %v", spec.Name(), e)
			}
		}
	}
}

func TestSTPRequiresIPCMetric(t *testing.T) {
	l := fakeLab()
	opts := HeteroOptions{
		EvalBenchmarks: 3, TrainResults: 64, EvalMixes: 1, STPMixes: 1,
		ScaleModels: []int{2, 4}, Metric: MetricBW, Seed: 3,
	}
	d, err := l.CollectHeterogeneous(trace.Suite()[:10], opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EvaluateSTP(MethodSpec{Method: MethodNoExtrapolation}); err == nil {
		t.Fatal("STP with BW metric accepted")
	}
}

func TestCollectHeterogeneousRejectsBadSplit(t *testing.T) {
	l := fakeLab()
	if _, err := l.CollectHeterogeneous(trace.Suite()[:5], HeteroOptions{EvalBenchmarks: 5}); err == nil {
		t.Fatal("eval=all split accepted")
	}
	if _, err := l.CollectHeterogeneous(trace.Suite()[:5], HeteroOptions{EvalBenchmarks: 0}); err == nil {
		t.Fatal("eval=0 split accepted")
	}
}

func TestDeterministicCollection(t *testing.T) {
	collect := func() *HeterogeneousData {
		l := fakeLab()
		d, err := l.CollectHeterogeneous(trace.Suite()[:10], HeteroOptions{
			EvalBenchmarks: 3, TrainResults: 64, EvalMixes: 2, STPMixes: 2,
			ScaleModels: []int{2, 4}, Metric: MetricIPC, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := collect(), collect()
	if len(a.PredSamples) != len(b.PredSamples) {
		t.Fatal("sample counts differ across identical collections")
	}
	for i := range a.PredSamples {
		if a.PredSamples[i] != b.PredSamples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.PredSamples[i], b.PredSamples[i])
		}
	}
	for i := range a.EvalMixes {
		for j := range a.EvalMixes[i].Slots {
			if a.EvalMixes[i].Slots[j] != b.EvalMixes[i].Slots[j] {
				t.Fatal("eval mix composition differs")
			}
		}
	}
}

func TestBuildMethodErrors(t *testing.T) {
	if _, err := buildMethod(MethodSpec{Method: MethodKind(9)}, 32, MetricIPC, nil, nil); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := buildMethod(MethodSpec{Method: MethodPrediction, Estimator: SVM}, 32, MetricIPC, nil, nil); err == nil {
		t.Fatal("prediction without samples accepted")
	}
	if _, err := buildMethod(MethodSpec{Method: MethodRegression, Estimator: SVM}, 32, MetricIPC, nil,
		map[int][]Sample{2: {{F: Features{IPC: 1}, Y: 1}}}); err == nil {
		t.Fatal("regression with one scale model accepted")
	}
}

func TestTrainRegressionRejectsSingleCore(t *testing.T) {
	samples := map[int][]Sample{
		1: {{F: Features{IPC: 1}, Y: 1}, {F: Features{IPC: 2}, Y: 2}},
		2: {{F: Features{IPC: 1}, Y: 1}, {F: Features{IPC: 2}, Y: 2}},
	}
	if _, err := TrainRegression(SVM, fit.Logarithmic, InputsIPCAndBW, MetricIPC, samples, 1); err == nil {
		t.Fatal("1-core scale model accepted in regression")
	}
}

func TestNoExtrapolationPassthrough(t *testing.T) {
	if got := NoExtrapolation(Features{IPC: 0.75}); got != 0.75 {
		t.Fatalf("NoExtrapolation = %v, want 0.75", got)
	}
}

// TestRealSimulatorSmoke exercises the full pipeline against the actual
// simulator with tiny budgets.
func TestRealSimulatorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	l := NewLab(sim.Options{Instructions: 40_000, Warmup: 10_000, EpochCycles: 10_000, CapacityScale: 32, Seed: 5})
	benches := []*trace.Profile{trace.ByName("exchange2"), trace.ByName("gcc"), trace.ByName("lbm"), trace.ByName("mcf")}
	d, err := l.CollectHomogeneous(benches, []int{2, 4}, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []MethodSpec{
		{Method: MethodNoExtrapolation},
		{Method: MethodPrediction, Estimator: DT},
		{Method: MethodRegression, Estimator: DT, Form: fit.Logarithmic},
	} {
		errs, err := d.EvaluateLOO(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if len(errs) != 4 {
			t.Fatalf("%s: %d errors", spec.Name(), len(errs))
		}
	}
}

func TestPredictOne(t *testing.T) {
	l := fakeLab()
	d, err := l.CollectHomogeneous(someBenchmarks(8), []int{2, 4}, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	spec := MethodSpec{Method: MethodPrediction, Estimator: DT}
	pred, actual, err := d.PredictOne(d.Benchmarks[3], spec)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || actual <= 0 {
		t.Fatalf("pred %v actual %v", pred, actual)
	}
	if _, _, err := d.PredictOne("missing", spec); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRegressionQueryProjection(t *testing.T) {
	// queryFor scales CoBW into the scale model's mix-size space.
	f := Features{IPC: 1, BW: 0.5, CoBW: 31 * 0.5}
	q := queryFor(f, 2, 32)
	want := 31 * 0.5 / 31.0 // (2-1)/(32-1) of the original
	if math.Abs(q.CoBW-want) > 1e-12 {
		t.Fatalf("projected CoBW %v, want %v", q.CoBW, want)
	}
	if q.IPC != f.IPC || q.BW != f.BW {
		t.Fatal("projection must only touch CoBW")
	}
	if got := queryFor(f, 4, 1); got != f {
		t.Fatal("degenerate target must be identity")
	}
}

func TestPredictScaleModels(t *testing.T) {
	samples := map[int][]Sample{}
	for _, c := range []int{2, 4} {
		for i := 0; i < 8; i++ {
			ipc := 0.5 + 0.2*float64(i)
			samples[c] = append(samples[c], Sample{
				Bench: fmt.Sprintf("b%d", i),
				F:     Features{IPC: ipc, BW: 0.1 * float64(i), CoBW: 0.3 * float64(i)},
				Y:     ipc * (1 - 0.05*float64(c)),
			})
		}
	}
	r, err := TrainRegression(DT, fit.Logarithmic, InputsIPCAndBW, MetricIPC, samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	cores := r.ScaleModelCores()
	if len(cores) != 2 || cores[0] != 2 || cores[1] != 4 {
		t.Fatalf("scale model cores %v", cores)
	}
	preds := r.PredictScaleModels(Features{IPC: 1.0, BW: 0.2, CoBW: 6}, 32)
	if len(preds) != 2 || preds[2] <= 0 || preds[4] <= 0 {
		t.Fatalf("scale-model predictions %v", preds)
	}
}

func TestTrainPredictorRejectsBadBaseline(t *testing.T) {
	samples := []Sample{{Bench: "x", F: Features{IPC: 0}, Y: 1}}
	if _, err := TrainPredictor(DT, InputsIPCAndBW, MetricIPC, samples, 1); err == nil {
		t.Fatal("zero-IPC baseline accepted")
	}
}

func TestMetricAndInputStrings(t *testing.T) {
	if MetricIPC.String() != "IPC" || MetricBW.String() != "bandwidth" {
		t.Fatal("metric strings")
	}
	if InputsIPCAndBW.String() != "IPC+BW" || InputsIPCOnly.String() != "IPC-only" {
		t.Fatal("input strings")
	}
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Fatal("empty estimator name")
		}
	}
}
