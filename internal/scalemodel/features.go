// Package scalemodel implements the paper's contribution: scale-model
// architectural simulation. It glues the substrates together into the
// methodology of §II-III —
//
//  1. construct a scale model of the target system (config.ScaleModel),
//  2. simulate workloads on it (internal/sim) and extract the features the
//     extrapolation models consume (IPC^ss, BW^ss, and the co-runners'
//     aggregate bandwidth),
//  3. extrapolate to the target system with one of three methods:
//     NoExtrapolation (the scale-model reading itself), ML-based Prediction
//     (Fig. 1: models trained against target-system runs), or ML-based
//     Regression (Fig. 2: models trained against multi-core scale-model
//     runs plus a performance-versus-cores curve fit),
//
// and implements the paper's two evaluation protocols (homogeneous
// leave-one-out and heterogeneous train/eval split, §IV).
package scalemodel

import (
	"fmt"

	"scalesim/internal/ml"
)

// Features is one application's input to the extrapolation models
// (§III-B1): performance and bandwidth utilization measured on the
// single-core scale model, plus the aggregate bandwidth utilization of its
// co-runners in the mix (a measure of how much pressure the application
// will be under on the shared memory subsystem).
type Features struct {
	IPC  float64 // IPC^ss: single-core scale-model IPC
	BW   float64 // BW^ss: single-core scale-model bandwidth utilization
	CoBW float64 // sum of the co-runners' BW^ss
}

// Inputs selects which features the models see (the Fig. 10 ablation).
type Inputs int

const (
	// InputsIPCAndBW is the paper's default three-feature input.
	InputsIPCAndBW Inputs = iota
	// InputsIPCOnly drops the bandwidth features.
	InputsIPCOnly
)

func (in Inputs) String() string {
	if in == InputsIPCOnly {
		return "IPC-only"
	}
	return "IPC+BW"
}

// Vector renders the features for the ML estimators.
func (f Features) Vector(in Inputs) []float64 {
	if in == InputsIPCOnly {
		return []float64{f.IPC}
	}
	return []float64{f.IPC, f.BW, f.CoBW}
}

// Sample is one labelled training point: features from the single-core
// scale model, target value measured on a larger machine (the target system
// for ML-based Prediction, a multi-core scale model for ML-based
// Regression).
type Sample struct {
	Bench string
	F     Features
	Y     float64
}

// Metric selects the dependent variable (§V-E5: the methodology predicts
// bandwidth utilization as readily as performance).
type Metric int

const (
	// MetricIPC predicts per-application IPC (the default).
	MetricIPC Metric = iota
	// MetricBW predicts per-application memory bandwidth utilization.
	MetricBW
)

func (m Metric) String() string {
	if m == MetricBW {
		return "bandwidth"
	}
	return "IPC"
}

// EstimatorKind selects the ML technique (§III-B1).
type EstimatorKind int

const (
	// DT is the CART decision tree.
	DT EstimatorKind = iota
	// RF is the random forest.
	RF
	// SVM is the RBF-kernel support vector regressor.
	SVM
)

func (k EstimatorKind) String() string {
	switch k {
	case DT:
		return "DT"
	case RF:
		return "RF"
	case SVM:
		return "SVM"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// newEstimator builds a fresh untrained estimator. The seed only matters
// for the random forest's bootstrap.
func newEstimator(k EstimatorKind, seed uint64) (ml.Regressor, error) {
	switch k {
	case DT:
		return &ml.DecisionTree{}, nil
	case RF:
		return &ml.RandomForest{Seed: seed}, nil
	case SVM:
		// Cross-validated hyperparameter selection: the homogeneous and
		// heterogeneous protocols hand the SVM very differently sized and
		// shaped training sets.
		return &ml.TunedSVR{}, nil
	default:
		return nil, fmt.Errorf("scalemodel: unknown estimator kind %d", int(k))
	}
}

// Kinds lists all estimator kinds in the paper's presentation order.
func Kinds() []EstimatorKind { return []EstimatorKind{DT, RF, SVM} }
