package scalemodel

import (
	"fmt"

	"scalesim/internal/fit"
	"scalesim/internal/metrics"
	"scalesim/internal/runner"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
	"scalesim/internal/xrand"
)

// MethodKind selects the extrapolation method (§III).
type MethodKind int

const (
	// MethodNoExtrapolation uses the single-core scale-model reading.
	MethodNoExtrapolation MethodKind = iota
	// MethodPrediction is ML-based Prediction (trained on target runs).
	MethodPrediction
	// MethodRegression is ML-based Regression (trained on multi-core scale
	// models, extrapolated with a curve fit).
	MethodRegression
)

// MethodSpec fully describes one extrapolation method variant.
type MethodSpec struct {
	Method    MethodKind
	Estimator EstimatorKind // Prediction/Regression
	Form      fit.Model     // Regression curve family
	Inputs    Inputs
	// ScaleModels optionally restricts Regression to a subset of the
	// collected multi-core scale models (Fig. 11); nil = all.
	ScaleModels []int
	// Seed drives estimator randomisation (random forest bootstrap).
	Seed uint64
}

// Name renders the paper's label for the method ("No Extrapolation",
// "SVM", "SVM-log", ...).
func (s MethodSpec) Name() string {
	switch s.Method {
	case MethodNoExtrapolation:
		return "No Extrapolation"
	case MethodPrediction:
		return s.Estimator.String()
	case MethodRegression:
		return fmt.Sprintf("%s-%s", s.Estimator, s.Form)
	default:
		return fmt.Sprintf("MethodSpec(%d)", int(s.Method))
	}
}

// predictFunc maps an application's features to a target-system estimate.
type predictFunc func(Features) (float64, error)

// buildMethod trains the method described by spec and returns its
// prediction function. predSamples carry target-system labels (used by
// Prediction); regSamples carry per-scale-model labels (used by
// Regression). metric selects the no-extrapolation feature passthrough.
func buildMethod(spec MethodSpec, targetCores int, metric Metric,
	predSamples []Sample, regSamples map[int][]Sample) (predictFunc, error) {
	switch spec.Method {
	case MethodNoExtrapolation:
		return func(f Features) (float64, error) {
			if metric == MetricBW {
				return f.BW, nil
			}
			return NoExtrapolation(f), nil
		}, nil
	case MethodPrediction:
		p, err := TrainPredictor(spec.Estimator, spec.Inputs, metric, predSamples, spec.Seed)
		if err != nil {
			return nil, err
		}
		return func(f Features) (float64, error) { return p.Predict(f), nil }, nil
	case MethodRegression:
		selected := regSamples
		if spec.ScaleModels != nil {
			selected = make(map[int][]Sample, len(spec.ScaleModels))
			for _, c := range spec.ScaleModels {
				s, ok := regSamples[c]
				if !ok {
					return nil, fmt.Errorf("scalemodel: no samples collected for %d-core scale model", c)
				}
				selected[c] = s
			}
		}
		r, err := TrainRegression(spec.Estimator, spec.Form, spec.Inputs, metric, selected, spec.Seed)
		if err != nil {
			return nil, err
		}
		return func(f Features) (float64, error) { return r.Predict(f, targetCores) }, nil
	default:
		return nil, fmt.Errorf("scalemodel: unknown method %d", int(spec.Method))
	}
}

// HomogeneousData holds every measurement the homogeneous leave-one-out
// protocol needs (§IV-2): single-core features, target-system labels and
// multi-core scale-model labels for each benchmark.
type HomogeneousData struct {
	TargetCores int
	Metric      Metric
	Benchmarks  []string

	Meas   map[string]Measurement
	Feat   map[string]Features
	Target map[string]float64
	Scale  map[int]map[string]float64
}

// homogeneousJobs enumerates every run the homogeneous protocol needs, in
// protocol order, for batch prewarming.
func (l *Lab) homogeneousJobs(benchmarks []*trace.Profile, scaleCores []int) ([]runner.Job, error) {
	var jobs []runner.Job
	sizes := append([]int{1, l.Target.Cores}, scaleCores...)
	for _, prof := range benchmarks {
		for _, c := range sizes {
			job, err := l.HomogeneousJob(c, prof)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, job)
		}
	}
	return jobs, nil
}

// CollectHomogeneous simulates everything the homogeneous protocol needs:
// for each benchmark, the single-core scale model, the homogeneous target
// run, and homogeneous runs on each multi-core scale model in scaleCores.
// With a multi-worker engine the whole collection is prewarmed through the
// campaign engine's worker pool first; the sequential assembly below then
// reads from the memo cache, so results are bit-identical to a sequential
// collection.
func (l *Lab) CollectHomogeneous(benchmarks []*trace.Profile, scaleCores []int, metric Metric) (*HomogeneousData, error) {
	if jobs, err := l.homogeneousJobs(benchmarks, scaleCores); err == nil {
		if err := l.Prewarm(jobs); err != nil {
			return nil, err
		}
	}
	d := &HomogeneousData{
		TargetCores: l.Target.Cores,
		Metric:      metric,
		Meas:        map[string]Measurement{},
		Feat:        map[string]Features{},
		Target:      map[string]float64{},
		Scale:       map[int]map[string]float64{},
	}
	for _, c := range scaleCores {
		d.Scale[c] = map[string]float64{}
	}
	T := l.Target.Cores
	for _, prof := range benchmarks {
		m, err := l.MeasureSingleCore(prof)
		if err != nil {
			return nil, err
		}
		d.Benchmarks = append(d.Benchmarks, prof.Name)
		d.Meas[prof.Name] = m
		// In a homogeneous mix every co-runner is another copy of the
		// benchmark itself: CoBW = (T-1) * BW^ss.
		d.Feat[prof.Name] = Features{IPC: m.IPC, BW: m.BW, CoBW: float64(T-1) * m.BW}

		tres, err := l.HomogeneousRun(T, prof)
		if err != nil {
			return nil, err
		}
		tcfg := l.Target
		d.Target[prof.Name] = perBenchAverage(metric, tcfg, tres)[prof.Name]

		for _, c := range scaleCores {
			cfg, err := l.ScaleModelConfig(c)
			if err != nil {
				return nil, err
			}
			res, err := l.HomogeneousRun(c, prof)
			if err != nil {
				return nil, err
			}
			d.Scale[c][prof.Name] = perBenchAverage(metric, cfg, res)[prof.Name]
		}
	}
	return d, nil
}

// samplesExcluding builds labelled samples from every benchmark except
// skip, with labels drawn from the given per-benchmark value map.
func (d *HomogeneousData) samplesExcluding(skip string, labels map[string]float64) []Sample {
	out := make([]Sample, 0, len(d.Benchmarks))
	for _, b := range d.Benchmarks {
		if b == skip {
			continue
		}
		out = append(out, Sample{Bench: b, F: d.Feat[b], Y: labels[b]})
	}
	return out
}

// scaleSamplesExcluding builds the regression training samples for the
// X-core scale model: the labels come from X-copy homogeneous runs, so the
// co-runner bandwidth feature is the pressure of X-1 copies — keeping each
// scale model's feature space consistent with its measurements (queries are
// projected into the same space by RegressionModel).
func (d *HomogeneousData) scaleSamplesExcluding(skip string, scaleCores int, labels map[string]float64) []Sample {
	out := make([]Sample, 0, len(d.Benchmarks))
	for _, b := range d.Benchmarks {
		if b == skip {
			continue
		}
		m := d.Meas[b]
		f := Features{IPC: m.IPC, BW: m.BW, CoBW: float64(scaleCores-1) * m.BW}
		out = append(out, Sample{Bench: b, F: f, Y: labels[b]})
	}
	return out
}

// EvaluateLOO runs the paper's leave-one-benchmark-out protocol for one
// method: for every benchmark, a model trained on the other N-1 benchmarks
// predicts it, and the absolute relative error against the target-system
// measurement is recorded. Errors carry the benchmark's single-core LLC
// MPKI as sort key (Fig. 3/4 order benchmarks by memory intensity).
func (d *HomogeneousData) EvaluateLOO(spec MethodSpec) ([]metrics.NamedError, error) {
	var out []metrics.NamedError
	for _, b := range d.Benchmarks {
		predSamples := d.samplesExcluding(b, d.Target)
		regSamples := make(map[int][]Sample, len(d.Scale))
		for _, c := range sortedKeys(d.Scale) {
			regSamples[c] = d.scaleSamplesExcluding(b, c, d.Scale[c])
		}
		predict, err := buildMethod(spec, d.TargetCores, d.Metric, predSamples, regSamples)
		if err != nil {
			return nil, fmt.Errorf("scalemodel: %s for %s: %w", spec.Name(), b, err)
		}
		pred, err := predict(d.Feat[b])
		if err != nil {
			return nil, fmt.Errorf("scalemodel: %s predicting %s: %w", spec.Name(), b, err)
		}
		out = append(out, metrics.NamedError{
			Name:  b,
			Key:   d.Meas[b].MPKI,
			Error: metrics.PredictionError(pred, d.Target[b]),
		})
	}
	metrics.SortByKey(out)
	return out, nil
}

// PredictOne trains spec on every benchmark except bench and returns the
// prediction for bench alongside the measured target value (one fold of the
// leave-one-out protocol).
func (d *HomogeneousData) PredictOne(bench string, spec MethodSpec) (pred, actual float64, err error) {
	if _, ok := d.Feat[bench]; !ok {
		return 0, 0, fmt.Errorf("scalemodel: benchmark %q not collected", bench)
	}
	predSamples := d.samplesExcluding(bench, d.Target)
	regSamples := make(map[int][]Sample, len(d.Scale))
	for _, c := range sortedKeys(d.Scale) {
		regSamples[c] = d.scaleSamplesExcluding(bench, c, d.Scale[c])
	}
	predict, err := buildMethod(spec, d.TargetCores, d.Metric, predSamples, regSamples)
	if err != nil {
		return 0, 0, err
	}
	pred, err = predict(d.Feat[bench])
	return pred, d.Target[bench], err
}

// HeteroOptions parameterises the heterogeneous protocol (§IV-2).
type HeteroOptions struct {
	// EvalBenchmarks is the number of randomly chosen evaluation
	// benchmarks (paper: 8); the rest of the suite trains the models.
	EvalBenchmarks int
	// TrainResults is the total number of labelled training results per
	// model (paper: 320). Prediction uses TrainResults/T target mixes;
	// Regression uses TrainResults/X mixes on each X-core scale model.
	TrainResults int
	// EvalMixes is the number of evaluation mixes per application (paper:
	// 10).
	EvalMixes int
	// STPMixes is the number of mixes for the system-throughput study
	// (paper: 80). 0 skips STP collection.
	STPMixes int
	// ScaleModels are the multi-core scale-model sizes for Regression
	// (paper: 2, 4, 8, 16).
	ScaleModels []int
	// Metric selects the dependent variable.
	Metric Metric
	// Seed drives benchmark selection and mix composition.
	Seed uint64
}

// DefaultHeteroOptions returns the paper's heterogeneous setup.
func DefaultHeteroOptions() HeteroOptions {
	return HeteroOptions{
		EvalBenchmarks: 8,
		TrainResults:   320,
		EvalMixes:      10,
		STPMixes:       80,
		ScaleModels:    []int{2, 4, 8, 16},
		Metric:         MetricIPC,
		Seed:           2022,
	}
}

// HeterogeneousData holds the heterogeneous protocol's measurements.
type HeterogeneousData struct {
	TargetCores int
	Metric      Metric

	TrainBenchmarks []string
	EvalBenchmarks  []string
	Meas            map[string]Measurement

	// PredSamples carry target-system labels; RegSamples carry labels per
	// multi-core scale-model size.
	PredSamples []Sample
	RegSamples  map[int][]Sample

	// EvalMixes are the balanced evaluation mixes with their measured
	// per-benchmark target values (metric units).
	EvalMixes []MixResult
	// STPMixes are the random mixes for the throughput study (IPC metric).
	STPMixes []MixResult
}

// MixResult is one simulated mix: its composition and the measured
// per-benchmark average metric on the target system.
type MixResult struct {
	Slots  []string
	Actual map[string]float64
}

// features computes the per-benchmark features within this mix given the
// single-core measurements: CoBW sums the other slots' BW^ss.
func (m MixResult) features(meas map[string]Measurement) map[string]Features {
	total := 0.0
	for _, s := range m.Slots {
		total += meas[s].BW
	}
	out := make(map[string]Features)
	for _, s := range m.Slots {
		if _, ok := out[s]; ok {
			continue
		}
		mm := meas[s]
		out[s] = Features{IPC: mm.IPC, BW: mm.BW, CoBW: total - mm.BW}
	}
	return out
}

// CollectHeterogeneous simulates everything the heterogeneous protocol
// needs. All randomness (benchmark split, mix composition) derives from
// opts.Seed.
func (l *Lab) CollectHeterogeneous(suite []*trace.Profile, opts HeteroOptions) (*HeterogeneousData, error) {
	if opts.EvalBenchmarks <= 0 || opts.EvalBenchmarks >= len(suite) {
		return nil, fmt.Errorf("scalemodel: %d eval benchmarks out of %d", opts.EvalBenchmarks, len(suite))
	}
	T := l.Target.Cores
	rng := xrand.New(opts.Seed ^ 0x48e7e20)

	// Random train/eval split.
	perm := rng.Perm(len(suite))
	byName := map[string]*trace.Profile{}
	d := &HeterogeneousData{
		TargetCores: T,
		Metric:      opts.Metric,
		Meas:        map[string]Measurement{},
		RegSamples:  map[int][]Sample{},
	}
	var evalProfiles, trainProfiles []*trace.Profile
	for i, pi := range perm {
		p := suite[pi]
		byName[p.Name] = p
		if i < opts.EvalBenchmarks {
			d.EvalBenchmarks = append(d.EvalBenchmarks, p.Name)
			evalProfiles = append(evalProfiles, p)
		} else {
			d.TrainBenchmarks = append(d.TrainBenchmarks, p.Name)
			trainProfiles = append(trainProfiles, p)
		}
	}

	randomMix := func(rng *xrand.RNG, pool []*trace.Profile, slots int) []*trace.Profile {
		mix := make([]*trace.Profile, slots)
		for i := range mix {
			mix[i] = pool[rng.Intn(len(pool))]
		}
		return mix
	}

	// Draw every mix composition up front (the draws depend only on the
	// seed, not on simulation results, so the RNG sequence is identical to
	// the historical interleaved order), then prewarm the whole collection
	// through the campaign engine in one batch.
	mixRng := rng.Split()
	nTrainMixes := opts.TrainResults / T
	if nTrainMixes < 1 {
		nTrainMixes = 1
	}
	trainMixes := make([][]*trace.Profile, nTrainMixes)
	for i := range trainMixes {
		trainMixes[i] = randomMix(mixRng, trainProfiles, T)
	}
	regMixes := map[int][][]*trace.Profile{}
	for _, X := range opts.ScaleModels {
		n := opts.TrainResults / X
		if n < 1 {
			n = 1
		}
		smRng := rng.Split()
		for i := 0; i < n; i++ {
			regMixes[X] = append(regMixes[X], randomMix(smRng, trainProfiles, X))
		}
	}
	evalRng := rng.Split()
	evalMixes := make([][]*trace.Profile, opts.EvalMixes)
	for i := range evalMixes {
		evalMixes[i] = balancedMix(evalRng, evalProfiles, T)
	}
	stpRng := rng.Split()
	stpMixes := make([][]*trace.Profile, opts.STPMixes)
	for i := range stpMixes {
		stpMixes[i] = randomMix(stpRng, evalProfiles, T)
	}

	if jobs, err := l.heterogeneousJobs(suite, trainMixes, regMixes, evalMixes, stpMixes); err == nil {
		if err := l.Prewarm(jobs); err != nil {
			return nil, err
		}
	}

	// Single-core measurements for every benchmark.
	for _, p := range suite {
		m, err := l.MeasureSingleCore(p)
		if err != nil {
			return nil, err
		}
		d.Meas[p.Name] = m
	}

	// Training mixes for ML-based Prediction: target-system runs.
	for _, mix := range trainMixes {
		res, err := l.MixRun(mix)
		if err != nil {
			return nil, err
		}
		mr := MixResult{Slots: profileNames(mix), Actual: perBenchAverage(opts.Metric, l.Target, res)}
		feats := mr.features(d.Meas)
		for _, cr := range res.Cores {
			d.PredSamples = append(d.PredSamples, Sample{
				Bench: cr.Benchmark,
				F:     feats[cr.Benchmark],
				Y:     metricValue(opts.Metric, l.Target, cr),
			})
		}
	}

	// Training mixes for ML-based Regression: multi-core scale models.
	for _, X := range opts.ScaleModels {
		cfg, err := l.ScaleModelConfig(X)
		if err != nil {
			return nil, err
		}
		for _, mix := range regMixes[X] {
			res, err := l.MixRun(mix)
			if err != nil {
				return nil, err
			}
			mr := MixResult{Slots: profileNames(mix)}
			feats := mr.features(d.Meas)
			for _, cr := range res.Cores {
				d.RegSamples[X] = append(d.RegSamples[X], Sample{
					Bench: cr.Benchmark,
					F:     feats[cr.Benchmark],
					Y:     metricValue(opts.Metric, cfg, cr),
				})
			}
		}
	}

	// Evaluation mixes: balanced (each eval benchmark appears T/n times),
	// then shuffled across cores.
	for _, mix := range evalMixes {
		res, err := l.MixRun(mix)
		if err != nil {
			return nil, err
		}
		d.EvalMixes = append(d.EvalMixes, MixResult{
			Slots:  profileNames(mix),
			Actual: perBenchAverage(opts.Metric, l.Target, res),
		})
	}

	// STP mixes: random compositions of eval benchmarks (IPC metric).
	for _, mix := range stpMixes {
		res, err := l.MixRun(mix)
		if err != nil {
			return nil, err
		}
		d.STPMixes = append(d.STPMixes, MixResult{
			Slots:  profileNames(mix),
			Actual: perBenchAverage(MetricIPC, l.Target, res),
		})
	}
	return d, nil
}

// heterogeneousJobs enumerates every run the heterogeneous protocol needs
// for batch prewarming: single-core measurements plus all mixes.
func (l *Lab) heterogeneousJobs(suite []*trace.Profile, trainMixes [][]*trace.Profile,
	regMixes map[int][][]*trace.Profile, evalMixes, stpMixes [][]*trace.Profile) ([]runner.Job, error) {
	var jobs []runner.Job
	for _, p := range suite {
		job, err := l.HomogeneousJob(1, p)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	addMix := func(mix []*trace.Profile) error {
		cores := len(mix)
		cfg := l.Target
		if cores != l.Target.Cores {
			var err error
			cfg, err = l.ScaleModelConfig(cores)
			if err != nil {
				return err
			}
		}
		jobs = append(jobs, runner.Job{Config: cfg, Workload: sim.Workload{Profiles: mix}, Options: l.Opts})
		return nil
	}
	for _, mixes := range [][][]*trace.Profile{trainMixes, evalMixes, stpMixes} {
		for _, mix := range mixes {
			if err := addMix(mix); err != nil {
				return nil, err
			}
		}
	}
	for _, cores := range sortedKeys(regMixes) {
		for _, mix := range regMixes[cores] {
			if err := addMix(mix); err != nil {
				return nil, err
			}
		}
	}
	return jobs, nil
}

func profileNames(ps []*trace.Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// balancedMix distributes slots evenly across the pool and shuffles the
// arrangement (every benchmark participates in every evaluation mix).
func balancedMix(rng *xrand.RNG, pool []*trace.Profile, slots int) []*trace.Profile {
	mix := make([]*trace.Profile, slots)
	for i := range mix {
		mix[i] = pool[i%len(pool)]
	}
	rng.Shuffle(len(mix), func(i, j int) { mix[i], mix[j] = mix[j], mix[i] })
	return mix
}

// fitMethod trains spec on the heterogeneous training data.
func (d *HeterogeneousData) fitMethod(spec MethodSpec) (predictFunc, error) {
	return buildMethod(spec, d.TargetCores, d.Metric, d.PredSamples, d.RegSamples)
}

// EvaluatePerApp returns, for each evaluation benchmark, the mean absolute
// prediction error across the evaluation mixes (Fig. 5), keyed by the
// benchmark's single-core LLC MPKI.
func (d *HeterogeneousData) EvaluatePerApp(spec MethodSpec) ([]metrics.NamedError, error) {
	predict, err := d.fitMethod(spec)
	if err != nil {
		return nil, err
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, mix := range d.EvalMixes {
		feats := mix.features(d.Meas)
		for _, bench := range sortedKeys(feats) {
			pred, err := predict(feats[bench])
			if err != nil {
				return nil, err
			}
			sums[bench] += metrics.PredictionError(pred, mix.Actual[bench])
			counts[bench]++
		}
	}
	var out []metrics.NamedError
	for _, bench := range d.EvalBenchmarks {
		if counts[bench] == 0 {
			continue
		}
		out = append(out, metrics.NamedError{
			Name:  bench,
			Key:   d.Meas[bench].MPKI,
			Error: sums[bench] / float64(counts[bench]),
		})
	}
	metrics.SortByKey(out)
	return out, nil
}

// EvaluateSTP returns the absolute system-throughput prediction error for
// every STP mix (Fig. 6). STP is the sum over cores of target IPC
// normalised by the application's single-core scale-model IPC; the
// prediction replaces target IPC with the method's estimate.
func (d *HeterogeneousData) EvaluateSTP(spec MethodSpec) ([]float64, error) {
	if d.Metric != MetricIPC {
		return nil, fmt.Errorf("scalemodel: STP requires the IPC metric")
	}
	predict, err := d.fitMethod(spec)
	if err != nil {
		return nil, err
	}
	var errs []float64
	for _, mix := range d.STPMixes {
		feats := mix.features(d.Meas)
		var stpPred, stpActual float64
		for _, bench := range mix.Slots {
			base := d.Meas[bench].IPC
			if base <= 0 {
				return nil, fmt.Errorf("scalemodel: non-positive baseline IPC for %s", bench)
			}
			pred, err := predict(feats[bench])
			if err != nil {
				return nil, err
			}
			stpPred += pred / base
			stpActual += mix.Actual[bench] / base
		}
		errs = append(errs, metrics.PredictionError(stpPred, stpActual))
	}
	return errs, nil
}
