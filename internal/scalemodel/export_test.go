package scalemodel

import (
	"context"

	"scalesim/internal/config"
	"scalesim/internal/sim"
)

// SetRunnerForTest replaces the Lab's simulator with a fake.
func (l *Lab) SetRunnerForTest(r func(*config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error)) {
	l.engine.SetRunFunc(func(_ context.Context, cfg *config.SystemConfig, wl sim.Workload, opts sim.Options) (*sim.Result, error) {
		return r(cfg, wl, opts)
	})
}
