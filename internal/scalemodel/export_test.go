package scalemodel

import (
	"scalesim/internal/config"
	"scalesim/internal/sim"
)

// SetRunnerForTest replaces the Lab's simulator with a fake.
func (l *Lab) SetRunnerForTest(r func(*config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error)) {
	l.runner = r
}
