package branch

import (
	"testing"

	"scalesim/internal/xrand"
)

// train runs a synthetic branch workload through p and returns the
// misprediction rate over the second half (after warmup).
func train(p Predictor, gen func(i int) (pc uint64, taken bool), n int) float64 {
	var s Stats
	warm := n / 2
	for i := 0; i < n; i++ {
		pc, taken := gen(i)
		if i < warm {
			pred := p.Predict(pc)
			p.Update(pc, taken)
			_ = pred
			continue
		}
		s.Record(p, pc, taken)
	}
	return s.MispredictRate()
}

func predictors() []Predictor {
	return []Predictor{
		NewBimodal(4096),
		NewGshare(4096, 12),
		NewLocal(1024, 10),
		NewTournament(),
	}
}

func TestAlwaysTakenLearned(t *testing.T) {
	for _, p := range predictors() {
		rate := train(p, func(i int) (uint64, bool) {
			return uint64(0x1000 + (i%8)*4), true
		}, 20000)
		if rate > 0.01 {
			t.Errorf("%s: mispredict rate %.4f on always-taken, want ~0", p.Name(), rate)
		}
	}
}

func TestStronglyBiasedLearned(t *testing.T) {
	rng := xrand.New(42)
	for _, p := range predictors() {
		rate := train(p, func(i int) (uint64, bool) {
			return 0x2000, rng.Bool(0.95)
		}, 40000)
		// Best achievable is ~5% (the bias flip rate).
		if rate > 0.12 {
			t.Errorf("%s: mispredict rate %.4f on 95%%-biased branch, want <= 0.12", p.Name(), rate)
		}
	}
}

func TestPeriodicPatternLocalBeatsBimodal(t *testing.T) {
	// Period-4 pattern TTTN: a local 2-level predictor should learn it
	// perfectly; bimodal cannot (it saturates toward taken and misses the N).
	gen := func(i int) (uint64, bool) { return 0x3000, i%4 != 3 }
	local := train(NewLocal(1024, 10), gen, 40000)
	bimodal := train(NewBimodal(4096), gen, 40000)
	if local > 0.01 {
		t.Errorf("local: rate %.4f on period-4 pattern, want ~0", local)
	}
	if bimodal < 0.2 {
		t.Errorf("bimodal: rate %.4f on period-4 pattern, expected >= 0.2", bimodal)
	}
}

func TestCorrelatedBranchesGshareLearns(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: global history
	// captures this, bimodal cannot.
	rng := xrand.New(7)
	lastA := false
	gen := func(i int) (uint64, bool) {
		if i%2 == 0 {
			lastA = rng.Bool(0.5)
			return 0x4000, lastA
		}
		return 0x5000, lastA
	}
	gshare := train(NewGshare(4096, 12), gen, 60000)
	bimodal := train(NewBimodal(4096), gen, 60000)
	// gshare sees A's outcome in history when predicting B: B becomes
	// near-perfect, A stays 50%. Overall ~25%.
	if gshare > 0.35 {
		t.Errorf("gshare: rate %.4f on correlated pair, want <= 0.35", gshare)
	}
	if bimodal < 0.45 {
		t.Errorf("bimodal: rate %.4f on correlated pair, want ~0.5", bimodal)
	}
	if gshare >= bimodal {
		t.Errorf("gshare (%.4f) not better than bimodal (%.4f) on correlated branches", gshare, bimodal)
	}
}

func TestTournamentTracksBestComponent(t *testing.T) {
	// Mixed workload: one periodic branch (local wins) and one correlated
	// pair (global wins). The tournament should approach the best of both.
	rng := xrand.New(9)
	lastA := false
	gen := func(i int) (uint64, bool) {
		switch i % 4 {
		case 0:
			return 0x6000, (i/4)%4 != 3 // periodic
		case 1:
			lastA = rng.Bool(0.5)
			return 0x7000, lastA
		case 2:
			return 0x8000, lastA // correlated with previous
		default:
			return 0x9000, true // trivial
		}
	}
	tour := train(NewTournament(), gen, 80000)
	bimodal := train(NewBimodal(4096), gen, 80000)
	if tour >= bimodal {
		t.Errorf("tournament (%.4f) not better than bimodal (%.4f) on mixed workload", tour, bimodal)
	}
	// A (pure random) contributes 25% of branches at ~50% floor => ~12.5%
	// overall floor. Allow training slack.
	if tour > 0.22 {
		t.Errorf("tournament rate %.4f, want <= 0.22 (floor ~0.125)", tour)
	}
}

func TestRandomBranchNearFifty(t *testing.T) {
	rng := xrand.New(11)
	for _, p := range predictors() {
		rate := train(p, func(i int) (uint64, bool) { return 0xa000, rng.Bool(0.5) }, 40000)
		if rate < 0.4 || rate > 0.6 {
			t.Errorf("%s: rate %.4f on random branch, want ~0.5", p.Name(), rate)
		}
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Fatalf("counter saturated at %d, want 3", c)
	}
	if !c.taken() {
		t.Fatal("saturated counter predicts not-taken")
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Fatalf("counter floored at %d, want 0", c)
	}
	if c.taken() {
		t.Fatal("floored counter predicts taken")
	}
}

func TestStatsZeroBranches(t *testing.T) {
	var s Stats
	if r := s.MispredictRate(); r != 0 {
		t.Fatalf("empty stats rate %v, want 0", r)
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 2, 1: 2, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 4096: 4096}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestDistinctPCsDontAlias(t *testing.T) {
	// Two opposite-direction branches must not destructively interfere in a
	// reasonably sized bimodal table.
	p := NewBimodal(4096)
	var s Stats
	for i := 0; i < 20000; i++ {
		s.Record(p, 0xb000, true)
		s.Record(p, 0xc000, false)
	}
	if r := s.MispredictRate(); r > 0.01 {
		t.Fatalf("aliasing mispredict rate %.4f, want ~0", r)
	}
}

func BenchmarkTournament(b *testing.B) {
	p := NewTournament()
	rng := xrand.New(1)
	pcs := make([]uint64, 64)
	for i := range pcs {
		pcs[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := pcs[i%64]
		p.Update(pc, p.Predict(pc) || i%3 == 0)
	}
}
