// Package branch implements the branch direction predictors used by the core
// model. The target system (Table II) uses a hybrid local/global predictor;
// bimodal, gshare and local two-level predictors are provided both as
// building blocks of the hybrid and for sensitivity studies.
//
// Predictors are real hardware structures (counter tables, history
// registers), trained online by the instruction stream, so per-benchmark
// misprediction rates are emergent from each profile's static branch
// population and outcome biases.
package branch

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// Name identifies the predictor configuration.
	Name() string
}

// counter is a 2-bit saturating counter; values 0-1 predict not-taken,
// 2-3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

func hashPC(pc uint64) uint64 {
	// Drop instruction alignment bits and mix the rest so nearby branches
	// spread across table entries.
	pc >>= 2
	pc ^= pc >> 13
	pc *= 0x2545f4914f6cdd1d
	return pc ^ (pc >> 31)
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with entries counters (power of 2).
func NewBimodal(entries int) *Bimodal {
	entries = ceilPow2(entries)
	return &Bimodal{table: make([]counter, entries), mask: uint64(entries - 1)}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) idx(pc uint64) uint64 { return hashPC(pc) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.idx(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.idx(pc)
	b.table[i] = b.table[i].update(taken)
}

// Gshare XORs a global history register with the PC to index a counter
// table, capturing correlation between branches.
type Gshare struct {
	table   []counter
	mask    uint64
	history uint64
	histLen uint
}

// NewGshare returns a gshare predictor with entries counters and histLen
// bits of global history.
func NewGshare(entries int, histLen uint) *Gshare {
	entries = ceilPow2(entries)
	return &Gshare{table: make([]counter, entries), mask: uint64(entries - 1), histLen: histLen}
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) idx(pc uint64) uint64 {
	return (hashPC(pc) ^ (g.history & ((1 << g.histLen) - 1))) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.idx(pc)].taken() }

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
}

// Local is a two-level predictor: a per-branch history table selects a
// pattern-indexed counter table, capturing per-branch periodic behaviour.
type Local struct {
	histories []uint16
	counters  []counter
	histMask  uint64
	cntMask   uint64
	histLen   uint
}

// NewLocal returns a local two-level predictor with histEntries history
// registers of histLen bits and 2^histLen pattern counters.
func NewLocal(histEntries int, histLen uint) *Local {
	histEntries = ceilPow2(histEntries)
	cnt := 1 << histLen
	return &Local{
		histories: make([]uint16, histEntries),
		counters:  make([]counter, cnt),
		histMask:  uint64(histEntries - 1),
		cntMask:   uint64(cnt - 1),
		histLen:   histLen,
	}
}

// Name implements Predictor.
func (l *Local) Name() string { return "local" }

func (l *Local) pattern(pc uint64) uint64 {
	h := l.histories[hashPC(pc)&l.histMask]
	return uint64(h) & l.cntMask
}

// Predict implements Predictor.
func (l *Local) Predict(pc uint64) bool { return l.counters[l.pattern(pc)].taken() }

// Update implements Predictor.
func (l *Local) Update(pc uint64, taken bool) {
	p := l.pattern(pc)
	l.counters[p] = l.counters[p].update(taken)
	hi := hashPC(pc) & l.histMask
	l.histories[hi] <<= 1
	if taken {
		l.histories[hi] |= 1
	}
}

// Tournament is the Table II "hybrid local/global predictor": a chooser
// table of 2-bit counters picks, per branch, between a local two-level
// component and a global (gshare) component.
type Tournament struct {
	local   *Local
	global  *Gshare
	chooser []counter // >=2: trust global, <2: trust local
	mask    uint64
}

// NewTournament returns the default hybrid predictor sized like a
// mid-2010s high-end core: 4K-entry components and chooser.
func NewTournament() *Tournament {
	return NewTournamentSized(4096, 12)
}

// NewTournamentSized returns a hybrid predictor with the given component
// table size and history length.
func NewTournamentSized(entries int, histLen uint) *Tournament {
	entries = ceilPow2(entries)
	return &Tournament{
		local:   NewLocal(entries, histLen),
		global:  NewGshare(entries, histLen),
		chooser: make([]counter, entries),
		mask:    uint64(entries - 1),
	}
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "hybrid local/global" }

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.chooser[hashPC(pc)&t.mask].taken() {
		return t.global.Predict(pc)
	}
	return t.local.Predict(pc)
}

// Update implements Predictor.
func (t *Tournament) Update(pc uint64, taken bool) {
	lp := t.local.Predict(pc)
	gp := t.global.Predict(pc)
	// Train the chooser only when the components disagree.
	if lp != gp {
		i := hashPC(pc) & t.mask
		t.chooser[i] = t.chooser[i].update(gp == taken)
	}
	t.local.Update(pc, taken)
	t.global.Update(pc, taken)
}

// Stats tracks prediction accuracy for one core.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
}

// MispredictRate returns mispredictions per branch, or 0 with no branches.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Record runs one branch through p, updating stats, and reports whether the
// branch was mispredicted.
func (s *Stats) Record(p Predictor, pc uint64, taken bool) bool {
	pred := p.Predict(pc)
	p.Update(pc, taken)
	s.Branches++
	if pred != taken {
		s.Mispredicts++
		return true
	}
	return false
}

func ceilPow2(n int) int {
	if n < 2 {
		return 2
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
