// Package sim is the multicore simulator: it co-executes a multiprogram
// workload mix on a configured machine, one trace-driven out-of-order core
// per program, against structurally simulated private caches, a shared NUCA
// LLC, a mesh NoC and a multi-controller DRAM subsystem.
//
// # Contention model
//
// Simulation proceeds in fixed-length epochs. Within an epoch each core
// executes instructions against the shared structures (so LLC capacity
// contention is emergent from interleaved LRU state), while NoC and DRAM
// queue delays are taken from the previous epoch's measured utilization. At
// each epoch boundary the utilizations are refreshed from the traffic just
// accounted. This closes the feedback loop {IPC -> bandwidth demand ->
// queuing delay -> IPC} as a relaxed fixed-point iteration across epochs —
// the same abstraction-level trick interval simulators such as Sniper use,
// and the reason a 32-core simulation costs super-linearly more than a
// single-core one: more shared-state work per epoch and a longer
// convergence transient.
//
// # Termination
//
// Following the paper (§IV-2), a run warms all cores up, resets statistics,
// and then measures until the first program retires its instruction budget.
package sim

import (
	"context"
	"fmt"
	"time"

	"scalesim/internal/branch"
	"scalesim/internal/cache"
	"scalesim/internal/config"
	"scalesim/internal/cpu"
	"scalesim/internal/dram"
	"scalesim/internal/noc"
	"scalesim/internal/trace"
	"scalesim/internal/units"
)

// Options controls a simulation run.
type Options struct {
	// Instructions is the measured instruction budget per program: the run
	// ends when the first program retires this many post-warmup
	// instructions (the paper's 1B-instruction SimPoint, capacity-scaled).
	Instructions uint64
	// Warmup instructions per program before statistics are reset.
	Warmup uint64
	// EpochCycles is the contention feedback epoch length.
	EpochCycles units.Cycles
	// CapacityScale divides all cache capacities and workload footprints
	// (the global miniaturisation documented in DESIGN.md).
	CapacityScale int
	// Seed is the experiment-level base seed.
	Seed uint64

	// Ablations (DESIGN.md "Key design decisions"; default off = full model).
	//
	// NoFeedback disables the epoch fixed-point: NoC and DRAM queue delays
	// stay at their unloaded values regardless of measured traffic, so
	// bandwidth contention never throttles anything.
	NoFeedback bool
	// PartitionedLLC replaces the shared NUCA LLC with an analytic
	// equal-split partition: each core gets a private 1/N-capacity slice,
	// so no program can steal capacity from (or donate it to) another.
	PartitionedLLC bool
	// EnablePrefetch adds a per-core L2 stream/stride prefetcher. Off by
	// default (the paper's Sniper configuration does not mention one);
	// turning it on is a robustness study for the methodology: prefetches
	// change both isolated performance and bandwidth contention.
	EnablePrefetch bool

	// Telemetry enables per-epoch observability when non-nil: every
	// measured epoch (and warmup epoch when Telemetry.Warmup is set) is
	// snapshotted into Result.Trace and streamed to Telemetry.Sink when one
	// is present. Nil — the default — is the zero-overhead fast path: the
	// epoch loop performs a single nil check and nothing else. Telemetry
	// never perturbs the simulation: a traced run's Result is bit-identical
	// to an untraced run's (wall-clock and Trace aside).
	Telemetry *TelemetryOptions
}

// DefaultOptions returns the options used by the experiment suite.
func DefaultOptions() Options {
	return Options{
		Instructions:  1_000_000,
		Warmup:        250_000,
		EpochCycles:   20_000,
		CapacityScale: 8,
		Seed:          1,
	}
}

// normalized fills in zero fields with defaults.
func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.Instructions == 0 {
		o.Instructions = d.Instructions
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.EpochCycles == 0 {
		o.EpochCycles = d.EpochCycles
	}
	if o.CapacityScale == 0 {
		o.CapacityScale = d.CapacityScale
	}
	return o
}

// Workload is a multiprogram mix: one benchmark profile per core.
type Workload struct {
	Profiles []*trace.Profile
}

// Homogeneous builds a mix of cores copies of prof.
func Homogeneous(prof *trace.Profile, cores int) Workload {
	ps := make([]*trace.Profile, cores)
	for i := range ps {
		ps[i] = prof
	}
	return Workload{Profiles: ps}
}

// CoreResult holds the measured statistics of one program/core.
type CoreResult struct {
	Core      int
	Benchmark string

	Instructions uint64
	Cycles       units.Cycles
	IPC          float64

	// BWBytesPerCycle is the program's DRAM traffic (reads + writebacks) in
	// bytes per cycle. BWShare is the same value as a fraction of the
	// machine's total DRAM bandwidth — the BW feature the ML models use.
	BWBytesPerCycle units.BytesPerCycle
	BWShare         float64

	// Miss statistics (per kilo-instruction for MPKI values).
	L1DMPKI   float64
	L2MPKI    float64
	LLCMPKI   float64
	LLCMisses uint64

	BranchMispredictRate float64

	// Stall decomposition from the core model.
	BaseCycles, BranchCycles, MemoryCycles, FrontendCycles units.Cycles
}

// Result holds one simulation run's outcome.
type Result struct {
	ConfigName string
	Cores      []CoreResult

	// ElapsedCycles is the measured-phase length in core cycles.
	ElapsedCycles units.Cycles
	// SimulatedPicos is ElapsedCycles converted to simulated time at the
	// core clock — the denominator of the paper's slowdown metric.
	SimulatedPicos units.Picoseconds
	// DRAMUtilization and NoCUtilization are end-of-run smoothed values.
	DRAMUtilization float64
	NoCUtilization  float64
	// WallClock is the host time spent simulating (warmup + measure),
	// used by the speedup experiments.
	WallClock time.Duration

	// Trace holds the run's per-epoch telemetry snapshots. Nil unless
	// Options.Telemetry was set.
	Trace []EpochSnapshot
}

// machine implements cpu.MemSystem over the simulated memory hierarchy.
type machine struct {
	cfg   *config.SystemConfig
	l1i   []*cache.Level
	l1d   []*cache.Level
	l2    []*cache.Level
	llc   *cache.NUCA
	mesh  *noc.Mesh
	mem   *dram.Memory
	cores []*cpu.Core

	// part, when non-nil, replaces the shared LLC with per-core private
	// partitions (the PartitionedLLC ablation).
	part []*cache.Level

	// noFeedback suppresses the epoch utilization updates (the NoFeedback
	// ablation).
	noFeedback bool

	// pf holds per-core L2 stream prefetchers when enabled.
	pf []*cache.StridePrefetcher

	l1Time, l2Time, llcTime units.Cycles
}

// prefetch issues the prefetcher's candidates for a demand L2 miss: each
// candidate is brought into the L2 in the background, consuming LLC/DRAM
// bandwidth but adding no latency to the triggering access.
func (m *machine) prefetch(core int, addr uint64) {
	if m.pf == nil {
		return
	}
	for _, pa := range m.pf[core].OnMiss(addr) {
		if m.l2[core].Probe(pa) {
			continue
		}
		slice, hit := m.llcAccess(core, pa, false)
		m.mesh.Latency(core, slice, reqBytes)
		if !hit {
			m.mesh.Latency(slice, m.mesh.MCTile(m.mem.MCOf(pa), m.mem.Controllers()), reqBytes)
			m.mem.Access(core, pa, lineBytes, false)
			if victim, vdirty, evicted := m.llcFill(core, pa, false); evicted && vdirty {
				m.mem.Access(core, victim, lineBytes, true)
			}
		}
		m.fillL2(core, pa, false)
	}
}

// endEpoch refreshes the contention estimates unless feedback is ablated.
func (m *machine) endEpoch(cycles units.Cycles) {
	if m.noFeedback {
		return
	}
	m.mesh.EndEpoch(cycles)
	m.mem.EndEpoch(cycles)
}

// llcAccess routes an LLC lookup to the shared NUCA or, under the
// PartitionedLLC ablation, to the requester's private partition (home slice
// = own tile, so the NoC path degenerates to zero hops).
func (m *machine) llcAccess(core int, addr uint64, write bool) (slice int, hit bool) {
	if m.part != nil {
		return core, m.part[core].Access(addr, write)
	}
	return m.llc.Access(core, addr, write)
}

// llcFill allocates addr after a miss, returning any dirty victim.
func (m *machine) llcFill(core int, addr uint64, dirty bool) (victimAddr uint64, victimDirty, evicted bool) {
	if m.part != nil {
		return m.part[core].Fill(addr, dirty)
	}
	return m.llc.Fill(core, addr, dirty)
}

// llcSliceOf returns the home tile for addr from core's perspective.
func (m *machine) llcSliceOf(core int, addr uint64) int {
	if m.part != nil {
		return core
	}
	return m.llc.SliceOf(addr)
}

// llcProbe reports presence without disturbing state.
func (m *machine) llcProbe(core int, addr uint64) bool {
	if m.part != nil {
		return m.part[core].Probe(addr)
	}
	return m.llc.Probe(addr)
}

// llcCoreMisses returns the demand misses attributed to core.
func (m *machine) llcCoreMisses(core int) uint64 {
	return m.llcCoreStats(core).Misses
}

// llcCoreStats returns the LLC statistics attributed to core (the private
// partition's counters under the PartitionedLLC ablation).
func (m *machine) llcCoreStats(core int) cache.Stats {
	if m.part != nil {
		return m.part[core].Stats
	}
	return m.llc.CoreStats(core)
}

// reqBytes is the NoC cost of a request+response pair for one cache line
// (8-byte request header + 64-byte data); lineBytes is the DRAM transfer
// size for one line.
const (
	reqBytes  = units.Bytes(72)
	lineBytes = units.Bytes(64)
)

func newMachine(cfg *config.SystemConfig, wl Workload, opts Options) (*machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(wl.Profiles) != cfg.Cores {
		return nil, fmt.Errorf("sim: workload has %d programs for %d cores", len(wl.Profiles), cfg.Cores)
	}
	m := &machine{
		cfg:        cfg,
		noFeedback: opts.NoFeedback,
		l1Time:     units.Cycles(cfg.L1D.AccessTime),
		l2Time:     units.Cycles(cfg.L2.AccessTime),
		llcTime:    units.Cycles(cfg.LLC.AccessTime),
	}
	if opts.EnablePrefetch {
		for i := 0; i < cfg.Cores; i++ {
			m.pf = append(m.pf, cache.NewStridePrefetcher(int(cfg.L2.LineSize)))
		}
	}
	if opts.PartitionedLLC {
		slice := config.CacheLevelConfig{
			Size: cfg.LLC.SlicePerCore, Assoc: cfg.LLC.Assoc,
			LineSize: cfg.LLC.LineSize, AccessTime: cfg.LLC.AccessTime,
		}
		for i := 0; i < cfg.Cores; i++ {
			p, err := cache.NewLevel(slice, opts.CapacityScale)
			if err != nil {
				return nil, err
			}
			m.part = append(m.part, p)
		}
	}
	var err error
	if m.llc, err = cache.NewNUCA(cfg.LLC, opts.CapacityScale, cfg.Cores); err != nil {
		return nil, err
	}
	if m.mesh, err = noc.New(cfg.NoC, cfg.Core.FrequencyGHz); err != nil {
		return nil, err
	}
	if m.mem, err = dram.New(cfg.DRAM, cfg.Core.FrequencyGHz, cfg.Cores); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Cores; i++ {
		// The L1-I stays at native size: code footprints are not
		// miniaturised (see trace.NewGenerator), so scaling the L1-I would
		// thrash it on every benchmark and flood the L2/NoC with
		// instruction traffic no real machine produces.
		l1i, err := cache.NewLevel(cfg.L1I, 1)
		if err != nil {
			return nil, err
		}
		l1d, err := cache.NewLevel(cfg.L1D, opts.CapacityScale)
		if err != nil {
			return nil, err
		}
		l2, err := cache.NewLevel(cfg.L2, opts.CapacityScale)
		if err != nil {
			return nil, err
		}
		m.l1i = append(m.l1i, l1i)
		m.l1d = append(m.l1d, l1d)
		m.l2 = append(m.l2, l2)

		gen, err := trace.NewGenerator(wl.Profiles[i], trace.GenOptions{
			Instance:      i,
			CapacityScale: opts.CapacityScale,
			Seed:          opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		core, err := cpu.New(i, cfg.Core, gen, branch.NewTournament(), m)
		if err != nil {
			return nil, err
		}
		m.cores = append(m.cores, core)
	}
	return m, nil
}

// resolve serves a data access that missed in l1 for core at addr, filling
// the hierarchy on its way back. It returns the total added latency beyond
// L1 and the serving level.
func (m *machine) resolve(core int, addr uint64, dirtyFill bool) cpu.MemResult {
	// L2 lookup.
	if m.l2[core].Access(addr, false) {
		m.fillL1(core, addr, dirtyFill)
		return cpu.MemResult{Latency: m.l1Time + m.l2Time, Level: cpu.LevelL2}
	}
	// Demand L2 miss: train the prefetcher (if any) before going out.
	m.prefetch(core, addr)
	// LLC lookup via the NoC: core tile -> home slice tile.
	slice, hit := m.llcAccess(core, addr, false)
	nocLat := m.mesh.Latency(core, slice, reqBytes)
	lat := m.l1Time + m.l2Time + m.llcTime + nocLat
	if hit {
		m.fillL2(core, addr, false)
		m.fillL1(core, addr, dirtyFill)
		return cpu.MemResult{Latency: lat, Level: cpu.LevelLLC}
	}
	// DRAM access: home slice tile -> memory controller tile.
	mc := m.mem.MCOf(addr)
	mcTile := m.mesh.MCTile(mc, m.mem.Controllers())
	lat += m.mesh.Latency(slice, mcTile, reqBytes)
	lat += m.mem.Access(core, addr, lineBytes, false)
	// Fill the hierarchy; LLC victims write back to DRAM.
	if victim, vdirty, evicted := m.llcFill(core, addr, false); evicted && vdirty {
		vmc := m.mem.MCOf(victim)
		m.mesh.Latency(m.llcSliceOf(core, victim), m.mesh.MCTile(vmc, m.mem.Controllers()), reqBytes)
		m.mem.Access(core, victim, lineBytes, true)
	}
	m.fillL2(core, addr, false)
	m.fillL1(core, addr, dirtyFill)
	return cpu.MemResult{Latency: lat, Level: cpu.LevelDRAM}
}

// fillL1 allocates addr in core's L1-D; dirty victims write through to L2.
func (m *machine) fillL1(core int, addr uint64, dirty bool) {
	victim, vdirty, evicted := m.l1d[core].Fill(addr, dirty)
	if evicted && vdirty {
		m.writebackToL2(core, victim)
	}
}

// fillL2 allocates addr in core's L2; dirty victims write to the LLC.
func (m *machine) fillL2(core int, addr uint64, dirty bool) {
	victim, vdirty, evicted := m.l2[core].Fill(addr, dirty)
	if evicted && vdirty {
		m.writebackToLLC(core, victim)
	}
}

// writebackToL2 handles a dirty L1-D victim. Writebacks never allocate on a
// miss (no-allocate policy): if the line is gone from the L2 it is forwarded
// down the hierarchy. Allocating would recall evicted lines and amplify one
// eviction into a cascade of fills.
func (m *machine) writebackToL2(core int, addr uint64) {
	if m.l2[core].Probe(addr) {
		m.l2[core].Access(addr, true)
		return
	}
	m.writebackToLLC(core, addr)
}

// writebackToLLC handles a dirty L2 victim: merge into the LLC if present,
// otherwise bypass straight to DRAM (bandwidth only; writes are posted).
func (m *machine) writebackToLLC(core int, addr uint64) {
	slice := m.llcSliceOf(core, addr)
	m.mesh.Latency(core, slice, reqBytes)
	if m.llcProbe(core, addr) {
		m.llcAccess(core, addr, true)
		return
	}
	m.mesh.Latency(slice, m.mesh.MCTile(m.mem.MCOf(addr), m.mem.Controllers()), reqBytes)
	m.mem.Access(core, addr, lineBytes, true)
}

// Load implements cpu.MemSystem.
func (m *machine) Load(core int, addr uint64) cpu.MemResult {
	if m.l1d[core].Access(addr, false) {
		return cpu.MemResult{Latency: m.l1Time, Level: cpu.LevelL1}
	}
	return m.resolve(core, addr, false)
}

// Store implements cpu.MemSystem (write-allocate).
func (m *machine) Store(core int, addr uint64) cpu.MemResult {
	if m.l1d[core].Access(addr, true) {
		return cpu.MemResult{Latency: m.l1Time, Level: cpu.LevelL1}
	}
	return m.resolve(core, addr, true)
}

// IFetch implements cpu.MemSystem. Sequential fetches are covered by the
// next-line prefetcher: they keep the hierarchy state warm and consume
// bandwidth but never stall. Non-sequential fetches (jump targets) stall
// the front end for their full latency beyond the pipelined L1-I access.
func (m *machine) IFetch(core int, addr uint64, jump bool) units.Cycles {
	if m.l1i[core].Access(addr, false) {
		return 0
	}
	// Instruction lines are clean; reuse the data path read logic against
	// L2/LLC/DRAM but fill the L1-I instead of the L1-D.
	if m.l2[core].Access(addr, false) {
		m.l1i[core].Fill(addr, false)
		if !jump {
			return 0
		}
		return m.l2Time
	}
	slice, hit := m.llcAccess(core, addr, false)
	nocLat := m.mesh.Latency(core, slice, reqBytes)
	lat := m.l2Time + m.llcTime + nocLat
	if !hit {
		mc := m.mem.MCOf(addr)
		lat += m.mesh.Latency(slice, m.mesh.MCTile(mc, m.mem.Controllers()), reqBytes)
		lat += m.mem.Access(core, addr, lineBytes, false)
		if victim, vdirty, evicted := m.llcFill(core, addr, false); evicted && vdirty {
			m.mem.Access(core, victim, lineBytes, true)
		}
	}
	m.fillL2(core, addr, false)
	m.l1i[core].Fill(addr, false)
	if !jump {
		return 0 // hidden by the next-line prefetcher
	}
	return lat
}

// snapshot captures per-core cumulative counters at the measurement start.
type snapshot struct {
	l1d, l2   cache.Stats
	llcMisses uint64
	dramBytes units.Bytes
}

// Run simulates workload wl on machine cfg and returns measured per-core
// results. The run is deterministic for fixed (cfg, wl, opts).
func Run(cfg *config.SystemConfig, wl Workload, opts Options) (*Result, error) {
	return RunContext(context.Background(), cfg, wl, opts)
}

// RunContext is Run with cancellation: ctx is checked at every epoch
// boundary (both warmup and measurement), so a cancelled or expired context
// aborts the run within one epoch's worth of simulated work and returns
// ctx.Err(). Cancellation does not corrupt anything — the machine state is
// simply discarded.
func RunContext(ctx context.Context, cfg *config.SystemConfig, wl Workload, opts Options) (*Result, error) {
	opts = opts.normalized()
	start := time.Now() //simlint:ignore wallclock measures Result.WallClock reporting only; never simulated state
	m, err := newMachine(cfg, wl, opts)
	if err != nil {
		return nil, err
	}

	// Telemetry is allocated only when requested; the disabled path costs
	// one nil check per epoch.
	var obs *observer
	if opts.Telemetry != nil {
		obs = newObserver(m, wl, opts.Telemetry)
	}

	// Phase 1 — warmup: run epochs until every program has retired its
	// warmup budget. Programs that finish early keep running (they must
	// keep generating contention).
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		allWarm := true
		for _, c := range m.cores {
			c.Run(opts.EpochCycles, ^uint64(0))
			if c.Stats.Instructions < opts.Warmup {
				allWarm = false
			}
		}
		m.endEpoch(opts.EpochCycles)
		if obs != nil && opts.Telemetry.Warmup {
			obs.observe(PhaseWarmup, opts.EpochCycles)
		}
		if allWarm {
			break
		}
	}

	// Reset statistics at the measurement boundary; microarchitectural
	// state (cache contents, predictor tables, utilization estimates,
	// generator positions) carries over.
	snaps := make([]snapshot, cfg.Cores)
	for i, c := range m.cores {
		c.ResetStats()
		snaps[i] = snapshot{
			l1d:       m.l1d[i].Stats,
			l2:        m.l2[i].Stats,
			llcMisses: m.llcCoreMisses(i),
			dramBytes: m.mem.CoreBytes(i),
		}
	}
	if obs != nil {
		// Core statistics were just reset; re-base the delta computation.
		obs.sync()
	}

	// Phase 2 — measure: epochs until the first program retires its budget.
	elapsed := units.Cycles(0)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		done := false
		for _, c := range m.cores {
			c.Run(opts.EpochCycles, ^uint64(0))
			if c.Stats.Instructions >= opts.Instructions {
				done = true
			}
		}
		m.endEpoch(opts.EpochCycles)
		if obs != nil {
			obs.observe(PhaseMeasure, opts.EpochCycles)
		}
		elapsed += opts.EpochCycles
		if done {
			break
		}
	}

	totalBW := units.FromGBps(float64(cfg.DRAM.TotalGBps()), cfg.Core.FrequencyGHz)
	res := &Result{
		ConfigName:      cfg.Name,
		ElapsedCycles:   elapsed,
		SimulatedPicos:  elapsed.AtGHz(cfg.Core.FrequencyGHz),
		DRAMUtilization: m.mem.Utilization(),
		NoCUtilization:  m.mesh.Utilization(),
	}
	for i, c := range m.cores {
		st := c.Stats
		ki := float64(st.Instructions) / 1000
		llcMisses := m.llcCoreMisses(i) - snaps[i].llcMisses
		bwBytes := m.mem.CoreBytes(i) - snaps[i].dramBytes
		cycles := st.Cycles
		if cycles == 0 {
			cycles = 1
		}
		cr := CoreResult{
			Core:                 i,
			Benchmark:            wl.Profiles[i].Name,
			Instructions:         st.Instructions,
			Cycles:               st.Cycles,
			IPC:                  st.IPC(),
			BWBytesPerCycle:      bwBytes.Per(cycles),
			BWShare:              float64(bwBytes.Per(cycles)) / float64(totalBW),
			L1DMPKI:              float64(m.l1d[i].Stats.Misses-snaps[i].l1d.Misses) / ki,
			L2MPKI:               float64(m.l2[i].Stats.Misses-snaps[i].l2.Misses) / ki,
			LLCMPKI:              float64(llcMisses) / ki,
			LLCMisses:            llcMisses,
			BranchMispredictRate: st.Branch.MispredictRate(),
			BaseCycles:           st.BaseCycles,
			BranchCycles:         st.BranchCycles,
			MemoryCycles:         st.MemoryCycles,
			FrontendCycles:       st.FrontendCycles,
		}
		res.Cores = append(res.Cores, cr)
	}
	if obs != nil {
		res.Trace = obs.trace
	}
	res.WallClock = time.Since(start) //simlint:ignore wallclock measures Result.WallClock reporting only; never simulated state
	return res, nil
}

// SystemIPC returns the sum of per-core IPC values.
func (r *Result) SystemIPC() float64 {
	sum := 0.0
	for _, c := range r.Cores {
		sum += c.IPC
	}
	return sum
}

// AverageIPC returns the mean per-core IPC.
func (r *Result) AverageIPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	return r.SystemIPC() / float64(len(r.Cores))
}
