// Package sim is the multicore simulator: it co-executes a multiprogram
// workload mix on a configured machine, one trace-driven out-of-order core
// per program, against structurally simulated private caches, a shared NUCA
// LLC, a mesh NoC and a multi-controller DRAM subsystem.
//
// # Contention model
//
// Simulation proceeds in fixed-length epochs. Within an epoch each core
// executes instructions against the shared structures (so LLC capacity
// contention is emergent from interleaved LRU state), while NoC and DRAM
// queue delays are taken from the previous epoch's measured utilization. At
// each epoch boundary the utilizations are refreshed from the traffic just
// accounted. This closes the feedback loop {IPC -> bandwidth demand ->
// queuing delay -> IPC} as a relaxed fixed-point iteration across epochs —
// the same abstraction-level trick interval simulators such as Sniper use,
// and the reason a 32-core simulation costs super-linearly more than a
// single-core one: more shared-state work per epoch and a longer
// convergence transient.
//
// # Termination
//
// Following the paper (§IV-2), a run warms all cores up, resets statistics,
// and then measures until the first program retires its instruction budget.
package sim

import (
	"context"
	"fmt"
	"time"

	"scalesim/internal/branch"
	"scalesim/internal/cache"
	"scalesim/internal/config"
	"scalesim/internal/cpu"
	"scalesim/internal/dram"
	"scalesim/internal/noc"
	"scalesim/internal/trace"
	"scalesim/internal/units"
)

// Options controls a simulation run.
type Options struct {
	// Instructions is the measured instruction budget per program: the run
	// ends when the first program retires this many post-warmup
	// instructions (the paper's 1B-instruction SimPoint, capacity-scaled).
	Instructions uint64
	// Warmup instructions per program before statistics are reset.
	Warmup uint64
	// EpochCycles is the contention feedback epoch length.
	EpochCycles units.Cycles
	// CapacityScale divides all cache capacities and workload footprints
	// (the global miniaturisation documented in DESIGN.md).
	CapacityScale int
	// Seed is the experiment-level base seed.
	Seed uint64

	// Ablations (DESIGN.md "Key design decisions"; default off = full model).
	//
	// NoFeedback disables the epoch fixed-point: NoC and DRAM queue delays
	// stay at their unloaded values regardless of measured traffic, so
	// bandwidth contention never throttles anything.
	NoFeedback bool
	// PartitionedLLC replaces the shared NUCA LLC with an analytic
	// equal-split partition: each core gets a private 1/N-capacity slice,
	// so no program can steal capacity from (or donate it to) another.
	PartitionedLLC bool
	// EnablePrefetch adds a per-core L2 stream/stride prefetcher. Off by
	// default (the paper's Sniper configuration does not mention one);
	// turning it on is a robustness study for the methodology: prefetches
	// change both isolated performance and bandwidth contention.
	EnablePrefetch bool

	// Tuning (performance-only; never part of the campaign cache key).
	//
	// CoreWorkers bounds the worker pool executing per-core epoch work in
	// parallel; 0 means auto (one worker per core, up to GOMAXPROCS), 1
	// forces serial execution. Parallel and serial runs are byte-identical
	// by construction (DESIGN.md, "Performance invariants"), proven by the
	// seed-matrix determinism test.
	//simlint:ignore keydrift worker count is performance-only; parallel and serial epochs are byte-identical by canonical replay
	CoreWorkers int
	// EpochLogOps pre-sizes each core's shared-LLC operation log arena in
	// entries; 0 means a reasonable default. Logs grow on demand either way.
	//simlint:ignore keydrift arena pre-sizing is performance-only; logs grow on demand
	EpochLogOps int

	// Telemetry enables per-epoch observability when non-nil: every
	// measured epoch (and warmup epoch when Telemetry.Warmup is set) is
	// snapshotted into Result.Trace and streamed to Telemetry.Sink when one
	// is present. Nil — the default — is the zero-overhead fast path: the
	// epoch loop performs a single nil check and nothing else. Telemetry
	// never perturbs the simulation: a traced run's Result is bit-identical
	// to an untraced run's (wall-clock and Trace aside).
	Telemetry *TelemetryOptions
}

// DefaultOptions returns the options used by the experiment suite.
func DefaultOptions() Options {
	return Options{
		Instructions:  1_000_000,
		Warmup:        250_000,
		EpochCycles:   20_000,
		CapacityScale: 8,
		Seed:          1,
	}
}

// normalized fills in zero fields with defaults.
func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.Instructions == 0 {
		o.Instructions = d.Instructions
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.EpochCycles == 0 {
		o.EpochCycles = d.EpochCycles
	}
	if o.CapacityScale == 0 {
		o.CapacityScale = d.CapacityScale
	}
	return o
}

// Workload is a multiprogram mix: one benchmark profile per core.
type Workload struct {
	Profiles []*trace.Profile
}

// Homogeneous builds a mix of cores copies of prof.
func Homogeneous(prof *trace.Profile, cores int) Workload {
	ps := make([]*trace.Profile, cores)
	for i := range ps {
		ps[i] = prof
	}
	return Workload{Profiles: ps}
}

// CoreResult holds the measured statistics of one program/core.
type CoreResult struct {
	Core      int
	Benchmark string

	Instructions uint64
	Cycles       units.Cycles
	IPC          float64

	// BWBytesPerCycle is the program's DRAM traffic (reads + writebacks) in
	// bytes per cycle. BWShare is the same value as a fraction of the
	// machine's total DRAM bandwidth — the BW feature the ML models use.
	BWBytesPerCycle units.BytesPerCycle
	BWShare         float64

	// Miss statistics (per kilo-instruction for MPKI values).
	L1DMPKI   float64
	L2MPKI    float64
	LLCMPKI   float64
	LLCMisses uint64

	BranchMispredictRate float64

	// Stall decomposition from the core model.
	BaseCycles, BranchCycles, MemoryCycles, FrontendCycles units.Cycles
}

// Result holds one simulation run's outcome.
type Result struct {
	ConfigName string
	Cores      []CoreResult

	// ElapsedCycles is the measured-phase length in core cycles.
	ElapsedCycles units.Cycles
	// SimulatedPicos is ElapsedCycles converted to simulated time at the
	// core clock — the denominator of the paper's slowdown metric.
	SimulatedPicos units.Picoseconds
	// DRAMUtilization and NoCUtilization are end-of-run smoothed values.
	DRAMUtilization float64
	NoCUtilization  float64
	// WallClock is the host time spent simulating (warmup + measure),
	// used by the speedup experiments.
	WallClock time.Duration

	// Trace holds the run's per-epoch telemetry snapshots. Nil unless
	// Options.Telemetry was set.
	Trace []EpochSnapshot
}

// machine is the simulated memory hierarchy plus its cores. Each core
// reaches the hierarchy through its own coreCtx (see epoch.go), which
// implements cpu.MemSystem with thread-local accounting so per-core epoch
// work can execute in parallel.
type machine struct {
	cfg   *config.SystemConfig
	l1i   []*cache.Level
	l1d   []*cache.Level
	l2    []*cache.Level
	llc   *cache.NUCA
	mesh  *noc.Mesh
	mem   *dram.Memory
	cores []*cpu.Core
	ctxs  []*coreCtx

	// workers is the resolved epoch worker-pool size (resolveWorkers).
	workers int

	// part, when non-nil, replaces the shared LLC with per-core private
	// partitions (the PartitionedLLC ablation).
	part []*cache.Level

	// noFeedback suppresses the epoch utilization updates (the NoFeedback
	// ablation).
	noFeedback bool

	// pf holds per-core L2 stream prefetchers when enabled.
	pf []*cache.StridePrefetcher

	l1Time, l2Time, llcTime units.Cycles
}

// endEpoch refreshes the contention estimates unless feedback is ablated.
func (m *machine) endEpoch(cycles units.Cycles) {
	if m.noFeedback {
		return
	}
	m.mesh.EndEpoch(cycles)
	m.mem.EndEpoch(cycles)
}

// llcSliceOf returns the home tile for addr from core's perspective (under
// the PartitionedLLC ablation the home slice is the requester's own tile,
// so the NoC path degenerates to zero hops).
func (m *machine) llcSliceOf(core int, addr uint64) int {
	if m.part != nil {
		return core
	}
	return m.llc.SliceOf(addr)
}

// llcCoreMisses returns the demand misses attributed to core.
func (m *machine) llcCoreMisses(core int) uint64 {
	return m.llcCoreStats(core).Misses
}

// llcCoreStats returns the LLC statistics attributed to core (the private
// partition's counters under the PartitionedLLC ablation).
func (m *machine) llcCoreStats(core int) cache.Stats {
	if m.part != nil {
		return m.part[core].Stats
	}
	return m.llc.CoreStats(core)
}

// reqBytes is the NoC cost of a request+response pair for one cache line
// (8-byte request header + 64-byte data); lineBytes is the DRAM transfer
// size for one line.
const (
	reqBytes  = units.Bytes(72)
	lineBytes = units.Bytes(64)
)

func newMachine(cfg *config.SystemConfig, wl Workload, opts Options) (*machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(wl.Profiles) != cfg.Cores {
		return nil, fmt.Errorf("sim: workload has %d programs for %d cores", len(wl.Profiles), cfg.Cores)
	}
	m := &machine{
		cfg:        cfg,
		noFeedback: opts.NoFeedback,
		l1Time:     units.Cycles(cfg.L1D.AccessTime),
		l2Time:     units.Cycles(cfg.L2.AccessTime),
		llcTime:    units.Cycles(cfg.LLC.AccessTime),
	}
	if opts.EnablePrefetch {
		for i := 0; i < cfg.Cores; i++ {
			m.pf = append(m.pf, cache.NewStridePrefetcher(int(cfg.L2.LineSize)))
		}
	}
	if opts.PartitionedLLC {
		slice := config.CacheLevelConfig{
			Size: cfg.LLC.SlicePerCore, Assoc: cfg.LLC.Assoc,
			LineSize: cfg.LLC.LineSize, AccessTime: cfg.LLC.AccessTime,
		}
		for i := 0; i < cfg.Cores; i++ {
			p, err := cache.NewLevel(slice, opts.CapacityScale)
			if err != nil {
				return nil, err
			}
			m.part = append(m.part, p)
		}
	}
	var err error
	if m.llc, err = cache.NewNUCA(cfg.LLC, opts.CapacityScale, cfg.Cores); err != nil {
		return nil, err
	}
	if m.mesh, err = noc.New(cfg.NoC, cfg.Core.FrequencyGHz); err != nil {
		return nil, err
	}
	if m.mem, err = dram.New(cfg.DRAM, cfg.Core.FrequencyGHz, cfg.Cores); err != nil {
		return nil, err
	}
	// The shared NUCA needs copy-on-write overlays only when more than one
	// core can touch it within an epoch; a single core or the partitioned
	// ablation keeps the zero-overhead direct path.
	sharedLLC := cfg.Cores > 1 && m.part == nil
	logCap := opts.EpochLogOps
	if logCap <= 0 {
		logCap = defaultEpochLogOps
	}
	m.workers = resolveWorkers(opts.CoreWorkers, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		// The L1-I stays at native size: code footprints are not
		// miniaturised (see trace.NewGenerator), so scaling the L1-I would
		// thrash it on every benchmark and flood the L2/NoC with
		// instruction traffic no real machine produces.
		l1i, err := cache.NewLevel(cfg.L1I, 1)
		if err != nil {
			return nil, err
		}
		l1d, err := cache.NewLevel(cfg.L1D, opts.CapacityScale)
		if err != nil {
			return nil, err
		}
		l2, err := cache.NewLevel(cfg.L2, opts.CapacityScale)
		if err != nil {
			return nil, err
		}
		m.l1i = append(m.l1i, l1i)
		m.l1d = append(m.l1d, l1d)
		m.l2 = append(m.l2, l2)

		cc := &coreCtx{m: m, core: i, dramAcc: m.mem.NewAcc()}
		if sharedLLC {
			cc.ov = cache.NewOverlay(m.llc)
			cc.log = make([]llcOp, 0, logCap)
		}
		m.ctxs = append(m.ctxs, cc)

		gen, err := trace.NewGenerator(wl.Profiles[i], trace.GenOptions{
			Instance:      i,
			CapacityScale: opts.CapacityScale,
			Seed:          opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		core, err := cpu.New(i, cfg.Core, gen, branch.NewTournament(), cc)
		if err != nil {
			return nil, err
		}
		m.cores = append(m.cores, core)
	}
	return m, nil
}

// snapshot captures per-core cumulative counters at the measurement start.
type snapshot struct {
	l1d, l2   cache.Stats
	llcMisses uint64
	dramBytes units.Bytes
}

// Run simulates workload wl on machine cfg and returns measured per-core
// results. The run is deterministic for fixed (cfg, wl, opts).
func Run(cfg *config.SystemConfig, wl Workload, opts Options) (*Result, error) {
	return RunContext(context.Background(), cfg, wl, opts)
}

// RunContext is Run with cancellation: ctx is checked at every epoch
// boundary (both warmup and measurement), so a cancelled or expired context
// aborts the run within one epoch's worth of simulated work and returns
// ctx.Err(). Cancellation does not corrupt anything — the machine state is
// simply discarded.
func RunContext(ctx context.Context, cfg *config.SystemConfig, wl Workload, opts Options) (*Result, error) {
	opts = opts.normalized()
	start := time.Now() //simlint:ignore wallclock measures Result.WallClock reporting only; never simulated state
	m, err := newMachine(cfg, wl, opts)
	if err != nil {
		return nil, err
	}

	// Telemetry is allocated only when requested; the disabled path costs
	// one nil check per epoch.
	var obs *observer
	if opts.Telemetry != nil {
		obs = newObserver(m, wl, opts.Telemetry)
	}

	// Phase 1 — warmup: run epochs until every program has retired its
	// warmup budget. Programs that finish early keep running (they must
	// keep generating contention).
	limits := noLimits(make([]uint64, cfg.Cores))
	for {
		if err := m.runEpoch(ctx, opts.EpochCycles, limits); err != nil {
			return nil, err
		}
		allWarm := true
		for _, c := range m.cores {
			if c.Stats.Instructions < opts.Warmup {
				allWarm = false
			}
		}
		m.endEpoch(opts.EpochCycles)
		if obs != nil && opts.Telemetry.Warmup {
			obs.observe(PhaseWarmup, opts.EpochCycles)
		}
		if allWarm {
			break
		}
	}

	// Reset statistics at the measurement boundary; microarchitectural
	// state (cache contents, predictor tables, utilization estimates,
	// generator positions) carries over.
	snaps := make([]snapshot, cfg.Cores)
	for i, c := range m.cores {
		c.ResetStats()
		snaps[i] = snapshot{
			l1d:       m.l1d[i].Stats,
			l2:        m.l2[i].Stats,
			llcMisses: m.llcCoreMisses(i),
			dramBytes: m.mem.CoreBytes(i),
		}
	}
	if obs != nil {
		// Core statistics were just reset; re-base the delta computation.
		obs.sync()
	}

	// Phase 2 — measure: epochs until the first program retires its budget.
	elapsed := units.Cycles(0)
	for {
		if err := m.runEpoch(ctx, opts.EpochCycles, limits); err != nil {
			return nil, err
		}
		done := false
		for _, c := range m.cores {
			if c.Stats.Instructions >= opts.Instructions {
				done = true
			}
		}
		m.endEpoch(opts.EpochCycles)
		if obs != nil {
			obs.observe(PhaseMeasure, opts.EpochCycles)
		}
		elapsed += opts.EpochCycles
		if done {
			break
		}
	}

	totalBW := units.FromGBps(float64(cfg.DRAM.TotalGBps()), cfg.Core.FrequencyGHz)
	res := &Result{
		ConfigName:      cfg.Name,
		ElapsedCycles:   elapsed,
		SimulatedPicos:  elapsed.AtGHz(cfg.Core.FrequencyGHz),
		DRAMUtilization: m.mem.Utilization(),
		NoCUtilization:  m.mesh.Utilization(),
	}
	for i, c := range m.cores {
		st := c.Stats
		ki := float64(st.Instructions) / 1000
		llcMisses := m.llcCoreMisses(i) - snaps[i].llcMisses
		bwBytes := m.mem.CoreBytes(i) - snaps[i].dramBytes
		cycles := st.Cycles
		if cycles == 0 {
			cycles = 1
		}
		cr := CoreResult{
			Core:                 i,
			Benchmark:            wl.Profiles[i].Name,
			Instructions:         st.Instructions,
			Cycles:               st.Cycles,
			IPC:                  st.IPC(),
			BWBytesPerCycle:      bwBytes.Per(cycles),
			BWShare:              float64(bwBytes.Per(cycles)) / float64(totalBW),
			L1DMPKI:              float64(m.l1d[i].Stats.Misses-snaps[i].l1d.Misses) / ki,
			L2MPKI:               float64(m.l2[i].Stats.Misses-snaps[i].l2.Misses) / ki,
			LLCMPKI:              float64(llcMisses) / ki,
			LLCMisses:            llcMisses,
			BranchMispredictRate: st.Branch.MispredictRate(),
			BaseCycles:           st.BaseCycles,
			BranchCycles:         st.BranchCycles,
			MemoryCycles:         st.MemoryCycles,
			FrontendCycles:       st.FrontendCycles,
		}
		res.Cores = append(res.Cores, cr)
	}
	if obs != nil {
		res.Trace = obs.trace
	}
	res.WallClock = time.Since(start) //simlint:ignore wallclock measures Result.WallClock reporting only; never simulated state
	return res, nil
}

// SystemIPC returns the sum of per-core IPC values.
func (r *Result) SystemIPC() float64 {
	sum := 0.0
	for _, c := range r.Cores {
		sum += c.IPC
	}
	return sum
}

// AverageIPC returns the mean per-core IPC.
func (r *Result) AverageIPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	return r.SystemIPC() / float64(len(r.Cores))
}
