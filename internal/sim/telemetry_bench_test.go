package sim

import (
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/trace"
)

// The telemetry benchmarks pin the observability layer's cost contract:
// compare Off against On to see the enabled cost (a few percent), and Off
// across commits to confirm the disabled path stays free (one nil check
// per epoch).
func benchRun(b *testing.B, opts Options) {
	sm, err := config.ScaleModel(config.Target(), 4, config.ScaleModelOptions{Policy: config.PRSFull})
	if err != nil {
		b.Fatal(err)
	}
	wl := Homogeneous(trace.ByName("mcf"), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sm, wl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryOff(b *testing.B) { benchRun(b, fastOpts()) }
func BenchmarkTelemetryOn(b *testing.B)  { benchRun(b, tracedOpts(nil, false)) }
