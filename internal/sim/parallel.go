package sim

import (
	"context"
	"fmt"
	"time"

	"scalesim/internal/branch"
	"scalesim/internal/config"
	"scalesim/internal/cpu"
	"scalesim/internal/trace"
	"scalesim/internal/units"
)

// ParallelSpec describes a data-parallel multi-threaded run: one thread per
// core of the machine, all executing Profile with barrier synchronisation
// (the paper's §V-E6 outlook). The total work is fixed (strong scaling):
// Options.Instructions instructions are split evenly across threads, so
// running the same spec on machines of different sizes measures parallel
// speedup.
type ParallelSpec struct {
	Profile *trace.ParallelProfile
}

// ThreadResult is one thread's measured statistics.
type ThreadResult struct {
	Thread       int
	Instructions uint64
	Cycles       units.Cycles
	IPC          float64
	// BarrierCycles counts cycles spent waiting at barriers (imbalance).
	BarrierCycles   units.Cycles
	Barriers        int
	LLCMPKI         float64
	BWBytesPerCycle units.BytesPerCycle
}

// SpeedupStack decomposes average per-thread execution cycles into the
// bottleneck components of Eyerman et al.'s speedup stacks: what a thread's
// time went to, as fractions summing to ~1. Comparing stacks across machine
// sizes shows which bottleneck limits scaling.
type SpeedupStack struct {
	Base     float64 // useful (ILP-limited) execution
	Branch   float64 // misprediction penalties
	Memory   float64 // exposed memory latency (incl. queuing contention)
	Frontend float64 // instruction-fetch stalls
	Barrier  float64 // barrier wait (load imbalance)
}

// String renders the stack as percentages.
func (s SpeedupStack) String() string {
	return fmt.Sprintf("base %.0f%% | branch %.0f%% | memory %.0f%% | frontend %.0f%% | barrier %.0f%%",
		100*s.Base, 100*s.Branch, 100*s.Memory, 100*s.Frontend, 100*s.Barrier)
}

// ParallelResult is the outcome of one multi-threaded run.
type ParallelResult struct {
	ConfigName string
	Threads    []ThreadResult
	// MakespanCycles is the time until the last thread completed its work
	// (the parallel execution time).
	MakespanCycles  units.Cycles
	Stack           SpeedupStack
	DRAMUtilization float64
	NoCUtilization  float64
	WallClock       time.Duration
}

// AggregateIPC returns total instructions per makespan cycle (system
// throughput of the parallel run).
func (r *ParallelResult) AggregateIPC() float64 {
	if r.MakespanCycles == 0 {
		return 0
	}
	var instr uint64
	for _, t := range r.Threads {
		instr += t.Instructions
	}
	return float64(instr) / float64(r.MakespanCycles)
}

// RunParallel simulates spec on cfg with one thread per core. Total work
// (opts.Instructions) is divided across threads; barriers from the profile
// synchronise them; the run ends when every thread finished its share.
func RunParallel(cfg *config.SystemConfig, spec ParallelSpec, opts Options) (*ParallelResult, error) {
	return RunParallelContext(context.Background(), cfg, spec, opts)
}

// RunParallelContext is RunParallel with cancellation, checked at every
// epoch boundary like RunContext.
func RunParallelContext(ctx context.Context, cfg *config.SystemConfig, spec ParallelSpec, opts Options) (*ParallelResult, error) {
	opts = opts.normalized()
	start := time.Now() //simlint:ignore wallclock measures Result.WallClock reporting only; never simulated state
	if spec.Profile == nil {
		return nil, fmt.Errorf("sim: nil parallel profile")
	}
	if err := spec.Profile.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	threads := cfg.Cores

	// Build the machine manually: thread generators share an address space.
	wl := Homogeneous(&spec.Profile.Serial, threads) // placeholder for sizing
	m, err := newMachine(cfg, wl, opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < threads; i++ {
		gen, err := trace.NewThreadGenerator(spec.Profile, i, threads, trace.GenOptions{
			CapacityScale: opts.CapacityScale,
			Seed:          opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		core, err := cpu.New(i, cfg.Core, gen, branch.NewTournament(), m.ctxs[i])
		if err != nil {
			return nil, err
		}
		m.cores[i] = core
	}

	// Per-thread work shares (strong scaling), with the profile's skew.
	perThread := opts.Instructions / uint64(threads)
	if perThread < 1000 {
		perThread = 1000
	}
	warmPerThread := opts.Warmup / uint64(threads)
	if warmPerThread < 500 {
		warmPerThread = 500
	}
	interval := spec.Profile.BarrierInterval
	work := make([]uint64, threads)        // measured budget per thread
	barrierStep := make([]uint64, threads) // instructions between barriers
	for t := 0; t < threads; t++ {
		if interval > 0 {
			// Every thread passes the same number of barriers; skew makes
			// the work between consecutive barriers differ per thread.
			steps := (perThread + interval/2) / interval
			if steps < 1 {
				steps = 1
			}
			barrierStep[t] = spec.Profile.ThreadBudget(t, threads)
			work[t] = steps * barrierStep[t]
		} else {
			work[t] = perThread
		}
	}

	// Warmup (no barriers), then reset statistics.
	limits := noLimits(make([]uint64, threads))
	for {
		if err := m.runEpoch(ctx, opts.EpochCycles, limits); err != nil {
			return nil, err
		}
		allWarm := true
		for _, c := range m.cores {
			if c.Stats.Instructions < warmPerThread {
				allWarm = false
			}
		}
		m.endEpoch(opts.EpochCycles)
		if allWarm {
			break
		}
	}
	snaps := make([]snapshot, threads)
	for i, c := range m.cores {
		c.ResetStats()
		snaps[i] = snapshot{llcMisses: m.llcCoreMisses(i), dramBytes: m.mem.CoreBytes(i)}
	}

	// Measured phase with barrier synchronisation.
	barrierWait := make([]units.Cycles, threads)
	barriers := make([]int, threads)
	nextBarrier := make([]uint64, threads)
	done := make([]bool, threads)
	for t := range nextBarrier {
		if interval > 0 {
			nextBarrier[t] = barrierStep[t]
		} else {
			nextBarrier[t] = work[t]
		}
	}
	for {
		// A finished thread gets a zero instruction bound, so its core runs
		// no steps this epoch (Instructions is already >= 0).
		for t := range m.cores {
			limits[t] = 0
			if !done[t] {
				limits[t] = nextBarrier[t]
				if limits[t] > work[t] {
					limits[t] = work[t]
				}
			}
		}
		if err := m.runEpoch(ctx, opts.EpochCycles, limits); err != nil {
			return nil, err
		}
		m.endEpoch(opts.EpochCycles)

		// Barrier release: when every unfinished thread has reached its
		// pending boundary, synchronise clocks and charge the wait.
		if everyoneBlocked(m.cores, nextBarrier, work, done) {
			release := units.Cycles(0)
			for t, c := range m.cores {
				if !done[t] && c.Stats.Cycles > release {
					release = c.Stats.Cycles
				}
			}
			for t, c := range m.cores {
				if done[t] {
					continue
				}
				if wait := release - c.Stats.Cycles; wait > 0 {
					c.Stats.Cycles = release
					barrierWait[t] += wait
				}
				barriers[t]++
				if c.Stats.Instructions >= work[t] {
					done[t] = true
					continue
				}
				nextBarrier[t] += barrierStep[t]
				if interval == 0 {
					nextBarrier[t] = work[t]
				}
			}
		}
		complete := true
		for t := range done {
			if !done[t] {
				complete = false
				break
			}
		}
		if complete {
			break
		}
	}

	res := &ParallelResult{
		ConfigName:      cfg.Name,
		DRAMUtilization: m.mem.Utilization(),
		NoCUtilization:  m.mesh.Utilization(),
	}
	var stack SpeedupStack
	totalCycles := 0.0
	for t, c := range m.cores {
		st := c.Stats
		ki := float64(st.Instructions) / 1000
		llcMisses := m.llcCoreMisses(t) - snaps[t].llcMisses
		cycles := st.Cycles
		if cycles > res.MakespanCycles {
			res.MakespanCycles = cycles
		}
		res.Threads = append(res.Threads, ThreadResult{
			Thread:          t,
			Instructions:    st.Instructions,
			Cycles:          cycles,
			IPC:             st.IPC(),
			BarrierCycles:   barrierWait[t],
			Barriers:        barriers[t],
			LLCMPKI:         float64(llcMisses) / ki,
			BWBytesPerCycle: (m.mem.CoreBytes(t) - snaps[t].dramBytes).Per(cycles),
		})
		stack.Base += float64(st.BaseCycles)
		stack.Branch += float64(st.BranchCycles)
		stack.Memory += float64(st.MemoryCycles)
		stack.Frontend += float64(st.FrontendCycles)
		stack.Barrier += float64(barrierWait[t])
		totalCycles += float64(cycles)
	}
	if totalCycles > 0 {
		stack.Base /= totalCycles
		stack.Branch /= totalCycles
		stack.Memory /= totalCycles
		stack.Frontend /= totalCycles
		stack.Barrier /= totalCycles
	}
	res.Stack = stack
	res.WallClock = time.Since(start) //simlint:ignore wallclock measures Result.WallClock reporting only; never simulated state
	return res, nil
}

// atBarrier reports whether the core has consumed its pending boundary.
func atBarrier(c *cpu.Core, limit uint64) bool {
	return c.Stats.Instructions >= limit
}

// everyoneBlocked reports whether every unfinished thread has reached its
// pending barrier boundary (or its end of work).
func everyoneBlocked(cores []*cpu.Core, next []uint64, work []uint64, done []bool) bool {
	for t, c := range cores {
		if done[t] {
			continue
		}
		limit := next[t]
		if limit > work[t] {
			limit = work[t]
		}
		if c.Stats.Instructions < limit {
			return false
		}
	}
	return true
}
