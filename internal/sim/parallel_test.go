package sim

import (
	"math"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/trace"
)

func parOpts() Options {
	return Options{
		Instructions:  400_000, // total work, split across threads
		Warmup:        80_000,
		EpochCycles:   10_000,
		CapacityScale: 16,
		Seed:          11,
	}
}

func TestParallelSuiteValid(t *testing.T) {
	suite := trace.ParallelSuite()
	if len(suite) < 4 {
		t.Fatalf("parallel suite has %d workloads", len(suite))
	}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Serial.Name, err)
		}
	}
	if trace.ParallelByName("par.stream") == nil {
		t.Fatal("ParallelByName(par.stream) = nil")
	}
	if trace.ParallelByName("nope") != nil {
		t.Fatal("ParallelByName(nope) != nil")
	}
}

func TestThreadGeneratorPartitionsStreams(t *testing.T) {
	pp := trace.ParallelByName("par.stream")
	g0, err := trace.NewThreadGenerator(pp, 0, 4, trace.GenOptions{Seed: 1, CapacityScale: 16})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := trace.NewThreadGenerator(pp, 1, 4, trace.GenOptions{Seed: 1, CapacityScale: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Stream (Seq) addresses of different threads must be disjoint; the
	// private hot region must also be disjoint.
	seen0 := map[uint64]bool{}
	for i := 0; i < 200000; i++ {
		op := g0.Next()
		if op.Kind == trace.OpLoad || op.Kind == trace.OpStore {
			seen0[op.Addr>>12] = true // page granularity
		}
	}
	overlap := 0
	total := 0
	for i := 0; i < 200000; i++ {
		op := g1.Next()
		if op.Kind == trace.OpLoad || op.Kind == trace.OpStore {
			total++
			if seen0[op.Addr>>12] {
				overlap++
			}
		}
	}
	// par.stream has a private hot region (66%) and a partitioned stream
	// (34%): overlap should be tiny (only page-boundary effects).
	if frac := float64(overlap) / float64(total); frac > 0.02 {
		t.Fatalf("thread page overlap %.3f for partitioned+private workload, want ~0", frac)
	}
}

func TestThreadGeneratorSharesTables(t *testing.T) {
	pp := trace.ParallelByName("par.tablescan")
	g0, _ := trace.NewThreadGenerator(pp, 0, 4, trace.GenOptions{Seed: 1, CapacityScale: 16})
	g1, _ := trace.NewThreadGenerator(pp, 1, 4, trace.GenOptions{Seed: 1, CapacityScale: 16})
	seen0 := map[uint64]bool{}
	for i := 0; i < 300000; i++ {
		if op := g0.Next(); op.Kind == trace.OpLoad {
			seen0[op.Addr>>12] = true
		}
	}
	overlap, total := 0, 0
	for i := 0; i < 300000; i++ {
		if op := g1.Next(); op.Kind == trace.OpLoad {
			total++
			if seen0[op.Addr>>12] {
				overlap++
			}
		}
	}
	// The shared hot table (22% of accesses) must produce real overlap.
	if frac := float64(overlap) / float64(total); frac < 0.1 {
		t.Fatalf("thread page overlap %.3f for shared-table workload, want >= 0.1", frac)
	}
}

func TestThreadGeneratorRejectsBadArgs(t *testing.T) {
	pp := trace.ParallelByName("par.stream")
	if _, err := trace.NewThreadGenerator(pp, 4, 4, trace.GenOptions{}); err == nil {
		t.Fatal("thread index == threads accepted")
	}
	if _, err := trace.NewThreadGenerator(pp, -1, 4, trace.GenOptions{}); err == nil {
		t.Fatal("negative thread accepted")
	}
	bad := *pp
	bad.PrivateRegions = []bool{true}
	if _, err := trace.NewThreadGenerator(&bad, 0, 2, trace.GenOptions{}); err == nil {
		t.Fatal("mismatched private flags accepted")
	}
}

func TestRunParallelBasics(t *testing.T) {
	cfg, err := config.ScaleModel(config.Target(), 4, config.ScaleModelOptions{Policy: config.PRSFull})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(cfg, ParallelSpec{Profile: trace.ParallelByName("par.stencil")}, parOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 4 {
		t.Fatalf("%d threads, want 4", len(res.Threads))
	}
	for _, th := range res.Threads {
		if th.Instructions < 50_000 {
			t.Errorf("thread %d retired only %d", th.Thread, th.Instructions)
		}
		if th.IPC <= 0 || th.IPC > 4 {
			t.Errorf("thread %d IPC %.3f out of range", th.Thread, th.IPC)
		}
		if th.Barriers == 0 {
			t.Errorf("thread %d crossed no barriers", th.Thread)
		}
	}
	if res.MakespanCycles <= 0 {
		t.Fatal("no makespan")
	}
	sum := res.Stack.Base + res.Stack.Branch + res.Stack.Memory + res.Stack.Frontend + res.Stack.Barrier
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("speedup stack sums to %.3f, want ~1 (%+v)", sum, res.Stack)
	}
}

func TestRunParallelStrongScaling(t *testing.T) {
	// More threads must raise aggregate throughput for the same workload
	// (strong scaling), bounded by the thread count.
	throughput := func(name string, cores int) float64 {
		cfg := config.Target()
		if cores != 32 {
			var err error
			cfg, err = config.ScaleModel(config.Target(), cores, config.ScaleModelOptions{Policy: config.PRSFull})
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := RunParallel(cfg, ParallelSpec{Profile: trace.ParallelByName(name)}, parOpts())
		if err != nil {
			t.Fatal(err)
		}
		return res.AggregateIPC()
	}
	for _, name := range []string{"par.stream", "par.stencil"} {
		p1 := throughput(name, 1)
		p4 := throughput(name, 4)
		speedup := p4 / p1
		if speedup <= 1 {
			t.Errorf("%s: no speedup from 4 threads (%.2f)", name, speedup)
		}
		if speedup > 4.3 {
			t.Errorf("%s: impossible speedup %.2f with 4 threads", name, speedup)
		}
	}
}

func TestRunParallelSkewShowsImbalance(t *testing.T) {
	cfg, err := config.ScaleModel(config.Target(), 4, config.ScaleModelOptions{Policy: config.PRSFull})
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := RunParallel(cfg, ParallelSpec{Profile: trace.ParallelByName("par.stencil")}, parOpts())
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := RunParallel(cfg, ParallelSpec{Profile: trace.ParallelByName("par.graph")}, parOpts())
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Stack.Barrier <= balanced.Stack.Barrier {
		t.Fatalf("skewed workload barrier share %.3f not above balanced %.3f",
			skewed.Stack.Barrier, balanced.Stack.Barrier)
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	cfg, _ := config.ScaleModel(config.Target(), 2, config.ScaleModelOptions{Policy: config.PRSFull})
	run := func() *ParallelResult {
		res, err := RunParallel(cfg, ParallelSpec{Profile: trace.ParallelByName("par.tablescan")}, parOpts())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MakespanCycles != b.MakespanCycles {
		t.Fatalf("non-deterministic makespan: %.0f vs %.0f", a.MakespanCycles, b.MakespanCycles)
	}
	for i := range a.Threads {
		if a.Threads[i].IPC != b.Threads[i].IPC {
			t.Fatalf("thread %d IPC differs", i)
		}
	}
}

func TestRunParallelErrors(t *testing.T) {
	cfg, _ := config.ScaleModel(config.Target(), 2, config.ScaleModelOptions{Policy: config.PRSFull})
	if _, err := RunParallel(cfg, ParallelSpec{}, parOpts()); err == nil {
		t.Fatal("nil profile accepted")
	}
	bad := config.Target()
	bad.Cores = 0
	if _, err := RunParallel(bad, ParallelSpec{Profile: trace.ParallelByName("par.stream")}, parOpts()); err == nil {
		t.Fatal("invalid config accepted")
	}
}
