// Telemetry: the simulator's per-epoch observability layer.
//
// The epoch fixed point that makes the contention model work (see the
// package documentation) is also the natural observation boundary: at every
// epoch end the shared-resource utilizations have just been refreshed and
// every core's cumulative counters are consistent. When telemetry is
// enabled, the run loop snapshots the delta since the previous boundary into
// an EpochSnapshot — per-core CPI stacks, cache hit rates, DRAM demand — and
// the current shared-state estimates (NoC/DRAM utilization, queue delays,
// row-buffer efficiency).
//
// The layer is zero-overhead when off: Options.Telemetry == nil reduces the
// entire feature to one nil check per epoch (tens of thousands of simulated
// cycles), and no counters beyond the ones the simulator already keeps are
// maintained. Snapshots are pure reads of deterministic state, so a traced
// run retires the same instructions in the same cycles as an untraced one,
// and two traced runs of the same job produce byte-identical JSONL.
package sim

import (
	"encoding/json"
	"io"

	"scalesim/internal/cache"
	"scalesim/internal/units"
)

// Phase labels for EpochSnapshot.Phase.
const (
	PhaseWarmup  = "warmup"
	PhaseMeasure = "measure"
)

// TelemetryOptions enables per-epoch observability (see Options.Telemetry).
type TelemetryOptions struct {
	// Sink, when non-nil, receives every snapshot as it is taken — e.g. a
	// JSONLSink streaming to a file. Snapshots are also always collected
	// into Result.Trace. The sink's identity is deliberately not part of
	// the campaign cache key — only enablement and Warmup change a Result.
	//simlint:ignore keydrift sink identity is not semantic; key.go encodes enablement and Warmup
	Sink TelemetrySink
	// Warmup additionally snapshots warmup epochs (Phase == PhaseWarmup).
	// The default observes only the measured phase.
	Warmup bool
}

// TelemetrySink consumes epoch snapshots as the simulation produces them.
// Implementations must not retain the snapshot's Cores slice across calls if
// they mutate it; the simulator itself never reuses it.
type TelemetrySink interface {
	Epoch(EpochSnapshot)
}

// CoreEpoch is one core's activity during one epoch (all counters are deltas
// over the epoch, not cumulative).
type CoreEpoch struct {
	Core      int    `json:"core"`
	Benchmark string `json:"benchmark"`

	Instructions uint64  `json:"instructions"`
	Cycles       float64 `json:"cycles"`
	IPC          float64 `json:"ipc"`

	// CPI stack components, per retired instruction this epoch. Their sum
	// is the epoch CPI (1/IPC).
	BaseCPI     float64 `json:"base_cpi"`
	BranchCPI   float64 `json:"branch_cpi"`
	MemoryCPI   float64 `json:"memory_cpi"`
	FrontendCPI float64 `json:"frontend_cpi"`

	// Private-hierarchy and LLC hit rates over the epoch's accesses
	// (0 when a level saw no accesses).
	L1DHitRate float64 `json:"l1d_hit_rate"`
	L2HitRate  float64 `json:"l2_hit_rate"`
	LLCHitRate float64 `json:"llc_hit_rate"`
	LLCMisses  uint64  `json:"llc_misses"`

	// DRAMBytes is the core's DRAM traffic (reads + writebacks) this epoch.
	DRAMBytes float64 `json:"dram_bytes"`
}

// EpochSnapshot is one epoch's observability record: per-core activity plus
// the shared-resource state the contention feedback just refreshed.
type EpochSnapshot struct {
	// Epoch is the snapshot's index within the trace (monotonic across
	// phases; starts at 0 with the first observed epoch).
	Epoch int `json:"epoch"`
	// Phase is PhaseWarmup or PhaseMeasure.
	Phase string `json:"phase"`
	// Config names the simulated machine.
	Config string `json:"config"`
	// EndCycle is the cumulative observed cycle count at the epoch's end;
	// EpochCycles is the epoch length.
	EndCycle    float64 `json:"end_cycle"`
	EpochCycles float64 `json:"epoch_cycles"`

	// Shared-resource state after the epoch's feedback update: smoothed
	// utilizations, the queue delays the next epoch will charge, DRAM
	// row-buffer efficiency, and the aggregate DRAM demand this epoch.
	NoCUtilization    float64 `json:"noc_utilization"`
	NoCQueueDelay     float64 `json:"noc_queue_delay"`
	DRAMUtilization   float64 `json:"dram_utilization"`
	DRAMQueueDelay    float64 `json:"dram_queue_delay"`
	DRAMRowEfficiency float64 `json:"dram_row_efficiency"`
	DRAMBytesPerCycle float64 `json:"dram_bytes_per_cycle"`

	Cores []CoreEpoch `json:"cores"`
}

// JSONLSink streams snapshots to w as JSON Lines (one snapshot per line).
// Encoding errors are sticky: the first one stops further writes and is
// reported by Err.
type JSONLSink struct {
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink streaming snapshots to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Epoch implements TelemetrySink.
func (s *JSONLSink) Epoch(e EpochSnapshot) {
	if s.err == nil {
		s.err = s.enc.Encode(&e)
	}
}

// Err returns the first encoding error, if any.
func (s *JSONLSink) Err() error { return s.err }

// coreCounters is one core's cumulative counter state at an epoch boundary,
// kept by the observer to compute per-epoch deltas.
type coreCounters struct {
	instructions                   uint64
	cycles                         units.Cycles
	base, branch, memory, frontend units.Cycles
	l1d, l2, llc                   cache.Stats
	dramBytes                      units.Bytes
}

// observer computes epoch snapshots for one run. It is only allocated when
// telemetry is enabled; the disabled path never touches it.
type observer struct {
	m    *machine
	wl   Workload
	opts *TelemetryOptions

	epoch    int
	endCycle units.Cycles
	prev     []coreCounters
	prevDRAM units.Bytes

	trace []EpochSnapshot
}

func newObserver(m *machine, wl Workload, opts *TelemetryOptions) *observer {
	o := &observer{m: m, wl: wl, opts: opts, prev: make([]coreCounters, len(m.cores))}
	o.sync()
	return o
}

// counters captures core i's current cumulative state.
func (o *observer) counters(i int) coreCounters {
	st := o.m.cores[i].Stats
	return coreCounters{
		instructions: st.Instructions,
		cycles:       st.Cycles,
		base:         st.BaseCycles,
		branch:       st.BranchCycles,
		memory:       st.MemoryCycles,
		frontend:     st.FrontendCycles,
		l1d:          o.m.l1d[i].Stats,
		l2:           o.m.l2[i].Stats,
		llc:          o.m.llcCoreStats(i),
		dramBytes:    o.m.mem.CoreBytes(i),
	}
}

// sync re-bases the delta computation on the current counters. Called at
// construction and at the warmup/measurement boundary (where core statistics
// are reset while cache and DRAM counters keep accumulating).
func (o *observer) sync() {
	for i := range o.prev {
		o.prev[i] = o.counters(i)
	}
	o.prevDRAM = o.m.mem.TotalBytes
}

// ratio returns num/den, or 0 for an empty denominator (avoids NaN in JSON).
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// hitRate converts an epoch's access/miss delta into a hit rate.
func hitRate(d cache.Stats) float64 {
	return ratio(float64(d.Accesses-d.Misses), float64(d.Accesses))
}

// observe snapshots the epoch that just ended and forwards it to the trace
// and the sink. Must be called after the machine's endEpoch so the
// shared-resource estimates reflect the epoch's traffic.
func (o *observer) observe(phase string, epochCycles units.Cycles) {
	o.endCycle += epochCycles
	snap := EpochSnapshot{
		Epoch:             o.epoch,
		Phase:             phase,
		Config:            o.m.cfg.Name,
		EndCycle:          float64(o.endCycle),
		EpochCycles:       float64(epochCycles),
		NoCUtilization:    o.m.mesh.Utilization(),
		NoCQueueDelay:     float64(o.m.mesh.QueueDelay()),
		DRAMUtilization:   o.m.mem.Utilization(),
		DRAMQueueDelay:    float64(o.m.mem.QueueDelay()),
		DRAMRowEfficiency: o.m.mem.Efficiency(),
		DRAMBytesPerCycle: ratio(float64(o.m.mem.TotalBytes-o.prevDRAM), float64(epochCycles)),
		Cores:             make([]CoreEpoch, len(o.m.cores)),
	}
	for i := range o.m.cores {
		cur := o.counters(i)
		p := o.prev[i]
		instr := cur.instructions - p.instructions
		cycles := cur.cycles - p.cycles
		ki := float64(instr)
		llcDelta := cur.llc.Delta(p.llc)
		snap.Cores[i] = CoreEpoch{
			Core:         i,
			Benchmark:    o.wl.Profiles[i].Name,
			Instructions: instr,
			Cycles:       float64(cycles),
			IPC:          ratio(float64(instr), float64(cycles)),
			BaseCPI:      ratio(float64(cur.base-p.base), ki),
			BranchCPI:    ratio(float64(cur.branch-p.branch), ki),
			MemoryCPI:    ratio(float64(cur.memory-p.memory), ki),
			FrontendCPI:  ratio(float64(cur.frontend-p.frontend), ki),
			L1DHitRate:   hitRate(cur.l1d.Delta(p.l1d)),
			L2HitRate:    hitRate(cur.l2.Delta(p.l2)),
			LLCHitRate:   hitRate(llcDelta),
			LLCMisses:    llcDelta.Misses,
			DRAMBytes:    float64(cur.dramBytes - p.dramBytes),
		}
		o.prev[i] = cur
	}
	o.prevDRAM = o.m.mem.TotalBytes
	o.epoch++
	o.trace = append(o.trace, snap)
	if o.opts.Sink != nil {
		o.opts.Sink.Epoch(snap)
	}
}
