package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"scalesim/internal/cache"
	"scalesim/internal/cpu"
	"scalesim/internal/dram"
	"scalesim/internal/noc"
	"scalesim/internal/units"
)

// This file is the epoch execution engine: per-core memory-system contexts,
// the fork/join worker pool, and the canonical-order barrier that makes
// parallel execution byte-identical to serial execution.
//
// Within an epoch, NoC and DRAM latencies are pure functions (they read only
// the utilization estimates frozen at the last epoch boundary), and cores
// share mutable state only through the LLC. Each core therefore executes
// against a thread-local view: private L1/L2 directly, LLC through a
// copy-on-write overlay (cache.Overlay) with every operation appended to an
// ordered log, and NoC/DRAM traffic into per-core accumulators. At the
// barrier the logs are replayed against the real NUCA in canonical core
// order (0, 1, 2, ...) and the accumulators merged the same way, so the
// machine state entering the next epoch is a pure function of the inputs —
// never of goroutine scheduling. See DESIGN.md, "Performance invariants".

// llcOpKind tags one logged shared-LLC operation.
type llcOpKind uint8

const (
	opRead llcOpKind = iota
	opWrite
	opFillClean
	opFillDirty
)

// llcOp is one logged shared-LLC operation; 16 bytes, kept flat so the log
// is a single reusable arena with no per-access allocation.
type llcOp struct {
	addr uint64
	kind llcOpKind
}

// defaultEpochLogOps is the initial per-core LLC log capacity when
// Options.EpochLogOps is zero. Logs grow on demand and keep their high-water
// capacity across epochs.
const defaultEpochLogOps = 4096

// coreCtx implements cpu.MemSystem for one core. Private levels (L1-I,
// L1-D, L2, prefetcher, partitioned-LLC slice) are mutated directly — no
// other core touches them. The shared NUCA is reached through ov when the
// machine actually shares it between cores; traffic lands in the thread
// local accumulators either way.
type coreCtx struct {
	m    *machine
	core int

	// ov is the copy-on-write LLC view, nil when this machine's LLC is not
	// shared between concurrently executing cores (single core, or the
	// PartitionedLLC ablation); log records this core's shared-LLC
	// operations for canonical replay.
	ov  *cache.Overlay
	log []llcOp

	nocAcc  noc.Acc
	dramAcc *dram.Acc
}

// beginEpoch rebases the overlay on the LLC state left by the last barrier.
func (c *coreCtx) beginEpoch() {
	if c.ov != nil {
		c.ov.BeginEpoch()
	}
}

// replay applies this core's logged LLC operations to the real NUCA. Access
// replays literally (defining the canonical per-core LLC statistics); Fill
// replays fill-if-absent, because an earlier core's replayed fill may
// already have brought the line in. Replay victims generate no NoC/DRAM
// traffic — that was accounted at execution time from the overlay's view.
func (c *coreCtx) replay() {
	m := c.m
	for _, op := range c.log {
		switch op.kind {
		case opRead:
			m.llc.Access(c.core, op.addr, false)
		case opWrite:
			m.llc.Access(c.core, op.addr, true)
		default:
			if !m.llc.Probe(op.addr) {
				m.llc.Fill(c.core, op.addr, op.kind == opFillDirty)
			}
		}
	}
	c.log = c.log[:0]
}

// llcAccess routes an LLC lookup to the partition, the overlay, or the
// shared NUCA directly, mirroring the serial semantics of each mode.
func (c *coreCtx) llcAccess(addr uint64, write bool) (slice int, hit bool) {
	m := c.m
	if m.part != nil {
		return c.core, m.part[c.core].Access(addr, write)
	}
	if c.ov != nil {
		slice, hit = c.ov.Access(addr, write)
		kind := opRead
		if write {
			kind = opWrite
		}
		//simlint:hotpath-exempt the op log keeps its high-water capacity across epochs, so steady-state appends never grow
		c.log = append(c.log, llcOp{addr: addr, kind: kind})
		return slice, hit
	}
	//simlint:ignore sharestrict serial fallback: ov is nil only when one core runs, so no worker races the shared LLC
	return m.llc.Access(c.core, addr, write)
}

// llcFill allocates addr after a miss, returning any victim from this
// core's view.
func (c *coreCtx) llcFill(addr uint64, dirty bool) (victimAddr uint64, victimDirty, evicted bool) {
	m := c.m
	if m.part != nil {
		return m.part[c.core].Fill(addr, dirty)
	}
	if c.ov != nil {
		victimAddr, victimDirty, evicted = c.ov.Fill(addr, dirty)
		kind := opFillClean
		if dirty {
			kind = opFillDirty
		}
		//simlint:hotpath-exempt the op log keeps its high-water capacity across epochs, so steady-state appends never grow
		c.log = append(c.log, llcOp{addr: addr, kind: kind})
		return victimAddr, victimDirty, evicted
	}
	//simlint:ignore sharestrict serial fallback: ov is nil only when one core runs, so no worker races the shared LLC
	return m.llc.Fill(c.core, addr, dirty)
}

// llcProbe reports presence in this core's view without disturbing state.
func (c *coreCtx) llcProbe(addr uint64) bool {
	m := c.m
	if m.part != nil {
		return m.part[c.core].Probe(addr)
	}
	if c.ov != nil {
		return c.ov.Probe(addr)
	}
	return m.llc.Probe(addr)
}

// prefetch issues the prefetcher's candidates for a demand L2 miss: each
// candidate is brought into the L2 in the background, consuming LLC/DRAM
// bandwidth but adding no latency to the triggering access.
func (c *coreCtx) prefetch(addr uint64) {
	m := c.m
	if m.pf == nil {
		return
	}
	for _, pa := range m.pf[c.core].OnMiss(addr) {
		if m.l2[c.core].Probe(pa) {
			continue
		}
		slice, hit := c.llcAccess(pa, false)
		m.mesh.LatencyInto(&c.nocAcc, c.core, slice, reqBytes)
		if !hit {
			m.mesh.LatencyInto(&c.nocAcc, slice, m.mesh.MCTile(m.mem.MCOf(pa), m.mem.Controllers()), reqBytes)
			m.mem.AccessInto(c.dramAcc, c.core, pa, lineBytes, false)
			if victim, vdirty, evicted := c.llcFill(pa, false); evicted && vdirty {
				m.mem.AccessInto(c.dramAcc, c.core, victim, lineBytes, true)
			}
		}
		c.fillL2(pa, false)
	}
}

// resolve serves a data access that missed in L1 at addr, filling the
// hierarchy on its way back. It returns the total added latency beyond L1
// and the serving level.
func (c *coreCtx) resolve(addr uint64, dirtyFill bool) cpu.MemResult {
	m := c.m
	// L2 lookup.
	if m.l2[c.core].Access(addr, false) {
		c.fillL1(addr, dirtyFill)
		return cpu.MemResult{Latency: m.l1Time + m.l2Time, Level: cpu.LevelL2}
	}
	// Demand L2 miss: train the prefetcher (if any) before going out.
	c.prefetch(addr)
	// LLC lookup via the NoC: core tile -> home slice tile.
	slice, hit := c.llcAccess(addr, false)
	nocLat := m.mesh.LatencyInto(&c.nocAcc, c.core, slice, reqBytes)
	lat := m.l1Time + m.l2Time + m.llcTime + nocLat
	if hit {
		c.fillL2(addr, false)
		c.fillL1(addr, dirtyFill)
		return cpu.MemResult{Latency: lat, Level: cpu.LevelLLC}
	}
	// DRAM access: home slice tile -> memory controller tile.
	mc := m.mem.MCOf(addr)
	mcTile := m.mesh.MCTile(mc, m.mem.Controllers())
	lat += m.mesh.LatencyInto(&c.nocAcc, slice, mcTile, reqBytes)
	lat += m.mem.AccessInto(c.dramAcc, c.core, addr, lineBytes, false)
	// Fill the hierarchy; LLC victims write back to DRAM.
	if victim, vdirty, evicted := c.llcFill(addr, false); evicted && vdirty {
		vmc := m.mem.MCOf(victim)
		m.mesh.LatencyInto(&c.nocAcc, m.llcSliceOf(c.core, victim), m.mesh.MCTile(vmc, m.mem.Controllers()), reqBytes)
		m.mem.AccessInto(c.dramAcc, c.core, victim, lineBytes, true)
	}
	c.fillL2(addr, false)
	c.fillL1(addr, dirtyFill)
	return cpu.MemResult{Latency: lat, Level: cpu.LevelDRAM}
}

// fillL1 allocates addr in this core's L1-D; dirty victims write through to
// the L2.
func (c *coreCtx) fillL1(addr uint64, dirty bool) {
	victim, vdirty, evicted := c.m.l1d[c.core].Fill(addr, dirty)
	if evicted && vdirty {
		c.writebackToL2(victim)
	}
}

// fillL2 allocates addr in this core's L2; dirty victims write to the LLC.
func (c *coreCtx) fillL2(addr uint64, dirty bool) {
	victim, vdirty, evicted := c.m.l2[c.core].Fill(addr, dirty)
	if evicted && vdirty {
		c.writebackToLLC(victim)
	}
}

// writebackToL2 handles a dirty L1-D victim. Writebacks never allocate on a
// miss (no-allocate policy): if the line is gone from the L2 it is forwarded
// down the hierarchy. Allocating would recall evicted lines and amplify one
// eviction into a cascade of fills.
func (c *coreCtx) writebackToL2(addr uint64) {
	if c.m.l2[c.core].Probe(addr) {
		c.m.l2[c.core].Access(addr, true)
		return
	}
	c.writebackToLLC(addr)
}

// writebackToLLC handles a dirty L2 victim: merge into the LLC if present,
// otherwise bypass straight to DRAM (bandwidth only; writes are posted).
func (c *coreCtx) writebackToLLC(addr uint64) {
	m := c.m
	slice := m.llcSliceOf(c.core, addr)
	m.mesh.LatencyInto(&c.nocAcc, c.core, slice, reqBytes)
	if c.llcProbe(addr) {
		c.llcAccess(addr, true)
		return
	}
	m.mesh.LatencyInto(&c.nocAcc, slice, m.mesh.MCTile(m.mem.MCOf(addr), m.mem.Controllers()), reqBytes)
	m.mem.AccessInto(c.dramAcc, c.core, addr, lineBytes, true)
}

// Load implements cpu.MemSystem.
func (c *coreCtx) Load(core int, addr uint64) cpu.MemResult {
	if c.m.l1d[c.core].Access(addr, false) {
		return cpu.MemResult{Latency: c.m.l1Time, Level: cpu.LevelL1}
	}
	return c.resolve(addr, false)
}

// Store implements cpu.MemSystem (write-allocate).
func (c *coreCtx) Store(core int, addr uint64) cpu.MemResult {
	if c.m.l1d[c.core].Access(addr, true) {
		return cpu.MemResult{Latency: c.m.l1Time, Level: cpu.LevelL1}
	}
	return c.resolve(addr, true)
}

// IFetch implements cpu.MemSystem. Sequential fetches are covered by the
// next-line prefetcher: they keep the hierarchy state warm and consume
// bandwidth but never stall. Non-sequential fetches (jump targets) stall
// the front end for their full latency beyond the pipelined L1-I access.
func (c *coreCtx) IFetch(core int, addr uint64, jump bool) units.Cycles {
	m := c.m
	if m.l1i[c.core].Access(addr, false) {
		return 0
	}
	// Instruction lines are clean; reuse the data path read logic against
	// L2/LLC/DRAM but fill the L1-I instead of the L1-D.
	if m.l2[c.core].Access(addr, false) {
		m.l1i[c.core].Fill(addr, false)
		if !jump {
			return 0
		}
		return m.l2Time
	}
	slice, hit := c.llcAccess(addr, false)
	nocLat := m.mesh.LatencyInto(&c.nocAcc, c.core, slice, reqBytes)
	lat := m.l2Time + m.llcTime + nocLat
	if !hit {
		mc := m.mem.MCOf(addr)
		lat += m.mesh.LatencyInto(&c.nocAcc, slice, m.mesh.MCTile(mc, m.mem.Controllers()), reqBytes)
		lat += m.mem.AccessInto(c.dramAcc, c.core, addr, lineBytes, false)
		if victim, vdirty, evicted := c.llcFill(addr, false); evicted && vdirty {
			m.mem.AccessInto(c.dramAcc, c.core, victim, lineBytes, true)
		}
	}
	c.fillL2(addr, false)
	m.l1i[c.core].Fill(addr, false)
	if !jump {
		return 0 // hidden by the next-line prefetcher
	}
	return lat
}

// resolveWorkers maps the CoreWorkers option to an effective pool size:
// 0 (auto) means one worker per core up to GOMAXPROCS; explicit values are
// clamped to the core count. The result never affects simulation output,
// only wall-clock time.
func resolveWorkers(req, cores int) int {
	if req <= 0 {
		req = runtime.GOMAXPROCS(0)
	}
	if req > cores {
		req = cores
	}
	if req < 1 {
		req = 1
	}
	return req
}

// runEpoch advances every core by one epoch of at most cycles cycles, with
// limits[i] bounding core i's cumulative retired instructions (pass
// ^uint64(0) for no bound), then executes the deterministic barrier: LLC
// log replay and accumulator merge in canonical core order. ctx aborts
// between epochs only — one epoch of work is the cancellation granularity.
func (m *machine) runEpoch(ctx context.Context, cycles units.Cycles, limits []uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.workers > 1 {
		m.runCoresParallel(ctx, cycles, limits)
	} else {
		for i, c := range m.cores {
			m.ctxs[i].beginEpoch()
			c.Run(cycles, limits[i])
		}
	}
	// Epoch barrier. Replay order — not execution order — defines the LLC
	// state and statistics, so parallel and serial runs are byte-identical.
	// The accumulator sums are integer-valued and far below 2^53, so the
	// float64 merges are exact and the canonical order makes the result
	// schedule-independent.
	for i := range m.cores {
		cc := m.ctxs[i]
		cc.replay()
		m.mesh.Merge(&cc.nocAcc)
		m.mem.Merge(i, cc.dramAcc)
	}
	return nil
}

// runCoresParallel executes the epoch's per-core work on a bounded worker
// pool. Cores are claimed from an atomic counter; each core's work is
// independent given the frozen epoch-boundary state, so any schedule
// produces the same logs and accumulators.
func (m *machine) runCoresParallel(ctx context.Context, cycles units.Cycles, limits []uint64) {
	var next atomic.Int64
	var wg sync.WaitGroup
	n := m.workers
	if n > len(m.cores) {
		n = len(m.cores)
	}
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(m.cores) {
					return
				}
				m.ctxs[i].beginEpoch()
				m.cores[i].Run(cycles, limits[i])
			}
		}()
	}
	wg.Wait()
}

// noLimits fills limits with "unbounded" for the free-running phases.
func noLimits(limits []uint64) []uint64 {
	for i := range limits {
		limits[i] = ^uint64(0)
	}
	return limits
}
