package sim

import (
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/trace"
)

// fastOpts keeps unit-test runs short; experiments use DefaultOptions.
func fastOpts() Options {
	return Options{
		Instructions:  120_000,
		Warmup:        40_000,
		EpochCycles:   10_000,
		CapacityScale: 16,
		Seed:          7,
	}
}

func scaleModel(t *testing.T, cores int) *config.SystemConfig {
	t.Helper()
	sm, err := config.ScaleModel(config.Target(), cores, config.ScaleModelOptions{Policy: config.PRSFull})
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestRunSingleCore(t *testing.T) {
	res, err := Run(scaleModel(t, 1), Homogeneous(trace.ByName("gcc"), 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 {
		t.Fatalf("%d core results, want 1", len(res.Cores))
	}
	c := res.Cores[0]
	if c.Benchmark != "gcc" {
		t.Fatalf("benchmark %q, want gcc", c.Benchmark)
	}
	if c.Instructions < fastOpts().Instructions {
		t.Fatalf("retired %d < budget %d", c.Instructions, fastOpts().Instructions)
	}
	if c.IPC <= 0 || c.IPC > 4 {
		t.Fatalf("IPC %.3f out of physical range (0, 4]", c.IPC)
	}
	if c.BWBytesPerCycle < 0 || c.BWShare < 0 {
		t.Fatalf("negative bandwidth: %+v", c)
	}
}

func TestRunRejectsMismatchedWorkload(t *testing.T) {
	if _, err := Run(scaleModel(t, 2), Homogeneous(trace.ByName("gcc"), 1), fastOpts()); err == nil {
		t.Fatal("2-core config with 1-program workload accepted")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := config.Target()
	cfg.Cores = 0
	if _, err := Run(cfg, Workload{}, fastOpts()); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(scaleModel(t, 2), Homogeneous(trace.ByName("mcf"), 2), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Cores {
		if a.Cores[i].IPC != b.Cores[i].IPC || a.Cores[i].LLCMPKI != b.Cores[i].LLCMPKI {
			t.Fatalf("non-deterministic results: %+v vs %+v", a.Cores[i], b.Cores[i])
		}
	}
}

func TestComputeBoundIPCHigh(t *testing.T) {
	res, err := Run(scaleModel(t, 1), Homogeneous(trace.ByName("exchange2"), 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cores[0]
	if c.IPC < 1.5 {
		t.Fatalf("compute-bound exchange2 IPC %.3f, want > 1.5", c.IPC)
	}
	if c.LLCMPKI > 2 {
		t.Fatalf("exchange2 LLC MPKI %.2f, want near-zero", c.LLCMPKI)
	}
}

func TestMemoryBoundIPCLow(t *testing.T) {
	cmp, err := Run(scaleModel(t, 1), Homogeneous(trace.ByName("exchange2"), 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Run(scaleModel(t, 1), Homogeneous(trace.ByName("lbm"), 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if mem.Cores[0].IPC >= cmp.Cores[0].IPC {
		t.Fatalf("lbm IPC %.3f >= exchange2 IPC %.3f", mem.Cores[0].IPC, cmp.Cores[0].IPC)
	}
	if mem.Cores[0].LLCMPKI < 2 {
		t.Fatalf("lbm LLC MPKI %.2f, want streaming-level misses", mem.Cores[0].LLCMPKI)
	}
	if mem.Cores[0].BWShare < 0.1 {
		t.Fatalf("lbm bandwidth share %.3f, want substantial", mem.Cores[0].BWShare)
	}
}

func TestContentionDegradesMemoryBoundIPC(t *testing.T) {
	// The core methodological premise: per-core IPC of a memory-bound
	// program is lower when co-run on the target than alone on an
	// NRS-style machine with full-size shared resources.
	nrs, err := config.ScaleModel(config.Target(), 1, config.ScaleModelOptions{Policy: config.NRS})
	if err != nil {
		t.Fatal(err)
	}
	alone, err := Run(nrs, Homogeneous(trace.ByName("lbm"), 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	target, err := Run(config.Target(), Homogeneous(trace.ByName("lbm"), 32), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if target.AverageIPC() >= alone.Cores[0].IPC*0.95 {
		t.Fatalf("no contention: target per-core IPC %.3f vs isolated %.3f",
			target.AverageIPC(), alone.Cores[0].IPC)
	}
}

func TestPRSScaleModelTracksTarget(t *testing.T) {
	// A PRS single-core scale model should be much closer to target
	// per-core IPC than the NRS one for a memory-bound benchmark.
	prsRes, err := Run(scaleModel(t, 1), Homogeneous(trace.ByName("lbm"), 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	nrsCfg, _ := config.ScaleModel(config.Target(), 1, config.ScaleModelOptions{Policy: config.NRS})
	nrsRes, err := Run(nrsCfg, Homogeneous(trace.ByName("lbm"), 1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	target, err := Run(config.Target(), Homogeneous(trace.ByName("lbm"), 32), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	actual := target.AverageIPC()
	errOf := func(pred float64) float64 {
		e := (pred - actual) / actual
		if e < 0 {
			return -e
		}
		return e
	}
	if errOf(prsRes.Cores[0].IPC) >= errOf(nrsRes.Cores[0].IPC) {
		t.Fatalf("PRS error %.3f not below NRS error %.3f (pred %.3f / %.3f vs actual %.3f)",
			errOf(prsRes.Cores[0].IPC), errOf(nrsRes.Cores[0].IPC),
			prsRes.Cores[0].IPC, nrsRes.Cores[0].IPC, actual)
	}
}

func TestHeterogeneousMixRuns(t *testing.T) {
	wl := Workload{Profiles: []*trace.Profile{
		trace.ByName("lbm"), trace.ByName("exchange2"),
		trace.ByName("mcf"), trace.ByName("gcc"),
	}}
	res, err := Run(scaleModel(t, 4), wl, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 4 {
		t.Fatalf("%d results, want 4", len(res.Cores))
	}
	// The compute-bound program should retire the most instructions and
	// terminate the run.
	var maxInstr uint64
	maxName := ""
	for _, c := range res.Cores {
		if c.Instructions > maxInstr {
			maxInstr, maxName = c.Instructions, c.Benchmark
		}
	}
	if maxName != "exchange2" {
		t.Errorf("fastest program was %s, expected exchange2", maxName)
	}
	if maxInstr < fastOpts().Instructions {
		t.Errorf("first-finisher retired %d < budget", maxInstr)
	}
}

func TestFirstFinisherTerminates(t *testing.T) {
	// In a mixed workload, slow programs must NOT be required to reach the
	// full budget (paper: stop when the first program finishes).
	wl := Workload{Profiles: []*trace.Profile{
		trace.ByName("exchange2"), trace.ByName("mcf"),
	}}
	res, err := Run(scaleModel(t, 2), wl, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var mcf CoreResult
	for _, c := range res.Cores {
		if c.Benchmark == "mcf" {
			mcf = c
		}
	}
	if mcf.Instructions >= fastOpts().Instructions {
		t.Fatalf("mcf retired %d, expected to be cut short by exchange2 finishing", mcf.Instructions)
	}
}

func TestResultAggregates(t *testing.T) {
	res, err := Run(scaleModel(t, 2), Homogeneous(trace.ByName("gcc"), 2), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.SystemIPC() <= 0 {
		t.Fatal("non-positive system IPC")
	}
	wantAvg := res.SystemIPC() / 2
	if res.AverageIPC() != wantAvg {
		t.Fatalf("average IPC %.3f, want %.3f", res.AverageIPC(), wantAvg)
	}
	if res.ElapsedCycles <= 0 || res.WallClock <= 0 {
		t.Fatal("missing elapsed/wall-clock accounting")
	}
	var empty Result
	if empty.AverageIPC() != 0 {
		t.Fatal("empty result average IPC != 0")
	}
}

func TestOptionsNormalization(t *testing.T) {
	var o Options
	n := o.normalized()
	d := DefaultOptions()
	if n.Instructions != d.Instructions || n.Warmup != d.Warmup ||
		n.EpochCycles != d.EpochCycles || n.CapacityScale != d.CapacityScale {
		t.Fatalf("normalized zero options %+v != defaults %+v", n, d)
	}
}

func TestPrefetcherHelpsStreaming(t *testing.T) {
	// An L2 stream prefetcher must raise streaming IPC and leave the
	// pointer chaser essentially unchanged.
	run := func(name string, pf bool) float64 {
		opts := fastOpts()
		opts.EnablePrefetch = pf
		res, err := Run(scaleModel(t, 1), Homogeneous(trace.ByName(name), 1), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cores[0].IPC
	}
	lbmOff, lbmOn := run("lbm", false), run("lbm", true)
	if lbmOn <= lbmOff*1.02 {
		t.Errorf("prefetch did not help lbm: %.3f -> %.3f", lbmOff, lbmOn)
	}
	mcfOff, mcfOn := run("mcf", false), run("mcf", true)
	if ratio := mcfOn / mcfOff; ratio < 0.9 || ratio > 1.15 {
		t.Errorf("prefetch changed mcf too much: %.3f -> %.3f", mcfOff, mcfOn)
	}
}

func TestAblationOptionsChangeResults(t *testing.T) {
	base := fastOpts()
	noFB := base
	noFB.NoFeedback = true
	part := base
	part.PartitionedLLC = true

	run := func(o Options) float64 {
		res, err := Run(config.Target(), Homogeneous(trace.ByName("lbm"), 32), o)
		if err != nil {
			t.Fatal(err)
		}
		return res.AverageIPC()
	}
	full := run(base)
	unfed := run(noFB)
	// Without bandwidth feedback a saturating workload runs unrealistically
	// fast on the loaded target.
	if unfed <= full*1.1 {
		t.Errorf("NoFeedback target IPC %.3f not well above full model %.3f", unfed, full)
	}
	parted := run(part)
	if parted == full {
		t.Error("PartitionedLLC produced bit-identical results; ablation not wired?")
	}
}
