package sim

import (
	"bytes"
	"reflect"
	"testing"

	"scalesim/internal/trace"
)

// tracedOpts enables telemetry on top of the fast unit-test options.
func tracedOpts(sink TelemetrySink, warmup bool) Options {
	o := fastOpts()
	o.Telemetry = &TelemetryOptions{Sink: sink, Warmup: warmup}
	return o
}

func TestTelemetryCollectsMeasuredEpochs(t *testing.T) {
	res, err := Run(scaleModel(t, 2), Homogeneous(trace.ByName("mcf"), 2), tracedOpts(nil, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("traced run produced an empty trace")
	}
	for i, e := range res.Trace {
		if e.Phase != PhaseMeasure {
			t.Fatalf("epoch %d: phase %q, want %q (warmup observation is off)", i, e.Phase, PhaseMeasure)
		}
		if e.Epoch != i {
			t.Fatalf("epoch %d: index %d", i, e.Epoch)
		}
		if len(e.Cores) != 2 {
			t.Fatalf("epoch %d: %d core records, want 2", i, len(e.Cores))
		}
		if e.Config == "" || e.EpochCycles <= 0 {
			t.Fatalf("epoch %d: incomplete snapshot %+v", i, e)
		}
	}
	// The measured-phase snapshots must account for the full instruction
	// budget of each core.
	var instr uint64
	for _, e := range res.Trace {
		instr += e.Cores[0].Instructions
	}
	if instr != res.Cores[0].Instructions {
		t.Fatalf("trace accounts for %d instructions on core 0, result reports %d", instr, res.Cores[0].Instructions)
	}
	for i, e := range res.Trace {
		c := e.Cores[0]
		if c.Benchmark != "mcf" {
			t.Fatalf("epoch %d: benchmark %q", i, c.Benchmark)
		}
		if c.L1DHitRate < 0 || c.L1DHitRate > 1 || c.LLCHitRate < 0 || c.LLCHitRate > 1 {
			t.Fatalf("epoch %d: hit rate out of [0,1]: %+v", i, c)
		}
	}
}

func TestTelemetryWarmupCoverage(t *testing.T) {
	res, err := Run(scaleModel(t, 1), Homogeneous(trace.ByName("gcc"), 1), tracedOpts(nil, true))
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for _, e := range res.Trace {
		if e.Phase == PhaseWarmup {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("Warmup: true but no warmup epochs in the trace")
	}
	// Warmup epochs come first, and the epoch index is monotonic across the
	// phase boundary.
	for i, e := range res.Trace {
		if e.Epoch != i {
			t.Fatalf("epoch %d: index %d", i, e.Epoch)
		}
		if i > 0 && res.Trace[i-1].Phase == PhaseMeasure && e.Phase == PhaseWarmup {
			t.Fatalf("warmup epoch %d after a measured epoch", i)
		}
	}
}

// TestTelemetryDoesNotPerturbResults pins the zero-overhead contract's
// correctness half: a traced run retires the same instructions in the same
// cycles as an untraced one.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	wl := Homogeneous(trace.ByName("lbm"), 2)
	plain, err := Run(scaleModel(t, 2), wl, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(scaleModel(t, 2), wl, tracedOpts(nil, true))
	if err != nil {
		t.Fatal(err)
	}
	// WallClock is host time and Trace is the telemetry itself; everything
	// else must match bit for bit.
	plain.WallClock, traced.WallClock = 0, 0
	traced.Trace = nil
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("telemetry perturbed the simulation:\nuntraced: %+v\ntraced:   %+v", plain, traced)
	}
}

// TestTelemetryJSONLDeterminism pins the reproducibility half: two traced
// runs of the same job stream byte-identical JSONL.
func TestTelemetryJSONLDeterminism(t *testing.T) {
	stream := func() []byte {
		var buf bytes.Buffer
		sink := NewJSONLSink(&buf)
		_, err := Run(scaleModel(t, 2), Homogeneous(trace.ByName("mcf"), 2), tracedOpts(sink, true))
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := stream(), stream()
	if len(a) == 0 {
		t.Fatal("sink received no snapshots")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("traced runs differ: %d vs %d bytes", len(a), len(b))
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	sink := NewJSONLSink(failWriter{})
	sink.Epoch(EpochSnapshot{})
	if sink.Err() == nil {
		t.Fatal("write error not reported")
	}
	sink.Epoch(EpochSnapshot{}) // must not panic or clear the error
	if sink.Err() == nil {
		t.Fatal("sticky error cleared")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }
