package sim

import (
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/trace"
)

func TestDebugCPI(t *testing.T) {
	sm, _ := config.ScaleModel(config.Target(), 1, config.ScaleModelOptions{Policy: config.PRSFull})
	for _, name := range []string{"exchange2", "leela", "gcc", "lbm", "mcf", "milc"} {
		res, err := Run(sm, Homogeneous(trace.ByName(name), 1), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		c := res.Cores[0]
		t.Logf("%-10s IPC %.3f CPI %.3f base %.3f branch %.3f mem %.3f fe %.3f | L1D %.1f L2 %.1f LLC %.2f MPKI | bw %.3f B/c mispred %.4f\n",
			name, c.IPC, 1/c.IPC,
			float64(c.BaseCycles)/float64(c.Instructions), float64(c.BranchCycles)/float64(c.Instructions),
			float64(c.MemoryCycles)/float64(c.Instructions), float64(c.FrontendCycles)/float64(c.Instructions),
			c.L1DMPKI, c.L2MPKI, c.LLCMPKI, c.BWBytesPerCycle, c.BranchMispredictRate)
	}
}

// TestDebugCalibration prints the Fig-3-style construction table for the
// whole suite when run with -v (manual calibration aid).
func TestDebugCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration table")
	}
	opts := fastOpts()
	target := config.Target()
	t.Logf("%-11s %7s %7s %7s | %7s %7s | %6s %6s\n",
		"bench", "NRS1", "PRS1", "tgt32", "errNRS", "errPRS", "MPKI1", "BW1")
	for _, p := range trace.Suite() {
		nrsCfg, _ := config.ScaleModel(target, 1, config.ScaleModelOptions{Policy: config.NRS})
		prsCfg, _ := config.ScaleModel(target, 1, config.ScaleModelOptions{Policy: config.PRSFull})
		nrs, err := Run(nrsCfg, Homogeneous(p, 1), opts)
		if err != nil {
			t.Fatal(err)
		}
		prs, err := Run(prsCfg, Homogeneous(p, 1), opts)
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := Run(target, Homogeneous(p, 32), opts)
		if err != nil {
			t.Fatal(err)
		}
		actual := tgt.AverageIPC()
		abs := func(x float64) float64 {
			if x < 0 {
				return -x
			}
			return x
		}
		t.Logf("%-11s %7.3f %7.3f %7.3f | %6.1f%% %6.1f%% | %6.2f %6.3f\n",
			p.Name, nrs.Cores[0].IPC, prs.Cores[0].IPC, actual,
			100*abs(nrs.Cores[0].IPC-actual)/actual,
			100*abs(prs.Cores[0].IPC-actual)/actual,
			prs.Cores[0].LLCMPKI, prs.Cores[0].BWBytesPerCycle)
	}
}

func TestDebugTarget32(t *testing.T) {
	for _, name := range []string{"povray", "namd", "deepsjeng", "xz", "exchange2"} {
		res, err := Run(config.Target(), Homogeneous(trace.ByName(name), 32), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		c := res.Cores[5]
		t.Logf("%-10s IPC %.3f CPI %.3f base %.3f branch %.3f mem %.3f fe %.3f | L1D %.1f L2 %.1f LLC %.2f MPKI | bw %.3f B/c | dramU %.2f nocU %.2f\n",
			name, c.IPC, 1/c.IPC,
			float64(c.BaseCycles)/float64(c.Instructions), float64(c.BranchCycles)/float64(c.Instructions),
			float64(c.MemoryCycles)/float64(c.Instructions), float64(c.FrontendCycles)/float64(c.Instructions),
			c.L1DMPKI, c.L2MPKI, c.LLCMPKI, c.BWBytesPerCycle, res.DRAMUtilization, res.NoCUtilization)
	}
}

func TestDebugLevels(t *testing.T) {
	opts := fastOpts().normalized()
	sm, _ := config.ScaleModel(config.Target(), 1, config.ScaleModelOptions{Policy: config.PRSFull})
	for _, name := range []string{"povray", "exchange2", "deepsjeng"} {
		m, err := newMachine(sm, Homogeneous(trace.ByName(name), 1), opts)
		if err != nil {
			t.Fatal(err)
		}
		for m.cores[0].Stats.Instructions < 400000 {
			m.cores[0].Run(opts.EpochCycles, ^uint64(0))
			m.mesh.EndEpoch(opts.EpochCycles)
			m.mem.EndEpoch(opts.EpochCycles)
		}
		ki := float64(m.cores[0].Stats.Instructions) / 1000
		l1i, l1d, l2 := m.l1i[0].Stats, m.l1d[0].Stats, m.l2[0].Stats
		llc := m.llc.TotalStats()
		t.Logf("%-10s L1I acc %.0f mis %.1f | L1D acc %.0f mis %.1f wb %.1f | L2 acc %.0f mis %.1f wb %.1f | LLC acc %.1f mis %.1f wb %.1f (per KI)\n",
			name,
			float64(l1i.Accesses)/ki, float64(l1i.Misses)/ki,
			float64(l1d.Accesses)/ki, float64(l1d.Misses)/ki, float64(l1d.Writebacks)/ki,
			float64(l2.Accesses)/ki, float64(l2.Misses)/ki, float64(l2.Writebacks)/ki,
			float64(llc.Accesses)/ki, float64(llc.Misses)/ki, float64(llc.Writebacks)/ki)
	}
}
