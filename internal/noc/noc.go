// Package noc models the 2D mesh on-chip network: XY-routed hop latency
// between tiles plus a queuing delay on the mesh's bisection (cross-section)
// links driven by measured traffic.
//
// The model is epoch-based, matching the simulator's contention scheme: the
// simulator accounts every message's bytes during an epoch; at the epoch
// boundary the bisection utilization is recomputed and determines the
// congestion delay applied to bisection-crossing messages in the next epoch.
// This is the same feedback abstraction high-speed simulators like Sniper
// use in their default network models.
package noc

import (
	"fmt"

	"scalesim/internal/config"
	"scalesim/internal/units"
)

// Mesh is the mesh NoC state for one simulated machine.
type Mesh struct {
	w, h       int
	hopLatency units.Cycles
	// linkBytesPerCycle is the capacity of one cross-section link expressed
	// in bytes per core clock cycle.
	linkBytesPerCycle units.BytesPerCycle
	csls              int

	// Epoch accounting.
	epochBisectionBytes units.Bytes
	util                float64 // smoothed bisection utilization

	// Cumulative statistics.
	TotalMessages       uint64
	TotalBisectionBytes units.Bytes
	TotalBytes          units.Bytes
}

// flitBytes is the link arbitration granularity: the service time underlying
// the M/D/1 queue is that of one 64-byte flit group.
const flitBytes = units.Bytes(64)

// New builds a mesh from cfg for a machine clocked at freqGHz. Bandwidth is
// not capacity-scaled: the global miniaturisation shortens runs but the
// bytes-per-cycle ratios between configurations are what matter, and those
// come straight from cfg.
func New(cfg config.NoCConfig, freqGHz float64) (*Mesh, error) {
	if cfg.MeshWidth < 1 || cfg.MeshHeight < 1 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.MeshWidth, cfg.MeshHeight)
	}
	if cfg.CrossSectionLinks < 1 || cfg.LinkGBps <= 0 {
		return nil, fmt.Errorf("noc: invalid cross-section %d links x %v", cfg.CrossSectionLinks, cfg.LinkGBps)
	}
	if freqGHz <= 0 {
		return nil, fmt.Errorf("noc: invalid frequency %v GHz", freqGHz)
	}
	return &Mesh{
		w:                 cfg.MeshWidth,
		h:                 cfg.MeshHeight,
		hopLatency:        units.Cycles(cfg.HopLatency),
		linkBytesPerCycle: units.FromGBps(float64(cfg.LinkGBps), freqGHz),
		csls:              cfg.CrossSectionLinks,
	}, nil
}

// Tile returns the (x, y) mesh coordinates of tile id (row-major layout).
func (m *Mesh) Tile(id int) (x, y int) { return id % m.w, id / m.w }

// Tiles returns the number of tiles in the mesh.
func (m *Mesh) Tiles() int { return m.w * m.h }

// MCTile returns the tile adjacent to memory controller mc out of total.
// Controllers are spread across the top and bottom mesh rows, as in typical
// server floorplans.
func (m *Mesh) MCTile(mc, total int) int {
	if total <= 0 {
		return 0
	}
	mc = mc % total
	half := (total + 1) / 2
	if mc < half {
		// Bottom row (y = 0), spread across x.
		x := (mc*m.w + m.w/2) / max(half, 1) % m.w
		return x
	}
	// Top row (y = h-1).
	i := mc - half
	x := (i*m.w + m.w/2) / max(total-half, 1) % m.w
	return (m.h-1)*m.w + x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Route returns the XY-routing hop count between two tiles and whether the
// route crosses the horizontal bisection cut (between rows h/2-1 and h/2).
func (m *Mesh) Route(from, to int) (hops int, crossesBisection bool) {
	fx, fy := m.Tile(from)
	tx, ty := m.Tile(to)
	dx, dy := tx-fx, ty-fy
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	hops = dx + dy
	if m.h >= 2 {
		cut := m.h / 2
		crossesBisection = (fy < cut) != (ty < cut)
	}
	return hops, crossesBisection
}

// Latency returns the current network latency in cycles for a message of
// size bytes between two tiles, and records the traffic for epoch
// accounting. The latency is hop propagation plus, for bisection-crossing
// messages, the congestion delay derived from last epoch's utilization.
func (m *Mesh) Latency(from, to int, bytes units.Bytes) units.Cycles {
	hops, crossing := m.Route(from, to)
	m.TotalMessages++
	m.TotalBytes += bytes
	lat := m.hopLatency.Scale(float64(hops))
	if crossing {
		m.epochBisectionBytes += bytes
		m.TotalBisectionBytes += bytes
		lat += m.queueDelay()
	}
	return lat
}

// Acc accumulates one core's mesh traffic during an epoch of parallel
// execution. Latencies read only the utilization frozen at the last epoch
// boundary, so accounting traffic thread-locally and merging it at the
// barrier (in canonical core order) is exact: the Mesh sees the same sums
// it would have accumulated serially.
type Acc struct {
	messages       uint64
	bytes          units.Bytes
	bisectionBytes units.Bytes
}

// LatencyInto is Latency with the traffic accounted into a instead of the
// shared Mesh state; the returned latency is identical. The Mesh itself is
// only read, so concurrent callers with distinct accumulators are safe.
func (m *Mesh) LatencyInto(a *Acc, from, to int, bytes units.Bytes) units.Cycles {
	hops, crossing := m.Route(from, to)
	a.messages++
	a.bytes += bytes
	lat := m.hopLatency.Scale(float64(hops))
	if crossing {
		a.bisectionBytes += bytes
		lat += m.queueDelay()
	}
	return lat
}

// Merge folds a drained accumulator into the shared epoch and cumulative
// counters, exactly as if its traffic had been accounted via Latency.
func (m *Mesh) Merge(a *Acc) {
	m.TotalMessages += a.messages
	m.TotalBytes += a.bytes
	m.epochBisectionBytes += a.bisectionBytes
	m.TotalBisectionBytes += a.bisectionBytes
	*a = Acc{}
}

// queueDelay is an M/D/1-style waiting time on a cross-section link:
// W = s * rho / (2 * (1 - rho)), with s the service time of a 64-byte flit
// group and rho the smoothed bisection utilization, capped below 1.
func (m *Mesh) queueDelay() units.Cycles {
	rho := m.util
	if rho > 0.98 {
		rho = 0.98
	}
	if rho <= 0 {
		return 0
	}
	service := m.linkBytesPerCycle.Transfer(flitBytes)
	return service.Scale(rho / (2 * (1 - rho)))
}

// EndEpoch folds the traffic accounted since the previous call into the
// utilization estimate, given the epoch length in cycles.
func (m *Mesh) EndEpoch(cycles units.Cycles) {
	if cycles <= 0 {
		return
	}
	capacity := m.linkBytesPerCycle.Capacity(cycles).Scale(float64(m.csls))
	inst := 0.0
	if capacity > 0 {
		inst = float64(m.epochBisectionBytes) / float64(capacity)
	}
	if inst > 1.5 {
		inst = 1.5 // bounded overshoot; the CPI feedback throttles demand
	}
	// Exponential smoothing stabilises the fixed point across epochs.
	m.util = 0.5*m.util + 0.5*inst
	m.epochBisectionBytes = 0
}

// Utilization returns the smoothed bisection utilization (can exceed 1
// transiently when demand overshoots capacity).
func (m *Mesh) Utilization() float64 { return m.util }

// QueueDelay returns the congestion delay currently charged to
// bisection-crossing messages — the telemetry view of queueDelay.
func (m *Mesh) QueueDelay() units.Cycles { return m.queueDelay() }

// AverageHops returns the mean XY hop distance between two uniformly random
// distinct tiles — a sanity metric used in tests and reports.
func (m *Mesh) AverageHops() float64 {
	if m.Tiles() == 1 {
		return 0
	}
	total, pairs := 0, 0
	for a := 0; a < m.Tiles(); a++ {
		for b := 0; b < m.Tiles(); b++ {
			if a == b {
				continue
			}
			h, _ := m.Route(a, b)
			total += h
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}
