package noc

import (
	"math"
	"testing"

	"scalesim/internal/config"
)

func mesh4x8(t *testing.T) *Mesh {
	t.Helper()
	m, err := New(config.NoCConfig{
		MeshWidth: 4, MeshHeight: 8, CrossSectionLinks: 4, LinkGBps: 32, HopLatency: 2,
	}, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewErrors(t *testing.T) {
	bad := []config.NoCConfig{
		{MeshWidth: 0, MeshHeight: 4, CrossSectionLinks: 1, LinkGBps: 4},
		{MeshWidth: 4, MeshHeight: 4, CrossSectionLinks: 0, LinkGBps: 4},
		{MeshWidth: 4, MeshHeight: 4, CrossSectionLinks: 1, LinkGBps: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, 4.0); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(config.NoCConfig{MeshWidth: 2, MeshHeight: 2, CrossSectionLinks: 1, LinkGBps: 4}, 0); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestTileLayout(t *testing.T) {
	m := mesh4x8(t)
	if m.Tiles() != 32 {
		t.Fatalf("tiles = %d, want 32", m.Tiles())
	}
	cases := map[int][2]int{0: {0, 0}, 3: {3, 0}, 4: {0, 1}, 31: {3, 7}}
	for id, want := range cases {
		x, y := m.Tile(id)
		if x != want[0] || y != want[1] {
			t.Errorf("tile %d at (%d,%d), want (%d,%d)", id, x, y, want[0], want[1])
		}
	}
}

func TestRouteHops(t *testing.T) {
	m := mesh4x8(t)
	cases := []struct {
		from, to, hops int
		crossing       bool
	}{
		{0, 0, 0, false},
		{0, 1, 1, false},   // same row
		{0, 4, 1, false},   // one row up
		{0, 31, 10, true},  // corner to corner: 3 + 7
		{12, 16, 1, true},  // row 3 -> row 4 crosses the cut
		{16, 12, 1, true},  // symmetric
		{16, 20, 1, false}, // rows 4 -> 5, above the cut
	}
	for _, c := range cases {
		hops, crossing := m.Route(c.from, c.to)
		if hops != c.hops || crossing != c.crossing {
			t.Errorf("Route(%d,%d) = (%d,%v), want (%d,%v)", c.from, c.to, hops, crossing, c.hops, c.crossing)
		}
	}
}

func TestSingleTileMesh(t *testing.T) {
	m, err := New(config.NoCConfig{MeshWidth: 1, MeshHeight: 1, CrossSectionLinks: 1, LinkGBps: 4, HopLatency: 2}, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	hops, crossing := m.Route(0, 0)
	if hops != 0 || crossing {
		t.Fatalf("1x1 route = (%d,%v), want (0,false)", hops, crossing)
	}
	if m.AverageHops() != 0 {
		t.Fatal("1x1 average hops != 0")
	}
}

func TestLatencyGrowsWithUtilization(t *testing.T) {
	m := mesh4x8(t)
	// Unloaded: crossing latency is pure hop latency.
	l0 := m.Latency(0, 31, 64)
	if l0 != 20 {
		t.Fatalf("unloaded corner-to-corner latency %v, want 10 hops x 2 = 20", l0)
	}
	// Saturate the bisection for several epochs.
	for e := 0; e < 10; e++ {
		for i := 0; i < 10000; i++ {
			m.Latency(0, 31, 64)
		}
		m.EndEpoch(1000) // tiny epoch => huge utilization
	}
	lLoaded := m.Latency(0, 31, 64)
	if lLoaded <= l0+10 {
		t.Fatalf("loaded latency %v not meaningfully above unloaded %v", lLoaded, l0)
	}
	// Non-crossing messages see no congestion delay.
	lLocal := m.Latency(0, 1, 64)
	if lLocal != 2 {
		t.Fatalf("non-crossing latency %v, want 2", lLocal)
	}
}

func TestEndEpochDecaysUtilization(t *testing.T) {
	m := mesh4x8(t)
	for i := 0; i < 10000; i++ {
		m.Latency(0, 31, 64)
	}
	m.EndEpoch(1000)
	u1 := m.Utilization()
	if u1 <= 0 {
		t.Fatal("utilization not raised by traffic")
	}
	// Idle epochs decay it.
	for e := 0; e < 20; e++ {
		m.EndEpoch(100000)
	}
	if u := m.Utilization(); u > u1/100 {
		t.Fatalf("utilization %v did not decay from %v", u, u1)
	}
}

func TestUtilizationBounded(t *testing.T) {
	m := mesh4x8(t)
	for e := 0; e < 50; e++ {
		for i := 0; i < 100000; i++ {
			m.Latency(0, 31, 64)
		}
		m.EndEpoch(1)
	}
	if u := m.Utilization(); u > 1.5 {
		t.Fatalf("utilization %v exceeds overshoot bound 1.5", u)
	}
	// Queue delay must stay finite at saturation.
	if l := m.Latency(0, 31, 64); math.IsInf(float64(l), 0) || math.IsNaN(float64(l)) || l > 1e6 {
		t.Fatalf("saturated latency %v not finite/bounded", l)
	}
}

func TestMCTilesOnEdges(t *testing.T) {
	m := mesh4x8(t)
	for mc := 0; mc < 8; mc++ {
		tile := m.MCTile(mc, 8)
		_, y := m.Tile(tile)
		if y != 0 && y != 7 {
			t.Errorf("MC %d at tile %d (row %d); controllers must sit on top/bottom rows", mc, tile, y)
		}
	}
	// All 8 MCs map to distinct tiles on a 4x8 mesh.
	seen := map[int]bool{}
	for mc := 0; mc < 8; mc++ {
		tile := m.MCTile(mc, 8)
		if seen[tile] {
			t.Errorf("MC %d shares tile %d", mc, tile)
		}
		seen[tile] = true
	}
}

func TestMCTileSingleController(t *testing.T) {
	m, err := New(config.NoCConfig{MeshWidth: 1, MeshHeight: 2, CrossSectionLinks: 1, LinkGBps: 8, HopLatency: 2}, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	tile := m.MCTile(0, 1)
	if tile < 0 || tile >= m.Tiles() {
		t.Fatalf("MC tile %d out of mesh", tile)
	}
}

func TestAverageHopsGrowsWithMesh(t *testing.T) {
	small, _ := New(config.NoCConfig{MeshWidth: 2, MeshHeight: 2, CrossSectionLinks: 2, LinkGBps: 8, HopLatency: 2}, 4.0)
	big := mesh4x8(t)
	if small.AverageHops() >= big.AverageHops() {
		t.Fatalf("2x2 average hops %v >= 4x8 average hops %v", small.AverageHops(), big.AverageHops())
	}
}

func TestTrafficStatistics(t *testing.T) {
	m := mesh4x8(t)
	m.Latency(0, 31, 64) // crossing
	m.Latency(0, 1, 8)   // not crossing
	if m.TotalMessages != 2 {
		t.Fatalf("messages = %d, want 2", m.TotalMessages)
	}
	if m.TotalBytes != 72 {
		t.Fatalf("total bytes = %v, want 72", m.TotalBytes)
	}
	if m.TotalBisectionBytes != 64 {
		t.Fatalf("bisection bytes = %v, want 64", m.TotalBisectionBytes)
	}
}
