package ml

import (
	"fmt"
	"math"
)

// TunedSVR wraps SVR with small-grid hyperparameter selection by k-fold
// cross-validation during Fit, the way an SVR is normally deployed through
// a scikit-learn GridSearchCV pipeline. The selection is deterministic:
// folds are contiguous blocks of a fixed stride permutation.
//
// The paper's two protocols hand the SVM very different training sets (28
// homogeneous points versus 320 noisy heterogeneous samples); no single
// (C, gamma) works well for both, and cross-validated selection resolves
// this exactly as it would in practice.
type TunedSVR struct {
	// Grid entries; empty selects the default grid.
	Cs     []float64
	Gammas []float64
	// Folds for cross-validation (0 = default 4).
	Folds int
	// Epsilon is passed through to the underlying SVR.
	Epsilon float64
	// Groups optionally assigns each training row to a group (e.g. the
	// benchmark it came from); cross-validation folds then hold out whole
	// groups, matching deployment on previously unseen benchmarks. Must be
	// empty or have one entry per row.
	Groups []int

	best    *SVR
	BestC   float64
	BestGam float64
}

// Name implements Regressor.
func (t *TunedSVR) Name() string { return "SVM" }

func (t *TunedSVR) grid() (cs, gs []float64) {
	cs, gs = t.Cs, t.Gammas
	if len(cs) == 0 {
		cs = []float64{1, 10, 30}
	}
	if len(gs) == 0 {
		gs = []float64{0.33, 1}
	}
	return cs, gs
}

// Fit implements Regressor: it cross-validates the grid and refits the best
// configuration on the full training set.
func (t *TunedSVR) Fit(X [][]float64, y []float64) error {
	n, _, err := validate(X, y)
	if err != nil {
		return err
	}
	// Cross-validation estimates are too noisy to be trusted on very small
	// training sets (the homogeneous protocol trains on 28 points); there
	// the moderate default (C=1, gamma=1) is used directly. Larger sets
	// (the heterogeneous protocol's 320 samples) get the grid search.
	if n < 64 {
		t.BestC, t.BestGam = 1, 1
		t.best = &SVR{C: t.BestC, Gamma: t.BestGam, Epsilon: t.Epsilon}
		return t.best.Fit(X, y)
	}
	folds := t.Folds
	if folds <= 0 {
		folds = 4
	}
	if folds > n {
		folds = n
	}
	cs, gs := t.grid()

	// Deterministic fold assignment decorrelated from input order: stride
	// by a constant co-prime to most n. When groups are provided, whole
	// groups share a fold so validation measures generalisation to unseen
	// groups.
	assign := make([]int, n)
	if len(t.Groups) == n {
		for i := 0; i < n; i++ {
			assign[i] = (t.Groups[i] * 5) % folds
			if assign[i] < 0 {
				assign[i] += folds
			}
		}
	} else {
		for i := 0; i < n; i++ {
			assign[i] = (i * 7) % folds
		}
	}

	bestScore := math.Inf(1)
	for _, c := range cs {
		for _, g := range gs {
			score, ok := t.cvScore(X, y, assign, folds, c, g)
			if ok && score < bestScore {
				bestScore = score
				t.BestC, t.BestGam = c, g
			}
		}
	}
	if math.IsInf(bestScore, 1) {
		// Degenerate splits (e.g. n < 2 per fold): fall back to defaults.
		t.BestC, t.BestGam = 1, 1
	}
	t.best = &SVR{C: t.BestC, Gamma: t.BestGam, Epsilon: t.Epsilon}
	if err := t.best.Fit(X, y); err != nil {
		return fmt.Errorf("ml: tuned SVR refit: %w", err)
	}
	return nil
}

// cvScore returns the mean absolute validation error of (c, g) across the
// folds.
func (t *TunedSVR) cvScore(X [][]float64, y []float64, assign []int, folds int, c, g float64) (float64, bool) {
	total, count := 0.0, 0
	for f := 0; f < folds; f++ {
		var trX [][]float64
		var trY []float64
		var teX [][]float64
		var teY []float64
		for i := range X {
			if assign[i] == f {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		if len(trX) < 2 || len(teX) == 0 {
			return 0, false
		}
		m := &SVR{C: c, Gamma: g, Epsilon: t.Epsilon}
		if err := m.Fit(trX, trY); err != nil {
			return 0, false
		}
		for i := range teX {
			total += math.Abs(m.Predict(teX[i]) - teY[i])
			count++
		}
	}
	if count == 0 {
		return 0, false
	}
	return total / float64(count), true
}

// Predict implements Regressor.
func (t *TunedSVR) Predict(x []float64) float64 {
	if t.best == nil {
		panic("ml: TunedSVR.Predict before Fit")
	}
	return t.best.Predict(x)
}
