package ml

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"scalesim/internal/xrand"
)

// synth generates a noisy nonlinear regression problem resembling the
// extrapolation task: y = f(IPC, BW, sumBW) with interaction terms.
func synth(n int, seed uint64) (X [][]float64, y []float64) {
	rng := xrand.New(seed)
	for i := 0; i < n; i++ {
		ipc := 0.1 + 1.9*rng.Float64()
		bw := rng.Float64()
		co := 3 * rng.Float64()
		target := ipc / (1 + 0.8*bw*co) * (1 - 0.1*math.Tanh(co-1.5))
		X = append(X, []float64{ipc, bw, co})
		y = append(y, target+0.01*rng.NormFloat64())
	}
	return X, y
}

func regressors() []Regressor {
	return []Regressor{
		&DecisionTree{},
		&RandomForest{Trees: 50},
		&SVR{},
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	for _, r := range regressors() {
		if err := r.Fit(nil, nil); err == nil {
			t.Errorf("%s: empty training set accepted", r.Name())
		}
		if err := r.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
			t.Errorf("%s: mismatched lengths accepted", r.Name())
		}
		if err := r.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
			t.Errorf("%s: ragged rows accepted", r.Name())
		}
		if err := r.Fit([][]float64{{math.NaN()}}, []float64{1}); err == nil {
			t.Errorf("%s: NaN feature accepted", r.Name())
		}
		if err := r.Fit([][]float64{{1}}, []float64{math.Inf(1)}); err == nil {
			t.Errorf("%s: Inf target accepted", r.Name())
		}
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	for _, r := range regressors() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Predict before Fit did not panic", r.Name())
				}
			}()
			r.Predict([]float64{1, 2, 3})
		}()
	}
}

func TestFitsTrainingData(t *testing.T) {
	X, y := synth(120, 3)
	for _, r := range regressors() {
		if err := r.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		pred := make([]float64, len(y))
		for i := range X {
			pred[i] = r.Predict(X[i])
		}
		if mape := MAPE(pred, y); mape > 0.15 {
			t.Errorf("%s: training MAPE %.3f, want <= 0.15", r.Name(), mape)
		}
	}
}

func TestGeneralisation(t *testing.T) {
	Xtr, ytr := synth(200, 5)
	Xte, yte := synth(60, 99)
	for _, r := range regressors() {
		if err := r.Fit(Xtr, ytr); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		pred := make([]float64, len(yte))
		for i := range Xte {
			pred[i] = r.Predict(Xte[i])
		}
		if mape := MAPE(pred, yte); mape > 0.25 {
			t.Errorf("%s: test MAPE %.3f, want <= 0.25", r.Name(), mape)
		}
	}
}

func TestSmallTrainingSet(t *testing.T) {
	// The homogeneous protocol trains on only 28 points; estimators must
	// remain usable there.
	X, y := synth(28, 7)
	Xte, yte := synth(20, 123)
	for _, r := range regressors() {
		if err := r.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		pred := make([]float64, len(yte))
		for i := range Xte {
			pred[i] = r.Predict(Xte[i])
		}
		if mape := MAPE(pred, yte); mape > 0.5 {
			t.Errorf("%s: 28-sample test MAPE %.3f, want <= 0.5", r.Name(), mape)
		}
	}
}

func TestConstantTarget(t *testing.T) {
	X, _ := synth(40, 9)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 0.7
	}
	for _, r := range regressors() {
		if err := r.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if p := r.Predict(X[3]); math.Abs(p-0.7) > 1e-6 {
			t.Errorf("%s: constant-target prediction %.4f, want 0.7", r.Name(), p)
		}
	}
}

func TestDeterministicFit(t *testing.T) {
	X, y := synth(100, 11)
	probe := []float64{1.0, 0.5, 1.5}
	for _, mk := range []func() Regressor{
		func() Regressor { return &DecisionTree{} },
		func() Regressor { return &RandomForest{Trees: 30, Seed: 4} },
		func() Regressor { return &SVR{} },
	} {
		a, b := mk(), mk()
		if err := a.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if a.Predict(probe) != b.Predict(probe) {
			t.Errorf("%s: refit changed prediction", a.Name())
		}
	}
}

func TestTreeStructure(t *testing.T) {
	X, y := synth(200, 13)
	tr := &DecisionTree{MaxDepth: 4, MinLeaf: 5}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 4 {
		t.Errorf("depth %d exceeds MaxDepth 4", d)
	}
	if l := tr.Leaves(); l < 2 || l > 16 {
		t.Errorf("leaves %d outside [2, 16] for depth-4 tree", l)
	}
}

func TestTreeStepFunction(t *testing.T) {
	// A tree should represent an axis-aligned step exactly.
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		v := float64(i) / 50
		X = append(X, []float64{v})
		if v < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 2)
		}
	}
	tr := &DecisionTree{}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := tr.Predict([]float64{0.2}); p != 1 {
		t.Errorf("step low side = %v, want 1", p)
	}
	if p := tr.Predict([]float64{0.8}); p != 2 {
		t.Errorf("step high side = %v, want 2", p)
	}
}

func TestForestSmoothsTree(t *testing.T) {
	// On noisy data, the forest's test error should not exceed a single
	// unpruned tree's by much; typically it is lower.
	Xtr, ytr := synth(150, 17)
	Xte, yte := synth(80, 171)
	tree := &DecisionTree{}
	forest := &RandomForest{Trees: 80, Seed: 2}
	if err := tree.Fit(Xtr, ytr); err != nil {
		t.Fatal(err)
	}
	if err := forest.Fit(Xtr, ytr); err != nil {
		t.Fatal(err)
	}
	mape := func(r Regressor) float64 {
		pred := make([]float64, len(yte))
		for i := range Xte {
			pred[i] = r.Predict(Xte[i])
		}
		return MAPE(pred, yte)
	}
	tm, fm := mape(tree), mape(forest)
	if fm > tm*1.2 {
		t.Errorf("forest MAPE %.3f much worse than tree MAPE %.3f", fm, tm)
	}
	if forest.Size() != 80 {
		t.Errorf("forest size %d, want 80", forest.Size())
	}
}

func TestSVRSmoothNonlinearFit(t *testing.T) {
	// SVR with RBF must fit a smooth nonlinearity better than a linear
	// baseline would: check it tracks y = sin shape.
	var X [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		v := float64(i) / 60 * 3
		X = append(X, []float64{v})
		y = append(y, math.Sin(v))
	}
	s := &SVR{Epsilon: 0.01}
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range X {
		if e := math.Abs(s.Predict(X[i]) - y[i]); e > worst {
			worst = e
		}
	}
	if worst > 0.15 {
		t.Errorf("SVR worst-case error %.3f on sin fit, want <= 0.15", worst)
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean[0] != 3 || s.Mean[1] != 10 {
		t.Fatalf("means %v, want [3 10]", s.Mean)
	}
	out := s.TransformAll(X)
	// Column 0: mean 0, unit variance; column 1 constant -> all zeros.
	sum := 0.0
	for _, r := range out {
		sum += r[0]
		if r[1] != 0 {
			t.Fatalf("constant column not centred: %v", r[1])
		}
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("scaled column mean %v != 0", sum)
	}
	if _, err := FitScaler(nil); err == nil {
		t.Fatal("empty scaler input accepted")
	}
}

func TestScalerRoundTripProperty(t *testing.T) {
	rng := xrand.New(23)
	X, _ := synth(50, 29)
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	// Property: transform is affine and invertible for non-constant cols.
	check := func(i uint8) bool {
		row := X[int(i)%len(X)]
		tr := s.Transform(row)
		for j := range tr {
			back := tr[j]*s.Scale[j] + s.Mean[j]
			if math.Abs(back-row[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{1, 1, 4}
	if got := MAE(pred, act); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v, want 2/3", got)
	}
	wantMAPE := (0 + 1.0 + 1.0/4) / 3
	if got := MAPE(pred, act); math.Abs(got-wantMAPE) > 1e-12 {
		t.Errorf("MAPE = %v, want %v", got, wantMAPE)
	}
	if !math.IsNaN(MAPE([]float64{1}, []float64{0})) {
		t.Error("MAPE with zero actual should be NaN")
	}
	if !math.IsNaN(MAE(nil, nil)) {
		t.Error("MAE of empty slices should be NaN")
	}
}

// TestMAPESkipsZeroTargets pins the zero-target semantics: a single
// degenerate point must be skipped (and counted), not blank the whole
// batch's error figure to NaN.
func TestMAPESkipsZeroTargets(t *testing.T) {
	pred := []float64{1, 2, 3, 5}
	act := []float64{1, 0, 4, 4}
	// Point 1 has a zero target and is skipped; the mean covers the rest.
	want := (0 + 1.0/4 + 1.0/4) / 3
	if got := MAPE(pred, act); math.Abs(got-want) > 1e-12 {
		t.Errorf("MAPE = %v, want %v (zero-target point skipped)", got, want)
	}
	got, skipped := MAPESkipZero(pred, act)
	if math.Abs(got-want) > 1e-12 || skipped != 1 {
		t.Errorf("MAPESkipZero = (%v, %d), want (%v, 1)", got, skipped, want)
	}
	// Only when every target is zero is there no defined error at all.
	if m, sk := MAPESkipZero([]float64{1, 2}, []float64{0, 0}); !math.IsNaN(m) || sk != 2 {
		t.Errorf("all-zero targets: MAPESkipZero = (%v, %d), want (NaN, 2)", m, sk)
	}
	if m, sk := MAPESkipZero([]float64{1}, []float64{1, 2}); !math.IsNaN(m) || sk != 0 {
		t.Errorf("mismatched lengths: MAPESkipZero = (%v, %d), want (NaN, 0)", m, sk)
	}
}

// TestTransformCheckedDimension pins the scaler shape contract: a
// dimension-mismatched vector yields ErrDimension from the checked form
// and a diagnostic panic (never a silent mis-scale) from Transform.
func TestTransformCheckedDimension(t *testing.T) {
	s, err := FitScaler([][]float64{{1, 2, 3}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TransformChecked([]float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("short vector: err = %v, want ErrDimension", err)
	}
	if _, err := s.TransformChecked([]float64{1, 2, 3, 4}); !errors.Is(err, ErrDimension) {
		t.Errorf("long vector: err = %v, want ErrDimension", err)
	}
	if out, err := s.TransformChecked([]float64{2, 3, 4}); err != nil || len(out) != 3 {
		t.Errorf("matched vector: (%v, %v), want 3 values and no error", out, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Transform with mismatched dimension did not panic")
		}
	}()
	s.Transform([]float64{1})
}

// TestPredictStats pins the forest's uncertainty estimate: the mean must
// equal Predict, a constant-target fit must report zero disagreement, and
// extrapolating far outside the training range must disagree more than
// interpolating inside it.
func TestPredictStats(t *testing.T) {
	X, y := synth(160, 7)
	f := &RandomForest{Trees: 50}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	x := []float64{1.0, 0.5, 1.5}
	mean, std := f.PredictStats(x)
	if mean != f.Predict(x) {
		t.Errorf("PredictStats mean %v != Predict %v", mean, f.Predict(x))
	}
	if std < 0 || math.IsNaN(std) {
		t.Errorf("std = %v, want finite and non-negative", std)
	}

	cf := &RandomForest{Trees: 20}
	cX := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	cy := []float64{2, 2, 2, 2, 2, 2, 2, 2}
	if err := cf.Fit(cX, cy); err != nil {
		t.Fatal(err)
	}
	if m, s := cf.PredictStats([]float64{4.5}); m != 2 || s != 0 {
		t.Errorf("constant fit: PredictStats = (%v, %v), want (2, 0)", m, s)
	}
}

// TestWriteCanonicalStable pins the model fingerprint substrate: two
// forests fitted identically encode byte-identically, and a different
// seed encodes differently.
func TestWriteCanonicalStable(t *testing.T) {
	X, y := synth(80, 3)
	enc := func(seed uint64) string {
		f := &RandomForest{Trees: 10, Seed: seed}
		if err := f.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		f.WriteCanonical(&b)
		return b.String()
	}
	if enc(1) != enc(1) {
		t.Error("identical fits produced different canonical encodings")
	}
	if enc(1) == enc(2) {
		t.Error("different seeds produced identical canonical encodings")
	}
}

// TestFinite pins the serve-time non-finite gate helper.
func TestFinite(t *testing.T) {
	if !Finite([]float64{0, -1, 2.5}) {
		t.Error("finite vector reported non-finite")
	}
	for _, bad := range [][]float64{{math.NaN()}, {1, math.Inf(1)}, {math.Inf(-1), 0}} {
		if Finite(bad) {
			t.Errorf("Finite(%v) = true, want false", bad)
		}
	}
	if !Finite(nil) {
		t.Error("empty vector should be trivially finite")
	}
}

func BenchmarkSVRFit(b *testing.B) {
	X, y := synth(320, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &SVR{}
		if err := s.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	X, y := synth(320, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &RandomForest{Trees: 100}
		if err := f.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTunedSVRSelectsAndFits(t *testing.T) {
	X, y := synth(150, 31)
	m := &TunedSVR{}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.BestC == 0 || m.BestGam == 0 {
		t.Fatalf("no hyperparameters selected: C=%v gamma=%v", m.BestC, m.BestGam)
	}
	pred := make([]float64, len(y))
	for i := range X {
		pred[i] = m.Predict(X[i])
	}
	if mape := MAPE(pred, y); mape > 0.15 {
		t.Fatalf("tuned SVR training MAPE %.3f", mape)
	}
}

func TestTunedSVRDeterministic(t *testing.T) {
	X, y := synth(80, 33)
	a, b := &TunedSVR{}, &TunedSVR{}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if a.BestC != b.BestC || a.BestGam != b.BestGam {
		t.Fatal("tuned SVR selection not deterministic")
	}
	probe := []float64{1, 0.5, 1.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("tuned SVR prediction not deterministic")
	}
}

func TestTunedSVRTinyTrainingSet(t *testing.T) {
	// Degenerate case: folds exceed samples.
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	m := &TunedSVR{Folds: 10}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2}); math.IsNaN(p) {
		t.Fatal("NaN prediction")
	}
}

func TestTunedSVRRejectsBadInput(t *testing.T) {
	m := &TunedSVR{}
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Fit did not panic")
		}
	}()
	(&TunedSVR{}).Predict([]float64{1})
}
