package ml

import (
	"fmt"
	"io"
	"math"

	"scalesim/internal/xrand"
)

// RandomForest is a bagged ensemble of CART trees with the two levels of
// randomisation the paper describes (§III-B1): each tree is trained on a
// bootstrap resample of the training set, and each tree restricts its split
// search to a random subset of the input features.
type RandomForest struct {
	// Trees is the ensemble size (0 = default 100, scikit-learn's default).
	Trees int
	// MaxDepth bounds each tree (0 = default 12).
	MaxDepth int
	// MinLeaf is each tree's minimum leaf size (0 = default 2).
	MinLeaf int
	// MaxFeatures restricts each tree's split search to a random feature
	// subset of this size (0 or >= d = all features, scikit-learn's
	// regression default).
	MaxFeatures int
	// Seed drives the bootstrap and feature sampling. The zero seed is
	// valid and deterministic.
	Seed uint64

	ensemble []*DecisionTree
	d        int
}

// Name implements Regressor.
func (f *RandomForest) Name() string { return "RF" }

// Fit implements Regressor.
func (f *RandomForest) Fit(X [][]float64, y []float64) error {
	n, d, err := validate(X, y)
	if err != nil {
		return err
	}
	trees := f.Trees
	if trees <= 0 {
		trees = 100
	}
	f.d = d
	f.ensemble = make([]*DecisionTree, 0, trees)
	rng := xrand.New(f.Seed ^ 0x5eedf04e57)

	// Feature subset size: like scikit-learn's RandomForestRegressor
	// (max_features=1.0) every tree may split on all features by default —
	// with only three inputs, dropping one per tree cripples the ensemble.
	// MaxFeatures < d enables random-subspace mode.
	sub := f.MaxFeatures
	if sub <= 0 || sub > d {
		sub = d
	}

	bx := make([][]float64, n)
	by := make([]float64, n)
	for t := 0; t < trees; t++ {
		// Bootstrap resample (with replacement).
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		perm := rng.Perm(d)
		tree := &DecisionTree{
			MaxDepth:   f.MaxDepth,
			MinLeaf:    f.MinLeaf,
			featureIdx: append([]int(nil), perm[:sub]...),
		}
		if err := tree.Fit(bx, by); err != nil {
			return fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
		f.ensemble = append(f.ensemble, tree)
	}
	return nil
}

// Predict implements Regressor: the ensemble mean.
func (f *RandomForest) Predict(x []float64) float64 {
	mean, _ := f.PredictStats(x)
	return mean
}

// PredictStats returns the ensemble mean and the population standard
// deviation of the individual tree predictions — the forest's native
// uncertainty estimate. Trees that agree have seen this neighbourhood of
// feature space in their bootstrap samples; wide disagreement flags an
// extrapolation, which is what the surrogate tier's confidence gate keys
// on.
func (f *RandomForest) PredictStats(x []float64) (mean, std float64) {
	if len(f.ensemble) == 0 {
		panic("ml: RandomForest.Predict before Fit")
	}
	var sum, sumSq float64
	for _, t := range f.ensemble {
		p := t.Predict(x)
		sum += p
		sumSq += p * p
	}
	n := float64(len(f.ensemble))
	mean = sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 { // floating-point cancellation on near-identical trees
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// Size returns the number of fitted trees.
func (f *RandomForest) Size() int { return len(f.ensemble) }

// WriteCanonical writes a canonical, process-stable encoding of the fitted
// ensemble: every tree's structure in a fixed order and format. Two
// forests trained on the same data with the same parameters produce
// byte-identical encodings, which is how the surrogate tier fingerprints
// (and regression-tests) trained models.
func (f *RandomForest) WriteCanonical(w io.Writer) {
	fmt.Fprintf(w, "rf|trees=%d|d=%d\n", len(f.ensemble), f.d)
	for i, t := range f.ensemble {
		fmt.Fprintf(w, "tree|%d\n", i)
		t.WriteCanonical(w)
	}
}
