package ml

import (
	"math"
)

// SVR is an epsilon-insensitive support vector regressor with a radial
// basis function kernel, the paper's most accurate extrapolation model
// (§III-B1). The model is the standard kernel expansion
//
//	f(x) = sum_i beta_i * K(x_i, x) + b,   K(u,v) = exp(-gamma*|u-v|^2),
//
// trained by deterministic full-batch projected subgradient descent on the
// regularised epsilon-insensitive primal objective
//
//	lambda/2 * beta' K beta + (1/n) * sum_i max(0, |f(x_i)-y_i| - eps).
//
// (scikit-learn's SVR solves the equivalent dual with SMO; for the few
// hundred training points these experiments use, the primal solver reaches
// the same optimum and is considerably simpler to verify. DESIGN.md records
// this substitution.) Features and targets are standardised internally;
// Gamma follows scikit-learn's "scale" heuristic.
type SVR struct {
	// C is the regularisation trade-off (0 = default 1, scikit-learn's
	// default).
	C float64
	// Epsilon is the insensitive-tube half-width on the *standardised*
	// target scale (0 = default 0.05).
	Epsilon float64
	// Gamma is the RBF width on standardised features (0 = default 1).
	Gamma float64
	// Epochs bounds the optimisation (0 = default 1500).
	Epochs int

	xs    *Scaler
	yMean float64
	yStd  float64
	X     [][]float64 // standardised training rows
	beta  []float64
	b     float64
	gamma float64
}

// Name implements Regressor.
func (s *SVR) Name() string { return "SVM" }

func (s *SVR) kernel(u, v []float64) float64 {
	d := 0.0
	for j := range u {
		dv := u[j] - v[j]
		d += dv * dv
	}
	return math.Exp(-s.gamma * d)
}

// Fit implements Regressor.
func (s *SVR) Fit(X [][]float64, y []float64) error {
	n, _, err := validate(X, y)
	if err != nil {
		return err
	}
	s.xs, err = FitScaler(X)
	if err != nil {
		return err
	}
	s.X = s.xs.TransformAll(X)

	// Standardise the target.
	s.yMean = mean(y)
	varY := 0.0
	for _, v := range y {
		varY += (v - s.yMean) * (v - s.yMean)
	}
	s.yStd = math.Sqrt(varY / float64(n))
	if s.yStd < 1e-12 {
		// Constant target: the mean is the exact solution.
		s.yStd = 1
		s.beta = make([]float64, n)
		s.b = 0
		s.gamma = 1
		return nil
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - s.yMean) / s.yStd
	}

	C := s.C
	if C <= 0 {
		C = 1
	}
	eps := s.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	s.gamma = s.Gamma
	if s.gamma <= 0 {
		s.gamma = 1 // features are unit-variance after scaling
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 1500
	}
	lambda := 1 / (C * float64(n))

	// Precompute the kernel matrix.
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			k := s.kernel(s.X[i], s.X[j])
			K[i][j] = k
			K[j][i] = k
		}
	}

	// Kernelised Pegasos (Shalev-Shwartz et al.) adapted to the
	// epsilon-insensitive loss: the RKHS subgradient of the objective is
	// lambda*f + (1/n) sum_i s_i K(x_i, .) with s_i the tube sign, giving
	// the update beta <- (1 - eta*lambda)*beta - (eta/n)*s under the
	// schedule eta_t = 1/(lambda*(t+2)).
	s.beta = make([]float64, n)
	s.b = 0
	f := make([]float64, n)
	sign := make([]float64, n)
	for epoch := 0; epoch < epochs; epoch++ {
		// f = K beta + b
		for i := 0; i < n; i++ {
			sum := s.b
			Ki := K[i]
			for j := 0; j < n; j++ {
				sum += Ki[j] * s.beta[j]
			}
			f[i] = sum
		}
		active := 0
		gb := 0.0
		for i := 0; i < n; i++ {
			r := f[i] - ys[i]
			switch {
			case r > eps:
				sign[i] = 1
				active++
			case r < -eps:
				sign[i] = -1
				active++
			default:
				sign[i] = 0
			}
			gb += sign[i]
		}
		if active == 0 && epoch > 0 {
			break // every point inside the tube: optimum reached
		}
		eta := 1 / (lambda * float64(epoch+2))
		shrink := 1 - eta*lambda
		for i := 0; i < n; i++ {
			s.beta[i] = shrink*s.beta[i] - eta/float64(n)*sign[i]
		}
		// The bias is unregularised; a small decaying step on its
		// subgradient keeps it stable alongside the Pegasos schedule.
		s.b -= 0.1 / math.Sqrt(float64(epoch+1)) * gb / float64(n)
	}
	return nil
}

// Predict implements Regressor.
func (s *SVR) Predict(x []float64) float64 {
	if s.beta == nil {
		panic("ml: SVR.Predict before Fit")
	}
	xs := s.xs.Transform(x)
	sum := s.b
	for i, row := range s.X {
		if s.beta[i] != 0 {
			sum += s.beta[i] * s.kernel(row, xs)
		}
	}
	return sum*s.yStd + s.yMean
}
