package ml

import (
	"fmt"
	"io"
	"sort"
)

// DecisionTree is a CART regression tree: binary splits chosen by maximum
// variance reduction (the regression analogue of the information-gain
// criterion the paper cites), grown depth-first until MaxDepth or MinLeaf is
// reached.
type DecisionTree struct {
	// MaxDepth bounds the tree depth (0 = default 12).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (0 = default 2).
	MinLeaf int

	root *treeNode
	d    int

	// featureIdx optionally restricts split search to a subset of features
	// (used by the random forest). nil = all features.
	featureIdx []int
}

type treeNode struct {
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
	value   float64 // leaf prediction
	leaf    bool
}

// Name implements Regressor.
func (t *DecisionTree) Name() string { return "DT" }

func (t *DecisionTree) defaults() (maxDepth, minLeaf int) {
	maxDepth = t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf = t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	return maxDepth, minLeaf
}

// Fit implements Regressor.
func (t *DecisionTree) Fit(X [][]float64, y []float64) error {
	n, d, err := validate(X, y)
	if err != nil {
		return err
	}
	t.d = d
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	maxDepth, minLeaf := t.defaults()
	t.root = t.build(X, y, idx, 0, maxDepth, minLeaf)
	return nil
}

// build grows the subtree over the sample indices idx.
func (t *DecisionTree) build(X [][]float64, y []float64, idx []int, depth, maxDepth, minLeaf int) *treeNode {
	leafValue := func() *treeNode {
		sum := 0.0
		for _, i := range idx {
			sum += y[i]
		}
		return &treeNode{leaf: true, value: sum / float64(len(idx))}
	}
	if depth >= maxDepth || len(idx) < 2*minLeaf {
		return leafValue()
	}
	feature, thresh, ok := t.bestSplit(X, y, idx, minLeaf)
	if !ok {
		return leafValue()
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feature] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < minLeaf || len(right) < minLeaf {
		return leafValue()
	}
	return &treeNode{
		feature: feature,
		thresh:  thresh,
		left:    t.build(X, y, left, depth+1, maxDepth, minLeaf),
		right:   t.build(X, y, right, depth+1, maxDepth, minLeaf),
	}
}

// bestSplit finds the (feature, threshold) pair with the greatest variance
// reduction, scanning candidate thresholds at midpoints between consecutive
// sorted feature values.
func (t *DecisionTree) bestSplit(X [][]float64, y []float64, idx []int, minLeaf int) (feature int, thresh float64, ok bool) {
	n := len(idx)
	features := t.featureIdx
	if features == nil {
		features = make([]int, t.d)
		for j := range features {
			features[j] = j
		}
	}

	// Total sum of squares; a split must reduce it to be accepted.
	var total, totalSq float64
	for _, i := range idx {
		total += y[i]
		totalSq += y[i] * y[i]
	}
	bestGain := 1e-12

	order := make([]int, n)
	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })

		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftSum += y[i]
			leftSq += y[i] * y[i]
			nl := k + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			if X[order[k]][f] == X[order[k+1]][f] {
				continue // cannot split between equal values
			}
			rightSum := total - leftSum
			rightSq := totalSq - leftSq
			// SSE reduction = totalSSE - (leftSSE + rightSSE); comparing
			// -(sum^2/n) terms suffices since the squared terms cancel.
			gain := leftSum*leftSum/float64(nl) + rightSum*rightSum/float64(nr) - total*total/float64(n)
			_ = rightSq
			if gain > bestGain {
				bestGain = gain
				feature = f
				thresh = (X[order[k]][f] + X[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	return feature, thresh, ok
}

// Predict implements Regressor.
func (t *DecisionTree) Predict(x []float64) float64 {
	if t.root == nil {
		panic("ml: DecisionTree.Predict before Fit")
	}
	if len(x) != t.d {
		panic(fmt.Sprintf("ml: DecisionTree.Predict with %d features, trained on %d", len(x), t.d))
	}
	node := t.root
	for !node.leaf {
		if x[node.feature] <= node.thresh {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value
}

// WriteCanonical writes a canonical encoding of the fitted tree: a
// pre-order walk with every split's feature index and threshold and every
// leaf's value in Go's shortest round-trip float format (%v), which is
// exact and byte-stable across processes and platforms.
func (t *DecisionTree) WriteCanonical(w io.Writer) {
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil {
			return
		}
		if n.leaf {
			fmt.Fprintf(w, "leaf|%v\n", n.value)
			return
		}
		fmt.Fprintf(w, "split|%d|%v\n", n.feature, n.thresh)
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
}

// Depth returns the fitted tree's depth (0 for a single leaf).
func (t *DecisionTree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

// Leaves returns the number of leaves in the fitted tree.
func (t *DecisionTree) Leaves() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return walk(n.left) + walk(n.right)
	}
	return walk(t.root)
}
