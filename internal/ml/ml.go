// Package ml implements the machine-learning estimators the paper uses for
// scale-model extrapolation (§III-B): a CART regression tree (DT), a random
// forest (RF), and an epsilon-insensitive support vector regressor with an
// RBF kernel (SVM) — the scikit-learn trio, reimplemented on the standard
// library only.
//
// All estimators implement Regressor and are deterministic: any internal
// randomisation (forest bootstrapping, feature subsampling) derives from an
// explicit seed.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension reports a feature vector whose length does not match the
// fitted state it is being applied to (a scaler or model trained on a
// different feature layout). Callers at serving boundaries — notably the
// surrogate tier — test with errors.Is and fall back to computing instead
// of serving a mis-scaled prediction.
var ErrDimension = errors.New("ml: feature dimension mismatch")

// Regressor is a trainable single-output regression model.
type Regressor interface {
	// Fit trains on rows X (n x d) with targets y (n). It returns an error
	// for degenerate input (empty set, ragged rows, mismatched lengths).
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature vector. It panics if
	// called before a successful Fit.
	Predict(x []float64) float64
	// Name identifies the estimator kind ("DT", "RF", "SVM").
	Name() string
}

// validate checks the shape of a training set and returns (n, d).
func validate(X [][]float64, y []float64) (int, int, error) {
	if len(X) == 0 {
		return 0, 0, fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return 0, 0, fmt.Errorf("ml: %d rows but %d targets", len(X), len(y))
	}
	d := len(X[0])
	if d == 0 {
		return 0, 0, fmt.Errorf("ml: zero-dimensional features")
	}
	for i, row := range X {
		if len(row) != d {
			return 0, 0, fmt.Errorf("ml: ragged row %d: %d features, want %d", i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, fmt.Errorf("ml: non-finite feature X[%d][%d]", i, j)
			}
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, fmt.Errorf("ml: non-finite target y[%d]", i)
		}
	}
	return len(X), d, nil
}

// Scaler standardises features to zero mean and unit variance, the same
// preprocessing scikit-learn pipelines apply before SVR.
type Scaler struct {
	Mean  []float64
	Scale []float64
}

// FitScaler computes per-column mean and standard deviation.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, fmt.Errorf("ml: cannot fit scaler on empty data")
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Scale: make([]float64, d)}
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Scale[j] += dv * dv
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] < 1e-12 {
			s.Scale[j] = 1 // constant column: leave centred at zero
		}
	}
	return s, nil
}

// Transform returns the standardised copy of x. The vector must have
// exactly the dimensionality the scaler was fitted on; a mismatch is a
// programming error and panics with a diagnostic (previously it silently
// mis-scaled a short vector or raised an index panic on a long one).
// Serving boundaries that receive vectors of uncontrolled shape use
// TransformChecked instead.
func (s *Scaler) Transform(x []float64) []float64 {
	out, err := s.TransformChecked(x)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// TransformChecked is Transform with the shape check surfaced as a typed
// error (wrapping ErrDimension) instead of a panic — the form serving
// layers use, where a mismatched vector must reject cleanly and fall
// through to ground truth.
func (s *Scaler) TransformChecked(x []float64) ([]float64, error) {
	if len(x) != len(s.Mean) {
		return nil, fmt.Errorf("%w: vector has %d features, scaler fitted on %d", ErrDimension, len(x), len(s.Mean))
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Scale[j]
	}
	return out, nil
}

// Finite reports whether every element of x is a finite number. Fit
// validates its inputs, but Predict implementations do not: a serving
// layer must gate non-finite feature vectors itself (falling back to
// computing) so a NaN can never propagate into a served prediction.
func Finite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// TransformAll standardises every row.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred))
}

// MAPE returns the mean absolute percentage error (the paper's error
// metric, averaged): mean(|pred-actual| / |actual|), over the points whose
// target is non-zero. A zero target has no defined percentage error; such
// points are skipped rather than blanking the whole batch to NaN, so one
// degenerate point cannot erase campaign-level error reporting. MAPE is
// NaN only for empty/mismatched input or when every target is zero; use
// MAPESkipZero to learn how many points were skipped.
func MAPE(pred, actual []float64) float64 {
	m, _ := MAPESkipZero(pred, actual)
	return m
}

// MAPESkipZero is MAPE plus the count of zero-target points that were
// excluded from the mean, for callers that report data quality alongside
// the error figure.
func MAPESkipZero(pred, actual []float64) (mape float64, skipped int) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN(), 0
	}
	sum, used := 0.0, 0
	for i := range pred {
		if actual[i] == 0 {
			skipped++
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		used++
	}
	if used == 0 {
		return math.NaN(), skipped
	}
	return sum / float64(used), skipped
}
