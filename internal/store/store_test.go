package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"scalesim/internal/sim"
)

// sampleResult builds a representative result with every field class the
// artifact must round-trip: strings, ints, floats, durations, and a trace.
func sampleResult() *sim.Result {
	return &sim.Result{
		ConfigName:      "2:PRS",
		ElapsedCycles:   123456,
		DRAMUtilization: 0.375,
		NoCUtilization:  0.0625,
		WallClock:       17 * time.Millisecond,
		Cores: []sim.CoreResult{
			{
				Core: 0, Benchmark: "mcf", Instructions: 60000, Cycles: 120000,
				IPC: 0.5, BWBytesPerCycle: 1.25, BWShare: 0.625,
				L1DMPKI: 12.5, L2MPKI: 6.25, LLCMPKI: 3.125, LLCMisses: 187,
				BranchMispredictRate: 0.03125,
				BaseCycles:           60000, BranchCycles: 10000, MemoryCycles: 40000, FrontendCycles: 10000,
			},
			{Core: 1, Benchmark: "lbm", Instructions: 60000, Cycles: 90000, IPC: 0.6666666666666666},
		},
		Trace: []sim.EpochSnapshot{
			{Epoch: 0, EndCycle: 10000, DRAMUtilization: 0.25},
			{Epoch: 1, EndCycle: 20000, DRAMUtilization: 0.5},
		},
	}
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := open(t, t.TempDir())
	const key = "aabbccdd00112233"
	want := sampleResult()

	if res, ok, err := s.Load(key); res != nil || ok || err != nil {
		t.Fatalf("Load before Save = (%v, %v, %v), want (nil, false, nil)", res, ok, err)
	}
	if err := s.Begin(key); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := s.Save(key, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, ok, err := s.Load(key)
	if err != nil || !ok {
		t.Fatalf("Load after Save = (_, %v, %v), want (_, true, nil)", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want Writes=1 Hits=1 Misses=1 Corrupt=0", st)
	}
}

// TestReopenServesArtifacts pins cross-handle durability: a second handle on
// the same directory serves artifacts the first wrote.
func TestReopenServesArtifacts(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	want := sampleResult()
	if err := s1.Save("k1", want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s1.Close()

	s2 := open(t, dir)
	got, ok, err := s2.Load("k1")
	if err != nil || !ok {
		t.Fatalf("Load from reopened store = (_, %v, %v)", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reopened round-trip mismatch")
	}
	if n := len(s2.Interrupted()); n != 0 {
		t.Errorf("completed job reported as interrupted: %v", s2.Interrupted())
	}
}

// TestSaveIsByteStable pins bit-transparency at the artifact layer: saving
// the same result twice produces byte-identical files.
func TestSaveIsByteStable(t *testing.T) {
	s := open(t, t.TempDir())
	res := sampleResult()
	if err := s.Save("k1", res); err != nil {
		t.Fatalf("Save k1: %v", err)
	}
	if err := s.Save("k2", res); err != nil {
		t.Fatalf("Save k2: %v", err)
	}
	a, err := os.ReadFile(s.objectPath("k1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(s.objectPath("k2"))
	if err != nil {
		t.Fatal(err)
	}
	// The embedded key differs; the result payload and checksum must not.
	stripKey := func(data []byte) string {
		return strings.Replace(string(data), `"key":"k1"`, `"key":"KEY"`, 1)
	}
	if sa, sb := stripKey(a), strings.Replace(string(b), `"key":"k2"`, `"key":"KEY"`, 1); sa != sb {
		t.Errorf("same result produced different artifact bytes:\n%s\n%s", sa, stripKey([]byte(sb)))
	}
}

func TestTruncatedArtifactQuarantined(t *testing.T) {
	s := open(t, t.TempDir())
	const key = "deadbeef"
	if err := s.Save(key, sampleResult()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := s.objectPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	res, ok, lerr := s.Load(key)
	if res != nil || ok {
		t.Fatalf("Load of truncated artifact = (%v, %v), want miss", res, ok)
	}
	if !errors.Is(lerr, ErrCorrupt) {
		t.Errorf("Load error = %v, want wrapping ErrCorrupt", lerr)
	}
	if _, err := os.Lstat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt artifact still at object path (err=%v), want quarantined", err)
	}
	q := filepath.Join(s.Dir(), "quarantine", key+".json")
	if _, err := os.Lstat(q); err != nil {
		t.Errorf("quarantined artifact missing at %s: %v", q, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Stats.Corrupt = %d, want 1", st.Corrupt)
	}
	// The slot is reusable: a fresh Save then Load succeeds.
	if err := s.Save(key, sampleResult()); err != nil {
		t.Fatalf("re-Save after quarantine: %v", err)
	}
	if _, ok, err := s.Load(key); !ok || err != nil {
		t.Fatalf("Load after re-Save = (_, %v, %v)", ok, err)
	}
}

func TestChecksumMismatchQuarantined(t *testing.T) {
	s := open(t, t.TempDir())
	const key = "cafe0123"
	if err := s.Save(key, sampleResult()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := s.objectPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the serialised result without breaking JSON.
	tampered := strings.Replace(string(data), `"ElapsedCycles":123456`, `"ElapsedCycles":123457`, 1)
	if tampered == string(data) {
		t.Fatalf("tamper target not found in artifact: %s", data)
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, lerr := s.Load(key)
	if ok || !errors.Is(lerr, ErrCorrupt) {
		t.Errorf("Load of tampered artifact = (ok=%v, err=%v), want miss wrapping ErrCorrupt", ok, lerr)
	}
}

func TestUnknownArtifactSchemaRejected(t *testing.T) {
	s := open(t, t.TempDir())
	const key = "f00dfeed"
	if err := s.Save(key, sampleResult()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := s.objectPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	future := strings.Replace(string(data), ArtifactSchema, "scalesim/store/v99", 1)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, lerr := s.Load(key)
	if ok || !errors.Is(lerr, ErrUnknownSchema) {
		t.Errorf("Load of future-schema artifact = (ok=%v, err=%v), want miss wrapping ErrUnknownSchema", ok, lerr)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Stats.Corrupt = %d, want 1 (unknown schema quarantines too)", st.Corrupt)
	}
}

func TestKeyMismatchQuarantined(t *testing.T) {
	s := open(t, t.TempDir())
	if err := s.Save("rightkey", sampleResult()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Copy the artifact under a different key's object path.
	data, err := os.ReadFile(s.objectPath("rightkey"))
	if err != nil {
		t.Fatal(err)
	}
	wrong := s.objectPath("wrongkey")
	if err := os.MkdirAll(filepath.Dir(wrong), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wrong, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, lerr := s.Load("wrongkey")
	if ok || !errors.Is(lerr, ErrCorrupt) {
		t.Errorf("Load of mis-keyed artifact = (ok=%v, err=%v), want miss wrapping ErrCorrupt", ok, lerr)
	}
}

// TestJournalResume pins the resume contract: keys started but never
// finished are reported as interrupted by the next Open; completed and
// failed keys are not.
func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	if err := s1.Begin("finished"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Save("finished", sampleResult()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Begin("failed"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Fail("failed"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Begin("killed-b"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Begin("killed-a"); err != nil {
		t.Fatal(err)
	}
	s1.Close() // simulate the process dying with two jobs in flight

	s2 := open(t, dir)
	got := s2.Interrupted()
	want := []string{"killed-a", "killed-b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Interrupted() = %v, want %v (sorted)", got, want)
	}
	if st := s2.Stats(); st.Interrupted != 2 {
		t.Errorf("Stats.Interrupted = %d, want 2", st.Interrupted)
	}
}

// TestJournalPartialLineTolerated simulates a crash mid-append: the partial
// trailing line is ignored, everything before it replays normally.
func TestJournalPartialLineTolerated(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	if err := s1.Begin("whole"); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	f, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("done wh"); err != nil { // no newline: torn write
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir)
	if got := s2.Interrupted(); !reflect.DeepEqual(got, []string{"whole"}) {
		t.Errorf("Interrupted() = %v, want [whole] (torn done line must not count)", got)
	}
}

func TestJournalUnknownVersionRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(journalPath(dir), []byte("scalesim/journal/v99\nstart k\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if !errors.Is(err, ErrUnknownSchema) {
		t.Errorf("Open with future journal = %v, want wrapping ErrUnknownSchema", err)
	}
}

func TestReadArtifact(t *testing.T) {
	s := open(t, t.TempDir())
	want := sampleResult()
	if err := s.Save("abcd", want); err != nil {
		t.Fatal(err)
	}
	got, key, err := ReadArtifact(s.objectPath("abcd"))
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	if key != "abcd" {
		t.Errorf("key = %q, want abcd", key)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReadArtifact result mismatch")
	}
	if _, _, err := ReadArtifact(filepath.Join(s.Dir(), "nope.json")); err == nil {
		t.Error("ReadArtifact of missing file succeeded")
	}
}

func TestCheck(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Save("good1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("good2", sampleResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("bad111", sampleResult()); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("bad111")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("inflight"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	info, err := Check(dir)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if info.Artifacts != 2 || info.Corrupt != 1 || info.Interrupted != 1 {
		t.Errorf("Check = %+v, want Artifacts=2 Corrupt=1 Interrupted=1", info)
	}
	if !reflect.DeepEqual(info.CorruptKeys, []string{"bad111"}) {
		t.Errorf("CorruptKeys = %v, want [bad111]", info.CorruptKeys)
	}
	if info.Bytes <= 0 {
		t.Errorf("Bytes = %d, want > 0", info.Bytes)
	}
	// Check is read-only: the corrupt artifact stays in place.
	if _, err := os.Lstat(path); err != nil {
		t.Errorf("Check moved the corrupt artifact: %v", err)
	}

	// An empty directory checks clean.
	empty, err := Check(t.TempDir())
	if err != nil {
		t.Fatalf("Check(empty): %v", err)
	}
	if empty.Artifacts != 0 || empty.Corrupt != 0 {
		t.Errorf("Check(empty) = %+v", empty)
	}
}

// TestNoTempFilesLeft pins that Save leaves no .tmp- droppings behind.
func TestNoTempFilesLeft(t *testing.T) {
	s := open(t, t.TempDir())
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := s.Save(k, sampleResult()); err != nil {
			t.Fatal(err)
		}
	}
	err := filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShortKeySharding(t *testing.T) {
	s := open(t, t.TempDir())
	if err := s.Save("k", sampleResult()); err != nil {
		t.Fatalf("Save with 1-char key: %v", err)
	}
	if _, ok, err := s.Load("k"); !ok || err != nil {
		t.Fatalf("Load with 1-char key = (_, %v, %v)", ok, err)
	}
}
