// Package store is the campaign engine's durable memoization tier: a
// crash-safe, content-addressed on-disk result store keyed by the canonical
// runner job key (internal/runner/key.go).
//
// # Layout
//
// A store directory holds three things:
//
//	objects/<k[:2]>/<key>.json   one artifact per completed design point
//	quarantine/                  artifacts that failed verification
//	journal.log                  append-only record of job lifecycles
//
// # Crash safety
//
// Artifacts are written to a temporary file in the destination directory,
// fsynced, and renamed into place, so a reader never observes a partial
// artifact under its final name. The journal is append-only; a partial
// trailing line (the signature of a crash mid-append) is tolerated and
// ignored on replay. A campaign killed between journal "start" and "done"
// leaves the key in the interrupted set: its artifact does not exist, so a
// resumed campaign recomputes exactly that job and nothing else.
//
// # Corruption
//
// Every artifact carries a schema tag and a SHA-256 checksum over the
// serialised result. Load verifies both plus the embedded key; any mismatch
// moves the artifact into quarantine/ and reports a miss (with an error
// wrapping ErrCorrupt or ErrUnknownSchema for observability) — corruption is
// never fatal and never silently misread, the job is simply recomputed.
//
// # Determinism
//
// Simulation results are bit-identical for a fixed design point, so
// concurrent processes sharing one store directory may duplicate work but
// can never disagree: whichever artifact wins the rename carries the same
// bytes. The package itself uses no wall clock and no ambient randomness
// (it is part of the simlint deterministic set); retry backoff timing lives
// in internal/runner behind an injectable sleep.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"scalesim/internal/sim"
)

// ArtifactSchema is the version tag every artifact carries. Readers reject
// (and quarantine) artifacts tagged with a schema they do not understand, so
// a future format change fails loudly instead of silently misreading.
const ArtifactSchema = "scalesim/store/v1"

// journalSchema is the version tag heading the journal file.
const journalSchema = "scalesim/journal/v1"

// Sentinel errors, wrapped with context by the functions that return them;
// test with errors.Is. They are re-exported by the public scalesim package
// as ErrStoreCorrupt and ErrUnknownSchema.
var (
	// ErrCorrupt reports an artifact that failed verification: unparseable
	// bytes, a checksum mismatch, or a key mismatch.
	ErrCorrupt = errors.New("store artifact corrupt")
	// ErrUnknownSchema reports a versioned payload (artifact or journal)
	// whose schema tag this build does not understand.
	ErrUnknownSchema = errors.New("unknown schema")
)

// envelope is the on-disk artifact format: the schema tag, the job key the
// artifact was stored under, a SHA-256 over the serialised result bytes, and
// the result itself.
type envelope struct {
	Schema string          `json:"schema"`
	Key    string          `json:"key"`
	SHA256 string          `json:"sha256"`
	Result json.RawMessage `json:"result"`
}

// Stats counts a store handle's activity since Open.
type Stats struct {
	Hits        int // artifacts served
	Misses      int // lookups with no (usable) artifact
	Writes      int // artifacts written
	Corrupt     int // artifacts quarantined after failed verification
	Interrupted int // jobs the journal shows started but never finished (at Open)
}

// Store is a handle on one store directory. It is safe for concurrent use
// within a process; distinct processes may share a directory (artifact
// writes are atomic and journal appends use O_APPEND).
type Store struct {
	dir string

	mu          sync.Mutex
	journal     *os.File
	done        map[string]bool // keys the journal records as completed
	interrupted map[string]bool // keys started but never finished before Open
	stats       Stats
}

// Open opens (creating if necessary) the store rooted at dir and replays its
// journal. Keys recorded as started but never finished — an earlier campaign
// killed mid-flight — are reported by Interrupted and in Stats.Interrupted.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "objects"), filepath.Join(dir, "quarantine")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", d, err)
		}
	}
	done, interrupted, err := replayJournal(journalPath(dir))
	if err != nil {
		return nil, err
	}
	j, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	if fi, err := j.Stat(); err == nil && fi.Size() == 0 {
		if _, err := j.Write([]byte(journalSchema + "\n")); err != nil {
			j.Close()
			return nil, fmt.Errorf("store: writing journal header: %w", err)
		}
	}
	return &Store{
		dir:         dir,
		journal:     j,
		done:        done,
		interrupted: interrupted,
		stats:       Stats{Interrupted: len(interrupted)},
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the journal handle. The store's artifacts remain valid.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// Stats returns a snapshot of the handle's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Interrupted returns the sorted keys an earlier campaign started but never
// finished (per the journal at Open time). Their artifacts do not exist, so
// a resumed campaign recomputes exactly these jobs.
func (s *Store) Interrupted() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.interrupted))
	//simlint:ignore maporder keys are sorted immediately below
	for k := range s.interrupted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Begin journals that a job is about to compute. If the process dies before
// Save or Fail, replay reports the key as interrupted.
func (s *Store) Begin(key string) error {
	return s.appendJournal("start", key)
}

// Fail journals that a job ended in an error without producing an artifact,
// so it is not mistaken for an interrupted (killed mid-flight) job.
func (s *Store) Fail(key string) error {
	return s.appendJournal("fail", key)
}

// Save writes the result as the artifact for key — temp file, fsync, atomic
// rename — and journals completion. Concurrent savers of the same key are
// harmless: results are deterministic, so both writers carry the same bytes.
func (s *Store) Save(key string, res *sim.Result) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding result for %s: %w", key, err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(envelope{
		Schema: ArtifactSchema,
		Key:    key,
		SHA256: hex.EncodeToString(sum[:]),
		Result: payload,
	})
	if err != nil {
		return fmt.Errorf("store: encoding artifact for %s: %w", key, err)
	}
	data = append(data, '\n')

	path := s.objectPath(key)
	shard := filepath.Dir(path)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: creating shard %s: %w", shard, err)
	}
	tmp, err := os.CreateTemp(shard, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp artifact: %w", err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing artifact %s: %w", path, err)
	}
	syncDir(shard) // best-effort: make the rename itself durable

	s.mu.Lock()
	s.done[key] = true
	s.stats.Writes++
	s.mu.Unlock()
	return s.appendJournal("done", key)
}

// Load returns the stored result for key. ok reports whether a verified
// artifact was found. A corrupt or unrecognised artifact is moved to
// quarantine/ and reported as a miss, with a non-nil error (wrapping
// ErrCorrupt or ErrUnknownSchema) describing why — callers recompute either
// way and may surface the classification in their own stats.
func (s *Store) Load(key string) (res *sim.Result, ok bool, err error) {
	path := s.objectPath(key)
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		s.count(func(st *Stats) { st.Misses++ })
		if errors.Is(rerr, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: reading artifact %s: %w", path, rerr)
	}
	res, verr := decodeArtifact(data, key)
	if verr != nil {
		s.quarantine(key, path)
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		return nil, false, fmt.Errorf("store: artifact %s quarantined: %w", filepath.Base(path), verr)
	}
	s.count(func(st *Stats) { st.Hits++ })
	return res, true, nil
}

// count mutates the stats under the lock.
func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// quarantine moves a failed artifact aside so it is preserved for inspection
// and never re-read; the next Save recreates the object path. Best-effort: a
// concurrent process may have already moved or replaced it.
func (s *Store) quarantine(key, path string) {
	base := filepath.Join(s.dir, "quarantine", key)
	dest := base + ".json"
	for n := 1; ; n++ {
		if _, err := os.Lstat(dest); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dest = fmt.Sprintf("%s-%d.json", base, n)
	}
	_ = os.Rename(path, dest)
}

// objectPath returns the sharded artifact path for key.
func (s *Store) objectPath(key string) string {
	return objectPath(s.dir, key)
}

func objectPath(dir, key string) string {
	shard := "00"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(dir, "objects", shard, key+".json")
}

func journalPath(dir string) string { return filepath.Join(dir, "journal.log") }

// decodeArtifact verifies and decodes one artifact. wantKey, when non-empty,
// must match the embedded key (a mismatch means the file was stored under
// the wrong name — corrupt).
func decodeArtifact(data []byte, wantKey string) (*sim.Result, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Schema != ArtifactSchema {
		if env.Schema == "" {
			return nil, fmt.Errorf("%w: missing schema tag", ErrCorrupt)
		}
		return nil, fmt.Errorf("%w %q (this build reads %s)", ErrUnknownSchema, env.Schema, ArtifactSchema)
	}
	if wantKey != "" && env.Key != wantKey {
		return nil, fmt.Errorf("%w: artifact keyed %s stored under %s", ErrCorrupt, env.Key, wantKey)
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var res sim.Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, fmt.Errorf("%w: decoding result: %v", ErrCorrupt, err)
	}
	return &res, nil
}

// ReadArtifact verifies and decodes the artifact file at path, returning the
// result and the job key it was stored for. Errors wrap ErrCorrupt or
// ErrUnknownSchema.
func ReadArtifact(path string) (*sim.Result, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("store: reading artifact %s: %w", path, err)
	}
	var env envelope
	if jerr := json.Unmarshal(data, &env); jerr != nil {
		return nil, "", fmt.Errorf("store: artifact %s: %w: %v", path, ErrCorrupt, jerr)
	}
	res, verr := decodeArtifact(data, "")
	if verr != nil {
		return nil, env.Key, fmt.Errorf("store: artifact %s: %w", path, verr)
	}
	return res, env.Key, nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// appendJournal writes one journal line. Appends are a single small write on
// an O_APPEND descriptor, so concurrent writers never interleave bytes.
func (s *Store) appendJournal(op, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return fmt.Errorf("store: journal closed")
	}
	//simlint:ignore lockscope journal lines must be ordered exactly like the map mutations they record; the write is one small append on an O_APPEND fd, bounded, not network IO
	if _, err := s.journal.Write([]byte(op + " " + key + "\n")); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	return nil
}

// replayJournal reads the journal and reconstructs job lifecycles: keys
// completed (done) and keys started but never finished (interrupted). A
// partial trailing line — a crash mid-append — is ignored; unknown complete
// lines are skipped (crash tolerance). A journal headed by a schema tag this
// build does not understand is an error: replaying it could misclassify
// every job.
func replayJournal(path string) (done, interrupted map[string]bool, err error) {
	done = map[string]bool{}
	started := map[string]bool{}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			return done, started, nil
		}
		return nil, nil, fmt.Errorf("store: reading journal: %w", rerr)
	}
	lines := strings.Split(string(data), "\n")
	// A line is complete only if a newline terminated it: after Split, the
	// final element is either "" (clean tail) or a partial line to ignore.
	complete := lines[:len(lines)-1]
	for i, line := range complete {
		if line == "" || line == journalSchema {
			continue
		}
		if i == 0 && strings.HasPrefix(line, "scalesim/journal/") {
			return nil, nil, fmt.Errorf("store: journal %s: %w %q (this build reads %s)",
				path, ErrUnknownSchema, line, journalSchema)
		}
		op, key, ok := strings.Cut(line, " ")
		if !ok || key == "" {
			continue // damaged line: tolerate
		}
		switch op {
		case "start":
			started[key] = true
		case "done":
			done[key] = true
			delete(started, key)
		case "fail":
			delete(started, key)
		}
	}
	return done, started, nil
}

// CheckInfo is an offline store inspection report (see Check).
type CheckInfo struct {
	Artifacts   int      // artifacts that verified cleanly
	Corrupt     int      // artifacts failing verification (left in place)
	CorruptKeys []string // their keys (from the file name), sorted
	Quarantined int      // artifacts previously moved to quarantine/
	Interrupted int      // journal entries started but never finished
	Bytes       int64    // total artifact bytes (clean + corrupt)
}

// Check verifies every artifact in the store at dir without modifying
// anything: no quarantining, no journal writes. It reports per-artifact
// verification failures in the counts rather than as errors; the returned
// error is non-nil only when the store itself cannot be read.
func Check(dir string) (CheckInfo, error) {
	var info CheckInfo
	objects := filepath.Join(dir, "objects")
	err := filepath.WalkDir(objects, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".json") || strings.HasPrefix(d.Name(), ".tmp-") {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		info.Bytes += int64(len(data))
		key := strings.TrimSuffix(d.Name(), ".json")
		if _, verr := decodeArtifact(data, key); verr != nil {
			info.Corrupt++
			info.CorruptKeys = append(info.CorruptKeys, key)
			return nil
		}
		info.Artifacts++
		return nil
	})
	if err != nil {
		return info, fmt.Errorf("store: checking %s: %w", dir, err)
	}
	sort.Strings(info.CorruptKeys) // WalkDir is lexical already; keep the contract explicit
	if entries, derr := os.ReadDir(filepath.Join(dir, "quarantine")); derr == nil {
		info.Quarantined = len(entries)
	}
	_, interrupted, jerr := replayJournal(journalPath(dir))
	if jerr != nil {
		return info, jerr
	}
	info.Interrupted = len(interrupted)
	return info, nil
}
