// Package units defines the named quantity types that flow through the
// simulator core: Cycles, Bytes, BytesPerCycle, and Picoseconds. The interval
// core model, NUCA LLC, mesh NoC, and DRAM queuing model all exchange these
// quantities; making them distinct named types lets the compiler (and the
// simlint "units" analyzer) reject a silent cycles-vs-bytes or
// bandwidth-vs-latency mixup that would skew every extrapolated prediction.
//
// All four types are float64 underneath. Untyped constants still convert
// implicitly (m.EndEpoch(1000) keeps compiling), but two distinct unit types
// never mix in arithmetic without an explicit float64 escape, and the simlint
// "units" analyzer flags those escapes when they recombine across dimensions.
//
// None of these types define a String method, deliberately: the canonical key
// encoder (internal/runner/key.go) prints Options.EpochCycles with %v, and
// store artifacts embed these quantities in JSON. A named float64 without a
// String method formats and marshals byte-identically to a plain float64, so
// cache keys and on-disk artifacts written before this package existed remain
// valid. Do not add String methods.
package units

// Cycles is a duration or timestamp measured in core clock cycles at the
// simulated frequency. It is the simulator's native time axis.
type Cycles float64

// Bytes is a data volume.
type Bytes float64

// BytesPerCycle is a bandwidth expressed in the simulator's native axes:
// bytes moved per core clock cycle. Convert from datasheet GB/s with
// FromGBps.
type BytesPerCycle float64

// Picoseconds is wall-clock simulated time, obtained from Cycles at a known
// core frequency. It only appears at reporting boundaries; the core models
// never compute in real-time units.
type Picoseconds float64

// FromGBps converts a datasheet bandwidth in GB/s to bytes per core cycle at
// the given core frequency. 1 GB/s at 1 GHz is exactly 1 byte/cycle, so the
// conversion is a plain ratio.
func FromGBps(gbps, freqGHz float64) BytesPerCycle {
	return BytesPerCycle(gbps / freqGHz)
}

// Scale multiplies the duration by a dimensionless factor.
func (c Cycles) Scale(f float64) Cycles { return Cycles(float64(c) * f) }

// AtGHz converts a cycle count to simulated wall-clock time at the given
// core frequency: one cycle at f GHz lasts 1000/f picoseconds.
func (c Cycles) AtGHz(freqGHz float64) Picoseconds {
	return Picoseconds(float64(c) * 1000 / freqGHz)
}

// Scale multiplies the volume by a dimensionless factor.
func (b Bytes) Scale(f float64) Bytes { return Bytes(float64(b) * f) }

// Per divides a volume by a duration, yielding a bandwidth.
func (b Bytes) Per(c Cycles) BytesPerCycle {
	return BytesPerCycle(float64(b) / float64(c))
}

// Scale multiplies the bandwidth by a dimensionless factor (an efficiency or
// a link count).
func (r BytesPerCycle) Scale(f float64) BytesPerCycle {
	return BytesPerCycle(float64(r) * f)
}

// Transfer returns the time to move b bytes at bandwidth r.
func (r BytesPerCycle) Transfer(b Bytes) Cycles {
	return Cycles(float64(b) / float64(r))
}

// Capacity returns the volume the bandwidth can move in the given duration.
func (r BytesPerCycle) Capacity(c Cycles) Bytes {
	return Bytes(float64(r) * float64(c))
}

// Seconds converts simulated time to SI seconds for reporting.
func (p Picoseconds) Seconds() float64 { return float64(p) * 1e-12 }

// Milliseconds converts simulated time to milliseconds for reporting.
func (p Picoseconds) Milliseconds() float64 { return float64(p) * 1e-9 }
