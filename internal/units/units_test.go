package units

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestConversions(t *testing.T) {
	// 16 GB/s at 2 GHz is 8 bytes/cycle.
	bw := FromGBps(16, 2)
	if bw != 8 {
		t.Fatalf("FromGBps(16, 2) = %v, want 8", float64(bw))
	}
	// Moving 64 bytes at 8 B/cyc takes 8 cycles.
	if got := bw.Transfer(64); got != 8 {
		t.Fatalf("Transfer(64) = %v, want 8", float64(got))
	}
	// 8 B/cyc over 1000 cycles moves 8000 bytes.
	if got := bw.Capacity(1000); got != 8000 {
		t.Fatalf("Capacity(1000) = %v, want 8000", float64(got))
	}
	// 8000 bytes over 1000 cycles is 8 B/cyc again.
	if got := Bytes(8000).Per(1000); got != bw {
		t.Fatalf("Per round-trip = %v, want %v", float64(got), float64(bw))
	}
	// One cycle at 2 GHz lasts 500 ps.
	if got := Cycles(1).AtGHz(2); got != 500 {
		t.Fatalf("AtGHz(2) = %v, want 500", float64(got))
	}
	if got := Picoseconds(1e12).Seconds(); got != 1 {
		t.Fatalf("Seconds() = %v, want 1", got)
	}
	if got := Picoseconds(1e9).Milliseconds(); got != 1 {
		t.Fatalf("Milliseconds() = %v, want 1", got)
	}
	if got := Cycles(10).Scale(2.5); got != 25 {
		t.Fatalf("Cycles.Scale = %v, want 25", float64(got))
	}
	if got := Bytes(10).Scale(0.5); got != 5 {
		t.Fatalf("Bytes.Scale = %v, want 5", float64(got))
	}
	if got := BytesPerCycle(4).Scale(3); got != 12 {
		t.Fatalf("BytesPerCycle.Scale = %v, want 12", float64(got))
	}
}

// TestFormatTransparency pins the property the durable-store cache keys and
// on-disk artifacts depend on: a unit type must format with %v and marshal to
// JSON byte-identically to the plain float64 it wraps. Adding a String or
// MarshalJSON method to any unit type breaks this test — and silently
// invalidates every key ever written by internal/runner/key.go.
func TestFormatTransparency(t *testing.T) {
	values := []float64{0, 1, 0.5, 20000, 1e6, 123456.789, 1.0 / 3.0}
	for _, v := range values {
		if got, want := fmt.Sprintf("%v", Cycles(v)), fmt.Sprintf("%v", v); got != want {
			t.Errorf("%%v of Cycles(%v) = %q, want %q", v, got, want)
		}
		jc, err := json.Marshal(Cycles(v))
		if err != nil {
			t.Fatal(err)
		}
		jf, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(jc) != string(jf) {
			t.Errorf("json of Cycles(%v) = %s, want %s", v, jc, jf)
		}
	}
	if got, want := fmt.Sprintf("%v", Bytes(72)), "72"; got != want {
		t.Errorf("%%v of Bytes(72) = %q, want %q", got, want)
	}
	if got, want := fmt.Sprintf("%v", BytesPerCycle(2.5)), "2.5"; got != want {
		t.Errorf("%%v of BytesPerCycle(2.5) = %q, want %q", got, want)
	}
}
