// Package surrogate is the learned memoization tier: a random-forest
// surrogate model trained on accumulated ground-truth simulation results
// that slots between the durable store and the simulator (the engine's
// lookup order becomes memory → disk → model → compute).
//
// # Serving contract
//
// Predict answers a design-point query in microseconds from the trained
// ensemble, but only when a two-part confidence gate passes for every core
// of the query:
//
//   - agreement: the relative standard deviation of the per-tree
//     predictions must not exceed Config.VarGate for any target — wide
//     ensemble disagreement flags extrapolation;
//   - novelty: the query's normalised distance to its nearest training
//     point in scaled feature space must not exceed Config.DistGate —
//     a query far from everything the model has seen falls through no
//     matter how confidently the trees happen to agree.
//
// Feature vectors that are non-finite (NaN/Inf) or of the wrong
// dimensionality (ml.ErrDimension from a persisted dataset of an older
// layout) are rejected by the same gate: the query falls through to ground
// truth, and a NaN can never reach a served prediction. A rejected query is
// indistinguishable from having no surrogate at all — the simulator runs
// and its bit-exact result is returned.
//
// # Active learning
//
// Observe feeds every ground-truth result (freshly computed or loaded from
// disk) into the training set. The model first fits after Config.MinTrain
// distinct design points and refits after every Config.RefitEvery new
// observations — always on the observe path, never on the serving fast
// path. Gate-rejected queries therefore teach the model exactly the regions
// it was unsure about.
//
// # Determinism and persistence
//
// Training rows are ordered by content-addressed job key before every fit,
// and all randomisation derives from Config.Seed, so the trained model is a
// pure function of (training-set contents, configuration) — byte-identical
// across processes and insertion orders (Fingerprint exposes this for
// tests). With Config.Dir set, the training set persists as a JSONL sidecar
// (store artifacts hold only results, not model features, so the surrogate
// keeps its own dataset) and is replayed tolerantly on open: corrupt lines
// and rows of a foreign feature layout are skipped, never fatal.
package surrogate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"scalesim/internal/ml"
	"scalesim/internal/runner"
	"scalesim/internal/sim"
	"scalesim/internal/units"
)

// datasetSchema tags every persisted dataset row, mirroring the repo's
// store/trace/api versioning convention.
const datasetSchema = "scalesim/surrogate/v1"

// datasetFile is the JSONL training-set sidecar inside Config.Dir.
const datasetFile = "dataset.jsonl"

// Defaults for the zero Config values.
const (
	defaultMinTrain   = 32
	defaultVarGate    = 0.05
	defaultDistGate   = 1.0
	defaultRefitEvery = 16
	defaultTrees      = 50
)

// Config parameterises a Surrogate. The zero value of every field selects
// the documented default, so Config{} is usable as-is.
type Config struct {
	// MinTrain is the number of distinct ground-truth design points required
	// before the first fit; the model serves nothing until then.
	MinTrain int
	// VarGate bounds the relative per-tree standard deviation of a served
	// prediction (ensemble-agreement gate).
	VarGate float64
	// DistGate bounds the normalised scaled-space distance from a query to
	// its nearest training point (novelty gate).
	DistGate float64
	// RefitEvery retrains after this many new observations since the last
	// fit.
	RefitEvery int
	// Trees is the random-forest ensemble size per target.
	Trees int
	// Seed drives all internal randomisation. Zero is valid and
	// deterministic.
	Seed uint64
	// Dir, when non-empty, roots the persistent JSONL training set. Created
	// on first use; empty means the training set is process-local.
	Dir string
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.MinTrain <= 0 {
		c.MinTrain = defaultMinTrain
	}
	if c.VarGate <= 0 {
		c.VarGate = defaultVarGate
	}
	if c.DistGate <= 0 {
		c.DistGate = defaultDistGate
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = defaultRefitEvery
	}
	if c.Trees <= 0 {
		c.Trees = defaultTrees
	}
	return c
}

// record is one design point's training contribution: the per-core feature
// rows and target vectors. Serialised verbatim as a dataset line.
type record struct {
	Schema   string      `json:"schema"`
	Key      string      `json:"key"`
	Features [][]float64 `json:"features"`
	Targets  [][]float64 `json:"targets"`
}

// model is one immutable fitted generation: Predict snapshots the pointer
// and works lock-free on it while Observe builds the next generation.
type model struct {
	scaler  *ml.Scaler
	forests [numTargets]*ml.RandomForest
	// trainX is the scaled training matrix, for the nearest-neighbour
	// novelty gate.
	trainX [][]float64
}

// Surrogate implements runner.Predictor. Construct with New; safe for
// concurrent use.
type Surrogate struct {
	cfg Config

	mu      sync.Mutex
	rows    map[string]record // by job key; one entry per design point
	pending int               // observations since the last fit
	fitted  *model            // nil until MinTrain points observed
	file    *os.File          // append-only dataset sidecar (nil without Dir)
}

// New builds a surrogate tier. With cfg.Dir set, the directory is created
// and any existing dataset replayed (tolerantly: corrupt lines and rows of
// a foreign feature layout are skipped); if the replayed set already
// reaches MinTrain, the model fits immediately, so a restarted service
// serves from its first query.
func New(cfg Config) (*Surrogate, error) {
	s := &Surrogate{cfg: cfg.withDefaults(), rows: make(map[string]record)}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("surrogate: creating dataset dir: %w", err)
	}
	path := filepath.Join(cfg.Dir, datasetFile)
	if data, err := os.ReadFile(path); err == nil {
		s.replay(data)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("surrogate: reading dataset: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("surrogate: opening dataset: %w", err)
	}
	s.file = f
	if len(s.rows) >= s.cfg.MinTrain {
		s.fit()
	}
	return s, nil
}

// replay loads persisted dataset lines, skipping anything unusable: a
// corrupt tail from a crash mid-append, rows from an older feature layout
// (wrong dimensionality), non-finite values. The dataset is an accelerator,
// never a correctness input, so damage costs retraining — not failure.
func (s *Surrogate) replay(data []byte) {
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		if rec.Schema != datasetSchema || rec.Key == "" || !usable(rec) {
			continue
		}
		if _, ok := s.rows[rec.Key]; ok {
			continue
		}
		s.rows[rec.Key] = rec
	}
}

// usable reports whether a record can enter the training set: current
// feature layout, matching per-core shapes, everything finite.
func usable(rec record) bool {
	if len(rec.Features) == 0 || len(rec.Features) != len(rec.Targets) {
		return false
	}
	for i, row := range rec.Features {
		if len(row) != featureDim || !ml.Finite(row) {
			return false
		}
		if len(rec.Targets[i]) != numTargets || !ml.Finite(rec.Targets[i]) {
			return false
		}
	}
	return true
}

// Observe implements runner.Predictor: feed one ground-truth result into
// the training set. Results whose features or targets are non-finite, or
// whose shapes do not line up (defensive; engine jobs are well-formed), are
// ignored. Fitting happens here — never on the Predict fast path.
func (s *Surrogate) Observe(job runner.Job, res *sim.Result) {
	if res == nil || len(res.Cores) == 0 {
		return
	}
	rec := record{
		Schema:   datasetSchema,
		Key:      job.Key(),
		Features: jobFeatures(job),
		Targets:  resultTargets(res),
	}
	if !usable(rec) {
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.rows[rec.Key]; ok {
		return // deterministic simulation: the same key cannot teach twice
	}
	s.rows[rec.Key] = rec
	//simlint:ignore lockscope the training-set journal must persist rows in exactly the order they enter s.rows or replay diverges; the append is small and bounded
	s.persist(rec)
	s.pending++
	switch {
	case s.fitted == nil && len(s.rows) >= s.cfg.MinTrain:
		s.fit()
	case s.fitted != nil && s.pending >= s.cfg.RefitEvery:
		s.fit()
	}
}

// persist appends one dataset line. Best-effort, like store writes: a full
// disk costs future retraining, never the current campaign.
func (s *Surrogate) persist(rec record) {
	if s.file == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_, _ = s.file.Write(append(line, '\n'))
}

// fit trains a fresh model generation from the current training set.
// Called with mu held. Rows are ordered by job key so the trained model is
// independent of observation order.
func (s *Surrogate) fit() {
	keys := make([]string, 0, len(s.rows))
	//simlint:ignore maporder keys are sorted immediately below
	for k := range s.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var X [][]float64
	ys := make([][]float64, numTargets)
	for _, k := range keys {
		rec := s.rows[k]
		for i, row := range rec.Features {
			X = append(X, row)
			for t := 0; t < numTargets; t++ {
				ys[t] = append(ys[t], rec.Targets[i][t])
			}
		}
	}

	scaler, err := ml.FitScaler(X)
	if err != nil {
		return // degenerate set; keep the previous generation
	}
	m := &model{scaler: scaler, trainX: scaler.TransformAll(X)}
	for t := 0; t < numTargets; t++ {
		f := &ml.RandomForest{Trees: s.cfg.Trees, Seed: s.cfg.Seed ^ uint64(t+1)*0x9e3779b97f4a7c15}
		if err := f.Fit(m.trainX, ys[t]); err != nil {
			return
		}
		m.forests[t] = f
	}
	s.fitted = m
	s.pending = 0
}

// Predict implements runner.Predictor: answer the query from the trained
// model iff the confidence gate passes for every core and every target.
// The model generation is snapshotted under the lock and used lock-free, so
// a concurrent refit never blocks serving.
func (s *Surrogate) Predict(job runner.Job) (*sim.Result, bool) {
	s.mu.Lock()
	m := s.fitted
	s.mu.Unlock()
	if m == nil {
		return nil, false
	}

	rows := jobFeatures(job)
	if len(rows) == 0 {
		return nil, false
	}
	preds := make([][]float64, len(rows))
	for i, row := range rows {
		// Gate, part zero: a non-finite or mis-shaped feature vector must
		// fall through to compute — never into the forest, whose output for
		// such input would be garbage served as a result.
		if !ml.Finite(row) {
			return nil, false
		}
		scaled, err := m.scaler.TransformChecked(row)
		if err != nil {
			return nil, false // ml.ErrDimension: foreign feature layout
		}
		// Gate, part one: ensemble agreement per target.
		p := make([]float64, numTargets)
		for t := 0; t < numTargets; t++ {
			mean, std := m.forests[t].PredictStats(scaled)
			if !relativeStdOK(mean, std, s.cfg.VarGate) {
				return nil, false
			}
			p[t] = mean
		}
		// Gate, part two: novelty — distance to the nearest training point.
		if nearestDistance(m.trainX, scaled) > s.cfg.DistGate {
			return nil, false
		}
		// A servable core needs a physically meaningful IPC.
		if !(p[targetIPC] > 0) || math.IsInf(p[targetIPC], 0) {
			return nil, false
		}
		preds[i] = p
	}
	return synthesize(job, preds), true
}

// relativeStdOK is the agreement gate: std relative to |mean| (absolute
// when the mean is near zero, where a ratio is meaningless).
func relativeStdOK(mean, std, gate float64) bool {
	if math.IsNaN(mean) || math.IsNaN(std) {
		return false
	}
	denom := math.Abs(mean)
	if denom < 1e-9 {
		return std <= gate
	}
	return std/denom <= gate
}

// nearestDistance returns the query's L2 distance to its nearest training
// row, normalised by sqrt(d) so the gate threshold reads as "standard
// deviations per feature" independently of the layout width.
func nearestDistance(trainX [][]float64, q []float64) float64 {
	best := math.Inf(1)
	for _, row := range trainX {
		var d2 float64
		for j := range q {
			dv := q[j] - row[j]
			d2 += dv * dv
			if d2 >= best {
				break
			}
		}
		if d2 < best {
			best = d2
		}
	}
	return math.Sqrt(best / float64(len(q)))
}

// synthesize assembles an approximate sim.Result from per-core predictions
// (preds[i] indexed by the target constants). Fields the model does not
// predict are derived where the derivation is exact in the predicted terms
// (cycles, simulated time, bandwidth shares) and left zero where it is not
// (stall decomposition, detailed miss ladder, wall-clock).
func synthesize(job runner.Job, preds [][]float64) *sim.Result {
	freq := job.Config.Core.FrequencyGHz
	// Total DRAM bandwidth in bytes per core cycle: GB/s ÷ Gcycles/s.
	var totalBPC float64
	if freq > 0 {
		totalBPC = float64(job.Config.DRAM.TotalGBps()) / freq
	}

	res := &sim.Result{ConfigName: job.Config.Name, Cores: make([]sim.CoreResult, len(preds))}
	var sumBW float64
	for i, p := range preds {
		ipc := p[targetIPC]
		bw := math.Max(0, p[targetBWBytesPerCycle])
		cycles := units.Cycles(float64(job.Options.Instructions) / ipc)
		core := sim.CoreResult{
			Core:            i,
			Instructions:    job.Options.Instructions,
			Cycles:          cycles,
			IPC:             ipc,
			LLCMPKI:         math.Max(0, p[targetLLCMPKI]),
			BWBytesPerCycle: units.BytesPerCycle(bw),
		}
		if i < len(job.Workload.Profiles) && job.Workload.Profiles[i] != nil {
			core.Benchmark = job.Workload.Profiles[i].Name
		}
		if totalBPC > 0 {
			core.BWShare = bw / totalBPC
		}
		sumBW += bw
		if cycles > res.ElapsedCycles {
			res.ElapsedCycles = cycles
		}
		res.Cores[i] = core
	}
	res.SimulatedPicos = res.ElapsedCycles.AtGHz(freq)
	if totalBPC > 0 {
		res.DRAMUtilization = math.Min(1, sumBW/totalBPC)
	}
	return res
}

// TrainedPoints returns the number of distinct design points in the
// training set.
func (s *Surrogate) TrainedPoints() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// Ready reports whether a model generation has been fitted (the tier can
// serve).
func (s *Surrogate) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fitted != nil
}

// Fingerprint returns a stable hex digest of the current model generation:
// the canonical encoding of every forest plus the scaler parameters. Equal
// training sets and configuration produce equal fingerprints, across
// processes and observation orders; the determinism suite asserts exactly
// this. Empty until the first fit.
func (s *Surrogate) Fingerprint() string {
	s.mu.Lock()
	m := s.fitted
	s.mu.Unlock()
	if m == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "scaler|%v|%v\n", m.scaler.Mean, m.scaler.Scale)
	for t := 0; t < numTargets; t++ {
		fmt.Fprintf(h, "target|%d\n", t)
		m.forests[t].WriteCanonical(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Close releases the dataset sidecar, if any.
func (s *Surrogate) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}
