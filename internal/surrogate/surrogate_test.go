package surrogate

import (
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/runner"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
)

// synthJob builds a distinct, fully specified design point: i shifts the
// workload's BaseCPI (and so the feature row), keeping everything else at
// the fixture values.
func synthJob(i int) runner.Job {
	prof := &trace.Profile{
		Name:           "synth",
		BaseCPI:        0.4 + 0.01*float64(i),
		LoadsPerKI:     200 + i,
		StoresPerKI:    100,
		BranchesPerKI:  150,
		MLP:            3,
		StaticBranches: 4096,
		HardFrac:       0.1,
		IFootprint:     64 * 1024,
		Regions: []trace.Region{
			{Size: 1 << 20, Frac: 0.8, Pattern: trace.Rand, ElemSize: 8},
			{Size: 1 << 16, Frac: 0.2, Pattern: trace.Seq, ElemSize: 64},
		},
	}
	return runner.Job{
		Config:   config.Target(),
		Workload: sim.Workload{Profiles: []*trace.Profile{prof}},
		Options: sim.Options{
			Instructions:  1_000_000,
			Warmup:        100_000,
			EpochCycles:   10_000,
			CapacityScale: 8,
			Seed:          1,
		},
	}
}

// synthResult fabricates a smooth ground truth over the synthJob family, so
// a trained forest interpolates it confidently.
func synthResult(i int) *sim.Result {
	ipc := 2.0 - 0.01*float64(i)
	return &sim.Result{
		ConfigName: "target",
		Cores: []sim.CoreResult{{
			Core: 0, Benchmark: "synth",
			Instructions:    1_000_000,
			IPC:             ipc,
			LLCMPKI:         5 + 0.1*float64(i),
			BWBytesPerCycle: 2,
		}},
	}
}

// train feeds n distinct points into a fresh surrogate with loose gates.
func train(t *testing.T, n int, cfg Config) *Surrogate {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		s.Observe(synthJob(i), synthResult(i))
	}
	return s
}

// looseConfig trains fast and serves everything the model can express: the
// gates are effectively off, isolating the mechanics under test.
func looseConfig() Config {
	return Config{MinTrain: 8, VarGate: 1e9, DistGate: 1e9, Trees: 16, RefitEvery: 4}
}

func TestObserveFitPredict(t *testing.T) {
	s := train(t, 8, looseConfig())
	if !s.Ready() {
		t.Fatal("surrogate not fitted after MinTrain observations")
	}
	if got := s.TrainedPoints(); got != 8 {
		t.Fatalf("TrainedPoints = %d, want 8", got)
	}

	// An interior point of the trained family must serve.
	job := synthJob(3)
	res, ok := s.Predict(job)
	if !ok {
		t.Fatal("Predict rejected an interior query under loose gates")
	}
	if len(res.Cores) != 1 {
		t.Fatalf("predicted %d cores, want 1", len(res.Cores))
	}
	c := res.Cores[0]
	if c.Benchmark != "synth" || c.Instructions != 1_000_000 {
		t.Fatalf("core identity not carried over: %+v", c)
	}
	if !(c.IPC > 0) || math.IsNaN(c.LLCMPKI) || math.IsNaN(float64(c.BWBytesPerCycle)) {
		t.Fatalf("non-physical prediction: %+v", c)
	}
	// Derived fields must be consistent with the predicted IPC.
	wantCycles := float64(job.Options.Instructions) / c.IPC
	if math.Abs(float64(c.Cycles)-wantCycles) > 1e-6 {
		t.Fatalf("Cycles = %v, want Instructions/IPC = %v", c.Cycles, wantCycles)
	}
	if res.ElapsedCycles != c.Cycles {
		t.Fatalf("ElapsedCycles = %v, want max core cycles %v", res.ElapsedCycles, c.Cycles)
	}
	if !(res.SimulatedPicos > 0) {
		t.Fatalf("SimulatedPicos = %v, want > 0", res.SimulatedPicos)
	}
}

func TestNotReadyBeforeMinTrain(t *testing.T) {
	s := train(t, 7, looseConfig()) // one short of MinTrain
	if s.Ready() {
		t.Fatal("fitted before MinTrain observations")
	}
	if _, ok := s.Predict(synthJob(0)); ok {
		t.Fatal("served a prediction before the first fit")
	}
}

func TestObserveDedupesByKey(t *testing.T) {
	cfg := looseConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 3; i++ {
		s.Observe(synthJob(0), synthResult(0)) // same key every time
	}
	if got := s.TrainedPoints(); got != 1 {
		t.Fatalf("TrainedPoints = %d after duplicate observes, want 1", got)
	}
}

func TestGateRejectsNonFinite(t *testing.T) {
	s := train(t, 8, looseConfig())
	bad := synthJob(3)
	prof := *bad.Workload.Profiles[0]
	prof.MLP = math.NaN()
	bad.Workload.Profiles = []*trace.Profile{&prof}
	if _, ok := s.Predict(bad); ok {
		t.Fatal("served a prediction for a NaN feature vector")
	}
	inf := synthJob(3)
	prof2 := *inf.Workload.Profiles[0]
	prof2.BaseCPI = math.Inf(1)
	inf.Workload.Profiles = []*trace.Profile{&prof2}
	if _, ok := s.Predict(inf); ok {
		t.Fatal("served a prediction for an Inf feature vector")
	}
	// Non-finite ground truth must not poison the training set either.
	before := s.TrainedPoints()
	s.Observe(bad, synthResult(99))
	if s.TrainedPoints() != before {
		t.Fatal("non-finite features entered the training set")
	}
}

func TestGateRejectsNovelQueries(t *testing.T) {
	cfg := looseConfig()
	cfg.DistGate = 0.05 // tight novelty gate
	s := train(t, 8, cfg)
	// A job far outside the trained family (very different machine scale
	// and workload) must fall through.
	far := synthJob(3)
	prof := *far.Workload.Profiles[0]
	prof.BaseCPI = 3.5
	prof.MLP = 16
	prof.LoadsPerKI = 900
	far.Workload.Profiles = []*trace.Profile{&prof}
	far.Options.Instructions = 64_000_000
	if _, ok := s.Predict(far); ok {
		t.Fatal("novelty gate served a far-out-of-distribution query")
	}
	// An exact training point sits at distance zero and must still serve.
	if _, ok := s.Predict(synthJob(3)); !ok {
		t.Fatal("novelty gate rejected an exact training point")
	}
}

func TestGateRejectsDisagreement(t *testing.T) {
	cfg := looseConfig()
	cfg.VarGate = 1e-12 // any per-tree spread rejects
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Noisy targets: bootstrap resamples disagree, so per-tree std > 0.
	for i := 0; i < 8; i++ {
		res := synthResult(i)
		res.Cores[0].IPC = 1 + float64(i%2) // alternating ground truth
		s.Observe(synthJob(i), res)
	}
	if !s.Ready() {
		t.Fatal("not fitted")
	}
	if _, ok := s.Predict(synthJob(3)); ok {
		t.Fatal("agreement gate served despite tree disagreement")
	}
}

func TestFingerprintInsertionOrderIndependent(t *testing.T) {
	cfg := looseConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 8; i++ {
		a.Observe(synthJob(i), synthResult(i))
	}
	for i := 7; i >= 0; i-- {
		b.Observe(synthJob(i), synthResult(i))
	}
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa == "" || fa != fb {
		t.Fatalf("model depends on observation order:\n forward %s\n reverse %s", fa, fb)
	}
	// ... and the served predictions are identical too.
	ra, oka := a.Predict(synthJob(4))
	rb, okb := b.Predict(synthJob(4))
	if !oka || !okb {
		t.Fatal("prediction rejected under loose gates")
	}
	if ra.Cores[0].IPC != rb.Cores[0].IPC || ra.Cores[0].LLCMPKI != rb.Cores[0].LLCMPKI {
		t.Fatalf("insertion order changed predictions: %+v vs %+v", ra.Cores[0], rb.Cores[0])
	}
}

func TestSeedChangesModel(t *testing.T) {
	cfg := looseConfig()
	a := train(t, 8, cfg)
	cfg.Seed = 42
	b := train(t, 8, cfg)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different seeds produced identical models")
	}
}

func TestDatasetPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := looseConfig()
	cfg.Dir = dir

	first := train(t, 8, cfg)
	want := first.Fingerprint()
	if want == "" {
		t.Fatal("first surrogate not fitted")
	}
	if err := first.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh surrogate on the same directory replays the dataset, fits
	// immediately, and reaches the byte-identical model.
	second, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer second.Close()
	if !second.Ready() {
		t.Fatal("reopened surrogate did not fit from the persisted dataset")
	}
	if got := second.Fingerprint(); got != want {
		t.Fatalf("persisted dataset changed the model:\n got %s\nwant %s", got, want)
	}
}

func TestReplayToleratesDamage(t *testing.T) {
	dir := t.TempDir()
	cfg := looseConfig()
	cfg.Dir = dir

	s := train(t, 8, cfg)
	want := s.Fingerprint()
	s.Close()

	// Damage the dataset: garbage lines, a truncated tail, a foreign-layout
	// row, an unknown schema. All must be skipped silently.
	path := filepath.Join(dir, datasetFile)
	damage := "not json at all\n" +
		`{"schema":"scalesim/surrogate/v99","key":"x","features":[[1]],"targets":[[1]]}` + "\n" +
		`{"schema":"scalesim/surrogate/v1","key":"short","features":[[1,2,3]],"targets":[[1,2,3]]}` + "\n" +
		`{"schema":"scalesim/surrogate/v1","key":"trunc","featur`
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(damage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen over damaged dataset: %v", err)
	}
	defer reopened.Close()
	if got := reopened.TrainedPoints(); got != 8 {
		t.Fatalf("TrainedPoints = %d after damage, want the 8 valid rows", got)
	}
	if got := reopened.Fingerprint(); got != want {
		t.Fatalf("damaged lines leaked into the model:\n got %s\nwant %s", got, want)
	}
}

// TestCrossProcessModelDeterminism is the cross-process half of the model
// determinism contract (mirroring the store's TestCrossProcessStoreReuse):
// two separate processes training on the same persisted dataset must reach
// byte-identical models.
func TestCrossProcessModelDeterminism(t *testing.T) {
	if dir := os.Getenv("SCALESIM_SURROGATE_DIR"); dir != "" {
		cfg := looseConfig()
		cfg.Dir = dir
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("child New: %v", err)
		}
		defer s.Close()
		if !s.Ready() {
			t.Fatal("child surrogate did not fit from the dataset")
		}
		if err := os.WriteFile(os.Getenv("SCALESIM_SURROGATE_OUT"), []byte(s.Fingerprint()), 0o644); err != nil {
			t.Fatalf("child write: %v", err)
		}
		return
	}
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}

	dir := t.TempDir()
	cfg := looseConfig()
	cfg.Dir = filepath.Join(dir, "surrogate")
	s := train(t, 8, cfg)
	want := s.Fingerprint()
	s.Close()

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	out := filepath.Join(dir, "fingerprint")
	cmd := exec.Command(exe, "-test.run=^TestCrossProcessModelDeterminism$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"SCALESIM_SURROGATE_DIR="+cfg.Dir,
		"SCALESIM_SURROGATE_OUT="+out)
	if cout, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("child failed: %v\n%s", err, cout)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read child fingerprint: %v", err)
	}
	if string(got) != want {
		t.Fatalf("model differs across processes:\n got %s\nwant %s", got, want)
	}
}

func TestFeatureDimMatchesLayout(t *testing.T) {
	rows := jobFeatures(synthJob(0))
	if len(rows) != 1 {
		t.Fatalf("one-core job produced %d rows", len(rows))
	}
	if len(rows[0]) != featureDim {
		t.Fatalf("featureRow emits %d features, featureDim = %d — bump the constant alongside the layout", len(rows[0]), featureDim)
	}
}
