package surrogate

import (
	"math"

	"scalesim/internal/runner"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
)

// Feature extraction: one fixed-length row per core of a design point.
//
// The model predicts per-core metrics, so a job with N cores contributes N
// training rows (and is queried as N rows at serve time). Each row is the
// concatenation of machine-wide features (shared by every core of the
// job), option features, workload-aggregate pressure features (the
// co-runners a core contends with), and the core's own profile features.
// The layout is fixed; featureDim pins it, and persisted dataset rows with
// a different dimensionality are skipped at load so a layout change can
// never silently mis-scale (see ml.ErrDimension for the serve-time guard).

// featureDim is the current row width. Bump alongside any change to
// featureRow; persisted rows of other widths are ignored at load.
const featureDim = 31

// targets are the per-core metrics the surrogate predicts, one forest
// each, in this order.
const (
	targetIPC = iota
	targetLLCMPKI
	targetBWBytesPerCycle
	numTargets
)

// jobFeatures returns one feature row per core of the job. The job must be
// structurally complete (non-nil config, one profile per core) — jobs that
// reach the engine's compute tier always are.
func jobFeatures(job runner.Job) [][]float64 {
	cfg, opts := job.Config, job.Options
	scale := float64(opts.CapacityScale)
	if scale < 1 {
		scale = 1
	}

	// Machine-wide features, effective (post-miniaturisation) capacities.
	freq := cfg.Core.FrequencyGHz
	shared := []float64{
		float64(cfg.Cores),
		freq,
		float64(cfg.Core.IssueWidth),
		float64(cfg.Core.ROBSize),
		float64(cfg.Core.MaxL1DMisses),
		float64(cfg.Core.MispredictCost),
		float64(cfg.L1D.Size) / scale,
		float64(cfg.L2.Size) / scale,
		float64(cfg.LLC.Size()) / scale,
		float64(cfg.LLC.Assoc),
		float64(cfg.LLC.AccessTime),
		float64(cfg.DRAM.TotalGBps()),
		float64(cfg.DRAM.BaseLatency),
		float64(cfg.NoC.BisectionGBps()),
		float64(cfg.NoC.HopLatency),
		// Option features: the ablation flags and budget change the result,
		// so they must be model inputs exactly as they are key inputs.
		scale,
		math.Log2(float64(opts.Instructions) + 1),
		boolFeature(opts.NoFeedback),
		boolFeature(opts.PartitionedLLC),
		boolFeature(opts.EnablePrefetch),
	}

	// Workload-aggregate pressure: what this core's co-runners demand.
	var totalFoot, totalMem, sumMLP float64
	for _, p := range job.Workload.Profiles {
		if p == nil {
			continue
		}
		totalFoot += profileFootprint(p) / scale
		totalMem += float64(p.LoadsPerKI + p.StoresPerKI)
		sumMLP += p.MLP
	}
	n := float64(len(job.Workload.Profiles))
	if n < 1 {
		n = 1
	}
	aggregate := []float64{totalFoot, totalMem, sumMLP / n}

	rows := make([][]float64, 0, len(job.Workload.Profiles))
	for _, p := range job.Workload.Profiles {
		row := make([]float64, 0, featureDim)
		row = append(row, shared...)
		row = append(row, aggregate...)
		row = append(row, profileFeatures(p, scale)...)
		rows = append(rows, row)
	}
	return rows
}

// profileFeatures encodes one core's workload profile.
func profileFeatures(p *trace.Profile, scale float64) []float64 {
	if p == nil {
		nan := math.NaN() // rejected by the gate; cannot happen for engine jobs
		return []float64{nan, nan, nan, nan, nan, nan, nan, nan}
	}
	// seqFrac summarises spatial locality: the fraction of data accesses
	// that stream sequentially rather than pointer-chase or hot-set skew.
	var seqFrac float64
	for _, r := range p.Regions {
		if r.Pattern == trace.Seq {
			seqFrac += r.Frac
		}
	}
	return []float64{
		p.BaseCPI,
		float64(p.LoadsPerKI),
		float64(p.StoresPerKI),
		float64(p.BranchesPerKI),
		p.MLP,
		p.HardFrac,
		profileFootprint(p) / scale,
		seqFrac,
	}
}

// profileFootprint sums the profile's data regions plus code footprint, in
// bytes (nominal, pre-scaling).
func profileFootprint(p *trace.Profile) float64 {
	total := float64(p.IFootprint)
	for _, r := range p.Regions {
		total += float64(r.Size)
	}
	return total
}

// resultTargets extracts the per-core target vector [numTargets] for every
// core of a ground-truth result.
func resultTargets(res *sim.Result) [][]float64 {
	out := make([][]float64, len(res.Cores))
	for i, c := range res.Cores {
		t := make([]float64, numTargets)
		t[targetIPC] = c.IPC
		t[targetLLCMPKI] = c.LLCMPKI
		t[targetBWBytesPerCycle] = float64(c.BWBytesPerCycle)
		out[i] = t
	}
	return out
}

func boolFeature(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
