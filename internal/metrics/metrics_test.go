package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestPredictionError(t *testing.T) {
	if e := PredictionError(1.2, 1.0); math.Abs(e-0.2) > 1e-12 {
		t.Fatalf("error = %v, want 0.2", e)
	}
	if e := PredictionError(0.8, 1.0); math.Abs(e-0.2) > 1e-12 {
		t.Fatalf("under-prediction error = %v, want 0.2", e)
	}
	if e := PredictionError(-0.5, -1.0); math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("negative actual error = %v, want 0.5", e)
	}
	if !math.IsNaN(PredictionError(1, 0)) {
		t.Fatal("zero actual should give NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.1, 0.3, math.NaN(), 0.2})
	if s.N != 3 {
		t.Fatalf("N = %d, want 3 (NaN skipped)", s.N)
	}
	if math.Abs(s.Mean-0.2) > 1e-12 || s.Max != 0.3 {
		t.Fatalf("summary %+v, want mean 0.2 max 0.3", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 || empty.Max != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
	if !strings.Contains(s.String(), "20.0%") || !strings.Contains(s.String(), "30.0%") {
		t.Fatalf("summary string %q", s.String())
	}
}

func TestSummarizeSkipsInfinities(t *testing.T) {
	// ±Inf arises from a zero or denormal baseline: like NaN, one sample
	// must not poison the whole set.
	s := Summarize([]float64{0.1, math.Inf(1), 0.3, math.Inf(-1)})
	if s.N != 2 {
		t.Fatalf("N = %d, want 2 (infinities skipped)", s.N)
	}
	if math.Abs(s.Mean-0.2) > 1e-12 || s.Max != 0.3 {
		t.Fatalf("summary %+v, want mean 0.2 max 0.3", s)
	}
	if s := Summarize([]float64{math.Inf(1)}); s.N != 0 {
		t.Fatalf("all-Inf summary %+v", s)
	}
}

func TestSTP(t *testing.T) {
	// Two apps at half their isolated speed: STP = 1.0 (out of 2).
	stp, err := STP([]float64{0.5, 1.0}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stp-1.0) > 1e-12 {
		t.Fatalf("STP = %v, want 1.0", stp)
	}
	if _, err := STP([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Non-positive baselines are an error, never silently skipped: the
	// baseline simulation retired no instructions.
	if _, err := STP([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero baseline accepted")
	}
	if _, err := STP([]float64{1, 1}, []float64{1, -0.5}); err == nil {
		t.Fatal("negative baseline accepted")
	}
}

func TestSorted(t *testing.T) {
	got := Sorted([]float64{0.3, math.NaN(), 0.1, math.Inf(1), 0.2, math.Inf(-1)})
	want := []float64{0.1, 0.2, 0.3}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted %v, want %v", got, want)
		}
	}
}

func TestSortByKey(t *testing.T) {
	es := []NamedError{
		{Name: "b", Key: 2, Error: 0.2},
		{Name: "a", Key: 2, Error: 0.1},
		{Name: "c", Key: 1, Error: 0.3},
	}
	SortByKey(es)
	if es[0].Name != "c" || es[1].Name != "a" || es[2].Name != "b" {
		t.Fatalf("sorted order %v", es)
	}
}
