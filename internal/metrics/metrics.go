// Package metrics implements the paper's evaluation metrics: the absolute
// relative IPC prediction error (§V), system throughput (STP, the
// normalised-IPC sum of Eyerman & Eeckhout's multiprogram metrics, §V-C),
// and small summary helpers used by every experiment report.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// PredictionError returns the paper's error metric:
// |predicted - actual| / actual. It returns NaN when actual is zero.
func PredictionError(predicted, actual float64) float64 {
	if actual == 0 {
		return math.NaN()
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// Summary aggregates a set of absolute prediction errors.
type Summary struct {
	Mean float64
	Max  float64
	N    int
}

// finite reports whether e is a usable sample (neither NaN nor ±Inf).
func finite(e float64) bool {
	return !math.IsNaN(e) && !math.IsInf(e, 0)
}

// Summarize computes mean and max of errs, skipping non-finite values (NaN
// and ±Inf — e.g. from a zero or denormal baseline): a single infinite
// sample would otherwise poison the mean and max of the whole set.
func Summarize(errs []float64) Summary {
	var s Summary
	sum := 0.0
	for _, e := range errs {
		if !finite(e) {
			continue
		}
		sum += e
		if e > s.Max {
			s.Max = e
		}
		s.N++
	}
	if s.N > 0 {
		s.Mean = sum / float64(s.N)
	}
	return s
}

// String renders the summary as the paper reports them.
func (s Summary) String() string {
	return fmt.Sprintf("avg %.1f%% (max %.1f%%, n=%d)", 100*s.Mean, 100*s.Max, s.N)
}

// STP computes system throughput for one multiprogram mix: the sum over
// applications of IPC on the target system normalised by the application's
// single-core scale-model IPC (the paper's normalisation baseline in §V-C).
// A non-positive baseline is an error: it means the baseline simulation
// never retired an instruction, and silently skipping the application would
// misreport the mix's throughput.
func STP(targetIPC, baselineIPC []float64) (float64, error) {
	if len(targetIPC) != len(baselineIPC) {
		return 0, fmt.Errorf("metrics: %d target IPCs but %d baselines", len(targetIPC), len(baselineIPC))
	}
	stp := 0.0
	for i := range targetIPC {
		if baselineIPC[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive baseline IPC %v at %d", baselineIPC[i], i)
		}
		stp += targetIPC[i] / baselineIPC[i]
	}
	return stp, nil
}

// Sorted returns a copy of errs sorted ascending (used for Fig. 6's sorted
// error curves), non-finite values (NaN and ±Inf) removed.
func Sorted(errs []float64) []float64 {
	out := make([]float64, 0, len(errs))
	for _, e := range errs {
		if finite(e) {
			out = append(out, e)
		}
	}
	sort.Float64s(out)
	return out
}

// Progress is one campaign progress event: emitted by the campaign engine
// after each job completes (successfully, from cache, or with an error).
type Progress struct {
	// Job is the submission-order index of the job that just finished.
	Job int
	// Completed and Total track overall campaign progress.
	Completed int
	Total     int
	// CacheHit reports whether this job was served from the memo cache
	// (including deduplication against an identical in-flight job).
	CacheHit bool
	// Err is the job's error, if it failed.
	Err error
}

// CampaignStats aggregates a campaign engine's counters: how many jobs were
// requested, how many unique simulations actually ran, and how many were
// deduplicated by the content-addressed cache — in memory or on disk.
//
// NOTE: the public scalesim.CampaignStats mirrors this struct field for
// field (a direct struct conversion); keep names, types, and order in sync.
type CampaignStats struct {
	Jobs          int // jobs submitted
	UniqueRuns    int // simulator invocations (computes)
	CacheHits     int // jobs served from the completed in-memory memo cache
	CoalescedHits int // jobs deduplicated against an identical in-flight job
	DiskHits      int // jobs served from the durable result store
	ModelHits     int // jobs served (approximately) by the surrogate model
	Retries       int // transient failures retried (panics and I/O errors)
	PanicRetries  int // the panic subset of Retries
	Failures      int // jobs that ended in an error
	StoreCorrupt  int // store artifacts quarantined and recomputed
}

// HitRate returns the fraction of jobs served without simulating — from the
// in-memory cache, by coalescing onto an in-flight run, from the durable
// store, or by the surrogate model.
func (s CampaignStats) HitRate() float64 {
	if s.Jobs == 0 {
		return 0
	}
	return float64(s.CacheHits+s.CoalescedHits+s.DiskHits+s.ModelHits) / float64(s.Jobs)
}

// String renders the stats as a one-line report.
func (s CampaignStats) String() string {
	out := fmt.Sprintf("%d jobs: %d simulated, %d cached, %d coalesced, %d from store (%.0f%% hit rate), %d failed",
		s.Jobs, s.UniqueRuns, s.CacheHits, s.CoalescedHits, s.DiskHits, 100*s.HitRate(), s.Failures)
	if s.ModelHits > 0 {
		out += fmt.Sprintf(", %d from model (approximate)", s.ModelHits)
	}
	if s.Retries > 0 {
		out += fmt.Sprintf(", %d retried", s.Retries)
	}
	if s.StoreCorrupt > 0 {
		out += fmt.Sprintf(", %d corrupt artifacts quarantined", s.StoreCorrupt)
	}
	return out
}

// NamedError pairs a benchmark with its prediction error, for per-benchmark
// figures sorted by a key (e.g. LLC MPKI in Fig. 3).
type NamedError struct {
	Name  string
	Key   float64 // sort key (e.g. MPKI)
	Error float64
}

// SortByKey sorts named errors by ascending key (stable on name ties).
func SortByKey(es []NamedError) {
	sort.SliceStable(es, func(i, j int) bool {
		if es[i].Key != es[j].Key {
			return es[i].Key < es[j].Key
		}
		return es[i].Name < es[j].Name
	})
}
