package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values in 1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child's stream must differ from the parent's continued stream.
	if parent.Uint64() == child.Uint64() {
		t.Fatal("split child mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(nRaw uint64) bool {
		n := nRaw%1000 + 1
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(6)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d draws, want %v +/- 5%%", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(9)
	const p, n = 0.25, 100000
	sum := 0
	for i := 0; i < n; i++ {
		g := r.Geometric(p)
		if g < 1 {
			t.Fatalf("geometric variate %d < 1", g)
		}
		sum += g
	}
	mean := float64(sum) / n
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("geometric mean %v, want ~%v", mean, 1/p)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(10)
	if g := r.Geometric(1); g != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestExponentialMean(t *testing.T) {
	r := New(11)
	const mean, n = 12.5, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(mean)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("exponential mean %v, want ~%v", got, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	// Over many shuffles of [0,1,2], all 6 permutations should appear.
	r := New(13)
	seen := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen[a]++
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d permutations of 3 elements, want 6", len(seen))
	}
	for p, c := range seen {
		if c < 700 {
			t.Fatalf("permutation %v appeared only %d times; shuffle is biased", p, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(14)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Fatalf("zipf counts not monotonically skewed: c0=%d c10=%d c90=%d",
			counts[0], counts[10], counts[90])
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(15)
	z := NewZipf(r, 7, 1.2)
	for i := 0; i < 10000; i++ {
		if v := z.Next(); v < 0 || v >= 7 {
			t.Fatalf("zipf rank %d out of [0,7)", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0 items) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestLogNormalPositive(t *testing.T) {
	r := New(16)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("lognormal variate %v <= 0", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 4096, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
