package xrand

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// goldenLines renders the generator streams pinned by testdata/golden.txt:
// for each seed, the first outputs of every distribution the simulator
// consumes, plus a Split child stream. Floats use hex formatting, so the
// comparison is bit-exact.
//
// These streams are a contract: EXPERIMENTS.md results are only
// regenerable while they hold. xrand exists precisely because math/rand
// does not make this promise across Go releases — if this test fails, the
// generator was changed (or miscompiled), and every archived experiment is
// invalidated rather than silently drifting.
func goldenLines() []string {
	var lines []string
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		r := New(seed)
		vals := make([]string, 8)
		for i := range vals {
			vals[i] = fmt.Sprintf("%016x", r.Uint64())
		}
		lines = append(lines, fmt.Sprintf("seed=%d uint64 %s", seed, strings.Join(vals, " ")))

		r = New(seed)
		fs := make([]string, 4)
		for i := range fs {
			fs[i] = f64(r.Float64())
		}
		lines = append(lines, fmt.Sprintf("seed=%d float64 %s", seed, strings.Join(fs, " ")))

		r = New(seed)
		ns := make([]string, 4)
		for i := range ns {
			ns[i] = f64(r.NormFloat64())
		}
		lines = append(lines, fmt.Sprintf("seed=%d norm %s", seed, strings.Join(ns, " ")))

		r = New(seed)
		is := make([]string, 8)
		for i := range is {
			is[i] = strconv.Itoa(r.Intn(1000))
		}
		lines = append(lines, fmt.Sprintf("seed=%d intn1000 %s", seed, strings.Join(is, " ")))

		z := NewZipf(New(seed), 100, 1.2)
		zs := make([]string, 8)
		for i := range zs {
			zs[i] = strconv.Itoa(z.Next())
		}
		lines = append(lines, fmt.Sprintf("seed=%d zipf100s1.2 %s", seed, strings.Join(zs, " ")))

		child := New(seed).Split()
		cs := make([]string, 4)
		for i := range cs {
			cs[i] = fmt.Sprintf("%016x", child.Uint64())
		}
		lines = append(lines, fmt.Sprintf("seed=%d split %s", seed, strings.Join(cs, " ")))

		perm := New(seed).Perm(8)
		ps := make([]string, len(perm))
		for i, p := range perm {
			ps[i] = strconv.Itoa(p)
		}
		lines = append(lines, fmt.Sprintf("seed=%d perm8 %s", seed, strings.Join(ps, " ")))
	}
	return lines
}

// TestGoldenStreams compares every stream against the pinned fixture.
// Regenerate deliberately (after an intentional, experiment-invalidating
// change) with SCALESIM_UPDATE_GOLDEN=1 go test ./internal/xrand.
func TestGoldenStreams(t *testing.T) {
	path := filepath.Join("testdata", "golden.txt")
	got := strings.Join(goldenLines(), "\n") + "\n"
	if os.Getenv("SCALESIM_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with SCALESIM_UPDATE_GOLDEN=1): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := range wantLines {
		g := ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if g != wantLines[i] {
			t.Errorf("stream drifted at fixture line %d:\n got  %s\n want %s", i+1, g, wantLines[i])
		}
	}
	if len(gotLines) != len(wantLines) {
		t.Errorf("fixture has %d lines, generator produced %d", len(wantLines), len(gotLines))
	}
}
