// Package xrand provides deterministic pseudo-random number generation for
// the simulator and the ML stack.
//
// The standard library's math/rand does not guarantee that a given seed
// produces the same stream across Go releases, and math/rand/v2 removed
// seeding of the global source entirely. Reproducibility is a core promise of
// this project — every experiment in EXPERIMENTS.md must be regenerable
// bit-for-bit — so we implement our own small, well-known generators:
// splitmix64 for seeding and xoshiro256** for the main stream.
package xrand

import "math"

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, as recommended by
// the xoshiro authors. Distinct seeds yield statistically independent
// streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child generator. It is used to give each
// benchmark instance, mix, and ML estimator its own stream so that adding a
// consumer never perturbs another consumer's sequence.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exponential returns an exponential variate with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Geometric returns a geometric variate in {1, 2, ...} with success
// probability p per trial (mean 1/p). It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	u := 1 - r.Float64() // in (0, 1]
	return 1 + int(math.Log(u)/math.Log(1-p))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a Zipf distribution over {0, ..., n-1} with exponent s,
// using inverse-CDF on a precomputed table when called through NewZipf. This
// direct method is O(log n) per sample.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s > 0. Lower ranks
// are more probable. It panics if n <= 0 or s <= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("xrand: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against FP round-off
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
