// Package runner is the concurrent experiment-campaign engine: it executes
// batches of simulation jobs (machine config × workload × options) on a
// bounded pool of worker goroutines and memoizes results in a
// content-addressed cache, so repeated design points across experiment
// sweeps simulate exactly once.
//
// # Determinism
//
// Each simulation is single-threaded and fully deterministic for a fixed
// (config, workload, options, seed); jobs share no mutable state. Results
// are therefore bit-identical regardless of worker count or scheduling
// order, and RunBatch returns them in submission order. The only
// non-deterministic field is the measured host wall-clock.
//
// # Memoization
//
// The cache key is a SHA-256 hash over a canonical field-by-field encoding
// (see key.go) of the complete machine configuration, every workload
// profile's full parameter set, and the simulation options (which include
// the seed). Two jobs collide only if they describe the same simulation, in
// which case the second is served the first's result — including across
// concurrent submissions (in-flight deduplication: the duplicate waits
// instead of re-simulating). Keys are byte-stable across processes, so they
// are also safe to persist.
//
// # Isolation
//
// A panicking simulation does not kill the campaign: the panic is recovered
// in the worker, converted into a *PanicError for that one job, and retried
// up to the engine's retry budget before being reported.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"scalesim/internal/config"
	"scalesim/internal/metrics"
	"scalesim/internal/sim"
)

// Job is one unit of campaign work: a workload simulated on a machine with
// given options. The seed lives inside Options. The content-addressed cache
// key is computed by Key (key.go).
type Job struct {
	Config   *config.SystemConfig
	Workload sim.Workload
	Options  sim.Options
}

// PanicError wraps a panic recovered from a simulation worker.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: simulation panicked: %v", e.Value)
}

// RunFunc is the simulation entry point the engine drives; injectable for
// tests. The default is sim.RunContext.
type RunFunc func(context.Context, *config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error)

// Outcome is one job's result within a batch: either a simulation result or
// an error, plus whether the memo cache served it.
type Outcome struct {
	Result   *sim.Result
	Err      error
	CacheHit bool
	// WallClock is the host time this job occupied a worker — near zero for
	// cache hits, the simulation time (plus any in-flight wait) otherwise.
	WallClock time.Duration
}

// entry is one cache slot. done is closed when res/err are final.
type entry struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// Engine executes jobs on a bounded worker pool with memoization. An Engine
// is safe for concurrent use; its cache persists across batches, so
// consecutive campaigns (e.g. successive figures of an experiment suite)
// share their common design points.
type Engine struct {
	workers int
	retries int
	run     RunFunc

	mu      sync.Mutex
	cache   map[string]*entry
	stats   metrics.CampaignStats
	simTime map[string]time.Duration
	simRuns map[string]int
}

// New returns an engine with the given worker-pool size (<= 0 selects
// GOMAXPROCS) and one retry after a recovered panic.
func New(workers int) *Engine {
	return &Engine{
		workers: workers,
		retries: 1,
		run:     sim.RunContext,
		cache:   make(map[string]*entry),
		simTime: make(map[string]time.Duration),
		simRuns: make(map[string]int),
	}
}

// SetWorkers resizes the worker pool for subsequent batches (<= 0 selects
// GOMAXPROCS).
func (e *Engine) SetWorkers(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.workers = n
}

// SetRunFunc replaces the simulation entry point (tests).
func (e *Engine) SetRunFunc(fn RunFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.run = fn
}

// Workers returns the effective pool size.
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.effectiveWorkers()
}

func (e *Engine) effectiveWorkers() int {
	if e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() metrics.CampaignStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// SimTime returns a copy of accumulated simulator wall-clock per
// configuration name (cache misses only — cached results cost nothing).
func (e *Engine) SimTime() map[string]time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]time.Duration, len(e.simTime))
	//simlint:ignore maporder copies into a map under the same keys; order cannot leak
	for k, v := range e.simTime {
		out[k] = v
	}
	return out
}

// ConfigTime aggregates the simulator wall-clock spent on one machine
// configuration (cache misses only — cached results cost nothing).
type ConfigTime struct {
	Name string
	Runs int // simulator invocations
	Time time.Duration
}

// Report is a campaign execution report: the engine's counters plus the
// per-configuration breakdown of where simulation time went.
type Report struct {
	Stats     metrics.CampaignStats
	PerConfig []ConfigTime // sorted by configuration name
}

// Report returns a snapshot of the engine's execution report.
func (e *Engine) Report() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := Report{Stats: e.stats, PerConfig: make([]ConfigTime, 0, len(e.simTime))}
	//simlint:ignore maporder PerConfig is sorted by name immediately below
	for name, d := range e.simTime {
		r.PerConfig = append(r.PerConfig, ConfigTime{Name: name, Runs: e.simRuns[name], Time: d})
	}
	sort.Slice(r.PerConfig, func(i, j int) bool { return r.PerConfig[i].Name < r.PerConfig[j].Name })
	return r
}

// String renders the report as a small table.
func (r Report) String() string {
	out := "campaign: " + r.Stats.String()
	if len(r.PerConfig) == 0 {
		return out
	}
	out += "\n  configuration                             runs   sim time"
	var total time.Duration
	for _, c := range r.PerConfig {
		out += fmt.Sprintf("\n  %-40s %5d %10.2fs", c.Name, c.Runs, c.Time.Seconds())
		total += c.Time
	}
	out += fmt.Sprintf("\n  %-40s %5d %10.2fs", "total", r.Stats.UniqueRuns, total.Seconds())
	return out
}

// Run executes one job through the cache. hit reports whether the result
// came from the cache (or an identical in-flight job).
func (e *Engine) Run(ctx context.Context, job Job) (res *sim.Result, hit bool, err error) {
	key := job.Key()
	e.mu.Lock()
	e.stats.Jobs++
	if ent, ok := e.cache[key]; ok {
		e.stats.CacheHits++
		e.mu.Unlock()
		select {
		case <-ent.done:
			return ent.res, true, ent.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	ent := &entry{done: make(chan struct{})}
	e.cache[key] = ent
	e.stats.UniqueRuns++
	e.mu.Unlock()

	ent.res, ent.err = e.execute(ctx, job)
	e.mu.Lock()
	if ent.err != nil {
		e.stats.Failures++
		// Do not cache cancellation: the same job may be re-submitted with
		// a live context later and must then actually run.
		if errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded) {
			delete(e.cache, key)
			e.stats.UniqueRuns--
		}
	} else {
		e.simTime[job.Config.Name] += ent.res.WallClock
		e.simRuns[job.Config.Name]++
	}
	e.mu.Unlock()
	close(ent.done)
	return ent.res, false, ent.err
}

// execute runs the job with panic isolation, retrying recovered panics up
// to the engine's retry budget.
func (e *Engine) execute(ctx context.Context, job Job) (*sim.Result, error) {
	e.mu.Lock()
	run, retries := e.run, e.retries
	e.mu.Unlock()
	for attempt := 0; ; attempt++ {
		res, err := protect(ctx, run, job)
		var pe *PanicError
		if err != nil && errors.As(err, &pe) && attempt < retries {
			e.mu.Lock()
			e.stats.PanicRetries++
			e.mu.Unlock()
			continue
		}
		return res, err
	}
}

// protect invokes one simulation attempt, converting panics into errors.
func protect(ctx context.Context, run RunFunc, job Job) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return run(ctx, job.Config, job.Workload, job.Options)
}

// RunBatch executes jobs on the worker pool and returns their outcomes in
// submission order. Duplicated jobs (same Key) simulate once. The progress
// callback, when non-nil, is invoked serially after each job completes.
// RunBatch returns ctx.Err() when the batch was cut short by cancellation;
// per-job errors (including cancellation of in-flight jobs) are reported in
// the outcomes either way.
func (e *Engine) RunBatch(ctx context.Context, jobs []Job, progress func(metrics.Progress)) ([]Outcome, error) {
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out, ctx.Err()
	}
	workers := e.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		wg        sync.WaitGroup
		progMu    sync.Mutex
		completed int
		hits      int
	)
	idx := make(chan int)
	worker := func() {
		defer wg.Done()
		for i := range idx {
			t0 := time.Now() //simlint:ignore wallclock measures Outcome.WallClock reporting only; never simulated state
			res, hit, err := e.Run(ctx, jobs[i])
			//simlint:ignore wallclock measures Outcome.WallClock reporting only; never simulated state
			out[i] = Outcome{Result: res, Err: err, CacheHit: hit, WallClock: time.Since(t0)}
			progMu.Lock()
			completed++
			if hit {
				hits++
			}
			if progress != nil {
				progress(metrics.Progress{
					Job: i, Completed: completed, Total: len(jobs),
					CacheHit: hit, Err: err,
				})
			}
			progMu.Unlock()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark unfed jobs as cancelled so the outcome slice is complete.
			for j := i; j < len(jobs); j++ {
				out[j] = Outcome{Err: ctx.Err()}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, ctx.Err()
}
