// Package runner is the concurrent experiment-campaign engine: it executes
// batches of simulation jobs (machine config × workload × options) on a
// bounded pool of worker goroutines and memoizes results in a
// content-addressed cache, so repeated design points across experiment
// sweeps simulate exactly once.
//
// # Determinism
//
// Each simulation is single-threaded and fully deterministic for a fixed
// (config, workload, options, seed); jobs share no mutable state. Results
// are therefore bit-identical regardless of worker count or scheduling
// order, and RunBatch returns them in submission order. The only
// non-deterministic field is the measured host wall-clock.
//
// # Memoization
//
// The cache key is a SHA-256 hash over a canonical field-by-field encoding
// (see key.go) of the complete machine configuration, every workload
// profile's full parameter set, and the simulation options (which include
// the seed). Two jobs collide only if they describe the same simulation, in
// which case the second is served the first's result — including across
// concurrent submissions (in-flight deduplication: the duplicate waits
// instead of re-simulating, and its outcome reports SourceCoalesced rather
// than SourceMemory). Keys are byte-stable across processes, so they are
// also safe to persist.
//
// A second, durable memoization tier sits behind the in-memory map when a
// ResultStore is attached (SetStore): a job missing from memory is looked up
// on disk before simulating, and freshly computed results are written back.
// Store access is strictly best-effort — a corrupt or unreadable artifact is
// counted (CampaignStats.StoreCorrupt) and the job recomputed; store write
// failures never fail the job, whose result is still served from memory.
//
// A third, learned tier sits between disk and compute when a Predictor is
// attached (SetPredictor): a job that misses both ground-truth tiers is
// offered to a surrogate model trained on accumulated results, which either
// serves an approximate prediction (SourceModel, Outcome.Approximate) or
// falls through to the simulator. Predictions never enter the memory cache
// or the store — those tiers hold ground truth only — and every computed or
// disk-loaded result is fed back to the predictor's training set.
//
// # Isolation and retry
//
// A panicking simulation does not kill the campaign: the panic is recovered
// in the worker and converted into a *PanicError for that one job.
// Transient failures — panics, I/O errors, timeouts (see Transient) — are
// retried with exponential backoff up to the engine's RetryPolicy;
// deterministic simulation errors are not (retrying a pure function cannot
// change its answer). Exhausted or non-transient failures are wrapped in
// ErrJobFailed. Backoff sleeping goes through an injectable function
// (SetSleep) so tests control time.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"scalesim/internal/config"
	"scalesim/internal/metrics"
	"scalesim/internal/sim"
)

// Job is one unit of campaign work: a workload simulated on a machine with
// given options. The seed lives inside Options. The content-addressed cache
// key is computed by Key (key.go).
type Job struct {
	Config   *config.SystemConfig
	Workload sim.Workload
	Options  sim.Options
}

// PanicError wraps a panic recovered from a simulation worker.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: simulation panicked: %v", e.Value)
}

// ErrJobFailed marks a job that exhausted its retry budget or failed with a
// non-transient error. Test with errors.Is; the underlying cause (including
// a *PanicError) remains reachable through errors.As.
var ErrJobFailed = errors.New("job failed")

// RunFunc is the simulation entry point the engine drives; injectable for
// tests. The default is sim.RunContext.
type RunFunc func(context.Context, *config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error)

// Source says where a job's result came from.
type Source string

const (
	// SourceCompute: the simulator actually ran for this job.
	SourceCompute Source = "compute"
	// SourceMemory: served by the in-memory memo cache — the identical job
	// had already completed when this one was submitted.
	SourceMemory Source = "memory"
	// SourceCoalesced: deduplicated against an identical job that was still
	// in flight — this job waited for that run instead of simulating.
	SourceCoalesced Source = "coalesced"
	// SourceDisk: loaded from the attached ResultStore.
	SourceDisk Source = "disk"
	// SourceModel: predicted by the attached surrogate Predictor instead of
	// simulating — an approximate result (Outcome.Approximate is set).
	SourceModel Source = "model"
)

// Outcome is one job's result within a batch: either a simulation result or
// an error, plus where it came from and what it cost.
type Outcome struct {
	Result *sim.Result
	Err    error
	// Source reports whether the simulator ran (SourceCompute) or the
	// result was served from memory or disk.
	Source Source
	// CacheHit is Source != SourceCompute: the simulator did not run.
	CacheHit bool
	// Retries counts failed attempts before the final one (0 normally).
	Retries int
	// WallClock is the host time this job occupied a worker — near zero for
	// cache hits, the simulation time (plus any in-flight wait) otherwise.
	WallClock time.Duration
	// Approximate marks a result predicted by the surrogate model
	// (SourceModel, or SourceCoalesced onto a model-served flight) rather
	// than simulated or loaded from ground truth.
	Approximate bool
}

// ResultStore is the durable memoization tier (implemented by
// internal/store). Load reports (result, found, err); a non-nil error means
// the artifact existed but was unusable — the engine counts it and
// recomputes. Begin/Fail journal a job's lifecycle so an interrupted
// campaign can tell killed jobs from failed ones.
type ResultStore interface {
	Load(key string) (*sim.Result, bool, error)
	Begin(key string) error
	Save(key string, res *sim.Result) error
	Fail(key string) error
}

// Predictor is the learned memoization tier (implemented by
// internal/surrogate): a model trained on accumulated ground truth that
// can answer some design-point queries without simulating. Predict returns
// an approximate result and true when the model is confident enough to
// serve the job, or false to fall through to compute — a rejected query is
// indistinguishable from having no predictor at all. Observe feeds a
// ground-truth result (computed or loaded from disk) back into the
// training set; the predictor decides when to refit.
//
// Both methods are called outside the engine's lock and must be safe for
// concurrent use. Predictions never enter the ground-truth tiers: the
// engine neither caches a model-served result in memory nor writes it to
// the ResultStore.
type Predictor interface {
	Predict(job Job) (*sim.Result, bool)
	Observe(job Job, res *sim.Result)
}

// RetryPolicy bounds transient-failure retries. Attempt n (1-based) that
// fails transiently sleeps BaseDelay<<(n-1), capped at MaxDelay, before the
// next attempt, up to MaxAttempts total attempts.
type RetryPolicy struct {
	MaxAttempts int           // total attempts (>=1; a value <1 means 1)
	BaseDelay   time.Duration // backoff before the first retry
	MaxDelay    time.Duration // backoff cap
}

// DefaultRetryPolicy is the engine's default: one retry after a short pause.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second}

// backoff returns the sleep before retry n (1-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// Transient reports whether an error is worth retrying: recovered panics,
// I/O errors, and timeouts can succeed on a second attempt; deterministic
// simulation errors (and context cancellation) cannot.
func Transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	var sys *os.SyscallError
	if errors.As(err, &sys) {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var timeout interface{ Timeout() bool }
	if errors.As(err, &timeout) && timeout.Timeout() {
		return true
	}
	var temp interface{ Temporary() bool }
	if errors.As(err, &temp) && temp.Temporary() {
		return true
	}
	return false
}

// entry is one cache slot. done is closed when res/err are final. approx
// marks a model-predicted result; such entries are evicted before done
// closes (the memory tier holds ground truth only), so approx is read only
// by waiters that coalesced onto the flight.
type entry struct {
	done    chan struct{}
	res     *sim.Result
	err     error
	retries int
	approx  bool
}

// Engine executes jobs on a bounded worker pool with memoization. An Engine
// is safe for concurrent use; its cache persists across batches, so
// consecutive campaigns (e.g. successive figures of an experiment suite)
// share their common design points.
type Engine struct {
	workers   int
	retry     RetryPolicy
	run       RunFunc
	store     ResultStore
	predictor Predictor
	sleep     func(context.Context, time.Duration) error

	mu      sync.Mutex
	cache   map[string]*entry
	stats   metrics.CampaignStats
	simTime map[string]time.Duration
	simRuns map[string]int
}

// New returns an engine with the given worker-pool size (<= 0 selects
// GOMAXPROCS), the default retry policy, and no durable store.
func New(workers int) *Engine {
	return &Engine{
		workers: workers,
		retry:   DefaultRetryPolicy,
		run:     sim.RunContext,
		sleep:   sleepContext,
		cache:   make(map[string]*entry),
		simTime: make(map[string]time.Duration),
		simRuns: make(map[string]int),
	}
}

// sleepContext is the default backoff sleep: a timer racing the context.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SetWorkers resizes the worker pool for subsequent batches (<= 0 selects
// GOMAXPROCS).
func (e *Engine) SetWorkers(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.workers = n
}

// SetRunFunc replaces the simulation entry point (tests).
func (e *Engine) SetRunFunc(fn RunFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.run = fn
}

// SetStore attaches (or, with nil, detaches) the durable memoization tier.
func (e *Engine) SetStore(s ResultStore) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store = s
}

// SetPredictor attaches (or, with nil, detaches) the learned memoization
// tier. With a predictor attached the lookup order becomes memory → disk →
// model → compute: a job that misses both ground-truth tiers is offered to
// the predictor, and only a rejected (low-confidence) query simulates.
func (e *Engine) SetPredictor(p Predictor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.predictor = p
}

// SetRetry replaces the transient-failure retry policy for subsequent jobs.
func (e *Engine) SetRetry(p RetryPolicy) {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retry = p
}

// SetSleep replaces the backoff sleep function (tests inject a recording
// clock so retry timing stays deterministic).
func (e *Engine) SetSleep(fn func(context.Context, time.Duration) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sleep = fn
}

// Workers returns the effective pool size.
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.effectiveWorkers()
}

func (e *Engine) effectiveWorkers() int {
	if e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() metrics.CampaignStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// SimTime returns a copy of accumulated simulator wall-clock per
// configuration name (cache misses only — cached results cost nothing).
func (e *Engine) SimTime() map[string]time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]time.Duration, len(e.simTime))
	//simlint:ignore maporder copies into a map under the same keys; order cannot leak
	for k, v := range e.simTime {
		out[k] = v
	}
	return out
}

// ConfigTime aggregates the simulator wall-clock spent on one machine
// configuration (cache misses only — cached results cost nothing).
type ConfigTime struct {
	Name string
	Runs int // simulator invocations
	Time time.Duration
}

// Report is a campaign execution report: the engine's counters plus the
// per-configuration breakdown of where simulation time went.
type Report struct {
	Stats     metrics.CampaignStats
	PerConfig []ConfigTime // sorted by configuration name
}

// Report returns a snapshot of the engine's execution report.
func (e *Engine) Report() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := Report{Stats: e.stats, PerConfig: make([]ConfigTime, 0, len(e.simTime))}
	//simlint:ignore maporder PerConfig is sorted by name immediately below
	for name, d := range e.simTime {
		r.PerConfig = append(r.PerConfig, ConfigTime{Name: name, Runs: e.simRuns[name], Time: d})
	}
	sort.Slice(r.PerConfig, func(i, j int) bool { return r.PerConfig[i].Name < r.PerConfig[j].Name })
	return r
}

// String renders the report as a small table.
func (r Report) String() string {
	out := "campaign: " + r.Stats.String()
	if len(r.PerConfig) == 0 {
		return out
	}
	out += "\n  configuration                             runs   sim time"
	var total time.Duration
	for _, c := range r.PerConfig {
		out += fmt.Sprintf("\n  %-40s %5d %10.2fs", c.Name, c.Runs, c.Time.Seconds())
		total += c.Time
	}
	out += fmt.Sprintf("\n  %-40s %5d %10.2fs", "total", r.Stats.UniqueRuns, total.Seconds())
	return out
}

// Run executes one job through the memoization tiers: the in-memory cache,
// then the durable store (if attached), then the surrogate model (if
// attached), then the simulator itself. The returned Outcome carries the
// result or error plus its Source and retry count. WallClock is left zero;
// RunBatch fills it.
func (e *Engine) Run(ctx context.Context, job Job) Outcome {
	key := job.Key()
	e.mu.Lock()
	e.stats.Jobs++
	if ent, ok := e.cache[key]; ok {
		// Distinguish a hit on a completed entry (memory) from coalescing
		// onto a still-in-flight run: the result is identical either way,
		// but the served/batch paths report the dedup through one shared
		// vocabulary (SourceMemory vs SourceCoalesced).
		select {
		case <-ent.done:
			e.stats.CacheHits++
			e.mu.Unlock()
			return Outcome{Result: ent.res, Err: ent.err, Source: SourceMemory, CacheHit: true, Retries: ent.retries}
		default:
		}
		e.stats.CoalescedHits++
		e.mu.Unlock()
		select {
		case <-ent.done:
			return Outcome{Result: ent.res, Err: ent.err, Source: SourceCoalesced, CacheHit: true, Retries: ent.retries, Approximate: ent.approx}
		case <-ctx.Done():
			return Outcome{Err: ctx.Err(), Source: SourceCoalesced, CacheHit: true}
		}
	}
	ent := &entry{done: make(chan struct{})}
	e.cache[key] = ent
	store, predictor := e.store, e.predictor
	e.mu.Unlock()

	src := SourceCompute
	if store != nil {
		if res, ok, lerr := store.Load(key); ok {
			ent.res, src = res, SourceDisk
			if predictor != nil {
				// Disk hits are ground truth the model may not have seen
				// (e.g. computed by an earlier process): feed them back.
				predictor.Observe(job, res)
			}
		} else if lerr != nil {
			// Quarantined by the store; recompute. Never fatal.
			e.mu.Lock()
			e.stats.StoreCorrupt++
			e.mu.Unlock()
		}
	}
	if src == SourceCompute && predictor != nil {
		// The learned tier sits between disk and compute: serve the model's
		// answer when its confidence gate passes, otherwise fall through to
		// the simulator as if no predictor were attached.
		if res, ok := predictor.Predict(job); ok {
			ent.res, ent.approx, src = res, true, SourceModel
		}
	}
	if src == SourceCompute {
		if store != nil {
			_ = store.Begin(key) // best-effort journaling
		}
		ent.res, ent.err, ent.retries = e.execute(ctx, job)
		if store != nil {
			switch {
			case ent.err == nil:
				_ = store.Save(key, ent.res) // best-effort: memory still serves it
			case !errors.Is(ent.err, context.Canceled) && !errors.Is(ent.err, context.DeadlineExceeded):
				_ = store.Fail(key)
			}
		}
		if ent.err == nil && predictor != nil {
			// Active learning: every computed result joins the training
			// set, so gate-rejected queries teach the model the region it
			// was unsure about.
			predictor.Observe(job, ent.res)
		}
	}

	e.mu.Lock()
	switch {
	case ent.err == nil && src == SourceDisk:
		e.stats.DiskHits++
	case ent.err == nil && src == SourceModel:
		e.stats.ModelHits++
		// Approximations never enter the ground-truth memory tier: evict
		// the entry so an identical later query re-predicts (the model may
		// have learned since — or grown confident enough to stand aside).
		// Waiters already coalesced onto this flight still read ent.
		delete(e.cache, key)
	case ent.err == nil:
		e.stats.UniqueRuns++
		e.simTime[job.Config.Name] += ent.res.WallClock
		e.simRuns[job.Config.Name]++
	default:
		e.stats.Failures++
		// Do not cache cancellation: the same job may be re-submitted with
		// a live context later and must then actually run.
		if errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded) {
			delete(e.cache, key)
		} else {
			e.stats.UniqueRuns++
		}
	}
	e.mu.Unlock()
	close(ent.done)
	return Outcome{Result: ent.res, Err: ent.err, Source: src, CacheHit: src != SourceCompute, Retries: ent.retries, Approximate: ent.approx}
}

// execute runs the job with panic isolation, retrying transient failures
// with exponential backoff up to the engine's retry policy. The final error
// of an exhausted or non-transient failure wraps ErrJobFailed (and, through
// it, the underlying cause); context errors pass through unwrapped.
func (e *Engine) execute(ctx context.Context, job Job) (*sim.Result, error, int) {
	e.mu.Lock()
	run, pol, sleep := e.run, e.retry, e.sleep
	workers := e.effectiveWorkers()
	e.mu.Unlock()
	// Split the host's parallelism budget between job-level and core-level
	// workers: a job that left CoreWorkers at auto gets its share of
	// GOMAXPROCS given the engine's pool size, so a wide campaign does not
	// oversubscribe the host while a job-serial engine (workers=1) hands
	// each simulation the whole machine. CoreWorkers is not part of the
	// cache key — it cannot change results — so rewriting it here never
	// changes which stored result the job maps to.
	if job.Options.CoreWorkers == 0 {
		split := runtime.GOMAXPROCS(0) / workers
		if split < 1 {
			split = 1
		}
		job.Options.CoreWorkers = split
	}
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	retries := 0
	for attempt := 1; ; attempt++ {
		res, err := protect(ctx, run, job)
		if err == nil {
			return res, nil, retries
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err, retries
		}
		if attempt >= pol.MaxAttempts || !Transient(err) {
			return nil, fmt.Errorf("runner: %w after %d attempt(s): %w", ErrJobFailed, attempt, err), retries
		}
		retries++
		e.mu.Lock()
		e.stats.Retries++
		var pe *PanicError
		if errors.As(err, &pe) {
			e.stats.PanicRetries++
		}
		e.mu.Unlock()
		if serr := sleep(ctx, pol.backoff(retries)); serr != nil {
			return nil, serr, retries
		}
	}
}

// protect invokes one simulation attempt, converting panics into errors.
func protect(ctx context.Context, run RunFunc, job Job) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return run(ctx, job.Config, job.Workload, job.Options)
}

// RunBatch executes jobs on the worker pool and returns their outcomes in
// submission order. Duplicated jobs (same Key) simulate once. The progress
// callback, when non-nil, is invoked serially after each job completes.
// RunBatch returns ctx.Err() when the batch was cut short by cancellation;
// per-job errors (including cancellation of in-flight jobs) are reported in
// the outcomes either way.
func (e *Engine) RunBatch(ctx context.Context, jobs []Job, progress func(metrics.Progress)) ([]Outcome, error) {
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out, ctx.Err()
	}
	workers := e.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		wg        sync.WaitGroup
		progMu    sync.Mutex
		completed int
	)
	idx := make(chan int)
	worker := func() {
		defer wg.Done()
		for i := range idx {
			t0 := time.Now() //simlint:ignore wallclock measures Outcome.WallClock reporting only; never simulated state
			oc := e.Run(ctx, jobs[i])
			//simlint:ignore wallclock measures Outcome.WallClock reporting only; never simulated state
			oc.WallClock = time.Since(t0)
			out[i] = oc
			progMu.Lock()
			completed++
			if progress != nil {
				progress(metrics.Progress{
					Job: i, Completed: completed, Total: len(jobs),
					CacheHit: oc.CacheHit, Err: oc.Err,
				})
			}
			progMu.Unlock()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark unfed jobs as cancelled so the outcome slice is complete.
			for j := i; j < len(jobs); j++ {
				out[j] = Outcome{Err: ctx.Err()}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, ctx.Err()
}
