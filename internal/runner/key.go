// Canonical cache-key encoding for the campaign engine.
//
// The memoization key must be a pure function of a job's *semantic content*:
// the machine configuration, every workload profile's parameters, and the
// simulation options. Hashing Go's reflected "%+v" rendering is not that —
// any pointer-, map-, or interface-typed field (such as a telemetry sink)
// renders as an address or in nondeterministic order, making keys differ
// between processes that describe the identical simulation and silently
// defeating cross-campaign memoization. Instead every field is written
// explicitly, in a fixed order, with a fixed format; the encoding (and the
// regression test pinning a fixture key) must be extended whenever a
// semantic field is added to config.SystemConfig, trace.Profile or
// sim.Options.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"scalesim/internal/config"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
)

// Key returns the job's content-addressed cache key: a hex SHA-256 over a
// canonical field-by-field encoding of the full configuration, every
// profile's parameters, and the options (seed included). Profiles are keyed
// by value, so two custom benchmarks sharing a name but differing in any
// parameter never collide. The key is byte-stable across processes and
// platforms. Non-semantic option fields (the telemetry sink) are excluded;
// whether telemetry is enabled is included, because it changes the result's
// content (Result.Trace).
func (j Job) Key() string {
	h := sha256.New()
	if j.Config != nil {
		writeConfig(h, j.Config)
	}
	for _, p := range j.Workload.Profiles {
		if p != nil {
			writeProfile(h, p)
		}
	}
	writeOptions(h, j.Options)
	return hex.EncodeToString(h.Sum(nil))
}

// writeConfig encodes every semantic field of the machine configuration.
// Floats use Go's shortest round-trip formatting (%v), which is exact and
// deterministic.
func writeConfig(w io.Writer, c *config.SystemConfig) {
	fmt.Fprintf(w, "cfg|name=%s|cores=%d\n", c.Name, c.Cores)
	fmt.Fprintf(w, "core|freq=%v|width=%d|rob=%d|loads=%d|stores=%d|mshrs=%d|mispredict=%d\n",
		c.Core.FrequencyGHz, c.Core.IssueWidth, c.Core.ROBSize,
		c.Core.MaxLoads, c.Core.MaxStores, c.Core.MaxL1DMisses, c.Core.MispredictCost)
	writeCacheLevel(w, "l1i", c.L1I)
	writeCacheLevel(w, "l1d", c.L1D)
	writeCacheLevel(w, "l2", c.L2)
	fmt.Fprintf(w, "llc|slices=%d|slice=%d|assoc=%d|line=%d|time=%d\n",
		c.LLC.Slices, int64(c.LLC.SlicePerCore), c.LLC.Assoc, int64(c.LLC.LineSize), c.LLC.AccessTime)
	fmt.Fprintf(w, "noc|w=%d|h=%d|csls=%d|link=%v|hop=%d\n",
		c.NoC.MeshWidth, c.NoC.MeshHeight, c.NoC.CrossSectionLinks,
		float64(c.NoC.LinkGBps), c.NoC.HopLatency)
	fmt.Fprintf(w, "dram|mcs=%d|permc=%v|lat=%d\n",
		c.DRAM.Controllers, float64(c.DRAM.PerControllerGBps), c.DRAM.BaseLatency)
}

func writeCacheLevel(w io.Writer, tag string, l config.CacheLevelConfig) {
	fmt.Fprintf(w, "%s|size=%d|assoc=%d|line=%d|time=%d\n",
		tag, int64(l.Size), l.Assoc, int64(l.LineSize), l.AccessTime)
}

// writeProfile encodes one workload profile by value, regions included.
func writeProfile(w io.Writer, p *trace.Profile) {
	fmt.Fprintf(w, "prof|name=%s|cpi=%v|loads=%d|stores=%d|branches=%d|mlp=%v|static=%d|hard=%v|code=%d\n",
		p.Name, p.BaseCPI, p.LoadsPerKI, p.StoresPerKI, p.BranchesPerKI,
		p.MLP, p.StaticBranches, p.HardFrac, int64(p.IFootprint))
	for _, r := range p.Regions {
		fmt.Fprintf(w, "region|size=%d|frac=%v|pattern=%d|elem=%d|zipf=%v\n",
			int64(r.Size), r.Frac, uint8(r.Pattern), r.ElemSize, r.ZipfS)
	}
}

// writeOptions encodes the simulation options. The telemetry sink is
// excluded (a sink's identity is not part of the design point); the
// enablement and warmup-coverage bits are included, since they change the
// produced Result.
func writeOptions(w io.Writer, o sim.Options) {
	traced, warm := false, false
	if o.Telemetry != nil {
		traced, warm = true, o.Telemetry.Warmup
	}
	fmt.Fprintf(w, "opts|instr=%d|warmup=%d|epoch=%v|scale=%d|seed=%d|nofb=%t|part=%t|pf=%t|trace=%t|tracewarm=%t\n",
		o.Instructions, o.Warmup, o.EpochCycles, o.CapacityScale, o.Seed,
		o.NoFeedback, o.PartitionedLLC, o.EnablePrefetch, traced, warm)
}
