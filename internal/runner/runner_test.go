package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalesim/internal/config"
	"scalesim/internal/metrics"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
)

// job builds a distinct design point by seed (the seed lives in Options and
// therefore in the cache key).
func job(seed uint64) Job {
	return Job{
		Config:   config.Target(),
		Workload: sim.Workload{Profiles: []*trace.Profile{trace.Suite()[0]}},
		Options:  sim.Options{Seed: seed},
	}
}

// fakeResult fabricates a result carrying the seed, so tests can check which
// execution produced it.
func fakeResult(seed uint64) *sim.Result {
	return &sim.Result{ConfigName: fmt.Sprintf("fake-%d", seed)}
}

func countingEngine(workers int, delay time.Duration) (*Engine, *atomic.Int64) {
	e := New(workers)
	var calls atomic.Int64
	e.SetRunFunc(func(ctx context.Context, _ *config.SystemConfig, _ sim.Workload, o sim.Options) (*sim.Result, error) {
		calls.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return fakeResult(o.Seed), nil
	})
	return e, &calls
}

func TestKeyContentAddressing(t *testing.T) {
	a, b := job(1), job(1)
	if a.Key() != b.Key() {
		t.Fatal("identical jobs hash differently")
	}
	if a.Key() == job(2).Key() {
		t.Fatal("seed not part of the key")
	}
	// Same profile name, different parameters: must not collide.
	p1 := *trace.Suite()[0]
	p2 := p1
	p2.BaseCPI += 0.1
	j1 := Job{Config: config.Target(), Workload: sim.Workload{Profiles: []*trace.Profile{&p1}}}
	j2 := Job{Config: config.Target(), Workload: sim.Workload{Profiles: []*trace.Profile{&p2}}}
	if j1.Key() == j2.Key() {
		t.Fatal("profiles hashed by name only")
	}
	// Different configs must not collide.
	small, err := config.ScaleModel(config.Target(), 2, config.ScaleModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j3 := Job{Config: small, Workload: j1.Workload}
	if j1.Key() == j3.Key() {
		t.Fatal("config not part of the key")
	}
}

// fixtureJob is a fully specified design point for the pinned-key test:
// every semantic field is set explicitly so the expected hash depends only on
// the canonical encoding (and the Table II target configuration).
func fixtureJob() Job {
	prof := &trace.Profile{
		Name:           "fixture",
		BaseCPI:        0.45,
		LoadsPerKI:     260,
		StoresPerKI:    110,
		BranchesPerKI:  150,
		MLP:            3.5,
		StaticBranches: 4096,
		HardFrac:       0.125,
		IFootprint:     96 * 1024,
		Regions: []trace.Region{
			{Size: 8 << 20, Frac: 0.75, Pattern: trace.Rand, ElemSize: 8, ZipfS: 0},
			{Size: 1 << 16, Frac: 0.25, Pattern: trace.Seq, ElemSize: 64, ZipfS: 0},
		},
	}
	return Job{
		Config:   config.Target(),
		Workload: sim.Workload{Profiles: []*trace.Profile{prof}},
		Options: sim.Options{
			Instructions:  1_000_000,
			Warmup:        250_000,
			EpochCycles:   20_000,
			CapacityScale: 8,
			Seed:          1,
		},
	}
}

// TestKeyPinned pins the canonical key of a fixture job. The key must be
// byte-stable across processes and platforms, so this exact value must
// reproduce on every run; it changes only when a semantic field is added to
// the encoding (key.go), the fixture, or the Table II target — re-pin it
// deliberately in that case.
func TestKeyPinned(t *testing.T) {
	const want = "f9ba0b4b94b316ba10d4db17cd572226e12d8fbae2468c768c36acc3a2311644"
	if got := fixtureJob().Key(); got != want {
		t.Fatalf("fixture key drifted:\n got %s\nwant %s", got, want)
	}
	// And it must be stable within the process, trivially.
	if fixtureJob().Key() != fixtureJob().Key() {
		t.Fatal("fixture key unstable across calls")
	}
}

// TestKeyIgnoresSinkIdentity pins the telemetry rules: the sink's identity
// is not part of the design point, but whether tracing is enabled (and
// whether it covers warmup) is, because it changes Result.Trace.
func TestKeyIgnoresSinkIdentity(t *testing.T) {
	sinkA := sim.NewJSONLSink(nil)
	sinkB := sim.NewJSONLSink(nil)
	ja, jb := job(1), job(1)
	ja.Options.Telemetry = &sim.TelemetryOptions{Sink: sinkA}
	jb.Options.Telemetry = &sim.TelemetryOptions{Sink: sinkB}
	if ja.Key() != jb.Key() {
		t.Fatal("sink identity leaked into the cache key")
	}
	plain := job(1)
	if ja.Key() == plain.Key() {
		t.Fatal("traced and untraced jobs collide (their results differ)")
	}
	warm := job(1)
	warm.Options.Telemetry = &sim.TelemetryOptions{Warmup: true}
	if warm.Key() == ja.Key() {
		t.Fatal("warmup-traced and measure-traced jobs collide")
	}
}

func TestMemoizationAndStats(t *testing.T) {
	e, calls := countingEngine(1, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		oc := e.Run(ctx, job(7))
		if oc.Err != nil {
			t.Fatal(oc.Err)
		}
		if oc.Result.ConfigName != "fake-7" {
			t.Fatalf("wrong result %q", oc.Result.ConfigName)
		}
		if wantHit := i > 0; oc.CacheHit != wantHit {
			t.Fatalf("run %d: hit=%v", i, oc.CacheHit)
		}
		wantSrc := SourceCompute
		if i > 0 {
			wantSrc = SourceMemory
		}
		if oc.Source != wantSrc {
			t.Fatalf("run %d: source=%q, want %q", i, oc.Source, wantSrc)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("%d executions, want 1", calls.Load())
	}
	s := e.Stats()
	if s.Jobs != 3 || s.UniqueRuns != 1 || s.CacheHits != 2 || s.Failures != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInFlightDeduplication(t *testing.T) {
	e, calls := countingEngine(4, 50*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if oc := e.Run(context.Background(), job(1)); oc.Err != nil {
				t.Error(oc.Err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("%d executions for 8 concurrent identical jobs", calls.Load())
	}
	s := e.Stats()
	if s.CacheHits+s.CoalescedHits != 7 || s.UniqueRuns != 1 {
		t.Fatalf("8 identical jobs must yield 1 run and 7 deduplications: %+v", s)
	}
}

// TestCoalescedSource pins the served-vocabulary contract: a job submitted
// while its identical twin is still simulating reports SourceCoalesced and
// counts as a CoalescedHit, while a job submitted after completion reports
// SourceMemory and counts as a CacheHit.
func TestCoalescedSource(t *testing.T) {
	e := New(2)
	entered := make(chan struct{})
	release := make(chan struct{})
	e.SetRunFunc(func(ctx context.Context, _ *config.SystemConfig, _ sim.Workload, o sim.Options) (*sim.Result, error) {
		close(entered)
		<-release
		return fakeResult(o.Seed), nil
	})

	first := make(chan Outcome, 1)
	go func() { first <- e.Run(context.Background(), job(1)) }()
	<-entered // the leader is now in flight

	second := make(chan Outcome, 1)
	go func() { second <- e.Run(context.Background(), job(1)) }()
	// The follower registered Jobs before blocking on the entry; wait for it
	// so the release below cannot race its lookup.
	for e.Stats().CoalescedHits == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	if oc := <-first; oc.Err != nil || oc.Source != SourceCompute {
		t.Fatalf("leader outcome %+v, want computed", oc)
	}
	if oc := <-second; oc.Err != nil || oc.Source != SourceCoalesced || !oc.CacheHit {
		t.Fatalf("in-flight follower outcome %+v, want SourceCoalesced cache hit", oc)
	}
	// After completion the entry serves as a plain memory hit.
	if oc := e.Run(context.Background(), job(1)); oc.Source != SourceMemory {
		t.Fatalf("post-completion outcome %+v, want SourceMemory", oc)
	}
	s := e.Stats()
	if s.UniqueRuns != 1 || s.CoalescedHits != 1 || s.CacheHits != 1 {
		t.Fatalf("stats %+v, want 1 run / 1 coalesced / 1 memory hit", s)
	}
	if s.HitRate() != 2.0/3.0 {
		t.Fatalf("HitRate = %v, want 2/3 (coalesced hits count)", s.HitRate())
	}
}

func TestPanicRetryThenSuccess(t *testing.T) {
	e := New(1)
	var calls atomic.Int64
	e.SetRunFunc(func(_ context.Context, _ *config.SystemConfig, _ sim.Workload, o sim.Options) (*sim.Result, error) {
		if calls.Add(1) == 1 {
			panic("transient")
		}
		return fakeResult(o.Seed), nil
	})
	oc := e.Run(context.Background(), job(1))
	if oc.Err != nil || oc.Result == nil {
		t.Fatalf("retry did not recover: %v", oc.Err)
	}
	if oc.Retries != 1 {
		t.Fatalf("Outcome.Retries = %d, want 1", oc.Retries)
	}
	if s := e.Stats(); s.PanicRetries != 1 || s.Retries != 1 || s.Failures != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPanicExhaustsRetries(t *testing.T) {
	e := New(1)
	e.SetRunFunc(func(context.Context, *config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error) {
		panic("permanent")
	})
	err := e.Run(context.Background(), job(1)).Err
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %v, want *PanicError", err)
	}
	if !errors.Is(err, ErrJobFailed) {
		t.Fatalf("exhausted job error %v does not wrap ErrJobFailed", err)
	}
	if pe.Value != "permanent" || len(pe.Stack) == 0 {
		t.Fatalf("panic detail lost: %+v", pe)
	}
	if s := e.Stats(); s.Failures != 1 || s.PanicRetries != 1 {
		t.Fatalf("stats %+v", s)
	}
	// A panicking job must not take the whole batch down.
	out, err := e.RunBatch(context.Background(), []Job{job(1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.As(out[0].Err, &pe) {
		t.Fatalf("batch outcome %+v", out[0])
	}
}

func TestCancellationNotCached(t *testing.T) {
	e, calls := countingEngine(1, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := e.Run(ctx, job(1)).Err; !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v", err)
	}
	// Resubmitting with a live context must actually run, not replay the
	// cancellation.
	e.SetRunFunc(func(_ context.Context, _ *config.SystemConfig, _ sim.Workload, o sim.Options) (*sim.Result, error) {
		calls.Add(1)
		return fakeResult(o.Seed), nil
	})
	oc := e.Run(context.Background(), job(1))
	if oc.Err != nil || oc.CacheHit {
		t.Fatalf("resubmit: res=%v hit=%v err=%v", oc.Result, oc.CacheHit, oc.Err)
	}
	if s := e.Stats(); s.UniqueRuns != 1 {
		t.Fatalf("cancelled run still counted: %+v", s)
	}
}

func TestRunBatchOrderingAndProgress(t *testing.T) {
	e, calls := countingEngine(4, time.Millisecond)
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = job(uint64(i % 5)) // 5 unique points, 7 duplicates
	}
	var events []metrics.Progress
	out, err := e.RunBatch(context.Background(), jobs, func(p metrics.Progress) {
		events = append(events, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if want := fmt.Sprintf("fake-%d", i%5); o.Result.ConfigName != want {
			t.Fatalf("job %d got %q, want %q (submission order broken)", i, o.Result.ConfigName, want)
		}
	}
	if calls.Load() != 5 {
		t.Fatalf("%d executions, want 5", calls.Load())
	}
	if len(events) != len(jobs) {
		t.Fatalf("%d progress events", len(events))
	}
	last := events[len(events)-1]
	if last.Completed != len(jobs) || last.Total != len(jobs) {
		t.Fatalf("final progress %+v", last)
	}
}

func TestReportPerConfig(t *testing.T) {
	e, _ := countingEngine(2, time.Millisecond)
	jobs := []Job{job(1), job(2), job(1)} // 2 unique runs on one config
	out, err := e.RunBatch(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.WallClock <= 0 {
			t.Fatalf("job %d: no wall-clock recorded", i)
		}
	}
	r := e.Report()
	if r.Stats.Jobs != 3 || r.Stats.UniqueRuns != 2 {
		t.Fatalf("report stats %+v", r.Stats)
	}
	if len(r.PerConfig) != 1 {
		t.Fatalf("%d per-config rows, want 1", len(r.PerConfig))
	}
	row := r.PerConfig[0]
	if row.Name != config.Target().Name || row.Runs != 2 {
		t.Fatalf("per-config row %+v", row)
	}
	s := r.String()
	if !strings.Contains(s, "campaign:") || !strings.Contains(s, row.Name) || !strings.Contains(s, "total") {
		t.Fatalf("report rendering incomplete:\n%s", s)
	}
}

func TestRunBatchCancellationCompletesOutcomes(t *testing.T) {
	e, _ := countingEngine(2, 30*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = job(uint64(i))
	}
	out, err := e.RunBatch(ctx, jobs, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err %v", err)
	}
	cancelled := 0
	for i, o := range out {
		if o.Result == nil && o.Err == nil {
			t.Fatalf("job %d has neither result nor error", i)
		}
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job observed the cancellation")
	}
}
