package runner

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"scalesim/internal/sim"
)

// fakePredictor scripts the learned tier: serve decides whether Predict
// answers, and every Observe call is recorded.
type fakePredictor struct {
	mu       sync.Mutex
	serve    bool
	result   *sim.Result
	predicts int
	observed []*sim.Result
}

func (p *fakePredictor) Predict(job Job) (*sim.Result, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.predicts++
	if !p.serve {
		return nil, false
	}
	return p.result, true
}

func (p *fakePredictor) Observe(job Job, res *sim.Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observed = append(p.observed, res)
}

func (p *fakePredictor) observeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.observed)
}

// TestModelTierServes pins the third memoization tier: a confident
// predictor answers instead of the simulator, the outcome is marked
// approximate with SourceModel, and the hit is counted.
func TestModelTierServes(t *testing.T) {
	e, calls := countingEngine(1, 0)
	approx := &sim.Result{ConfigName: "approx"}
	p := &fakePredictor{serve: true, result: approx}
	e.SetPredictor(p)

	oc := e.Run(context.Background(), job(1))
	if oc.Err != nil {
		t.Fatal(oc.Err)
	}
	if oc.Source != SourceModel || !oc.CacheHit || !oc.Approximate {
		t.Fatalf("outcome = %+v, want approximate SourceModel cache hit", oc)
	}
	if oc.Result != approx {
		t.Fatalf("served result is not the predictor's: %+v", oc.Result)
	}
	if calls.Load() != 0 {
		t.Fatalf("simulator ran %d times behind a confident model", calls.Load())
	}
	s := e.Stats()
	if s.ModelHits != 1 || s.UniqueRuns != 0 || s.CacheHits != 0 {
		t.Fatalf("stats %+v, want exactly 1 model hit", s)
	}
	if s.HitRate() != 1 {
		t.Fatalf("HitRate = %v, want 1 (model hits count)", s.HitRate())
	}
	// A model-served result must NOT be fed back as ground truth.
	if n := p.observeCount(); n != 0 {
		t.Fatalf("predictor observed %d results for a model-served job, want 0", n)
	}
}

// TestModelResultNotCached pins the ground-truth-only memory tier: a
// model-served entry is evicted, so an identical later query re-predicts
// (and reaches the simulator once the gate rejects) instead of reporting a
// stale approximation as SourceMemory ground truth.
func TestModelResultNotCached(t *testing.T) {
	e, calls := countingEngine(1, 0)
	p := &fakePredictor{serve: true, result: &sim.Result{ConfigName: "approx"}}
	e.SetPredictor(p)

	if oc := e.Run(context.Background(), job(1)); oc.Source != SourceModel {
		t.Fatalf("first run source = %q, want model", oc.Source)
	}
	again := e.Run(context.Background(), job(1))
	if again.Source != SourceModel || !again.Approximate {
		t.Fatalf("second run = %+v, want a fresh model prediction (not a memory hit)", again)
	}
	if p.predicts != 2 {
		t.Fatalf("Predict called %d times, want 2 (no caching of approximations)", p.predicts)
	}

	// Gate now rejects: the job must actually simulate, and the computed
	// ground truth joins the training set and the memory cache.
	p.serve = false
	oc := e.Run(context.Background(), job(1))
	if oc.Source != SourceCompute || oc.Approximate {
		t.Fatalf("gate-rejected run = %+v, want exact compute", oc)
	}
	if calls.Load() != 1 {
		t.Fatalf("simulator ran %d times, want 1", calls.Load())
	}
	if n := p.observeCount(); n != 1 {
		t.Fatalf("computed result observed %d times, want 1 (active learning)", n)
	}
	if final := e.Run(context.Background(), job(1)); final.Source != SourceMemory || final.Approximate {
		t.Fatalf("post-compute run = %+v, want ground-truth memory hit", final)
	}
}

// TestModelGateRejectBitIdentical pins the acceptance criterion: with the
// gate rejecting, an engine with a predictor produces the bit-identical
// outcome of an engine without one.
func TestModelGateRejectBitIdentical(t *testing.T) {
	plain, _ := countingEngine(1, 0)
	want := plain.Run(context.Background(), job(7))

	gated, _ := countingEngine(1, 0)
	gated.SetPredictor(&fakePredictor{serve: false})
	got := gated.Run(context.Background(), job(7))

	if got.Err != nil || want.Err != nil {
		t.Fatalf("errs: %v / %v", got.Err, want.Err)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Fatalf("gate-rejected result differs from surrogate-free run:\n got %+v\nwant %+v", got.Result, want.Result)
	}
	if got.Source != SourceCompute || got.Approximate {
		t.Fatalf("gate-rejected outcome = %+v, want plain compute", got)
	}
}

// TestModelTierOrder pins the lookup order memory → disk → model: results
// already in ground-truth tiers are served exactly as before, without the
// predictor ever being consulted; disk hits are observed for training.
func TestModelTierOrder(t *testing.T) {
	dir := t.TempDir()

	// Populate the store with ground truth.
	e1, _ := countingEngine(1, 0)
	e1.SetStore(openStore(t, dir))
	truth := e1.Run(context.Background(), job(5))
	if truth.Source != SourceCompute {
		t.Fatalf("seed run source = %q", truth.Source)
	}

	// Fresh engine with a confident (wrong) predictor AND the store: disk
	// must win, and the model must not even be asked.
	e2, _ := countingEngine(1, 0)
	e2.SetStore(openStore(t, dir))
	p := &fakePredictor{serve: true, result: &sim.Result{ConfigName: "wrong"}}
	e2.SetPredictor(p)
	oc := e2.Run(context.Background(), job(5))
	if oc.Source != SourceDisk || oc.Approximate {
		t.Fatalf("outcome = %+v, want exact disk hit", oc)
	}
	if !reflect.DeepEqual(oc.Result, truth.Result) {
		t.Fatal("disk tier did not serve the stored ground truth")
	}
	if p.predicts != 0 {
		t.Fatalf("predictor consulted %d times behind a disk hit, want 0", p.predicts)
	}
	if n := p.observeCount(); n != 1 {
		t.Fatalf("disk hit observed %d times, want 1 (ground truth feeds training)", n)
	}

	// Memory tier: the disk hit populated the cache; the second query is a
	// memory hit and again bypasses the model.
	if again := e2.Run(context.Background(), job(5)); again.Source != SourceMemory || again.Approximate {
		t.Fatalf("second run = %+v, want memory hit", again)
	}
	if p.predicts != 0 {
		t.Fatal("predictor consulted on a memory hit")
	}
}

// TestModelServedNotStored pins that approximations never reach the durable
// store: after a model-served run, a store-only engine must recompute.
func TestModelServedNotStored(t *testing.T) {
	dir := t.TempDir()
	e1, calls1 := countingEngine(1, 0)
	e1.SetStore(openStore(t, dir))
	e1.SetPredictor(&fakePredictor{serve: true, result: &sim.Result{ConfigName: "approx"}})
	if oc := e1.Run(context.Background(), job(9)); oc.Source != SourceModel {
		t.Fatalf("first run source = %q, want model", oc.Source)
	}
	if calls1.Load() != 0 {
		t.Fatal("simulator ran behind a confident model")
	}

	e2, calls2 := countingEngine(1, 0)
	e2.SetStore(openStore(t, dir))
	oc := e2.Run(context.Background(), job(9))
	if oc.Source != SourceCompute {
		t.Fatalf("second engine source = %q, want compute (approximation must not be on disk)", oc.Source)
	}
	if calls2.Load() != 1 {
		t.Fatalf("simulator ran %d times, want 1", calls2.Load())
	}
}
