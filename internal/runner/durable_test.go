package runner

import (
	"context"
	"errors"
	"io"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"scalesim/internal/config"
	"scalesim/internal/sim"
	"scalesim/internal/store"
)

// openStore opens a real store in a temp dir for engine integration tests.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStoreTierDiskHit pins the second memoization tier: a fresh engine
// sharing a store directory with a previous one serves the job from disk
// without invoking the simulator, and counts it as a disk hit.
func TestStoreTierDiskHit(t *testing.T) {
	dir := t.TempDir()
	e1, calls1 := countingEngine(1, 0)
	e1.SetStore(openStore(t, dir))
	first := e1.Run(context.Background(), job(3))
	if first.Err != nil || first.Source != SourceCompute {
		t.Fatalf("first run: %+v", first)
	}
	if calls1.Load() != 1 {
		t.Fatalf("first engine: %d simulator calls, want 1", calls1.Load())
	}

	// Fresh engine, empty memory cache, same store directory.
	e2, calls2 := countingEngine(1, 0)
	e2.SetStore(openStore(t, dir))
	oc := e2.Run(context.Background(), job(3))
	if oc.Err != nil {
		t.Fatal(oc.Err)
	}
	if oc.Source != SourceDisk || !oc.CacheHit {
		t.Fatalf("second engine outcome = %+v, want SourceDisk cache hit", oc)
	}
	if calls2.Load() != 0 {
		t.Fatalf("second engine invoked the simulator %d times, want 0", calls2.Load())
	}
	if !reflect.DeepEqual(oc.Result, first.Result) {
		t.Errorf("disk-served result differs from computed result:\n got %+v\nwant %+v", oc.Result, first.Result)
	}
	s := e2.Stats()
	if s.Jobs != 1 || s.DiskHits != 1 || s.UniqueRuns != 0 || s.CacheHits != 0 {
		t.Fatalf("stats %+v, want 1 job / 1 disk hit / 0 unique runs", s)
	}
	if s.HitRate() != 1 {
		t.Fatalf("HitRate = %v, want 1 (disk hits count)", s.HitRate())
	}

	// Re-running within the second engine is now a memory hit: the disk
	// tier populated the in-memory map.
	again := e2.Run(context.Background(), job(3))
	if again.Source != SourceMemory {
		t.Fatalf("third run source = %q, want memory", again.Source)
	}
}

// TestStoreCorruptionRecompute pins quarantine-and-recompute: a damaged
// artifact never surfaces an error to the caller — the job recomputes, the
// corruption is counted, and the store heals with a fresh artifact.
func TestStoreCorruptionRecompute(t *testing.T) {
	dir := t.TempDir()
	e1, _ := countingEngine(1, 0)
	st1 := openStore(t, dir)
	e1.SetStore(st1)
	if oc := e1.Run(context.Background(), job(5)); oc.Err != nil {
		t.Fatal(oc.Err)
	}

	// Truncate the single artifact on disk.
	key := job(5).Key()
	path := artifactPath(t, dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	e2, calls2 := countingEngine(1, 0)
	st2 := openStore(t, dir)
	e2.SetStore(st2)
	oc := e2.Run(context.Background(), job(5))
	if oc.Err != nil {
		t.Fatalf("corruption leaked to the caller: %v", oc.Err)
	}
	if oc.Source != SourceCompute || calls2.Load() != 1 {
		t.Fatalf("corrupt artifact not recomputed: source=%q calls=%d", oc.Source, calls2.Load())
	}
	if s := e2.Stats(); s.StoreCorrupt != 1 || s.DiskHits != 0 {
		t.Fatalf("stats %+v, want StoreCorrupt=1 DiskHits=0", s)
	}
	if st := st2.Stats(); st.Corrupt != 1 {
		t.Fatalf("store stats %+v, want Corrupt=1", st)
	}
	// The recompute re-saved a clean artifact: a third engine disk-hits.
	e3, calls3 := countingEngine(1, 0)
	e3.SetStore(openStore(t, dir))
	if oc := e3.Run(context.Background(), job(5)); oc.Source != SourceDisk || calls3.Load() != 0 {
		t.Fatalf("store did not heal after recompute: source=%q calls=%d err=%v", oc.Source, calls3.Load(), oc.Err)
	}
}

// artifactPath finds the single artifact for key in a store directory.
func artifactPath(t *testing.T, dir, key string) string {
	t.Helper()
	path := dir + "/objects/" + key[:2] + "/" + key + ".json"
	if _, err := os.Lstat(path); err != nil {
		t.Fatalf("artifact for %s not at %s: %v", key, path, err)
	}
	return path
}

// recordingStore wraps calls so tests can assert the journaling protocol.
type recordingStore struct {
	ops []string
}

func (r *recordingStore) Load(key string) (*sim.Result, bool, error) {
	r.ops = append(r.ops, "load")
	return nil, false, nil
}
func (r *recordingStore) Begin(key string) error { r.ops = append(r.ops, "begin"); return nil }
func (r *recordingStore) Save(key string, res *sim.Result) error {
	r.ops = append(r.ops, "save")
	return nil
}
func (r *recordingStore) Fail(key string) error { r.ops = append(r.ops, "fail"); return nil }

// TestStoreProtocol pins the lifecycle the engine journals: load→begin→save
// on success, load→begin→fail on a deterministic failure, and no fail
// record on cancellation (a killed job must replay as interrupted).
func TestStoreProtocol(t *testing.T) {
	ctx := context.Background()

	e, _ := countingEngine(1, 0)
	rec := &recordingStore{}
	e.SetStore(rec)
	if oc := e.Run(ctx, job(1)); oc.Err != nil {
		t.Fatal(oc.Err)
	}
	if want := []string{"load", "begin", "save"}; !reflect.DeepEqual(rec.ops, want) {
		t.Errorf("success ops = %v, want %v", rec.ops, want)
	}

	e2 := New(1)
	rec2 := &recordingStore{}
	e2.SetStore(rec2)
	e2.SetRunFunc(func(context.Context, *config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error) {
		return nil, errors.New("deterministic model error")
	})
	if oc := e2.Run(ctx, job(1)); !errors.Is(oc.Err, ErrJobFailed) {
		t.Fatalf("err = %v, want ErrJobFailed", oc.Err)
	}
	if want := []string{"load", "begin", "fail"}; !reflect.DeepEqual(rec2.ops, want) {
		t.Errorf("failure ops = %v, want %v", rec2.ops, want)
	}

	e3 := New(1)
	rec3 := &recordingStore{}
	e3.SetStore(rec3)
	cctx, cancel := context.WithCancel(ctx)
	e3.SetRunFunc(func(ctx context.Context, _ *config.SystemConfig, _ sim.Workload, _ sim.Options) (*sim.Result, error) {
		cancel()
		return nil, ctx.Err()
	})
	if oc := e3.Run(cctx, job(1)); !errors.Is(oc.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", oc.Err)
	}
	if want := []string{"load", "begin"}; !reflect.DeepEqual(rec3.ops, want) {
		t.Errorf("cancellation ops = %v, want %v (no fail: job must replay as interrupted)", rec3.ops, want)
	}
}

// TestRetryBackoffDeterministic pins the retry schedule through the
// injectable sleep: transient failures back off exponentially from
// BaseDelay, and the outcome reports the retry count.
func TestRetryBackoffDeterministic(t *testing.T) {
	e := New(1)
	e.SetRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Second})
	var slept []time.Duration
	e.SetSleep(func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	})
	var calls atomic.Int64
	e.SetRunFunc(func(_ context.Context, _ *config.SystemConfig, _ sim.Workload, o sim.Options) (*sim.Result, error) {
		if calls.Add(1) <= 2 {
			return nil, io.ErrUnexpectedEOF // transient I/O failure
		}
		return fakeResult(o.Seed), nil
	})
	oc := e.Run(context.Background(), job(9))
	if oc.Err != nil {
		t.Fatal(oc.Err)
	}
	if calls.Load() != 3 || oc.Retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 calls / 2 retries", calls.Load(), oc.Retries)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if !reflect.DeepEqual(slept, want) {
		t.Errorf("backoff schedule = %v, want %v", slept, want)
	}
	if s := e.Stats(); s.Retries != 2 || s.PanicRetries != 0 || s.Failures != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestDeterministicErrorNotRetried: a plain simulation error is a pure
// function of the design point — retrying cannot change it, so the engine
// must not.
func TestDeterministicErrorNotRetried(t *testing.T) {
	e := New(1)
	e.SetRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	e.SetSleep(func(context.Context, time.Duration) error {
		t.Error("slept for a non-transient error")
		return nil
	})
	var calls atomic.Int64
	modelErr := errors.New("negative cache capacity")
	e.SetRunFunc(func(context.Context, *config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error) {
		calls.Add(1)
		return nil, modelErr
	})
	oc := e.Run(context.Background(), job(1))
	if calls.Load() != 1 || oc.Retries != 0 {
		t.Fatalf("deterministic error retried: calls=%d retries=%d", calls.Load(), oc.Retries)
	}
	if !errors.Is(oc.Err, ErrJobFailed) || !errors.Is(oc.Err, modelErr) {
		t.Fatalf("err = %v, want wrapping both ErrJobFailed and the cause", oc.Err)
	}
}

// TestRetryExhaustionWrapsCause: when retries run out, the final error
// wraps ErrJobFailed and the last underlying cause.
func TestRetryExhaustionWrapsCause(t *testing.T) {
	e := New(1)
	e.SetRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond})
	var delays []time.Duration
	e.SetSleep(func(_ context.Context, d time.Duration) error { delays = append(delays, d); return nil })
	e.SetRunFunc(func(context.Context, *config.SystemConfig, sim.Workload, sim.Options) (*sim.Result, error) {
		return nil, io.ErrUnexpectedEOF
	})
	oc := e.Run(context.Background(), job(1))
	if !errors.Is(oc.Err, ErrJobFailed) || !errors.Is(oc.Err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v", oc.Err)
	}
	if oc.Retries != 2 || len(delays) != 2 {
		t.Fatalf("retries=%d delays=%v, want 2 retries", oc.Retries, delays)
	}
	if s := e.Stats(); s.Failures != 1 || s.Retries != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBackoffCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"panic", &PanicError{Value: "x"}, true},
		{"syscall", &os.SyscallError{Syscall: "read", Err: errors.New("EIO")}, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"model error", errors.New("unknown benchmark"), false},
		{"wrapped panic", errorsJoin(ErrJobFailed, &PanicError{Value: "y"}), true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func errorsJoin(errs ...error) error { return errors.Join(errs...) }
