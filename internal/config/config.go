// Package config defines machine configurations and implements scale-model
// construction: deriving a scaled-down configuration from a target system by
// reducing core count and, optionally, the shared resources (LLC capacity,
// NoC bandwidth, DRAM bandwidth) by the same factor.
//
// The package works in the paper's nominal units (bytes, GB/s). The
// simulator applies a global capacity scale when instantiating hardware
// structures; that scaling never changes the ratios this package computes,
// so Table I is reproduced exactly in nominal units.
package config

import "fmt"

// Bytes expresses a capacity in bytes.
type Bytes int64

// Convenient capacity units.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

func (b Bytes) String() string {
	switch {
	case b >= GB && b%GB == 0:
		return fmt.Sprintf("%d GB", b/GB)
	case b >= MB && b%MB == 0:
		return fmt.Sprintf("%d MB", b/MB)
	case b >= KB && b%KB == 0:
		return fmt.Sprintf("%d KB", b/KB)
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// GBps expresses a bandwidth in gigabytes per second.
type GBps float64

func (g GBps) String() string { return fmt.Sprintf("%g GB/s", float64(g)) }

// CoreConfig describes one out-of-order core (Table II, "Processor").
type CoreConfig struct {
	FrequencyGHz   float64 // core clock
	IssueWidth     int     // superscalar dispatch/issue width
	ROBSize        int     // reorder buffer entries
	MaxLoads       int     // max outstanding loads
	MaxStores      int     // max outstanding stores
	MaxL1DMisses   int     // max outstanding L1-D misses (MSHRs)
	MispredictCost int     // front-end refill penalty in cycles
}

// CacheLevelConfig describes one private cache level.
type CacheLevelConfig struct {
	Size       Bytes
	Assoc      int
	LineSize   Bytes
	AccessTime int // cycles
}

// LLCConfig describes the shared NUCA last-level cache. Capacity is
// SlicePerCore per slice times Slices; there is one slice per core in every
// configuration this package produces.
type LLCConfig struct {
	Slices       int
	SlicePerCore Bytes
	Assoc        int
	LineSize     Bytes
	AccessTime   int // cycles, to the local slice
}

// Size returns the total LLC capacity.
func (l LLCConfig) Size() Bytes { return Bytes(l.Slices) * l.SlicePerCore }

// NoCConfig describes the 2D mesh interconnect. BisectionGBps is the
// aggregate bandwidth across the bisection cut: CrossSectionLinks links of
// LinkGBps each.
type NoCConfig struct {
	MeshWidth         int
	MeshHeight        int
	CrossSectionLinks int
	LinkGBps          GBps
	HopLatency        int // cycles per hop (router + link)
}

// BisectionGBps returns the NoC bisection bandwidth.
func (n NoCConfig) BisectionGBps() GBps { return GBps(n.CrossSectionLinks) * n.LinkGBps }

// DRAMConfig describes the main-memory subsystem: Controllers memory
// controllers of PerControllerGBps each.
type DRAMConfig struct {
	Controllers       int
	PerControllerGBps GBps
	BaseLatency       int // unloaded DRAM access latency in core cycles
}

// TotalGBps returns the aggregate DRAM bandwidth.
func (d DRAMConfig) TotalGBps() GBps { return GBps(d.Controllers) * d.PerControllerGBps }

// SystemConfig is a complete machine description.
type SystemConfig struct {
	Name  string
	Cores int
	Core  CoreConfig
	L1I   CacheLevelConfig
	L1D   CacheLevelConfig
	L2    CacheLevelConfig
	LLC   LLCConfig
	NoC   NoCConfig
	DRAM  DRAMConfig
}

// Validate reports the first structural inconsistency in the configuration.
func (c *SystemConfig) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("config %q: cores %d < 1", c.Name, c.Cores)
	case c.Core.IssueWidth < 1:
		return fmt.Errorf("config %q: issue width %d < 1", c.Name, c.Core.IssueWidth)
	case c.Core.ROBSize < c.Core.IssueWidth:
		return fmt.Errorf("config %q: ROB %d smaller than issue width %d", c.Name, c.Core.ROBSize, c.Core.IssueWidth)
	case c.LLC.Slices != c.Cores:
		return fmt.Errorf("config %q: %d LLC slices for %d cores (NUCA requires one slice per core)", c.Name, c.LLC.Slices, c.Cores)
	case c.NoC.MeshWidth*c.NoC.MeshHeight < c.Cores:
		return fmt.Errorf("config %q: %dx%d mesh cannot host %d cores", c.Name, c.NoC.MeshWidth, c.NoC.MeshHeight, c.Cores)
	case c.DRAM.Controllers < 1:
		return fmt.Errorf("config %q: %d memory controllers", c.Name, c.DRAM.Controllers)
	}
	for _, lvl := range []struct {
		name string
		c    CacheLevelConfig
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}} {
		if lvl.c.Size <= 0 || lvl.c.Assoc <= 0 || lvl.c.LineSize <= 0 {
			return fmt.Errorf("config %q: %s has non-positive geometry", c.Name, lvl.name)
		}
		sets := int64(lvl.c.Size) / (int64(lvl.c.Assoc) * int64(lvl.c.LineSize))
		if sets <= 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("config %q: %s set count %d is not a positive power of two", c.Name, lvl.name, sets)
		}
	}
	return nil
}

// Target returns the paper's 32-core target system (Table II).
func Target() *SystemConfig {
	return makeSystem("target-32", 32, MCFirst)
}

// meshDims returns the mesh shape used for each supported core count,
// matching Table I's cross-section-link counts (bisection cut across the
// shorter dimension).
func meshDims(cores int) (w, h int) {
	switch cores {
	case 32:
		return 4, 8
	case 16:
		return 4, 4
	case 8:
		return 2, 4
	case 4:
		return 2, 2
	case 2:
		return 1, 2
	case 1:
		return 1, 1
	default:
		panic(fmt.Sprintf("config: unsupported core count %d (want 1,2,4,8,16,32)", cores))
	}
}

// BandwidthScaling selects how DRAM bandwidth is scaled down with core count
// under proportional resource scaling (paper §II and §V-E1).
type BandwidthScaling int

const (
	// MCFirst first reduces the number of memory controllers (keeping 16 GB/s
	// per controller) and only then reduces per-controller bandwidth once a
	// single controller is left. This is the paper's default.
	MCFirst BandwidthScaling = iota
	// MBFirst first reduces per-controller bandwidth from 16 GB/s down to
	// 4 GB/s (keeping 8 controllers) and then reduces the controller count.
	MBFirst
)

func (b BandwidthScaling) String() string {
	if b == MBFirst {
		return "MB-first"
	}
	return "MC-first"
}

// dramFor returns the DRAM configuration for a given core count under
// proportional scaling with the chosen policy. Total bandwidth is always
// 4 GB/s per core; the policies differ in how it is split across controllers.
func dramFor(cores int, policy BandwidthScaling) DRAMConfig {
	total := GBps(4 * cores)
	var mcs int
	switch policy {
	case MCFirst:
		// 16 GB/s per MC until one MC remains: 32c->8, 16c->4, 8c->2, 4c->1,
		// then shrink per-MC bandwidth: 2c->1@8, 1c->1@4.
		mcs = cores / 4
		if mcs < 1 {
			mcs = 1
		}
	case MBFirst:
		// Shrink per-MC bandwidth 16->4 GB/s first (32c:8@16, 16c:8@8, 8c:8@4),
		// then drop controllers at 4 GB/s each (4c:4@4, 2c:2@4, 1c:1@4).
		if cores >= 8 {
			mcs = 8
		} else {
			mcs = cores
		}
	default:
		panic(fmt.Sprintf("config: unknown bandwidth scaling policy %d", policy))
	}
	return DRAMConfig{
		Controllers:       mcs,
		PerControllerGBps: total / GBps(mcs),
		BaseLatency:       240, // ~60 ns at 4 GHz
	}
}

// nocFor returns the mesh NoC configuration for a core count under
// proportional scaling: bisection bandwidth is 4 GB/s per core, realised by
// the cross-section links of the Table I mesh shapes.
func nocFor(cores int) NoCConfig {
	w, h := meshDims(cores)
	csl := w // bisection cuts the longer dimension, leaving `w` links
	if h < 2 {
		// A 1xN or 1x1 mesh has a single (nominal) cross-section link.
		csl = 1
	}
	return NoCConfig{
		MeshWidth:         w,
		MeshHeight:        h,
		CrossSectionLinks: csl,
		LinkGBps:          GBps(4*cores) / GBps(csl),
		HopLatency:        4,
	}
}

// makeSystem builds a PRS-scaled system with the given core count.
func makeSystem(name string, cores int, policy BandwidthScaling) *SystemConfig {
	return &SystemConfig{
		Name:  name,
		Cores: cores,
		Core: CoreConfig{
			FrequencyGHz:   4.0,
			IssueWidth:     4,
			ROBSize:        128,
			MaxLoads:       48,
			MaxStores:      32,
			MaxL1DMisses:   10,
			MispredictCost: 15,
		},
		L1I: CacheLevelConfig{Size: 32 * KB, Assoc: 4, LineSize: 64, AccessTime: 4},
		L1D: CacheLevelConfig{Size: 32 * KB, Assoc: 8, LineSize: 64, AccessTime: 4},
		L2:  CacheLevelConfig{Size: 256 * KB, Assoc: 8, LineSize: 64, AccessTime: 8},
		LLC: LLCConfig{
			Slices:       cores,
			SlicePerCore: 1 * MB,
			Assoc:        64,
			LineSize:     64,
			AccessTime:   30,
		},
		NoC:  nocFor(cores),
		DRAM: dramFor(cores, policy),
	}
}

// ScalingPolicy selects which shared resources a scale model scales down
// with core count (paper §V-A, Fig. 3).
type ScalingPolicy int

const (
	// NRS (No Resource Scaling): shared resources stay at target size.
	NRS ScalingPolicy = iota
	// PRSLLCOnly scales LLC capacity only.
	PRSLLCOnly
	// PRSDRAMOnly scales DRAM bandwidth only.
	PRSDRAMOnly
	// PRSFull scales LLC capacity, NoC bandwidth and DRAM bandwidth (the
	// paper's recommended construction).
	PRSFull
)

func (p ScalingPolicy) String() string {
	switch p {
	case NRS:
		return "NRS"
	case PRSLLCOnly:
		return "PRS-LLC"
	case PRSDRAMOnly:
		return "PRS-DRAM"
	case PRSFull:
		return "PRS"
	default:
		return fmt.Sprintf("ScalingPolicy(%d)", int(p))
	}
}

// ScaleModelOptions configures scale-model construction.
type ScaleModelOptions struct {
	Policy    ScalingPolicy
	Bandwidth BandwidthScaling // DRAM scaling order when DRAM is scaled
}

// ScaleModel derives a scale model with the given core count from the target
// system. Cores are always reduced; shared resources are reduced according
// to opts.Policy. The per-core private hierarchy (L1I/L1D/L2) is never
// scaled — each core keeps its private caches, as in the paper.
func ScaleModel(target *SystemConfig, cores int, opts ScaleModelOptions) (*SystemConfig, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 || cores > target.Cores {
		return nil, fmt.Errorf("config: scale model with %d cores from %d-core target", cores, target.Cores)
	}
	if target.Cores%cores != 0 {
		return nil, fmt.Errorf("config: scale factor %d/%d is not integral", target.Cores, cores)
	}
	sm := makeSystem(fmt.Sprintf("%s-sm%d-%s-%s", target.Name, cores, opts.Policy, opts.Bandwidth), cores, opts.Bandwidth)
	sm.Core = target.Core
	sm.L1I, sm.L1D, sm.L2 = target.L1I, target.L1D, target.L2

	// Start from a fully scaled machine, then undo scaling per policy.
	switch opts.Policy {
	case PRSFull:
		// keep everything scaled
	case NRS:
		sm.LLC = unscaledLLC(target, cores)
		sm.NoC = unscaledNoC(target, cores)
		sm.DRAM = target.DRAM
	case PRSLLCOnly:
		sm.NoC = unscaledNoC(target, cores)
		sm.DRAM = target.DRAM
	case PRSDRAMOnly:
		sm.LLC = unscaledLLC(target, cores)
		sm.NoC = unscaledNoC(target, cores)
	default:
		return nil, fmt.Errorf("config: unknown scaling policy %v", opts.Policy)
	}
	if err := sm.Validate(); err != nil {
		return nil, err
	}
	return sm, nil
}

// unscaledLLC keeps the target's total LLC capacity on the scale model by
// growing the per-slice capacity (the slice count must track core count for
// the NUCA structure to remain valid).
func unscaledLLC(target *SystemConfig, cores int) LLCConfig {
	llc := target.LLC
	llc.Slices = cores
	llc.SlicePerCore = target.LLC.Size() / Bytes(cores)
	return llc
}

// unscaledNoC keeps the target's bisection bandwidth on the scale model's
// (smaller) mesh by fattening its cross-section links.
func unscaledNoC(target *SystemConfig, cores int) NoCConfig {
	noc := nocFor(cores)
	noc.LinkGBps = target.NoC.BisectionGBps() / GBps(noc.CrossSectionLinks)
	return noc
}

// CustomOptions tweak a derived system for design-space exploration. Zero
// values keep the PRS defaults (1 MB LLC per core, 4 GB/s DRAM and NoC
// bisection bandwidth per core).
type CustomOptions struct {
	LLCSlicePerCore Bytes // per-core LLC slice capacity
	DRAMPerCoreGBps GBps  // DRAM bandwidth per core
	NoCPerCoreGBps  GBps  // NoC bisection bandwidth per core
	Bandwidth       BandwidthScaling
}

// CustomSystem builds a machine with the Table II core/private hierarchy
// but freely chosen shared-resource budgets — the knob a design-space
// exploration sweeps. Core counts follow the Table I ladder (1..32).
func CustomSystem(cores int, opts CustomOptions) (*SystemConfig, error) {
	c := makeSystem(fmt.Sprintf("custom-%d", cores), cores, opts.Bandwidth)
	if opts.LLCSlicePerCore > 0 {
		c.LLC.SlicePerCore = opts.LLCSlicePerCore
		sets := int64(c.LLC.SlicePerCore) / (int64(c.LLC.Assoc) * int64(c.LLC.LineSize))
		if sets <= 0 || sets&(sets-1) != 0 {
			return nil, fmt.Errorf("config: custom LLC slice %v gives %d sets (need a power of two)", opts.LLCSlicePerCore, sets)
		}
	}
	if opts.DRAMPerCoreGBps > 0 {
		total := opts.DRAMPerCoreGBps * GBps(cores)
		c.DRAM.PerControllerGBps = total / GBps(c.DRAM.Controllers)
		c.Name = fmt.Sprintf("%s-dram%g", c.Name, float64(opts.DRAMPerCoreGBps))
	}
	if opts.NoCPerCoreGBps > 0 {
		c.NoC.LinkGBps = opts.NoCPerCoreGBps * GBps(cores) / GBps(c.NoC.CrossSectionLinks)
		c.Name = fmt.Sprintf("%s-noc%g", c.Name, float64(opts.NoCPerCoreGBps))
	}
	if opts.LLCSlicePerCore > 0 {
		c.Name = fmt.Sprintf("%s-llc%d", c.Name, int64(opts.LLCSlicePerCore)>>10)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Cores      int
	LLCSize    Bytes
	LLCSlices  int
	NoCGBps    GBps
	CSLs       int
	PerCSLGBps GBps
	DRAMGBps   GBps
	MCs        int
	PerMCGBps  GBps
}

// TableI reproduces the paper's Table I for the given bandwidth-scaling
// policy (the paper's table uses MC-first).
func TableI(policy BandwidthScaling) []TableIRow {
	target := Target()
	counts := []int{32, 16, 8, 4, 2, 1}
	rows := make([]TableIRow, 0, len(counts))
	for _, n := range counts {
		sm, err := ScaleModel(target, n, ScaleModelOptions{Policy: PRSFull, Bandwidth: policy})
		if err != nil {
			panic(err) // unreachable: all counts divide 32
		}
		rows = append(rows, TableIRow{
			Cores:      n,
			LLCSize:    sm.LLC.Size(),
			LLCSlices:  sm.LLC.Slices,
			NoCGBps:    sm.NoC.BisectionGBps(),
			CSLs:       sm.NoC.CrossSectionLinks,
			PerCSLGBps: sm.NoC.LinkGBps,
			DRAMGBps:   sm.DRAM.TotalGBps(),
			MCs:        sm.DRAM.Controllers,
			PerMCGBps:  sm.DRAM.PerControllerGBps,
		})
	}
	return rows
}

// String renders the row in the paper's Table I format.
func (r TableIRow) String() string {
	return fmt.Sprintf("%2d | %s: %d slices | %s: %d CSLs, %s per CSL | %s: %d MCs, %s per MC",
		r.Cores, r.LLCSize, r.LLCSlices,
		r.NoCGBps, r.CSLs, r.PerCSLGBps,
		r.DRAMGBps, r.MCs, r.PerMCGBps)
}
