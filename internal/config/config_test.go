package config

import (
	"strings"
	"testing"
)

func TestTargetMatchesTableII(t *testing.T) {
	c := Target()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Cores != 32 {
		t.Errorf("cores = %d, want 32", c.Cores)
	}
	if c.Core.FrequencyGHz != 4.0 || c.Core.IssueWidth != 4 || c.Core.ROBSize != 128 {
		t.Errorf("core config %+v does not match Table II", c.Core)
	}
	if c.Core.MaxLoads != 48 || c.Core.MaxStores != 32 || c.Core.MaxL1DMisses != 10 {
		t.Errorf("outstanding-op limits %+v do not match Table II", c.Core)
	}
	if c.L1I.Size != 32*KB || c.L1I.Assoc != 4 || c.L1I.AccessTime != 4 {
		t.Errorf("L1I %+v does not match Table II", c.L1I)
	}
	if c.L1D.Size != 32*KB || c.L1D.Assoc != 8 || c.L1D.AccessTime != 4 {
		t.Errorf("L1D %+v does not match Table II", c.L1D)
	}
	if c.L2.Size != 256*KB || c.L2.Assoc != 8 || c.L2.AccessTime != 8 {
		t.Errorf("L2 %+v does not match Table II", c.L2)
	}
	if c.LLC.Size() != 32*MB || c.LLC.Slices != 32 || c.LLC.Assoc != 64 || c.LLC.AccessTime != 30 {
		t.Errorf("LLC %+v does not match Table II", c.LLC)
	}
	if c.NoC.MeshWidth != 4 || c.NoC.MeshHeight != 8 {
		t.Errorf("mesh %dx%d, want 4x8", c.NoC.MeshWidth, c.NoC.MeshHeight)
	}
	if c.NoC.BisectionGBps() != 128 {
		t.Errorf("bisection bandwidth %v, want 128 GB/s", c.NoC.BisectionGBps())
	}
	if c.DRAM.Controllers != 8 || c.DRAM.TotalGBps() != 128 {
		t.Errorf("DRAM %+v does not match Table II (8 MCs, 128 GB/s)", c.DRAM)
	}
}

// TestTableIMCFirst checks every cell of the paper's Table I.
func TestTableIMCFirst(t *testing.T) {
	rows := TableI(MCFirst)
	want := []TableIRow{
		{32, 32 * MB, 32, 128, 4, 32, 128, 8, 16},
		{16, 16 * MB, 16, 64, 4, 16, 64, 4, 16},
		{8, 8 * MB, 8, 32, 2, 16, 32, 2, 16},
		{4, 4 * MB, 4, 16, 2, 8, 16, 1, 16},
		{2, 2 * MB, 2, 8, 1, 8, 8, 1, 8},
		{1, 1 * MB, 1, 4, 1, 4, 4, 1, 4},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d:\n got %+v\nwant %+v", i, rows[i], w)
		}
	}
}

// TestTableIMBFirst checks the MB-first alternative from §V-E1: bandwidth
// per controller shrinks 16->4 GB/s before controllers are dropped.
func TestTableIMBFirst(t *testing.T) {
	rows := TableI(MBFirst)
	wantMCs := map[int]int{32: 8, 16: 8, 8: 8, 4: 4, 2: 2, 1: 1}
	wantPerMC := map[int]GBps{32: 16, 16: 8, 8: 4, 4: 4, 2: 4, 1: 4}
	for _, r := range rows {
		if r.MCs != wantMCs[r.Cores] {
			t.Errorf("%d cores: %d MCs, want %d", r.Cores, r.MCs, wantMCs[r.Cores])
		}
		if r.PerMCGBps != wantPerMC[r.Cores] {
			t.Errorf("%d cores: %v per MC, want %v", r.Cores, r.PerMCGBps, wantPerMC[r.Cores])
		}
		if r.DRAMGBps != GBps(4*r.Cores) {
			t.Errorf("%d cores: total DRAM %v, want %v", r.Cores, r.DRAMGBps, GBps(4*r.Cores))
		}
	}
}

func TestScaleModelPolicies(t *testing.T) {
	target := Target()
	cases := []struct {
		policy ScalingPolicy
		llc    Bytes
		dram   GBps
		noc    GBps
	}{
		{NRS, 32 * MB, 128, 128},
		{PRSLLCOnly, 1 * MB, 128, 128},
		{PRSDRAMOnly, 32 * MB, 4, 128},
		{PRSFull, 1 * MB, 4, 4},
	}
	for _, c := range cases {
		sm, err := ScaleModel(target, 1, ScaleModelOptions{Policy: c.policy})
		if err != nil {
			t.Fatalf("%v: %v", c.policy, err)
		}
		if sm.Cores != 1 {
			t.Errorf("%v: cores = %d, want 1", c.policy, sm.Cores)
		}
		if sm.LLC.Size() != c.llc {
			t.Errorf("%v: LLC %v, want %v", c.policy, sm.LLC.Size(), c.llc)
		}
		if sm.DRAM.TotalGBps() != c.dram {
			t.Errorf("%v: DRAM %v, want %v", c.policy, sm.DRAM.TotalGBps(), c.dram)
		}
		if sm.NoC.BisectionGBps() != c.noc {
			t.Errorf("%v: NoC %v, want %v", c.policy, sm.NoC.BisectionGBps(), c.noc)
		}
		if err := sm.Validate(); err != nil {
			t.Errorf("%v: invalid scale model: %v", c.policy, err)
		}
	}
}

func TestScaleModelPreservesPrivateCaches(t *testing.T) {
	target := Target()
	for _, n := range []int{1, 2, 4, 8, 16} {
		sm, err := ScaleModel(target, n, ScaleModelOptions{Policy: PRSFull})
		if err != nil {
			t.Fatal(err)
		}
		if sm.L1I != target.L1I || sm.L1D != target.L1D || sm.L2 != target.L2 {
			t.Errorf("%d cores: private caches were scaled; they must not be", n)
		}
		if sm.Core != target.Core {
			t.Errorf("%d cores: core microarchitecture changed", n)
		}
	}
}

func TestScaleModelRejectsBadCounts(t *testing.T) {
	target := Target()
	for _, n := range []int{0, -1, 33, 3, 5, 7, 64} {
		if _, err := ScaleModel(target, n, ScaleModelOptions{Policy: PRSFull}); err == nil {
			t.Errorf("ScaleModel(%d cores) succeeded, want error", n)
		}
	}
}

func TestScaleModelIdentity(t *testing.T) {
	// A "scale model" with the full core count must equal the target's
	// shared-resource sizing under every policy.
	target := Target()
	for _, p := range []ScalingPolicy{NRS, PRSLLCOnly, PRSDRAMOnly, PRSFull} {
		sm, err := ScaleModel(target, 32, ScaleModelOptions{Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		if sm.LLC.Size() != target.LLC.Size() || sm.DRAM.TotalGBps() != target.DRAM.TotalGBps() {
			t.Errorf("%v at 32 cores: resources differ from target", p)
		}
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	breakers := []func(*SystemConfig){
		func(c *SystemConfig) { c.Cores = 0 },
		func(c *SystemConfig) { c.Core.IssueWidth = 0 },
		func(c *SystemConfig) { c.Core.ROBSize = 1 },
		func(c *SystemConfig) { c.LLC.Slices = 7 },
		func(c *SystemConfig) { c.NoC.MeshWidth = 1; c.NoC.MeshHeight = 1 },
		func(c *SystemConfig) { c.DRAM.Controllers = 0 },
		func(c *SystemConfig) { c.L1D.Size = 0 },
		func(c *SystemConfig) { c.L2.Size = 3 * KB }, // non-power-of-two sets
	}
	for i, breaker := range breakers {
		c := Target()
		breaker(c)
		if err := c.Validate(); err == nil {
			t.Errorf("breaker %d: Validate accepted a broken config", i)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := map[Bytes]string{
		64:      "64 B",
		32 * KB: "32 KB",
		1 * MB:  "1 MB",
		32 * MB: "32 MB",
		2 * GB:  "2 GB",
		1500:    "1500 B",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(b), got, want)
		}
	}
}

func TestTableIRowString(t *testing.T) {
	rows := TableI(MCFirst)
	s := rows[0].String()
	for _, frag := range []string{"32 MB", "32 slices", "4 CSLs", "8 MCs", "16 GB/s per MC"} {
		if !strings.Contains(s, frag) {
			t.Errorf("row string %q missing %q", s, frag)
		}
	}
}

func TestMeshShapesMatchTableI(t *testing.T) {
	wantCSL := map[int]int{32: 4, 16: 4, 8: 2, 4: 2, 2: 1, 1: 1}
	for cores, want := range wantCSL {
		noc := nocFor(cores)
		if noc.CrossSectionLinks != want {
			t.Errorf("%d cores: %d CSLs, want %d", cores, noc.CrossSectionLinks, want)
		}
		if noc.BisectionGBps() != GBps(4*cores) {
			t.Errorf("%d cores: bisection %v, want %v GB/s", cores, noc.BisectionGBps(), 4*cores)
		}
	}
}

func TestCustomSystem(t *testing.T) {
	c, err := CustomSystem(4, CustomOptions{
		LLCSlicePerCore: 2 * MB,
		DRAMPerCoreGBps: 8,
		NoCPerCoreGBps:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.LLC.Size() != 8*MB {
		t.Errorf("LLC %v, want 8 MB", c.LLC.Size())
	}
	if c.DRAM.TotalGBps() != 32 {
		t.Errorf("DRAM %v, want 32 GB/s", c.DRAM.TotalGBps())
	}
	if c.NoC.BisectionGBps() != 32 {
		t.Errorf("NoC %v, want 32 GB/s", c.NoC.BisectionGBps())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Defaults: zero options keep PRS sizing.
	d, err := CustomSystem(2, CustomOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.LLC.Size() != 2*MB || d.DRAM.TotalGBps() != 8 {
		t.Errorf("default custom system %v/%v, want PRS sizing", d.LLC.Size(), d.DRAM.TotalGBps())
	}
	// Non-power-of-two LLC sets rejected.
	if _, err := CustomSystem(1, CustomOptions{LLCSlicePerCore: 3 * MB}); err == nil {
		t.Error("3 MB slice accepted (sets not a power of two)")
	}
}
