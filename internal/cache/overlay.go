package cache

// Overlay is a per-core copy-on-write view of a shared NUCA for one epoch of
// parallel execution.
//
// Within an epoch, each core runs against [the LLC as it stood at the epoch
// boundary] + [that core's own prior operations this epoch]: the first touch
// of a set clones its tag/LRU/flag state into a private arena and all further
// operations hit the clone, so cores never observe (or race on) each other's
// intra-epoch traffic. The authoritative interleaved state is reconstructed
// at the epoch barrier by replaying every core's operation log against the
// real NUCA in canonical core order (see internal/sim).
//
// Overlay mutates nothing in the underlying NUCA and keeps no statistics;
// per-core LLC stats are attributed during replay. The clone arena is
// reused across epochs via version stamps (no per-epoch clearing), so a
// steady-state epoch allocates only when it touches more sets than any
// epoch before it.
type Overlay struct {
	n     *NUCA
	sets  int
	assoc int

	// slot[g] is the clone index for global set g = slice*sets + set,
	// valid only when ver[g] == epoch.
	slot  []int32
	ver   []uint32
	epoch uint32

	// Clone arena, clone k occupying ways [k*assoc, (k+1)*assoc). Invalid
	// ways hold invalidTag exactly as in Level, so the hit loops are a
	// single tag compare per way; meta carries only the dirty flag.
	tags  []uint64
	meta  []uint8 // bit 0: dirty
	stamp []uint32
	clock []uint32 // per-clone set clock
	used  int      // clones handed out this epoch
}

const ovDirty uint8 = 1 << 0

// NewOverlay builds an overlay over n. All slices of a NUCA share one
// geometry, so a flat global set index addresses every set.
func NewOverlay(n *NUCA) *Overlay {
	lvl := n.slices[0]
	total := len(n.slices) * lvl.sets
	return &Overlay{
		n:     n,
		sets:  lvl.sets,
		assoc: lvl.assoc,
		slot:  make([]int32, total),
		ver:   make([]uint32, total),
	}
}

// BeginEpoch invalidates every clone (the shared NUCA may have changed at
// the barrier) and recycles the arena capacity.
func (o *Overlay) BeginEpoch() {
	o.epoch++
	if o.epoch == 0 {
		// Version wrap-around: stale ver entries would alias the new epoch.
		for i := range o.ver {
			o.ver[i] = 0
		}
		o.epoch = 1
	}
	o.used = 0
}

// cloneFor returns the arena base index of the clone for addr's home set,
// copying the set out of the shared NUCA on first touch this epoch.
func (o *Overlay) cloneFor(slice int, line uint64) int {
	lvl := o.n.slices[slice]
	set := int(line & lvl.setMask)
	g := slice*o.sets + set
	if o.ver[g] == o.epoch {
		return int(o.slot[g]) * o.assoc
	}
	k := o.used
	o.used++
	need := o.used * o.assoc
	if need > len(o.tags) {
		o.grow(need)
	}
	base := k * o.assoc
	sbase := set * o.assoc
	for w := 0; w < o.assoc; w++ {
		// Tags copy verbatim: invalidTag sentinels ride along, so the clone
		// needs no separate valid flag either.
		o.tags[base+w] = lvl.tags[sbase+w]
		var m uint8
		if lvl.dirty.get(sbase + w) {
			m = ovDirty
		}
		o.meta[base+w] = m
		o.stamp[base+w] = lvl.stamp[sbase+w]
	}
	o.clock[k] = lvl.clock[set]
	o.slot[g] = int32(k)
	o.ver[g] = o.epoch
	return base
}

// grow extends the arena to hold at least need ways, doubling to amortize.
// The arena keeps its high-water capacity across epochs (Reset truncates,
// never frees), so steady-state epochs run allocation-free.
//
//simlint:hotpath-exempt arena doubling is amortized; capacity persists across epochs so the steady state allocates nothing
func (o *Overlay) grow(need int) {
	newCap := 2 * len(o.tags)
	if newCap < need {
		newCap = need
	}
	tags := make([]uint64, newCap)
	copy(tags, o.tags)
	o.tags = tags
	meta := make([]uint8, newCap)
	copy(meta, o.meta)
	o.meta = meta
	stamp := make([]uint32, newCap)
	copy(stamp, o.stamp)
	o.stamp = stamp
	clock := make([]uint32, newCap/o.assoc)
	copy(clock, o.clock)
	o.clock = clock
}

// Access mirrors NUCA.Access against this core's view: LRU and dirty state
// update in the clone, never the shared structure, and no statistics are
// kept (replay attributes them).
func (o *Overlay) Access(addr uint64, write bool) (slice int, hit bool) {
	slice = o.n.SliceOf(addr)
	line := addr >> o.n.lineShift
	base := o.cloneFor(slice, line)
	k := base / o.assoc
	for w := 0; w < o.assoc; w++ {
		i := base + w
		if o.tags[i] == line {
			o.clock[k]++
			o.stamp[i] = o.clock[k]
			if write {
				o.meta[i] |= ovDirty
			}
			return slice, true
		}
	}
	return slice, false
}

// Probe reports presence in this core's view without cloning, disturbing
// LRU state, or touching the shared NUCA's statistics.
func (o *Overlay) Probe(addr uint64) bool {
	slice := o.n.SliceOf(addr)
	lvl := o.n.slices[slice]
	line := addr >> o.n.lineShift
	set := int(line & lvl.setMask)
	g := slice*o.sets + set
	if o.ver[g] != o.epoch {
		return lvl.Probe(addr)
	}
	base := int(o.slot[g]) * o.assoc
	for w := 0; w < o.assoc; w++ {
		i := base + w
		if o.tags[i] == line {
			return true
		}
	}
	return false
}

// Fill mirrors NUCA.Fill against this core's view, returning the victim the
// clone evicts. The victim drives this core's writeback traffic accounting;
// the authoritative eviction happens again at replay.
func (o *Overlay) Fill(addr uint64, dirty bool) (victimAddr uint64, victimDirty, evicted bool) {
	slice := o.n.SliceOf(addr)
	line := addr >> o.n.lineShift
	base := o.cloneFor(slice, line)
	k := base / o.assoc

	victim := -1
	var oldest uint32
	first := true
	for w := 0; w < o.assoc; w++ {
		i := base + w
		if o.tags[i] == invalidTag {
			victim = i
			evicted = false
			break
		}
		age := o.clock[k] - o.stamp[i]
		if first || age > oldest {
			oldest = age
			victim = i
			first = false
		}
	}
	if o.tags[victim] != invalidTag {
		evicted = true
		victimAddr = o.tags[victim] << o.n.lineShift
		victimDirty = o.meta[victim]&ovDirty != 0
	}
	o.tags[victim] = line
	var m uint8
	if dirty {
		m = ovDirty
	}
	o.meta[victim] = m
	o.clock[k]++
	o.stamp[victim] = o.clock[k]
	return victimAddr, victimDirty, evicted
}
