package cache

import (
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/xrand"
)

// The hot cache paths are 0 allocs/op (PR 9's invariant, proven statically
// by simlint's hotpath rule). These tests enforce it dynamically too —
// cheap enough to run under -short, so `make check` catches a regression
// even where benchmarks don't run.

func TestLevelAccessHitAllocFree(t *testing.T) {
	l, err := NewLevel(config.CacheLevelConfig{Size: 32 * config.KB, Assoc: 8, LineSize: 64}, 1)
	if err != nil {
		t.Fatalf("NewLevel: %v", err)
	}
	l.Fill(0, false)
	if n := testing.AllocsPerRun(1000, func() {
		l.Access(0, false)
	}); n != 0 {
		t.Errorf("Level.Access hit: %.1f allocs/op, want 0", n)
	}
}

func TestNUCAAccessAllocFree(t *testing.T) {
	n, err := NewNUCA(config.LLCConfig{Slices: 32, SlicePerCore: config.MB, Assoc: 64, LineSize: 64}, 8, 32)
	if err != nil {
		t.Fatalf("NewNUCA: %v", err)
	}
	rng := xrand.New(1)
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i] = rng.Uint64() &^ 63
	}
	i := 0
	if got := testing.AllocsPerRun(1000, func() {
		a := addrs[i%1024]
		if _, hit := n.Access(i%32, a, false); !hit {
			n.Fill(i%32, a, false)
		}
		i++
	}); got != 0 {
		t.Errorf("NUCA.Access+Fill: %.1f allocs/op, want 0", got)
	}
}
