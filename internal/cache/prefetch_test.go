package cache

import (
	"testing"

	"scalesim/internal/xrand"
)

func TestPrefetcherLearnsUnitStride(t *testing.T) {
	p := NewStridePrefetcher(64)
	var issued []uint64
	for i := uint64(0); i < 20; i++ {
		issued = p.OnMiss(i * 64)
	}
	if len(issued) == 0 {
		t.Fatal("no prefetches after 20 unit-stride misses")
	}
	// Next-line prefetches: addresses ahead of the stream.
	want := uint64(20 * 64)
	if issued[0] != want {
		t.Fatalf("first prefetch %#x, want %#x", issued[0], want)
	}
	if p.Accuracy() <= 0 {
		t.Fatal("accuracy not tracked")
	}
}

func TestPrefetcherLearnsLargeStride(t *testing.T) {
	p := NewStridePrefetcher(64)
	var issued []uint64
	for i := uint64(0); i < 20; i++ {
		issued = p.OnMiss(i * 4 * 64) // stride of 4 lines
	}
	if len(issued) == 0 {
		t.Fatal("no prefetches on strided stream")
	}
	if issued[0] != 20*4*64 {
		t.Fatalf("prefetch %#x, want %#x", issued[0], uint64(20*4*64))
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := NewStridePrefetcher(64)
	rng := xrand.New(5)
	issued := 0
	for i := 0; i < 5000; i++ {
		// Uniform misses over 1 GB: no stable stride.
		if out := p.OnMiss(rng.Uint64() % (1 << 30) &^ 63); len(out) > 0 {
			issued += len(out)
		}
	}
	// Spurious matches can happen but must stay rare.
	if frac := float64(issued) / 5000; frac > 0.05 {
		t.Fatalf("%.3f prefetches per random miss, want ~0", frac)
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	p := NewStridePrefetcher(64)
	okA, okB := false, false
	for i := uint64(0); i < 30; i++ {
		if out := p.OnMiss(i * 64); len(out) > 0 {
			okA = true
		}
		if out := p.OnMiss(1<<30 + i*2*64); len(out) > 0 {
			okB = true
		}
	}
	if !okA || !okB {
		t.Fatalf("interleaved streams not both detected: A=%v B=%v", okA, okB)
	}
}

func TestPrefetcherStrideChangeRetrains(t *testing.T) {
	p := NewStridePrefetcher(64)
	for i := uint64(0); i < 10; i++ {
		p.OnMiss(i * 64)
	}
	// Change stride: confidence must drop before new prefetches appear.
	base := uint64(9 * 64)
	out := p.OnMiss(base + 3*64)
	if len(out) != 0 {
		t.Fatal("prefetch issued immediately after stride change")
	}
	out = p.OnMiss(base + 6*64)
	if len(out) == 0 {
		t.Fatal("prefetcher did not re-train on the new stride")
	}
}
