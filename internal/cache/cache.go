// Package cache implements the structurally simulated cache hierarchy: true
// LRU set-associative levels for the private L1-I/L1-D/L2 and a shared NUCA
// last-level cache composed of per-core slices selected by address hash.
//
// Caches hold real tag/LRU state, so capacity and conflict behaviour — and
// in particular *contention* between co-running programs interleaving
// accesses in the shared LLC — is emergent rather than modelled. This is the
// property scale-model simulation depends on: the same program sees
// different miss rates on differently sized shared caches.
package cache

import (
	"fmt"

	"scalesim/internal/config"
	"scalesim/internal/units"
)

// Stats counts events at one cache level (or one LLC slice).
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Writes    uint64
	Evictions uint64
	// Writebacks counts dirty evictions, which generate write traffic to the
	// next level down (or DRAM for the LLC).
	Writebacks uint64
}

// MissRate returns misses per access, or 0 if the level was never accessed.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns hits per access, or 0 if the level was never accessed.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Accesses-s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Misses += other.Misses
	s.Writes += other.Writes
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
}

// Delta returns the counters accumulated since prev was captured (s - prev,
// field-wise). prev must be an earlier snapshot of the same counters.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - prev.Accesses,
		Misses:     s.Misses - prev.Misses,
		Writes:     s.Writes - prev.Writes,
		Evictions:  s.Evictions - prev.Evictions,
		Writebacks: s.Writebacks - prev.Writebacks,
	}
}

// Level is one set-associative, write-back, write-allocate cache level with
// true LRU replacement.
type Level struct {
	sets      int
	assoc     int
	lineShift uint
	setMask   uint64

	// Way state, laid out set-major: index = set*assoc + way. An invalid way
	// holds invalidTag, so the hit loop is a single tag compare per way; the
	// dirty flags are a packed bitset (see bitset.go).
	tags  []uint64
	dirty bitset
	stamp []uint32 // LRU timestamps (per-set lazy counter)

	clock []uint32 // per-set stamp counter

	Stats Stats
}

// invalidTag marks an empty way. A real line tag is addr >> lineShift, so the
// all-ones value is only reachable from the topmost line of the 64-bit
// address space — no workload generates it, and Fill/Access therefore never
// need a separate valid flag on the hot path.
const invalidTag = ^uint64(0)

// NewLevel builds a cache level from cfg with its capacity divided by scale
// (scale <= 1 means unscaled). Associativity and line size are preserved;
// the set count shrinks, exactly like a die-shrunk miniature.
func NewLevel(cfg config.CacheLevelConfig, scale int) (*Level, error) {
	if scale < 1 {
		scale = 1
	}
	if cfg.LineSize <= 0 || cfg.Assoc <= 0 || cfg.Size <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	sets := int(int64(cfg.Size) / (int64(cfg.Assoc) * int64(cfg.LineSize)) / int64(scale))
	if sets < 1 {
		sets = 1
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two (size %v assoc %d scale %d)",
			sets, cfg.Size, cfg.Assoc, scale)
	}
	shift := uint(0)
	for (1 << shift) < int(cfg.LineSize) {
		shift++
	}
	n := sets * cfg.Assoc
	tags := make([]uint64, n)
	for i := range tags {
		tags[i] = invalidTag
	}
	return &Level{
		sets:      sets,
		assoc:     cfg.Assoc,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      tags,
		dirty:     newBitset(n),
		stamp:     make([]uint32, n),
		clock:     make([]uint32, sets),
	}, nil
}

// Sets returns the number of sets.
func (l *Level) Sets() int { return l.sets }

// Assoc returns the associativity.
func (l *Level) Assoc() int { return l.assoc }

// LineSize returns the line size in bytes.
func (l *Level) LineSize() int { return 1 << l.lineShift }

// CapacityBytes returns the (scaled) capacity.
func (l *Level) CapacityBytes() units.Bytes {
	return units.Bytes(int64(l.sets) * int64(l.assoc) * int64(l.LineSize()))
}

// LineAddr converts a byte address to a line address.
func (l *Level) LineAddr(addr uint64) uint64 { return addr >> l.lineShift }

// Access looks up the line containing addr. On a hit it updates LRU state
// (and the dirty bit for writes) and returns true. On a miss it returns
// false without allocating; the caller is responsible for resolving the miss
// down the hierarchy and then calling Fill.
func (l *Level) Access(addr uint64, write bool) bool {
	line := addr >> l.lineShift
	set := line & l.setMask
	base := int(set) * l.assoc
	l.Stats.Accesses++
	if write {
		l.Stats.Writes++
	}
	for w := 0; w < l.assoc; w++ {
		i := base + w
		if l.tags[i] == line {
			l.clock[set]++
			l.stamp[i] = l.clock[set]
			if write {
				l.dirty.set(i)
			}
			return true
		}
	}
	l.Stats.Misses++
	return false
}

// Probe reports whether the line containing addr is present without
// updating LRU state or statistics.
func (l *Level) Probe(addr uint64) bool {
	line := addr >> l.lineShift
	set := line & l.setMask
	base := int(set) * l.assoc
	for w := 0; w < l.assoc; w++ {
		i := base + w
		if l.tags[i] == line {
			return true
		}
	}
	return false
}

// Fill allocates the line containing addr (marking it dirty if dirty),
// evicting the LRU way if the set is full. It returns the evicted line's
// address and dirty state; evicted is false if an invalid way was used.
func (l *Level) Fill(addr uint64, dirty bool) (victimAddr uint64, victimDirty, evicted bool) {
	line := addr >> l.lineShift
	set := line & l.setMask
	base := int(set) * l.assoc

	victim := -1
	var oldest uint32
	first := true
	for w := 0; w < l.assoc; w++ {
		i := base + w
		if l.tags[i] == invalidTag {
			victim = i
			evicted = false
			break
		}
		// Unsigned distance from the current clock handles wrap-around.
		age := l.clock[set] - l.stamp[i]
		if first || age > oldest {
			oldest = age
			victim = i
			first = false
		}
	}
	if l.tags[victim] != invalidTag {
		evicted = true
		victimAddr = l.tags[victim] << l.lineShift
		victimDirty = l.dirty.get(victim)
		l.Stats.Evictions++
		if victimDirty {
			l.Stats.Writebacks++
		}
	}
	l.tags[victim] = line
	l.dirty.assign(victim, dirty)
	l.clock[set]++
	l.stamp[victim] = l.clock[set]
	return victimAddr, victimDirty, evicted
}

// Invalidate removes the line containing addr if present, returning whether
// it was present and dirty.
func (l *Level) Invalidate(addr uint64) (present, dirty bool) {
	line := addr >> l.lineShift
	set := line & l.setMask
	base := int(set) * l.assoc
	for w := 0; w < l.assoc; w++ {
		i := base + w
		if l.tags[i] == line {
			l.tags[i] = invalidTag
			return true, l.dirty.get(i)
		}
	}
	return false, false
}

// NUCA is the shared last-level cache: one slice per core, with lines
// distributed across slices by a mixing hash of the line address. Requester
// core ids attribute per-core statistics even though the structure is
// shared.
type NUCA struct {
	slices    []*Level
	perCore   []Stats
	lineShift uint
}

// NewNUCA builds the LLC from cfg with capacity scaled down by scale, for a
// machine with cores cores (per-core stats attribution).
func NewNUCA(cfg config.LLCConfig, scale, cores int) (*NUCA, error) {
	if cfg.Slices < 1 {
		return nil, fmt.Errorf("cache: LLC with %d slices", cfg.Slices)
	}
	lvl := config.CacheLevelConfig{
		Size: cfg.SlicePerCore, Assoc: cfg.Assoc,
		LineSize: cfg.LineSize, AccessTime: cfg.AccessTime,
	}
	n := &NUCA{perCore: make([]Stats, cores)}
	for i := 0; i < cfg.Slices; i++ {
		s, err := NewLevel(lvl, scale)
		if err != nil {
			return nil, fmt.Errorf("cache: LLC slice: %w", err)
		}
		n.slices = append(n.slices, s)
		n.lineShift = s.lineShift
	}
	return n, nil
}

// Slices returns the number of LLC slices.
func (n *NUCA) Slices() int { return len(n.slices) }

// SliceOf returns the home slice index for addr. A multiplicative hash of
// the line address spreads consecutive lines across slices, as in real NUCA
// designs (and makes slice load roughly uniform for any stride).
func (n *NUCA) SliceOf(addr uint64) int {
	line := addr >> n.lineShift
	line *= 0x9e3779b97f4a7c15
	return int((line >> 40) % uint64(len(n.slices)))
}

// Access looks up addr in its home slice on behalf of core. It returns the
// slice index (for NoC distance) and whether it hit.
func (n *NUCA) Access(core int, addr uint64, write bool) (slice int, hit bool) {
	slice = n.SliceOf(addr)
	hit = n.slices[slice].Access(addr, write)
	st := &n.perCore[core]
	st.Accesses++
	if write {
		st.Writes++
	}
	if !hit {
		st.Misses++
	}
	return slice, hit
}

// Probe reports whether addr is present in its home slice, without
// disturbing LRU state or statistics.
func (n *NUCA) Probe(addr uint64) bool {
	return n.slices[n.SliceOf(addr)].Probe(addr)
}

// Fill allocates addr in its home slice and returns the victim, as
// Level.Fill. Writebacks are attributed to core.
func (n *NUCA) Fill(core int, addr uint64, dirty bool) (victimAddr uint64, victimDirty, evicted bool) {
	victimAddr, victimDirty, evicted = n.slices[n.SliceOf(addr)].Fill(addr, dirty)
	if evicted {
		n.perCore[core].Evictions++
		if victimDirty {
			n.perCore[core].Writebacks++
		}
	}
	return victimAddr, victimDirty, evicted
}

// CoreStats returns the per-core attribution for core.
func (n *NUCA) CoreStats(core int) Stats { return n.perCore[core] }

// TotalStats returns aggregate statistics across all slices.
func (n *NUCA) TotalStats() Stats {
	var t Stats
	for _, s := range n.slices {
		t.Add(s.Stats)
	}
	return t
}

// CapacityBytes returns the total (scaled) LLC capacity.
func (n *NUCA) CapacityBytes() units.Bytes {
	var t units.Bytes
	for _, s := range n.slices {
		t += s.CapacityBytes()
	}
	return t
}
