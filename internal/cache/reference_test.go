package cache

import (
	"testing"

	"scalesim/internal/config"
	"scalesim/internal/xrand"
)

// refCache is an obviously-correct (but slow) reference model of a
// set-associative LRU cache: per-set slices of lines ordered by recency.
// The production Level must agree with it on every access outcome and every
// eviction, for arbitrary access sequences.
type refCache struct {
	sets      int
	assoc     int
	lineShift uint
	lines     [][]refLine // per set, most-recent first
}

type refLine struct {
	tag   uint64
	dirty bool
}

func newRef(size config.Bytes, assoc int) *refCache {
	sets := int(int64(size) / (int64(assoc) * 64))
	return &refCache{
		sets: sets, assoc: assoc, lineShift: 6,
		lines: make([][]refLine, sets),
	}
}

func (r *refCache) setOf(addr uint64) uint64 { return (addr >> r.lineShift) % uint64(r.sets) }

func (r *refCache) access(addr uint64, write bool) bool {
	tag := addr >> r.lineShift
	set := r.setOf(addr)
	for i, l := range r.lines[set] {
		if l.tag == tag {
			// Move to front (MRU).
			l.dirty = l.dirty || write
			r.lines[set] = append([]refLine{l}, append(r.lines[set][:i:i], r.lines[set][i+1:]...)...)
			return true
		}
	}
	return false
}

func (r *refCache) fill(addr uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	tag := addr >> r.lineShift
	set := r.setOf(addr)
	if len(r.lines[set]) == r.assoc {
		last := r.lines[set][len(r.lines[set])-1]
		victim, victimDirty, evicted = last.tag<<r.lineShift, last.dirty, true
		r.lines[set] = r.lines[set][:len(r.lines[set])-1]
	}
	r.lines[set] = append([]refLine{{tag: tag, dirty: dirty}}, r.lines[set]...)
	return victim, victimDirty, evicted
}

// TestLevelMatchesReferenceModel drives both implementations with a long
// random access sequence and demands bit-identical behaviour.
func TestLevelMatchesReferenceModel(t *testing.T) {
	const size, assoc = 8 * config.KB, 4 // 32 sets x 4 ways
	lvl, err := NewLevel(config.CacheLevelConfig{Size: size, Assoc: assoc, LineSize: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRef(size, assoc)

	rng := xrand.New(321)
	for i := 0; i < 300000; i++ {
		// Skewed address distribution: reuse within 4x capacity.
		addr := (rng.Uint64() % (4 * uint64(size))) &^ 63
		write := rng.Bool(0.3)
		gotHit := lvl.Access(addr, write)
		wantHit := ref.access(addr, write)
		if gotHit != wantHit {
			t.Fatalf("step %d: addr %#x hit=%v, reference says %v", i, addr, gotHit, wantHit)
		}
		if !gotHit {
			dirty := write
			gv, gd, ge := lvl.Fill(addr, dirty)
			wv, wd, we := ref.fill(addr, dirty)
			if ge != we || (ge && (gv != wv || gd != wd)) {
				t.Fatalf("step %d: fill victim (%#x,%v,%v), reference (%#x,%v,%v)",
					i, gv, gd, ge, wv, wd, we)
			}
		}
	}
}

// TestLevelMatchesReferenceHighAssoc repeats the equivalence check at the
// LLC's 64-way associativity, where the lazy-timestamp LRU is most at risk
// of divergence (wrap-around handling).
func TestLevelMatchesReferenceHighAssoc(t *testing.T) {
	const size, assoc = 64 * config.KB, 64 // 16 sets x 64 ways
	lvl, err := NewLevel(config.CacheLevelConfig{Size: size, Assoc: assoc, LineSize: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRef(size, assoc)
	rng := xrand.New(77)
	for i := 0; i < 200000; i++ {
		addr := (rng.Uint64() % (3 * uint64(size))) &^ 63
		gotHit := lvl.Access(addr, false)
		wantHit := ref.access(addr, false)
		if gotHit != wantHit {
			t.Fatalf("step %d: hit=%v, reference %v", i, gotHit, wantHit)
		}
		if !gotHit {
			gv, _, ge := lvl.Fill(addr, false)
			wv, _, we := ref.fill(addr, false)
			if ge != we || (ge && gv != wv) {
				t.Fatalf("step %d: victim %#x/%v vs reference %#x/%v", i, gv, ge, wv, we)
			}
		}
	}
}
