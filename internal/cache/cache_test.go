package cache

import (
	"testing"
	"testing/quick"

	"scalesim/internal/config"
	"scalesim/internal/xrand"
)

func mustLevel(t *testing.T, size config.Bytes, assoc int, scale int) *Level {
	t.Helper()
	l, err := NewLevel(config.CacheLevelConfig{Size: size, Assoc: assoc, LineSize: 64, AccessTime: 4}, scale)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestGeometry(t *testing.T) {
	l := mustLevel(t, 32*config.KB, 8, 1)
	if l.Sets() != 64 || l.Assoc() != 8 || l.LineSize() != 64 {
		t.Fatalf("geometry sets=%d assoc=%d line=%d, want 64/8/64", l.Sets(), l.Assoc(), l.LineSize())
	}
	if l.CapacityBytes() != 32*1024 {
		t.Fatalf("capacity %v, want 32768", l.CapacityBytes())
	}
	scaled := mustLevel(t, 32*config.KB, 8, 8)
	if scaled.Sets() != 8 {
		t.Fatalf("scaled sets %d, want 8", scaled.Sets())
	}
}

func TestNewLevelErrors(t *testing.T) {
	if _, err := NewLevel(config.CacheLevelConfig{Size: 0, Assoc: 8, LineSize: 64}, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewLevel(config.CacheLevelConfig{Size: 3 * config.KB, Assoc: 8, LineSize: 64}, 1); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
}

func TestHitAfterFill(t *testing.T) {
	l := mustLevel(t, 32*config.KB, 8, 1)
	addr := uint64(0xdeadbe00)
	if l.Access(addr, false) {
		t.Fatal("hit on cold cache")
	}
	l.Fill(addr, false)
	if !l.Access(addr, false) {
		t.Fatal("miss after fill")
	}
	// Same line, different byte: still a hit.
	if !l.Access(addr+63, false) {
		t.Fatal("miss within the same line")
	}
	// Next line: miss.
	if l.Access(addr+64, false) {
		t.Fatal("hit on neighbouring line")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Direct construction of a tiny cache: 2 sets x 2 ways, line 64.
	l := mustLevel(t, 256, 2, 1)
	if l.Sets() != 2 {
		t.Fatalf("sets = %d, want 2", l.Sets())
	}
	// Three lines mapping to set 0: line addresses 0, 2, 4 (even lines).
	a, b, c := uint64(0), uint64(2*64), uint64(4*64)
	l.Fill(a, false)
	l.Fill(b, false)
	l.Access(a, false) // a is now MRU, b is LRU
	victim, _, evicted := l.Fill(c, false)
	if !evicted {
		t.Fatal("no eviction from full set")
	}
	if victim != b {
		t.Fatalf("evicted %#x, want LRU %#x", victim, b)
	}
	if !l.Access(a, false) || !l.Access(c, false) {
		t.Fatal("resident lines missing after eviction")
	}
	if l.Access(b, false) {
		t.Fatal("evicted line still hits")
	}
}

func TestDirtyWritebackPath(t *testing.T) {
	l := mustLevel(t, 256, 2, 1)
	a, b, c := uint64(0), uint64(2*64), uint64(4*64)
	l.Fill(a, false)
	l.Access(a, true) // dirty a
	l.Fill(b, false)
	l.Access(b, false)
	// a is LRU and dirty.
	victim, dirty, evicted := l.Fill(c, false)
	if !evicted || victim != a || !dirty {
		t.Fatalf("evicted=(%v,%#x,dirty=%v), want dirty eviction of %#x", evicted, victim, dirty, a)
	}
	if l.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", l.Stats.Writebacks)
	}
}

func TestFillDirtyFlag(t *testing.T) {
	l := mustLevel(t, 256, 2, 1)
	l.Fill(0, true) // filled dirty (write-allocate on store miss)
	l.Fill(2*64, false)
	victim, dirty, evicted := l.Fill(4*64, false)
	if !evicted || victim != 0 || !dirty {
		t.Fatalf("write-allocated line not evicted dirty: (%v, %#x, %v)", evicted, victim, dirty)
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	l := mustLevel(t, 32*config.KB, 8, 1)
	// 256 lines = half the cache. Touch all, then re-touch: all hits.
	for i := uint64(0); i < 256; i++ {
		if !l.Access(i*64, false) {
			l.Fill(i*64, false)
		}
	}
	before := l.Stats.Misses
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 256; i++ {
			if !l.Access(i*64, false) {
				l.Fill(i*64, false)
			}
		}
	}
	if l.Stats.Misses != before {
		t.Fatalf("capacity misses on a fitting working set: %d new misses", l.Stats.Misses-before)
	}
}

func TestWorkingSetExceedsLRUThrashes(t *testing.T) {
	l := mustLevel(t, 32*config.KB, 8, 1)
	// Cyclic sweep over 2x capacity with true LRU: every access misses.
	lines := uint64(2 * 512)
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < lines; i++ {
			if !l.Access(i*64, false) {
				l.Fill(i*64, false)
			}
		}
	}
	// After warmup pass, passes 2-3 should be ~100% misses.
	rate := l.Stats.MissRate()
	if rate < 0.99 {
		t.Fatalf("cyclic over-capacity sweep miss rate %.3f, want ~1.0", rate)
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	l := mustLevel(t, 256, 2, 1)
	a, b, c := uint64(0), uint64(2*64), uint64(4*64)
	l.Fill(a, false)
	l.Fill(b, false)
	accesses := l.Stats.Accesses
	// Probing a must NOT refresh its LRU position.
	if !l.Probe(a) {
		t.Fatal("probe missed resident line")
	}
	if l.Probe(c) {
		t.Fatal("probe hit absent line")
	}
	if l.Stats.Accesses != accesses {
		t.Fatal("probe changed statistics")
	}
	victim, _, _ := l.Fill(c, false)
	if victim != a {
		t.Fatalf("probe refreshed LRU: victim %#x, want %#x", victim, a)
	}
}

func TestInvalidate(t *testing.T) {
	l := mustLevel(t, 256, 2, 1)
	l.Fill(0, false)
	l.Access(0, true)
	present, dirty := l.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v), want present dirty", present, dirty)
	}
	if l.Access(0, false) {
		t.Fatal("invalidated line still hits")
	}
	present, _ = l.Invalidate(0)
	if present {
		t.Fatal("double invalidate reports present")
	}
}

func TestLRUPropertyMostRecentSurvives(t *testing.T) {
	// Property: after any access sequence, immediately re-accessing the last
	// touched line always hits (the MRU line is never the victim).
	l := mustLevel(t, 4*config.KB, 4, 1)
	rng := xrand.New(77)
	check := func(seqSeed uint16) bool {
		for i := 0; i < 200; i++ {
			addr := (rng.Uint64() % 4096) * 64
			if !l.Access(addr, rng.Bool(0.3)) {
				l.Fill(addr, false)
			}
			if !l.Access(addr, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	l := mustLevel(t, 256, 2, 1)
	l.Access(0, false) // miss
	l.Fill(0, false)
	l.Access(0, false) // hit
	l.Access(0, true)  // write hit
	if l.Stats.Accesses != 3 || l.Stats.Misses != 1 || l.Stats.Writes != 1 {
		t.Fatalf("stats %+v, want 3 accesses / 1 miss / 1 write", l.Stats)
	}
	if r := l.Stats.MissRate(); r < 0.33 || r > 0.34 {
		t.Fatalf("miss rate %v, want 1/3", r)
	}
	var zero Stats
	if zero.MissRate() != 0 {
		t.Fatal("zero stats miss rate != 0")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, Misses: 2, Writes: 3, Evictions: 4, Writebacks: 5}
	b := Stats{Accesses: 10, Misses: 20, Writes: 30, Evictions: 40, Writebacks: 50}
	a.Add(b)
	want := Stats{11, 22, 33, 44, 55}
	if a != want {
		t.Fatalf("Add: %+v, want %+v", a, want)
	}
}

func newNUCA(t *testing.T, slices int, slicePerCore config.Bytes, scale int) *NUCA {
	t.Helper()
	n, err := NewNUCA(config.LLCConfig{
		Slices: slices, SlicePerCore: slicePerCore, Assoc: 64, LineSize: 64, AccessTime: 30,
	}, scale, slices)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNUCASliceDistribution(t *testing.T) {
	n := newNUCA(t, 8, config.MB, 8)
	counts := make([]int, 8)
	for i := uint64(0); i < 64000; i++ {
		counts[n.SliceOf(i*64)]++
	}
	for s, c := range counts {
		if c < 6000 || c > 10000 {
			t.Errorf("slice %d received %d/64000 sequential lines; hash not balanced", s, c)
		}
	}
}

func TestNUCASliceStable(t *testing.T) {
	n := newNUCA(t, 4, config.MB, 8)
	for i := uint64(0); i < 1000; i++ {
		addr := i * 977 * 64
		if n.SliceOf(addr) != n.SliceOf(addr) || n.SliceOf(addr) != n.SliceOf(addr+63) {
			t.Fatal("slice mapping unstable or not line-granular")
		}
	}
}

func TestNUCAPerCoreAttribution(t *testing.T) {
	n := newNUCA(t, 2, config.MB, 8)
	// Core 0 performs 100 accesses, core 1 none.
	for i := uint64(0); i < 100; i++ {
		addr := i * 64
		if _, hit := n.Access(0, addr, false); !hit {
			n.Fill(0, addr, false)
		}
	}
	if got := n.CoreStats(0).Accesses; got != 100 {
		t.Fatalf("core 0 accesses %d, want 100", got)
	}
	if got := n.CoreStats(1).Accesses; got != 0 {
		t.Fatalf("core 1 accesses %d, want 0", got)
	}
	tot := n.TotalStats()
	if tot.Accesses != 100 || tot.Misses != 100 {
		t.Fatalf("total stats %+v, want 100 cold misses", tot)
	}
}

func TestNUCACapacityContention(t *testing.T) {
	// Two cores share a small LLC. Alone, core 0's working set fits; with
	// core 1 streaming through it, core 0 starts missing. This is the
	// emergent contention the whole methodology relies on.
	missRate := func(withAggressor bool) float64 {
		n := newNUCA(t, 2, 64*config.KB, 1) // 128 KB total
		rng := xrand.New(5)
		// Victim working set: 96 KB = 1536 lines, fits in 128 KB.
		victimLines := uint64(1536)
		var victimStats func() Stats
		victimStats = func() Stats { return n.CoreStats(0) }
		warm := func() {
			for i := uint64(0); i < victimLines; i++ {
				addr := i * 64
				if _, hit := n.Access(0, addr, false); !hit {
					n.Fill(0, addr, false)
				}
			}
		}
		warm()
		base := victimStats()
		for round := 0; round < 4; round++ {
			if withAggressor {
				for i := 0; i < 4096; i++ {
					addr := uint64(1<<30) + rng.Uint64()%(1<<24)
					addr &^= 63
					if _, hit := n.Access(1, addr, false); !hit {
						n.Fill(1, addr, false)
					}
				}
			}
			warm()
		}
		st := victimStats()
		return float64(st.Misses-base.Misses) / float64(st.Accesses-base.Accesses)
	}
	alone := missRate(false)
	shared := missRate(true)
	if alone > 0.02 {
		t.Fatalf("victim misses %.3f alone; working set should fit", alone)
	}
	if shared < 5*alone+0.05 {
		t.Fatalf("victim miss rate alone %.3f vs shared %.3f; no emergent contention", alone, shared)
	}
}

func TestNUCAFillEvictsWithinSlice(t *testing.T) {
	n := newNUCA(t, 2, 64*config.KB, 8) // tiny slices: 8 KB each
	// Stream enough lines to force evictions.
	for i := uint64(0); i < 4096; i++ {
		addr := i * 64
		if _, hit := n.Access(0, addr, false); !hit {
			n.Fill(0, addr, true)
		}
	}
	tot := n.TotalStats()
	if tot.Evictions == 0 {
		t.Fatal("no evictions after streaming 4x capacity")
	}
	if n.CoreStats(0).Writebacks == 0 {
		t.Fatal("no writebacks despite dirty fills")
	}
}

func TestNewNUCAErrors(t *testing.T) {
	if _, err := NewNUCA(config.LLCConfig{Slices: 0}, 1, 1); err == nil {
		t.Error("zero slices accepted")
	}
	if _, err := NewNUCA(config.LLCConfig{Slices: 1, SlicePerCore: 0, Assoc: 16, LineSize: 64}, 1, 1); err == nil {
		t.Error("zero slice size accepted")
	}
}

func BenchmarkLevelAccessHit(b *testing.B) {
	l, _ := NewLevel(config.CacheLevelConfig{Size: 32 * config.KB, Assoc: 8, LineSize: 64}, 1)
	l.Fill(0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Access(0, false)
	}
}

func BenchmarkNUCAAccess(b *testing.B) {
	n, _ := NewNUCA(config.LLCConfig{Slices: 32, SlicePerCore: config.MB, Assoc: 64, LineSize: 64}, 8, 32)
	rng := xrand.New(1)
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i] = rng.Uint64() &^ 63
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%1024]
		if _, hit := n.Access(i%32, a, false); !hit {
			n.Fill(i%32, a, false)
		}
	}
}
