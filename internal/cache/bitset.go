package cache

// bitset is a packed bit vector. Levels track way dirtiness for sets*assoc
// ways; packing the flags 64-per-word (instead of []bool) cuts the metadata
// footprint 8x. Validity is not a bitset: invalid ways hold invalidTag in
// the tag array itself, keeping the way-search hit loop a single compare.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitset) assign(i int, v bool) {
	if v {
		b.set(i)
	} else {
		b.clear(i)
	}
}
