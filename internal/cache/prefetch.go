package cache

// StridePrefetcher is a stream/stride prefetcher of the kind that sits
// beside an L2: it watches the demand-miss address stream, detects constant
// strides across a small table of tracked streams, and once confident emits
// prefetch candidates ahead of the stream.
//
// The simulator uses it as an opt-in fidelity feature (sim.Options
// .EnablePrefetch): prefetches consume real bandwidth and fill real cache
// state, so turning the prefetcher on changes both isolated performance and
// contention — a robustness test for the scale-model methodology rather
// than part of the paper's baseline configuration.
type StridePrefetcher struct {
	// Degree is how many lines ahead to prefetch once a stream is
	// confirmed (0 = default 2).
	Degree int
	// Streams is the tracking-table size (0 = default 8).
	Streams int

	table []streamEntry

	// Statistics.
	Trained  uint64 // misses that matched/allocated a stream entry
	Issued   uint64 // prefetch candidates emitted
	lineSize uint64
}

type streamEntry struct {
	lastLine   uint64
	stride     int64
	confidence int
	valid      bool
}

// NewStridePrefetcher returns a prefetcher for caches with the given line
// size.
func NewStridePrefetcher(lineSize int) *StridePrefetcher {
	return &StridePrefetcher{lineSize: uint64(lineSize)}
}

func (p *StridePrefetcher) defaults() (degree, streams int) {
	degree = p.Degree
	if degree <= 0 {
		degree = 2
	}
	streams = p.Streams
	if streams <= 0 {
		streams = 8
	}
	return degree, streams
}

// OnMiss observes a demand miss at addr and returns the addresses to
// prefetch (possibly none). Confidence builds over two consecutive
// same-stride misses before any prefetch is issued, the standard
// two-delta-confirmation policy.
//
//simlint:hotpath-exempt opt-in fidelity feature off the baseline path; runs only on demand misses, and the candidate slice is degree-bounded
func (p *StridePrefetcher) OnMiss(addr uint64) []uint64 {
	degree, streams := p.defaults()
	if p.table == nil {
		p.table = make([]streamEntry, streams)
	}
	line := addr / p.lineSize

	// Find the entry whose last line is closest to this miss.
	best := -1
	var bestDist uint64 = 1 << 20 // streams further than ~64 MB apart never match
	for i := range p.table {
		e := &p.table[i]
		if !e.valid {
			continue
		}
		d := line - e.lastLine
		if int64(d) < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = i
		}
	}
	// A stream match must be a plausible stride (within 16 lines).
	if best >= 0 && bestDist > 0 && bestDist <= 16 {
		e := &p.table[best]
		stride := int64(line) - int64(e.lastLine)
		if stride == e.stride {
			if e.confidence < 3 {
				e.confidence++
			}
		} else {
			e.stride = stride
			e.confidence = 1
		}
		e.lastLine = line
		p.Trained++
		if e.confidence >= 2 {
			out := make([]uint64, 0, degree)
			for k := 1; k <= degree; k++ {
				next := int64(line) + int64(k)*e.stride
				if next > 0 {
					out = append(out, uint64(next)*p.lineSize)
				}
			}
			p.Issued += uint64(len(out))
			return out
		}
		return nil
	}

	// Allocate: replace the least-confident entry.
	victim := 0
	for i := range p.table {
		if !p.table[i].valid {
			victim = i
			break
		}
		if p.table[i].confidence < p.table[victim].confidence {
			victim = i
		}
	}
	p.table[victim] = streamEntry{lastLine: line, stride: 0, confidence: 0, valid: true}
	p.Trained++
	return nil
}

// Accuracy returns issued prefetches per trained miss (a rough utility
// metric for reports).
func (p *StridePrefetcher) Accuracy() float64 {
	if p.Trained == 0 {
		return 0
	}
	return float64(p.Issued) / float64(p.Trained)
}
