// Package scalesim is an open-source implementation of scale-model
// architectural simulation (Liu, Heirman, Eyerman, Akram, Eeckhout —
// ISPASS 2022): predicting large multicore system performance by simulating
// a proportionally scaled-down model of the target system and extrapolating
// with machine learning.
//
// The package bundles everything the methodology needs, built from scratch
// on the standard library:
//
//   - a trace-driven multicore simulator (out-of-order cores, three-level
//     cache hierarchy with a shared NUCA LLC, mesh NoC, multi-controller
//     DRAM with emergent bandwidth contention),
//   - a 29-benchmark synthetic workload suite spanning compute-bound to
//     bandwidth-saturating behaviour,
//   - scale-model construction (No Resource Scaling and Proportional
//     Resource Scaling, with MC-first/MB-first DRAM scaling),
//   - ML extrapolation (CART decision tree, random forest, RBF-kernel SVR)
//     and least-squares performance/core-count regression,
//   - a concurrent campaign engine (Campaign / RunCampaign) that executes
//     batches of design points on a worker pool with content-addressed
//     memoization,
//   - experiment drivers regenerating every table and figure in the paper.
//
// # Quick start
//
//	ex, _ := scalesim.NewExperiments(scalesim.FastOptions())
//	pred, _ := ex.PredictTargetIPC("mcf")        // from a 1-core scale model
//	fmt.Printf("predicted 32-core IPC: %.3f\n", pred)
//
// The context-aware entry points (SimulateContext, SimulateParallelContext,
// RunCampaignContext) are the preferred API: they honour cancellation and
// deadlines down to the simulator's epoch loop. The context-free wrappers
// remain for convenience; each delegates to its *Context counterpart (a
// pairing pinned by test).
//
// See the examples/ directory for complete programs and DESIGN.md for the
// architecture and the paper-to-module map.
package scalesim

import (
	"context"
	"errors"
	"fmt"

	"scalesim/internal/config"
	"scalesim/internal/runner"
	"scalesim/internal/sim"
	"scalesim/internal/store"
	"scalesim/internal/trace"
	"scalesim/internal/units"
)

// Sentinel errors for invalid public-API inputs. They are wrapped with
// context by the functions that return them; test with errors.Is.
var (
	// ErrUnknownPolicy reports a MachineSpec.Policy outside the Policy*
	// constants.
	ErrUnknownPolicy = errors.New("unknown scaling policy")
	// ErrUnknownBandwidth reports a bandwidth scaling order outside the
	// Bandwidth* constants.
	ErrUnknownBandwidth = errors.New("unknown bandwidth scaling")
	// ErrUnknownPattern reports a Region.Pattern outside the Pattern*
	// constants.
	ErrUnknownPattern = errors.New("unknown region pattern")
	// ErrUnknownBenchmark reports a benchmark name that is neither in the
	// suite nor among the supplied custom profiles.
	ErrUnknownBenchmark = errors.New("unknown benchmark")
	// ErrUnknownSchema reports a versioned payload — a store artifact, the
	// store journal, or a JSONL trace header — whose schema tag this build
	// does not understand.
	ErrUnknownSchema = store.ErrUnknownSchema
	// ErrStoreCorrupt reports a durable-store artifact that failed
	// verification (unparseable bytes, checksum or key mismatch). During a
	// campaign this is handled internally — the artifact is quarantined
	// and the job recomputed — so it surfaces only from the offline
	// artifact API (CheckStore, ReadArtifact).
	ErrStoreCorrupt = store.ErrCorrupt
	// ErrJobFailed marks a campaign job that exhausted its retry budget or
	// failed with a non-transient error; the underlying cause remains
	// reachable with errors.As / errors.Is.
	ErrJobFailed = runner.ErrJobFailed
)

// SimOptions controls simulation fidelity and cost. The zero value of any
// field selects the default.
type SimOptions struct {
	// Instructions is the measured per-program instruction budget (the
	// paper's 1B-instruction SimPoint, capacity-scaled). Default 1e6.
	Instructions uint64
	// Warmup instructions per program before measurement. Default 250k.
	Warmup uint64
	// EpochCycles is the contention-feedback epoch. Default 20k.
	EpochCycles float64
	// CapacityScale divides cache capacities and workload footprints
	// (see DESIGN.md, "Capacity scaling"). Default 8.
	CapacityScale int
	// Seed makes every run reproducible. Default 1.
	Seed uint64
	// EnablePrefetch adds a per-core L2 stream/stride prefetcher (off in
	// the paper's baseline configuration).
	EnablePrefetch bool
	// NoFeedback and PartitionedLLC are contention-model ablations; see
	// DESIGN.md "Key design decisions".
	NoFeedback     bool
	PartitionedLLC bool

	// Trace collects one EpochSnapshot per measured epoch into
	// SimResult.Trace (see README "Observability" and the schema in
	// DESIGN.md). Off by default; disabled tracing adds no measurable
	// overhead, and enabling it never perturbs the simulated results.
	Trace bool
	// TraceWarmup additionally snapshots warmup epochs (requires Trace).
	TraceWarmup bool

	// Tuning holds the performance-only knobs (worker pools, arena
	// sizing). Nil means auto everywhere. Tuning never changes results and
	// is not part of the campaign cache key. The field rides the wire in
	// api/v1 as an optional "tuning" object; payloads without it decode
	// unchanged.
	Tuning *Tuning `json:"tuning,omitempty"`
}

// DefaultOptions returns the full-fidelity experiment options used for
// EXPERIMENTS.md.
func DefaultOptions() SimOptions {
	d := sim.DefaultOptions()
	return SimOptions{
		Instructions:  d.Instructions,
		Warmup:        d.Warmup,
		EpochCycles:   float64(d.EpochCycles),
		CapacityScale: d.CapacityScale,
		Seed:          d.Seed,
	}
}

// FastOptions returns reduced-budget options: every qualitative conclusion
// survives, at roughly a tenth of the simulation cost. Used by the examples
// and quick CLI runs.
func FastOptions() SimOptions {
	return SimOptions{
		Instructions:  200_000,
		Warmup:        60_000,
		EpochCycles:   10_000,
		CapacityScale: 16,
		Seed:          1,
	}
}

func (o SimOptions) internal() sim.Options {
	io := sim.Options{
		Instructions:   o.Instructions,
		Warmup:         o.Warmup,
		EpochCycles:    units.Cycles(o.EpochCycles),
		CapacityScale:  o.CapacityScale,
		Seed:           o.Seed,
		EnablePrefetch: o.EnablePrefetch,
		NoFeedback:     o.NoFeedback,
		PartitionedLLC: o.PartitionedLLC,
		CoreWorkers:    o.Tuning.coreWorkers(),
		EpochLogOps:    o.Tuning.epochLogOps(),
	}
	if o.Trace {
		io.Telemetry = &sim.TelemetryOptions{Warmup: o.TraceWarmup}
	}
	return io
}

// Pattern names a memory access pattern in Region.Pattern.
type Pattern string

// Patterns accepted in Region.Pattern.
const (
	PatternSeq   Pattern = "seq"
	PatternRand  Pattern = "rand"
	PatternZipf  Pattern = "zipf"
	PatternChase Pattern = "chase"
)

// Validate reports whether the pattern is one of the Pattern* constants.
// The error wraps ErrUnknownPattern.
func (p Pattern) Validate() error {
	switch p {
	case PatternSeq, PatternRand, PatternZipf, PatternChase:
		return nil
	default:
		return fmt.Errorf("scalesim: %w %q", ErrUnknownPattern, string(p))
	}
}

// internal maps the pattern onto the trace generator's enumeration.
func (p Pattern) internal() (trace.Pattern, error) {
	switch p {
	case PatternSeq:
		return trace.Seq, nil
	case PatternRand:
		return trace.Rand, nil
	case PatternZipf:
		return trace.Zipf, nil
	case PatternChase:
		return trace.Chase, nil
	default:
		return 0, fmt.Errorf("scalesim: %w %q", ErrUnknownPattern, string(p))
	}
}

// Region describes one memory region of a synthetic benchmark profile.
type Region struct {
	SizeBytes int64   // nominal footprint
	Frac      float64 // fraction of memory accesses
	Pattern   Pattern // PatternSeq, PatternRand, PatternZipf or PatternChase
	ElemSize  int     // seq element size in bytes (0 = 8)
	ZipfS     float64 // zipf skew (0 = 0.8)
}

// Profile is a synthetic benchmark description (see the package
// documentation of internal/trace for the modelling rationale).
type Profile struct {
	Name           string
	BaseCPI        float64
	LoadsPerKI     int
	StoresPerKI    int
	BranchesPerKI  int
	MLP            float64
	StaticBranches int
	HardBranchFrac float64
	CodeBytes      int64
	Regions        []Region
}

func (p Profile) internal() (*trace.Profile, error) {
	tp := &trace.Profile{
		Name:           p.Name,
		BaseCPI:        p.BaseCPI,
		LoadsPerKI:     p.LoadsPerKI,
		StoresPerKI:    p.StoresPerKI,
		BranchesPerKI:  p.BranchesPerKI,
		MLP:            p.MLP,
		StaticBranches: p.StaticBranches,
		HardFrac:       p.HardBranchFrac,
		IFootprint:     config.Bytes(p.CodeBytes),
	}
	for _, r := range p.Regions {
		pat, err := r.Pattern.internal()
		if err != nil {
			return nil, err
		}
		tp.Regions = append(tp.Regions, trace.Region{
			Size:     config.Bytes(r.SizeBytes),
			Frac:     r.Frac,
			Pattern:  pat,
			ElemSize: r.ElemSize,
			ZipfS:    r.ZipfS,
		})
	}
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	return tp, nil
}

func profileFromInternal(tp *trace.Profile) Profile {
	p := Profile{
		Name:           tp.Name,
		BaseCPI:        tp.BaseCPI,
		LoadsPerKI:     tp.LoadsPerKI,
		StoresPerKI:    tp.StoresPerKI,
		BranchesPerKI:  tp.BranchesPerKI,
		MLP:            tp.MLP,
		StaticBranches: tp.StaticBranches,
		HardBranchFrac: tp.HardFrac,
		CodeBytes:      int64(tp.IFootprint),
	}
	for _, r := range tp.Regions {
		p.Regions = append(p.Regions, Region{
			SizeBytes: int64(r.Size),
			Frac:      r.Frac,
			Pattern:   Pattern(r.Pattern.String()),
			ElemSize:  r.ElemSize,
			ZipfS:     r.ZipfS,
		})
	}
	return p
}

// Suite returns the 29-benchmark workload suite.
func Suite() []Profile {
	suite := trace.Suite()
	out := make([]Profile, len(suite))
	for i, p := range suite {
		out[i] = profileFromInternal(p)
	}
	return out
}

// BenchmarkNames returns the suite benchmark names.
func BenchmarkNames() []string { return trace.Names() }

// Policy names a scale-model construction policy in MachineSpec.Policy.
type Policy string

// Scaling policies accepted in MachineSpec.Policy.
const (
	PolicyTarget  Policy = "target"   // the full 32-core Table II system
	PolicyNRS     Policy = "NRS"      // no resource scaling
	PolicyPRS     Policy = "PRS"      // proportional scaling of LLC+NoC+DRAM
	PolicyPRSLLC  Policy = "PRS-LLC"  // scale LLC capacity only
	PolicyPRSDRAM Policy = "PRS-DRAM" // scale DRAM bandwidth only
)

// Validate reports whether the policy is one of the Policy* constants ("" is
// valid and selects PRS). The error wraps ErrUnknownPolicy.
func (p Policy) Validate() error {
	switch p {
	case "", PolicyTarget, PolicyNRS, PolicyPRS, PolicyPRSLLC, PolicyPRSDRAM:
		return nil
	default:
		return fmt.Errorf("scalesim: %w %q", ErrUnknownPolicy, string(p))
	}
}

// Bandwidth names a DRAM bandwidth scaling order in MachineSpec.Bandwidth.
type Bandwidth string

// Bandwidth scaling orders accepted in MachineSpec.Bandwidth.
const (
	BandwidthMCFirst Bandwidth = "MC-first"
	BandwidthMBFirst Bandwidth = "MB-first"
)

// Validate reports whether the order is one of the Bandwidth* constants (""
// is valid and selects MC-first). The error wraps ErrUnknownBandwidth.
func (b Bandwidth) Validate() error {
	switch b {
	case "", BandwidthMCFirst, BandwidthMBFirst:
		return nil
	default:
		return fmt.Errorf("scalesim: %w %q", ErrUnknownBandwidth, string(b))
	}
}

// internal maps the order onto the construction enumeration.
func (b Bandwidth) internal() (config.BandwidthScaling, error) {
	switch b {
	case BandwidthMCFirst, "":
		return config.MCFirst, nil
	case BandwidthMBFirst:
		return config.MBFirst, nil
	default:
		return 0, fmt.Errorf("scalesim: %w %q", ErrUnknownBandwidth, string(b))
	}
}

// MachineSpec selects a machine: the target system, a scale model, or a
// custom design point.
type MachineSpec struct {
	// Cores is the machine size (ignored for PolicyTarget). Must divide
	// the target's 32 cores: 1, 2, 4, 8, 16 or 32.
	Cores int
	// Policy is one of the Policy* constants ("" = PRS).
	Policy Policy
	// Bandwidth is one of the Bandwidth* constants ("" = MC-first).
	Bandwidth Bandwidth

	// Design-space knobs (0 = PRS default). Setting any of these builds a
	// custom machine instead of a paper configuration.
	LLCPerCoreKB    int     // per-core LLC slice in KB (power-of-two sets required)
	DRAMPerCoreGBps float64 // DRAM bandwidth per core
	NoCPerCoreGBps  float64 // NoC bisection bandwidth per core
}

// Validate reports the first invalid enumeration field (the simulator
// validates structural constraints like core counts at run time).
func (m MachineSpec) Validate() error {
	if err := m.Policy.Validate(); err != nil {
		return err
	}
	return m.Bandwidth.Validate()
}

func (m MachineSpec) internal() (*config.SystemConfig, error) {
	if m.LLCPerCoreKB != 0 || m.DRAMPerCoreGBps != 0 || m.NoCPerCoreGBps != 0 {
		bw, err := m.Bandwidth.internal()
		if err != nil {
			return nil, err
		}
		return config.CustomSystem(m.Cores, config.CustomOptions{
			LLCSlicePerCore: config.Bytes(m.LLCPerCoreKB) * config.KB,
			DRAMPerCoreGBps: config.GBps(m.DRAMPerCoreGBps),
			NoCPerCoreGBps:  config.GBps(m.NoCPerCoreGBps),
			Bandwidth:       bw,
		})
	}
	if m.Policy == PolicyTarget || m.Policy == "" && m.Cores == 32 {
		return config.Target(), nil
	}
	var pol config.ScalingPolicy
	switch m.Policy {
	case PolicyPRS, "":
		pol = config.PRSFull
	case PolicyNRS:
		pol = config.NRS
	case PolicyPRSLLC:
		pol = config.PRSLLCOnly
	case PolicyPRSDRAM:
		pol = config.PRSDRAMOnly
	default:
		return nil, fmt.Errorf("scalesim: %w %q", ErrUnknownPolicy, string(m.Policy))
	}
	bw, err := m.Bandwidth.internal()
	if err != nil {
		return nil, err
	}
	return config.ScaleModel(config.Target(), m.Cores, config.ScaleModelOptions{Policy: pol, Bandwidth: bw})
}

// CoreResult is the measured outcome of one program in a simulation.
type CoreResult struct {
	Core                 int
	Benchmark            string
	Instructions         uint64
	IPC                  float64
	BWBytesPerCycle      float64
	LLCMPKI              float64
	BranchMispredictRate float64
}

// SimResult is a simulation run's outcome.
type SimResult struct {
	Machine         string
	Cores           []CoreResult
	DRAMUtilization float64
	NoCUtilization  float64
	WallClockSec    float64
	// SimulatedSec is the measured phase's simulated time at the machine's
	// core clock — the denominator of the paper's slowdown metric.
	SimulatedSec float64
	// Trace holds the per-epoch observability record when SimOptions.Trace
	// was set (nil otherwise). See WriteTraceJSONL and SummarizeTrace.
	Trace []EpochSnapshot
}

// AverageIPC returns the mean per-core IPC.
func (r *SimResult) AverageIPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range r.Cores {
		sum += c.IPC
	}
	return sum / float64(len(r.Cores))
}

// Simulate runs the named benchmarks (one per core; repeat a name for
// multiple copies) on the machine described by spec. Custom profiles can be
// passed via extra; they take precedence over suite names.
func Simulate(spec MachineSpec, benchmarks []string, opts SimOptions, extra ...Profile) (*SimResult, error) {
	return SimulateContext(context.Background(), spec, benchmarks, opts, extra...)
}

// SimulateContext is Simulate bounded by ctx: cancellation or deadline
// expiry propagates into the simulator's epoch loop, aborting the run
// within one epoch and returning ctx.Err().
func SimulateContext(ctx context.Context, spec MachineSpec, benchmarks []string, opts SimOptions, extra ...Profile) (*SimResult, error) {
	if err := opts.Tuning.Validate(); err != nil {
		return nil, err
	}
	cfg, wl, err := buildRun(spec, benchmarks, extra)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunContext(ctx, cfg, wl, opts.internal())
	if err != nil {
		return nil, err
	}
	return resultFromInternal(res), nil
}

// buildRun resolves a public (spec, benchmarks, extra) triple into the
// internal machine configuration and workload.
func buildRun(spec MachineSpec, benchmarks []string, extra []Profile) (*config.SystemConfig, sim.Workload, error) {
	cfg, err := spec.internal()
	if err != nil {
		return nil, sim.Workload{}, err
	}
	custom := map[string]*trace.Profile{}
	for _, p := range extra {
		tp, err := p.internal()
		if err != nil {
			return nil, sim.Workload{}, err
		}
		custom[p.Name] = tp
	}
	wl := sim.Workload{}
	for _, name := range benchmarks {
		tp := custom[name]
		if tp == nil {
			tp = trace.ByName(name)
		}
		if tp == nil {
			return nil, sim.Workload{}, fmt.Errorf("scalesim: %w %q", ErrUnknownBenchmark, name)
		}
		wl.Profiles = append(wl.Profiles, tp)
	}
	return cfg, wl, nil
}

func resultFromInternal(res *sim.Result) *SimResult {
	out := &SimResult{
		Machine:         res.ConfigName,
		DRAMUtilization: res.DRAMUtilization,
		NoCUtilization:  res.NoCUtilization,
		WallClockSec:    res.WallClock.Seconds(),
		SimulatedSec:    res.SimulatedPicos.Seconds(),
		Trace:           res.Trace,
	}
	for _, c := range res.Cores {
		out.Cores = append(out.Cores, CoreResult{
			Core:                 c.Core,
			Benchmark:            c.Benchmark,
			Instructions:         c.Instructions,
			IPC:                  c.IPC,
			BWBytesPerCycle:      float64(c.BWBytesPerCycle),
			LLCMPKI:              c.LLCMPKI,
			BranchMispredictRate: c.BranchMispredictRate,
		})
	}
	return out
}

// TableIRow is one row of the paper's Table I (scale-model construction).
// LLC, NoC and DRAM are formatted render strings; the numeric fields carry
// the same data for programmatic use.
type TableIRow struct {
	Cores int
	LLC   string
	NoC   string
	DRAM  string

	// Numeric construction parameters.
	LLCBytes   int64   // total LLC capacity in bytes
	LLCSlices  int     // NUCA slices
	NoCGBps    float64 // NoC bisection bandwidth
	CSLs       int     // cross-section links
	PerCSLGBps float64 // bandwidth per cross-section link
	DRAMGBps   float64 // total DRAM bandwidth
	MCs        int     // memory controllers
	PerMCGBps  float64 // bandwidth per controller
}

// TableI reproduces the paper's Table I for the given bandwidth order
// (BandwidthMCFirst or BandwidthMBFirst; "" = MC-first).
func TableI(bandwidth Bandwidth) ([]TableIRow, error) {
	bw, err := bandwidth.internal()
	if err != nil {
		return nil, err
	}
	var out []TableIRow
	for _, r := range config.TableI(bw) {
		out = append(out, TableIRow{
			Cores:      r.Cores,
			LLC:        fmt.Sprintf("%v: %d slices", r.LLCSize, r.LLCSlices),
			NoC:        fmt.Sprintf("%v: %d CSLs, %v per CSL", r.NoCGBps, r.CSLs, r.PerCSLGBps),
			DRAM:       fmt.Sprintf("%v: %d MCs, %v per MC", r.DRAMGBps, r.MCs, r.PerMCGBps),
			LLCBytes:   int64(r.LLCSize),
			LLCSlices:  r.LLCSlices,
			NoCGBps:    float64(r.NoCGBps),
			CSLs:       r.CSLs,
			PerCSLGBps: float64(r.PerCSLGBps),
			DRAMGBps:   float64(r.DRAMGBps),
			MCs:        r.MCs,
			PerMCGBps:  float64(r.PerMCGBps),
		})
	}
	return out, nil
}
