// Package scalesim is an open-source implementation of scale-model
// architectural simulation (Liu, Heirman, Eyerman, Akram, Eeckhout —
// ISPASS 2022): predicting large multicore system performance by simulating
// a proportionally scaled-down model of the target system and extrapolating
// with machine learning.
//
// The package bundles everything the methodology needs, built from scratch
// on the standard library:
//
//   - a trace-driven multicore simulator (out-of-order cores, three-level
//     cache hierarchy with a shared NUCA LLC, mesh NoC, multi-controller
//     DRAM with emergent bandwidth contention),
//   - a 29-benchmark synthetic workload suite spanning compute-bound to
//     bandwidth-saturating behaviour,
//   - scale-model construction (No Resource Scaling and Proportional
//     Resource Scaling, with MC-first/MB-first DRAM scaling),
//   - ML extrapolation (CART decision tree, random forest, RBF-kernel SVR)
//     and least-squares performance/core-count regression,
//   - experiment drivers regenerating every table and figure in the paper.
//
// # Quick start
//
//	ex, _ := scalesim.NewExperiments(scalesim.FastOptions())
//	pred, _ := ex.PredictTargetIPC("mcf")        // from a 1-core scale model
//	fmt.Printf("predicted 32-core IPC: %.3f\n", pred)
//
// See the examples/ directory for complete programs and DESIGN.md for the
// architecture and the paper-to-module map.
package scalesim

import (
	"fmt"

	"scalesim/internal/config"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
)

// SimOptions controls simulation fidelity and cost. The zero value of any
// field selects the default.
type SimOptions struct {
	// Instructions is the measured per-program instruction budget (the
	// paper's 1B-instruction SimPoint, capacity-scaled). Default 1e6.
	Instructions uint64
	// Warmup instructions per program before measurement. Default 250k.
	Warmup uint64
	// EpochCycles is the contention-feedback epoch. Default 20k.
	EpochCycles float64
	// CapacityScale divides cache capacities and workload footprints
	// (see DESIGN.md, "Capacity scaling"). Default 8.
	CapacityScale int
	// Seed makes every run reproducible. Default 1.
	Seed uint64
	// EnablePrefetch adds a per-core L2 stream/stride prefetcher (off in
	// the paper's baseline configuration).
	EnablePrefetch bool
	// NoFeedback and PartitionedLLC are contention-model ablations; see
	// DESIGN.md "Key design decisions".
	NoFeedback     bool
	PartitionedLLC bool
}

// DefaultOptions returns the full-fidelity experiment options used for
// EXPERIMENTS.md.
func DefaultOptions() SimOptions {
	d := sim.DefaultOptions()
	return SimOptions{
		Instructions:  d.Instructions,
		Warmup:        d.Warmup,
		EpochCycles:   d.EpochCycles,
		CapacityScale: d.CapacityScale,
		Seed:          d.Seed,
	}
}

// FastOptions returns reduced-budget options: every qualitative conclusion
// survives, at roughly a tenth of the simulation cost. Used by the examples
// and quick CLI runs.
func FastOptions() SimOptions {
	return SimOptions{
		Instructions:  200_000,
		Warmup:        60_000,
		EpochCycles:   10_000,
		CapacityScale: 16,
		Seed:          1,
	}
}

func (o SimOptions) internal() sim.Options {
	return sim.Options{
		Instructions:   o.Instructions,
		Warmup:         o.Warmup,
		EpochCycles:    o.EpochCycles,
		CapacityScale:  o.CapacityScale,
		Seed:           o.Seed,
		EnablePrefetch: o.EnablePrefetch,
		NoFeedback:     o.NoFeedback,
		PartitionedLLC: o.PartitionedLLC,
	}
}

// Pattern names accepted in Region.Pattern.
const (
	PatternSeq   = "seq"
	PatternRand  = "rand"
	PatternZipf  = "zipf"
	PatternChase = "chase"
)

// Region describes one memory region of a synthetic benchmark profile.
type Region struct {
	SizeBytes int64   // nominal footprint
	Frac      float64 // fraction of memory accesses
	Pattern   string  // "seq", "rand", "zipf" or "chase"
	ElemSize  int     // seq element size in bytes (0 = 8)
	ZipfS     float64 // zipf skew (0 = 0.8)
}

// Profile is a synthetic benchmark description (see the package
// documentation of internal/trace for the modelling rationale).
type Profile struct {
	Name           string
	BaseCPI        float64
	LoadsPerKI     int
	StoresPerKI    int
	BranchesPerKI  int
	MLP            float64
	StaticBranches int
	HardBranchFrac float64
	CodeBytes      int64
	Regions        []Region
}

func patternFromName(name string) (trace.Pattern, error) {
	switch name {
	case PatternSeq:
		return trace.Seq, nil
	case PatternRand:
		return trace.Rand, nil
	case PatternZipf:
		return trace.Zipf, nil
	case PatternChase:
		return trace.Chase, nil
	default:
		return 0, fmt.Errorf("scalesim: unknown region pattern %q", name)
	}
}

func (p Profile) internal() (*trace.Profile, error) {
	tp := &trace.Profile{
		Name:           p.Name,
		BaseCPI:        p.BaseCPI,
		LoadsPerKI:     p.LoadsPerKI,
		StoresPerKI:    p.StoresPerKI,
		BranchesPerKI:  p.BranchesPerKI,
		MLP:            p.MLP,
		StaticBranches: p.StaticBranches,
		HardFrac:       p.HardBranchFrac,
		IFootprint:     config.Bytes(p.CodeBytes),
	}
	for _, r := range p.Regions {
		pat, err := patternFromName(r.Pattern)
		if err != nil {
			return nil, err
		}
		tp.Regions = append(tp.Regions, trace.Region{
			Size:     config.Bytes(r.SizeBytes),
			Frac:     r.Frac,
			Pattern:  pat,
			ElemSize: r.ElemSize,
			ZipfS:    r.ZipfS,
		})
	}
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	return tp, nil
}

func profileFromInternal(tp *trace.Profile) Profile {
	p := Profile{
		Name:           tp.Name,
		BaseCPI:        tp.BaseCPI,
		LoadsPerKI:     tp.LoadsPerKI,
		StoresPerKI:    tp.StoresPerKI,
		BranchesPerKI:  tp.BranchesPerKI,
		MLP:            tp.MLP,
		StaticBranches: tp.StaticBranches,
		HardBranchFrac: tp.HardFrac,
		CodeBytes:      int64(tp.IFootprint),
	}
	for _, r := range tp.Regions {
		p.Regions = append(p.Regions, Region{
			SizeBytes: int64(r.Size),
			Frac:      r.Frac,
			Pattern:   r.Pattern.String(),
			ElemSize:  r.ElemSize,
			ZipfS:     r.ZipfS,
		})
	}
	return p
}

// Suite returns the 29-benchmark workload suite.
func Suite() []Profile {
	suite := trace.Suite()
	out := make([]Profile, len(suite))
	for i, p := range suite {
		out[i] = profileFromInternal(p)
	}
	return out
}

// BenchmarkNames returns the suite benchmark names.
func BenchmarkNames() []string { return trace.Names() }

// Scaling policy names accepted in MachineSpec.Policy.
const (
	PolicyTarget  = "target"   // the full 32-core Table II system
	PolicyNRS     = "NRS"      // no resource scaling
	PolicyPRS     = "PRS"      // proportional scaling of LLC+NoC+DRAM
	PolicyPRSLLC  = "PRS-LLC"  // scale LLC capacity only
	PolicyPRSDRAM = "PRS-DRAM" // scale DRAM bandwidth only
)

// Bandwidth scaling order names accepted in MachineSpec.Bandwidth.
const (
	BandwidthMCFirst = "MC-first"
	BandwidthMBFirst = "MB-first"
)

// MachineSpec selects a machine: the target system, a scale model, or a
// custom design point.
type MachineSpec struct {
	// Cores is the machine size (ignored for PolicyTarget). Must divide
	// the target's 32 cores: 1, 2, 4, 8, 16 or 32.
	Cores int
	// Policy is one of the Policy* constants ("" = PRS).
	Policy string
	// Bandwidth is one of the Bandwidth* constants ("" = MC-first).
	Bandwidth string

	// Design-space knobs (0 = PRS default). Setting any of these builds a
	// custom machine instead of a paper configuration.
	LLCPerCoreKB    int     // per-core LLC slice in KB (power-of-two sets required)
	DRAMPerCoreGBps float64 // DRAM bandwidth per core
	NoCPerCoreGBps  float64 // NoC bisection bandwidth per core
}

func (m MachineSpec) internal() (*config.SystemConfig, error) {
	if m.LLCPerCoreKB != 0 || m.DRAMPerCoreGBps != 0 || m.NoCPerCoreGBps != 0 {
		var bw config.BandwidthScaling
		if m.Bandwidth == BandwidthMBFirst {
			bw = config.MBFirst
		}
		return config.CustomSystem(m.Cores, config.CustomOptions{
			LLCSlicePerCore: config.Bytes(m.LLCPerCoreKB) * config.KB,
			DRAMPerCoreGBps: config.GBps(m.DRAMPerCoreGBps),
			NoCPerCoreGBps:  config.GBps(m.NoCPerCoreGBps),
			Bandwidth:       bw,
		})
	}
	if m.Policy == PolicyTarget || m.Policy == "" && m.Cores == 32 {
		return config.Target(), nil
	}
	var pol config.ScalingPolicy
	switch m.Policy {
	case PolicyPRS, "":
		pol = config.PRSFull
	case PolicyNRS:
		pol = config.NRS
	case PolicyPRSLLC:
		pol = config.PRSLLCOnly
	case PolicyPRSDRAM:
		pol = config.PRSDRAMOnly
	default:
		return nil, fmt.Errorf("scalesim: unknown scaling policy %q", m.Policy)
	}
	var bw config.BandwidthScaling
	switch m.Bandwidth {
	case BandwidthMCFirst, "":
		bw = config.MCFirst
	case BandwidthMBFirst:
		bw = config.MBFirst
	default:
		return nil, fmt.Errorf("scalesim: unknown bandwidth scaling %q", m.Bandwidth)
	}
	return config.ScaleModel(config.Target(), m.Cores, config.ScaleModelOptions{Policy: pol, Bandwidth: bw})
}

// CoreResult is the measured outcome of one program in a simulation.
type CoreResult struct {
	Core                 int
	Benchmark            string
	Instructions         uint64
	IPC                  float64
	BWBytesPerCycle      float64
	LLCMPKI              float64
	BranchMispredictRate float64
}

// SimResult is a simulation run's outcome.
type SimResult struct {
	Machine         string
	Cores           []CoreResult
	DRAMUtilization float64
	NoCUtilization  float64
	WallClockSec    float64
}

// AverageIPC returns the mean per-core IPC.
func (r *SimResult) AverageIPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range r.Cores {
		sum += c.IPC
	}
	return sum / float64(len(r.Cores))
}

// Simulate runs the named benchmarks (one per core; repeat a name for
// multiple copies) on the machine described by spec. Custom profiles can be
// passed via extra; they take precedence over suite names.
func Simulate(spec MachineSpec, benchmarks []string, opts SimOptions, extra ...Profile) (*SimResult, error) {
	cfg, err := spec.internal()
	if err != nil {
		return nil, err
	}
	custom := map[string]*trace.Profile{}
	for _, p := range extra {
		tp, err := p.internal()
		if err != nil {
			return nil, err
		}
		custom[p.Name] = tp
	}
	wl := sim.Workload{}
	for _, name := range benchmarks {
		tp := custom[name]
		if tp == nil {
			tp = trace.ByName(name)
		}
		if tp == nil {
			return nil, fmt.Errorf("scalesim: unknown benchmark %q", name)
		}
		wl.Profiles = append(wl.Profiles, tp)
	}
	res, err := sim.Run(cfg, wl, opts.internal())
	if err != nil {
		return nil, err
	}
	return resultFromInternal(res), nil
}

func resultFromInternal(res *sim.Result) *SimResult {
	out := &SimResult{
		Machine:         res.ConfigName,
		DRAMUtilization: res.DRAMUtilization,
		NoCUtilization:  res.NoCUtilization,
		WallClockSec:    res.WallClock.Seconds(),
	}
	for _, c := range res.Cores {
		out.Cores = append(out.Cores, CoreResult{
			Core:                 c.Core,
			Benchmark:            c.Benchmark,
			Instructions:         c.Instructions,
			IPC:                  c.IPC,
			BWBytesPerCycle:      c.BWBytesPerCycle,
			LLCMPKI:              c.LLCMPKI,
			BranchMispredictRate: c.BranchMispredictRate,
		})
	}
	return out
}

// TableIRow is one row of the paper's Table I (scale-model construction).
type TableIRow struct {
	Cores      int
	LLC        string
	NoC        string
	DRAM       string
	Underlying config.TableIRow `json:"-"`
}

// TableI reproduces the paper's Table I for the given bandwidth order
// ("MC-first" or "MB-first"; "" = MC-first).
func TableI(bandwidth string) ([]TableIRow, error) {
	var bw config.BandwidthScaling
	switch bandwidth {
	case BandwidthMCFirst, "":
		bw = config.MCFirst
	case BandwidthMBFirst:
		bw = config.MBFirst
	default:
		return nil, fmt.Errorf("scalesim: unknown bandwidth scaling %q", bandwidth)
	}
	var out []TableIRow
	for _, r := range config.TableI(bw) {
		out = append(out, TableIRow{
			Cores:      r.Cores,
			LLC:        fmt.Sprintf("%v: %d slices", r.LLCSize, r.LLCSlices),
			NoC:        fmt.Sprintf("%v: %d CSLs, %v per CSL", r.NoCGBps, r.CSLs, r.PerCSLGBps),
			DRAM:       fmt.Sprintf("%v: %d MCs, %v per MC", r.DRAMGBps, r.MCs, r.PerMCGBps),
			Underlying: r,
		})
	}
	return out, nil
}
