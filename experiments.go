package scalesim

import (
	"fmt"
	"sort"
	"strings"

	"scalesim/internal/config"
	"scalesim/internal/fit"
	"scalesim/internal/metrics"
	"scalesim/internal/runner"
	"scalesim/internal/scalemodel"
	"scalesim/internal/store"
	"scalesim/internal/trace"
)

// Experiments drives the paper's full evaluation (§V). All underlying
// simulations are cached, so regenerating several figures shares their
// common runs; collecting the first figure is the expensive step.
type Experiments struct {
	lab        *scalemodel.Lab
	suite      []*trace.Profile
	scaleCores []int
	heteroOpts scalemodel.HeteroOptions

	homog  map[scalemodel.Metric]*scalemodel.HomogeneousData
	hetero *scalemodel.HeterogeneousData
	store  *store.Store
}

// NewExperiments prepares an experiment driver with the paper's defaults:
// the 29-benchmark suite, multi-core scale models of 2/4/8/16 cores, and
// the heterogeneous protocol of §IV-2.
func NewExperiments(opts SimOptions) (*Experiments, error) {
	return newExperiments(opts, trace.Suite())
}

// NewExperimentsSubset restricts the suite to the named benchmarks (useful
// for quick runs; the paper's numbers use the full suite).
func NewExperimentsSubset(opts SimOptions, names ...string) (*Experiments, error) {
	var suite []*trace.Profile
	for _, n := range names {
		p := trace.ByName(n)
		if p == nil {
			return nil, fmt.Errorf("scalesim: unknown benchmark %q", n)
		}
		suite = append(suite, p)
	}
	if len(suite) < 3 {
		return nil, fmt.Errorf("scalesim: need at least 3 benchmarks, got %d", len(suite))
	}
	return newExperiments(opts, suite)
}

func newExperiments(opts SimOptions, suite []*trace.Profile) (*Experiments, error) {
	heteroOpts := scalemodel.DefaultHeteroOptions()
	if len(suite) < 12 {
		// Scale the protocol down with the suite for subset runs.
		heteroOpts.EvalBenchmarks = len(suite) / 3
		heteroOpts.TrainResults = 128
		heteroOpts.EvalMixes = 4
		heteroOpts.STPMixes = 10
	}
	return &Experiments{
		lab:        scalemodel.NewLab(opts.internal()),
		suite:      suite,
		scaleCores: []int{2, 4, 8, 16},
		heteroOpts: heteroOpts,
		homog:      map[scalemodel.Metric]*scalemodel.HomogeneousData{},
	}, nil
}

// Runs reports how many distinct simulations have been executed so far.
func (e *Experiments) Runs() int { return e.lab.Runs() }

// CacheHits reports how many simulations were served from the memo cache.
func (e *Experiments) CacheHits() int { return e.lab.CacheHits() }

// DiskHits reports how many simulations were served from the durable store.
func (e *Experiments) DiskHits() int { return e.lab.DiskHits() }

// SetStore attaches the durable result store at dir (created on first use)
// as a second memoization tier: previously computed design points load from
// disk instead of simulating, making full-suite regeneration incremental
// across invocations. Results are bit-identical with or without a store.
func (e *Experiments) SetStore(dir string) error {
	st, err := store.Open(dir)
	if err != nil {
		return fmt.Errorf("scalesim: opening experiment store: %w", err)
	}
	e.store = st
	e.lab.SetStore(st)
	return nil
}

// SetRetry replaces the engine's transient-failure retry policy (the zero
// value restores the default).
func (e *Experiments) SetRetry(p RetryPolicy) {
	if p == (RetryPolicy{}) {
		e.lab.SetRetry(runner.DefaultRetryPolicy)
		return
	}
	e.lab.SetRetry(runner.RetryPolicy(p))
}

// Close releases the attached store, if any.
func (e *Experiments) Close() error {
	if e.store == nil {
		return nil
	}
	err := e.store.Close()
	e.store = nil
	return err
}

// CampaignReport renders the campaign engine's execution report: job
// counters plus a per-configuration table of where simulation time went
// (printed by `experiments -stats`).
func (e *Experiments) CampaignReport() string { return e.lab.Report().String() }

// SetWorkers sets the campaign engine's worker-pool size used when
// experiment protocols fan batches of simulations out in parallel (<= 0
// selects GOMAXPROCS; the default is 1, i.e. sequential). Results are
// bit-identical for any worker count.
func (e *Experiments) SetWorkers(n int) { e.lab.SetWorkers(n) }

func (e *Experiments) homogData(m scalemodel.Metric) (*scalemodel.HomogeneousData, error) {
	if d, ok := e.homog[m]; ok {
		return d, nil
	}
	d, err := e.lab.CollectHomogeneous(e.suite, e.scaleCores, m)
	if err != nil {
		return nil, err
	}
	e.homog[m] = d
	return d, nil
}

func (e *Experiments) heteroData() (*scalemodel.HeterogeneousData, error) {
	if e.hetero != nil {
		return e.hetero, nil
	}
	d, err := e.lab.CollectHeterogeneous(e.suite, e.heteroOpts)
	if err != nil {
		return nil, err
	}
	e.hetero = d
	return d, nil
}

// scalemodelNoExtrap is the no-extrapolation method spec used by several
// studies.
func scalemodelNoExtrap() scalemodel.MethodSpec {
	return scalemodel.MethodSpec{Method: scalemodel.MethodNoExtrapolation}
}

// BenchError is one benchmark's absolute prediction error, with its LLC
// MPKI sort key (figures order benchmarks by memory intensity).
type BenchError struct {
	Benchmark string
	MPKI      float64
	Error     float64
}

// MethodResult is one method's evaluation outcome.
type MethodResult struct {
	Method   string
	PerBench []BenchError
	Mean     float64
	Max      float64
}

func methodResult(name string, errs []metrics.NamedError) MethodResult {
	mr := MethodResult{Method: name}
	vals := make([]float64, 0, len(errs))
	for _, e := range errs {
		mr.PerBench = append(mr.PerBench, BenchError{Benchmark: e.Name, MPKI: e.Key, Error: e.Error})
		vals = append(vals, e.Error)
	}
	s := metrics.Summarize(vals)
	mr.Mean, mr.Max = s.Mean, s.Max
	return mr
}

// FigureResult is one regenerated figure or table.
type FigureResult struct {
	ID      string
	Title   string
	Methods []MethodResult
	Notes   string
}

// String renders the figure as a text table: one row per method, with the
// per-benchmark series (sorted by MPKI) and the mean/max summary the paper
// quotes.
func (f *FigureResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	for _, m := range f.Methods {
		fmt.Fprintf(&b, "  %-22s avg %6.1f%%  max %6.1f%%\n", m.Method, 100*m.Mean, 100*m.Max)
	}
	if len(f.Methods) > 0 && len(f.Methods[0].PerBench) > 0 {
		fmt.Fprintf(&b, "  per-benchmark (sorted by LLC MPKI):\n")
		fmt.Fprintf(&b, "  %-12s", "benchmark")
		for _, m := range f.Methods {
			fmt.Fprintf(&b, " %12s", m.Method)
		}
		fmt.Fprintln(&b)
		for i, be := range f.Methods[0].PerBench {
			fmt.Fprintf(&b, "  %-12s", be.Benchmark)
			for _, m := range f.Methods {
				if i < len(m.PerBench) {
					fmt.Fprintf(&b, " %11.1f%%", 100*m.PerBench[i].Error)
				}
			}
			fmt.Fprintln(&b)
		}
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", f.Notes)
	}
	return b.String()
}

// predictionSpecs returns the method lineup of Figs. 4, 5 and 12.
func predictionSpecs() []scalemodel.MethodSpec {
	return []scalemodel.MethodSpec{
		{Method: scalemodel.MethodNoExtrapolation},
		{Method: scalemodel.MethodPrediction, Estimator: scalemodel.DT},
		{Method: scalemodel.MethodPrediction, Estimator: scalemodel.RF},
		{Method: scalemodel.MethodPrediction, Estimator: scalemodel.SVM},
		{Method: scalemodel.MethodRegression, Estimator: scalemodel.DT, Form: fit.Logarithmic},
		{Method: scalemodel.MethodRegression, Estimator: scalemodel.RF, Form: fit.Logarithmic},
		{Method: scalemodel.MethodRegression, Estimator: scalemodel.SVM, Form: fit.Logarithmic},
	}
}

// Fig3Construction regenerates Fig. 3: single-core scale-model prediction
// error under the four construction policies (NRS; PRS scaling LLC only;
// PRS scaling DRAM only; PRS scaling all shared resources), sorted by LLC
// MPKI, no extrapolation.
func (e *Experiments) Fig3Construction() (*FigureResult, error) {
	policies := []struct {
		name   string
		policy config.ScalingPolicy
	}{
		{"NRS", config.NRS},
		{"PRS-LLC", config.PRSLLCOnly},
		{"PRS-DRAM", config.PRSDRAMOnly},
		{"PRS", config.PRSFull},
	}
	out := &FigureResult{ID: "Fig. 3", Title: "Scale-model construction: NRS vs PRS variants (single-core scale model, no extrapolation)"}
	for _, p := range policies {
		lab := e.lab.WithPolicy(p.policy)
		d, err := lab.CollectHomogeneous(e.suite, nil, scalemodel.MetricIPC)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", p.name, err)
		}
		errs, err := d.EvaluateLOO(scalemodel.MethodSpec{Method: scalemodel.MethodNoExtrapolation})
		if err != nil {
			return nil, err
		}
		out.Methods = append(out.Methods, methodResult(p.name, errs))
	}
	return out, nil
}

// Fig4Homogeneous regenerates Fig. 4: extrapolation accuracy on homogeneous
// mixes — No Extrapolation vs ML prediction (DT/RF/SVM) vs ML regression
// (DT/RF/SVM-log), leave-one-benchmark-out.
func (e *Experiments) Fig4Homogeneous() (*FigureResult, error) {
	d, err := e.homogData(scalemodel.MetricIPC)
	if err != nil {
		return nil, err
	}
	out := &FigureResult{ID: "Fig. 4", Title: "Scale-model extrapolation, homogeneous workload mixes (LOO)"}
	for _, spec := range predictionSpecs() {
		errs, err := d.EvaluateLOO(spec)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", spec.Name(), err)
		}
		out.Methods = append(out.Methods, methodResult(spec.Name(), errs))
	}
	return out, nil
}

// Fig5Heterogeneous regenerates Fig. 5: per-application prediction error on
// heterogeneous mixes.
func (e *Experiments) Fig5Heterogeneous() (*FigureResult, error) {
	d, err := e.heteroData()
	if err != nil {
		return nil, err
	}
	out := &FigureResult{ID: "Fig. 5", Title: "Scale-model extrapolation, heterogeneous workload mixes"}
	for _, spec := range predictionSpecs() {
		errs, err := d.EvaluatePerApp(spec)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", spec.Name(), err)
		}
		out.Methods = append(out.Methods, methodResult(spec.Name(), errs))
	}
	return out, nil
}

// STPResult is Fig. 6's outcome: sorted per-mix STP errors per method.
type STPResult struct {
	Methods []STPMethodResult
	Mixes   int
}

// STPMethodResult is one regression method's STP error curve.
type STPMethodResult struct {
	Method string
	Sorted []float64 // ascending per-mix absolute errors
	Mean   float64
	Max    float64
}

// String renders the sorted STP error curves.
func (r *STPResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — STP prediction error across %d heterogeneous mixes\n", r.Mixes)
	for _, m := range r.Methods {
		fmt.Fprintf(&b, "  %-10s avg %5.1f%%  max %5.1f%%\n", m.Method, 100*m.Mean, 100*m.Max)
	}
	return b.String()
}

// Fig6STP regenerates Fig. 6: system-throughput prediction error of the
// ML-based regression methods across the heterogeneous STP mixes.
func (e *Experiments) Fig6STP() (*STPResult, error) {
	d, err := e.heteroData()
	if err != nil {
		return nil, err
	}
	out := &STPResult{Mixes: len(d.STPMixes)}
	for _, est := range scalemodel.Kinds() {
		spec := scalemodel.MethodSpec{Method: scalemodel.MethodRegression, Estimator: est, Form: fit.Logarithmic}
		errs, err := d.EvaluateSTP(spec)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", spec.Name(), err)
		}
		sorted := metrics.Sorted(errs)
		s := metrics.Summarize(errs)
		out.Methods = append(out.Methods, STPMethodResult{
			Method: spec.Name(), Sorted: sorted, Mean: s.Mean, Max: s.Max,
		})
	}
	return out, nil
}

// SpeedupPoint is one point of Fig. 7: a method's mean error and its
// simulation speedup over simulating the target system.
type SpeedupPoint struct {
	Label   string
	Error   float64
	Speedup float64
}

// SpeedupResult is Fig. 7's outcome.
type SpeedupResult struct {
	NoExtrapolation []SpeedupPoint // 16-, 8-, 4-, 2-, 1-core scale models
	ML              []SpeedupPoint // SVM, SVM-log (single-core scale model)
}

// String renders the error-versus-speedup points.
func (r *SpeedupResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — prediction error vs simulation speedup\n")
	for _, p := range r.NoExtrapolation {
		fmt.Fprintf(&b, "  No Extrapolation %-9s err %5.1f%%  speedup %6.1fx\n", p.Label, 100*p.Error, p.Speedup)
	}
	for _, p := range r.ML {
		fmt.Fprintf(&b, "  %-26s err %5.1f%%  speedup %6.1fx\n", p.Label, 100*p.Error, p.Speedup)
	}
	return b.String()
}

// Fig7ErrorVsSpeedup regenerates Fig. 7: No Extrapolation accuracy with
// increasingly large scale models (1-16 cores) against their measured
// simulation speedup, plus the ML methods at the single-core scale model's
// speedup. Speedups are measured wall-clock ratios on this host.
func (e *Experiments) Fig7ErrorVsSpeedup() (*SpeedupResult, error) {
	d, err := e.homogData(scalemodel.MetricIPC)
	if err != nil {
		return nil, err
	}
	// Wall-clock totals per machine size over the homogeneous suite (all
	// runs are cached by now; this only reads their recorded durations).
	simSecs := map[int]float64{}
	for _, prof := range e.suite {
		for _, c := range append([]int{1}, e.scaleCores...) {
			res, err := e.lab.HomogeneousRun(c, prof)
			if err != nil {
				return nil, err
			}
			simSecs[c] += res.WallClock.Seconds()
		}
		res, err := e.lab.HomogeneousRun(e.lab.Target.Cores, prof)
		if err != nil {
			return nil, err
		}
		simSecs[e.lab.Target.Cores] += res.WallClock.Seconds()
	}
	targetSecs := simSecs[e.lab.Target.Cores]

	out := &SpeedupResult{}
	// No-extrapolation points: the X-core scale-model reading predicts
	// per-core target performance directly.
	sizes := append([]int{1}, e.scaleCores...)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	for _, X := range sizes {
		var errs []float64
		for _, b := range d.Benchmarks {
			pred := d.Meas[b].IPC
			if X > 1 {
				pred = d.Scale[X][b]
			}
			errs = append(errs, metrics.PredictionError(pred, d.Target[b]))
		}
		s := metrics.Summarize(errs)
		out.NoExtrapolation = append(out.NoExtrapolation, SpeedupPoint{
			Label:   fmt.Sprintf("%d-core", X),
			Error:   s.Mean,
			Speedup: targetSecs / simSecs[X],
		})
	}
	// ML points: both methods only need the single-core scale model at
	// prediction time.
	for _, spec := range []scalemodel.MethodSpec{
		{Method: scalemodel.MethodPrediction, Estimator: scalemodel.SVM},
		{Method: scalemodel.MethodRegression, Estimator: scalemodel.SVM, Form: fit.Logarithmic},
	} {
		errs, err := d.EvaluateLOO(spec)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(errs))
		for i, e := range errs {
			vals[i] = e.Error
		}
		s := metrics.Summarize(vals)
		out.ML = append(out.ML, SpeedupPoint{
			Label:   spec.Name() + " (1-core)",
			Error:   s.Mean,
			Speedup: targetSecs / simSecs[1],
		})
	}
	return out, nil
}

// Fig8BandwidthScaling regenerates Fig. 8: MC-first versus MB-first DRAM
// bandwidth scaling, comparing the direct multi-core scale-model readings
// and the ML-based regression methods under both orders.
func (e *Experiments) Fig8BandwidthScaling() (*FigureResult, error) {
	out := &FigureResult{ID: "Fig. 8", Title: "Memory bandwidth scaling alternatives under PRS (MC-first vs MB-first)"}
	for _, bwp := range []struct {
		name string
		bw   config.BandwidthScaling
	}{{"MC-first", config.MCFirst}, {"MB-first", config.MBFirst}} {
		lab := e.lab.WithBandwidth(bwp.bw)
		d, err := lab.CollectHomogeneous(e.suite, e.scaleCores, scalemodel.MetricIPC)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", bwp.name, err)
		}
		// Direct scale-model readings per size.
		for _, X := range e.scaleCores {
			var errs []float64
			for _, b := range d.Benchmarks {
				errs = append(errs, metrics.PredictionError(d.Scale[X][b], d.Target[b]))
			}
			s := metrics.Summarize(errs)
			out.Methods = append(out.Methods, MethodResult{
				Method: fmt.Sprintf("%s %d-core", bwp.name, X),
				Mean:   s.Mean, Max: s.Max,
			})
		}
		for _, est := range scalemodel.Kinds() {
			spec := scalemodel.MethodSpec{Method: scalemodel.MethodRegression, Estimator: est, Form: fit.Logarithmic}
			errs, err := d.EvaluateLOO(spec)
			if err != nil {
				return nil, err
			}
			mr := methodResult(fmt.Sprintf("%s %s", bwp.name, spec.Name()), errs)
			mr.PerBench = nil // summary-only rows for this figure
			out.Methods = append(out.Methods, mr)
		}
	}
	return out, nil
}

// Fig9RegressionForms regenerates Fig. 9: linear vs power vs logarithmic
// regression under SVM-based regression.
func (e *Experiments) Fig9RegressionForms() (*FigureResult, error) {
	d, err := e.homogData(scalemodel.MetricIPC)
	if err != nil {
		return nil, err
	}
	out := &FigureResult{ID: "Fig. 9", Title: "Regression curve families under SVM-based regression"}
	for _, form := range []fit.Model{fit.Linear, fit.Power, fit.Logarithmic} {
		spec := scalemodel.MethodSpec{Method: scalemodel.MethodRegression, Estimator: scalemodel.SVM, Form: form}
		errs, err := d.EvaluateLOO(spec)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", spec.Name(), err)
		}
		out.Methods = append(out.Methods, methodResult(spec.Name(), errs))
	}
	return out, nil
}

// Fig10Inputs regenerates Fig. 10: using IPC-only versus IPC+bandwidth as
// model inputs, for every ML method.
func (e *Experiments) Fig10Inputs() (*FigureResult, error) {
	d, err := e.homogData(scalemodel.MetricIPC)
	if err != nil {
		return nil, err
	}
	out := &FigureResult{ID: "Fig. 10", Title: "ML input variables: performance-only vs performance+bandwidth"}
	base := predictionSpecs()[1:] // skip No Extrapolation
	for _, in := range []scalemodel.Inputs{scalemodel.InputsIPCOnly, scalemodel.InputsIPCAndBW} {
		for _, spec := range base {
			spec.Inputs = in
			errs, err := d.EvaluateLOO(spec)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s/%s: %w", spec.Name(), in, err)
			}
			mr := methodResult(fmt.Sprintf("%s (%s)", spec.Name(), in), errs)
			mr.PerBench = nil
			out.Methods = append(out.Methods, mr)
		}
	}
	return out, nil
}

// Fig11ScaleModelCount regenerates Fig. 11: SVM-log regression accuracy as
// the number of multi-core scale models shrinks from four to two.
func (e *Experiments) Fig11ScaleModelCount() (*FigureResult, error) {
	d, err := e.homogData(scalemodel.MetricIPC)
	if err != nil {
		return nil, err
	}
	out := &FigureResult{ID: "Fig. 11", Title: "Number of multi-core scale models used for SVM-log regression"}
	subsets := [][]int{{2, 4}, {2, 4, 8}, {2, 4, 8, 16}}
	for _, sub := range subsets {
		spec := scalemodel.MethodSpec{
			Method: scalemodel.MethodRegression, Estimator: scalemodel.SVM,
			Form: fit.Logarithmic, ScaleModels: sub,
		}
		errs, err := d.EvaluateLOO(spec)
		if err != nil {
			return nil, fmt.Errorf("fig11 %v: %w", sub, err)
		}
		mr := methodResult(fmt.Sprintf("%d scale models %v", len(sub), sub), errs)
		mr.PerBench = nil
		out.Methods = append(out.Methods, mr)
	}
	return out, nil
}

// Fig12Bandwidth regenerates Fig. 12: predicting per-application memory
// bandwidth utilization instead of performance.
func (e *Experiments) Fig12Bandwidth() (*FigureResult, error) {
	d, err := e.homogData(scalemodel.MetricBW)
	if err != nil {
		return nil, err
	}
	out := &FigureResult{ID: "Fig. 12", Title: "Predicting memory bandwidth utilization"}
	for _, spec := range predictionSpecs() {
		errs, err := d.EvaluateLOO(spec)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", spec.Name(), err)
		}
		mr := methodResult(spec.Name(), errs)
		mr.PerBench = nil
		out.Methods = append(out.Methods, mr)
	}
	return out, nil
}

// SimTimeRow is one row of the simulation-cost study (§I: 8/16/32-core
// simulations take super-linearly longer).
type SimTimeRow struct {
	Cores      int
	TotalSecs  float64
	PerBenchMs float64
}

// SimulationTimeStudy measures the wall-clock cost of simulating the
// homogeneous suite at each machine size, reproducing §I's super-linear
// growth observation and the 28x single-core speedup claim.
func (e *Experiments) SimulationTimeStudy() ([]SimTimeRow, error) {
	if _, err := e.homogData(scalemodel.MetricIPC); err != nil {
		return nil, err
	}
	var rows []SimTimeRow
	for _, c := range []int{1, 2, 4, 8, 16, 32} {
		total := 0.0
		for _, prof := range e.suite {
			res, err := e.lab.HomogeneousRun(c, prof)
			if err != nil {
				return nil, err
			}
			total += res.WallClock.Seconds()
		}
		rows = append(rows, SimTimeRow{
			Cores:      c,
			TotalSecs:  total,
			PerBenchMs: 1000 * total / float64(len(e.suite)),
		})
	}
	return rows, nil
}

// PredictTargetIPC predicts the named benchmark's per-core IPC on the
// 32-core target using SVM-log regression trained on the rest of the suite
// — the paper's recommended practical configuration (no target-system
// simulations needed for training).
func (e *Experiments) PredictTargetIPC(benchmark string) (float64, error) {
	d, err := e.homogData(scalemodel.MetricIPC)
	if err != nil {
		return 0, err
	}
	spec := scalemodel.MethodSpec{
		Method: scalemodel.MethodRegression, Estimator: scalemodel.SVM, Form: fit.Logarithmic,
	}
	pred, _, err := d.PredictOne(benchmark, spec)
	return pred, err
}

// ActualTargetIPC simulates the benchmark homogeneously on the 32-core
// target and returns the measured per-core IPC (for validating
// predictions).
func (e *Experiments) ActualTargetIPC(benchmark string) (float64, error) {
	d, err := e.homogData(scalemodel.MetricIPC)
	if err != nil {
		return 0, err
	}
	v, ok := d.Target[benchmark]
	if !ok {
		return 0, fmt.Errorf("scalesim: benchmark %q not in the experiment suite", benchmark)
	}
	return v, nil
}
