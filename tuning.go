package scalesim

import (
	"errors"
	"fmt"
)

// ErrBadTuning reports a Tuning with out-of-range fields. It is wrapped
// with context by the functions that return it; test with errors.Is.
var ErrBadTuning = errors.New("invalid tuning")

// Tuning is the consolidated performance-tuning surface: every knob that
// trades wall-clock time or memory for nothing else. Tuning never changes
// simulation results — parallel and serial runs are byte-identical (see
// DESIGN.md, "Performance invariants") — and is therefore never part of the
// campaign cache key: two runs differing only in Tuning memoize to the same
// stored result.
//
// The zero value (and a nil *Tuning) means "auto" everywhere. Tuning is
// accepted by SimOptions, Campaign, and ServiceConfig, and is settable from
// the CLIs via -core-workers / -campaign-workers. The pre-existing knobs it
// consolidates (Campaign.Workers, ServiceConfig.Workers, the CLI -workers
// flag) remain as deprecated aliases that delegate onto it.
type Tuning struct {
	// CoreWorkers bounds the worker pool that executes per-core epoch work
	// in parallel inside one simulation. 0 = auto: a standalone simulation
	// uses min(cores, GOMAXPROCS); a campaign splits the host budget
	// between job-level and core-level parallelism (GOMAXPROCS divided by
	// the effective campaign workers). 1 forces serial epoch execution.
	CoreWorkers int `json:"core_workers,omitempty"`
	// CampaignWorkers bounds concurrent jobs in a campaign or service.
	// 0 = auto (GOMAXPROCS). Takes precedence over the deprecated
	// Campaign.Workers / ServiceConfig.Workers aliases when set.
	CampaignWorkers int `json:"campaign_workers,omitempty"`
	// EpochLogOps pre-sizes each core's shared-LLC operation log arena in
	// entries (0 = auto). Logs grow on demand either way; pre-sizing only
	// avoids a few early-epoch reallocations on memory-intensive mixes.
	EpochLogOps int `json:"epoch_log_ops,omitempty"`
}

// Validate reports whether every field is in range. A nil receiver is
// valid (it means "auto"). The error wraps ErrBadTuning.
func (t *Tuning) Validate() error {
	if t == nil {
		return nil
	}
	if t.CoreWorkers < 0 {
		return fmt.Errorf("scalesim: %w: CoreWorkers %d < 0", ErrBadTuning, t.CoreWorkers)
	}
	if t.CampaignWorkers < 0 {
		return fmt.Errorf("scalesim: %w: CampaignWorkers %d < 0", ErrBadTuning, t.CampaignWorkers)
	}
	if t.EpochLogOps < 0 {
		return fmt.Errorf("scalesim: %w: EpochLogOps %d < 0", ErrBadTuning, t.EpochLogOps)
	}
	return nil
}

// coreWorkers returns the per-simulation worker bound, 0 for auto.
func (t *Tuning) coreWorkers() int {
	if t == nil {
		return 0
	}
	return t.CoreWorkers
}

// epochLogOps returns the log arena pre-size, 0 for auto.
func (t *Tuning) epochLogOps() int {
	if t == nil {
		return 0
	}
	return t.EpochLogOps
}

// campaignWorkers resolves the job-level worker count against the
// deprecated alias: the Tuning field wins when set, otherwise the alias,
// otherwise auto (0).
func (t *Tuning) campaignWorkers(deprecatedAlias int) int {
	if t != nil && t.CampaignWorkers != 0 {
		return t.CampaignWorkers
	}
	return deprecatedAlias
}
