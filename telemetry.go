// Public observability surface: trace types, JSONL (de)serialisation, and
// the per-component trace summary printed by `scalesim stats`.
//
// A trace is the sequence of per-epoch snapshots a simulation records when
// SimOptions.Trace is set (see DESIGN.md, "Observability"). The snapshot
// types are aliases of the simulator's own — the trace a SimResult carries
// is exactly what the epoch loop observed, with no translation layer.
package scalesim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"scalesim/internal/sim"
)

// EpochSnapshot is one epoch's observability record; CoreEpoch is one core's
// activity within it. Both serialise to stable JSON (see DESIGN.md for the
// schema).
type (
	EpochSnapshot = sim.EpochSnapshot
	CoreEpoch     = sim.CoreEpoch
)

// Phase labels for EpochSnapshot.Phase.
const (
	PhaseWarmup  = sim.PhaseWarmup
	PhaseMeasure = sim.PhaseMeasure
)

// TraceSchema is the version tag heading JSONL traces written by
// WriteTraceJSONL. ReadTraceJSONL skips a matching header, rejects an
// unknown one (ErrUnknownSchema), and still reads headerless v0 files.
const TraceSchema = "scalesim/trace/v1"

// WriteTraceJSONL writes the trace to w as JSON Lines: a schema header
// record, then one snapshot per line. The output is deterministic: the same
// trace always yields the same bytes.
func WriteTraceJSONL(w io.Writer, trace []EpochSnapshot) error {
	if _, err := io.WriteString(w, `{"schema":"`+TraceSchema+"\"}\n"); err != nil {
		return fmt.Errorf("scalesim: writing trace header: %w", err)
	}
	enc := json.NewEncoder(w)
	for i := range trace {
		if err := enc.Encode(&trace[i]); err != nil {
			return fmt.Errorf("scalesim: writing trace epoch %d: %w", i, err)
		}
	}
	return nil
}

// ReadTraceJSONL reads a JSON Lines trace written by WriteTraceJSONL (or a
// streaming sink) back into snapshots. A leading schema record is verified
// and skipped; a trace with no header (the pre-versioning v0 format) is
// read as-is, and one with an unrecognised schema tag is rejected with an
// error wrapping ErrUnknownSchema.
func ReadTraceJSONL(r io.Reader) ([]EpochSnapshot, error) {
	dec := json.NewDecoder(r)
	var trace []EpochSnapshot
	for i := 0; ; i++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			return trace, nil
		} else if err != nil {
			return trace, fmt.Errorf("scalesim: reading trace epoch %d: %w", len(trace), err)
		}
		if i == 0 {
			var hdr struct {
				Schema string `json:"schema"`
			}
			if json.Unmarshal(raw, &hdr) == nil && hdr.Schema != "" {
				if hdr.Schema != TraceSchema {
					return nil, fmt.Errorf("scalesim: trace header: %w %q (this build reads %s)",
						ErrUnknownSchema, hdr.Schema, TraceSchema)
				}
				continue // known header: skip
			}
			// No schema field: a headerless v0 trace; fall through and
			// decode the record as a snapshot.
		}
		var s EpochSnapshot
		if err := json.Unmarshal(raw, &s); err != nil {
			return trace, fmt.Errorf("scalesim: reading trace epoch %d: %w", len(trace), err)
		}
		trace = append(trace, s)
	}
}

// TraceCoreSummary aggregates one core's measured epochs of a trace.
type TraceCoreSummary struct {
	Core      int
	Benchmark string

	Instructions uint64
	Cycles       float64
	IPC          float64 // total instructions / total cycles

	// CPI stack shares: each component's fraction of the core's total
	// cycles (they sum to 1 when the core retired instructions).
	BaseShare     float64
	BranchShare   float64
	MemoryShare   float64
	FrontendShare float64

	// Access-weighted cache hit rates across the summarised epochs.
	L1DHitRate float64
	L2HitRate  float64
	LLCHitRate float64

	DRAMBytes float64
}

// TraceSummary condenses a trace into per-component aggregates — the
// program-level view `scalesim stats` prints. Only measured epochs
// contribute; warmup epochs (present when SimOptions.TraceWarmup was set)
// are counted but not aggregated.
type TraceSummary struct {
	Config       string
	Epochs       int // measured epochs summarised
	WarmupEpochs int // warmup epochs skipped
	Cycles       float64

	Cores []TraceCoreSummary

	// Epoch-mean shared-resource state.
	NoCUtilization    float64
	NoCQueueDelay     float64
	DRAMUtilization   float64
	DRAMQueueDelay    float64
	DRAMRowEfficiency float64
	DRAMBytesPerCycle float64
}

// SummarizeTrace aggregates a trace's measured epochs. Per-core CPI-stack
// shares weight each epoch by its cycle deltas (not an epoch mean of
// ratios), hit rates weight by accesses via the recorded per-epoch rates and
// instruction counts, and shared-resource figures are epoch means.
func SummarizeTrace(trace []EpochSnapshot) TraceSummary {
	var s TraceSummary
	type coreAcc struct {
		instr                          uint64
		cycles                         float64
		base, branch, memory, frontend float64
		l1dHit, l1dN                   float64
		l2Hit, l2N                     float64
		llcHit, llcN                   float64
		dramBytes                      float64
		benchmark                      string
	}
	var acc []coreAcc
	for _, e := range trace {
		if e.Phase == PhaseWarmup {
			s.WarmupEpochs++
			continue
		}
		if s.Config == "" {
			s.Config = e.Config
		}
		s.Epochs++
		s.Cycles += e.EpochCycles
		s.NoCUtilization += e.NoCUtilization
		s.NoCQueueDelay += e.NoCQueueDelay
		s.DRAMUtilization += e.DRAMUtilization
		s.DRAMQueueDelay += e.DRAMQueueDelay
		s.DRAMRowEfficiency += e.DRAMRowEfficiency
		s.DRAMBytesPerCycle += e.DRAMBytesPerCycle
		for _, c := range e.Cores {
			for len(acc) <= c.Core {
				acc = append(acc, coreAcc{})
			}
			a := &acc[c.Core]
			a.benchmark = c.Benchmark
			a.instr += c.Instructions
			a.cycles += c.Cycles
			// CoreEpoch records per-instruction CPI components; scale back
			// to cycles so epochs weight by their actual activity.
			ki := float64(c.Instructions)
			a.base += c.BaseCPI * ki
			a.branch += c.BranchCPI * ki
			a.memory += c.MemoryCPI * ki
			a.frontend += c.FrontendCPI * ki
			// Hit rates weight by the level's traffic proxy: instructions
			// for L1D (the recorded rate is per-access, access counts are
			// proportional to instructions for a fixed profile), and the
			// same instruction weight for L2/LLC.
			a.l1dHit += c.L1DHitRate * ki
			a.l1dN += ki
			a.l2Hit += c.L2HitRate * ki
			a.l2N += ki
			a.llcHit += c.LLCHitRate * ki
			a.llcN += ki
			a.dramBytes += c.DRAMBytes
		}
	}
	if s.Epochs > 0 {
		n := float64(s.Epochs)
		s.NoCUtilization /= n
		s.NoCQueueDelay /= n
		s.DRAMUtilization /= n
		s.DRAMQueueDelay /= n
		s.DRAMRowEfficiency /= n
		s.DRAMBytesPerCycle /= n
	}
	div := func(num, den float64) float64 {
		if den == 0 {
			return 0
		}
		return num / den
	}
	for core, a := range acc {
		cs := TraceCoreSummary{
			Core:         core,
			Benchmark:    a.benchmark,
			Instructions: a.instr,
			Cycles:       a.cycles,
			IPC:          div(float64(a.instr), a.cycles),
			DRAMBytes:    a.dramBytes,
		}
		total := a.base + a.branch + a.memory + a.frontend
		cs.BaseShare = div(a.base, total)
		cs.BranchShare = div(a.branch, total)
		cs.MemoryShare = div(a.memory, total)
		cs.FrontendShare = div(a.frontend, total)
		cs.L1DHitRate = div(a.l1dHit, a.l1dN)
		cs.L2HitRate = div(a.l2Hit, a.l2N)
		cs.LLCHitRate = div(a.llcHit, a.llcN)
		s.Cores = append(s.Cores, cs)
	}
	return s
}

// String renders the summary as a per-component table in the spirit of the
// paper's Table I: one row per core with its CPI stack and hit rates,
// followed by the shared NoC and DRAM lines.
func (s TraceSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d measured epochs (%.0f cycles)", s.Config, s.Epochs, s.Cycles)
	if s.WarmupEpochs > 0 {
		fmt.Fprintf(&b, ", %d warmup epochs skipped", s.WarmupEpochs)
	}
	b.WriteString("\n")
	b.WriteString("  core benchmark          ipc   | cpi stack: base  branch  memory  front | hit: l1d    l2   llc |  dram bytes\n")
	for _, c := range s.Cores {
		fmt.Fprintf(&b, "  %4d %-16s %6.3f |           %4.0f%%   %4.0f%%   %4.0f%%   %4.0f%% |    %4.0f%% %4.0f%% %4.0f%% | %11.3g\n",
			c.Core, c.Benchmark, c.IPC,
			100*c.BaseShare, 100*c.BranchShare, 100*c.MemoryShare, 100*c.FrontendShare,
			100*c.L1DHitRate, 100*c.L2HitRate, 100*c.LLCHitRate,
			c.DRAMBytes)
	}
	fmt.Fprintf(&b, "  noc:  %.1f%% utilized, %.2f cycles mean queue delay\n",
		100*s.NoCUtilization, s.NoCQueueDelay)
	fmt.Fprintf(&b, "  dram: %.1f%% utilized, %.2f cycles mean queue delay, %.0f%% row efficiency, %.3f bytes/cycle",
		100*s.DRAMUtilization, s.DRAMQueueDelay, 100*s.DRAMRowEfficiency, s.DRAMBytesPerCycle)
	return b.String()
}
