package scalesim

import (
	"context"

	"scalesim/internal/metrics"
	"scalesim/internal/runner"
)

// CampaignJob is one design point of a campaign: a machine, a benchmark
// mix (one name per core), the simulation options, and optional custom
// profiles resolved by name before the suite.
type CampaignJob struct {
	Machine    MachineSpec
	Benchmarks []string
	Options    SimOptions
	Extra      []Profile
}

// Campaign is a batch of simulation jobs to execute on a worker pool with
// content-addressed memoization: jobs describing the same design point
// (identical machine, workload and options, seed included) simulate exactly
// once, however often they recur in the batch.
type Campaign struct {
	// Jobs are the design points, in the order results are returned.
	Jobs []CampaignJob
	// Workers is the worker-pool size (<= 0 selects GOMAXPROCS). Results
	// are bit-identical for any worker count — only wall-clock changes.
	Workers int
	// OnProgress, when non-nil, is invoked serially after each job
	// completes (successfully, from cache, or with an error).
	OnProgress func(CampaignProgress)
}

// CampaignProgress is one campaign progress event.
type CampaignProgress struct {
	// Job is the submission-order index of the job that just finished.
	Job int
	// Completed and Total track overall campaign progress.
	Completed int
	Total     int
	// CacheHit reports whether the job was served from the memo cache.
	CacheHit bool
	// Err is the job's error, if it failed.
	Err error
}

// JobOutcome is one job's result: either a simulation result or an error,
// plus whether the memo cache served it.
type JobOutcome struct {
	// Job is the submission-order index into Campaign.Jobs.
	Job int
	// Result is the simulation outcome (nil when Err is set).
	Result *SimResult
	// Err is the job's failure, if any. A panicking simulation surfaces
	// here (after the engine's retry) without affecting other jobs.
	Err error
	// CacheHit reports whether an earlier identical job supplied Result.
	CacheHit bool
}

// CampaignStats aggregates a campaign's execution counters.
type CampaignStats struct {
	Jobs         int // jobs submitted
	UniqueRuns   int // simulator invocations (cache misses)
	CacheHits    int // jobs served from the memo cache
	PanicRetries int // panics recovered and retried
	Failures     int // jobs that ended in an error
}

// HitRate returns the fraction of jobs served from the cache.
func (s CampaignStats) HitRate() float64 {
	return metrics.CampaignStats(s).HitRate()
}

// String renders the stats as a one-line report.
func (s CampaignStats) String() string {
	return metrics.CampaignStats(s).String()
}

// CampaignResult is a completed campaign: outcomes in submission order plus
// the engine's counters.
type CampaignResult struct {
	Outcomes []JobOutcome
	Stats    CampaignStats
}

// Errs returns the failed outcomes (empty when every job succeeded).
func (r *CampaignResult) Errs() []JobOutcome {
	var out []JobOutcome
	for _, o := range r.Outcomes {
		if o.Err != nil {
			out = append(out, o)
		}
	}
	return out
}

// RunCampaign executes the campaign's jobs on a bounded worker pool and
// returns their outcomes in submission order. Duplicated design points
// simulate once; each simulation is deterministic, so results are
// bit-identical to a sequential (Workers: 1) run apart from the measured
// wall-clock. Per-job failures — including invalid specs and recovered
// panics — are reported in the outcomes without aborting the batch.
//
// Cancelling ctx stops feeding jobs and aborts in-flight simulations at
// their next epoch boundary; RunCampaign then returns ctx.Err() alongside
// the partial outcomes (jobs cut short carry the context error).
func RunCampaign(ctx context.Context, c Campaign) (*CampaignResult, error) {
	eng := runner.New(c.Workers)
	jobs := make([]runner.Job, len(c.Jobs))
	errs := make([]error, len(c.Jobs))
	for i, cj := range c.Jobs {
		cfg, wl, err := buildRun(cj.Machine, cj.Benchmarks, cj.Extra)
		if err != nil {
			// Invalid job: fails in its outcome without entering the batch.
			errs[i] = err
			continue
		}
		jobs[i] = runner.Job{Config: cfg, Workload: wl, Options: cj.Options.internal()}
	}
	// Run only the valid jobs, preserving submission indices.
	valid := make([]runner.Job, 0, len(jobs))
	validIdx := make([]int, 0, len(jobs))
	for i := range jobs {
		if errs[i] == nil {
			valid = append(valid, jobs[i])
			validIdx = append(validIdx, i)
		}
	}
	var progress func(metrics.Progress)
	if c.OnProgress != nil {
		total := len(c.Jobs)
		done := len(c.Jobs) - len(valid) // invalid jobs count as finished
		progress = func(p metrics.Progress) {
			c.OnProgress(CampaignProgress{
				Job:       validIdx[p.Job],
				Completed: done + p.Completed,
				Total:     total,
				CacheHit:  p.CacheHit,
				Err:       p.Err,
			})
		}
	}
	outcomes, ctxErr := eng.RunBatch(ctx, valid, progress)

	res := &CampaignResult{
		Outcomes: make([]JobOutcome, len(c.Jobs)),
		Stats:    CampaignStats(eng.Stats()),
	}
	for i, err := range errs {
		res.Outcomes[i] = JobOutcome{Job: i, Err: err}
	}
	res.Stats.Jobs = len(c.Jobs)
	res.Stats.Failures += len(c.Jobs) - len(valid)
	for k, o := range outcomes {
		i := validIdx[k]
		out := JobOutcome{Job: i, Err: o.Err, CacheHit: o.CacheHit}
		if o.Result != nil {
			out.Result = resultFromInternal(o.Result)
		}
		res.Outcomes[i] = out
	}
	return res, ctxErr
}
