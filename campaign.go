package scalesim

import (
	"context"
	"fmt"
	"time"

	"scalesim/internal/metrics"
	"scalesim/internal/runner"
	"scalesim/internal/store"
)

// CampaignJob is one design point of a campaign: a machine, a benchmark
// mix (one name per core), the simulation options, and optional custom
// profiles resolved by name before the suite.
type CampaignJob struct {
	Machine    MachineSpec
	Benchmarks []string
	Options    SimOptions
	Extra      []Profile
}

// Campaign is a batch of simulation jobs to execute on a worker pool with
// content-addressed memoization: jobs describing the same design point
// (identical machine, workload and options, seed included) simulate exactly
// once, however often they recur in the batch.
type Campaign struct {
	// Jobs are the design points, in the order results are returned.
	Jobs []CampaignJob
	// Workers is the worker-pool size (<= 0 selects GOMAXPROCS). Results
	// are bit-identical for any worker count — only wall-clock changes.
	//
	// Deprecated: set Tuning.CampaignWorkers instead. Workers remains as
	// an alias; Tuning.CampaignWorkers takes precedence when both are set.
	Workers int
	// Tuning consolidates the campaign's performance knobs: job-level
	// workers, per-simulation core workers, arena sizing. Nil means auto.
	// A job's own Options.Tuning, when non-nil, overrides the campaign
	// default for that job. Tuning never changes results or cache keys.
	Tuning *Tuning
	// OnProgress, when non-nil, is invoked serially after each job
	// completes (successfully, from cache, or with an error).
	OnProgress func(CampaignProgress)
	// Store, when non-empty, is a directory used as a durable second
	// memoization tier: results persist across processes, so re-running a
	// campaign recomputes nothing (Stats.DiskHits). The store is created
	// on first use; results are bit-identical with or without it. See
	// README "Durable campaigns" for the on-disk layout.
	Store string
	// Retry bounds transient-failure retries (panics, I/O errors) with
	// exponential backoff. The zero value selects the default policy (one
	// retry); deterministic simulation errors are never retried.
	Retry RetryPolicy
	// Surrogate, when non-nil, enables the learned fast path: design
	// points the trained model is confident about are answered by the
	// model (SourceModel, approximate) instead of simulating, and every
	// computed result feeds the training set. Nil — the default — changes
	// nothing. When Store is also set, the training set persists in
	// <Store>/surrogate across processes. See SurrogateConfig.
	Surrogate *SurrogateConfig
}

// RetryPolicy bounds transient-failure retries. Attempt n (1-based) that
// fails transiently sleeps BaseDelay<<(n-1), capped at MaxDelay, before the
// next attempt, up to MaxAttempts total attempts.
type RetryPolicy struct {
	MaxAttempts int           // total attempts (>=1)
	BaseDelay   time.Duration // backoff before the first retry
	MaxDelay    time.Duration // backoff cap
}

// ResultSource says where a job's result came from.
type ResultSource string

const (
	// SourceCompute: the simulator actually ran for this job.
	SourceCompute = ResultSource(runner.SourceCompute)
	// SourceMemory: served by the in-memory memo cache — the identical
	// design point had already completed when this job was submitted.
	SourceMemory = ResultSource(runner.SourceMemory)
	// SourceCoalesced: deduplicated against an identical design point that
	// was still in flight — the job waited for that run instead of
	// simulating. Batch campaigns and the serving daemon (`scalesim serve`)
	// report request coalescing through this one value.
	SourceCoalesced = ResultSource(runner.SourceCoalesced)
	// SourceDisk: loaded from the campaign's durable store.
	SourceDisk = ResultSource(runner.SourceDisk)
	// SourceModel: predicted by the surrogate model instead of simulating —
	// an approximate answer (JobOutcome.Approximate is set). Only possible
	// when a surrogate tier is configured; the memory and disk tiers hold
	// ground truth exclusively.
	SourceModel = ResultSource(runner.SourceModel)
)

// CampaignProgress is one campaign progress event.
type CampaignProgress struct {
	// Job is the submission-order index of the job that just finished.
	Job int
	// Completed and Total track overall campaign progress.
	Completed int
	Total     int
	// CacheHit reports whether the job was served from the memo cache.
	CacheHit bool
	// Err is the job's error, if it failed.
	Err error
}

// JobOutcome is one job's result: either a simulation result or an error,
// plus where the result came from and what it cost.
type JobOutcome struct {
	// Job is the submission-order index into Campaign.Jobs.
	Job int
	// Result is the simulation outcome (nil when Err is set).
	Result *SimResult
	// Err is the job's failure, if any. A panicking simulation surfaces
	// here (after the engine's retries, wrapped in ErrJobFailed) without
	// affecting other jobs. Invalid specs fail with the matching
	// ErrUnknown* sentinel.
	Err error
	// Source reports whether the simulator ran (SourceCompute) or the
	// result was served from memory or disk. Empty for jobs that never
	// ran (invalid specs, jobs cut off by cancellation before starting).
	Source ResultSource
	// CacheHit reports whether the job was served without simulating
	// (Source is memory, disk, or model).
	CacheHit bool
	// Retries counts failed attempts before the final one (0 normally).
	Retries int
	// Approximate marks a result predicted by the surrogate model rather
	// than simulated: SourceModel, or SourceCoalesced onto a model-served
	// flight. Ground-truth outcomes always report false.
	Approximate bool
}

// CampaignStats aggregates a campaign's execution counters.
type CampaignStats struct {
	Jobs          int // jobs submitted
	UniqueRuns    int // simulator invocations (computes)
	CacheHits     int // jobs served from the completed in-memory memo cache
	CoalescedHits int // jobs deduplicated against an identical in-flight job
	DiskHits      int // jobs served from the durable store
	ModelHits     int // jobs served (approximately) by the surrogate model
	Retries       int // transient failures retried (panics and I/O errors)
	PanicRetries  int // the panic subset of Retries
	Failures      int // jobs that ended in an error
	StoreCorrupt  int // store artifacts quarantined and recomputed
}

// HitRate returns the fraction of jobs served without simulating — from
// the in-memory cache, by coalescing onto an in-flight run, from the
// durable store, or by the surrogate model.
func (s CampaignStats) HitRate() float64 {
	return metrics.CampaignStats(s).HitRate()
}

// String renders the stats as a one-line report.
func (s CampaignStats) String() string {
	return metrics.CampaignStats(s).String()
}

// CampaignResult is a completed campaign: outcomes in submission order plus
// the engine's counters.
type CampaignResult struct {
	Outcomes []JobOutcome
	Stats    CampaignStats
}

// Errs returns the failed outcomes (empty when every job succeeded).
func (r *CampaignResult) Errs() []JobOutcome {
	var out []JobOutcome
	for _, o := range r.Outcomes {
		if o.Err != nil {
			out = append(out, o)
		}
	}
	return out
}

// RunCampaign executes the campaign's jobs on a bounded worker pool and
// returns their outcomes in submission order. Duplicated design points
// simulate once; each simulation is deterministic, so results are
// bit-identical to a sequential (Workers: 1) run apart from the measured
// wall-clock. Per-job failures — including invalid specs and recovered
// panics — are reported in the outcomes without aborting the batch.
func RunCampaign(c Campaign) (*CampaignResult, error) {
	return RunCampaignContext(context.Background(), c)
}

// RunCampaignContext is RunCampaign bounded by a context.
//
// Cancelling ctx stops feeding jobs and aborts in-flight simulations at
// their next epoch boundary; RunCampaignContext then returns ctx.Err()
// alongside the partial outcomes (jobs cut short carry the context error).
//
// When c.Store is set, the directory is opened (created on first use) as a
// durable memoization tier: previously computed design points load from
// disk instead of simulating, and fresh computes are written back
// atomically. A store that cannot be opened is an error; a corrupt artifact
// inside an open store is not — it is quarantined and its job recomputed
// (counted in Stats.StoreCorrupt).
func RunCampaignContext(ctx context.Context, c Campaign) (*CampaignResult, error) {
	if err := c.Tuning.Validate(); err != nil {
		return nil, err
	}
	eng := runner.New(c.Tuning.campaignWorkers(c.Workers))
	if c.Store != "" {
		st, err := store.Open(c.Store)
		if err != nil {
			return nil, fmt.Errorf("scalesim: opening campaign store: %w", err)
		}
		defer st.Close()
		eng.SetStore(st)
	}
	if c.Retry != (RetryPolicy{}) {
		eng.SetRetry(runner.RetryPolicy(c.Retry))
	}
	if c.Surrogate != nil {
		if _, err := attachSurrogate(eng, c.Surrogate, c.Store); err != nil {
			return nil, err
		}
	}
	jobs := make([]runner.Job, len(c.Jobs))
	errs := make([]error, len(c.Jobs))
	for i, cj := range c.Jobs {
		if err := cj.Options.Tuning.Validate(); err != nil {
			errs[i] = err
			continue
		}
		cfg, wl, err := buildRun(cj.Machine, cj.Benchmarks, cj.Extra)
		if err != nil {
			// Invalid job: fails in its outcome without entering the batch.
			errs[i] = err
			continue
		}
		io := cj.Options.internal()
		if cj.Options.Tuning == nil {
			// The campaign-level tuning is the default for jobs that carry
			// none of their own.
			io.CoreWorkers = c.Tuning.coreWorkers()
			io.EpochLogOps = c.Tuning.epochLogOps()
		}
		jobs[i] = runner.Job{Config: cfg, Workload: wl, Options: io}
	}
	// Run only the valid jobs, preserving submission indices.
	valid := make([]runner.Job, 0, len(jobs))
	validIdx := make([]int, 0, len(jobs))
	for i := range jobs {
		if errs[i] == nil {
			valid = append(valid, jobs[i])
			validIdx = append(validIdx, i)
		}
	}
	var progress func(metrics.Progress)
	if c.OnProgress != nil {
		total := len(c.Jobs)
		done := len(c.Jobs) - len(valid) // invalid jobs count as finished
		progress = func(p metrics.Progress) {
			c.OnProgress(CampaignProgress{
				Job:       validIdx[p.Job],
				Completed: done + p.Completed,
				Total:     total,
				CacheHit:  p.CacheHit,
				Err:       p.Err,
			})
		}
	}
	outcomes, ctxErr := eng.RunBatch(ctx, valid, progress)

	res := &CampaignResult{
		Outcomes: make([]JobOutcome, len(c.Jobs)),
		Stats:    CampaignStats(eng.Stats()),
	}
	for i, err := range errs {
		res.Outcomes[i] = JobOutcome{Job: i, Err: err}
	}
	res.Stats.Jobs = len(c.Jobs)
	res.Stats.Failures += len(c.Jobs) - len(valid)
	for k, o := range outcomes {
		i := validIdx[k]
		out := JobOutcome{Job: i, Err: o.Err, Source: ResultSource(o.Source), CacheHit: o.CacheHit, Retries: o.Retries, Approximate: o.Approximate}
		if o.Result != nil {
			out.Result = resultFromInternal(o.Result)
		}
		res.Outcomes[i] = out
	}
	return res, ctxErr
}
