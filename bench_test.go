package scalesim

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark* per table/figure; see DESIGN.md's experiment
// index). Each benchmark prints the rows/series the paper reports and
// attaches the headline numbers as custom metrics (avg_err_pct, ...).
//
// Run the full harness with:
//
//	go test -bench=. -benchtime=1x -timeout=2h
//
// Simulations are cached inside a shared experiment driver, so the whole
// harness costs roughly one full data collection. Set SCALESIM_BENCH_FAST=1
// to run at reduced fidelity (~10x faster; conclusions unchanged).

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
)

var (
	benchOnce sync.Once
	benchExp  *Experiments
	benchErr  error
)

// benchExperiments returns the shared full-suite experiment driver.
func benchExperiments(b *testing.B) *Experiments {
	b.Helper()
	benchOnce.Do(func() {
		opts := DefaultOptions()
		if os.Getenv("SCALESIM_BENCH_FAST") != "" {
			opts = FastOptions()
			fmt.Println("bench fidelity: fast (SCALESIM_BENCH_FAST set)")
		} else {
			fmt.Println("bench fidelity: full (set SCALESIM_BENCH_FAST=1 for a ~10x faster run)")
		}
		benchExp, benchErr = NewExperiments(opts)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchExp
}

// reportOnce prints the figure's table on the first iteration only.
var printedFigures sync.Map

func printFigure(id string, body fmt.Stringer) {
	if _, loaded := printedFigures.LoadOrStore(id, true); !loaded {
		fmt.Println(body.String())
	}
}

// BenchmarkTableI_ScaleModelConstruction regenerates Table I (both
// bandwidth-scaling orders).
func BenchmarkTableI_ScaleModelConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bw := range []Bandwidth{BandwidthMCFirst, BandwidthMBFirst} {
			rows, err := TableI(bw)
			if err != nil {
				b.Fatal(err)
			}
			if _, loaded := printedFigures.LoadOrStore("tableI-"+string(bw), true); !loaded {
				fmt.Printf("Table I (%s):\n", bw)
				for _, r := range rows {
					fmt.Printf("  %2d cores | %-18s | %-34s | %s\n", r.Cores, r.LLC, r.NoC, r.DRAM)
				}
				fmt.Println()
			}
		}
	}
}

// BenchmarkFig3_ScaleModelConstruction regenerates Fig. 3: NRS vs PRS
// variants with a single-core scale model and no extrapolation.
func BenchmarkFig3_ScaleModelConstruction(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig3Construction()
		if err != nil {
			b.Fatal(err)
		}
		printFigure(res.ID, res)
		for _, m := range res.Methods {
			if m.Method == "PRS" {
				b.ReportMetric(100*m.Mean, "PRS_avg_err_pct")
			}
			if m.Method == "NRS" {
				b.ReportMetric(100*m.Mean, "NRS_avg_err_pct")
			}
		}
	}
}

// BenchmarkFig4_HomogeneousExtrapolation regenerates Fig. 4.
func BenchmarkFig4_HomogeneousExtrapolation(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig4Homogeneous()
		if err != nil {
			b.Fatal(err)
		}
		printFigure(res.ID, res)
		for _, m := range res.Methods {
			switch m.Method {
			case "SVM":
				b.ReportMetric(100*m.Mean, "SVM_avg_err_pct")
			case "SVM-log":
				b.ReportMetric(100*m.Mean, "SVMlog_avg_err_pct")
			case "No Extrapolation":
				b.ReportMetric(100*m.Mean, "NoExtrap_avg_err_pct")
			}
		}
	}
}

// BenchmarkFig5_HeterogeneousExtrapolation regenerates Fig. 5.
func BenchmarkFig5_HeterogeneousExtrapolation(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig5Heterogeneous()
		if err != nil {
			b.Fatal(err)
		}
		printFigure(res.ID, res)
		for _, m := range res.Methods {
			switch m.Method {
			case "SVM":
				b.ReportMetric(100*m.Mean, "SVM_avg_err_pct")
			case "SVM-log":
				b.ReportMetric(100*m.Mean, "SVMlog_avg_err_pct")
			}
		}
	}
}

// BenchmarkFig6_STPPrediction regenerates Fig. 6.
func BenchmarkFig6_STPPrediction(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig6STP()
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Fig. 6", res)
		for _, m := range res.Methods {
			if m.Method == "SVM-log" {
				b.ReportMetric(100*m.Mean, "SVMlog_STP_avg_err_pct")
			}
		}
	}
}

// BenchmarkFig7_ErrorVsSpeedup regenerates Fig. 7.
func BenchmarkFig7_ErrorVsSpeedup(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig7ErrorVsSpeedup()
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Fig. 7", res)
		if n := len(res.NoExtrapolation); n > 0 {
			b.ReportMetric(res.NoExtrapolation[n-1].Speedup, "1core_speedup_x")
		}
	}
}

// BenchmarkFig8_MemoryBandwidthScaling regenerates Fig. 8.
func BenchmarkFig8_MemoryBandwidthScaling(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig8BandwidthScaling()
		if err != nil {
			b.Fatal(err)
		}
		printFigure(res.ID, res)
		for _, m := range res.Methods {
			switch m.Method {
			case "MC-first SVM-log":
				b.ReportMetric(100*m.Mean, "MCfirst_SVMlog_err_pct")
			case "MB-first SVM-log":
				b.ReportMetric(100*m.Mean, "MBfirst_SVMlog_err_pct")
			}
		}
	}
}

// BenchmarkFig9_RegressionForms regenerates Fig. 9.
func BenchmarkFig9_RegressionForms(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig9RegressionForms()
		if err != nil {
			b.Fatal(err)
		}
		printFigure(res.ID, res)
		for _, m := range res.Methods {
			switch m.Method {
			case "SVM-linear":
				b.ReportMetric(100*m.Mean, "linear_err_pct")
			case "SVM-power":
				b.ReportMetric(100*m.Mean, "power_err_pct")
			case "SVM-log":
				b.ReportMetric(100*m.Mean, "log_err_pct")
			}
		}
	}
}

// BenchmarkFig10_MLInputs regenerates Fig. 10.
func BenchmarkFig10_MLInputs(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig10Inputs()
		if err != nil {
			b.Fatal(err)
		}
		printFigure(res.ID, res)
		for _, m := range res.Methods {
			switch m.Method {
			case "SVM-log (IPC-only)":
				b.ReportMetric(100*m.Mean, "SVMlog_ipc_only_err_pct")
			case "SVM-log (IPC+BW)":
				b.ReportMetric(100*m.Mean, "SVMlog_ipc_bw_err_pct")
			}
		}
	}
}

// BenchmarkFig11_ScaleModelCount regenerates Fig. 11.
func BenchmarkFig11_ScaleModelCount(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig11ScaleModelCount()
		if err != nil {
			b.Fatal(err)
		}
		printFigure(res.ID, res)
		for j, m := range res.Methods {
			b.ReportMetric(100*m.Mean, fmt.Sprintf("with_%d_models_err_pct", j+2))
		}
	}
}

// BenchmarkFig12_BandwidthPrediction regenerates Fig. 12.
func BenchmarkFig12_BandwidthPrediction(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Fig12Bandwidth()
		if err != nil {
			b.Fatal(err)
		}
		printFigure(res.ID, res)
		for _, m := range res.Methods {
			switch m.Method {
			case "SVM":
				b.ReportMetric(100*m.Mean, "SVM_bw_err_pct")
			case "SVM-log":
				b.ReportMetric(100*m.Mean, "SVMlog_bw_err_pct")
			}
		}
	}
}

// BenchmarkSpeedup_SimulationTime regenerates the §I simulation-cost
// observation: wall-clock per machine size grows super-linearly with core
// count.
func BenchmarkSpeedup_SimulationTime(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		rows, err := ex.SimulationTimeStudy()
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := printedFigures.LoadOrStore("speedup", true); !loaded {
			fmt.Println("Simulation time per machine size (homogeneous suite):")
			base := rows[len(rows)-1].TotalSecs
			for _, r := range rows {
				fmt.Printf("  %2d cores: %8.2fs (%6.1f ms/benchmark)  speedup vs target %5.1fx\n",
					r.Cores, r.TotalSecs, r.PerBenchMs, base/r.TotalSecs)
			}
			fmt.Println()
		}
		b.ReportMetric(rows[len(rows)-1].TotalSecs/rows[0].TotalSecs, "speedup_1core_x")
	}
}

// BenchmarkSimulator_TargetRun measures the raw cost of one 32-core target
// simulation (the thing scale models avoid).
func BenchmarkSimulator_TargetRun(b *testing.B) {
	wl := make([]string, 32)
	for i := range wl {
		wl[i] = "gcc"
	}
	opts := FastOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(MachineSpec{Cores: 32, Policy: PolicyTarget}, wl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator_ScaleModelRun measures the cost of the single-core
// scale-model simulation that replaces it.
func BenchmarkSimulator_ScaleModelRun(b *testing.B) {
	opts := FastOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(MachineSpec{Cores: 1}, []string{"gcc"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt_Multithreaded runs the §V-E6 future-work extension:
// scale-model extrapolation for data-parallel multi-threaded workloads.
func BenchmarkExt_Multithreaded(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.ExtMultithreaded()
		if err != nil {
			b.Fatal(err)
		}
		printFigure("ext-mt", res)
		b.ReportMetric(100*res.Summary.Mean, "avg_err_pct")
	}
}

// BenchmarkAblation_ContentionModel quantifies the starred design choices
// of DESIGN.md: the epoch bandwidth fixed point and the structurally shared
// LLC.
func BenchmarkAblation_ContentionModel(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		printFigure("ablations", res)
		for _, row := range res.Rows {
			if row.Variant == "no bandwidth feedback" {
				b.ReportMetric(100*row.PRSMean, "nofeedback_PRS_err_pct")
			}
		}
	}
}

// BenchmarkExt_PrefetchRobustness checks the methodology with an L2 stream
// prefetcher added to scale model and target alike.
func BenchmarkExt_PrefetchRobustness(b *testing.B) {
	ex := benchExperiments(b)
	for i := 0; i < b.N; i++ {
		res, err := ex.PrefetchStudy()
		if err != nil {
			b.Fatal(err)
		}
		printFigure("ext-prefetch", res)
		b.ReportMetric(100*res.SummaryOff.Mean, "err_off_pct")
		b.ReportMetric(100*res.SummaryOn.Mean, "err_on_pct")
	}
}

// surrogateBenchService builds a service with a trained surrogate: the base
// DRAM-bandwidth grid is computed (and observed), so the returned midpoint
// job serves from the model on every subsequent run (model-served entries
// are never memoized, by design).
func surrogateBenchService(b *testing.B) (*Service, *PreparedJob) {
	b.Helper()
	jobs, base := surrogateBenchSweep()
	svc, err := NewService(ServiceConfig{
		Surrogate: &SurrogateConfig{MinTrain: base, VarGate: 1e9, DistGate: 1e9, RefitEvery: 1, Trees: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	for _, j := range jobs[:base] {
		p, err := svc.Prepare(j)
		if err != nil {
			b.Fatal(err)
		}
		if oc := svc.RunJobContext(context.Background(), p); oc.Err != nil {
			b.Fatal(oc.Err)
		}
	}
	mid, err := svc.Prepare(jobs[base])
	if err != nil {
		b.Fatal(err)
	}
	return svc, mid
}

// surrogateBenchSweep is the benchmark's design-space grid: the base points
// train the model, the point at the returned index queries it.
func surrogateBenchSweep() ([]CampaignJob, int) {
	opts := FastOptions()
	opts.Instructions = 60_000
	opts.Warmup = 20_000
	bench := BenchmarkNames()[:1]
	var jobs []CampaignJob
	for _, gb := range []float64{1, 2, 4, 8, 16, 6} {
		jobs = append(jobs, CampaignJob{
			Machine:    MachineSpec{Cores: 1, DRAMPerCoreGBps: gb},
			Benchmarks: bench,
			Options:    opts,
		})
	}
	return jobs, 5
}

// BenchmarkSurrogate_ModelHit measures the learned tier's serving latency:
// one design-point query answered by the trained forest (gate included).
// Compare against BenchmarkSurrogate_Compute for the tier's speedup.
func BenchmarkSurrogate_ModelHit(b *testing.B) {
	svc, mid := surrogateBenchService(b)
	// Warm check: the query must actually serve from the model.
	if oc := svc.RunJobContext(context.Background(), mid); oc.Source != SourceModel {
		b.Fatalf("midpoint served from %q, want model", oc.Source)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oc := svc.RunJobContext(context.Background(), mid)
		if oc.Err != nil || oc.Source != SourceModel {
			b.Fatalf("outcome %+v", oc)
		}
	}
}

// BenchmarkSurrogate_Compute measures what the model hit replaces: the same
// class of design point through the full simulator (fresh seed per
// iteration, so memoization never serves it).
func BenchmarkSurrogate_Compute(b *testing.B) {
	jobs, base := surrogateBenchSweep()
	svc, err := NewService(ServiceConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	job := jobs[base]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := job
		j.Options.Seed = uint64(i + 1)
		p, err := svc.Prepare(j)
		if err != nil {
			b.Fatal(err)
		}
		oc := svc.RunJobContext(context.Background(), p)
		if oc.Err != nil || oc.Source != SourceCompute {
			b.Fatalf("outcome %+v", oc)
		}
	}
}
