package scalesim

import (
	"context"
	"path/filepath"
	"testing"
)

// surrogateSweep builds the e2e workload: a base DRAM-bandwidth grid that
// trains the model, followed by midpoints the trained model should serve.
// Returned alongside is the index where the midpoints start.
func surrogateSweep() ([]CampaignJob, int) {
	opts := FastOptions()
	opts.Instructions = 60_000
	opts.Warmup = 20_000
	bench := BenchmarkNames()[:1]
	grid := []float64{1, 2, 4, 8, 16}
	mids := []float64{1.5, 3, 6, 12}
	var jobs []CampaignJob
	for _, gb := range append(append([]float64{}, grid...), mids...) {
		jobs = append(jobs, CampaignJob{
			Machine:    MachineSpec{Cores: 1, DRAMPerCoreGBps: gb},
			Benchmarks: bench,
			Options:    opts,
		})
	}
	return jobs, len(grid)
}

// looseSurrogate serves everything once trained: the e2e tests exercise the
// plumbing (sources, markers, stats, tier isolation), not gate calibration.
func looseSurrogate(minTrain int) *SurrogateConfig {
	return &SurrogateConfig{MinTrain: minTrain, VarGate: 1e9, DistGate: 1e9, RefitEvery: 1, Trees: 8}
}

// TestSurrogateCampaignEndToEnd drives the full stack: a sequential
// campaign whose base grid computes (training the model) and whose
// midpoints are then served approximately by the surrogate tier, visible in
// outcomes and stats.
func TestSurrogateCampaignEndToEnd(t *testing.T) {
	jobs, base := surrogateSweep()
	res, err := RunCampaignContext(context.Background(), Campaign{
		Jobs:      jobs,
		Workers:   1, // sequential: the base grid trains before the midpoints query
		Surrogate: looseSurrogate(base),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range res.Outcomes {
		if oc.Err != nil {
			t.Fatalf("job %d: %v", i, oc.Err)
		}
		if i < base {
			if oc.Source != SourceCompute || oc.Approximate {
				t.Fatalf("base point %d = %q approx=%v, want exact compute", i, oc.Source, oc.Approximate)
			}
			continue
		}
		if oc.Source != SourceModel || !oc.Approximate || !oc.CacheHit {
			t.Fatalf("midpoint %d = %q approx=%v, want approximate model hit", i, oc.Source, oc.Approximate)
		}
		if !(oc.Result.AverageIPC() > 0) {
			t.Fatalf("midpoint %d served a non-physical IPC: %+v", i, oc.Result)
		}
	}
	want := len(jobs) - base
	if res.Stats.ModelHits != want {
		t.Fatalf("ModelHits = %d, want %d; stats: %s", res.Stats.ModelHits, want, res.Stats)
	}
	if res.Stats.UniqueRuns != base {
		t.Fatalf("UniqueRuns = %d, want %d", res.Stats.UniqueRuns, base)
	}
}

// TestSurrogateOffByDefault pins the opt-in contract: without a
// SurrogateConfig the campaign is bit-identical to one that has never heard
// of the tier — every point computes, nothing is approximate.
func TestSurrogateOffByDefault(t *testing.T) {
	jobs, _ := surrogateSweep()
	res, err := RunCampaignContext(context.Background(), Campaign{Jobs: jobs[:3], Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ModelHits != 0 {
		t.Fatalf("ModelHits = %d without a surrogate config", res.Stats.ModelHits)
	}
	for i, oc := range res.Outcomes {
		if oc.Approximate || oc.Source != SourceCompute {
			t.Fatalf("job %d = %q approx=%v with the surrogate off", i, oc.Source, oc.Approximate)
		}
	}
}

// TestSurrogateModelResultsNeverPersist pins tier isolation end to end:
// model-served midpoints must not enter the durable store, so a later
// surrogate-free campaign on the same store computes them from scratch —
// and its exact results match a store-less run bit for bit.
func TestSurrogateModelResultsNeverPersist(t *testing.T) {
	jobs, base := surrogateSweep()
	storeDir := filepath.Join(t.TempDir(), "store")

	first, err := RunCampaignContext(context.Background(), Campaign{
		Jobs:      jobs,
		Workers:   1,
		Store:     storeDir,
		Surrogate: looseSurrogate(base),
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ModelHits == 0 {
		t.Fatal("setup: no model hits in the surrogate campaign")
	}

	// Same store, surrogate off: the base grid is ground truth on disk, the
	// midpoints were only ever approximated and must compute now.
	second, err := RunCampaignContext(context.Background(), Campaign{
		Jobs:    jobs,
		Workers: 1,
		Store:   storeDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.DiskHits != base {
		t.Fatalf("DiskHits = %d, want the %d ground-truth base points", second.Stats.DiskHits, base)
	}
	if got, want := second.Stats.UniqueRuns, len(jobs)-base; got != want {
		t.Fatalf("UniqueRuns = %d, want %d (approximations must not be on disk)", got, want)
	}
	for i, oc := range second.Outcomes {
		if oc.Err != nil {
			t.Fatalf("job %d: %v", i, oc.Err)
		}
		if oc.Approximate {
			t.Fatalf("job %d approximate in a surrogate-free campaign", i)
		}
	}
}
