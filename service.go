package scalesim

import (
	"context"
	"fmt"

	"scalesim/internal/runner"
	"scalesim/internal/store"
)

// ServiceConfig configures a long-lived Service.
type ServiceConfig struct {
	// Workers sizes the engine's internal pool for batch use; Service
	// callers that drive jobs one at a time (like `scalesim serve`) bound
	// concurrency themselves and may leave it zero.
	//
	// Deprecated: set Tuning.CampaignWorkers instead. Workers remains as
	// an alias; Tuning.CampaignWorkers takes precedence when both are set.
	Workers int
	// Tuning consolidates the service's performance knobs: job-level
	// workers, the per-simulation CoreWorkers default for jobs that carry
	// no tuning of their own, arena sizing. Nil means auto. Tuning never
	// changes results or cache keys.
	Tuning *Tuning
	// Store, when non-empty, is the durable memoization directory shared
	// with batch campaigns: results a campaign computed serve from disk,
	// and results the service computes are visible to later campaigns.
	// Several service replicas may share one store directory.
	Store string
	// Retry bounds transient-failure retries; the zero value selects the
	// default policy.
	Retry RetryPolicy
	// Surrogate, when non-nil, enables the learned fast path for served
	// jobs: the lookup order becomes memory → disk → model → compute, with
	// confident predictions served approximately (SourceModel) and every
	// ground-truth result feeding the training set. Nil — the default —
	// changes nothing. When Store is also set, the training set persists
	// in <Store>/surrogate and is shared with batch campaigns pointed at
	// the same store. See SurrogateConfig.
	Surrogate *SurrogateConfig
}

// Service is a long-lived handle on the campaign engine: one memoization
// hierarchy (memory, optional durable store, optional surrogate model)
// that outlives any single batch. `scalesim serve` runs every request through one Service, so
// identical design points submitted by different clients — or by the same
// client across requests — simulate exactly once. The zero value is not
// usable; construct with NewService and Close when done.
//
// A Service is safe for concurrent use.
type Service struct {
	eng *runner.Engine
	st  *store.Store
	tun *Tuning
}

// NewService opens the store (when configured) and assembles the engine.
func NewService(cfg ServiceConfig) (*Service, error) {
	if err := cfg.Tuning.Validate(); err != nil {
		return nil, err
	}
	eng := runner.New(cfg.Tuning.campaignWorkers(cfg.Workers))
	if cfg.Retry != (RetryPolicy{}) {
		eng.SetRetry(runner.RetryPolicy(cfg.Retry))
	}
	svc := &Service{eng: eng, tun: cfg.Tuning}
	if cfg.Store != "" {
		st, err := store.Open(cfg.Store)
		if err != nil {
			return nil, fmt.Errorf("scalesim: opening service store: %w", err)
		}
		svc.st = st
		eng.SetStore(st)
	}
	if cfg.Surrogate != nil {
		if _, err := attachSurrogate(eng, cfg.Surrogate, cfg.Store); err != nil {
			if svc.st != nil {
				svc.st.Close()
			}
			return nil, err
		}
	}
	return svc, nil
}

// PreparedJob is a validated, compiled design point: the machine resolved
// to a concrete configuration, benchmarks resolved against the suite, and
// the content-addressed identity computed. Preparing is cheap and does not
// simulate.
type PreparedJob struct {
	key string
	job runner.Job
}

// Key returns the job's content-addressed identity: equal keys mean the
// same design point, bit-for-bit the same result. Serving layers use it to
// coalesce identical concurrent requests.
func (p *PreparedJob) Key() string { return p.key }

// Prepare validates and compiles one campaign job. Invalid specs fail here
// with the matching ErrUnknown* sentinel, before any queueing or
// simulation.
func (s *Service) Prepare(job CampaignJob) (*PreparedJob, error) {
	if err := job.Options.Tuning.Validate(); err != nil {
		return nil, err
	}
	cfg, wl, err := buildRun(job.Machine, job.Benchmarks, job.Extra)
	if err != nil {
		return nil, err
	}
	io := job.Options.internal()
	if job.Options.Tuning == nil {
		// The service-level tuning is the default for jobs that carry none
		// of their own (tuning is keyless, so this cannot split the memo).
		io.CoreWorkers = s.tun.coreWorkers()
		io.EpochLogOps = s.tun.epochLogOps()
	}
	rj := runner.Job{Config: cfg, Workload: wl, Options: io}
	return &PreparedJob{key: rj.Key(), job: rj}, nil
}

// RunJobContext executes one prepared job through the memoization
// hierarchy — memory, durable store, surrogate model (when configured),
// then compute — and reports the outcome. The outcome's Job index is zero; callers tracking batch
// positions set it themselves.
//
// Cancelling ctx aborts an in-flight simulation at its next epoch
// boundary; jobs another caller is already computing are waited on and
// reported as SourceCoalesced.
func (s *Service) RunJobContext(ctx context.Context, p *PreparedJob) JobOutcome {
	oc := s.eng.Run(ctx, p.job)
	out := JobOutcome{Err: oc.Err, Source: ResultSource(oc.Source), CacheHit: oc.CacheHit, Retries: oc.Retries, Approximate: oc.Approximate}
	if oc.Result != nil {
		out.Result = resultFromInternal(oc.Result)
	}
	return out
}

// Stats snapshots the engine's counters across every job the service has
// run since construction.
func (s *Service) Stats() CampaignStats {
	return CampaignStats(s.eng.Stats())
}

// Close releases the durable store, if any. The Service must not be used
// afterwards.
func (s *Service) Close() error {
	if s.st != nil {
		return s.st.Close()
	}
	return nil
}
