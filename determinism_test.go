package scalesim

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"scalesim/internal/runner"
)

// TestCrossProcessDeterminism is the end-to-end reproducibility gate: it
// re-executes this test binary twice as fresh child processes, has each run
// the same small campaign plus a traced simulation, and asserts the two
// payloads — cache keys, bit-exact result metrics, and the JSONL telemetry
// stream — are byte-identical. In-process repetition cannot catch the bug
// class this guards against (address-dependent hashing, map-iteration
// order, ambient randomness): those diverge only across processes, exactly
// like the PR-2 cache-key bug that motivated simlint.
func TestCrossProcessDeterminism(t *testing.T) {
	if out := os.Getenv("SCALESIM_DETERMINISM_OUT"); out != "" {
		writeDeterminismPayload(t, out)
		return
	}
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()
	runChild := func(name string) []byte {
		path := filepath.Join(dir, name)
		cmd := exec.Command(exe, "-test.run=^TestCrossProcessDeterminism$", "-test.count=1")
		cmd.Env = append(os.Environ(), "SCALESIM_DETERMINISM_OUT="+path)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child %s failed: %v\n%s", name, err, out)
		}
		payload, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read child payload: %v", err)
		}
		if len(payload) == 0 {
			t.Fatalf("child %s wrote an empty payload", name)
		}
		return payload
	}

	first := runChild("first")
	second := runChild("second")
	if !bytes.Equal(first, second) {
		t.Errorf("two processes produced different payloads for the same campaign:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// writeDeterminismPayload runs the child's workload and streams every
// process-visible artifact into one file: the content-addressed cache key
// of each job, the full-precision per-core metrics of the campaign results,
// and the JSONL rendering of a telemetry trace.
func writeDeterminismPayload(t *testing.T, path string) {
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create payload: %v", err)
	}
	defer f.Close()

	spec := MachineSpec{Cores: 2, Bandwidth: BandwidthMCFirst}
	opts := FastOptions()
	opts.Instructions = 60_000
	opts.Warmup = 20_000
	benches := BenchmarkNames()[:2]

	// Cache keys must be a pure function of the design point.
	for _, seed := range []uint64{1, 7} {
		o := opts
		o.Seed = seed
		cfg, wl, err := buildRun(spec, benches, nil)
		if err != nil {
			t.Fatalf("buildRun: %v", err)
		}
		job := runner.Job{Config: cfg, Workload: wl, Options: o.internal()}
		fmt.Fprintf(f, "key seed=%d %s\n", seed, job.Key())
	}

	// Campaign results (including a duplicate job exercising the memo
	// cache) rendered with bit-exact float formatting.
	campaign := Campaign{Workers: 2}
	for _, seed := range []uint64{1, 7, 1} {
		o := opts
		o.Seed = seed
		campaign.Jobs = append(campaign.Jobs, CampaignJob{Machine: spec, Benchmarks: benches, Options: o})
	}
	res, err := RunCampaignContext(context.Background(), campaign)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	for _, oc := range res.Outcomes {
		if oc.Err != nil {
			t.Fatalf("job %d: %v", oc.Job, oc.Err)
		}
		for i, cr := range oc.Result.Cores {
			fmt.Fprintf(f, "job=%d core=%d ipc=%s bw=%s mpki=%s\n", oc.Job, i,
				strconv.FormatFloat(cr.IPC, 'x', -1, 64),
				strconv.FormatFloat(cr.BWBytesPerCycle, 'x', -1, 64),
				strconv.FormatFloat(cr.LLCMPKI, 'x', -1, 64))
		}
	}

	// The telemetry stream must serialise to identical bytes.
	traced := opts
	traced.Trace = true
	tr, err := Simulate(spec, benches, traced)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(tr.Trace) == 0 {
		t.Fatal("traced run produced no snapshots")
	}
	if err := WriteTraceJSONL(f, tr.Trace); err != nil {
		t.Fatalf("WriteTraceJSONL: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close payload: %v", err)
	}
}
