GO ?= go
GOFMT ?= gofmt

.PHONY: all build test check lint race bench bench-json clean clean-store store-smoke

all: build

build:
	$(GO) build ./...

# Full tier-1 verification: everything must build and every test pass.
test: build
	$(GO) test ./...

# Fast CI gate: formatting + vet + the determinism linter + the race
# detector over the short test set (the expensive collections are guarded by
# testing.Short) + a durable-store round-trip smoke. Run this before every
# commit.
check: build
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./tools/simlint
	$(GO) test -race -short ./...
	$(MAKE) store-smoke

# Durable-store round-trip smoke: the same design point simulated twice
# against a fresh store must compute once and disk-hit once, and the store
# must verify clean afterwards.
store-smoke:
	@rm -rf .store-smoke
	@$(GO) run ./cmd/scalesim simulate -machine 1:PRS -bench mcf -fast -store .store-smoke | grep "store: compute" >/dev/null \
		|| { echo "store-smoke: first run did not compute" >&2; exit 1; }
	@$(GO) run ./cmd/scalesim simulate -machine 1:PRS -bench mcf -fast -store .store-smoke | grep "store: disk" >/dev/null \
		|| { echo "store-smoke: second run did not hit the store" >&2; exit 1; }
	@$(GO) run ./cmd/scalesim store -dir .store-smoke
	@rm -rf .store-smoke
	@echo "store-smoke: ok"

# Determinism-and-drift static analysis (see tools/simlint and DESIGN.md,
# "Determinism invariants"). Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./tools/simlint

# Race detector over the full test set (slow).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -timeout=2h ./...

# Machine-readable benchmark report: runs the bench suite and parses the
# output into BENCH_<date>.json (see tools/benchjson).
bench-json:
	$(GO) test -bench=. -benchtime=1x -timeout=2h ./... \
		| $(GO) run ./tools/benchjson -out BENCH_$$(date +%Y%m%d).json

clean:
	$(GO) clean ./...

# Remove durable campaign stores created by the smoke step or local runs
# with the conventional .scalesim-store directory.
clean-store:
	rm -rf .store-smoke .scalesim-store
