GO ?= go
GOFMT ?= gofmt

.PHONY: all build test check lint lint-baseline race bench bench-json clean clean-store store-smoke

all: build

build:
	$(GO) build ./...

# Full tier-1 verification: everything must build and every test pass.
test: build
	$(GO) test ./...

# Fast CI gate: formatting + vet + the determinism linter + the race
# detector over the short test set (the expensive collections are guarded by
# testing.Short) + a durable-store round-trip smoke. Run this before every
# commit.
check: build
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./tools/simlint -report simlint-report.json
	$(GO) test -race -short ./...
	$(MAKE) store-smoke

# Durable-store round-trip smoke: the same design point simulated twice
# against a fresh store must compute once and disk-hit once, and the store
# must verify clean afterwards.
store-smoke:
	@rm -rf .store-smoke
	@$(GO) run ./cmd/scalesim simulate -machine 1:PRS -bench mcf -fast -store .store-smoke | grep "store: compute" >/dev/null \
		|| { echo "store-smoke: first run did not compute" >&2; exit 1; }
	@$(GO) run ./cmd/scalesim simulate -machine 1:PRS -bench mcf -fast -store .store-smoke | grep "store: disk" >/dev/null \
		|| { echo "store-smoke: second run did not hit the store" >&2; exit 1; }
	@$(GO) run ./cmd/scalesim store -dir .store-smoke
	@rm -rf .store-smoke
	@echo "store-smoke: ok"

# Static analysis over all eight simlint rules (see tools/simlint and
# DESIGN.md, "Static analysis invariants"). Writes the machine-readable
# report to simlint-report.json and exits non-zero on any finding that is
# neither suppressed in-source nor listed in tools/simlint/baseline.json.
lint:
	$(GO) run ./tools/simlint -report simlint-report.json

# Accept every current finding into the committed baseline. Use sparingly:
# the baseline exists to land rule tightenings without blocking on legacy
# findings, not to mute new regressions.
lint-baseline:
	$(GO) run ./tools/simlint -write-baseline

# Race detector over the full test set (slow).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -timeout=2h ./...

# Machine-readable benchmark report: runs the bench suite and parses the
# output into BENCH_<date>.json (see tools/benchjson).
bench-json:
	$(GO) test -bench=. -benchtime=1x -timeout=2h ./... \
		| $(GO) run ./tools/benchjson -out BENCH_$$(date +%Y%m%d).json

clean:
	$(GO) clean ./...

# Remove durable campaign stores created by the smoke step or local runs
# with the conventional .scalesim-store directory.
clean-store:
	rm -rf .store-smoke .scalesim-store
