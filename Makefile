GO ?= go
GOFMT ?= gofmt

.PHONY: all build test check lint lint-fix lint-sarif lint-baseline race bench bench-json bench-diff clean clean-store store-smoke serve-smoke surrogate-smoke

# Lint outputs land at the repository root regardless of the directory make
# was invoked from, so CI's artifact paths and local runs always agree.
LINT_REPORT := $(CURDIR)/simlint-report.json
LINT_SARIF := $(CURDIR)/simlint.sarif

all: build

build:
	$(GO) build ./...

# Full tier-1 verification: everything must build and every test pass.
test: build
	$(GO) test ./...

# Fast CI gate: formatting + vet + the determinism linter + the race
# detector over the short test set (the expensive collections are guarded by
# testing.Short) + a durable-store round-trip smoke. Run this before every
# commit.
check: build
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./tools/simlint -report $(LINT_REPORT) -sarif $(LINT_SARIF)
	$(GO) test -race -short ./...
	$(MAKE) store-smoke
	$(MAKE) serve-smoke
	$(MAKE) surrogate-smoke

# Durable-store round-trip smoke: the same design point simulated twice
# against a fresh store must compute once and disk-hit once, and the store
# must verify clean afterwards.
store-smoke:
	@rm -rf .store-smoke
	@$(GO) run ./cmd/scalesim simulate -machine 1:PRS -bench mcf -fast -store .store-smoke | grep "store: compute" >/dev/null \
		|| { echo "store-smoke: first run did not compute" >&2; exit 1; }
	@$(GO) run ./cmd/scalesim simulate -machine 1:PRS -bench mcf -fast -store .store-smoke | grep "store: disk" >/dev/null \
		|| { echo "store-smoke: second run did not hit the store" >&2; exit 1; }
	@$(GO) run ./cmd/scalesim store -dir .store-smoke
	@rm -rf .store-smoke
	@echo "store-smoke: ok"

# Surrogate-tier smoke: a sequential dense DRAM sweep with the learned fast
# path on (gates wide open, training threshold at the base grid) must
# compute the 5 base points, then serve the 4 midpoints from the model —
# visible both per point and in the campaign stats line.
surrogate-smoke:
	@$(GO) run ./cmd/scalesim sweep -knob dram -dense -campaign-workers 1 \
		-surrogate -surrogate-min 5 -surrogate-gate 1e9 -surrogate-dist 1e9 \
		| tee .surrogate-smoke.out | grep "from model (approximate)" >/dev/null \
		|| { echo "surrogate-smoke: no model hits in the dense sweep" >&2; cat .surrogate-smoke.out >&2; rm -f .surrogate-smoke.out; exit 1; }
	@grep -c "(approximate, from model)" .surrogate-smoke.out | grep -q "^4$$" \
		|| { echo "surrogate-smoke: expected exactly 4 model-served midpoints" >&2; cat .surrogate-smoke.out >&2; rm -f .surrogate-smoke.out; exit 1; }
	@rm -f .surrogate-smoke.out
	@echo "surrogate-smoke: ok"

# Campaign-service smoke: start `scalesim serve` on an ephemeral port,
# submit the same design point twice through `scalesim request` (compute,
# then memory), drain the daemon with SIGINT, and verify the store it
# left behind.
serve-smoke:
	@rm -rf .serve-smoke && mkdir -p .serve-smoke
	@$(GO) build -o .serve-smoke/scalesim ./cmd/scalesim
	@./.serve-smoke/scalesim serve -addr 127.0.0.1:0 -addrfile .serve-smoke/addr -store .serve-smoke/store & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s .serve-smoke/addr ] && break; sleep 0.1; done; \
	[ -s .serve-smoke/addr ] || { echo "serve-smoke: daemon never published an address" >&2; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat .serve-smoke/addr); \
	./.serve-smoke/scalesim request -server http://$$addr -machine 1:PRS -bench mcf -fast -client smoke | grep "server: compute" >/dev/null \
		|| { echo "serve-smoke: first request did not compute" >&2; kill $$pid 2>/dev/null; exit 1; }; \
	./.serve-smoke/scalesim request -server http://$$addr -machine 1:PRS -bench mcf -fast -client smoke | grep "server: memory" >/dev/null \
		|| { echo "serve-smoke: repeat request was not memoized" >&2; kill $$pid 2>/dev/null; exit 1; }; \
	kill -INT $$pid; \
	wait $$pid || { echo "serve-smoke: daemon did not drain cleanly on SIGINT" >&2; exit 1; }
	@$(GO) run ./cmd/scalesim store -dir .serve-smoke/store
	@rm -rf .serve-smoke
	@echo "serve-smoke: ok"

# Static analysis over the full simlint rule set (see tools/simlint and
# DESIGN.md, "Static analysis invariants"). Writes the machine-readable
# report to simlint-report.json and the SARIF form to simlint.sarif, and
# exits non-zero on any finding that is neither suppressed in-source nor
# listed in tools/simlint/baseline.json.
lint:
	$(GO) run ./tools/simlint -report $(LINT_REPORT) -sarif $(LINT_SARIF)

# Apply every suggested fix, then re-lint: only what could not be fixed
# automatically is reported.
lint-fix:
	$(GO) run ./tools/simlint -fix -report $(LINT_REPORT) -sarif $(LINT_SARIF)

# SARIF only, for feeding GitHub code scanning by hand.
lint-sarif:
	$(GO) run ./tools/simlint -sarif $(LINT_SARIF)

# Accept every current finding into the committed baseline. Use sparingly:
# the baseline exists to land rule tightenings without blocking on legacy
# findings, not to mute new regressions.
lint-baseline:
	$(GO) run ./tools/simlint -write-baseline

# Race detector over the full test set (slow).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -timeout=2h ./...

# Machine-readable benchmark report: runs the bench suite and parses the
# output into BENCH_<date>.json (see tools/benchjson). 100ms per benchmark
# averages the nanosecond-scale microbenchmarks into stable ns/op figures;
# anything slower than 100ms/op still executes exactly one iteration.
bench-json:
	$(GO) test -bench=. -benchtime=100ms -timeout=2h ./... \
		| $(GO) run ./tools/benchjson -out BENCH_$$(date +%Y%m%d).json

# The sub-second benchmark subset the regression gate re-runs: everything
# fast enough for CI and self-contained. The Fig* benchmarks are excluded
# even when their baseline ns/op looks small: they share one memoizing
# experiment driver, so a figure's cost depends on which other benchmarks
# ran before it in the same process — filtered re-runs would compare a cold
# number against a warm baseline.
BENCH_SHORT ?= TableI|Speedup|Simulator_|Surrogate_|Tournament|LevelAccessHit|NUCAAccess|CoreStep|SVRFit|ForestFit|Telemetry|GeneratorNext|Uint64|Zipf
BENCH_DIFF_THRESHOLD ?= 15
# The baseline file pattern, overridable so the guard test can simulate a
# tree with no committed baseline.
BENCH_BASELINE_GLOB ?= BENCH_*.json

# Short-benchmark regression gate: re-run the sub-second benchmarks and
# diff their ns/op against the newest committed BENCH_*.json baseline,
# failing on regressions past BENCH_DIFF_THRESHOLD percent. CI passes a
# looser threshold because hosted runners are not the hardware the
# baseline was recorded on. With no committed baseline (a fresh or shallow
# clone), the gate skips cleanly instead of failing: there is nothing to
# regress against, and `make bench-json` creates one.
bench-diff:
	@base=$$(ls $(BENCH_BASELINE_GLOB) 2>/dev/null | sort | tail -1); \
	[ -n "$$base" ] || { echo "bench-diff: skip: no $(BENCH_BASELINE_GLOB) baseline committed (run 'make bench-json' to create one)"; exit 0; }; \
	echo "bench-diff: baseline $$base"; \
	{ $(GO) test -run='^$$' -bench='$(BENCH_SHORT)' -benchtime=100ms -timeout=30m ./... \
		| $(GO) run ./tools/benchjson -out .bench-diff.json \
		&& $(GO) run ./tools/benchjson -diff -threshold $(BENCH_DIFF_THRESHOLD) $$base .bench-diff.json; }; \
	status=$$?; rm -f .bench-diff.json; exit $$status

clean:
	$(GO) clean ./...

# Remove durable campaign stores created by the smoke step or local runs
# with the conventional .scalesim-store directory.
clean-store:
	rm -rf .store-smoke .scalesim-store .surrogate-smoke.out
	rm -f simlint-report.json simlint.sarif
