GO ?= go

.PHONY: all build test check race bench clean

all: build

build:
	$(GO) build ./...

# Full tier-1 verification: everything must build and every test pass.
test: build
	$(GO) test ./...

# Fast CI gate: vet + the race detector over the short test set (the
# expensive collections are guarded by testing.Short). Run this before
# every commit.
check: build
	$(GO) vet ./...
	$(GO) test -race -short ./...

# Race detector over the full test set (slow).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -timeout=2h ./...

clean:
	$(GO) clean ./...
