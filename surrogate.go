package scalesim

import (
	"fmt"
	"path/filepath"

	"scalesim/internal/runner"
	"scalesim/internal/surrogate"
)

// SurrogateConfig enables the learned fast path: a surrogate model trained
// on accumulated ground-truth results that slots between the durable store
// and the simulator, so the memoization lookup order becomes memory → disk
// → model → compute. The model answers design-point queries in
// microseconds; a confidence gate decides per query whether the prediction
// is trustworthy enough to serve (SourceModel, JobOutcome.Approximate) or
// whether the job falls through to full simulation, whose result then
// joins the training set (active learning).
//
// The surrogate is strictly opt-in: with a nil SurrogateConfig, behavior
// is bit-identical to not having the tier at all. Even when enabled,
// ground-truth queries are never displaced — results already in memory or
// on disk are served exactly as before, approximate results never enter
// those tiers, and a gate-rejected query returns the bit-identical result
// a surrogate-free run would have produced.
//
// The zero value of every field selects a sensible default, so
// &SurrogateConfig{} is a valid way to turn the tier on.
type SurrogateConfig struct {
	// MinTrain is the number of ground-truth design points the model must
	// have observed before it serves anything (0 = default 32).
	MinTrain int
	// VarGate is the confidence gate on ensemble disagreement: the
	// relative standard deviation of the forest's per-tree predictions
	// must not exceed this for any core of the queried design point
	// (0 = default 0.05, i.e. the trees agree within 5%).
	VarGate float64
	// DistGate is the confidence gate on novelty: the normalised distance
	// from the query to its nearest training point in scaled feature space
	// must not exceed this (0 = default 1.0 — about one standard deviation
	// per feature). Queries far from everything the model has seen fall
	// through to compute regardless of how confidently the trees agree.
	DistGate float64
	// RefitEvery retrains the model after this many new ground-truth
	// observations since the last fit (0 = default 16). Refitting happens
	// on the compute/observe path, never on the serving fast path.
	RefitEvery int
	// Trees is the random-forest ensemble size (0 = default 50).
	Trees int
	// Seed drives the forest's internal randomisation. The zero seed is
	// valid and deterministic: the trained model is a pure function of
	// (training set, configuration), byte-identical across processes.
	Seed uint64
}

// internal converts the public configuration to the surrogate package's,
// rooting the persistent training set inside storeDir when one is set.
func (c *SurrogateConfig) internal(storeDir string) surrogate.Config {
	cfg := surrogate.Config{
		MinTrain:   c.MinTrain,
		VarGate:    c.VarGate,
		DistGate:   c.DistGate,
		RefitEvery: c.RefitEvery,
		Trees:      c.Trees,
		Seed:       c.Seed,
	}
	if storeDir != "" {
		cfg.Dir = filepath.Join(storeDir, "surrogate")
	}
	return cfg
}

// attachSurrogate builds the surrogate tier from cfg and attaches it to
// the engine. Returns the tier for callers that keep a handle on it.
func attachSurrogate(eng *runner.Engine, cfg *SurrogateConfig, storeDir string) (*surrogate.Surrogate, error) {
	sur, err := surrogate.New(cfg.internal(storeDir))
	if err != nil {
		return nil, fmt.Errorf("scalesim: opening surrogate tier: %w", err)
	}
	eng.SetPredictor(sur)
	return sur, nil
}
