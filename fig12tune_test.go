package scalesim

import (
	"fmt"
	"math"
	"os"
	"testing"

	"scalesim/internal/ml"
	"scalesim/internal/scalemodel"
)

// TestFig12Tune is a manual full-fidelity calibration aid for the
// bandwidth-prediction task (run with SCALESIM_FIG12_TUNE=1 and -v).
func TestFig12Tune(t *testing.T) {
	if os.Getenv("SCALESIM_FIG12_TUNE") == "" {
		t.Skip("manual calibration aid (set SCALESIM_FIG12_TUNE=1)")
	}
	ex, err := NewExperiments(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d, err := ex.homogData(scalemodel.MetricBW)
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		name    string
		x       []float64
		y, bwss float64
	}
	var rows []row
	for _, b := range d.Benchmarks {
		f := d.Feat[b]
		rows = append(rows, row{b, []float64{f.IPC, f.BW, f.CoBW}, d.Target[b], f.BW})
	}
	evalDelta := func(label string, delta float64, mk func() ml.Regressor) {
		sum, max := 0.0, 0.0
		worst := ""
		for i := range rows {
			var X [][]float64
			var y []float64
			for j := range rows {
				if j == i {
					continue
				}
				X = append(X, rows[j].x)
				y = append(y, rows[j].y/(rows[j].bwss+delta))
			}
			m := mk()
			if err := m.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			pred := m.Predict(rows[i].x) * (rows[i].bwss + delta)
			e := math.Abs(pred-rows[i].y) / rows[i].y
			sum += e
			if e > max {
				max, worst = e, fmt.Sprintf("%s pred %.3f actual %.3f bwss %.3f", rows[i].name, pred, rows[i].y, rows[i].x[1])
			}
		}
		t.Logf("%-24s avg %5.1f%% max %6.1f%% (%s)", label, 100*sum/float64(len(rows)), 100*max, worst)
	}
	for _, delta := range []float64{0.05, 0.02, 0.01, 0.005, 0} {
		evalDelta(fmt.Sprintf("SVR d=%g", delta), delta, func() ml.Regressor { return &ml.SVR{C: 1, Gamma: 1} })
		evalDelta(fmt.Sprintf("DT  d=%g", delta), delta, func() ml.Regressor { return &ml.DecisionTree{} })
		evalDelta(fmt.Sprintf("RF  d=%g", delta), delta, func() ml.Regressor { return &ml.RandomForest{} })
	}
}
