package scalesim

import (
	"math"
	"strings"
	"testing"
)

// tinyOptions keeps root-level pipeline tests fast; the benches use
// DefaultOptions for the paper-fidelity numbers.
func tinyOptions() SimOptions {
	return SimOptions{
		Instructions:  60_000,
		Warmup:        20_000,
		EpochCycles:   10_000,
		CapacityScale: 32,
		Seed:          3,
	}
}

func subsetNames() []string {
	return []string{"exchange2", "leela", "gcc", "xalancbmk", "omnetpp", "bwaves", "mcf", "lbm", "milc"}
}

func TestTableI(t *testing.T) {
	rows, err := TableI(BandwidthMCFirst)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	if rows[0].Cores != 32 || !strings.Contains(rows[0].LLC, "32 MB") {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[5].Cores != 1 || !strings.Contains(rows[5].DRAM, "1 MCs") {
		t.Fatalf("row 5 = %+v", rows[5])
	}
	if _, err := TableI("bogus"); err == nil {
		t.Fatal("bogus bandwidth order accepted")
	}
}

func TestSuiteAccessors(t *testing.T) {
	suite := Suite()
	if len(suite) != 29 {
		t.Fatalf("suite length %d, want 29", len(suite))
	}
	names := BenchmarkNames()
	if len(names) != 29 {
		t.Fatalf("names length %d", len(names))
	}
	for i, p := range suite {
		if p.Name != names[i] {
			t.Fatalf("order mismatch at %d: %s vs %s", i, p.Name, names[i])
		}
		if len(p.Regions) == 0 {
			t.Fatalf("%s: no regions exposed", p.Name)
		}
	}
}

func TestSimulatePublicAPI(t *testing.T) {
	res, err := Simulate(MachineSpec{Cores: 1, Policy: PolicyPRS}, []string{"gcc"}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 || res.Cores[0].Benchmark != "gcc" {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.AverageIPC() <= 0 {
		t.Fatal("non-positive IPC")
	}
	if res.WallClockSec <= 0 {
		t.Fatal("missing wall clock")
	}
	if _, err := Simulate(MachineSpec{Cores: 1}, []string{"nope"}, tinyOptions()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Simulate(MachineSpec{Cores: 3}, []string{"gcc", "gcc", "gcc"}, tinyOptions()); err == nil {
		t.Fatal("invalid core count accepted")
	}
	if _, err := Simulate(MachineSpec{Cores: 1, Policy: "bogus"}, []string{"gcc"}, tinyOptions()); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestSimulateCustomProfile(t *testing.T) {
	custom := Profile{
		Name: "mystream", BaseCPI: 0.5, LoadsPerKI: 300, StoresPerKI: 100,
		BranchesPerKI: 100, MLP: 6, StaticBranches: 64, HardBranchFrac: 0.1,
		CodeBytes: 64 << 10,
		Regions: []Region{
			{SizeBytes: 16 << 10, Frac: 0.8, Pattern: PatternZipf, ZipfS: 1.1},
			{SizeBytes: 64 << 20, Frac: 0.2, Pattern: PatternSeq, ElemSize: 8},
		},
	}
	res, err := Simulate(MachineSpec{Cores: 2}, []string{"mystream", "gcc"}, tinyOptions(), custom)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores[0].Benchmark != "mystream" {
		t.Fatalf("custom profile not used: %+v", res.Cores[0])
	}
	// Invalid custom profile must be rejected.
	custom.Regions[0].Pattern = "wat"
	if _, err := Simulate(MachineSpec{Cores: 1}, []string{"mystream"}, tinyOptions(), custom); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

func TestMachineSpecVariants(t *testing.T) {
	for _, pol := range []Policy{PolicyNRS, PolicyPRS, PolicyPRSLLC, PolicyPRSDRAM} {
		if _, err := Simulate(MachineSpec{Cores: 1, Policy: pol}, []string{"exchange2"}, tinyOptions()); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
	if _, err := Simulate(MachineSpec{Cores: 2, Bandwidth: BandwidthMBFirst}, []string{"lbm", "lbm"}, tinyOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentsSubsetValidation(t *testing.T) {
	if _, err := NewExperimentsSubset(tinyOptions(), "gcc"); err == nil {
		t.Fatal("2-benchmark suite accepted")
	}
	if _, err := NewExperimentsSubset(tinyOptions(), "gcc", "lbm", "nothere"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFig3OrderingOnSubset(t *testing.T) {
	ex, err := NewExperimentsSubset(tinyOptions(), subsetNames()...)
	if err != nil {
		t.Fatal(err)
	}
	fig3, err := ex.Fig3Construction()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.Methods) != 4 {
		t.Fatalf("%d policies, want 4", len(fig3.Methods))
	}
	byName := map[string]MethodResult{}
	for _, m := range fig3.Methods {
		byName[m.Method] = m
	}
	// The paper's headline ordering: full PRS is the most accurate
	// construction, NRS the worst.
	if byName["PRS"].Mean >= byName["NRS"].Mean {
		t.Errorf("PRS mean %.3f not below NRS mean %.3f", byName["PRS"].Mean, byName["NRS"].Mean)
	}
	if s := fig3.String(); !strings.Contains(s, "NRS") || !strings.Contains(s, "per-benchmark") {
		t.Errorf("figure rendering incomplete:\n%s", s)
	}
}

func TestFig4AndDerivativesOnSubset(t *testing.T) {
	ex, err := NewExperimentsSubset(tinyOptions(), subsetNames()...)
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := ex.Fig4Homogeneous()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Methods) != 7 {
		t.Fatalf("%d methods, want 7", len(fig4.Methods))
	}
	for _, m := range fig4.Methods {
		if math.IsNaN(m.Mean) || m.Mean < 0 {
			t.Errorf("%s: invalid mean %v", m.Method, m.Mean)
		}
		if len(m.PerBench) != len(subsetNames()) {
			t.Errorf("%s: %d per-bench errors", m.Method, len(m.PerBench))
		}
	}

	// These figures reuse the same collected data (no new simulations
	// beyond what Fig. 4 ran).
	runsBefore := ex.Runs()
	if _, err := ex.Fig9RegressionForms(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Fig10Inputs(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Fig11ScaleModelCount(); err != nil {
		t.Fatal(err)
	}
	if ex.Runs() != runsBefore {
		t.Errorf("figures 9-11 ran %d extra simulations; they must reuse Fig. 4 data", ex.Runs()-runsBefore)
	}

	fig7, err := ex.Fig7ErrorVsSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.NoExtrapolation) != 5 || len(fig7.ML) != 2 {
		t.Fatalf("fig7 points %d/%d, want 5/2", len(fig7.NoExtrapolation), len(fig7.ML))
	}
	// The single-core scale model must be the fastest.
	last := fig7.NoExtrapolation[len(fig7.NoExtrapolation)-1]
	if last.Label != "1-core" {
		t.Fatalf("last no-extrap point is %s, want 1-core", last.Label)
	}
	for _, p := range fig7.NoExtrapolation[:len(fig7.NoExtrapolation)-1] {
		if p.Speedup >= last.Speedup {
			t.Errorf("%s speedup %.1f >= 1-core speedup %.1f", p.Label, p.Speedup, last.Speedup)
		}
	}

	rows, err := ex.SimulationTimeStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d sim-time rows", len(rows))
	}
	if rows[0].Cores != 1 || rows[5].Cores != 32 {
		t.Fatalf("unexpected row order %+v", rows)
	}
	if rows[5].TotalSecs <= rows[0].TotalSecs {
		t.Errorf("32-core sim (%.3fs) not slower than 1-core (%.3fs)", rows[5].TotalSecs, rows[0].TotalSecs)
	}

	pred, err := ex.PredictTargetIPC("lbm")
	if err != nil {
		t.Fatal(err)
	}
	actual, err := ex.ActualTargetIPC("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || actual <= 0 {
		t.Fatalf("non-positive pred %v / actual %v", pred, actual)
	}
	if _, err := ex.PredictTargetIPC("nothere"); err == nil {
		t.Fatal("unknown benchmark accepted by PredictTargetIPC")
	}
}

func TestFig12OnSubset(t *testing.T) {
	ex, err := NewExperimentsSubset(tinyOptions(), subsetNames()...)
	if err != nil {
		t.Fatal(err)
	}
	fig12, err := ex.Fig12Bandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig12.Methods) != 7 {
		t.Fatalf("%d methods, want 7", len(fig12.Methods))
	}
}

func TestHeterogeneousFiguresOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("heterogeneous collection is the most expensive test")
	}
	ex, err := NewExperimentsSubset(tinyOptions(), subsetNames()...)
	if err != nil {
		t.Fatal(err)
	}
	fig5, err := ex.Fig5Heterogeneous()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5.Methods) != 7 {
		t.Fatalf("%d methods, want 7", len(fig5.Methods))
	}
	fig6, err := ex.Fig6STP()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6.Methods) != 3 {
		t.Fatalf("%d STP methods, want 3", len(fig6.Methods))
	}
	for _, m := range fig6.Methods {
		if len(m.Sorted) != fig6.Mixes {
			t.Errorf("%s: %d sorted errors, want %d", m.Method, len(m.Sorted), fig6.Mixes)
		}
		if !strings.Contains(fig6.String(), m.Method) {
			t.Errorf("STP rendering missing %s", m.Method)
		}
	}
}

func TestFastAndDefaultOptionDefaults(t *testing.T) {
	d := DefaultOptions()
	if d.Instructions == 0 || d.Warmup == 0 || d.CapacityScale == 0 {
		t.Fatalf("default options empty: %+v", d)
	}
	f := FastOptions()
	if f.Instructions >= d.Instructions {
		t.Fatal("FastOptions not faster than DefaultOptions")
	}
}

func TestSimulateParallelPublicAPI(t *testing.T) {
	names := ParallelBenchmarkNames()
	if len(names) < 4 {
		t.Fatalf("parallel suite %v", names)
	}
	res, err := SimulateParallel(MachineSpec{Cores: 2}, "par.stencil", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 2 || res.AggregateIPC <= 0 || res.MakespanCycles <= 0 {
		t.Fatalf("bad parallel result %+v", res)
	}
	sum := res.Stack.Base + res.Stack.Branch + res.Stack.Memory + res.Stack.Frontend + res.Stack.Barrier
	if sum < 0.9 || sum > 1.1 {
		t.Fatalf("stack sums to %.3f: %s", sum, res.Stack)
	}
	if _, err := SimulateParallel(MachineSpec{Cores: 2}, "nope", tinyOptions()); err == nil {
		t.Fatal("unknown parallel workload accepted")
	}
}

func TestExtMultithreadedOnTinyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 32-core target for each parallel workload")
	}
	ex, err := NewExperimentsSubset(tinyOptions(), subsetNames()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.ExtMultithreaded()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 4 {
		t.Fatalf("%d workloads", len(res.Workloads))
	}
	for _, w := range res.Workloads {
		if w.Actual32 <= 0 || w.Predicted32 <= 0 {
			t.Errorf("%s: bad throughputs %+v", w.Workload, w)
		}
		// Strong scaling: 32 threads must beat 1 thread.
		if w.ThroughputAt[32] <= w.ThroughputAt[1] {
			t.Errorf("%s: no scaling: %v", w.Workload, w.ThroughputAt)
		}
	}
	if !strings.Contains(res.String(), "par.stream") {
		t.Error("rendering missing workloads")
	}
}

func TestAblationsShowMechanismsMatter(t *testing.T) {
	if testing.Short() {
		t.Skip("three model variants over the subset suite")
	}
	ex, err := NewExperimentsSubset(tinyOptions(), subsetNames()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d ablation rows", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Variant] = r
	}
	full := byName["full model"]
	noFB := byName["no bandwidth feedback"]
	// Without the bandwidth fixed point there is (almost) no contention:
	// the NRS error collapses, i.e. the mechanism is load-bearing.
	if noFB.NRSMean >= full.NRSMean*0.8 {
		t.Errorf("no-feedback NRS err %.3f not well below full-model %.3f; feedback not load-bearing?",
			noFB.NRSMean, full.NRSMean)
	}
	if !strings.Contains(res.String(), "partitioned LLC") {
		t.Error("rendering missing variants")
	}
}

func TestPrefetchStudyOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("two homogeneous collections")
	}
	ex, err := NewExperimentsSubset(tinyOptions(), subsetNames()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.PrefetchStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(subsetNames()) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	foundSpeedup := false
	for _, row := range res.Rows {
		if row.IPCOn > row.IPCOff*1.02 {
			foundSpeedup = true
		}
		if row.IPCOn == 0 || row.IPCOff == 0 {
			t.Errorf("%s: missing variant data %+v", row.Benchmark, row)
		}
	}
	if !foundSpeedup {
		t.Error("prefetcher helped no benchmark at all")
	}
	if !strings.Contains(res.String(), "prefetcher") {
		t.Error("rendering incomplete")
	}
}

func TestCustomMachineSpec(t *testing.T) {
	res, err := Simulate(MachineSpec{Cores: 1, LLCPerCoreKB: 2048}, []string{"xalancbmk"}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(MachineSpec{Cores: 1}, []string{"xalancbmk"}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the capacity-sensitive benchmark's LLC must help it.
	if res.Cores[0].IPC <= base.Cores[0].IPC {
		t.Errorf("2 MB LLC IPC %.3f not above 1 MB IPC %.3f", res.Cores[0].IPC, base.Cores[0].IPC)
	}
	if _, err := Simulate(MachineSpec{Cores: 1, LLCPerCoreKB: 3000}, []string{"gcc"}, tinyOptions()); err == nil {
		t.Error("invalid custom LLC accepted")
	}
}
