package scalesim

import (
	"context"
	"fmt"
	"strings"

	"scalesim/internal/config"
	"scalesim/internal/fit"
	"scalesim/internal/metrics"
	"scalesim/internal/sim"
	"scalesim/internal/trace"
)

// This file implements the paper's future-work extension (§V-E6):
// scale-model simulation for data-parallel multi-threaded workloads, with
// speedup-stack bottleneck analysis.

// SpeedupStack decomposes average per-thread cycles into bottleneck
// components (fractions summing to ~1).
type SpeedupStack struct {
	Base, Branch, Memory, Frontend, Barrier float64
}

// String renders the stack as percentages.
func (s SpeedupStack) String() string {
	return fmt.Sprintf("base %.0f%% | branch %.0f%% | memory %.0f%% | frontend %.0f%% | barrier %.0f%%",
		100*s.Base, 100*s.Branch, 100*s.Memory, 100*s.Frontend, 100*s.Barrier)
}

// ParallelResult is the outcome of one multi-threaded simulation.
type ParallelResult struct {
	Machine        string
	Threads        int
	MakespanCycles float64
	AggregateIPC   float64
	Stack          SpeedupStack
	WallClockSec   float64
}

// ParallelBenchmarkNames lists the data-parallel workload suite.
func ParallelBenchmarkNames() []string {
	var names []string
	for _, p := range trace.ParallelSuite() {
		names = append(names, p.Serial.Name)
	}
	return names
}

// SimulateParallel runs the named data-parallel workload with one thread
// per core of the machine (strong scaling: opts.Instructions is the total
// work, split across threads).
func SimulateParallel(spec MachineSpec, workload string, opts SimOptions) (*ParallelResult, error) {
	return SimulateParallelContext(context.Background(), spec, workload, opts)
}

// SimulateParallelContext is SimulateParallel bounded by ctx: cancellation
// or deadline expiry propagates into the simulator's epoch loop, aborting
// the run within one epoch and returning ctx.Err().
func SimulateParallelContext(ctx context.Context, spec MachineSpec, workload string, opts SimOptions) (*ParallelResult, error) {
	pp := trace.ParallelByName(workload)
	if pp == nil {
		return nil, fmt.Errorf("scalesim: %w: parallel workload %q", ErrUnknownBenchmark, workload)
	}
	cfg, err := spec.internal()
	if err != nil {
		return nil, err
	}
	res, err := sim.RunParallelContext(ctx, cfg, sim.ParallelSpec{Profile: pp}, opts.internal())
	if err != nil {
		return nil, err
	}
	return &ParallelResult{
		Machine:        res.ConfigName,
		Threads:        len(res.Threads),
		MakespanCycles: float64(res.MakespanCycles),
		AggregateIPC:   res.AggregateIPC(),
		Stack: SpeedupStack{
			Base: res.Stack.Base, Branch: res.Stack.Branch, Memory: res.Stack.Memory,
			Frontend: res.Stack.Frontend, Barrier: res.Stack.Barrier,
		},
		WallClockSec: res.WallClock.Seconds(),
	}, nil
}

// MTWorkloadResult is one parallel workload's scaling study.
type MTWorkloadResult struct {
	Workload string
	// ThroughputAt maps machine size to aggregate IPC (strong scaling).
	ThroughputAt map[int]float64
	StackAt      map[int]SpeedupStack
	// Predicted32 is the 32-thread throughput extrapolated from the 2-16
	// thread scale models: a logarithmic fit of per-thread throughput
	// versus thread count (the saturating quantity), times 32. Actual32 is
	// simulated.
	Predicted32 float64
	Actual32    float64
	Error       float64
}

// MTResult is the multi-threaded extension study.
type MTResult struct {
	Workloads []MTWorkloadResult
	Summary   metrics.Summary
}

// String renders the study.
func (r *MTResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — scale-model simulation for data-parallel multi-threaded workloads (§V-E6)\n")
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "  %-14s throughput:", w.Workload)
		for _, c := range []int{1, 2, 4, 8, 16, 32} {
			if v, ok := w.ThroughputAt[c]; ok {
				fmt.Fprintf(&b, " %d:%.2f", c, v)
			}
		}
		fmt.Fprintf(&b, "\n  %-14s 32-thread: predicted %.2f vs simulated %.2f -> err %.1f%%\n",
			"", w.Predicted32, w.Actual32, 100*w.Error)
		fmt.Fprintf(&b, "  %-14s stack@32: %s\n", "", w.StackAt[32])
	}
	fmt.Fprintf(&b, "  extrapolation error: %s\n", r.Summary)
	return b.String()
}

// ExtMultithreaded runs the multi-threaded extension study: each parallel
// workload is simulated on the PRS scale-model ladder (1-16 threads), its
// 32-thread throughput extrapolated with the paper's logarithmic fit, and
// validated against a simulated 32-core target. Speedup stacks show which
// bottleneck (memory contention or barrier imbalance) limits scaling.
func (e *Experiments) ExtMultithreaded() (*MTResult, error) {
	out := &MTResult{}
	var errs []float64
	for _, pp := range trace.ParallelSuite() {
		w := MTWorkloadResult{
			Workload:     pp.Serial.Name,
			ThroughputAt: map[int]float64{},
			StackAt:      map[int]SpeedupStack{},
		}
		var xs, ys []float64
		for _, cores := range []int{1, 2, 4, 8, 16, 32} {
			cfg := e.lab.Target
			if cores != cfg.Cores {
				var err error
				cfg, err = config.ScaleModel(e.lab.Target, cores, config.ScaleModelOptions{Policy: config.PRSFull})
				if err != nil {
					return nil, err
				}
			}
			res, err := sim.RunParallel(cfg, sim.ParallelSpec{Profile: pp}, e.lab.Opts)
			if err != nil {
				return nil, err
			}
			w.ThroughputAt[cores] = res.AggregateIPC()
			w.StackAt[cores] = SpeedupStack{
				Base: res.Stack.Base, Branch: res.Stack.Branch, Memory: res.Stack.Memory,
				Frontend: res.Stack.Frontend, Barrier: res.Stack.Barrier,
			}
			if cores >= 2 && cores <= 16 {
				xs = append(xs, float64(cores))
				ys = append(ys, res.AggregateIPC()/float64(cores))
			}
		}
		curve, err := fit.Fit(fit.Logarithmic, xs, ys)
		if err != nil {
			return nil, err
		}
		w.Predicted32 = 32 * curve.Eval(32)
		w.Actual32 = w.ThroughputAt[32]
		w.Error = metrics.PredictionError(w.Predicted32, w.Actual32)
		errs = append(errs, w.Error)
		out.Workloads = append(out.Workloads, w)
	}
	out.Summary = metrics.Summarize(errs)
	return out, nil
}

// AblationRow is one model variant's construction-accuracy outcome.
type AblationRow struct {
	Variant string
	// NRSMean / PRSMean are the single-core scale-model prediction errors
	// under each construction, suite-averaged.
	NRSMean float64
	PRSMean float64
}

// AblationResult compares the full contention model against the ablated
// variants of DESIGN.md's starred design decisions.
type AblationResult struct {
	Rows []AblationRow
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — contention-model design choices (single-core scale model, no extrapolation)\n")
	fmt.Fprintf(&b, "  %-24s %10s %10s\n", "variant", "NRS err", "PRS err")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-24s %9.1f%% %9.1f%%\n", row.Variant, 100*row.NRSMean, 100*row.PRSMean)
	}
	return b.String()
}

// Ablations quantifies how much the two load-bearing simulator mechanisms
// matter to the paper's Fig. 3 result: the epoch bandwidth fixed point and
// the structurally shared LLC. Removing either changes the NRS/PRS error
// structure qualitatively (e.g. without feedback, bandwidth contention
// disappears and NRS looks far better than it should).
func (e *Experiments) Ablations() (*AblationResult, error) {
	variants := []struct {
		name   string
		mutate func(*sim.Options)
	}{
		{"full model", func(o *sim.Options) {}},
		{"no bandwidth feedback", func(o *sim.Options) { o.NoFeedback = true }},
		{"partitioned LLC", func(o *sim.Options) { o.PartitionedLLC = true }},
	}
	out := &AblationResult{}
	for _, v := range variants {
		opts := e.lab.Opts
		v.mutate(&opts)
		lab := e.lab.WithSimOptions(opts)
		row := AblationRow{Variant: v.name}
		for _, pol := range []config.ScalingPolicy{config.NRS, config.PRSFull} {
			d, err := lab.WithPolicy(pol).CollectHomogeneous(e.suite, nil, 0)
			if err != nil {
				return nil, err
			}
			errsList, err := d.EvaluateLOO(scalemodelNoExtrap())
			if err != nil {
				return nil, err
			}
			vals := make([]float64, len(errsList))
			for i, ne := range errsList {
				vals[i] = ne.Error
			}
			s := metrics.Summarize(vals)
			if pol == config.NRS {
				row.NRSMean = s.Mean
			} else {
				row.PRSMean = s.Mean
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// PrefetchRow is one benchmark's outcome in the prefetcher robustness
// study.
type PrefetchRow struct {
	Benchmark string
	IPCOff    float64 // single-core scale model, prefetcher off
	IPCOn     float64 // single-core scale model, prefetcher on
	ErrOff    float64 // NoExtrap target prediction error, prefetcher off
	ErrOn     float64 // same with the prefetcher on (both machines)
}

// PrefetchResult is the prefetcher robustness study.
type PrefetchResult struct {
	Rows       []PrefetchRow
	SummaryOff metrics.Summary
	SummaryOn  metrics.Summary
}

// String renders the study.
func (r *PrefetchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — methodology robustness with an L2 stream prefetcher\n")
	fmt.Fprintf(&b, "  %-12s %8s %8s %10s %10s\n", "benchmark", "IPC off", "IPC on", "err off", "err on")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %8.3f %8.3f %9.1f%% %9.1f%%\n",
			row.Benchmark, row.IPCOff, row.IPCOn, 100*row.ErrOff, 100*row.ErrOn)
	}
	fmt.Fprintf(&b, "  NoExtrap error without prefetcher: %s\n", r.SummaryOff)
	fmt.Fprintf(&b, "  NoExtrap error with prefetcher:    %s\n", r.SummaryOn)
	return b.String()
}

// PrefetchStudy checks that the scale-model methodology is robust to a
// microarchitectural feature the paper's configuration does not include: an
// L2 stream prefetcher. When both the scale model and the target gain the
// prefetcher, proportional scaling should remain (about) as accurate as
// without it — the methodology does not depend on the exact core-side
// configuration, only on both machines sharing it.
func (e *Experiments) PrefetchStudy() (*PrefetchResult, error) {
	out := &PrefetchResult{}
	var offErrs, onErrs []float64
	for _, variant := range []bool{false, true} {
		opts := e.lab.Opts
		opts.EnablePrefetch = variant
		lab := e.lab.WithSimOptions(opts)
		d, err := lab.CollectHomogeneous(e.suite, nil, 0)
		if err != nil {
			return nil, err
		}
		errsList, err := d.EvaluateLOO(scalemodelNoExtrap())
		if err != nil {
			return nil, err
		}
		for i, ne := range errsList {
			if !variant {
				out.Rows = append(out.Rows, PrefetchRow{
					Benchmark: ne.Name,
					IPCOff:    d.Meas[ne.Name].IPC,
					ErrOff:    ne.Error,
				})
				offErrs = append(offErrs, ne.Error)
			} else {
				// EvaluateLOO sorts by MPKI which may differ slightly
				// between variants; match by name.
				for j := range out.Rows {
					if out.Rows[j].Benchmark == ne.Name {
						out.Rows[j].IPCOn = d.Meas[ne.Name].IPC
						out.Rows[j].ErrOn = ne.Error
					}
				}
				onErrs = append(onErrs, ne.Error)
				_ = i
			}
		}
	}
	out.SummaryOff = metrics.Summarize(offErrs)
	out.SummaryOn = metrics.Summarize(onErrs)
	return out, nil
}
