package scalesim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"

	"scalesim/internal/runner"
)

func TestTuningValidate(t *testing.T) {
	var nilTuning *Tuning
	if err := nilTuning.Validate(); err != nil {
		t.Fatalf("nil tuning must validate: %v", err)
	}
	if err := (&Tuning{}).Validate(); err != nil {
		t.Fatalf("zero tuning must validate: %v", err)
	}
	for _, bad := range []Tuning{
		{CoreWorkers: -1},
		{CampaignWorkers: -2},
		{EpochLogOps: -3},
	} {
		if err := bad.Validate(); !errors.Is(err, ErrBadTuning) {
			t.Errorf("Validate(%+v) = %v, want ErrBadTuning", bad, err)
		}
	}
}

// TestBadTuningSurfaces pins where an invalid Tuning fails: before any
// simulation, wrapping ErrBadTuning, at every entry point that accepts one.
func TestBadTuningSurfaces(t *testing.T) {
	bad := &Tuning{CoreWorkers: -1}
	spec := MachineSpec{Cores: 1}
	opts := FastOptions()
	opts.Tuning = bad

	if _, err := Simulate(spec, []string{"mcf"}, opts); !errors.Is(err, ErrBadTuning) {
		t.Errorf("Simulate with bad tuning = %v, want ErrBadTuning", err)
	}
	if _, err := RunCampaign(Campaign{Tuning: bad}); !errors.Is(err, ErrBadTuning) {
		t.Errorf("RunCampaign with bad campaign tuning = %v, want ErrBadTuning", err)
	}
	if _, err := NewService(ServiceConfig{Tuning: bad}); !errors.Is(err, ErrBadTuning) {
		t.Errorf("NewService with bad tuning = %v, want ErrBadTuning", err)
	}
	// A bad per-job tuning fails in that job's outcome without sinking the
	// batch.
	res, err := RunCampaign(Campaign{Jobs: []CampaignJob{
		{Machine: spec, Benchmarks: []string{"mcf"}, Options: opts},
	}})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if got := res.Outcomes[0].Err; !errors.Is(got, ErrBadTuning) {
		t.Errorf("job outcome = %v, want ErrBadTuning", got)
	}
}

// TestDeprecatedWorkersAlias pins the alias contract for the consolidated
// knob: Tuning.CampaignWorkers wins when set, the deprecated
// Campaign.Workers / ServiceConfig.Workers value applies otherwise.
func TestDeprecatedWorkersAlias(t *testing.T) {
	cases := []struct {
		tuning *Tuning
		alias  int
		want   int
	}{
		{nil, 0, 0},
		{nil, 3, 3},
		{&Tuning{}, 3, 3},
		{&Tuning{CampaignWorkers: 2}, 3, 2},
		{&Tuning{CampaignWorkers: 2}, 0, 2},
	}
	for _, c := range cases {
		if got := c.tuning.campaignWorkers(c.alias); got != c.want {
			t.Errorf("campaignWorkers(tuning=%+v, alias=%d) = %d, want %d", c.tuning, c.alias, got, c.want)
		}
	}
}

// TestTuningIsKeyless pins the memoization contract: two jobs differing
// only in Tuning are the same design point and share one cache key.
func TestTuningIsKeyless(t *testing.T) {
	spec := MachineSpec{Cores: 2}
	benches := []string{"mcf", "lbm"}
	cfg, wl, err := buildRun(spec, benches, nil)
	if err != nil {
		t.Fatalf("buildRun: %v", err)
	}
	opts := FastOptions()
	base := runner.Job{Config: cfg, Workload: wl, Options: opts.internal()}
	tuned := opts
	tuned.Tuning = &Tuning{CoreWorkers: 8, CampaignWorkers: 3, EpochLogOps: 16}
	alt := runner.Job{Config: cfg, Workload: wl, Options: tuned.internal()}
	if base.Key() != alt.Key() {
		t.Fatalf("tuning changed the cache key:\n base %s\ntuned %s", base.Key(), alt.Key())
	}
}

// TestParallelEpochDeterminism is the parallel-correctness gate for the
// epoch fork/join: across a seed matrix and both LLC organisations, a run
// with CoreWorkers > 1 must be byte-identical to the serial run — the same
// full-precision per-core metrics, the same contention utilisations, and
// the same JSONL telemetry bytes. It stays in -short (and therefore in
// `make check` under -race, where the race detector also vets the epoch
// barrier) because parallel epochs are the default execution mode.
func TestParallelEpochDeterminism(t *testing.T) {
	spec := MachineSpec{Cores: 4, Bandwidth: BandwidthMCFirst}
	benches := BenchmarkNames()[:4]
	variants := []struct {
		name   string
		mutate func(*SimOptions)
	}{
		{"shared-llc", func(*SimOptions) {}},
		{"partitioned", func(o *SimOptions) { o.PartitionedLLC = true }},
	}
	for _, v := range variants {
		for _, seed := range []uint64{1, 7} {
			t.Run(fmt.Sprintf("%s/seed=%d", v.name, seed), func(t *testing.T) {
				opts := FastOptions()
				opts.Instructions = 60_000
				opts.Warmup = 20_000
				opts.Trace = true
				opts.Seed = seed
				v.mutate(&opts)

				serial := opts
				serial.Tuning = &Tuning{CoreWorkers: 1}
				// EpochLogOps 8 deliberately undersizes the replay log so the
				// arena growth path is exercised, not just the happy path.
				parallel := opts
				parallel.Tuning = &Tuning{CoreWorkers: 4, EpochLogOps: 8}

				a := simPayload(t, spec, benches, serial)
				b := simPayload(t, spec, benches, parallel)
				if !bytes.Equal(a, b) {
					t.Errorf("parallel run diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
				}
			})
		}
	}
}

// simPayload renders every observable of one simulation with bit-exact
// formatting: hex floats for the per-core metrics and utilisations, plus
// the raw JSONL telemetry stream.
func simPayload(t *testing.T, spec MachineSpec, benches []string, opts SimOptions) []byte {
	t.Helper()
	res, err := SimulateContext(context.Background(), spec, benches, opts)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var buf bytes.Buffer
	hex := func(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }
	fmt.Fprintf(&buf, "dram=%s noc=%s\n", hex(res.DRAMUtilization), hex(res.NoCUtilization))
	for i, cr := range res.Cores {
		fmt.Fprintf(&buf, "core=%d ipc=%s bw=%s mpki=%s mispred=%s\n", i,
			hex(cr.IPC), hex(cr.BWBytesPerCycle), hex(cr.LLCMPKI), hex(cr.BranchMispredictRate))
	}
	if len(res.Trace) == 0 {
		t.Fatal("traced run produced no snapshots")
	}
	if err := WriteTraceJSONL(&buf, res.Trace); err != nil {
		t.Fatalf("WriteTraceJSONL: %v", err)
	}
	return buf.Bytes()
}
