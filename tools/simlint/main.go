// Command simlint is the repository's static-analysis gate: determinism,
// key-drift, unit, error-wrapping and concurrency invariants, enforced over
// every package of the module with go/parser + go/types (standard library
// only, offline).
//
// The simulator's value rests on bit-identical, seed-stable, dimensionally
// sane runs: the scale-model extrapolation (and anything trained on campaign
// outputs) is meaningless if two runs of the same design point diverge, or
// if a cycles-vs-bytes mixup skews a model input. The rules:
//
//	maporder    no `range` over maps in deterministic packages
//	wallclock   no time.Now/time.Since or math/rand in deterministic
//	            packages; internal/xrand is the only randomness source
//	reflectfmt  no %v/%+v of pointer-carrying values feeding a hash or key
//	keydrift    every semantic field of the design-point structs must be
//	            encoded by internal/runner/key.go
//	units       no arithmetic mixing distinct internal/units quantity
//	            types, no bare literals across unit boundaries
//	errwrap     sentinel errors are wrapped with %w and matched with
//	            errors.Is, never == or string matching
//	apipair     every exported *Context entry point has a single-statement
//	            delegating context-free wrapper
//	goroleak    every go statement in internal/runner and internal/store
//	            is WaitGroup-joined and spawned from a context-aware
//	            function
//	approxflow  flow-sensitive taint: model predictions (approximate
//	            values) never reach the store, the memory cache, or the
//	            training set
//	ctxflow     flow-sensitive: fresh context.Background()/TODO() outside
//	            main and the sanctioned X/XContext wrappers never flows
//	            into the module's context-taking calls
//	lockscope   flow-sensitive: no mutex held across a blocking operation,
//	            no return path that leaks a lock
//	hotpath     interprocedural: functions reachable from the hot-loop
//	            roots (the per-cycle core stepper, the memory-system
//	            resolve path, the cache access paths) must not allocate,
//	            lock, defer, range a map, or call fmt; escapes use
//	            //simlint:hotpath-exempt <justification>
//	sharestrict interprocedural: the epoch fork/join workers must not
//	            write shared simulator state (noc.Mesh, dram.Memory, the
//	            shared-LLC cache.NUCA) except through the sanctioned
//	            read-only and *Into accumulator surfaces
//
// The two interprocedural rules run over a CHA-based call graph
// (tools/simlint/internal/callgraph): interface calls resolve to every
// module type implementing the interface, closures and method values are
// edges, and each finding carries its witness — the shortest call chain
// from a configured root — in the message and as a SARIF codeFlow.
//
// Findings print as "file:line: [rule] message", sorted, and exit status 1.
// A finding is suppressed by a trailing or preceding comment
//
//	//simlint:ignore <rule> <justification>
//
// where the rule name must be registered and the justification is
// mandatory. Findings listed in the committed baseline file
// (tools/simlint/baseline.json) are reported in the JSON report but do not
// fail the run; `make lint-baseline` regenerates the baseline. See
// DESIGN.md, "Static analysis invariants".
//
// Some findings carry a suggested fix; -fix applies them (atomically per
// file, idempotently) and re-lints so only what remains is reported.
// -sarif writes the run as SARIF 2.1.0 for GitHub code scanning.
//
// Usage:
//
//	simlint [flags] [module-root]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scalesim/tools/simlint/internal/analysis"
	"scalesim/tools/simlint/internal/rules"
)

func main() {
	det := flag.String("det", "", "comma-separated module-relative deterministic package dirs (default: the repo policy)")
	keyFile := flag.String("keyfile", "", "module-relative path of the canonical key encoder (default: internal/runner/key.go)")
	keyRoots := flag.String("keyroots", "", "comma-separated key root types as <pkg dir>.<TypeName> (default: internal/runner.Job)")
	unitsDir := flag.String("units", "", "module-relative dir of the quantity-type package (default: internal/units)")
	goroutines := flag.String("goroutines", "", "comma-separated module-relative dirs where go statements must be joined (default: internal/runner,internal/store)")
	ruleList := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	reportPath := flag.String("report", "", "write a JSON report (scalesim/simlint-report/v1) to this path")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 report to this path")
	applyFix := flag.Bool("fix", false, "apply suggested fixes, then re-lint and report what remains")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings (default: <root>/tools/simlint/baseline.json; missing file = empty baseline)")
	writeBaseline := flag.Bool("write-baseline", false, "accept every current finding: rewrite the baseline file and exit 0")
	flag.Parse()

	root := "."
	if args := flag.Args(); len(args) > 0 && args[0] != "./..." {
		root = args[0]
	}
	cfg := rules.RepoConfig(root)
	if *det != "" {
		cfg.Deterministic = strings.Split(*det, ",")
	}
	if *keyFile != "" {
		cfg.KeyFile = *keyFile
	}
	if *keyRoots != "" {
		cfg.KeyRoots = strings.Split(*keyRoots, ",")
	}
	if *unitsDir != "" {
		cfg.UnitsDir = *unitsDir
	}
	if *goroutines != "" {
		cfg.Goroutines = strings.Split(*goroutines, ",")
	}

	active := rules.All(cfg)
	if *ruleList != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*ruleList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for _, known := range rules.Names(cfg) {
			delete(want, known)
		}
		if len(want) > 0 {
			fatal(fmt.Errorf("simlint: unknown rule(s) in -rules: %s (known: %s)",
				strings.Join(sortedKeys(want), ", "), strings.Join(rules.Names(cfg), ", ")))
		}
		selected := map[string]bool{}
		for _, name := range strings.Split(*ruleList, ",") {
			selected[strings.TrimSpace(name)] = true
		}
		active = rules.Select(cfg, selected)
	}

	findings, mod, err := analysis.Run(cfg, active)
	if err != nil {
		fatal(err)
	}

	blPath := *baselinePath
	if blPath == "" {
		blPath = filepath.Join(root, "tools", "simlint", "baseline.json")
	}
	if *writeBaseline {
		if err := analysis.WriteBaseline(blPath, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "simlint: baseline %s rewritten with %d finding(s)\n", blPath, len(findings))
	}
	baseline, err := analysis.LoadBaseline(blPath)
	if err != nil {
		fatal(err)
	}
	newFindings, baselined := baseline.Split(findings)

	if *applyFix {
		res, err := analysis.ApplyFixes(mod, newFindings)
		if err != nil {
			fatal(err)
		}
		if res.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d overlapping fix(es) skipped; re-run -fix after this pass\n", res.Skipped)
		}
		if res.Applied > 0 {
			fmt.Fprintf(os.Stderr, "simlint: applied %d fix(es) to %s\n", res.Applied, strings.Join(res.Files, ", "))
			// Re-lint from the rewritten sources so the report and the exit
			// status describe what is actually left.
			findings, mod, err = analysis.Run(cfg, active)
			if err != nil {
				fatal(err)
			}
			newFindings, baselined = baseline.Split(findings)
		}
	}

	if *sarifPath != "" {
		if err := analysis.WriteSARIF(*sarifPath, analysis.BuildSARIF(active, newFindings, baselined)); err != nil {
			fatal(err)
		}
	}

	if *reportPath != "" {
		var names []string
		for _, a := range active {
			names = append(names, a.Name())
		}
		report := analysis.BuildReport(mod.Path, names, newFindings, baselined)
		if err := analysis.WriteReport(*reportPath, report); err != nil {
			fatal(err)
		}
	}

	if len(baselined) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d baselined finding(s) suppressed\n", len(baselined))
	}
	if len(newFindings) > 0 {
		fmt.Print(analysis.Render(newFindings))
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(newFindings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	// Tiny n; insertion sort keeps imports lean.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
