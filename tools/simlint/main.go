// Command simlint is the repository's determinism-and-drift linter.
//
// The simulator's value rests on bit-identical, seed-stable runs: the
// scale-model extrapolation (and anything trained on campaign outputs) is
// meaningless if two runs of the same design point diverge. simlint loads
// every package in the module with go/parser + go/types (standard library
// only, offline) and enforces the invariants that keep runs reproducible:
//
//	maporder    no `range` over maps in deterministic packages
//	wallclock   no time.Now/time.Since or math/rand in deterministic
//	            packages; internal/xrand is the only randomness source
//	reflectfmt  no %v/%+v of pointer-carrying values feeding a hash or key
//	keydrift    every semantic field of the design-point structs must be
//	            encoded by internal/runner/key.go
//
// Findings print as "file:line: [rule] message", sorted, and exit status 1.
// A finding is suppressed by a trailing or preceding comment
//
//	//simlint:ignore <rule> <justification>
//
// where the justification is mandatory. See DESIGN.md, "Determinism
// invariants".
//
// Usage:
//
//	simlint [flags] [module-root]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// defaultConfig is this repository's lint policy. The deterministic set is
// every package whose code executes between "design point in" and "Result
// out": the simulator core and its models, the synthetic trace generators,
// the scale-model protocols, and the campaign engine (whose cache keys and
// reports must themselves be reproducible).
func defaultConfig(root string) Config {
	return Config{
		Root: root,
		Deterministic: []string{
			"internal/sim",
			"internal/trace",
			"internal/cache",
			"internal/noc",
			"internal/dram",
			"internal/scalemodel",
			"internal/runner",
			"internal/store",
		},
		KeyFile:  "internal/runner/key.go",
		KeyRoots: []string{"internal/runner.Job"},
	}
}

func main() {
	det := flag.String("det", "", "comma-separated module-relative deterministic package dirs (default: the repo policy)")
	keyFile := flag.String("keyfile", "", "module-relative path of the canonical key encoder (default: internal/runner/key.go)")
	keyRoots := flag.String("keyroots", "", "comma-separated key root types as <pkg dir>.<TypeName> (default: internal/runner.Job)")
	flag.Parse()

	root := "."
	if args := flag.Args(); len(args) > 0 && args[0] != "./..." {
		root = args[0]
	}
	cfg := defaultConfig(root)
	if *det != "" {
		cfg.Deterministic = strings.Split(*det, ",")
	}
	if *keyFile != "" {
		cfg.KeyFile = *keyFile
	}
	if *keyRoots != "" {
		cfg.KeyRoots = strings.Split(*keyRoots, ",")
	}

	findings, err := runLint(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Print(render(findings))
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
