package main

import (
	"testing"

	"scalesim/tools/simlint/internal/analysis"
	"scalesim/tools/simlint/internal/rules"
)

// TestPublicAPIContextPairing replaces the bespoke parser that used to live
// in the root package's apipairing_test.go: the apipair analyzer now owns
// the convention (every exported *Context entry point has a single-statement
// delegating wrapper, and the root package keeps at least its pinned pair
// count). This thin test runs just that analyzer over the repository and
// requires silence.
func TestPublicAPIContextPairing(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	cfg := rules.RepoConfig("../..")
	findings, _, err := analysis.Run(cfg, rules.Select(cfg, map[string]bool{"apipair": true}))
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("public API context pairing violated:\n%s", analysis.Render(findings))
	}
}
