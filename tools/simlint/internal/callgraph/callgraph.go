// Package callgraph builds a static call graph over a type-checked simlint
// module, for the interprocedural rules (hotpath, sharestrict).
//
// Construction is class-hierarchy analysis (CHA): a call through an
// interface method resolves to the corresponding concrete method of every
// named type in the module whose method set implements the interface. That
// over-approximates the dynamic dispatch (soundly, for module-internal
// types), which is the right bias for lint rules proving the *absence* of a
// behavior on every path. Closures are their own nodes, connected to the
// function that creates them by a Closure edge; a method or function used
// as a value (handed off to be called later) contributes a FuncValue edge.
// Calls through function-typed variables cannot be resolved statically and
// are recorded on the calling node as Dyn sites, so rules can refuse to
// certify functions that launder calls through them.
//
// Packages are traversed in Module.Order — the same import-topological
// order the analysis framework uses for cross-package facts — so node and
// edge slices are deterministic and every cross-package callee already has
// a node when its caller's edges are added.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"scalesim/tools/simlint/internal/analysis"
)

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind int

const (
	// Static is a direct call of a declared function or concrete method.
	Static EdgeKind = iota
	// Interface is a call through an interface method, resolved by CHA to
	// one concrete implementation (one edge per implementing module type).
	Interface
	// Closure connects a function to a literal it creates; the closure may
	// run immediately, later, or on another goroutine, so reachability
	// treats creation as a call.
	Closure
	// FuncValue is a function or method referenced as a value (stored,
	// passed, returned) rather than called at the site; whoever receives
	// the value may call it, so reachability follows the edge.
	FuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "calls"
	case Interface:
		return "calls (via interface)"
	case Closure:
		return "creates closure"
	case FuncValue:
		return "takes value of"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Edge is one caller→callee connection at a source position.
type Edge struct {
	Callee *Node
	Site   token.Pos
	Kind   EdgeKind
}

// Node is one function body: a declared function or method (Fn non-nil) or
// a function literal (Lit non-nil). Literal IDs are their enclosing
// declaration's ID plus "$N", numbering the literals of the declaration in
// source order.
type Node struct {
	ID    string
	Pkg   *analysis.Package
	Fn    *types.Func   // nil for literals
	Lit   *ast.FuncLit  // nil for declared functions
	Decl  *ast.FuncDecl // enclosing declaration (the node's own for Fn nodes)
	Body  *ast.BlockStmt
	Out   []Edge
	Dyn   []token.Pos // call sites through function-typed values, unresolvable statically
	short string
}

// Short is the node's name without the package directory ("Core.Run",
// "Core.Run$1"), for witness-chain rendering.
func (n *Node) Short() string { return n.short }

// Pos is the node's declaration position: the func keyword of a literal,
// the name of a declared function.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Name.Pos()
}

// Graph is the module's call graph.
type Graph struct {
	Module *analysis.Module

	nodes  map[string]*Node
	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
	sorted []*Node // creation order: Module.Order, then file, then source order
}

// Node returns the node with the given ID ("internal/cpu.Core.Run",
// "Simulate" for the module root package, "…$1" for literals), or nil.
func (g *Graph) Node(id string) *Node { return g.nodes[id] }

// FuncNode returns the node of a declared function or method, or nil.
func (g *Graph) FuncNode(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Sorted returns every node in deterministic creation order
// (import-topological by package, then source order).
func (g *Graph) Sorted() []*Node { return g.sorted }

// FuncID renders the node ID of a declared function or method in the
// package with the given module-relative directory: "<dir>.<Type>.<Method>"
// or "<dir>.<Func>", matching the spec syntax of the rule configuration.
func FuncID(rel string, fn *types.Func) string {
	key := fn.Name()
	if r := recvName(fn); r != "" {
		key = r + "." + key
	}
	if rel == "" {
		return key
	}
	return rel + "." + key
}

// recvName returns the receiver type name of a method (through a pointer),
// or "" for package-level functions.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

var (
	ofMu    sync.Mutex
	ofCache = map[*analysis.Module]*Graph{}
)

// Of returns the memoized call graph of a loaded module, building it on
// first use. Both interprocedural rules run over the same module load, so
// they share one graph.
func Of(m *analysis.Module) *Graph {
	ofMu.Lock()
	defer ofMu.Unlock()
	if g := ofCache[m]; g != nil {
		return g
	}
	g := Build(m)
	ofCache[m] = g
	return g
}

// Build constructs the call graph: one pass creating a node per function
// body, one pass adding edges, then CHA resolution of the collected
// interface call sites.
func Build(m *analysis.Module) *Graph {
	g := &Graph{
		Module: m,
		nodes:  map[string]*Node{},
		byFunc: map[*types.Func]*Node{},
		byLit:  map[*ast.FuncLit]*Node{},
	}
	b := &builder{m: m, g: g}
	for _, p := range m.Order {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.declNode(p, fd, fn)
			}
		}
	}
	for _, n := range g.sorted {
		b.addEdges(n)
	}
	b.resolveInterfaces()
	return g
}

type ifaceSite struct {
	caller *Node
	iface  *types.Interface
	method *types.Func
	site   token.Pos
	kind   EdgeKind
}

type builder struct {
	m     *analysis.Module
	g     *Graph
	iface []ifaceSite
}

// declNode creates the node of a declared function plus one node per
// literal in its body, numbered in source order. Multiple declarations can
// share a key ("func init"); later ones get a "#n" suffix so IDs stay
// unique and deterministic.
func (b *builder) declNode(p *analysis.Package, fd *ast.FuncDecl, fn *types.Func) {
	id := FuncID(p.Rel, fn)
	short := id[strings.LastIndex(id, "/")+1:]
	if p.Rel != "" {
		short = strings.TrimPrefix(id, p.Rel+".")
	}
	for k := 2; b.g.nodes[id] != nil; k++ {
		id = fmt.Sprintf("%s#%d", FuncID(p.Rel, fn), k)
		short = fmt.Sprintf("%s#%d", strings.TrimPrefix(FuncID(p.Rel, fn), p.Rel+"."), k)
	}
	n := &Node{ID: id, Pkg: p, Fn: fn, Decl: fd, Body: fd.Body, short: short}
	b.g.nodes[id] = n
	b.g.byFunc[fn] = n
	b.g.sorted = append(b.g.sorted, n)
	count := 0
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		count++
		ln := &Node{
			ID:    fmt.Sprintf("%s$%d", id, count),
			Pkg:   p,
			Lit:   lit,
			Decl:  fd,
			Body:  lit.Body,
			short: fmt.Sprintf("%s$%d", short, count),
		}
		b.g.nodes[ln.ID] = ln
		b.g.byLit[lit] = ln
		b.g.sorted = append(b.g.sorted, ln)
		return true
	})
}

// addEdges walks one node's body (literals are separate nodes, so the walk
// stops at nested FuncLit boundaries after recording the Closure edge).
func (b *builder) addEdges(n *Node) {
	info := n.Pkg.Info
	callFun := map[ast.Node]bool{} // expressions in call position
	selSel := map[*ast.Ident]bool{}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if ln := b.g.byLit[x]; ln != nil {
				n.Out = append(n.Out, Edge{Callee: ln, Site: x.Pos(), Kind: Closure})
			}
			return false
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			callFun[fun] = true
			b.call(n, x, fun)
		case *ast.SelectorExpr:
			selSel[x.Sel] = true
			if !callFun[x] {
				if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
					b.funcRef(n, fn, x.Sel.Pos(), FuncValue)
				}
			}
		case *ast.Ident:
			if !callFun[x] && !selSel[x] {
				if fn, ok := info.Uses[x].(*types.Func); ok {
					b.funcRef(n, fn, x.Pos(), FuncValue)
				}
			}
		}
		return true
	})
}

// call resolves one call expression. Conversions and builtins add no edge;
// calls through function-typed values are recorded as Dyn sites.
func (b *builder) call(n *Node, call *ast.CallExpr, fun ast.Expr) {
	info := n.Pkg.Info
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return // conversion
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	case *ast.FuncLit:
		return // immediately invoked; the FuncLit visit adds the Closure edge
	default:
		n.Dyn = append(n.Dyn, call.Lparen) // e.g. calling a call's result
		return
	}
	switch o := obj.(type) {
	case *types.Builtin, *types.TypeName, *types.Nil:
		return
	case *types.Func:
		b.funcRef(n, o, call.Lparen, Static)
	default:
		n.Dyn = append(n.Dyn, call.Lparen) // function-typed variable or field
	}
}

// funcRef adds the edge of a resolved function reference. Interface
// methods are deferred to CHA resolution; functions outside the module
// have no node and add no edge (rules that care about external callees —
// fmt, sync — check call sites directly).
func (b *builder) funcRef(n *Node, fn *types.Func, site token.Pos, kind EdgeKind) {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if it, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			if kind == Static {
				kind = Interface
			}
			b.iface = append(b.iface, ifaceSite{caller: n, iface: it, method: fn, site: site, kind: kind})
			return
		}
	}
	if callee := b.g.byFunc[fn]; callee != nil {
		n.Out = append(n.Out, Edge{Callee: callee, Site: site, Kind: kind})
	}
}

// resolveInterfaces adds one edge per (interface call site, implementing
// module type): CHA. The pointer method set is used, so value- and
// pointer-receiver implementations both resolve; that over-approximation
// is what makes reachability a sound basis for "must not happen" rules.
func (b *builder) resolveInterfaces() {
	named := b.moduleNamedTypes()
	for _, s := range b.iface {
		for _, nt := range named {
			if !types.Implements(types.NewPointer(nt), s.iface) {
				continue
			}
			sel := types.NewMethodSet(types.NewPointer(nt)).Lookup(s.method.Pkg(), s.method.Name())
			if sel == nil {
				continue
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				continue
			}
			if callee := b.g.byFunc[fn]; callee != nil {
				s.caller.Out = append(s.caller.Out, Edge{Callee: callee, Site: s.site, Kind: s.kind})
			}
		}
	}
}

// moduleNamedTypes lists every defined non-interface named type of the
// module in deterministic order (packages sorted by Rel, names sorted
// within a package scope).
func (b *builder) moduleNamedTypes() []*types.Named {
	var out []*types.Named
	for _, p := range b.m.Pkgs {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			nt, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(nt) {
				continue
			}
			out = append(out, nt)
		}
	}
	return out
}

// PathStep is one hop of a reachability witness: Caller reaches
// Edge.Callee through Edge.Site.
type PathStep struct {
	Caller *Node
	Edge   Edge
}

// Reach is the result of a reachability query: the set of nodes reachable
// from the roots, with a shortest-path witness to each.
type Reach struct {
	roots map[*Node]bool
	prev  map[*Node]PathStep
}

// Reach runs a breadth-first search from the roots. follow, when non-nil,
// filters edges: an edge for which it returns false is not traversed
// (sharestrict uses this to stop at the sanctioned shared-state surface).
// Traversal order is deterministic: roots in argument order, out-edges in
// construction order.
func (g *Graph) Reach(roots []*Node, follow func(caller *Node, e Edge) bool) *Reach {
	r := &Reach{roots: map[*Node]bool{}, prev: map[*Node]PathStep{}}
	var queue []*Node
	for _, n := range roots {
		if n == nil || r.roots[n] {
			continue
		}
		r.roots[n] = true
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(n, e) {
				continue
			}
			if r.roots[e.Callee] {
				continue
			}
			if _, seen := r.prev[e.Callee]; seen {
				continue
			}
			r.prev[e.Callee] = PathStep{Caller: n, Edge: e}
			queue = append(queue, e.Callee)
		}
	}
	return r
}

// Has reports whether n is reachable (roots included).
func (r *Reach) Has(n *Node) bool {
	if r.roots[n] {
		return true
	}
	_, ok := r.prev[n]
	return ok
}

// Path returns the shortest witness chain from a root to n: the steps, in
// call order, that make n reachable. Roots and unreachable nodes return
// nil.
func (r *Reach) Path(n *Node) []PathStep {
	if r.roots[n] {
		return nil
	}
	var rev []PathStep
	cur := n
	for !r.roots[cur] {
		step, ok := r.prev[cur]
		if !ok {
			return nil
		}
		rev = append(rev, step)
		cur = step.Caller
	}
	out := make([]PathStep, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// Chain renders a witness path as "root → a → b → target" starting at the
// first step's caller. An empty path renders as just the node's own name.
func Chain(target *Node, path []PathStep) string {
	if len(path) == 0 {
		return target.Short()
	}
	var b strings.Builder
	b.WriteString(path[0].Caller.Short())
	for _, s := range path {
		b.WriteString(" → ")
		b.WriteString(s.Edge.Callee.Short())
	}
	return b.String()
}
