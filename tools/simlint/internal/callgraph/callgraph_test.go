package callgraph

import (
	"strings"
	"sync"
	"testing"

	"scalesim/tools/simlint/internal/analysis"
)

var (
	fixOnce sync.Once
	fixMod  *analysis.Module
	fixErr  error
)

func fixtureGraph(t *testing.T) *Graph {
	t.Helper()
	fixOnce.Do(func() {
		fixMod, fixErr = analysis.LoadModule("testdata/cgfix")
	})
	if fixErr != nil {
		t.Fatalf("loading fixture module: %v", fixErr)
	}
	return Of(fixMod)
}

// edge reports whether from has an out-edge to the node with the given ID,
// returning its kind.
func edge(t *testing.T, g *Graph, from, to string) (EdgeKind, bool) {
	t.Helper()
	f := g.Node(from)
	if f == nil {
		t.Fatalf("no node %q", from)
	}
	for _, e := range f.Out {
		if e.Callee.ID == to {
			return e.Kind, true
		}
	}
	return 0, false
}

func TestStaticAndCrossPackageEdges(t *testing.T) {
	g := fixtureGraph(t)
	if k, ok := edge(t, g, "app.Drive", "core.Engine.Step"); !ok || k != Static {
		t.Errorf("app.Drive → core.Engine.Step: got (%v, %v), want Static edge", k, ok)
	}
	if k, ok := edge(t, g, "core.Table.Load", "core.helper"); !ok || k != Static {
		t.Errorf("core.Table.Load → core.helper: got (%v, %v), want Static edge", k, ok)
	}
}

func TestInterfaceCallResolvesByCHA(t *testing.T) {
	g := fixtureGraph(t)
	for _, impl := range []string{"core.Table.Load", "core.Flat.Load"} {
		if k, ok := edge(t, g, "core.Engine.Step", impl); !ok || k != Interface {
			t.Errorf("core.Engine.Step → %s: got (%v, %v), want Interface edge", impl, k, ok)
		}
	}
}

func TestClosureAndMethodValueEdges(t *testing.T) {
	g := fixtureGraph(t)
	if k, ok := edge(t, g, "core.Engine.Spawn", "core.Engine.Spawn$1"); !ok || k != Closure {
		t.Errorf("Spawn → Spawn$1: got (%v, %v), want Closure edge", k, ok)
	}
	if k, ok := edge(t, g, "core.Engine.Spawn$1", "core.Engine.Step"); !ok || k != Static {
		t.Errorf("Spawn$1 → Step: got (%v, %v), want Static edge", k, ok)
	}
	// The method value e.mem.Load resolves through CHA as FuncValue edges.
	for _, impl := range []string{"core.Table.Load", "core.Flat.Load"} {
		if k, ok := edge(t, g, "core.Engine.Spawn", impl); !ok || k != FuncValue {
			t.Errorf("Spawn → %s: got (%v, %v), want FuncValue edge", impl, k, ok)
		}
	}
}

func TestDynamicCallRecorded(t *testing.T) {
	g := fixtureGraph(t)
	step := g.Node("core.Engine.Step")
	if step == nil {
		t.Fatal("no node core.Engine.Step")
	}
	if len(step.Dyn) != 1 {
		t.Fatalf("Step.Dyn: got %d sites, want 1 (the e.hook(addr) call)", len(step.Dyn))
	}
}

func TestReachabilityAndWitness(t *testing.T) {
	g := fixtureGraph(t)
	r := g.Reach([]*Node{g.Node("app.Drive")}, nil)

	for _, id := range []string{"app.Drive", "core.Engine.Step", "core.Table.Load", "core.Flat.Load", "core.helper"} {
		if !r.Has(g.Node(id)) {
			t.Errorf("%s not reachable from app.Drive", id)
		}
	}
	for _, id := range []string{"app.Detached", "core.Engine.Spawn", "core.Engine.Spawn$1"} {
		if r.Has(g.Node(id)) {
			t.Errorf("%s reachable from app.Drive; want unreachable", id)
		}
	}

	helper := g.Node("core.helper")
	got := Chain(helper, r.Path(helper))
	want := "Drive → Engine.Step → Table.Load → helper"
	if got != want {
		t.Errorf("witness chain: got %q, want %q", got, want)
	}
	if r.Path(g.Node("app.Drive")) != nil {
		t.Error("Path of a root: want nil")
	}
	if r.Path(g.Node("app.Detached")) != nil {
		t.Error("Path of an unreachable node: want nil")
	}
}

func TestReachFilterStopsTraversal(t *testing.T) {
	g := fixtureGraph(t)
	r := g.Reach([]*Node{g.Node("app.Drive")}, func(caller *Node, e Edge) bool {
		return e.Callee.ID != "core.Table.Load"
	})
	if r.Has(g.Node("core.Table.Load")) {
		t.Error("filtered edge still traversed")
	}
	if !r.Has(g.Node("core.Flat.Load")) {
		t.Error("unfiltered sibling edge lost")
	}
	// helper is only reachable through Table.Load, so the filter prunes it.
	if r.Has(g.Node("core.helper")) {
		t.Error("core.helper reachable despite its only path being filtered")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	g1 := Build(fixtureGraph(t).Module)
	g2 := Build(fixtureGraph(t).Module)
	s1, s2 := g1.Sorted(), g2.Sorted()
	if len(s1) != len(s2) {
		t.Fatalf("node counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].ID != s2[i].ID {
			t.Fatalf("node order differs at %d: %s vs %s", i, s1[i].ID, s2[i].ID)
		}
		if len(s1[i].Out) != len(s2[i].Out) {
			t.Fatalf("%s: edge counts differ", s1[i].ID)
		}
		for j := range s1[i].Out {
			a, b := s1[i].Out[j], s2[i].Out[j]
			if a.Callee.ID != b.Callee.ID || a.Kind != b.Kind || a.Site != b.Site {
				t.Fatalf("%s: edge %d differs", s1[i].ID, j)
			}
		}
	}
}

func TestShortNames(t *testing.T) {
	g := fixtureGraph(t)
	for id, want := range map[string]string{
		"core.Engine.Step":    "Engine.Step",
		"core.Engine.Spawn$1": "Engine.Spawn$1",
		"app.Drive":           "Drive",
	} {
		n := g.Node(id)
		if n == nil {
			t.Fatalf("no node %q", id)
		}
		if n.Short() != want {
			t.Errorf("Short(%s): got %q, want %q", id, n.Short(), want)
		}
	}
	if !strings.Contains(Chain(g.Node("app.Drive"), nil), "Drive") {
		t.Error("Chain with empty path must fall back to the node's own name")
	}
}
