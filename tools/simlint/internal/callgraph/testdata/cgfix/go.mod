module cgfix

go 1.22
