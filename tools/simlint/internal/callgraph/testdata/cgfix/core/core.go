// Package core is the callgraph test fixture's "hot" side: an engine
// stepping through an interface, closures, method values, and a dynamic
// call the graph must refuse to resolve.
package core

// Mem is dispatched through CHA: both Table and Flat implement it.
type Mem interface {
	Load(addr uint64) uint64
}

type Engine struct {
	mem   Mem
	hook  func(uint64)
	count uint64
}

// Step calls through the interface and through a function-typed field.
func (e *Engine) Step(addr uint64) uint64 {
	e.count++
	if e.hook != nil {
		e.hook(addr) // dynamic: recorded as a Dyn site, not an edge
	}
	return e.mem.Load(addr)
}

// Spawn creates a closure that calls Step, and takes a method value.
func (e *Engine) Spawn(addr uint64) func() uint64 {
	f := e.mem.Load // method value on an interface: CHA edges
	_ = f
	return func() uint64 {
		return e.Step(addr)
	}
}

type Table struct {
	data map[uint64]uint64
}

func (t *Table) Load(addr uint64) uint64 {
	return t.data[addr] + helper(addr)
}

type Flat struct {
	data []uint64
}

func (f *Flat) Load(addr uint64) uint64 {
	return f.data[addr%uint64(len(f.data))]
}

func helper(addr uint64) uint64 {
	return addr >> 1
}
