// Package app is the cross-package side of the callgraph fixture: it calls
// into core, so edges must cross packages in import-topological order.
package app

import "cgfix/core"

// Drive is the fixture's reachability root.
func Drive(e *core.Engine, n int) uint64 {
	var sum uint64
	for i := 0; i < n; i++ {
		sum += e.Step(uint64(i))
	}
	return sum
}

// Detached is not reachable from Drive.
func Detached(e *core.Engine) func() uint64 {
	return e.Spawn(0)
}
