package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestApplyFixesOverlap pins the conflict policy: of two fixes editing the
// same range, the first (in finding order) wins, the second is skipped and
// counted, and the surviving edit is applied exactly once.
func TestApplyFixesOverlap(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"a.go":   "package demo\n\nconst A = 1\n",
	})
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}

	var lit *ast.BasicLit
	ast.Inspect(m.Pkgs[0].Files[0], func(n ast.Node) bool {
		if b, ok := n.(*ast.BasicLit); ok {
			lit = b
		}
		return true
	})
	if lit == nil {
		t.Fatal("no literal found in fixture")
	}

	mk := func(msg, repl string) Finding {
		return Finding{
			Pos:  m.Fset.Position(lit.Pos()),
			Rule: "stub",
			Msg:  msg,
			Fix: &Fix{Message: msg, Edits: []TextEdit{
				{Pos: lit.Pos(), End: lit.End(), New: repl},
			}},
		}
	}
	res, err := ApplyFixes(m, []Finding{mk("first", "2"), mk("second", "3")})
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Errorf("applied %d, skipped %d; want 1 and 1", res.Applied, res.Skipped)
	}
	src, err := os.ReadFile(filepath.Join(root, "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "const A = 2") {
		t.Errorf("file after fixes:\n%s\nwant the first fix's value 2", src)
	}
}

// TestApplyFixesNoFixes is the no-op path: findings without fixes touch
// nothing.
func TestApplyFixesNoFixes(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"a.go":   "package demo\n\nconst A = 1\n",
	})
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	before, _ := os.ReadFile(filepath.Join(root, "a.go"))
	res, err := ApplyFixes(m, []Finding{{Rule: "stub", Msg: "no fix"}})
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if res.Applied != 0 || res.Skipped != 0 || len(res.Files) != 0 {
		t.Errorf("no-fix run reported %+v, want zeroes", res)
	}
	after, _ := os.ReadFile(filepath.Join(root, "a.go"))
	if string(before) != string(after) {
		t.Error("file changed with no fixes to apply")
	}
}
