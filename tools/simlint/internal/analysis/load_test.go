package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a throwaway module for loader tests. Deliberately
// unparsable content in the skipped locations proves they are skipped: the
// loader fails on the first parse error, so loading succeeds only if those
// files were never opened.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadModule(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		// The root package imports a subpackage, so the topological Order
		// must list inner before the root even though the walk finds the
		// root first.
		"a.go":             "package demo\n\nimport \"demo/inner\"\n\nconst Root = inner.V\n",
		"inner/inner.go":   "package inner\n\nconst V = 1\n",
		"a_test.go":        "package demo\n\nthis is not Go",
		"inner/_draft.go":  "neither is this",
		"inner/.hidden.go": "nor this",
		"testdata/x/x.go":  "package x\n\nbroken(",
		".git/g.go":        "package g\n\nbroken(",
		"_attic/old.go":    "package old\n\nbroken(",
		"docs/notes.txt":   "not Go at all",
	})

	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if m.Path != "demo" {
		t.Errorf("module path = %q, want demo", m.Path)
	}
	var rels []string
	for _, p := range m.Pkgs {
		rels = append(rels, p.Rel)
	}
	if want := []string{"", "inner"}; strings.Join(rels, ",") != strings.Join(want, ",") {
		t.Errorf("loaded packages %v, want %v (testdata, dot and underscore dirs skipped)", rels, want)
	}
	if len(m.Order) != 2 || m.Order[0].Rel != "inner" || m.Order[1].Rel != "" {
		var order []string
		for _, p := range m.Order {
			order = append(order, p.Rel)
		}
		t.Errorf("Order = %v, want [inner <root>]: imports must come first", order)
	}
	if p := m.ByRel("inner"); p == nil || p.Path != "demo/inner" {
		t.Errorf("ByRel(inner) = %+v, want import path demo/inner", p)
	}
	if got := m.RelFile(filepath.Join(m.Root, "inner", "inner.go")); got != "inner/inner.go" {
		t.Errorf("RelFile = %q, want inner/inner.go", got)
	}
	if got := m.RelFile("/elsewhere/file.go"); got != "/elsewhere/file.go" {
		t.Errorf("RelFile outside the module = %q, want the path unchanged", got)
	}
}

func TestLoadModuleExcludesTestFiles(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"a.go":   "package demo\n\nconst A = 1\n",
		// Would fail to type-check if loaded: _test.go files are out of
		// scope by design.
		"a_test.go": "package demo\n\nconst A = redeclared\n",
	})
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, f := range m.Pkgs[0].Files {
		name := filepath.Base(m.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loaded test file %s", name)
		}
	}
}

func TestLoadModuleRequiresModuleRoot(t *testing.T) {
	if _, err := LoadModule(t.TempDir()); err == nil {
		t.Fatal("LoadModule on a directory without go.mod succeeded, want error")
	} else if !strings.Contains(err.Error(), "not a module root") {
		t.Errorf("error = %v, want a 'not a module root' diagnosis", err)
	}
}

func TestLoadModuleRequiresModuleLine(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{"go.mod": "go 1.22\n"})
	if _, err := LoadModule(root); err == nil {
		t.Fatal("LoadModule without a module line succeeded, want error")
	} else if !strings.Contains(err.Error(), "no module line") {
		t.Errorf("error = %v, want a 'no module line' diagnosis", err)
	}
}
