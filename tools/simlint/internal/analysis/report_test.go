package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func finding(file string, line int, rule, msg string) Finding {
	return Finding{Pos: token.Position{Filename: file, Line: line}, Rule: rule, Msg: msg}
}

// TestBaselineSplit pins the matching semantics: (file, rule, msg) exact,
// line numbers ignored so baselined findings survive unrelated edits.
func TestBaselineSplit(t *testing.T) {
	b := &Baseline{Schema: BaselineSchema, Findings: []ReportFinding{
		{File: "a.go", Rule: "units", Msg: "known"},
	}}
	fs := []Finding{
		finding("a.go", 99, "units", "known"), // line differs: still baselined
		finding("a.go", 10, "units", "new message"),
		finding("b.go", 10, "units", "known"), // file differs: not baselined
	}
	newF, based := b.Split(fs)
	if len(based) != 1 || based[0].Pos.Line != 99 {
		t.Fatalf("baselined = %+v, want the a.go:99 finding", based)
	}
	if len(newF) != 2 {
		t.Fatalf("new = %+v, want 2 findings", newF)
	}
}

// TestBaselineRoundTrip writes findings as a baseline, reloads it, and
// checks every written finding now splits as baselined. A missing file must
// read back as an empty baseline.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")

	empty, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline(missing): %v", err)
	}
	if len(empty.Findings) != 0 {
		t.Fatalf("missing baseline not empty: %+v", empty.Findings)
	}

	fs := []Finding{
		finding("x.go", 3, "errwrap", "msg one"),
		finding("y.go", 7, "goroleak", "msg two"),
	}
	if err := WriteBaseline(path, fs); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	newF, based := b.Split(fs)
	if len(newF) != 0 || len(based) != 2 {
		t.Fatalf("round trip: new=%d baselined=%d, want 0/2", len(newF), len(based))
	}
}

// TestBaselineSchemaRejected pins the schema check.
func TestBaselineSchemaRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	if err := writeJSON(path, Baseline{Schema: "bogus/v0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("LoadBaseline accepted a wrong schema")
	}
}
