package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ReportSchema versions the machine-readable lint report.
const ReportSchema = "scalesim/simlint-report/v1"

// BaselineSchema versions the committed baseline file.
const BaselineSchema = "scalesim/simlint-baseline/v1"

// ReportFinding is one diagnostic in the JSON report and the baseline.
// Baseline matching deliberately ignores the line number: a baselined
// finding should survive unrelated edits to the same file, and a rule firing
// at a new site with a new message is still caught because messages name the
// offending symbol.
type ReportFinding struct {
	File string `json:"file"`
	Line int    `json:"line,omitempty"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
	// Fixable marks findings whose diagnostic carries a suggested fix that
	// `simlint -fix` can apply. Never set in baseline files (it is not part
	// of the match key).
	Fixable bool `json:"fixable,omitempty"`
}

// Report is the machine-readable result of a lint run, written by
// `make lint` as simlint-report.json and uploaded by CI.
type Report struct {
	Schema string   `json:"schema"`
	Module string   `json:"module"`
	Rules  []string `json:"rules"`
	// Findings are the diagnostics NOT covered by the baseline — the set
	// that fails the run.
	Findings []ReportFinding `json:"findings"`
	// Baselined are diagnostics matched by the committed baseline: reported
	// for visibility, but not failing.
	Baselined []ReportFinding `json:"baselined,omitempty"`
}

// Baseline is the committed set of accepted diagnostics. CI fails on any
// finding not listed here; an empty findings list means the tree must lint
// clean.
type Baseline struct {
	Schema   string          `json:"schema"`
	Findings []ReportFinding `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// so fresh checkouts and fixture modules need no baseline at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Schema: BaselineSchema}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("simlint: baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("simlint: baseline %s has schema %q, this build reads %s", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

type baselineKey struct {
	file, rule, msg string
}

// Split partitions findings into (new, baselined) against the baseline.
func (b *Baseline) Split(fs []Finding) (newFindings, baselined []Finding) {
	accepted := map[baselineKey]bool{}
	for _, f := range b.Findings {
		accepted[baselineKey{f.File, f.Rule, f.Msg}] = true
	}
	for _, f := range fs {
		if accepted[baselineKey{f.Pos.Filename, f.Rule, f.Msg}] {
			baselined = append(baselined, f)
		} else {
			newFindings = append(newFindings, f)
		}
	}
	return newFindings, baselined
}

// WriteBaseline writes every current finding as the new accepted set,
// deterministically ordered.
func WriteBaseline(path string, fs []Finding) error {
	b := Baseline{Schema: BaselineSchema, Findings: toReportFindings(fs, false)}
	if b.Findings == nil {
		b.Findings = []ReportFinding{}
	}
	return writeJSON(path, b)
}

// BuildReport assembles the JSON report for a lint run.
func BuildReport(module string, ruleNames []string, newFindings, baselined []Finding) Report {
	rules := append([]string(nil), ruleNames...)
	sort.Strings(rules)
	r := Report{
		Schema:    ReportSchema,
		Module:    module,
		Rules:     rules,
		Findings:  toReportFindings(newFindings, true),
		Baselined: toReportFindings(baselined, true),
	}
	if r.Findings == nil {
		r.Findings = []ReportFinding{}
	}
	return r
}

// WriteReport writes the report as indented JSON, newline-terminated.
func WriteReport(path string, r Report) error {
	return writeJSON(path, r)
}

func toReportFindings(fs []Finding, withLine bool) []ReportFinding {
	var out []ReportFinding
	for _, f := range fs {
		rf := ReportFinding{File: f.Pos.Filename, Rule: f.Rule, Msg: f.Msg}
		if withLine {
			rf.Line = f.Pos.Line
			rf.Fixable = f.Fix != nil
		}
		out = append(out, rf)
	}
	return out
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
