package analysis

import (
	"fmt"
	"os"
	"sort"
)

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Applied counts the fixes whose edits were written.
	Applied int
	// Skipped counts the fixes dropped because they overlapped an
	// earlier-applied fix in the same file.
	Skipped int
	// Files lists the rewritten files (module-root relative), sorted.
	Files []string
}

// ApplyFixes applies the suggested fix of every finding that carries one.
// Each fix is atomic — all of its edits or none — and fixes within a file
// are applied in position order, later offsets first, so earlier offsets
// stay valid; a fix overlapping an already-accepted one is skipped (a
// second run after the first rewrite picks it up if its finding survives).
// Files are rewritten in place with their original permissions. Fixes are
// idempotent by contract: once applied, the rule no longer fires, so
// running -fix twice never edits twice.
func ApplyFixes(m *Module, findings []Finding) (FixResult, error) {
	var res FixResult

	type span struct {
		start, end int
		new        string
	}
	type fileFixes struct {
		abs   string
		fixes [][]span // one inner slice per atomic fix
	}
	byFile := map[string]*fileFixes{} // keyed by module-relative path

	for _, f := range findings {
		if f.Fix == nil || len(f.Fix.Edits) == 0 {
			continue
		}
		spans := make([]span, 0, len(f.Fix.Edits))
		rel, abs := "", ""
		ok := true
		for _, e := range f.Fix.Edits {
			p, q := m.Fset.Position(e.Pos), m.Fset.Position(e.End)
			if p.Filename == "" || p.Filename != q.Filename || q.Offset < p.Offset {
				ok = false
				break
			}
			if abs == "" {
				abs, rel = p.Filename, m.RelFile(p.Filename)
			} else if p.Filename != abs {
				ok = false // a fix never spans files
				break
			}
			spans = append(spans, span{p.Offset, q.Offset, e.New})
		}
		if !ok {
			res.Skipped++
			continue
		}
		ff := byFile[rel]
		if ff == nil {
			ff = &fileFixes{abs: abs}
			byFile[rel] = ff
		}
		ff.fixes = append(ff.fixes, spans)
	}

	rels := make([]string, 0, len(byFile))
	for rel := range byFile {
		rels = append(rels, rel)
	}
	sort.Strings(rels)

	for _, rel := range rels {
		ff := byFile[rel]
		src, err := os.ReadFile(ff.abs)
		if err != nil {
			return res, fmt.Errorf("simlint: fix %s: %w", rel, err)
		}
		info, err := os.Stat(ff.abs)
		if err != nil {
			return res, fmt.Errorf("simlint: fix %s: %w", rel, err)
		}

		// Accept fixes in ascending start order, dropping overlaps; then
		// apply the accepted spans back-to-front.
		sort.SliceStable(ff.fixes, func(i, j int) bool {
			return ff.fixes[i][0].start < ff.fixes[j][0].start
		})
		var accepted []span
		hi := -1
		for _, fix := range ff.fixes {
			sort.Slice(fix, func(i, j int) bool { return fix[i].start < fix[j].start })
			conflict := fix[0].start < hi || fix[len(fix)-1].end > len(src)
			for i := 1; i < len(fix) && !conflict; i++ {
				conflict = fix[i].start < fix[i-1].end
			}
			if conflict {
				res.Skipped++
				continue
			}
			accepted = append(accepted, fix...)
			hi = fix[len(fix)-1].end
			res.Applied++
		}
		if len(accepted) == 0 {
			continue
		}
		for i := len(accepted) - 1; i >= 0; i-- {
			s := accepted[i]
			src = append(src[:s.start], append([]byte(s.new), src[s.end:]...)...)
		}
		if err := os.WriteFile(ff.abs, src, info.Mode().Perm()); err != nil {
			return res, fmt.Errorf("simlint: fix %s: %w", rel, err)
		}
		res.Files = append(res.Files, rel)
	}
	return res, nil
}
