package analysis

import (
	"encoding/json"
	"go/token"
	"testing"
)

type stubAnalyzer struct{ name, doc string }

func (a stubAnalyzer) Name() string { return a.name }
func (a stubAnalyzer) Doc() string  { return a.doc }

// TestSARIFRequiredFields validates the emitted document against the SARIF
// 2.1.0 required-field set GitHub code scanning rejects uploads without:
// version, $schema, runs[].tool.driver.name, and per result ruleId, level,
// message.text and a physical location with artifact URI and start line.
// The check goes through a generic unmarshal so a struct-tag typo cannot
// hide from it.
func TestSARIFRequiredFields(t *testing.T) {
	finding := Finding{
		Pos:  token.Position{Filename: "internal/runner/runner.go", Line: 42, Column: 7},
		Rule: "approxflow",
		Msg:  "approximate value flows into the store",
	}
	accepted := Finding{
		Pos:  token.Position{Filename: "internal/store/store.go", Line: 9},
		Rule: "lockscope",
		Msg:  "mutex held across IO",
	}
	log := BuildSARIF(
		[]Analyzer{stubAnalyzer{"approxflow", "no predictions in ground truth"}},
		[]Finding{finding}, []Finding{accepted})

	data, err := json.Marshal(log)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	if s, _ := doc["$schema"].(string); s != SARIFSchema {
		t.Errorf("$schema = %q, want %q", s, SARIFSchema)
	}
	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs has %d entries, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if name, _ := driver["name"].(string); name != "simlint" {
		t.Errorf("tool.driver.name = %q, want simlint", name)
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) != 1 || rules[0].(map[string]any)["id"] != "approxflow" {
		t.Errorf("driver.rules = %v, want one rule with id approxflow", rules)
	}

	results, _ := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results has %d entries, want 2 (new + baselined)", len(results))
	}
	wantLevels := []string{"error", "note"}
	for i, raw := range results {
		r := raw.(map[string]any)
		if r["ruleId"] == "" || r["ruleId"] == nil {
			t.Errorf("results[%d] has no ruleId", i)
		}
		if lvl, _ := r["level"].(string); lvl != wantLevels[i] {
			t.Errorf("results[%d].level = %q, want %q", i, lvl, wantLevels[i])
		}
		msg, _ := r["message"].(map[string]any)
		if text, _ := msg["text"].(string); text == "" {
			t.Errorf("results[%d].message.text is empty", i)
		}
		locs, _ := r["locations"].([]any)
		if len(locs) != 1 {
			t.Fatalf("results[%d] has %d locations, want 1", i, len(locs))
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		art := phys["artifactLocation"].(map[string]any)
		if uri, _ := art["uri"].(string); uri == "" {
			t.Errorf("results[%d] artifactLocation.uri is empty", i)
		}
		region := phys["region"].(map[string]any)
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("results[%d] region.startLine = %v, want >= 1", i, region["startLine"])
		}
		if _, ok := r["codeFlows"]; ok {
			t.Errorf("results[%d] has codeFlows despite the finding carrying no Flow", i)
		}
	}
}

// TestSARIFCodeFlows pins the codeFlow shape an interprocedural witness
// chain renders to: one codeFlow with one threadFlow, one location per
// FlowStep, each carrying the step's position and message. The walk goes
// through a generic unmarshal like the required-field test, so the nested
// struct tags are validated too.
func TestSARIFCodeFlows(t *testing.T) {
	finding := Finding{
		Pos:  token.Position{Filename: "internal/sim/epoch.go", Line: 115, Column: 11},
		Rule: "hotpath",
		Msg:  "hot path (Core.Run → step): appends",
		Flow: []FlowStep{
			{Pos: token.Position{Filename: "internal/cpu/cpu.go", Line: 80, Column: 1}, Msg: "root Core.Run"},
			{Pos: token.Position{Filename: "internal/cpu/cpu.go", Line: 91, Column: 3}, Msg: "Core.Run calls Core.step"},
			{Pos: token.Position{Filename: "internal/sim/epoch.go", Line: 115, Column: 11}, Msg: "coreCtx.llcAccess appends"},
		},
	}
	log := BuildSARIF([]Analyzer{stubAnalyzer{"hotpath", "hot code must not allocate"}},
		[]Finding{finding}, nil)

	data, err := json.Marshal(log)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	result := doc["runs"].([]any)[0].(map[string]any)["results"].([]any)[0].(map[string]any)
	flows, _ := result["codeFlows"].([]any)
	if len(flows) != 1 {
		t.Fatalf("codeFlows has %d entries, want 1", len(flows))
	}
	threads, _ := flows[0].(map[string]any)["threadFlows"].([]any)
	if len(threads) != 1 {
		t.Fatalf("threadFlows has %d entries, want 1", len(threads))
	}
	locs, _ := threads[0].(map[string]any)["locations"].([]any)
	if len(locs) != len(finding.Flow) {
		t.Fatalf("threadFlow has %d locations, want %d", len(locs), len(finding.Flow))
	}
	for i, raw := range locs {
		loc := raw.(map[string]any)["location"].(map[string]any)
		phys := loc["physicalLocation"].(map[string]any)
		uri := phys["artifactLocation"].(map[string]any)["uri"].(string)
		line := phys["region"].(map[string]any)["startLine"].(float64)
		if uri != finding.Flow[i].Pos.Filename || int(line) != finding.Flow[i].Pos.Line {
			t.Errorf("step %d at %s:%v, want %s:%d", i, uri, line, finding.Flow[i].Pos.Filename, finding.Flow[i].Pos.Line)
		}
		msg := loc["message"].(map[string]any)["text"].(string)
		if msg != finding.Flow[i].Msg {
			t.Errorf("step %d message %q, want %q", i, msg, finding.Flow[i].Msg)
		}
	}
}
