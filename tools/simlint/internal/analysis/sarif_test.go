package analysis

import (
	"encoding/json"
	"go/token"
	"testing"
)

type stubAnalyzer struct{ name, doc string }

func (a stubAnalyzer) Name() string { return a.name }
func (a stubAnalyzer) Doc() string  { return a.doc }

// TestSARIFRequiredFields validates the emitted document against the SARIF
// 2.1.0 required-field set GitHub code scanning rejects uploads without:
// version, $schema, runs[].tool.driver.name, and per result ruleId, level,
// message.text and a physical location with artifact URI and start line.
// The check goes through a generic unmarshal so a struct-tag typo cannot
// hide from it.
func TestSARIFRequiredFields(t *testing.T) {
	finding := Finding{
		Pos:  token.Position{Filename: "internal/runner/runner.go", Line: 42, Column: 7},
		Rule: "approxflow",
		Msg:  "approximate value flows into the store",
	}
	accepted := Finding{
		Pos:  token.Position{Filename: "internal/store/store.go", Line: 9},
		Rule: "lockscope",
		Msg:  "mutex held across IO",
	}
	log := BuildSARIF(
		[]Analyzer{stubAnalyzer{"approxflow", "no predictions in ground truth"}},
		[]Finding{finding}, []Finding{accepted})

	data, err := json.Marshal(log)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	if s, _ := doc["$schema"].(string); s != SARIFSchema {
		t.Errorf("$schema = %q, want %q", s, SARIFSchema)
	}
	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs has %d entries, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if name, _ := driver["name"].(string); name != "simlint" {
		t.Errorf("tool.driver.name = %q, want simlint", name)
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) != 1 || rules[0].(map[string]any)["id"] != "approxflow" {
		t.Errorf("driver.rules = %v, want one rule with id approxflow", rules)
	}

	results, _ := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results has %d entries, want 2 (new + baselined)", len(results))
	}
	wantLevels := []string{"error", "note"}
	for i, raw := range results {
		r := raw.(map[string]any)
		if r["ruleId"] == "" || r["ruleId"] == nil {
			t.Errorf("results[%d] has no ruleId", i)
		}
		if lvl, _ := r["level"].(string); lvl != wantLevels[i] {
			t.Errorf("results[%d].level = %q, want %q", i, lvl, wantLevels[i])
		}
		msg, _ := r["message"].(map[string]any)
		if text, _ := msg["text"].(string); text == "" {
			t.Errorf("results[%d].message.text is empty", i)
		}
		locs, _ := r["locations"].([]any)
		if len(locs) != 1 {
			t.Fatalf("results[%d] has %d locations, want 1", i, len(locs))
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		art := phys["artifactLocation"].(map[string]any)
		if uri, _ := art["uri"].(string); uri == "" {
			t.Errorf("results[%d] artifactLocation.uri is empty", i)
		}
		region := phys["region"].(map[string]any)
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("results[%d] region.startLine = %v, want >= 1", i, region["startLine"])
		}
	}
}
