// Module loading: parse and type-check every package of the module under
// analysis using only the standard library.
//
// The loader walks the module tree, parses each package directory with
// go/parser (comments retained — suppressions live in them), and
// type-checks with go/types. Imports inside the module are resolved
// recursively through the loader itself; standard-library imports are
// resolved by the toolchain's source importer, which compiles export
// information from $GOROOT/src and therefore works offline. Third-party
// imports are unsupported by design: the module is dependency-free and the
// linter enforces its invariants, not the ecosystem's.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Rel   string // module-relative directory; "" is the module root package
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the fully loaded module: every package type-checked against a
// shared FileSet.
type Module struct {
	Root string // absolute module root
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by Rel

	// Order lists the packages in type-check completion order, which is a
	// topological order of the import graph: a package always appears after
	// everything it imports. Analyzers that export facts from a package and
	// consume them in its importers must visit packages in this order.
	Order []*Package

	byRel map[string]*Package
}

// ByRel returns the package in the given module-relative directory, or nil.
func (m *Module) ByRel(rel string) *Package { return m.byRel[rel] }

// RelFile renders an absolute file position path relative to the module
// root, for stable, machine-independent output.
func (m *Module) RelFile(filename string) string {
	if rel, err := filepath.Rel(m.Root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

// LoadModule parses and type-checks every package under root. It fails on
// the first parse or type error: the linter only runs on trees that build.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("simlint: %s is not a module root: %w", abs, err)
	}
	match := moduleLineRE.FindSubmatch(gomod)
	if match == nil {
		return nil, fmt.Errorf("simlint: no module line in %s/go.mod", abs)
	}
	mod := &Module{
		Root:  abs,
		Path:  string(match[1]),
		Fset:  token.NewFileSet(),
		byRel: map[string]*Package{},
	}
	l := &loader{
		mod:     mod,
		std:     importer.ForCompiler(mod.Fset, "source", nil),
		loading: map[string]bool{},
	}

	var rels []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			rel, err := filepath.Rel(abs, filepath.Dir(path))
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rels = append(rels, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	rels = dedupe(rels)
	for _, rel := range rels {
		if _, err := l.load(rel); err != nil {
			return nil, err
		}
	}
	mod.Order = append([]*Package(nil), mod.Pkgs...)
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Rel < mod.Pkgs[j].Rel })
	return mod, nil
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// loader resolves imports: module-internal paths recursively through load,
// everything else through the toolchain source importer.
type loader struct {
	mod     *Module
	std     types.Importer
	loading map[string]bool
}

func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.mod.Path), "/")
		p, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in the module-relative directory
// rel, memoized on the Module. A package is appended to Module.Pkgs only
// after its imports finished loading, so the append order is topological.
func (l *loader) load(rel string) (*Package, error) {
	if p, ok := l.mod.byRel[rel]; ok {
		return p, nil
	}
	if l.loading[rel] {
		return nil, fmt.Errorf("simlint: import cycle through %q", rel)
	}
	l.loading[rel] = true
	defer func() { delete(l.loading, rel) }()

	dir := filepath.Join(l.mod.Root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.mod.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("simlint: no Go files in %s", dir)
	}

	importPath := l.mod.Path
	if rel != "" {
		importPath += "/" + rel
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.mod.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("simlint: type-checking %s: %w", importPath, err)
	}
	p := &Package{Rel: rel, Path: importPath, Dir: dir, Files: files, Pkg: pkg, Info: info}
	l.mod.byRel[rel] = p
	l.mod.Pkgs = append(l.mod.Pkgs, p)
	return p, nil
}
