// Package analysis is the simlint analyzer framework: a shared type-checked
// module load, an Analyzer interface with per-package facts, suppression
// comments, deterministically sorted diagnostics, and a JSON report format
// with a committed baseline for CI.
//
// Rules live in the sibling package rules; the framework knows nothing about
// individual invariants.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic. Findings render as "file:line: [rule] msg"
// with the file path relative to the module root, and are always emitted in
// (file, line, column, rule, message) order so simlint's own output is
// deterministic and golden-testable.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	// Fix, when non-nil, is a machine-applicable remediation: `simlint -fix`
	// applies the edits (see ApplyFixes). Fixes never change what a rule
	// reports — they ride along on the finding.
	Fix *Fix
	// Flow, when non-nil, is the finding's interprocedural witness: the
	// call chain from a configured root to the flagged site, in call order.
	// The interprocedural rules (hotpath, sharestrict) attach it so output
	// explains *why* a function is hot or worker-reachable; it renders as a
	// SARIF codeFlow.
	Flow []FlowStep
}

// FlowStep is one hop of a finding's witness chain: a source position and
// what happens there ("Core.Run calls step").
type FlowStep struct {
	Pos token.Position
	Msg string
}

// Fix is a suggested remediation: a set of source edits that resolve the
// finding. Applying a fix must be idempotent — once applied, the rule no
// longer fires, so a second run produces no further edits.
type Fix struct {
	// Message describes the remediation ("replace context.Background() with
	// the ctx parameter").
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the source range [Pos, End) with New. Positions are
// token.Pos values from the module's shared FileSet.
type TextEdit struct {
	Pos, End token.Pos
	New      string
}

// Analyzer is one repo-specific rule. Every analyzer implements exactly one
// of PackageAnalyzer (run once per package, in import-topological order) or
// ModuleAnalyzer (run once over the whole module).
type Analyzer interface {
	// Name is the rule name used in diagnostics and suppressions.
	Name() string
	// Doc is a one-line description shown by the driver's -rules listing.
	Doc() string
}

// PackageAnalyzer runs once per package. Packages are visited in
// import-topological order, so facts exported from a package are visible
// when its importers are analyzed.
type PackageAnalyzer interface {
	Analyzer
	Run(pass *Pass) []Finding
}

// ModuleAnalyzer runs once over the fully loaded module; rules that
// cross-check one file against types declared elsewhere (keydrift) use this
// form.
type ModuleAnalyzer interface {
	Analyzer
	RunModule(m *Module) []Finding
}

// Pass carries one (analyzer, package) unit of work plus the fact store
// shared across packages of the same analyzer.
type Pass struct {
	Module *Module
	Pkg    *Package

	analyzer string
	facts    *factStore
}

// ExportFact records a named fact about the current package, visible to
// later packages of the same analyzer via ImportFact. Facts are namespaced
// per analyzer; rules cannot observe each other's facts.
func (p *Pass) ExportFact(key string, value any) {
	p.facts.set(p.analyzer, p.Pkg.Path, key, value)
}

// ImportFact retrieves a fact exported by this analyzer for the package with
// the given import path. Because packages are visited in import-topological
// order, facts of everything the current package imports are available.
func (p *Pass) ImportFact(pkgPath, key string) (any, bool) {
	return p.facts.get(p.analyzer, pkgPath, key)
}

type factKey struct {
	analyzer string
	pkgPath  string
	key      string
}

type factStore struct{ m map[factKey]any }

func newFactStore() *factStore { return &factStore{m: map[factKey]any{}} }

func (s *factStore) set(analyzer, pkgPath, key string, v any) {
	s.m[factKey{analyzer, pkgPath, key}] = v
}

func (s *factStore) get(analyzer, pkgPath, key string) (any, bool) {
	v, ok := s.m[factKey{analyzer, pkgPath, key}]
	return v, ok
}

// IgnorePrefix introduces a suppression comment:
//
//	//simlint:ignore <rule> <justification>
//
// placed either at the end of the offending line or on its own line
// directly above it. The justification is mandatory and the rule name must
// be a registered analyzer: a malformed suppression does not suppress and is
// itself reported (rule "ignore").
const IgnorePrefix = "simlint:ignore"

// suppression is one parsed //simlint:ignore comment.
type suppression struct {
	rule   string
	reason string
}

// suppressionIndex maps file -> line -> suppressions declared on that line.
type suppressionIndex map[string]map[int][]suppression

// collectSuppressions parses every //simlint:ignore comment in the module.
// Malformed suppressions (no rule, unknown rule name, or no justification)
// are returned as findings under the "ignore" rule. known holds the
// registered rule names; an unknown name would otherwise silently suppress
// nothing while looking like it suppresses something.
func collectSuppressions(m *Module, known map[string]bool) (suppressionIndex, []Finding) {
	idx := suppressionIndex{}
	var bad []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, IgnorePrefix) {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, IgnorePrefix))
					if len(fields) == 0 {
						bad = append(bad, Finding{Pos: pos, Rule: "ignore",
							Msg: "suppression names no rule; use //simlint:ignore <rule> <justification>"})
						continue
					}
					if !known[fields[0]] {
						bad = append(bad, Finding{Pos: pos, Rule: "ignore",
							Msg: fmt.Sprintf("suppression names unknown rule %q and is ignored; known rules: %s", fields[0], knownRuleList(known))})
						continue
					}
					if len(fields) == 1 {
						bad = append(bad, Finding{Pos: pos, Rule: "ignore",
							Msg: fmt.Sprintf("suppression of %q has no justification and is ignored; state why the rule does not apply", fields[0])})
						continue
					}
					lines := idx[pos.Filename]
					if lines == nil {
						lines = map[int][]suppression{}
						idx[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line],
						suppression{rule: fields[0], reason: strings.Join(fields[1:], " ")})
				}
			}
		}
	}
	return idx, bad
}

func knownRuleList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// suppressed reports whether a finding is covered by a suppression on its
// own line or the line directly above.
func (idx suppressionIndex) suppressed(f Finding) bool {
	lines := idx[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, s := range lines[line] {
			if s.rule == f.Rule {
				return true
			}
		}
	}
	return false
}

// Config selects what the pipeline checks. The zero value is not usable;
// see the driver's defaultConfig for the repository's own settings.
type Config struct {
	// Root is the module root directory.
	Root string
	// Deterministic lists module-relative package directories whose code
	// must be reproducible: maporder and wallclock apply only there.
	Deterministic []string
	// KeyFile is the module-relative path of the canonical cache-key
	// encoder cross-checked by keydrift.
	KeyFile string
	// KeyRoots name the struct types whose field sets the key encoder must
	// cover, as "<module-relative package dir>.<TypeName>". Struct-typed
	// fields of a root (transitively, through pointers, slices and arrays)
	// are checked too.
	KeyRoots []string
	// UnitsDir is the module-relative directory of the package declaring
	// the named quantity types (Cycles, Bytes, ...) that the units analyzer
	// enforces. Empty disables the rule.
	UnitsDir string
	// Goroutines lists module-relative package directories where every `go`
	// statement must be joined through a sync.WaitGroup and the spawning
	// function must accept a context.Context.
	Goroutines []string
	// APIPairMin pins a minimum number of XContext/X pairs per
	// module-relative package directory, so a refactor that hides the pairs
	// from the parser cannot silently void the apipair rule.
	APIPairMin map[string]int
	// ApproxSources name the taint sources of the approxflow rule — calls
	// whose results are approximate (model-derived) values — as
	// "<module-relative pkg dir>.<Type>.<Method>" (or "<dir>.<Func>" for a
	// package-level function).
	ApproxSources []string
	// ApproxSinks name the ground-truth sinks approximate values must never
	// reach, as "<dir>.<Type>.<Method>@<arg index>": the call's argument at
	// that index is the guarded payload.
	ApproxSinks []string
	// ApproxCaches name map-typed struct fields that are ground-truth
	// memoization tiers, as "<dir>.<Type>.<Field>": an index-assignment of
	// an approximate value into such a field is a finding.
	ApproxCaches []string
	// Locks lists module-relative package directories where the lockscope
	// rule enforces mutex hygiene (no blocking operation with a mutex held,
	// no return path that leaks a lock).
	Locks []string
	// HotRoots name the hot-loop entry points of the hotpath rule as
	// "<module-relative pkg dir>.<Type>.<Method>" (or "<dir>.<Func>"):
	// every function reachable from a root through the call graph must be
	// allocation-free (no make/new/append growth, slice or map literals,
	// string concatenation, boxing into interface parameters, closure
	// creation), must not lock, defer, range a map, or call fmt. Escapes
	// use //simlint:hotpath-exempt <justification>. Empty disables the
	// rule.
	HotRoots []string
	// WorkerRoots name the fork/join spawn points of the sharestrict rule:
	// the goroutines launched inside these functions are the epoch worker
	// pool, and nothing they reach may write shared simulator state.
	WorkerRoots []string
	// SharedTypes name the shared structures sharestrict guards, as
	// "<dir>.<Type>": worker-reachable code must not call their mutating
	// methods or write their fields directly.
	SharedTypes []string
	// SharedSafe names shared-type methods that are read-only and safe to
	// call concurrently from workers, as "<dir>.<Type>.<Method>". Methods
	// whose name ends in "Into" (the accumulator convention: reads shared
	// state, writes a thread-local *Acc) are sanctioned implicitly.
	SharedSafe []string
	// KnownRules lists every registered rule name for //simlint:ignore
	// validation. When empty, the names of the analyzers actually run are
	// used — set it when running a rule subset, so suppressions of inactive
	// rules are not misreported as unknown.
	KnownRules []string
}

// Run loads the module and runs every analyzer, returning the surviving
// findings in deterministic order plus the loaded module. Suppression
// comments are validated against cfg.KnownRules when set, otherwise against
// the names of the analyzers run.
func Run(cfg Config, analyzers []Analyzer) ([]Finding, *Module, error) {
	m, err := LoadModule(cfg.Root)
	if err != nil {
		return nil, nil, err
	}
	known := map[string]bool{}
	for _, n := range cfg.KnownRules {
		known[n] = true
	}
	if len(known) == 0 {
		for _, a := range analyzers {
			known[a.Name()] = true
		}
	}
	idx, findings := collectSuppressions(m, known)
	facts := newFactStore()
	for _, a := range analyzers {
		var raw []Finding
		switch a := a.(type) {
		case PackageAnalyzer:
			for _, p := range m.Order {
				pass := &Pass{Module: m, Pkg: p, analyzer: a.Name(), facts: facts}
				raw = append(raw, a.Run(pass)...)
			}
		case ModuleAnalyzer:
			raw = a.RunModule(m)
		default:
			return nil, nil, fmt.Errorf("simlint: analyzer %q implements neither PackageAnalyzer nor ModuleAnalyzer", a.Name())
		}
		for _, f := range raw {
			if !idx.suppressed(f) {
				findings = append(findings, f)
			}
		}
	}
	for i := range findings {
		findings[i].Pos.Filename = m.RelFile(findings[i].Pos.Filename)
		for j := range findings[i].Flow {
			findings[i].Flow[j].Pos.Filename = m.RelFile(findings[i].Flow[j].Pos.Filename)
		}
	}
	SortFindings(findings)
	return findings, m, nil
}

// SortFindings orders findings by (file, line, column, rule, message) so
// output never depends on analyzer or map iteration order.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// Render formats findings one per line as "file:line: [rule] message".
func Render(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d: [%s] %s\n", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
	}
	return b.String()
}

// EnclosingFuncs applies fn to every function declaration with a body in the
// file, giving analyzers a named context for their walks.
func EnclosingFuncs(f *ast.File, fn func(decl *ast.FuncDecl)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd)
		}
	}
}
