// SARIF 2.1.0 output, the interchange format GitHub code scanning ingests.
// Only the fields required by the spec (plus the few GitHub renders) are
// emitted: version, $schema, one run with tool.driver.name and per-rule
// metadata, and one result per finding with ruleId, level, message.text and
// a physical location.
package analysis

import (
	"go/token"
	"path/filepath"
)

// SARIFSchema is the canonical 2.1.0 schema URI.
const SARIFSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// SARIFLog is the document root.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

type SARIFDriver struct {
	Name  string      `json:"name"`
	Rules []SARIFRule `json:"rules,omitempty"`
}

type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

type SARIFMessage struct {
	Text string `json:"text"`
}

type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
	// CodeFlows carries a finding's witness chain (Finding.Flow): the call
	// path from a configured root to the flagged site, one threadFlow
	// location per hop. GitHub code scanning renders it as a step-through.
	CodeFlows []SARIFCodeFlow `json:"codeFlows,omitempty"`
}

type SARIFCodeFlow struct {
	ThreadFlows []SARIFThreadFlow `json:"threadFlows"`
}

type SARIFThreadFlow struct {
	Locations []SARIFThreadFlowLocation `json:"locations"`
}

type SARIFThreadFlowLocation struct {
	Location SARIFLocation `json:"location"`
}

type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
	Message          *SARIFMessage         `json:"message,omitempty"`
}

type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

type SARIFArtifactLocation struct {
	// URI is the module-root-relative path with forward slashes.
	URI string `json:"uri"`
}

type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// BuildSARIF renders a lint run as one SARIF run. New findings are level
// "error" (they fail CI); baselined ones ride along as "note" so code
// scanning shows the accepted debt without gating on it. Findings must
// already be in render order — results keep it, so the document is
// deterministic.
func BuildSARIF(analyzers []Analyzer, newFindings, baselined []Finding) SARIFLog {
	driver := SARIFDriver{Name: "simlint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, SARIFRule{
			ID:               a.Name(),
			ShortDescription: SARIFMessage{Text: a.Doc()},
		})
	}
	results := make([]SARIFResult, 0, len(newFindings)+len(baselined))
	for _, f := range newFindings {
		results = append(results, sarifResult(f, "error"))
	}
	for _, f := range baselined {
		results = append(results, sarifResult(f, "note"))
	}
	return SARIFLog{
		Schema:  SARIFSchema,
		Version: "2.1.0",
		Runs:    []SARIFRun{{Tool: SARIFTool{Driver: driver}, Results: results}},
	}
}

func sarifResult(f Finding, level string) SARIFResult {
	r := SARIFResult{
		RuleID:    f.Rule,
		Level:     level,
		Message:   SARIFMessage{Text: f.Msg},
		Locations: []SARIFLocation{sarifLocation(f.Pos, "")},
	}
	if len(f.Flow) > 0 {
		tf := SARIFThreadFlow{}
		for _, s := range f.Flow {
			tf.Locations = append(tf.Locations, SARIFThreadFlowLocation{
				Location: sarifLocation(s.Pos, s.Msg),
			})
		}
		r.CodeFlows = []SARIFCodeFlow{{ThreadFlows: []SARIFThreadFlow{tf}}}
	}
	return r
}

func sarifLocation(pos token.Position, msg string) SARIFLocation {
	loc := SARIFLocation{PhysicalLocation: SARIFPhysicalLocation{
		ArtifactLocation: SARIFArtifactLocation{URI: filepath.ToSlash(pos.Filename)},
		Region:           SARIFRegion{StartLine: pos.Line, StartColumn: pos.Column},
	}}
	if msg != "" {
		loc.Message = &SARIFMessage{Text: msg}
	}
	return loc
}

// WriteSARIF writes the log as indented JSON, newline-terminated.
func WriteSARIF(path string, log SARIFLog) error {
	return writeJSON(path, log)
}
