// SARIF 2.1.0 output, the interchange format GitHub code scanning ingests.
// Only the fields required by the spec (plus the few GitHub renders) are
// emitted: version, $schema, one run with tool.driver.name and per-rule
// metadata, and one result per finding with ruleId, level, message.text and
// a physical location.
package analysis

import "path/filepath"

// SARIFSchema is the canonical 2.1.0 schema URI.
const SARIFSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// SARIFLog is the document root.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

type SARIFDriver struct {
	Name  string      `json:"name"`
	Rules []SARIFRule `json:"rules,omitempty"`
}

type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

type SARIFMessage struct {
	Text string `json:"text"`
}

type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
}

type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

type SARIFArtifactLocation struct {
	// URI is the module-root-relative path with forward slashes.
	URI string `json:"uri"`
}

type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// BuildSARIF renders a lint run as one SARIF run. New findings are level
// "error" (they fail CI); baselined ones ride along as "note" so code
// scanning shows the accepted debt without gating on it. Findings must
// already be in render order — results keep it, so the document is
// deterministic.
func BuildSARIF(analyzers []Analyzer, newFindings, baselined []Finding) SARIFLog {
	driver := SARIFDriver{Name: "simlint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, SARIFRule{
			ID:               a.Name(),
			ShortDescription: SARIFMessage{Text: a.Doc()},
		})
	}
	results := make([]SARIFResult, 0, len(newFindings)+len(baselined))
	for _, f := range newFindings {
		results = append(results, sarifResult(f, "error"))
	}
	for _, f := range baselined {
		results = append(results, sarifResult(f, "note"))
	}
	return SARIFLog{
		Schema:  SARIFSchema,
		Version: "2.1.0",
		Runs:    []SARIFRun{{Tool: SARIFTool{Driver: driver}, Results: results}},
	}
}

func sarifResult(f Finding, level string) SARIFResult {
	return SARIFResult{
		RuleID:  f.Rule,
		Level:   level,
		Message: SARIFMessage{Text: f.Msg},
		Locations: []SARIFLocation{{PhysicalLocation: SARIFPhysicalLocation{
			ArtifactLocation: SARIFArtifactLocation{URI: filepath.ToSlash(f.Pos.Filename)},
			Region:           SARIFRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
		}}},
	}
}

// WriteSARIF writes the log as indented JSON, newline-terminated.
func WriteSARIF(path string, log SARIFLog) error {
	return writeJSON(path, log)
}
