package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"scalesim/tools/simlint/internal/analysis"
	"scalesim/tools/simlint/internal/flow"
)

// lockscope enforces mutex hygiene in the configured packages: a mutex must
// never be held across an operation that can block indefinitely (a channel
// send or receive outside a select-with-default, a default-less select,
// sync.WaitGroup.Wait, time.Sleep, file or network IO), and no return path
// may leave the function with the lock still held unless the unlock is
// deferred. Both properties are flow-sensitive: the rule runs a forward
// dataflow over the flow package's CFG whose state is, per mutex, "may be
// held without a deferred unlock" / "may be held with one" — tracking the
// two bits separately keeps the join precise, so a locked-with-defer path
// merging with a never-locked path does not fabricate a leak.
//
// sync.Cond.Wait is exempt (its contract requires the lock held), and so is
// a select with a default clause (non-blocking by construction — the
// engine's cache-probe select is the sanctioned idiom). Functions that
// contain a blocking operation poison their callers: same-package callees
// via a local fixpoint, cross-package ones via exported facts.
type lockscope struct {
	pkgs map[string]bool
}

func (lockscope) Name() string { return "lockscope" }
func (lockscope) Doc() string {
	return "no mutex held across blocking operations; no return path leaks a lock"
}

const lockFactKey = "blocking-funcs"

// lockFact is the per-mutex dataflow state, a may-analysis over both
// acquisition modes.
type lockFact uint8

const (
	heldNoDefer   lockFact = 1 << iota // held on some path with no deferred unlock
	heldWithDefer                      // held on some path with a deferred unlock
)

type lockState map[string]lockFact

var lockOps = flow.Ops[lockState]{
	Clone: func(s lockState) lockState {
		out := make(lockState, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	},
	Join: func(dst, src lockState) (lockState, bool) {
		changed := false
		for k, v := range src {
			if dst[k]|v != dst[k] {
				dst[k] |= v
				changed = true
			}
		}
		return dst, changed
	},
	// Transfer is installed per-function (it needs the type info); see run.
}

func (a lockscope) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg
	mod := pass.Module
	if !a.pkgs[p.Rel] {
		return nil
	}

	imported := map[string]string{} // "<pkg path>|<funcKey>" -> blocking reason
	for _, imp := range p.Pkg.Imports() {
		if v, ok := pass.ImportFact(imp.Path(), lockFactKey); ok {
			for k, reason := range v.(map[string]string) {
				imported[imp.Path()+"|"+k] = reason
			}
		}
	}
	blocking := map[*types.Func]string{} // local functions that may block

	// calleeBlocks classifies one resolved callee: a leaf blocking primitive,
	// a locally summarized function, or an imported fact.
	calleeBlocks := func(fn *types.Func) (string, bool) {
		pkg := fn.Pkg()
		if pkg == nil {
			return "", false
		}
		switch pkg.Path() {
		case "sync":
			if fn.Name() == "Wait" && recvTypeName(fn) == "WaitGroup" {
				return "sync.WaitGroup.Wait", true
			}
			return "", false // Mutex ops and Cond.Wait are not sinks
		case "time":
			if fn.Name() == "Sleep" {
				return "time.Sleep", true
			}
			return "", false
		case "os", "net", "net/http", "io", "bufio":
			if ioVerb(fn.Name()) {
				return pkg.Path() + "." + funcKey(fn), true
			}
			return "", false
		}
		if pkg == p.Pkg {
			if reason := blocking[fn]; reason != "" {
				return fmt.Sprintf("%s (which may block on %s)", fn.Name(), reason), true
			}
			return "", false
		}
		if reason := imported[pkg.Path()+"|"+funcKey(fn)]; reason != "" {
			return fmt.Sprintf("%s (which may block on %s)", funcKey(fn), reason), true
		}
		return "", false
	}

	// nodeBlocks classifies one CFG node. Nodes are atomized statements, so
	// the only composite to special-case is the select marker itself; comm
	// clauses are separate nodes recorded in g.Comm and never block on their
	// own (the marker accounts for them).
	nodeBlocks := func(g *flow.Graph, n ast.Node) (string, bool) {
		if stmt, ok := n.(ast.Stmt); ok {
			if _, isComm := g.Comm[stmt]; isComm {
				return "", false
			}
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			if g.SelectHasDefault[sel] {
				return "", false
			}
			return "select with no default clause", true
		}
		reason, found := "", false
		ast.Inspect(n, func(c ast.Node) bool {
			if found {
				return false
			}
			switch c := c.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.SendStmt:
				reason, found = "channel send", true
				return false
			case *ast.UnaryExpr:
				if c.Op == token.ARROW {
					reason, found = "channel receive", true
					return false
				}
			case *ast.CallExpr:
				if fn := calleeOf(p.Info, c); fn != nil {
					if r, ok := calleeBlocks(fn); ok {
						reason, found = r, true
						return false
					}
				}
			}
			return true
		})
		return reason, found
	}

	var declUnits []struct {
		u  funcUnit
		fn *types.Func
		g  *flow.Graph
	}
	var allUnits []struct {
		u funcUnit
		g *flow.Graph
	}
	for _, f := range p.Files {
		for _, u := range funcUnits(f) {
			g := flow.Build(u.body)
			allUnits = append(allUnits, struct {
				u funcUnit
				g *flow.Graph
			}{u, g})
			if u.decl != nil {
				if fn, ok := p.Info.Defs[u.decl.Name].(*types.Func); ok {
					declUnits = append(declUnits, struct {
						u  funcUnit
						fn *types.Func
						g  *flow.Graph
					}{u, fn, g})
				}
			}
		}
	}

	// Fixpoint over local blocking summaries: a function blocks if any of
	// its CFG nodes does, including calls to already-summarized locals.
	for changed := true; changed; {
		changed = false
		for _, d := range declUnits {
			if blocking[d.fn] != "" {
				continue
			}
			for _, blk := range d.g.Blocks {
				for _, n := range blk.Nodes {
					if reason, ok := nodeBlocks(d.g, n); ok {
						blocking[d.fn] = reason
						changed = true
					}
				}
			}
		}
	}

	var out []analysis.Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, analysis.Finding{
			Pos:  mod.Fset.Position(n.Pos()),
			Rule: a.Name(),
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	for _, au := range allUnits {
		u, g := au.u, au.g
		names := map[string]string{} // mutex path -> source rendering
		transfer := func(s lockState, n ast.Node) lockState {
			ast.Inspect(n, func(c ast.Node) bool {
				switch c := c.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				case *ast.DeferStmt:
					if path, op, ok := mutexOp(p.Info, c.Call, names); ok && op == opUnlock {
						if s[path]&heldNoDefer != 0 {
							s[path] = s[path]&^heldNoDefer | heldWithDefer
						}
					}
					return false
				case *ast.CallExpr:
					if path, op, ok := mutexOp(p.Info, c, names); ok {
						switch op {
						case opLock:
							s[path] |= heldNoDefer
						case opUnlock:
							delete(s, path)
						}
					}
				}
				return true
			})
			return s
		}
		ops := lockOps
		ops.Transfer = transfer

		held := func(s lockState, mask lockFact) (string, bool) {
			// Deterministic pick when several mutexes are held.
			best := ""
			for path, f := range s {
				if f&mask != 0 && (best == "" || path < best) {
					best = path
				}
			}
			return names[best], best != ""
		}

		in := flow.Solve(g, lockState{}, ops)
		flow.Replay(g, in, ops, func(s lockState, n ast.Node) {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				if name, ok := held(s, heldNoDefer); ok {
					report(ret, "return in %s with %s still held and no deferred unlock; unlock before returning or defer the unlock", u.name, name)
				}
				return
			}
			if reason, ok := nodeBlocks(g, n); ok {
				if name, ok := held(s, heldNoDefer|heldWithDefer); ok {
					report(n, "%s held across %s in %s; release the lock before any operation that can block", name, reason, u.name)
				}
			}
		})
		for _, ex := range flow.ExitStates(g, in, ops) {
			if ex.Last == nil {
				continue
			}
			if _, isRet := ex.Last.(*ast.ReturnStmt); isRet {
				continue // already checked by the replay pass
			}
			if isPanicNode(p.Info, ex.Last) {
				continue
			}
			if name, ok := held(ex.State, heldNoDefer); ok {
				report(ex.Last, "%s can fall off the end with %s still held and no deferred unlock", u.name, name)
			}
		}
	}

	// Export blocking summaries of exported functions for importing packages.
	exported := map[string]string{}
	for fn, reason := range blocking {
		if fn.Exported() {
			exported[funcKey(fn)] = reason
		}
	}
	pass.ExportFact(lockFactKey, exported)
	return out
}

type mutexOpKind int

const (
	opLock mutexOpKind = iota
	opUnlock
)

// mutexOp classifies a call as a sync.Mutex/RWMutex acquire or release and
// returns the lock's canonical path, recording a human rendering in names.
func mutexOp(info *types.Info, call *ast.CallExpr, names map[string]string) (string, mutexOpKind, bool) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", 0, false
	}
	var op mutexOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", 0, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	path, ok := flow.PathOf(info, sel.X)
	if !ok {
		return "", 0, false
	}
	if names != nil {
		names[path] = types.ExprString(sel.X)
	}
	return path, op, true
}

// isPanicNode reports whether a CFG node is a bare panic call — a held lock
// on a panicking path is the recover story's problem, not a leak.
func isPanicNode(info *types.Info, n ast.Node) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// ioVerb reports whether a function name in an IO package denotes an
// operation that can block on the file system or the network. Close is
// deliberately absent — shutdown paths legitimately close under a lock.
func ioVerb(name string) bool {
	for _, v := range []string{
		"Read", "Write", "Sync", "Seek", "Flush", "Serve", "Accept", "Dial",
		"Listen", "Do", "Shutdown", "Rename", "Remove", "Mkdir", "Create",
		"Open", "Stat", "Truncate", "Copy",
	} {
		if strings.HasPrefix(name, v) {
			return true
		}
	}
	return false
}
