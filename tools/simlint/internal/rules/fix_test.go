package rules

import (
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"scalesim/tools/simlint/internal/analysis"
)

// copyTree copies the fixture module into a scratch directory so -fix can
// rewrite files without dirtying testdata.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy fixture: %v", err)
	}
}

// TestFixIdempotent is the -fix contract test: every finding in the fix
// fixture is fixable, one apply pass rewrites them all into the golden
// form, the rewritten tree is lint-clean, and a second pass applies zero
// further edits.
func TestFixIdempotent(t *testing.T) {
	tmp := t.TempDir()
	copyTree(t, filepath.Join("testdata", "fixfixture"), tmp)

	cfg := analysis.Config{Root: tmp}
	active := []analysis.Analyzer{errwrap{}, ctxflow{}}

	findings, mod, err := analysis.Run(cfg, active)
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	if len(findings) != 3 {
		t.Fatalf("fix fixture produced %d finding(s), want 3:\n%s", len(findings), analysis.Render(findings))
	}
	for _, f := range findings {
		if f.Fix == nil {
			t.Errorf("finding %s:%d [%s] carries no fix", f.Pos.Filename, f.Pos.Line, f.Rule)
		}
	}

	res, err := analysis.ApplyFixes(mod, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if res.Applied != 3 || res.Skipped != 0 {
		t.Errorf("first pass applied %d, skipped %d; want 3 applied, 0 skipped", res.Applied, res.Skipped)
	}
	if len(res.Files) != 1 || res.Files[0] != "fx/fx.go" {
		t.Errorf("rewritten files = %v, want [fx/fx.go]", res.Files)
	}

	fixed, err := os.ReadFile(filepath.Join(tmp, "fx", "fx.go"))
	if err != nil {
		t.Fatalf("read fixed file: %v", err)
	}
	goldenPath := filepath.Join("testdata", "fixfixture.golden")
	if *update {
		if err := os.WriteFile(goldenPath, fixed, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if string(fixed) != string(want) {
		t.Errorf("fixed file differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, fixed, want)
	}

	// Second pass: the rewritten tree must be clean, so -fix is idempotent.
	again, mod2, err := analysis.Run(cfg, active)
	if err != nil {
		t.Fatalf("analysis.Run after fix: %v", err)
	}
	if len(again) != 0 {
		t.Errorf("fixed tree is not lint-clean:\n%s", analysis.Render(again))
	}
	res2, err := analysis.ApplyFixes(mod2, again)
	if err != nil {
		t.Fatalf("second ApplyFixes: %v", err)
	}
	if res2.Applied != 0 || len(res2.Files) != 0 {
		t.Errorf("second pass applied %d edit(s) to %v, want none", res2.Applied, res2.Files)
	}
}
