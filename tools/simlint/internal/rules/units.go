package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"scalesim/tools/simlint/internal/analysis"
)

// unitsRule enforces dimensional consistency over the named quantity types
// declared in the configured units package (internal/units in this repo:
// Cycles, Bytes, BytesPerCycle, Picoseconds). Go's type system already
// rejects direct arithmetic between distinct named types; what it cannot see
// is the type-erased escape hatch, and that is where unit bugs hide. The
// rule flags, in every package of the module:
//
//   - additive arithmetic or comparison whose two operands trace to distinct
//     unit types through float64(...)-style erasing conversions, e.g.
//     float64(cycles) + float64(bytes). Multiplication and division are
//     never flagged — they legitimately change dimension.
//   - a direct conversion from one unit type to another, e.g.
//     Cycles(bytesVal): that reinterprets a quantity, it does not convert
//     it. Dimension changes go through a units helper, or explicitly
//     through a dimensionless float64 (Cycles(float64(b)) is the sanctioned
//     "I mean it" spelling).
//   - a bare numeric literal passed where a unit-typed parameter is
//     declared, e.g. mem.Access(core, pa, 64, false): the literal's unit is
//     invisible at the call site. Use a typed constant or an explicit
//     conversion.
//
// The unit type set is discovered from the units package itself (every
// package-level named type with a numeric underlying type) and exported as a
// per-package fact, so the rule needs no hard-coded type list and works
// unchanged on fixture modules.
type unitsRule struct {
	dir string // module-relative directory of the units package
}

func (unitsRule) Name() string { return "units" }
func (unitsRule) Doc() string {
	return "no arithmetic mixing distinct unit types or bare literals at unit boundaries"
}

const unitsFactKey = "types"

func (a unitsRule) Run(pass *analysis.Pass) []analysis.Finding {
	if a.dir == "" {
		return nil
	}
	unitsPath := pass.Module.Path + "/" + a.dir
	var set map[*types.Named]bool
	if pass.Pkg.Rel == a.dir {
		set = collectUnitTypes(pass.Pkg.Pkg)
		pass.ExportFact(unitsFactKey, set)
	} else if v, ok := pass.ImportFact(unitsPath, unitsFactKey); ok {
		set = v.(map[*types.Named]bool)
	} else {
		// The units package has not been visited yet, so the current
		// package cannot import it (packages run in import-topological
		// order) and cannot mention unit types.
		return nil
	}
	if len(set) == 0 {
		return nil
	}
	w := &unitsWalker{pass: pass, set: set}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, w.visit)
	}
	return w.out
}

// collectUnitTypes gathers every package-level named type of pkg whose
// underlying type is numeric.
func collectUnitTypes(pkg *types.Package) map[*types.Named]bool {
	set := map[*types.Named]bool{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if b, ok := named.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
			set[named] = true
		}
	}
	return set
}

type unitsWalker struct {
	pass *analysis.Pass
	set  map[*types.Named]bool
	out  []analysis.Finding
}

func (w *unitsWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.BinaryExpr:
		w.checkBinary(n)
	case *ast.CallExpr:
		w.checkCall(n)
	}
	return true
}

// additiveOps are the operators that require both operands to share a
// dimension. MUL/QUO are absent by design: they change dimension.
var additiveOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func (w *unitsWalker) checkBinary(b *ast.BinaryExpr) {
	if !additiveOps[b.Op] {
		return
	}
	x, y := w.provenance(b.X), w.provenance(b.Y)
	if x == nil || y == nil || x == y {
		return
	}
	w.report(b.OpPos, "%s mixes units %s and %s; same-dimension math stays in one unit type, dimension changes go through a units helper",
		b.Op, w.typeName(x), w.typeName(y))
}

func (w *unitsWalker) checkCall(call *ast.CallExpr) {
	info := w.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: unit -> unit reinterprets the quantity.
		if len(call.Args) != 1 {
			return
		}
		target := w.unitNamed(tv.Type)
		if target == nil {
			return
		}
		src := w.unitNamed(info.TypeOf(call.Args[0]))
		if src != nil && src != target {
			w.report(call.Pos(), "conversion reinterprets %s as %s; use a units helper, or spell out %s(float64(...)) if the reinterpretation is intended",
				w.typeName(src), w.typeName(target), w.typeName(target))
		}
		return
	}
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, not individual elements
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		named := w.unitNamed(pt)
		if named == nil {
			continue
		}
		if lit := bareLiteral(arg); lit != nil {
			w.report(arg.Pos(), "bare literal %s crosses the %s unit boundary; pass a typed constant or write %s(%s)",
				lit.Value, w.typeName(named), w.typeName(named), lit.Value)
		}
	}
}

// provenance traces an expression to the unit type it carries, following
// through erasing conversions: float64(c) still "is" Cycles for mixing
// purposes, because the erased value recombining with a different unit is
// exactly the bug class this rule exists for.
func (w *unitsWalker) provenance(e ast.Expr) *types.Named {
	e = ast.Unparen(e)
	info := w.pass.Pkg.Info
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			if n := w.unitNamed(tv.Type); n != nil {
				return n
			}
			return w.provenance(call.Args[0])
		}
	}
	return w.unitNamed(info.TypeOf(e))
}

func (w *unitsWalker) unitNamed(t types.Type) *types.Named {
	if n, ok := t.(*types.Named); ok && w.set[n] {
		return n
	}
	return nil
}

func (w *unitsWalker) typeName(n *types.Named) string {
	return types.TypeString(n, types.RelativeTo(w.pass.Pkg.Pkg))
}

func (w *unitsWalker) report(pos token.Pos, format string, args ...any) {
	w.out = append(w.out, analysis.Finding{
		Pos:  w.pass.Module.Fset.Position(pos),
		Rule: "units",
		Msg:  fmt.Sprintf(format, args...),
	})
}

// bareLiteral unwraps parentheses and numeric sign down to a basic literal,
// or nil when the expression names its value (identifier, selector,
// conversion, ...).
func bareLiteral(e ast.Expr) *ast.BasicLit {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.ADD && v.Op != token.SUB {
				return nil
			}
			e = v.X
		case *ast.BasicLit:
			return v
		default:
			return nil
		}
	}
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}
