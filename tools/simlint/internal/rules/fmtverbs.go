package rules

import "strconv"

// verbRef is one formatting verb and the argument index it consumes
// (relative to the first variadic argument). Shared by reflectfmt (hunting
// %v of pointer-carrying values) and errwrap (hunting sentinels passed to
// fmt.Errorf without %w).
type verbRef struct {
	verb  rune
	flags string // the verb's flag characters, e.g. "+" for %+v
	arg   int
}

// verbRefs scans a format string and pairs each verb with its argument
// index, handling %%, flags, star width/precision (each consumes an
// argument) and explicit [n] argument indexes.
func verbRefs(format string) []verbRef {
	var refs []verbRef
	next := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		flags := ""
		for i < len(format) {
			c := format[i]
			switch {
			case c == '+' || c == '-' || c == '#' || c == ' ' || c == '0':
				flags += string(c)
				i++
				continue
			case c == '*':
				next++ // star width/precision consumes an argument
				i++
				continue
			case c >= '1' && c <= '9' || c == '.':
				i++
				continue
			case c == '[':
				j := i + 1
				numEnd := j
				for numEnd < len(format) && format[numEnd] >= '0' && format[numEnd] <= '9' {
					numEnd++
				}
				if numEnd < len(format) && format[numEnd] == ']' {
					if n, err := strconv.Atoi(format[j:numEnd]); err == nil && n >= 1 {
						next = n - 1
					}
					i = numEnd + 1
					continue
				}
			}
			break
		}
		if i >= len(format) {
			break
		}
		refs = append(refs, verbRef{verb: rune(format[i]), flags: flags, arg: next})
		next++
	}
	return refs
}
