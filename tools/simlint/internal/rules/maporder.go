package rules

import (
	"fmt"
	"go/ast"
	"go/types"

	"scalesim/tools/simlint/internal/analysis"
)

// maporder flags `range` over a map type inside a deterministic package.
// Go randomises map iteration order per process, so any map range whose
// body's effect depends on visit order — appending to a slice, consuming an
// RNG, returning the first error, accumulating floats that later differ in
// rounding — makes two runs of the same design point diverge. Iterate a
// sorted key slice instead, or suppress with a justification explaining why
// order provably cannot leak (e.g. the body only writes into another map
// under the same key).
type maporder struct {
	det map[string]bool
}

func (maporder) Name() string { return "maporder" }
func (maporder) Doc() string {
	return "no `range` over maps in deterministic packages"
}

func (a maporder) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg
	if !a.det[p.Rel] {
		return nil
	}
	var out []analysis.Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				out = append(out, analysis.Finding{
					Pos:  pass.Module.Fset.Position(rs.Pos()),
					Rule: a.Name(),
					Msg: fmt.Sprintf("range over %s has nondeterministic iteration order in a deterministic package; iterate sorted keys, or suppress with why order cannot leak",
						types.TypeString(t, types.RelativeTo(p.Pkg))),
				})
			}
			return true
		})
	}
	return out
}
