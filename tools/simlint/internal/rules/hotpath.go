package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"scalesim/tools/simlint/internal/analysis"
	"scalesim/tools/simlint/internal/callgraph"
)

// hotpath proves the epoch simulator's 0-allocs/op invariant statically:
// every function reachable from the configured hot-loop roots (Config
// .HotRoots) through the call graph must not allocate — no make/new, no
// append (growth allocates), no slice/map literals or addressed composite
// literals, no string concatenation, no boxing into interface parameters,
// no closure creation — and must not lock, defer, spawn, touch channels,
// range a map, or call fmt. Dynamic calls through function-typed values
// are flagged too: what cannot be resolved cannot be certified.
//
// Escapes use a dedicated directive validated like suppressions:
//
//	//simlint:hotpath-exempt <justification>
//
// on the offending line, the line above, or the line of (or directly
// above) the func keyword to exempt a whole function — the right form for
// amortized allocators (arena growth, high-water append) that are
// allocation-free at steady state. A directive with no justification, or
// one attached to a function the hot roots do not reach, is itself a
// finding, so exemptions cannot rot silently.
//
// Every finding carries its witness: the shortest call chain from a root,
// rendered in the message and attached as Finding.Flow (a SARIF codeFlow).
type hotpath struct {
	roots []taintSpec
}

func (hotpath) Name() string { return "hotpath" }
func (hotpath) Doc() string {
	return "functions reachable from the hot-loop roots must not allocate, lock, defer, range maps, or call fmt"
}

// HotpathExemptPrefix introduces a hot-path exemption comment.
const HotpathExemptPrefix = "simlint:hotpath-exempt"

// specID renders the callgraph node ID a taint spec names.
func specID(s taintSpec) string {
	key := s.name
	if s.typ != "" {
		key = s.typ + "." + s.name
	}
	if s.dir == "" {
		return key
	}
	return s.dir + "." + key
}

func (h hotpath) RunModule(m *analysis.Module) []analysis.Finding {
	if len(h.roots) == 0 {
		return nil
	}
	g := callgraph.Of(m)
	var findings []analysis.Finding

	var roots []*callgraph.Node
	for _, spec := range h.roots {
		n := g.Node(specID(spec))
		if n == nil {
			findings = append(findings, analysis.Finding{
				Pos:  token.Position{Filename: filepath.Join(m.Root, "go.mod"), Line: 1},
				Rule: h.Name(),
				Msg:  fmt.Sprintf("hot root %q not found in the call graph; fix the root configuration or restore the function", spec.source),
			})
			continue
		}
		roots = append(roots, n)
	}
	reach := g.Reach(roots, nil)

	ex, bad := collectExemptions(m, h.Name())
	findings = append(findings, bad...)

	for _, n := range g.Sorted() {
		if !reach.Has(n) {
			continue
		}
		findings = append(findings, h.checkNode(m, n, reach, ex)...)
	}
	findings = append(findings, ex.stale(m, g, reach, h.Name())...)
	return findings
}

// checkNode flags every forbidden construct in one reachable function
// body. Nested literals are their own nodes and checked separately (their
// creation is already a violation here).
func (h hotpath) checkNode(m *analysis.Module, n *callgraph.Node, reach *callgraph.Reach, ex *exemptIndex) []analysis.Finding {
	info := n.Pkg.Info
	chain := callgraph.Chain(n, reach.Path(n))
	var out []analysis.Finding
	report := func(p token.Pos, what string) {
		pos := m.Fset.Position(p)
		if ex.covers(m, n, pos) {
			return
		}
		out = append(out, analysis.Finding{
			Pos:  pos,
			Rule: h.Name(),
			Msg:  fmt.Sprintf("hot path (%s): %s; keep hot code allocation-free or annotate //%s <why>", chain, what, HotpathExemptPrefix),
			Flow: witnessFlow(m, n, reach, pos, what),
		})
	}

	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "creates a closure (allocates)")
			return false
		case *ast.DeferStmt:
			report(x.Pos(), "defers (per-call scheduling cost on the hot path)")
		case *ast.GoStmt:
			report(x.Pos(), "spawns a goroutine")
		case *ast.SendStmt:
			report(x.Pos(), "sends on a channel")
		case *ast.SelectStmt:
			report(x.Pos(), "selects on channels")
		case *ast.UnaryExpr:
			switch x.Op {
			case token.ARROW:
				report(x.Pos(), "receives from a channel")
			case token.AND:
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "takes the address of a composite literal (heap allocation)")
				}
			}
		case *ast.RangeStmt:
			if t := info.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					report(x.Pos(), "ranges over a map (hash iteration, nondeterministic order)")
				}
			}
		case *ast.CompositeLit:
			if t := info.Types[x].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "allocates (slice literal)")
				case *types.Map:
					report(x.Pos(), "allocates (map literal)")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.Types[x.X].Type) {
				report(x.Pos(), "concatenates strings (allocates)")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.Types[x.Lhs[0]].Type) {
				report(x.Pos(), "concatenates strings (allocates)")
			}
		case *ast.CallExpr:
			h.checkCall(info, n, x, report)
		}
		return true
	})
	for _, p := range n.Dyn {
		report(p, "calls through a function-typed value (statically unresolvable, so it cannot be certified allocation-free)")
	}
	return out
}

// checkCall flags allocating builtins and conversions, fmt and sync
// callees, and arguments boxed into interface parameters.
func (h hotpath) checkCall(info *types.Info, n *callgraph.Node, call *ast.CallExpr, report func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		// Conversions: to a slice/map always allocates; string(bytes) and
		// bytes(string) copy.
		if len(call.Args) == 1 {
			to, from := tv.Type.Underlying(), info.Types[call.Args[0]].Type
			switch to.(type) {
			case *types.Slice, *types.Map:
				if from == nil || !types.Identical(from.Underlying(), to) {
					report(call.Pos(), "allocates (conversion to a slice or map)")
				}
			case *types.Basic:
				if isStringType(tv.Type) && from != nil {
					if _, ok := from.Underlying().(*types.Slice); ok {
						report(call.Pos(), "allocates (byte-slice to string conversion)")
					}
				}
			}
		}
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "allocates (make)")
			case "new":
				report(call.Pos(), "allocates (new)")
			case "append":
				report(call.Pos(), "appends (growth allocates; pre-size the buffer or justify the amortization)")
			}
			return
		}
	}
	if fn := calleeOf(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			report(call.Pos(), fmt.Sprintf("calls fmt.%s (reflection and allocation)", fn.Name()))
			return
		case "sync":
			report(call.Pos(), fmt.Sprintf("calls sync %s (locking on the hot path)", funcKey(fn)))
			return
		}
	}
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	qual := types.RelativeTo(n.Pkg.Pkg)
	for i, arg := range call.Args {
		pt := paramAt(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			continue // nil, untyped constants the compiler can stage
		}
		report(arg.Pos(), fmt.Sprintf("boxes %s into an interface parameter (allocates)", types.TypeString(at, qual)))
	}
}

// paramAt returns the type of the i-th argument's parameter, unrolling
// variadics.
func paramAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPointerShaped reports whether values of t fit in a pointer word, so
// storing one in an interface does not allocate.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// witnessFlow renders a reachability witness as Finding.Flow: the root,
// one step per call edge, then the flagged site.
func witnessFlow(m *analysis.Module, n *callgraph.Node, reach *callgraph.Reach, site token.Position, what string) []analysis.FlowStep {
	path := reach.Path(n)
	var flow []analysis.FlowStep
	if len(path) > 0 {
		flow = append(flow, analysis.FlowStep{
			Pos: m.Fset.Position(path[0].Caller.Pos()),
			Msg: fmt.Sprintf("root %s", path[0].Caller.Short()),
		})
		for _, s := range path {
			flow = append(flow, analysis.FlowStep{
				Pos: m.Fset.Position(s.Edge.Site),
				Msg: fmt.Sprintf("%s %s %s", s.Caller.Short(), s.Edge.Kind, s.Edge.Callee.Short()),
			})
		}
	} else {
		flow = append(flow, analysis.FlowStep{
			Pos: m.Fset.Position(n.Pos()),
			Msg: fmt.Sprintf("root %s", n.Short()),
		})
	}
	return append(flow, analysis.FlowStep{Pos: site, Msg: fmt.Sprintf("%s %s", n.Short(), what)})
}

// exemption is one parsed //simlint:hotpath-exempt comment.
type exemption struct {
	pos    token.Position
	reason string
	used   bool
}

// exemptIndex maps file → line → exemption, plus the full list for
// staleness validation.
type exemptIndex struct {
	byLine map[string]map[int]*exemption
	all    []*exemption
}

// collectExemptions parses every hotpath-exempt comment in the module.
// Directives without a justification are findings (under rule), mirroring
// //simlint:ignore validation.
func collectExemptions(m *analysis.Module, rule string) (*exemptIndex, []analysis.Finding) {
	idx := &exemptIndex{byLine: map[string]map[int]*exemption{}}
	var bad []analysis.Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, HotpathExemptPrefix) {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					reason := strings.TrimSpace(strings.TrimPrefix(text, HotpathExemptPrefix))
					if reason == "" {
						bad = append(bad, analysis.Finding{Pos: pos, Rule: rule,
							Msg: fmt.Sprintf("hotpath exemption has no justification and is ignored; use //%s <why>", HotpathExemptPrefix)})
						continue
					}
					e := &exemption{pos: pos, reason: reason}
					lines := idx.byLine[pos.Filename]
					if lines == nil {
						lines = map[int]*exemption{}
						idx.byLine[pos.Filename] = lines
					}
					lines[pos.Line] = e
					idx.all = append(idx.all, e)
				}
			}
		}
	}
	return idx, bad
}

// covers reports whether a violation at pos inside node n is exempted: a
// directive on the violation line or the line above (site exemption), or
// on the line of — or directly above — the node's declaration (whole-
// function exemption).
func (idx *exemptIndex) covers(m *analysis.Module, n *callgraph.Node, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	decl := m.Fset.Position(n.Pos())
	for _, line := range []int{pos.Line, pos.Line - 1, decl.Line, decl.Line - 1} {
		if e := lines[line]; e != nil {
			e.used = true
			return true
		}
	}
	return false
}

// stale flags exemptions that no hot-reachable function contains: either
// the function fell out of the hot set or the directive never attached to
// one, and in both cases it must be deleted rather than rot.
func (idx *exemptIndex) stale(m *analysis.Module, g *callgraph.Graph, reach *callgraph.Reach, rule string) []analysis.Finding {
	var out []analysis.Finding
	for _, e := range idx.all {
		if e.used || idx.attached(m, g, reach, e) {
			continue
		}
		out = append(out, analysis.Finding{Pos: e.pos, Rule: rule,
			Msg: "stale hotpath exemption: no function reachable from the hot roots contains it; delete the directive"})
	}
	return out
}

// attached reports whether an exemption sits within (or directly above)
// any hot-reachable function.
func (idx *exemptIndex) attached(m *analysis.Module, g *callgraph.Graph, reach *callgraph.Reach, e *exemption) bool {
	for _, n := range g.Sorted() {
		if !reach.Has(n) {
			continue
		}
		start := m.Fset.Position(n.Decl.Pos())
		end := m.Fset.Position(n.Decl.End())
		if start.Filename != e.pos.Filename {
			continue
		}
		if e.pos.Line >= start.Line-1 && e.pos.Line <= end.Line {
			return true
		}
	}
	return false
}
