package rules

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"scalesim/tools/simlint/internal/analysis"
)

// apipair enforces the public API's context convention, generalizing the
// parser harness that used to live in apipairing_test.go: every exported
// top-level function XContext whose first parameter is a context.Context
// must have an exported context-free wrapper X, and X's body must be exactly
//
//	return XContext(context.Background(), <parameters forwarded in order>)
//
// A context-free entry point with its own body next to an XContext twin is
// drift waiting to happen: the two paths diverge the first time one is
// edited. The per-package minimum pair count pins the rule against
// refactors that would hide the entry points from the analyzer entirely.
type apipair struct {
	min map[string]int // module-relative package dir -> minimum pair count
}

func (apipair) Name() string { return "apipair" }
func (apipair) Doc() string {
	return "every *Context entry point has a single-statement delegating wrapper"
}

func (a apipair) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg
	funcs := map[string]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.IsExported() {
				funcs[fd.Name.Name] = fd
			}
		}
	}
	names := make([]string, 0, len(funcs))
	for n := range funcs {
		names = append(names, n)
	}
	sort.Strings(names)

	var out []analysis.Finding
	report := func(fd *ast.FuncDecl, format string, args ...any) {
		out = append(out, analysis.Finding{
			Pos:  pass.Module.Fset.Position(fd.Pos()),
			Rule: a.Name(),
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	pairs := 0
	for _, name := range names {
		fd := funcs[name]
		base, isCtx := strings.CutSuffix(name, "Context")
		if !isCtx || base == "" || !firstParamIsContext(p.Info, fd) {
			continue
		}
		pairs++
		wrapper, ok := funcs[base]
		if !ok {
			report(fd, "%s has no exported context-free wrapper %s; add `func %s(...) { return %s(context.Background(), ...) }`", name, base, base, name)
			continue
		}
		if err := checkDelegation(wrapper, name); err != nil {
			report(wrapper, "%s must be a single-statement delegation to %s: %s", base, name, err)
		}
	}
	if mn := a.min[p.Rel]; pairs < mn {
		out = append(out, analysis.Finding{
			Pos:  pass.Module.Fset.Position(p.Files[0].Package),
			Rule: a.Name(),
			Msg:  fmt.Sprintf("package %s has %d Context pair(s), pinned minimum is %d; a refactor has hidden entry points from the apipair analyzer", p.Pkg.Name(), pairs, mn),
		})
	}
	return out
}

// firstParamIsContext reports whether fd's first parameter is a
// context.Context, resolved through the type checker (a local type named
// context.Context cannot fake it).
func firstParamIsContext(info *types.Info, fd *ast.FuncDecl) bool {
	def := info.Defs[fd.Name]
	if def == nil {
		return false
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return types.TypeString(sig.Params().At(0).Type(), nil) == "context.Context"
}

// checkDelegation verifies that wrapper's body is a single return statement
// calling target with context.Background() first and the wrapper's own
// parameters forwarded in declaration order. It returns a description of the
// first deviation, or nil.
func checkDelegation(wrapper *ast.FuncDecl, target string) error {
	if wrapper.Body == nil || len(wrapper.Body.List) != 1 {
		return fmt.Errorf("body is not a single statement")
	}
	ret, ok := wrapper.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return fmt.Errorf("body is not a single return")
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok {
		return fmt.Errorf("return value is not a call")
	}
	callee, ok := call.Fun.(*ast.Ident)
	if !ok || callee.Name != target {
		return fmt.Errorf("calls %s, not %s", exprString(call.Fun), target)
	}
	if len(call.Args) == 0 {
		return fmt.Errorf("call has no arguments")
	}
	bg, ok := call.Args[0].(*ast.CallExpr)
	if !ok || exprString(bg.Fun) != "context.Background" {
		return fmt.Errorf("first argument is not context.Background()")
	}

	// Collect the wrapper's parameter names in declaration order.
	var params []string
	for _, field := range wrapper.Type.Params.List {
		for _, n := range field.Names {
			params = append(params, n.Name)
		}
	}
	rest := call.Args[1:]
	if len(rest) != len(params) {
		return fmt.Errorf("forwards %d arguments for %d parameters", len(rest), len(params))
	}
	for i, arg := range rest {
		name := ""
		// A variadic forward parses as the parameter identifier with the
		// call's Ellipsis position set; the identifier is what matters.
		if id, ok := arg.(*ast.Ident); ok {
			name = id.Name
		}
		if name != params[i] {
			return fmt.Errorf("argument %d is %s, want parameter %s", i, exprString(arg), params[i])
		}
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	default:
		return "?"
	}
}
