package rules

import (
	"fmt"

	"scalesim/tools/simlint/internal/analysis"
)

// wallclock flags wall-clock and ambient-randomness sources inside a
// deterministic package: time.Now / time.Since, and any use of math/rand or
// math/rand/v2. Simulated results must be a pure function of the design
// point and the seed; the only sanctioned randomness source is
// internal/xrand (seeded, stable across Go releases), and the only
// sanctioned wall-clock sites are timing measurements that feed
// Result.WallClock-style reporting fields — those are annotated with
// //simlint:ignore wallclock <reason>.
type wallclock struct {
	det map[string]bool
}

func (wallclock) Name() string { return "wallclock" }
func (wallclock) Doc() string {
	return "no time.Now/Since or math/rand in deterministic packages"
}

func (a wallclock) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg
	if !a.det[p.Rel] {
		return nil
	}
	var out []analysis.Finding
	// Info.Uses is a map, but findings are sorted by position before
	// rendering, so iteration order cannot leak into the output.
	for id, obj := range p.Info.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		switch pkg.Path() {
		case "time":
			if obj.Name() == "Now" || obj.Name() == "Since" {
				out = append(out, analysis.Finding{
					Pos:  pass.Module.Fset.Position(id.Pos()),
					Rule: a.Name(),
					Msg: fmt.Sprintf("time.%s in a deterministic package: the wall clock must never influence simulated state; timing-measurement sites need //simlint:ignore wallclock <reason>",
						obj.Name()),
				})
			}
		case "math/rand", "math/rand/v2":
			out = append(out, analysis.Finding{
				Pos:  pass.Module.Fset.Position(id.Pos()),
				Rule: a.Name(),
				Msg: fmt.Sprintf("%s.%s: math/rand streams are not stable across Go releases and the global source is process-wide state; use internal/xrand",
					pkg.Path(), obj.Name()),
			})
		}
	}
	return out
}
