package rules

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"scalesim/tools/simlint/internal/analysis"
)

// keydrift cross-checks struct field sets against the canonical cache-key
// encoder. The campaign engine memoizes simulations under a key that must
// encode every semantic field of the design point (machine configuration,
// workload profiles, simulation options); a field added to one of those
// structs without extending the encoder silently aliases distinct design
// points to the same cached result. keydrift makes that a build failure:
// starting from the configured root structs (transitively including
// struct-typed fields reached through pointers, slices and arrays, within
// this module), every field must be read somewhere in the key file.
// Deliberately non-semantic fields are suppressed at their declaration with
// //simlint:ignore keydrift <why the field is not part of the key>.
//
// keydrift is a ModuleAnalyzer: it cross-checks one file against type
// declarations spread across the whole module, so a per-package pass has no
// natural unit of work.
type keydrift struct {
	keyFile string   // module-relative path of the encoder file
	roots   []string // "<module-relative pkg dir>.<TypeName>"
}

func (keydrift) Name() string { return "keydrift" }
func (keydrift) Doc() string {
	return "every semantic design-point field must be encoded by the key file"
}

func (a keydrift) RunModule(m *analysis.Module) []analysis.Finding {
	if a.keyFile == "" || len(a.roots) == 0 {
		return nil
	}
	keyAbs := filepath.Join(m.Root, filepath.FromSlash(a.keyFile))

	watched := map[*types.Named]bool{}
	var queue []*types.Named
	var out []analysis.Finding
	for _, root := range a.roots {
		dot := strings.LastIndex(root, ".")
		if dot < 0 {
			out = append(out, analysis.Finding{Rule: a.Name(),
				Msg: fmt.Sprintf("bad key root %q: want <package dir>.<TypeName>", root)})
			continue
		}
		rel, name := root[:dot], root[dot+1:]
		pkg := m.ByRel(rel)
		if pkg == nil {
			out = append(out, analysis.Finding{Rule: a.Name(),
				Msg: fmt.Sprintf("key root %q: package directory %q not found in module", root, rel)})
			continue
		}
		obj := pkg.Pkg.Scope().Lookup(name)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			out = append(out, analysis.Finding{Rule: a.Name(),
				Msg: fmt.Sprintf("key root %q: no type %s in package %s", root, name, pkg.Path)})
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			queue = append(queue, named)
		}
	}

	// Expand roots to every module-local struct reachable through fields.
	inModule := func(named *types.Named) bool {
		p := named.Obj().Pkg()
		return p != nil && (p.Path() == m.Path || strings.HasPrefix(p.Path(), m.Path+"/"))
	}
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		if watched[named] || !inModule(named) {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		watched[named] = true
		for i := 0; i < st.NumFields(); i++ {
			if next := namedStructOf(st.Field(i).Type()); next != nil {
				queue = append(queue, next)
			}
		}
	}

	// Record every field read of a watched struct inside the key file.
	reads := map[*types.Named]map[string]bool{}
	sawKeyFile := false
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if m.Fset.Position(f.Pos()).Filename != keyAbs {
				continue
			}
			sawKeyFile = true
			ast.Inspect(f, func(n ast.Node) bool {
				se, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sel := p.Info.Selections[se]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				recv := sel.Recv()
				if ptr, ok := recv.Underlying().(*types.Pointer); ok {
					recv = ptr.Elem()
				}
				named, ok := recv.(*types.Named)
				if !ok || !watched[named] {
					return true
				}
				if reads[named] == nil {
					reads[named] = map[string]bool{}
				}
				reads[named][se.Sel.Name] = true
				return true
			})
		}
	}
	if !sawKeyFile {
		out = append(out, analysis.Finding{Rule: a.Name(),
			Msg: fmt.Sprintf("key file %s not found in module; keydrift cannot verify the encoder", a.keyFile)})
		return out
	}

	// Every field of every watched struct must be read by the encoder.
	var names []*types.Named
	for named := range watched {
		names = append(names, named)
	}
	sort.Slice(names, func(i, j int) bool {
		return names[i].Obj().Pkg().Path()+"."+names[i].Obj().Name() <
			names[j].Obj().Pkg().Path()+"."+names[j].Obj().Name()
	})
	for _, named := range names {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if reads[named][field.Name()] {
				continue
			}
			out = append(out, analysis.Finding{
				Pos:  m.Fset.Position(field.Pos()),
				Rule: a.Name(),
				Msg: fmt.Sprintf("field %s.%s is never read by the canonical key encoder (%s): encode it (and update the pinned key fixture) or suppress with why it is not semantic",
					named.Obj().Name(), field.Name(), a.keyFile),
			})
		}
	}
	return out
}

// namedStructOf unwraps pointers, slices and arrays down to a named struct
// type, or nil when the field's type does not lead to one.
func namedStructOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u
			}
			return nil
		default:
			return nil
		}
	}
}
