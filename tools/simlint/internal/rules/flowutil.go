package rules

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"scalesim/tools/simlint/internal/analysis"
)

// taintSpec is one parsed endpoint of a flow rule: a function or method
// identified by module-relative package directory, optional receiver type
// name, and name — plus, for sinks, the index of the guarded argument.
// The textual forms accepted by the Config are
//
//	<dir>.<Type>.<Method>      method (or interface method)
//	<dir>.<Func>               package-level function
//	...@<n>                    sink payload argument index
//
// where <dir> may contain slashes but no dots (true of every package in
// this module and the fixtures).
type taintSpec struct {
	dir    string // module-relative package directory
	typ    string // receiver type name; "" for package-level functions
	name   string // function, method, or field name
	arg    int    // sink payload argument index
	source string // the spec as written, for messages
}

// parseTaintSpec parses the textual spec form. Malformed specs are
// programmer errors in the lint policy, so they panic.
func parseTaintSpec(s string) taintSpec {
	spec := taintSpec{source: s, arg: -1}
	body := s
	if at := strings.LastIndex(body, "@"); at >= 0 {
		n, err := strconv.Atoi(body[at+1:])
		if err != nil {
			panic(fmt.Sprintf("simlint: bad taint spec %q: %v", s, err))
		}
		spec.arg = n
		body = body[:at]
	}
	dirEnd := strings.LastIndex(body, "/") + 1
	parts := strings.Split(body[dirEnd:], ".")
	switch len(parts) {
	case 2:
		spec.dir, spec.name = body[:dirEnd]+parts[0], parts[1]
	case 3:
		spec.dir, spec.typ, spec.name = body[:dirEnd]+parts[0], parts[1], parts[2]
	default:
		panic(fmt.Sprintf("simlint: bad taint spec %q: want <dir>.<Type>.<Name> or <dir>.<Func>", s))
	}
	return spec
}

func parseTaintSpecs(specs []string) []taintSpec {
	out := make([]taintSpec, len(specs))
	for i, s := range specs {
		out[i] = parseTaintSpec(s)
	}
	return out
}

// pkgPathFor renders the import path of a module-relative directory.
func pkgPathFor(modPath, dir string) string {
	if dir == "" {
		return modPath
	}
	return modPath + "/" + dir
}

// calleeOf resolves the called function or method of a call expression,
// including interface methods. Returns nil for conversions, builtins,
// function-typed values and literals.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// recvTypeName returns the name of a method's receiver type (struct or
// interface, through a pointer), or "" for package-level functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// matchesSpec reports whether fn is the function or method a spec names,
// with the spec's directory resolved against the module path.
func matchesSpec(modPath string, spec taintSpec, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != spec.name {
		return false
	}
	if fn.Pkg().Path() != pkgPathFor(modPath, spec.dir) {
		return false
	}
	return recvTypeName(fn) == spec.typ
}

// funcKey renders the summary-fact key of a function or method:
// "Type.Method" or "Func", scoped by the exporting package.
func funcKey(fn *types.Func) string {
	if r := recvTypeName(fn); r != "" {
		return r + "." + fn.Name()
	}
	return fn.Name()
}

// funcUnit is one analyzable function body: a declared function or a
// function literal (closures and goroutine bodies are their own units —
// the taint engine never descends into a FuncLit).
type funcUnit struct {
	name    string // enclosing declaration name, for messages
	decl    *ast.FuncDecl
	lit     *ast.FuncLit // non-nil for literal units
	body    *ast.BlockStmt
	params  []*ast.Ident
	results []*ast.Ident
}

// funcUnits collects every function body of a file in declaration order:
// each FuncDecl, followed by every FuncLit it contains.
func funcUnits(f *ast.File) []funcUnit {
	var out []funcUnit
	analysis.EnclosingFuncs(f, func(fd *ast.FuncDecl) {
		out = append(out, funcUnit{
			name:    fd.Name.Name,
			decl:    fd,
			body:    fd.Body,
			params:  fieldIdents(fd.Type.Params),
			results: fieldIdents(fd.Type.Results),
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcUnit{
					name:    fd.Name.Name,
					lit:     lit,
					body:    lit.Body,
					params:  fieldIdents(lit.Type.Params),
					results: fieldIdents(lit.Type.Results),
				})
			}
			return true
		})
	})
	return out
}

func fieldIdents(fl *ast.FieldList) []*ast.Ident {
	if fl == nil {
		return nil
	}
	var out []*ast.Ident
	for _, field := range fl.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, n := range field.Names {
			out = append(out, n)
		}
	}
	return out
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	return t != nil && types.TypeString(t, nil) == "context.Context"
}
