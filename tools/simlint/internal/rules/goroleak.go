package rules

import (
	"fmt"
	"go/ast"
	"go/types"

	"scalesim/tools/simlint/internal/analysis"
)

// goroleak enforces concurrency hygiene in the configured packages (the
// campaign runner and the durable store): every `go` statement must spawn
// work that is joined through a sync.WaitGroup (Done inside the goroutine,
// Add in the spawning function), and the spawning function must accept a
// context.Context so the work is cancellable. A fire-and-forget goroutine in
// the runner outlives the batch that started it and races the store's
// shutdown — the leak only shows up as a corrupt journal entry much later.
//
// The goroutine body is resolved structurally: a func literal spawned
// directly, or a local variable bound to one (`worker := func() {...};
// go worker()`). Anything else is flagged as unverifiable — concurrency in
// these packages must stay simple enough to audit.
type goroleak struct {
	pkgs map[string]bool
}

func (goroleak) Name() string { return "goroleak" }
func (goroleak) Doc() string {
	return "every go statement in runner/store is WaitGroup-joined and context-aware"
}

func (a goroleak) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg
	if !a.pkgs[p.Rel] {
		return nil
	}
	var out []analysis.Finding
	for _, f := range p.Files {
		analysis.EnclosingFuncs(f, func(fd *ast.FuncDecl) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				pos := pass.Module.Fset.Position(g.Pos())
				if !hasContextParam(p.Info, fd) {
					out = append(out, analysis.Finding{Pos: pos, Rule: a.Name(),
						Msg: fmt.Sprintf("go statement in %s, which has no context.Context parameter; spawned work must be cancellable", fd.Name.Name)})
				}
				body := goroutineBody(p.Info, fd, g)
				switch {
				case body == nil:
					out = append(out, analysis.Finding{Pos: pos, Rule: a.Name(),
						Msg: "cannot resolve the goroutine body; spawn a func literal (or a local variable bound to one) so the WaitGroup join is auditable"})
				case !callsWaitGroup(p.Info, body, "Done") || !callsWaitGroup(p.Info, fd.Body, "Add"):
					out = append(out, analysis.Finding{Pos: pos, Rule: a.Name(),
						Msg: fmt.Sprintf("goroutine in %s is not WaitGroup-joined; Add before go, defer wg.Done() inside, Wait before returning", fd.Name.Name)})
				}
				return true
			})
		})
	}
	return out
}

// hasContextParam reports whether any parameter of fd is a context.Context.
func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	def := info.Defs[fd.Name]
	if def == nil {
		return false
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if types.TypeString(params.At(i).Type(), nil) == "context.Context" {
			return true
		}
	}
	return false
}

// goroutineBody resolves the block the go statement executes: a spawned
// func literal, or the func literal a spawned local identifier was bound to
// anywhere in the enclosing function.
func goroutineBody(info *types.Info, fd *ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		obj := info.Uses[fun]
		if obj == nil {
			return nil
		}
		var body *ast.BlockStmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) || i >= len(n.Rhs) {
						continue
					}
					if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
						body = lit.Body
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if info.Defs[name] != obj || i >= len(n.Values) {
						continue
					}
					if lit, ok := n.Values[i].(*ast.FuncLit); ok {
						body = lit.Body
					}
				}
			}
			return true
		})
		return body
	}
	return nil
}

// callsWaitGroup reports whether the block contains a call of the named
// method on a sync.WaitGroup value.
func callsWaitGroup(info *types.Info, block *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		t := info.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if types.TypeString(t, nil) == "sync.WaitGroup" {
			found = true
			return false
		}
		return true
	})
	return found
}
