package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"scalesim/tools/simlint/internal/analysis"
	"scalesim/tools/simlint/internal/callgraph"
)

// sharestrict proves the epoch worker pool's isolation invariant
// statically: the goroutines spawned inside the configured worker roots
// (Config.WorkerRoots) — and everything they reach through the call graph
// — must not write the shared simulator structures (Config.SharedTypes:
// the NoC mesh, DRAM, the shared LLC). Workers go through thread-local
// surfaces instead (coreCtx fields, *Acc accumulators, cache.Overlay);
// shared state is merged at the fork/join barrier, which runs after the
// join and is therefore not worker-reachable — so Merge needs no special
// case: a worker calling it is exactly what the rule exists to catch.
//
// Sanctioned calls on a shared type are the read-only methods named in
// Config.SharedSafe plus, by convention, methods ending in "Into" (read
// shared state, write a caller-owned accumulator). Everything else — a
// mutating method call, a method value handed off for later use, a direct
// field write — is a finding carrying the witness chain from the spawn
// point, in the message and as Finding.Flow (a SARIF codeFlow).
//
// Reachability stops at the sanctioned surface: the internals of a shared
// type's own methods are that type's business (its *Into methods write
// the accumulator, not the receiver), so traversal does not descend into
// shared-type methods.
type sharestrict struct {
	workerRoots []taintSpec
	shared      []taintSpec // <dir>.<Type>: parsed with the type in .name
	safe        []taintSpec // <dir>.<Type>.<Method>
}

func (sharestrict) Name() string { return "sharestrict" }
func (sharestrict) Doc() string {
	return "epoch workers must not write shared simulator state except through sanctioned thread-local surfaces"
}

func (s sharestrict) RunModule(m *analysis.Module) []analysis.Finding {
	if len(s.workerRoots) == 0 || len(s.shared) == 0 {
		return nil
	}
	g := callgraph.Of(m)
	var findings []analysis.Finding

	var roots []*callgraph.Node
	for _, spec := range s.workerRoots {
		n := g.Node(specID(spec))
		if n == nil {
			findings = append(findings, analysis.Finding{
				Pos:  token.Position{Filename: filepath.Join(m.Root, "go.mod"), Line: 1},
				Rule: s.Name(),
				Msg:  fmt.Sprintf("worker root %q not found in the call graph; fix the root configuration or restore the function", spec.source),
			})
			continue
		}
		roots = append(roots, spawnedWorkers(g, n)...)
	}
	reach := g.Reach(roots, func(caller *callgraph.Node, e callgraph.Edge) bool {
		// Stop at the sanctioned surface: do not descend into the shared
		// types' own methods.
		return e.Callee.Fn == nil || !s.sharedMethodType(m.Path, e.Callee.Fn)
	})

	for _, n := range g.Sorted() {
		if !reach.Has(n) {
			continue
		}
		findings = append(findings, s.checkNode(m, n, reach)...)
	}
	return findings
}

// spawnedWorkers returns the worker-pool entry points of a spawning
// function: the function literals launched by its `go` statements
// (directly or through a local binding). A root with no resolvable spawn
// is itself the entry point, conservatively.
func spawnedWorkers(g *callgraph.Graph, root *callgraph.Node) []*callgraph.Node {
	var out []*callgraph.Node
	resolved := true
	ast.Inspect(root.Body, func(x ast.Node) bool {
		gs, ok := x.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			if n := g.LitNode(fun); n != nil {
				out = append(out, n)
				return true
			}
		case *ast.Ident:
			if lit := boundFuncLit(root.Pkg.Info, root.Body, fun); lit != nil {
				if n := g.LitNode(lit); n != nil {
					out = append(out, n)
					return true
				}
			}
		}
		resolved = false
		return true
	})
	if len(out) == 0 || !resolved {
		out = append(out, root)
	}
	return out
}

// boundFuncLit resolves a local identifier to the function literal
// assigned to it, or nil.
func boundFuncLit(info *types.Info, body *ast.BlockStmt, id *ast.Ident) *ast.FuncLit {
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	var lit *ast.FuncLit
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			l, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if info.Defs[l] == obj || info.Uses[l] == obj {
				if fl, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
					lit = fl
				}
			}
		}
		return true
	})
	return lit
}

// sharedTypeName returns the configured name of the shared type t (through
// pointers), or "".
func (s sharestrict) sharedTypeName(modPath string, t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	nt, ok := t.(*types.Named)
	if !ok || nt.Obj().Pkg() == nil {
		return ""
	}
	for _, spec := range s.shared {
		if nt.Obj().Name() == spec.name && nt.Obj().Pkg().Path() == pkgPathFor(modPath, spec.dir) {
			return spec.name
		}
	}
	return ""
}

// sharedMethodType reports whether fn is a method of a shared type.
func (s sharestrict) sharedMethodType(modPath string, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return s.sharedTypeName(modPath, sig.Recv().Type()) != ""
}

// sanctioned reports whether a shared-type method is safe for workers:
// named in SharedSafe, or following the *Into accumulator convention.
func (s sharestrict) sanctioned(modPath string, fn *types.Func) bool {
	if strings.HasSuffix(fn.Name(), "Into") {
		return true
	}
	for _, spec := range s.safe {
		if matchesSpec(modPath, spec, fn) {
			return true
		}
	}
	return false
}

// checkNode flags shared-state violations in one worker-reachable body:
// non-sanctioned method calls (or method values) on shared types and
// direct writes to their fields.
func (s sharestrict) checkNode(m *analysis.Module, n *callgraph.Node, reach *callgraph.Reach) []analysis.Finding {
	info := n.Pkg.Info
	chain := callgraph.Chain(n, reach.Path(n))
	var out []analysis.Finding
	report := func(p token.Pos, what string) {
		pos := m.Fset.Position(p)
		out = append(out, analysis.Finding{
			Pos:  pos,
			Rule: s.Name(),
			Msg:  fmt.Sprintf("epoch worker (%s): %s; workers stay on thread-local state (overlay, accumulators) and shared state merges at the barrier", chain, what),
			Flow: witnessFlow(m, n, reach, pos, what),
		})
	}

	callFun := map[ast.Node]bool{}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // nested literals are their own nodes
		case *ast.CallExpr:
			callFun[ast.Unparen(x.Fun)] = true
		case *ast.SelectorExpr:
			fn, ok := info.Uses[x.Sel].(*types.Func)
			if !ok || !s.sharedMethodType(m.Path, fn) || s.sanctioned(m.Path, fn) {
				return true
			}
			typ := s.sharedTypeName(m.Path, fn.Type().(*types.Signature).Recv().Type())
			if callFun[x] {
				report(x.Sel.Pos(), fmt.Sprintf("calls %s.%s, which mutates the shared %s", typ, fn.Name(), typ))
			} else {
				report(x.Sel.Pos(), fmt.Sprintf("takes %s.%s as a method value, laundering access to the shared %s", typ, fn.Name(), typ))
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				s.checkWrite(m, info, lhs, report)
			}
		case *ast.IncDecStmt:
			s.checkWrite(m, info, x.X, report)
		}
		return true
	})
	return out
}

// checkWrite flags an assignment target that is a field of a shared type.
func (s sharestrict) checkWrite(m *analysis.Module, info *types.Info, lhs ast.Expr, report func(token.Pos, string)) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if _, ok := info.Uses[sel.Sel].(*types.Var); !ok {
		return
	}
	typ := s.sharedTypeName(m.Path, info.Types[sel.X].Type)
	if typ == "" {
		return
	}
	report(sel.Sel.Pos(), fmt.Sprintf("writes field %s.%s of the shared %s directly", typ, sel.Sel.Name, typ))
}
