package rules

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"scalesim/tools/simlint/internal/analysis"
	"scalesim/tools/simlint/internal/flow"
)

// ctxflow tracks fresh root contexts. context.Background() (and TODO()) is
// only legitimate at the top of a program — package main, or the sanctioned
// convenience wrappers whose entire body is delegation to their XContext
// twin. Anywhere else, a fresh root context passed into one of this
// module's context-taking calls severs the caller's cancellation chain: the
// engine keeps simulating after the campaign is cancelled, the store keeps
// journaling after shutdown. The rule is flow-sensitive — a root context is
// a taint source, context-deriving stdlib calls (WithCancel, WithTimeout,
// WithValue) propagate it, and the sinks are module-internal calls whose
// signature accepts a context.Context.
//
// When the offending argument is literally context.Background()/TODO() and
// the enclosing function has a usable context parameter, the finding
// carries a fix replacing the literal with that parameter.
type ctxflow struct{}

func (ctxflow) Name() string { return "ctxflow" }
func (ctxflow) Doc() string {
	return "fresh context.Background()/TODO() outside main never flows into module calls"
}

func (a ctxflow) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg
	mod := pass.Module
	if p.Pkg.Name() == "main" {
		return nil
	}

	var out []analysis.Finding
	for _, f := range p.Files {
		for _, u := range funcUnits(f) {
			if isBackgroundWrapper(u) {
				continue
			}
			u := u
			ctxParam := contextParam(p.Info, u.params)
			visit := flow.TaintVisitor{Call: func(call *ast.CallExpr, args []flow.Taint) {
				fn := calleeOf(p.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return
				}
				path := fn.Pkg().Path()
				if path != mod.Path && !strings.HasPrefix(path, mod.Path+"/") {
					return
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return
				}
				for i := 0; i < sig.Params().Len() && i < len(args); i++ {
					if !isContextType(sig.Params().At(i).Type()) || args[i]&flow.Source == 0 {
						continue
					}
					fnd := analysis.Finding{
						Pos:  mod.Fset.Position(call.Args[i].Pos()),
						Rule: a.Name(),
						Msg: fmt.Sprintf("fresh root context flows into %s in %s, severing the caller's cancellation chain; thread the caller's context through",
							funcKey(fn), u.name),
					}
					if ctxParam != nil && isRootContextCall(p.Info, call.Args[i]) {
						arg := call.Args[i]
						fnd.Fix = &analysis.Fix{
							Message: fmt.Sprintf("pass the %s parameter instead of a fresh root context", ctxParam.Name),
							Edits:   []analysis.TextEdit{{Pos: arg.Pos(), End: arg.End(), New: ctxParam.Name}},
						}
					}
					out = append(out, fnd)
					return
				}
			}}
			flow.RunTaint(u.body, flow.TaintConfig{
				Info:    p.Info,
				Params:  u.params,
				Results: u.results,
				CallTaint: func(call *ast.CallExpr, args []flow.Taint) flow.Taint {
					return rootContextTaint(p.Info, call, args)
				},
			}, visit)
		}
	}
	return out
}

// rootContextTaint is the ctxflow transfer for calls: Background/TODO mint
// the taint, and the context package's deriving constructors (WithCancel,
// WithTimeout, WithValue, ...) pass their parent's taint through.
func rootContextTaint(info *types.Info, call *ast.CallExpr, args []flow.Taint) flow.Taint {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return 0
	}
	switch fn.Name() {
	case "Background", "TODO":
		return flow.Source
	default:
		var t flow.Taint
		for _, a := range args {
			t |= a & flow.Source
		}
		return t
	}
}

// isRootContextCall reports whether expr is literally context.Background()
// or context.TODO() — the only shape the autofix rewrites.
func isRootContextCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	fn := calleeOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// contextParam returns the first named, non-blank context.Context parameter
// of a unit, or nil.
func contextParam(info *types.Info, params []*ast.Ident) *ast.Ident {
	for _, id := range params {
		if id == nil || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil && isContextType(obj.Type()) {
			return id
		}
	}
	return nil
}

// isBackgroundWrapper reports whether a unit is a sanctioned convenience
// wrapper: a declared function X whose whole body is one statement
// delegating to XContext with context.Background() as the first argument
// (the apipair pattern — apipair separately enforces the exact pairing).
func isBackgroundWrapper(u funcUnit) bool {
	if u.decl == nil || len(u.body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := u.body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(s.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	}
	if call == nil || len(call.Args) == 0 {
		return false
	}
	var callee string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	}
	if callee != u.decl.Name.Name+"Context" {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok || len(inner.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && base.Name == "context"
}
