package rules

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"scalesim/tools/simlint/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite testdata/fixture.golden from the current output")

// fixtureConfig lints the self-contained module under testdata/fixture,
// with its own deterministic set, key encoder, units package, goroutine
// policy, and pair pin.
func fixtureConfig() analysis.Config {
	return analysis.Config{
		Root:          filepath.Join("testdata", "fixture"),
		Deterministic: []string{"det"},
		KeyFile:       "enc/key.go",
		KeyRoots:      []string{"keys.Options"},
		UnitsDir:      "uu",
		Goroutines:    []string{"leak"},
		APIPairMin:    map[string]int{"pair": 4},
		ApproxSources: []string{"af.Predictor.Predict"},
		ApproxSinks:   []string{"af.Store.Save@1"},
		ApproxCaches:  []string{"af.Cache.cache"},
		Locks:         []string{"lk"},
		HotRoots:      []string{"hp.Engine.Step"},
		WorkerRoots:   []string{"ss.Pool.run"},
		SharedTypes:   []string{"ss.Mesh"},
		SharedSafe:    []string{"ss.Mesh.Tiles"},
	}
}

var (
	fixtureOnce     sync.Once
	fixtureFindings []analysis.Finding
	fixtureErr      error
)

func fixtureLint(t *testing.T) []analysis.Finding {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := fixtureConfig()
		fixtureFindings, _, fixtureErr = analysis.Run(cfg, All(cfg))
	})
	if fixtureErr != nil {
		t.Fatalf("analysis.Run: %v", fixtureErr)
	}
	return fixtureFindings
}

// TestAnalyzerFindings pins, per rule, exactly which fixture sites are
// flagged — and, by omission, that the justified suppressions, the
// non-deterministic package, and the sanctioned spellings stay silent.
func TestAnalyzerFindings(t *testing.T) {
	findings := fixtureLint(t)
	got := map[string][]string{}
	for _, f := range findings {
		got[f.Rule] = append(got[f.Rule], fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line))
	}
	want := map[string][]string{
		"maporder": {
			"det/det.go:13", // Sum: unsuppressed range over map
			"det/det.go:34", // SumBadSuppress: justification-less suppression does not suppress
			"det/det.go:67", // SumUnknownSuppress: unknown rule name does not suppress
		},
		"wallclock": {
			"det/det.go:42", // Stamp: time.Now
			"det/det.go:43", // Stamp: time.Since
			"det/det.go:59", // Draw: global math/rand
		},
		"reflectfmt": {
			"hashctx/hashctx.go:18", // Key: %+v of pointer-carrying struct
			"hashctx/hashctx.go:41", // mix: %v into a hash.Hash writer
		},
		"keydrift": {
			"keys/keys.go:16", // Region.Skew never encoded
			"keys/keys.go:23", // Options.Drift never encoded
		},
		"ignore": {
			"det/det.go:33", // suppression without a justification
			"det/det.go:66", // suppression naming an unknown rule
		},
		"units": {
			"mix/mix.go:10", // Mixed: float64(Cycles) + float64(Bytes)
			"mix/mix.go:15", // Compared: float64(Cycles) > float64(Bytes)
			"mix/mix.go:20", // Reinterpret: Cycles(Bytes)
			"mix/mix.go:28", // Literal: bare 250 at a Cycles parameter
		},
		"errwrap": {
			"ew/ew.go:14",  // Compared: == sentinel
			"ew/ew.go:17",  // Wrapped: sentinel under %v
			"ew/ew.go:20",  // TextMatched: Error() == "boom"
			"ew/ew.go:23",  // ContainsMatched: strings.Contains(Error(), ...)
			"ew2/ew2.go:8", // CrossCompared: != imported sentinel
		},
		"apipair": {
			"pair/pair.go:3",  // pinned minimum pair count missed
			"pair/pair.go:14", // OrphanContext without a wrapper
			"pair/pair.go:20", // Drift wrapper that re-implements
		},
		"goroleak": {
			"leak/leak.go:11", // Fire: no context parameter
			"leak/leak.go:11", // Fire: not WaitGroup-joined
			"leak/leak.go:16", // Unjoined: not WaitGroup-joined
			"leak/leak.go:38", // Opaque: unresolvable goroutine body
		},
		"approxflow": {
			"af/af.go:28",   // Direct: prediction saved to the store
			"af/af.go:47",   // Branch: prediction live on one arm of the join
			"af/af.go:52",   // Memo: prediction inserted into the cache field
			"af/af.go:68",   // ViaHelper: taint through a local summary
			"af3/af3.go:13", // Indirect: cross-package sink-param summary
			"af3/af3.go:20", // Imported: cross-package result summary
		},
		"ctxflow": {
			"cf/cf.go:18",     // Fresh: Background despite a ctx parameter
			"cf/cf.go:25",     // Derived: WithCancel does not launder a root
			"cf/cf.go:37",     // Spawn: goroutine drops the caller's context
			"pair/pair.go:22", // Drift: a re-implementing wrapper loses the exemption
		},
		"lockscope": {
			"lk/lk.go:23", // HeldAcrossSend: channel send under the mutex
			"lk/lk.go:32", // HeldAcrossIO: file write under a deferred unlock
			"lk/lk.go:39", // LeakyReturn: early return leaks the lock
			"lk/lk.go:62", // Blocks: default-less select under the mutex
			"lk/lk.go:84", // ViaHelper: callee blocking summary
		},
		"hotpath": {
			"hp/hp.go:31",  // locked: sync.Mutex.Lock one call below the root
			"hp/hp.go:32",  // locked: defer
			"hp/hp.go:32",  // locked: sync.Mutex.Unlock
			"hp/hp.go:44",  // Load (reached via CHA): append growth
			"hp/hp.go:50",  // lookup: make
			"hp/hp.go:52",  // lookup: range over a map
			"hp/hp.go:62",  // spill (three frames deep): fmt.Println
			"hp/hp.go:63",  // spill: boxing into an any parameter
			"hp/hp.go:64",  // spill: &composite literal
			"hp/hp.go:65",  // spill: string concatenation
			"hp/hp.go:66",  // spill: closure creation
			"hp/hp.go:67",  // spill: dynamic call through a func value
			"hp/hp.go:94",  // sloppy: exemption without a justification
			"hp/hp.go:100", // cold: stale exemption on an unreachable function
		},
		"sharestrict": {
			"ss/ss.go:64", // work: mutating Mesh.Latency call from the worker
			"ss/ss.go:65", // work: direct Mesh.Total write
			"ss/ss.go:74", // deep: direct write two frames below the spawn
			"ss/ss.go:86", // handoff: Mesh.Merge taken as a method value
		},
	}
	for rule, sites := range want {
		if !reflect.DeepEqual(got[rule], sites) {
			t.Errorf("rule %s: got %v, want %v", rule, got[rule], sites)
		}
	}
	for rule := range got {
		if _, ok := want[rule]; !ok {
			t.Errorf("unexpected findings for rule %s: %v", rule, got[rule])
		}
	}
}

// TestGoldenOutput pins the full rendered report. This is simlint's own
// determinism regression test: the golden can only stay stable if findings
// are emitted in sorted (file, line, column, rule, message) order. Run with
// -update to regenerate after deliberate fixture or message changes.
func TestGoldenOutput(t *testing.T) {
	goldenPath := filepath.Join("testdata", "fixture.golden")
	got := analysis.Render(fixtureLint(t))
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestOutputDeterministic lints the fixture twice from scratch and
// requires byte-identical reports.
func TestOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full load is slow")
	}
	cfg := fixtureConfig()
	again, _, err := analysis.Run(cfg, All(cfg))
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	if a, b := analysis.Render(fixtureLint(t)), analysis.Render(again); a != b {
		t.Errorf("two runs rendered differently:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestRepoClean lints the repository itself with the full registry: HEAD
// must report zero unsuppressed findings, which is what wires the rule set
// into make check.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	cfg := RepoConfig(filepath.Join("..", "..", "..", ".."))
	findings, _, err := analysis.Run(cfg, All(cfg))
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("repository is not lint-clean:\n%s", analysis.Render(findings))
	}
}

// TestWitnessFlows pins the interprocedural witnesses end to end: the
// seeded hot-path alloc (reached through a CHA-resolved interface call)
// and the seeded shared-Mesh write from the worker must both carry a call
// chain in the message, a Finding.Flow whose first step is the root and
// whose last step is the flagged site, and a SARIF codeFlow rendering it.
func TestWitnessFlows(t *testing.T) {
	findings := fixtureLint(t)
	want := map[string]struct {
		site  string // file:line of the finding
		chain string // witness rendered in the message
		root  string // first flow step's message
	}{
		"hotpath":     {"hp/hp.go:44", "Engine.Step → Table.Load", "root Engine.Step"},
		"sharestrict": {"ss/ss.go:74", "Pool.run$1 → Pool.work → Pool.deep", "root Pool.run$1"},
	}
	seen := map[string]bool{}
	for _, f := range findings {
		w, ok := want[f.Rule]
		if !ok || fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line) != w.site {
			continue
		}
		seen[f.Rule] = true
		if !strings.Contains(f.Msg, w.chain) {
			t.Errorf("%s at %s: message %q does not carry witness chain %q", f.Rule, w.site, f.Msg, w.chain)
		}
		if len(f.Flow) < 2 {
			t.Fatalf("%s at %s: Flow has %d steps, want >= 2", f.Rule, w.site, len(f.Flow))
		}
		if f.Flow[0].Msg != w.root {
			t.Errorf("%s at %s: first flow step %q, want %q", f.Rule, w.site, f.Flow[0].Msg, w.root)
		}
		last := f.Flow[len(f.Flow)-1]
		if last.Pos.Filename != f.Pos.Filename || last.Pos.Line != f.Pos.Line {
			t.Errorf("%s at %s: last flow step at %s:%d, want the finding site", f.Rule, w.site, last.Pos.Filename, last.Pos.Line)
		}
		cfg := fixtureConfig()
		log := analysis.BuildSARIF(All(cfg), []analysis.Finding{f}, nil)
		res := log.Runs[0].Results[0]
		if len(res.CodeFlows) != 1 || len(res.CodeFlows[0].ThreadFlows) != 1 {
			t.Fatalf("%s at %s: SARIF result carries no codeFlow", f.Rule, w.site)
		}
		if got := len(res.CodeFlows[0].ThreadFlows[0].Locations); got != len(f.Flow) {
			t.Errorf("%s at %s: codeFlow has %d locations, want %d", f.Rule, w.site, got, len(f.Flow))
		}
	}
	for rule := range want {
		if !seen[rule] {
			t.Errorf("no %s finding at %s in the fixture", rule, want[rule].site)
		}
	}
}

func TestVerbRefs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbRef
	}{
		{"plain", nil},
		{"%d", []verbRef{{'d', "", 0}}},
		{"a=%v b=%+v", []verbRef{{'v', "", 0}, {'v', "+", 1}}},
		{"%#v", []verbRef{{'v', "#", 0}}},
		{"%% %v", []verbRef{{'v', "", 0}}},
		{"%*d %v", []verbRef{{'d', "", 1}, {'v', "", 2}}},
		{"%.3f %v", []verbRef{{'f', "", 0}, {'v', "", 1}}},
		{"%[2]v %v", []verbRef{{'v', "", 1}, {'v', "", 2}}},
	}
	for _, c := range cases {
		if got := verbRefs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("verbRefs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}
