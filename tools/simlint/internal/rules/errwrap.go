package rules

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"scalesim/tools/simlint/internal/analysis"
)

// errwrap enforces the sentinel-error discipline: sentinels (package-level
// `var ErrX = errors.New(...)` values, like runner.ErrJobFailed and
// store.ErrCorrupt) must be wrapped with %w and matched with errors.Is —
// never compared with == / != and never matched by their message text. The
// campaign engine wraps every failure with attempt counts and job context;
// an == comparison or a string match silently stops matching the moment a
// wrapping layer is added, which is how retry/quarantine policy bugs are
// born.
//
// Sentinels are discovered per package (package-level Err*-named variables
// whose type implements error) and exported as facts, so comparisons against
// an imported package's sentinel are caught in the importer too. Struct
// fields named Err are not sentinels; `oc.Err != nil` stays legal.
type errwrap struct{}

func (errwrap) Name() string { return "errwrap" }
func (errwrap) Doc() string {
	return "sentinel errors are wrapped with %w and matched with errors.Is"
}

const errwrapFactKey = "sentinels"

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func (a errwrap) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg

	own := map[types.Object]bool{}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || len(name) < 4 || name[:3] != "Err" {
			continue
		}
		if types.Implements(v.Type(), errorIface) {
			own[v] = true
		}
	}
	pass.ExportFact(errwrapFactKey, own)

	sentinels := map[types.Object]bool{}
	for o := range own {
		sentinels[o] = true
	}
	for _, imp := range p.Pkg.Imports() {
		if v, ok := pass.ImportFact(imp.Path(), errwrapFactKey); ok {
			for o := range v.(map[types.Object]bool) {
				sentinels[o] = true
			}
		}
	}
	if len(sentinels) == 0 {
		return nil
	}

	var out []analysis.Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, analysis.Finding{
			Pos:  pass.Module.Fset.Position(pos),
			Rule: a.Name(),
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	sentinelOf := func(e ast.Expr) types.Object {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := p.Info.Uses[e]; o != nil && sentinels[o] {
				return o
			}
		case *ast.SelectorExpr:
			if o := p.Info.Uses[e.Sel]; o != nil && sentinels[o] {
				return o
			}
		}
		return nil
	}

	for _, f := range p.Files {
		errorsName := importedErrorsName(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					s, other := sentinelOf(pair[0]), pair[1]
					if s == nil || isNilIdent(p.Info, other) {
						continue
					}
					report(n.OpPos, "error compared to sentinel %s with %s; use errors.Is so wrapped errors still match", s.Name(), n.Op)
					// The rewrite is only offered when the file already
					// imports errors — a fix must never break the build.
					if errorsName != "" {
						neg := ""
						if n.Op == token.NEQ {
							neg = "!"
						}
						out[len(out)-1].Fix = &analysis.Fix{
							Message: "compare with errors.Is",
							Edits: []analysis.TextEdit{{Pos: n.Pos(), End: n.End(),
								New: fmt.Sprintf("%s%s.Is(%s, %s)", neg, errorsName,
									types.ExprString(ast.Unparen(other)), types.ExprString(ast.Unparen(pair[0])))}},
						}
					}
					break
				}
				if isErrorTextMatch(p.Info, n.X, n.Y) || isErrorTextMatch(p.Info, n.Y, n.X) {
					report(n.OpPos, "error matched by message text; compare sentinels with errors.Is instead of Error() strings")
				}
			case *ast.CallExpr:
				a.checkErrorf(pass, n, sentinelOf, report)
				a.checkStringsMatch(pass, n, report)
			}
			return true
		})
	}
	return out
}

// checkErrorf flags a sentinel passed to fmt.Errorf under any verb but %w.
func (errwrap) checkErrorf(pass *analysis.Pass, call *ast.CallExpr, sentinelOf func(ast.Expr) types.Object, report func(token.Pos, string, ...any)) {
	p := pass.Pkg
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	refs := verbRefs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		s := sentinelOf(arg)
		if s == nil {
			continue
		}
		for _, ref := range refs {
			if ref.arg != i {
				continue
			}
			if ref.verb != 'w' {
				report(arg.Pos(), "sentinel %s passed to fmt.Errorf with %%%s%c; wrap with %%w so errors.Is can match through the wrapper", s.Name(), ref.flags, ref.verb)
			}
			break
		}
	}
}

// checkStringsMatch flags strings.Contains/HasPrefix/HasSuffix applied to an
// Error() result: matching by message text breaks as soon as a wrapping
// layer rewords the message.
func (a errwrap) checkStringsMatch(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	p := pass.Pkg
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "strings" {
		return
	}
	switch obj.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorCall(p.Info, arg) {
			report(arg.Pos(), "error matched by message text via strings.%s; compare sentinels with errors.Is instead of Error() strings", obj.Name())
		}
	}
}

// isErrorTextMatch reports whether x is an Error() call compared against a
// constant string y.
func isErrorTextMatch(info *types.Info, x, y ast.Expr) bool {
	if !isErrorCall(info, x) {
		return false
	}
	tv, ok := info.Types[y]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.String
}

// isErrorCall reports whether e is a call of the error interface's Error
// method.
func isErrorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	recv := info.TypeOf(sel.X)
	return recv != nil && types.Implements(recv, errorIface)
}

// importedErrorsName returns the name the errors package is imported under
// in the file ("" when absent, dot- or blank-imported).
func importedErrorsName(f *ast.File) string {
	for _, spec := range f.Imports {
		if spec.Path.Value != `"errors"` {
			continue
		}
		if spec.Name == nil {
			return "errors"
		}
		if spec.Name.Name == "_" || spec.Name.Name == "." {
			return ""
		}
		return spec.Name.Name
	}
	return ""
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
