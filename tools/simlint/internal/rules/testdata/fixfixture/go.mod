module fixfixture

go 1.22
