// Package fx is the -fix fixture: every finding in it carries a suggested
// fix, and applying the fixes once leaves the package lint-clean.
package fx

import (
	"context"
	"errors"
)

// ErrBoom is the sentinel the comparisons below must match with errors.Is.
var ErrBoom = errors.New("boom")

// RunContext is the module-internal context-taking sink.
func RunContext(ctx context.Context, n int) int {
	<-ctx.Done()
	return n
}

// Use drops its context for a fresh root and compares a sentinel with ==:
// two fixable findings.
func Use(ctx context.Context, err error, n int) (int, bool) {
	v := RunContext(context.Background(), n)
	return v, err == ErrBoom
}

// Negated compares a sentinel with !=: fixable.
func Negated(err error) bool {
	if err != ErrBoom {
		return true
	}
	return false
}
