// Package pair exercises the apipair rule: a correct pair, an orphan, a
// drifting wrapper, and a pinned minimum pair count the package misses.
package pair

import "context"

// GoodContext and Good form a correct pair.
func GoodContext(ctx context.Context, n int) int { return n }

// Good delegates in a single statement: clean.
func Good(n int) int { return GoodContext(context.Background(), n) }

// OrphanContext has no context-free wrapper: flagged.
func OrphanContext(ctx context.Context) error { return ctx.Err() }

// DriftContext has a wrapper that does not delegate.
func DriftContext(ctx context.Context, n int) int { return n }

// Drift re-implements instead of delegating: flagged.
func Drift(n int) int {
	if n > 0 {
		return DriftContext(context.Background(), n)
	}
	return 0
}
