// Package uu declares fixture quantity types for the units rule. Every
// package-level named type with a numeric underlying type is a unit type.
package uu

// Cycles is a fixture duration unit.
type Cycles float64

// Bytes is a fixture volume unit.
type Bytes float64

// BytesPerCycle is a fixture bandwidth unit.
type BytesPerCycle float64

// Label is not numeric and must not be treated as a unit type.
type Label string
