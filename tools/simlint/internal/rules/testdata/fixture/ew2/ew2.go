// Package ew2 compares against an imported sentinel, exercising the errwrap
// fact flow between packages.
package ew2

import "fixture/ew"

// CrossCompared tests an imported sentinel with !=: flagged.
func CrossCompared(err error) bool { return err != ew.ErrBoom }
