// Package mix exercises the units rule: type-erased mixing, reinterpreting
// conversions, and bare literals at unit boundaries — plus the sanctioned
// spellings that must stay clean.
package mix

import "fixture/uu"

// Mixed adds cycles to bytes through the float64 escape hatch: flagged.
func Mixed(c uu.Cycles, b uu.Bytes) float64 {
	return float64(c) + float64(b)
}

// Compared orders cycles against bytes: flagged.
func Compared(c uu.Cycles, b uu.Bytes) bool {
	return float64(c) > float64(b)
}

// Reinterpret converts bytes directly to cycles: flagged.
func Reinterpret(b uu.Bytes) uu.Cycles {
	return uu.Cycles(b)
}

// Wait gives the fixture a unit-typed parameter.
func Wait(c uu.Cycles) uu.Cycles { return c }

// Literal passes a bare literal across the unit boundary: flagged.
func Literal() uu.Cycles {
	return Wait(250)
}

// Ratio divides bytes by cycles: division changes dimension, never flagged.
func Ratio(b uu.Bytes, c uu.Cycles) uu.BytesPerCycle {
	return uu.BytesPerCycle(float64(b) / float64(c))
}

// Explicit reinterprets through a dimensionless float64: the sanctioned
// spelling, clean.
func Explicit(b uu.Bytes) uu.Cycles {
	return uu.Cycles(float64(b))
}

// step is a typed constant; passing it is clean.
const step = uu.Cycles(8)

// Named passes a typed constant across the boundary: clean.
func Named() uu.Cycles { return Wait(step) }

// SameUnit adds cycles to cycles and compares against an untyped zero:
// clean.
func SameUnit(a, b uu.Cycles) bool {
	return a+b > 0
}

// MixedSuppressed carries a justified suppression: no finding.
func MixedSuppressed(c uu.Cycles, b uu.Bytes) float64 {
	//simlint:ignore units fixture demonstrates a justified suppression
	return float64(c) + float64(b)
}
