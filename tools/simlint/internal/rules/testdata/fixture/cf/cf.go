// Package cf exercises the ctxflow rule: fresh root contexts created
// outside main must not flow into the module's context-taking calls.
package cf

import "context"

// RunContext is a module-internal context-taking entry point (a sink).
func RunContext(ctx context.Context, n int) int {
	<-ctx.Done()
	return n
}

// Run is the sanctioned X/XContext convenience wrapper: exempt.
func Run(n int) int { return RunContext(context.Background(), n) }

// Fresh ignores its own context parameter: flagged, with a fix.
func Fresh(ctx context.Context, n int) int {
	return RunContext(context.Background(), n)
}

// Derived proves deriving from a fresh root does not launder it: flagged.
func Derived(ctx context.Context, n int) int {
	c, cancel := context.WithCancel(context.Background())
	defer cancel()
	return RunContext(c, n)
}

// Threaded passes the caller's context through: clean.
func Threaded(ctx context.Context, n int) int {
	return RunContext(ctx, n)
}

// Spawn's goroutine drops the caller's context for a fresh root: flagged.
func Spawn(ctx context.Context, n int) {
	done := make(chan struct{})
	go func() {
		RunContext(context.Background(), n)
		close(done)
	}()
	<-done
}
