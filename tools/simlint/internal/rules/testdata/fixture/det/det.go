// Package det is a fixture deterministic package: maporder and wallclock
// findings, plus correctly and incorrectly suppressed variants.
package det

import (
	"math/rand"
	"time"
)

// Sum ranges a map without sorting: maporder must flag the range.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SumSuppressed carries a justified suppression: no finding.
func SumSuppressed(m map[string]int) int {
	total := 0
	//simlint:ignore maporder addition is commutative; order cannot leak
	for _, v := range m {
		total += v
	}
	return total
}

// SumBadSuppress has a suppression without a justification: the range is
// still flagged and the bare suppression is reported under "ignore".
func SumBadSuppress(m map[string]int) int {
	total := 0
	//simlint:ignore maporder
	for _, v := range m {
		total += v
	}
	return total
}

// Stamp uses the wall clock twice: wallclock must flag both sites.
func Stamp() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// StampSuppressed is a sanctioned timing-measurement site.
func StampSuppressed() time.Duration {
	start := time.Now() //simlint:ignore wallclock measurement only; never feeds simulated state
	//simlint:ignore wallclock measurement only; never feeds simulated state
	return time.Since(start)
}

// Hold returns a duration value: referencing package time for types must
// not be flagged.
func Hold() time.Duration { return 5 * time.Millisecond }

// Draw uses the global math/rand source: wallclock must flag it.
func Draw() int {
	return rand.Intn(6)
}

// SumUnknownSuppress names a rule that does not exist: the suppression is
// reported under "ignore" and the range is still flagged.
func SumUnknownSuppress(m map[string]int) int {
	total := 0
	//simlint:ignore mapordering sounded plausible but is not a rule
	for _, v := range m {
		total += v
	}
	return total
}
