// Package hp is the hotpath fixture: Engine.Step is the configured hot
// root. It reaches the seeded violations below through static calls, an
// interface dispatch (CHA pulls Table.Load into the hot set), and a
// method chain two frames deep — each must be flagged with its witness
// chain, and the exempted sites must stay silent.
package hp

import (
	"fmt"
	"sync"
)

// Mem is the dispatch seam of the fixture.
type Mem interface {
	Load(addr uint64) uint64
}

// Engine.Step is the hot root (fixture Config.HotRoots).
type Engine struct {
	mem   Mem
	mu    sync.Mutex
	count uint64
}

func (e *Engine) Step(addr uint64) uint64 {
	e.locked()
	return e.mem.Load(addr)
}

func (e *Engine) locked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.count++
}

// Table implements Mem, so the root reaches it only through CHA.
type Table struct {
	buf  []uint64
	hist map[uint64]int
	name string
}

func (t *Table) Load(addr uint64) uint64 {
	t.buf = append(t.buf, addr)
	t.record(addr)
	return t.lookup(addr)
}

func (t *Table) lookup(addr uint64) uint64 {
	scratch := make([]uint64, 8)
	scratch[0] = addr
	for k := range t.hist {
		addr += uint64(k)
	}
	t.grow(int(addr % 64))
	return spill(t, addr)
}

// spill sits three calls below the interface dispatch; its violations
// must carry the full chain Step → Load → lookup → spill.
func spill(t *Table, addr uint64) uint64 {
	fmt.Println(addr)
	consume(addr)
	other := &Table{}
	s := t.name + "x"
	f := func() uint64 { return addr }
	return uint64(len(s)+len(other.name)) + f()
}

// consume's any parameter makes the call site above a boxing finding;
// its own body is clean.
func consume(v any) {
	_ = v
}

// grow is exempt as a whole function: amortized arena growth, silent.
//
//simlint:hotpath-exempt arena keeps its high-water capacity, so the steady state allocates nothing
func (t *Table) grow(n int) {
	if n > len(t.buf) {
		t.buf = make([]uint64, n)
	}
}

// record carries a site-level exemption on the append, silent.
func (t *Table) record(addr uint64) {
	//simlint:hotpath-exempt the log keeps its high-water capacity across epochs
	t.buf = append(t.buf, addr)
}

// sloppy's directive has no justification: the directive itself is a
// finding and exempts nothing.
func (t *Table) sloppy(addr uint64) uint64 {
	//simlint:hotpath-exempt
	return addr * 2
}

// cold is never reached from the root, so its directive is stale.
//
//simlint:hotpath-exempt justified, but nothing hot reaches this function
func cold(addr uint64) uint64 {
	return addr
}
