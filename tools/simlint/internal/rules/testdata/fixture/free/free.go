// Package free is NOT in the deterministic set: map ranges and wall-clock
// reads here must produce no maporder/wallclock findings.
package free

import "time"

// Tally may range a map freely outside the deterministic core.
func Tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Stamp may read the wall clock freely outside the deterministic core.
func Stamp() time.Time { return time.Now() }
