// Package ss is the sharestrict fixture: Pool.run is the configured
// worker root, Mesh the shared type. The goroutine run spawns — and
// everything it reaches — must not write the Mesh except through the
// sanctioned surface; the barrier, which runs after the join, may.
package ss

import "sync"

// Mesh is the configured shared structure.
type Mesh struct {
	Total uint64
	util  float64
}

// Latency mutates shared statistics: workers must not call it.
func (m *Mesh) Latency(from, to int) uint64 {
	m.Total++
	return uint64(from ^ to)
}

// LatencyInto is sanctioned by the *Into accumulator convention.
func (m *Mesh) LatencyInto(a *Acc, from, to int) uint64 {
	a.hops++
	return uint64(from ^ to)
}

// Tiles is sanctioned by Config.SharedSafe.
func (m *Mesh) Tiles() int { return 16 }

// Merge folds an accumulator into the shared state at the barrier.
func (m *Mesh) Merge(a *Acc) {
	m.Total += a.hops
	m.util += float64(a.hops)
}

// Acc is a worker-owned accumulator.
type Acc struct{ hops uint64 }

type Pool struct {
	mesh *Mesh
	accs []Acc
}

// run is the worker root: the goroutine below is the epoch worker pool,
// and the barrier after Wait is not worker-reachable.
func (p *Pool) run() {
	var wg sync.WaitGroup
	for i := range p.accs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.work(i)
		}(i)
	}
	wg.Wait()
	p.barrier()
}

// work runs on a worker: sanctioned calls stay silent, the mutating call
// and the direct write are findings.
func (p *Pool) work(i int) {
	p.mesh.LatencyInto(&p.accs[i], i, 0)
	_ = p.mesh.Tiles()
	p.mesh.Latency(i, 0)
	p.mesh.Total++
	p.deep()
	p.serial(i)
	p.handoff()
}

// deep is two frames below the spawn; its write must carry the full
// witness chain run$1 → work → deep.
func (p *Pool) deep() {
	p.mesh.util = 0.5
}

// serial shows the standard suppression mechanism applies, silent.
func (p *Pool) serial(i int) {
	//simlint:ignore sharestrict fixture's serial fallback: this path never runs concurrently
	p.mesh.Latency(i, i)
}

// handoff takes a mutating method as a value: flagged even though the
// call happens elsewhere.
func (p *Pool) handoff() func(*Acc) {
	return p.mesh.Merge
}

// barrier runs after the join: Merge here is legal and unreported.
func (p *Pool) barrier() {
	for i := range p.accs {
		p.mesh.Merge(&p.accs[i])
	}
}
