// Package af3 proves approxflow taint crosses package boundaries through
// the facts exported by af2.
package af3

import (
	"fixture/af"
	"fixture/af2"
)

// Indirect passes a prediction to af2.Persist, which the summary says
// forwards it to the store: flagged.
func Indirect(p af.Predictor, st af.Store, key string) {
	af2.Persist(st, key, p.Predict(key))
}

// Imported saves af2.Recycle's result, which the summary says is
// approximate: flagged.
func Imported(st af.Store, p af.Predictor, key string) {
	r := af2.Recycle(p, key)
	st.Save(key, r)
}

// Grounded is clean: the imported summary taints Recycle, not everything.
func Grounded(st af.Store, p af.Predictor, key string) {
	r := af2.Recycle(p, key)
	_ = r
	st.Save(key, af.Result{})
}
