// Package keys holds the fixture design-point structs cross-checked by the
// keydrift analyzer against the encoder in fixture/enc.
package keys

// Telemetry is reached from Options through a pointer field.
type Telemetry struct {
	// Sink is deliberately non-semantic and suppressed.
	Sink func() //simlint:ignore keydrift sink identity is not semantic; enablement is keyed
	// Warm is encoded by the fixture encoder.
	Warm bool
}

// Region is reached from Options through a slice field.
type Region struct {
	Size int
	Skew float64 // not encoded: keydrift must flag this field
}

// Options is the keydrift root type.
type Options struct {
	Seed    uint64
	Name    string
	Drift   int // not encoded: keydrift must flag this field
	Tele    *Telemetry
	Regions []Region
}
