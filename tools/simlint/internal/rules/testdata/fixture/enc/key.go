// Package enc is the fixture canonical key encoder checked by keydrift.
package enc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"fixture/keys"
)

// Key encodes the semantic fields of o — all except Drift and Region.Skew,
// which the keydrift fixture test expects to be flagged.
func Key(o keys.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d|name=%s\n", o.Seed, o.Name)
	if o.Tele != nil {
		fmt.Fprintf(h, "warm=%t\n", o.Tele.Warm)
	}
	for _, r := range o.Regions {
		fmt.Fprintf(h, "region|size=%d\n", r.Size)
	}
	return hex.EncodeToString(h.Sum(nil))
}
