// Package hashctx exercises the reflectfmt analyzer: reflected formatting
// of pointer-carrying values in (and out of) hash/key contexts.
package hashctx

import (
	"crypto/sha256"
	"fmt"
)

type job struct {
	Name string
	Tele *int
}

// Key reproduces the PR-2 cache-key bug: %+v of a struct carrying a
// pointer, inside a key-named function. reflectfmt must flag the argument.
func Key(j job) string {
	return fmt.Sprintf("%+v", j)
}

// KeySuppressed is the same bug with a justified suppression: no finding.
func KeySuppressed(j job) string {
	//simlint:ignore reflectfmt fixture demonstrating an accepted risk
	return fmt.Sprintf("%+v", j)
}

// KeyExplicit encodes fields explicitly: no finding.
func KeyExplicit(j job) string {
	return fmt.Sprintf("name=%s", j.Name)
}

// Describe is not a key context: the same reflected formatting is fine.
func Describe(j job) string {
	return fmt.Sprintf("%+v", j)
}

// mix is not key-named, but writes formatted output into a hash.Hash:
// reflectfmt must flag the %v argument.
func mix(j job) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "%v", j)
	return h.Sum(nil)
}

// mixPlain writes only pointer-free values into the hash: no finding.
func mixPlain(j job) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "name=%s|n=%d", j.Name, 7)
	return h.Sum(nil)
}
