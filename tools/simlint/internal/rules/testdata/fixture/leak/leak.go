// Package leak exercises the goroleak rule.
package leak

import (
	"context"
	"sync"
)

// Fire spawns without a context parameter and without a join: two findings.
func Fire() {
	go func() {}()
}

// Unjoined has a context but no WaitGroup join: flagged.
func Unjoined(ctx context.Context) {
	go func() {}()
}

// Joined is the sanctioned shape: clean.
func Joined(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// Named spawns a local variable bound to a func literal: clean.
func Named(ctx context.Context) {
	var wg sync.WaitGroup
	worker := func() { defer wg.Done() }
	wg.Add(1)
	go worker()
	wg.Wait()
}

// Opaque spawns a function value the rule cannot see into: flagged.
func Opaque(ctx context.Context, f func()) {
	go f()
}
