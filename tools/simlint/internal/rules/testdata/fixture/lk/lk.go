// Package lk exercises the lockscope rule: no blocking operation with a
// mutex held, no return path that leaks a lock.
package lk

import (
	"os"
	"sync"
	"time"
)

// Box mixes a mutex with the blocking machinery lockscope guards against.
type Box struct {
	mu   sync.Mutex
	n    int
	file *os.File
	ch   chan int
	cond *sync.Cond
}

// HeldAcrossSend sends on a channel with the mutex held: flagged.
func (b *Box) HeldAcrossSend(v int) {
	b.mu.Lock()
	b.ch <- v
	b.mu.Unlock()
}

// HeldAcrossIO writes a file with the mutex held: flagged even though the
// unlock is deferred.
func (b *Box) HeldAcrossIO(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.file.Write(p)
}

// LeakyReturn's early return leaves the lock held: flagged.
func (b *Box) LeakyReturn(v int) bool {
	b.mu.Lock()
	if v < 0 {
		return false
	}
	b.n = v
	b.mu.Unlock()
	return true
}

// Probe is clean: a select with a default clause cannot block.
func (b *Box) Probe(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- v:
		return true
	default:
		return false
	}
}

// Blocks holds the lock across a default-less select: flagged.
func (b *Box) Blocks(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- v:
	}
}

// CondWait is clean: sync.Cond.Wait's contract requires the lock held.
func (b *Box) CondWait() int {
	b.mu.Lock()
	for b.n == 0 {
		b.cond.Wait()
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// sleepy may block; the local summary poisons its callers.
func sleepy() { time.Sleep(time.Millisecond) }

// ViaHelper holds the lock across a callee that sleeps: flagged.
func (b *Box) ViaHelper() {
	b.mu.Lock()
	sleepy()
	b.mu.Unlock()
}

// UnlockedIO releases the lock before the write: clean.
func (b *Box) UnlockedIO(p []byte) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.file.Write(p)
}

// Journal is clean by suppression: the justified ignore mirrors the
// store's ordered-journal idiom.
func (b *Box) Journal(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//simlint:ignore lockscope ordered journal append, bounded write
	b.file.Write(p)
}
