// Package af exercises the approxflow rule: Predictor.Predict is the
// configured taint source, Store.Save (argument 1) the ground-truth sink,
// and Cache.cache the ground-truth memo tier.
package af

// Result stands in for a simulation result.
type Result struct{ Cycles float64 }

// Predictor is the model; its predictions are approximate.
type Predictor struct{}

func (Predictor) Predict(key string) Result { return Result{} }

// Store is the durable ground-truth tier.
type Store struct{}

func (Store) Save(key string, r Result) {}

// Cache is the in-memory ground-truth tier.
type Cache struct{ cache map[string]Result }

// execute produces ground truth.
func execute(key string) Result { return Result{} }

// Direct saves a prediction straight to the store: flagged.
func Direct(p Predictor, st Store, key string) {
	r := p.Predict(key)
	st.Save(key, r)
}

// Killed is clean: the prediction is overwritten by ground truth before the
// save — the engine's own hit-then-execute pattern, which only a
// flow-sensitive analysis keeps quiet.
func Killed(p Predictor, st Store, key string) {
	r := p.Predict(key)
	_ = r
	r = execute(key)
	st.Save(key, r)
}

// Branch leaves the prediction live on one arm: flagged at the join.
func Branch(p Predictor, st Store, key string, hit bool) {
	r := execute(key)
	if hit {
		r = p.Predict(key)
	}
	st.Save(key, r)
}

// Memo inserts a prediction into the ground-truth cache field: flagged.
func Memo(p Predictor, c *Cache, key string) {
	c.cache[key] = p.Predict(key)
}

// MemoClean memoizes ground truth: clean.
func MemoClean(c *Cache, key string) {
	c.cache[key] = execute(key)
}

// launder returns a prediction through a same-package helper; the summary
// carries the taint to callers.
func launder(p Predictor, key string) Result {
	return p.Predict(key)
}

// ViaHelper saves a laundered prediction: flagged through the summary.
func ViaHelper(p Predictor, st Store, key string) {
	st.Save(key, launder(p, key))
}
