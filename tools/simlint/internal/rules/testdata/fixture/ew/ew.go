// Package ew exercises the errwrap rule against its own sentinel.
package ew

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBoom is the fixture sentinel.
var ErrBoom = errors.New("boom")

// Compared tests with ==: flagged.
func Compared(err error) bool { return err == ErrBoom }

// Wrapped passes the sentinel under %v: flagged.
func Wrapped(err error) error { return fmt.Errorf("op: %v: %w", ErrBoom, err) }

// TextMatched compares the message text: flagged.
func TextMatched(err error) bool { return err.Error() == "boom" }

// ContainsMatched greps the message text: flagged.
func ContainsMatched(err error) bool { return strings.Contains(err.Error(), "boom") }

// IsMatched uses errors.Is: clean.
func IsMatched(err error) bool { return errors.Is(err, ErrBoom) }

// WrapClean wraps with %w: clean.
func WrapClean(err error) error { return fmt.Errorf("op: %w", ErrBoom) }

// NilCheck compares the sentinel variable itself to nil: clean.
func NilCheck() bool { return ErrBoom != nil }
