// Package af2 exercises approxflow's exported summaries: its functions are
// themselves clean, but their taint behavior must be visible to importers.
package af2

import "fixture/af"

// Persist forwards its payload to the ground-truth store; the exported
// summary records that argument 2 reaches a sink.
func Persist(st af.Store, key string, r af.Result) {
	st.Save(key, r)
}

// Recycle returns a model prediction; the exported summary records that the
// result is approximate.
func Recycle(p af.Predictor, key string) af.Result {
	return p.Predict(key)
}
