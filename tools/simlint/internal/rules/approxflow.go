package rules

import (
	"fmt"
	"go/ast"
	"go/types"

	"scalesim/tools/simlint/internal/analysis"
	"scalesim/tools/simlint/internal/flow"
)

// approxflow statically enforces the surrogate tier's quarantine invariant:
// a value that originates from the learned predictor (runner.Predictor's
// Predict, the random forest's Predict/PredictStats) is "approximate" and
// must never reach a ground-truth tier — the durable store's Save, the
// engine's memory cache, or the training set's Observe. PR 7 established
// the invariant dynamically (the engine evicts model-served entries and
// never persists them); this rule makes the property hold by construction,
// so the concurrent code that items 4–5 of the roadmap will add cannot
// silently violate it.
//
// The analysis is an intraprocedural reaching-values taint over the flow
// package's CFG, flow-sensitive with strong updates: a reassignment from
// ground truth kills the taint (exactly the engine's
// `ent.res = execute(...)` pattern), while a join of a tainted and a clean
// branch stays tainted. Function summaries — "returns an approximate
// value", "parameter N flows to a ground-truth sink" — propagate within a
// package and ride the framework's fact mechanism across packages, so a
// helper in one package cannot launder a prediction into another package's
// store write.
type approxflow struct {
	sources []taintSpec
	sinks   []taintSpec
	caches  []taintSpec
}

func (approxflow) Name() string { return "approxflow" }
func (approxflow) Doc() string {
	return "model-predicted (approximate) values never reach the store, memory cache, or training set"
}

const approxFactKey = "taint-summaries"

// approxSummary is one function's cross-call taint behavior.
type approxSummary struct {
	// Result carries flow.Source when the function may return an
	// approximate value, plus the flow.ParamBit of every parameter that may
	// flow into its return value.
	Result flow.Taint
	// SinkParams is a bitset of parameter indices that reach a ground-truth
	// sink inside the function (bit i = parameter i).
	SinkParams uint64
}

func (a approxflow) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg
	mod := pass.Module

	// Summaries of everything callable from this package: imported facts
	// first, then this package's own functions (computed to fixpoint below).
	imported := map[string]approxSummary{} // "<pkg path>|<funcKey>"
	for _, imp := range p.Pkg.Imports() {
		if v, ok := pass.ImportFact(imp.Path(), approxFactKey); ok {
			for k, s := range v.(map[string]approxSummary) {
				imported[imp.Path()+"|"+k] = s
			}
		}
	}

	local := map[*types.Func]*approxSummary{}
	lookup := func(fn *types.Func) (approxSummary, bool) {
		if fn == nil || fn.Pkg() == nil {
			return approxSummary{}, false
		}
		if fn.Pkg() == p.Pkg {
			if s := local[fn]; s != nil {
				return *s, true
			}
			return approxSummary{}, false
		}
		s, ok := imported[fn.Pkg().Path()+"|"+funcKey(fn)]
		return s, ok
	}

	isSource := func(fn *types.Func) bool {
		for _, spec := range a.sources {
			if matchesSpec(mod.Path, spec, fn) {
				return true
			}
		}
		return false
	}
	sinkArg := func(fn *types.Func) (taintSpec, bool) {
		for _, spec := range a.sinks {
			if matchesSpec(mod.Path, spec, fn) {
				return spec, true
			}
		}
		return taintSpec{}, false
	}

	// callTaint maps argument labels through a callee: sources taint their
	// results; summarized callees propagate their parameters' labels.
	callTaint := func(call *ast.CallExpr, args []flow.Taint) flow.Taint {
		fn := calleeOf(p.Info, call)
		if fn == nil {
			return 0
		}
		if isSource(fn) {
			return flow.Source
		}
		sum, ok := lookup(fn)
		if !ok {
			return 0
		}
		t := sum.Result & flow.Source
		for _, i := range sum.Result.Params() {
			if i < len(args) {
				t |= args[i] & flow.Source
			}
		}
		return t
	}

	declObj := func(u funcUnit) *types.Func {
		if u.decl == nil {
			return nil
		}
		fn, _ := p.Info.Defs[u.decl.Name].(*types.Func)
		return fn
	}

	// Phase 1: iterate per-function summaries to fixpoint. Sink-parameter
	// bits are collected through the call visitor; result bits come from
	// the engine's return-taint union. Monotone, so the loop terminates.
	var units []funcUnit
	for _, f := range p.Files {
		units = append(units, funcUnits(f)...)
	}
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			fn := declObj(u)
			var cur approxSummary
			if fn != nil {
				if s := local[fn]; s != nil {
					cur = *s
				}
			}
			next := cur
			visit := flow.TaintVisitor{Call: func(call *ast.CallExpr, args []flow.Taint) {
				callee := calleeOf(p.Info, call)
				if callee == nil {
					return
				}
				if spec, ok := sinkArg(callee); ok && spec.arg < len(args) {
					for _, i := range args[spec.arg].Params() {
						next.SinkParams |= 1 << uint(i)
					}
				}
				if sum, ok := lookup(callee); ok {
					for i := 0; i < 62; i++ {
						if sum.SinkParams&(1<<uint(i)) == 0 || i >= len(args) {
							continue
						}
						for _, j := range args[i].Params() {
							next.SinkParams |= 1 << uint(j)
						}
					}
				}
			}}
			ret := flow.RunTaint(u.body, flow.TaintConfig{
				Info:      p.Info,
				Params:    u.params,
				Results:   u.results,
				CallTaint: callTaint,
			}, visit)
			next.Result |= ret
			if fn != nil && next != cur {
				local[fn] = &next
				changed = true
			}
		}
	}

	// Phase 2: replay every function once with the stable summaries and
	// report sink hits.
	var out []analysis.Finding
	report := func(pos ast.Node, format string, args ...any) {
		out = append(out, analysis.Finding{
			Pos:  mod.Fset.Position(pos.Pos()),
			Rule: a.Name(),
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, u := range units {
		u := u
		visit := flow.TaintVisitor{
			Call: func(call *ast.CallExpr, args []flow.Taint) {
				callee := calleeOf(p.Info, call)
				if callee == nil {
					return
				}
				if spec, ok := sinkArg(callee); ok && spec.arg < len(args) && args[spec.arg]&flow.Source != 0 {
					report(call, "approximate value (derived from a model prediction) flows into ground-truth sink %s in %s; predictions must never reach the store, memory cache, or training set",
						funcKey(callee), u.name)
					return
				}
				if sum, ok := lookup(callee); ok {
					for i := 0; i < 62 && i < len(args); i++ {
						if sum.SinkParams&(1<<uint(i)) != 0 && args[i]&flow.Source != 0 {
							report(call, "approximate value (derived from a model prediction) flows into %s, which passes argument %d to a ground-truth sink",
								funcKey(callee), i)
							return
						}
					}
				}
			},
			Assign: func(lhs, rhs ast.Expr, t flow.Taint) {
				if t&flow.Source == 0 {
					return
				}
				if spec, ok := a.cacheField(p.Info, mod.Path, lhs); ok {
					report(lhs, "approximate value (derived from a model prediction) is inserted into ground-truth cache %s.%s in %s; the memory tier holds ground truth only",
						spec.typ, spec.name, u.name)
				}
			},
		}
		flow.RunTaint(u.body, flow.TaintConfig{
			Info:      p.Info,
			Params:    u.params,
			Results:   u.results,
			CallTaint: callTaint,
		}, visit)
	}

	// Export the summaries of exported functions and methods for importing
	// packages.
	exported := map[string]approxSummary{}
	for fn, sum := range local {
		if fn.Exported() && (sum.Result&flow.Source != 0 || sum.SinkParams != 0 || sum.Result.Params() != nil) {
			exported[funcKey(fn)] = *sum
		}
	}
	pass.ExportFact(approxFactKey, exported)
	return out
}

// cacheField reports whether lhs is an index-assignment into a struct
// field registered as a ground-truth cache ("<dir>.<Type>.<Field>").
func (a approxflow) cacheField(info *types.Info, modPath string, lhs ast.Expr) (taintSpec, bool) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return taintSpec{}, false
	}
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	if !ok {
		return taintSpec{}, false
	}
	fieldObj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !fieldObj.IsField() || fieldObj.Pkg() == nil {
		return taintSpec{}, false
	}
	recv := info.TypeOf(sel.X)
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return taintSpec{}, false
	}
	for _, spec := range a.caches {
		if spec.name == fieldObj.Name() &&
			named.Obj().Name() == spec.typ &&
			fieldObj.Pkg().Path() == pkgPathFor(modPath, spec.dir) {
			return spec, true
		}
	}
	return taintSpec{}, false
}
