// Package rules holds simlint's analyzers. Each rule is a small
// analysis.PackageAnalyzer or analysis.ModuleAnalyzer; the registry in All
// wires them to a Config and is the single source of truth for known rule
// names (which also validates //simlint:ignore comments).
package rules

import "scalesim/tools/simlint/internal/analysis"

// RepoConfig is this repository's lint policy. The deterministic set is
// every package whose code executes between "design point in" and "Result
// out": the simulator core and its models, the synthetic trace generators,
// the scale-model protocols, and the campaign engine (whose cache keys and
// reports must themselves be reproducible). It lives here, next to the
// rules, so the driver and the repo-clean test share one definition.
func RepoConfig(root string) analysis.Config {
	cfg := analysis.Config{
		Root: root,
		Deterministic: []string{
			"internal/sim",
			"internal/trace",
			"internal/cache",
			"internal/noc",
			"internal/dram",
			"internal/scalemodel",
			"internal/runner",
			"internal/store",
			// The serving layer schedules work, so its decisions (admission
			// order, coalescing) must be a pure function of request arrival
			// order — no wall clock, no map-iteration order.
			"internal/server",
			// The surrogate tier's trained model must be a pure function of
			// (training set, configuration): byte-identical fingerprints
			// across processes require the same discipline.
			"internal/surrogate",
		},
		KeyFile:  "internal/runner/key.go",
		KeyRoots: []string{"internal/runner.Job"},
		UnitsDir: "internal/units",
		// internal/sim joined for PR 10: the epoch fork/join pool's `go`
		// statements must be WaitGroup-joined and context-scoped like every
		// other pool in the tree.
		Goroutines: []string{"internal/runner", "internal/store", "internal/server", "internal/surrogate", "internal/sim"},
		// The root package must keep at least Simulate/SimulateParallel/
		// RunCampaign as Context pairs, and the serving layer its
		// ListenAndServe pair; a refactor that hides them from the analyzer
		// would otherwise silently void the rule.
		APIPairMin: map[string]int{"": 3, "internal/server": 1},
		// The surrogate quarantine invariant (PR 7): anything the predictor
		// returns is approximate and must never reach a ground-truth tier —
		// the durable store, the engine's memory cache, or the training set
		// (predictions fed back as observations would make the model eat its
		// own output).
		ApproxSources: []string{
			"internal/runner.Predictor.Predict",
			"internal/ml.RandomForest.Predict",
			"internal/ml.RandomForest.PredictStats",
		},
		ApproxSinks: []string{
			"internal/runner.ResultStore.Save@1",
			"internal/store.Store.Save@1",
			"internal/runner.Predictor.Observe@1",
		},
		ApproxCaches: []string{"internal/runner.Engine.cache"},
		// Mutex hygiene in every package that mixes locks with channels, the
		// journal, or the network — and, since PR 10, the epoch simulator
		// (which must in fact hold no locks at all; hotpath enforces that
		// on the hot set, lockscope on whatever it would add).
		Locks: []string{"internal/runner", "internal/store", "internal/server", "internal/surrogate", "internal/sim"},
		// The hot set of the epoch simulator (PR 9's 0 allocs/op loop): the
		// per-cycle core stepper, the memory-system resolve path, and the
		// cache access paths, per-core and shared-LLC.
		HotRoots: []string{
			"internal/cpu.Core.Run",
			"internal/sim.coreCtx.resolve",
			"internal/cache.Level.Access",
			"internal/cache.NUCA.Access",
		},
		// The epoch fork/join pool: goroutines spawned here must not write
		// shared simulator state.
		WorkerRoots: []string{"internal/sim.machine.runCoresParallel"},
		SharedTypes: []string{"internal/noc.Mesh", "internal/dram.Memory", "internal/cache.NUCA"},
		// Read-only shared surfaces workers may touch concurrently; the
		// *Into accumulator methods are sanctioned by convention.
		SharedSafe: []string{
			"internal/noc.Mesh.Route",
			"internal/noc.Mesh.MCTile",
			"internal/noc.Mesh.Tile",
			"internal/noc.Mesh.Tiles",
			"internal/dram.Memory.MCOf",
			"internal/dram.Memory.Controllers",
			"internal/dram.Memory.BaseLatency",
			"internal/cache.NUCA.SliceOf",
			"internal/cache.NUCA.Probe",
		},
	}
	// Suppressions always validate against the full registry, even when the
	// driver runs a rule subset.
	cfg.KnownRules = Names(cfg)
	return cfg
}

// All returns every analyzer, configured from cfg, in a fixed order.
func All(cfg analysis.Config) []analysis.Analyzer {
	det := map[string]bool{}
	for _, d := range cfg.Deterministic {
		det[d] = true
	}
	goro := map[string]bool{}
	for _, d := range cfg.Goroutines {
		goro[d] = true
	}
	locks := map[string]bool{}
	for _, d := range cfg.Locks {
		locks[d] = true
	}
	return []analysis.Analyzer{
		maporder{det: det},
		wallclock{det: det},
		reflectfmt{},
		keydrift{keyFile: cfg.KeyFile, roots: cfg.KeyRoots},
		unitsRule{dir: cfg.UnitsDir},
		errwrap{},
		apipair{min: cfg.APIPairMin},
		goroleak{pkgs: goro},
		approxflow{
			sources: parseTaintSpecs(cfg.ApproxSources),
			sinks:   parseTaintSpecs(cfg.ApproxSinks),
			caches:  parseTaintSpecs(cfg.ApproxCaches),
		},
		ctxflow{},
		lockscope{pkgs: locks},
		hotpath{roots: parseTaintSpecs(cfg.HotRoots)},
		sharestrict{
			workerRoots: parseTaintSpecs(cfg.WorkerRoots),
			shared:      parseTaintSpecs(cfg.SharedTypes),
			safe:        parseTaintSpecs(cfg.SharedSafe),
		},
	}
}

// Select returns the subset of All(cfg) whose names appear in names, in
// registry order. Unknown names are reported by the caller via Names.
func Select(cfg analysis.Config, names map[string]bool) []analysis.Analyzer {
	var out []analysis.Analyzer
	for _, a := range All(cfg) {
		if names[a.Name()] {
			out = append(out, a)
		}
	}
	return out
}

// Names lists every registered rule name in registry order.
func Names(cfg analysis.Config) []string {
	var out []string
	for _, a := range All(cfg) {
		out = append(out, a.Name())
	}
	return out
}
