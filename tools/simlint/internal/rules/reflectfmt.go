package rules

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strconv"

	"scalesim/tools/simlint/internal/analysis"
)

// reflectfmt flags `%v` / `%+v` / `%#v` formatting of values that contain
// pointers (or maps, funcs, channels, interfaces) when the formatted text
// feeds a hash, key, or fingerprint. Go's reflected rendering prints such
// fields as addresses — or in nondeterministic map order — so the "key"
// differs between processes that describe the identical value. This is
// exactly the PR-2 cache-key bug (runner.Job.Key once hashed a "%+v" of a
// struct carrying a telemetry-sink pointer); the fix is always the same:
// encode semantic fields explicitly, one by one, in a fixed order.
//
// A call site is considered a hash/key context when either
//   - the enclosing function's name matches key|hash|fingerprint|digest|
//     canonical (case-insensitive), or
//   - it is fmt.Fprintf and the writer argument's type carries the
//     hash.Hash method set (Sum and BlockSize).
//
// The analyzer runs on every package: key construction is not confined to
// the deterministic core.
type reflectfmt struct{}

func (reflectfmt) Name() string { return "reflectfmt" }
func (reflectfmt) Doc() string {
	return "no %v of pointer-carrying values feeding a hash or key"
}

var keyContextRE = regexp.MustCompile(`(?i)key|hash|fingerprint|digest|canonical`)

// formatArgIndex maps the fmt verbs-interpreting functions to the position
// of their format-string argument.
var formatArgIndex = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
}

func (a reflectfmt) Run(pass *analysis.Pass) []analysis.Finding {
	p := pass.Pkg
	var out []analysis.Finding
	for _, f := range p.Files {
		analysis.EnclosingFuncs(f, func(fd *ast.FuncDecl) {
			inKeyFunc := keyContextRE.MatchString(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := p.Info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
					return true
				}
				fmtIdx, ok := formatArgIndex[obj.Name()]
				if !ok || len(call.Args) <= fmtIdx {
					return true
				}
				hashCtx := inKeyFunc
				if !hashCtx && obj.Name() == "Fprintf" && isHashWriter(p.Info.TypeOf(call.Args[0])) {
					hashCtx = true
				}
				if !hashCtx {
					return true
				}
				tv, ok := p.Info.Types[call.Args[fmtIdx]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true
				}
				for _, ref := range verbRefs(constant.StringVal(tv.Value)) {
					if ref.verb != 'v' {
						continue
					}
					argi := fmtIdx + 1 + ref.arg
					if argi >= len(call.Args) {
						continue
					}
					at := p.Info.TypeOf(call.Args[argi])
					if at == nil || !containsPointer(at, map[types.Type]bool{}) {
						continue
					}
					out = append(out, analysis.Finding{
						Pos:  pass.Module.Fset.Position(call.Args[argi].Pos()),
						Rule: a.Name(),
						Msg: fmt.Sprintf("%s of %s feeds a hash/key context: reflected formatting renders pointers as addresses and maps in random order (the PR-2 cache-key bug); encode fields explicitly",
							strconv.Quote("%"+ref.flags+"v"),
							types.TypeString(at, types.RelativeTo(p.Pkg))),
					})
				}
				return true
			})
		})
	}
	return out
}

// isHashWriter reports whether t carries the hash.Hash method set
// (identified by Sum and BlockSize, which io.Writer lacks).
func isHashWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, name := range []string{"Sum", "BlockSize"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}

// containsPointer reports whether formatting a value of type t with %v can
// expose a pointer address, map order, or other process-dependent identity.
// Pointers, maps, channels, funcs and interfaces qualify directly; slices,
// arrays and structs are searched recursively.
func containsPointer(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Slice:
		return containsPointer(u.Elem(), seen)
	case *types.Array:
		return containsPointer(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsPointer(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
