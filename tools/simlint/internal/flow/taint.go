package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Taint is a small bitset of value labels. Bit 0 (Source) marks values
// derived from a rule-defined source; the remaining bits track which of the
// enclosing function's parameters a value derives from, so a single pass
// yields both direct findings and a reusable function summary ("the return
// value carries parameter 2", "parameter 0 reaches a sink").
type Taint uint64

// Source labels a value derived from a taint source.
const Source Taint = 1

// ParamBit labels a value derived from the i-th parameter. Functions with
// more than 62 parameters do not occur in this codebase; the overflow is
// simply untracked.
func ParamBit(i int) Taint {
	if i < 0 || i >= 62 {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// Params extracts the parameter indices in a taint label.
func (t Taint) Params() []int {
	var out []int
	for i := 0; i < 62; i++ {
		if t&ParamBit(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// TaintState maps canonical lvalue paths ("v<pos>", "v<pos>.field",
// "v<pos>[]") to the labels of the value stored there. A plain assignment
// is a strong update (it kills the old labels); element writes through an
// index are weak (other elements survive).
type TaintState map[string]Taint

// TaintConfig parameterises one function's taint run.
type TaintConfig struct {
	Info *types.Info
	// Params are the function's parameter name idents in declaration order
	// (nil for unnamed parameters); parameter i is seeded with ParamBit(i).
	Params []*ast.Ident
	// Results are the named result idents, consulted by naked returns.
	Results []*ast.Ident
	// CallTaint returns the taint of a (non-conversion, non-builtin) call's
	// results given the taint of each argument. Rules implement their
	// source and summary lookup here. A nil CallTaint taints nothing.
	CallTaint func(call *ast.CallExpr, args []Taint) Taint
}

// TaintVisitor receives reporting callbacks during the replay pass.
// Either callback may be nil.
type TaintVisitor struct {
	// Call fires for every resolved call expression with the taint of each
	// argument — sink checks live here.
	Call func(call *ast.CallExpr, args []Taint)
	// Assign fires for every single-value assignment with the taint of the
	// assigned value — write-into-cache sinks live here.
	Assign func(lhs, rhs ast.Expr, t Taint)
}

// RunTaint solves the taint problem over body and replays it once with the
// visitor's callbacks. It returns the union of the labels of every returned
// value — the function's summary-relevant result taint.
func RunTaint(body *ast.BlockStmt, cfg TaintConfig, v TaintVisitor) Taint {
	e := &taintEngine{cfg: cfg}
	g := Build(body)

	init := TaintState{}
	for i, p := range cfg.Params {
		if p == nil || p.Name == "_" {
			continue
		}
		if path, ok := e.pathOf(p); ok {
			init[path] |= ParamBit(i)
		}
	}

	ops := Ops[TaintState]{
		Clone: func(s TaintState) TaintState {
			out := make(TaintState, len(s))
			for k, t := range s {
				out[k] = t
			}
			return out
		},
		Join: func(dst, src TaintState) (TaintState, bool) {
			changed := false
			for k, t := range src {
				if dst[k]|t != dst[k] {
					dst[k] |= t
					changed = true
				}
			}
			return dst, changed
		},
		Transfer: func(s TaintState, n ast.Node) TaintState {
			e.transfer(s, n, TaintVisitor{})
			return s
		},
	}
	in := Solve(g, init, ops)
	Replay(g, in, ops, func(s TaintState, n ast.Node) {
		e.transfer(ops.Clone(s), n, v)
	})
	return e.result
}

type taintEngine struct {
	cfg    TaintConfig
	result Taint
}

// transfer interprets one CFG node against the state, firing the visitor's
// callbacks where set.
func (e *taintEngine) transfer(s TaintState, n ast.Node, v TaintVisitor) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		e.assignStmt(s, n, v)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				e.assignMany(s, identExprs(vs.Names), vs.Values, false, v)
			}
		}
	case *ast.ExprStmt:
		e.eval(s, n.X, v)
	case *ast.SendStmt:
		t := e.eval(s, n.Value, v)
		e.eval(s, n.Chan, v)
		// A send weakly taints the channel path, so a later receive from
		// the same channel variable observes the labels.
		if path, ok := e.pathOf(n.Chan); ok && t != 0 {
			s[path] |= t
		}
	case *ast.ReturnStmt:
		if len(n.Results) == 0 {
			for _, r := range e.cfg.Results {
				if r != nil && r.Name != "_" {
					e.result |= e.eval(s, r, TaintVisitor{})
				}
			}
		}
		for _, r := range n.Results {
			e.result |= e.eval(s, r, v)
		}
	case *ast.RangeStmt:
		t := e.eval(s, n.X, v)
		for _, lhs := range []ast.Expr{n.Key, n.Value} {
			if lhs != nil {
				e.assign(s, lhs, t, v)
			}
		}
	case *ast.DeferStmt:
		e.eval(s, n.Call, v)
	case *ast.GoStmt:
		e.eval(s, n.Call, v)
	case *ast.IncDecStmt:
		// Taint is unchanged by ++/--.
	case *ast.SelectStmt:
		// Marker node; the arms are their own CFG nodes.
	case ast.Expr:
		e.eval(s, n, v)
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (e *taintEngine) assignStmt(s TaintState, n *ast.AssignStmt, v TaintVisitor) {
	compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
	e.assignMany(s, n.Lhs, n.Rhs, compound, v)
}

// assignMany handles both pairwise assignment and the multi-value forms
// (x, y := f() and var x, y = f()): with one RHS for several LHS, every LHS
// receives the call's taint.
func (e *taintEngine) assignMany(s TaintState, lhs, rhs []ast.Expr, compound bool, v TaintVisitor) {
	if len(rhs) == 0 {
		return
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		t := e.eval(s, rhs[0], v)
		for _, l := range lhs {
			e.assignReported(s, l, rhs[0], t, false, v)
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		t := e.eval(s, rhs[i], v)
		e.assignReported(s, l, rhs[i], t, compound, v)
	}
}

func (e *taintEngine) assignReported(s TaintState, lhs, rhs ast.Expr, t Taint, compound bool, v TaintVisitor) {
	if compound {
		t |= e.eval(s, lhs, TaintVisitor{})
	}
	if v.Assign != nil {
		v.Assign(lhs, rhs, t)
	}
	e.assign(s, lhs, t, v)
}

// assign performs the state update for lhs = value-with-taint-t. Index
// writes are weak updates; everything else strongly kills the old labels of
// the path and its children.
func (e *taintEngine) assign(s TaintState, lhs ast.Expr, t Taint, v TaintVisitor) {
	path, ok := e.pathOf(lhs)
	if !ok {
		// Still evaluate the lvalue's sub-expressions (an index expression
		// may contain calls the visitor wants to see).
		e.eval(s, lhs, v)
		return
	}
	if strings.Contains(path, "[") {
		if t != 0 {
			s[path] |= t
		}
		return
	}
	for k := range s {
		if k == path || strings.HasPrefix(k, path+".") || strings.HasPrefix(k, path+"[") {
			delete(s, k)
		}
	}
	if t != 0 {
		s[path] = t
	}
}

// eval computes the taint of an expression, firing the visitor on every
// call it encounters. Function literals are opaque: a closure's body is its
// own function.
func (e *taintEngine) eval(s TaintState, expr ast.Expr, v TaintVisitor) Taint {
	switch x := expr.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if path, ok := e.pathOf(x); ok {
			return e.taintAt(s, path)
		}
		return 0
	case *ast.SelectorExpr:
		if path, ok := e.pathOf(x); ok {
			return e.taintAt(s, path)
		}
		// Method value or qualified non-var: taint of the receiver still
		// flows (m.Method with tainted m).
		return e.eval(s, x.X, v)
	case *ast.ParenExpr:
		return e.eval(s, x.X, v)
	case *ast.StarExpr:
		return e.eval(s, x.X, v)
	case *ast.UnaryExpr:
		return e.eval(s, x.X, v)
	case *ast.BinaryExpr:
		return e.eval(s, x.X, v) | e.eval(s, x.Y, v)
	case *ast.IndexExpr:
		t := e.eval(s, x.Index, v)
		if path, ok := e.pathOf(x); ok {
			return t | e.taintAt(s, path)
		}
		return t | e.eval(s, x.X, v)
	case *ast.SliceExpr:
		return e.eval(s, x.X, v)
	case *ast.TypeAssertExpr:
		return e.eval(s, x.X, v)
	case *ast.CompositeLit:
		var t Taint
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t |= e.eval(s, kv.Value, v)
				continue
			}
			t |= e.eval(s, elt, v)
		}
		return t
	case *ast.CallExpr:
		return e.evalCall(s, x, v)
	case *ast.FuncLit:
		return 0
	default:
		return 0
	}
}

func (e *taintEngine) evalCall(s TaintState, call *ast.CallExpr, v TaintVisitor) Taint {
	// A conversion propagates its operand's labels unchanged.
	if tv, ok := e.cfg.Info.Types[call.Fun]; ok && tv.IsType() {
		return e.eval(s, call.Args[0], v)
	}
	args := make([]Taint, len(call.Args))
	for i, a := range call.Args {
		args[i] = e.eval(s, a, v)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := e.cfg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "copy", "min", "max":
				var t Taint
				for _, a := range args {
					t |= a
				}
				return t
			default:
				return 0
			}
		}
	}
	if v.Call != nil {
		v.Call(call, args)
	}
	if e.cfg.CallTaint != nil {
		return e.cfg.CallTaint(call, args)
	}
	return 0
}

// taintAt unions the labels of a path, the paths it contains (a struct is
// tainted when any of its fields is) and the paths containing it (a field
// of a tainted struct is tainted).
func (e *taintEngine) taintAt(s TaintState, path string) Taint {
	var t Taint
	for k, kt := range s {
		if pathsRelated(k, path) {
			t |= kt
		}
	}
	return t
}

func pathsRelated(a, b string) bool {
	if a == b {
		return true
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	return strings.HasPrefix(b, a+".") || strings.HasPrefix(b, a+"[")
}

func (e *taintEngine) pathOf(expr ast.Expr) (string, bool) {
	return PathOf(e.cfg.Info, expr)
}

// PathOf renders a canonical lvalue path for an expression, or reports that
// the expression is not a trackable storage location. Variables key on
// their declaration position, so shadowed names stay distinct; pointer
// dereferences collapse onto the pointer's path (one level of aliasing);
// all elements of an indexed container share one "[]" path.
func PathOf(info *types.Info, expr ast.Expr) (string, bool) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if vr, ok := obj.(*types.Var); ok && !vr.IsField() {
			return fmt.Sprintf("v%d", vr.Pos()), true
		}
		return "", false
	case *ast.SelectorExpr:
		// A package-qualified variable keys on the variable itself.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
				if vr, ok := info.ObjectOf(x.Sel).(*types.Var); ok {
					return fmt.Sprintf("v%d", vr.Pos()), true
				}
				return "", false
			}
		}
		base, ok := PathOf(info, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.StarExpr:
		return PathOf(info, x.X)
	case *ast.IndexExpr:
		base, ok := PathOf(info, x.X)
		if !ok {
			return "", false
		}
		return base + "[]", true
	}
	return "", false
}
