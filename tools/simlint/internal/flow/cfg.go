// Package flow is simlint's intraprocedural dataflow layer: a control-flow
// graph over go/ast function bodies, a generic forward worklist solver, and
// a reaching-values taint engine with per-parameter labels. It is built on
// the standard library only, like the rest of the analyzer framework, and
// exists so rules can enforce *flow* properties (a value from here must
// never reach there; a lock acquired on this path is released on every
// path) instead of purely syntactic ones.
//
// The CFG is statement-granular: each basic block holds the atomic
// statements and condition expressions executed in order, and edges follow
// Go's structured control flow (if/else, for, range, switch, type switch,
// select, labeled break/continue, goto, return, panic). Function literals
// are never descended into — a closure is its own function with its own
// CFG; analyzers decide how to relate the two.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal sequence of nodes with a single entry
// and ordered successor edges.
type Block struct {
	Index int
	// Nodes holds atomic statements and condition expressions in execution
	// order. Composite statements (if/for/switch/select) never appear here —
	// only their initializers, conditions and the select marker — so a
	// transfer function can walk each node without double-visiting branches.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the CFG of one function body. Entry starts the body; Exit is the
// single synthetic exit every return (and the fall-off-the-end path)
// reaches.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	// Comm maps each select communication statement (the Comm of a
	// CommClause) to its enclosing select, so analyzers can tell a channel
	// operation that is a select arm — whose blocking semantics belong to
	// the select itself — from a bare one.
	Comm map[ast.Stmt]*ast.SelectStmt

	// SelectHasDefault records, per select statement, whether a default
	// clause makes it non-blocking.
	SelectHasDefault map[*ast.SelectStmt]bool
}

// Build constructs the CFG of a function body.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{
		Comm:             map[ast.Stmt]*ast.SelectStmt{},
		SelectHasDefault: map[*ast.SelectStmt]bool{},
	}
	b := &builder{g: g, labels: map[string]*labelBlocks{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// labelBlocks are the resolved targets of a label: the block the labeled
// statement starts in (goto/continue-into target) and, once known, the
// break and continue targets of a labeled loop or switch.
type labelBlocks struct {
	start *Block // target of goto L, created on first reference
	brk   *Block // target of break L
	cont  *Block // target of continue L (loops only)
}

type builder struct {
	g   *Graph
	cur *Block

	// breaks/continues are the innermost targets for unlabeled branch
	// statements; nil entries mark constructs that accept break but not
	// continue (switch, select).
	breaks    []*Block
	continues []*Block

	labels map[string]*labelBlocks
	// pendingLabel is the label naming the *next* loop/switch/select
	// statement, consumed by the construct it labels.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// startBlock finishes cur with an edge into a fresh block and continues
// there.
func (b *builder) startBlock() *Block {
	n := b.newBlock()
	b.edge(b.cur, n)
	b.cur = n
	return n
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// unreachable parks the builder in a fresh block with no predecessors, for
// code after return/break/continue/goto/panic.
func (b *builder) unreachable() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) label(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{start: b.newBlock()}
		b.labels[name] = lb
	}
	return lb
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.label(s.Label.Name)
		b.edge(b.cur, lb.start)
		b.cur = lb.start
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
		}
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()

		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)

		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		exit := b.newBlock()
		post := b.newBlock() // continue target; runs Post then loops
		if s.Cond != nil {
			b.edge(head, exit)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.pushLoop(label, exit, post)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock()
		// The RangeStmt itself is the head's node: transfers interpret it as
		// "Key, Value = element of X" (and, for a channel, a receive).
		b.add(s)
		exit := b.newBlock()
		b.edge(head, exit) // zero iterations
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.pushLoop(label, exit, head)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		b.g.SelectHasDefault[s] = hasDefault
		// The select itself is a node: the single point where a
		// default-less select blocks.
		b.add(s)
		head := b.cur
		join := b.newBlock()
		b.pushLoop(label, join, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			arm := b.newBlock()
			b.edge(head, arm)
			b.cur = arm
			if cc.Comm != nil {
				b.g.Comm[cc.Comm] = s
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.popLoop()
		if len(s.Body.List) == 0 {
			b.edge(head, join) // select{} blocks forever; keep the graph sane
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.unreachable()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.edge(b.cur, b.label(s.Label.Name).brk)
			} else if t := b.innermost(b.breaks); t != nil {
				b.edge(b.cur, t)
			}
			b.unreachable()
		case token.CONTINUE:
			if s.Label != nil {
				b.edge(b.cur, b.label(s.Label.Name).cont)
			} else if t := b.innermost(b.continues); t != nil {
				b.edge(b.cur, t)
			}
			b.unreachable()
		case token.GOTO:
			b.edge(b.cur, b.label(s.Label.Name).start)
			b.unreachable()
		case token.FALLTHROUGH:
			// Handled by caseClauses; nothing to do here.
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.unreachable()
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		b.add(s)
	}
}

// caseClauses lowers the shared body of switch and type switch: every
// clause branches from the head; fallthrough chains a clause into the next
// one's body.
func (b *builder) caseClauses(label string, clauses []ast.Stmt, _ *Block) {
	head := b.cur
	join := b.newBlock()
	b.pushLoop(label, join, nil)

	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		if len(c.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.edge(head, bodies[i])
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.edge(b.cur, bodies[i+1])
			b.unreachable()
		} else {
			b.edge(b.cur, join)
		}
	}
	b.popLoop()
	b.cur = join
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		lb := b.label(label)
		lb.brk = brk
		lb.cont = cont
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// innermost returns the nearest non-nil target (switch/select push nil
// continue targets that an unlabeled continue must skip past).
func (b *builder) innermost(stack []*Block) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != nil {
			return stack[i]
		}
	}
	return nil
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
