package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load type-checks one file worth of source and returns the named function
// plus the type info.
func load(t *testing.T, src string) (map[string]*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	funcs := map[string]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			funcs[fd.Name.Name] = fd
		}
	}
	return funcs, info, fset
}

func params(fd *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, n := range field.Names {
			out = append(out, n)
		}
	}
	return out
}

const taintSrc = `package p

func source() int { return 1 }
func sink(x int)  {}
func clean() int  { return 0 }

func direct() {
	v := source()
	sink(v)
}

func killed() {
	v := source()
	v = clean()
	sink(v)
}

func branches(c bool) int {
	v := 0
	if c {
		v = source()
	} else {
		v = clean()
	}
	sink(v)
	return v
}

func throughStruct() {
	type box struct{ a, b int }
	var x box
	x.a = source()
	sink(x.b)
	sink(x.a)
}

func loops() {
	v := 0
	for i := 0; i < 3; i++ {
		sink(v)
		v = source()
	}
}

func passes(p int) int {
	sink(p)
	return p
}
`

// runTaint runs the engine over one function with source() as the taint
// source, recording the taint of every sink(x) argument in call order.
func runTaint(t *testing.T, name string) (sinks []Taint, result Taint) {
	funcs, info, _ := load(t, taintSrc)
	fd := funcs[name]
	if fd == nil {
		t.Fatalf("no function %s", name)
	}
	cfg := TaintConfig{
		Info:   info,
		Params: params(fd),
		CallTaint: func(call *ast.CallExpr, args []Taint) Taint {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "source" {
				return Source
			}
			return 0
		},
	}
	result = RunTaint(fd.Body, cfg, TaintVisitor{
		Call: func(call *ast.CallExpr, args []Taint) {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
				sinks = append(sinks, args[0])
			}
		},
	})
	return sinks, result
}

func TestTaintDirectFlow(t *testing.T) {
	sinks, _ := runTaint(t, "direct")
	if len(sinks) != 1 || sinks[0]&Source == 0 {
		t.Errorf("direct: sink taints = %v, want [Source]", sinks)
	}
}

func TestTaintKilledByReassignment(t *testing.T) {
	sinks, _ := runTaint(t, "killed")
	if len(sinks) != 1 || sinks[0]&Source != 0 {
		t.Errorf("killed: sink taints = %v, want untainted", sinks)
	}
}

func TestTaintJoinsBranches(t *testing.T) {
	sinks, result := runTaint(t, "branches")
	if len(sinks) != 1 || sinks[0]&Source == 0 {
		t.Errorf("branches: sink taints = %v, want Source (may-analysis over the join)", sinks)
	}
	if result&Source == 0 {
		t.Errorf("branches: result taint = %v, want Source", result)
	}
}

func TestTaintFieldSensitivity(t *testing.T) {
	sinks, _ := runTaint(t, "throughStruct")
	if len(sinks) != 2 {
		t.Fatalf("throughStruct: %d sink calls, want 2", len(sinks))
	}
	if sinks[0]&Source != 0 {
		t.Errorf("throughStruct: untainted sibling field reported tainted")
	}
	if sinks[1]&Source == 0 {
		t.Errorf("throughStruct: tainted field not reported")
	}
}

func TestTaintLoopBackEdge(t *testing.T) {
	sinks, _ := runTaint(t, "loops")
	// The sink precedes the source in the body, but the back edge carries
	// the taint around: the fixpoint must flag it.
	if len(sinks) != 1 || sinks[0]&Source == 0 {
		t.Errorf("loops: sink taints = %v, want Source via the back edge", sinks)
	}
}

func TestTaintParamLabels(t *testing.T) {
	sinks, result := runTaint(t, "passes")
	if len(sinks) != 1 || sinks[0]&ParamBit(0) == 0 {
		t.Errorf("passes: sink taints = %v, want ParamBit(0)", sinks)
	}
	if result&ParamBit(0) == 0 {
		t.Errorf("passes: result taint = %v, want ParamBit(0)", result)
	}
}

const cfgSrc = `package p

func r() bool { return true }

func shapes(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		total += i
	}
	switch n {
	case 1:
		total++
	case 2:
		total--
		fallthrough
	case 3:
		total *= 2
	default:
		total = 0
	}
loop:
	for {
		for r() {
			break loop
		}
	}
	return total
}

func selects(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
	}
	select {
	case v := <-ch:
		return v
	}
}
`

func TestCFGShapes(t *testing.T) {
	funcs, _, _ := load(t, cfgSrc)
	g := Build(funcs["shapes"].Body)
	if g.Entry == nil || g.Exit == nil || len(g.Blocks) < 5 {
		t.Fatalf("implausible CFG: %d blocks", len(g.Blocks))
	}
	if len(g.Exit.Preds) == 0 {
		t.Errorf("exit block unreachable")
	}
	// Every successor edge must have a matching predecessor edge.
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("block %d -> %d has no reverse edge", b.Index, s.Index)
			}
		}
	}
}

func TestCFGSelectMetadata(t *testing.T) {
	funcs, _, _ := load(t, cfgSrc)
	g := Build(funcs["selects"].Body)
	var withDefault, without int
	for _, has := range g.SelectHasDefault {
		if has {
			withDefault++
		} else {
			without++
		}
	}
	if withDefault != 1 || without != 1 {
		t.Errorf("SelectHasDefault = %d with / %d without, want 1/1", withDefault, without)
	}
	if len(g.Comm) != 2 {
		t.Errorf("recorded %d comm statements, want 2", len(g.Comm))
	}
}
